package afsysbench

import (
	"errors"
	"testing"
)

// The public API is an aliased surface over the internal packages; these
// tests exercise a downstream user's workflow end to end through it.

func TestPublicSurfaceBasics(t *testing.T) {
	if len(Samples()) != 5 || len(SampleNames()) != 5 {
		t.Fatal("sample set wrong")
	}
	if len(Platforms()) != 4 || len(TwoPlatforms()) != 2 {
		t.Fatal("platform set wrong")
	}
	if len(RNASweep()) != 4 {
		t.Fatal("RNA sweep wrong")
	}
	if _, err := SampleByName("promo"); err != nil {
		t.Fatal(err)
	}
	if _, err := PlatformByName("Desktop"); err != nil {
		t.Fatal(err)
	}
	if Server().CPU.Vendor != "Intel" || Desktop().CPU.Vendor != "AMD" {
		t.Error("platform constructors wrong")
	}
	if ServerWithCXL().CXLBytes == 0 || DesktopUpgraded().DRAMBytes <= Desktop().DRAMBytes {
		t.Error("platform variants wrong")
	}
}

func TestPublicPipelineWorkflow(t *testing.T) {
	suite, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	in, err := SampleByName("2PV7")
	if err != nil {
		t.Fatal(err)
	}
	res, err := suite.RunPipeline(in, Desktop(), PipelineOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.MSASeconds <= 0 || res.Inference.Total() <= 0 {
		t.Fatal("phase times not positive through the public API")
	}
	if res.MSAFraction() < 0.5 {
		t.Errorf("MSA fraction %.2f through public API", res.MSAFraction())
	}
}

func TestPublicMemoryWorkflow(t *testing.T) {
	sweep := RNASweep()
	big := sweep[len(sweep)-1]
	est := MemoryCheck(big, ServerWithCXL(), 8)
	if est.Verdict.String() != "OOM" {
		t.Errorf("1335-residue RNA verdict = %v, want OOM", est.Verdict)
	}
	if MaxSafeRNALength(ServerWithCXL()) <= MaxSafeRNALength(Server()) {
		t.Error("CXL must raise the safe RNA boundary")
	}

	suite, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	_, err = suite.RunPipeline(big, ServerWithCXL(), PipelineOptions{Threads: 8})
	var oom ErrProjectedOOM
	if !errors.As(err, &oom) {
		t.Fatalf("expected projected-OOM error, got %v", err)
	}
}

func TestPublicMachineSubstitution(t *testing.T) {
	qnr, _ := SampleByName("6QNR")
	if got := MachineFor(qnr, Desktop()); got.Name != "Desktop-128G" {
		t.Errorf("6QNR on stock desktop resolved to %s, want the DRAM upgrade", got.Name)
	}
	small, _ := SampleByName("2PV7")
	if got := MachineFor(small, Desktop()); got.Name != "Desktop" {
		t.Errorf("2PV7 must keep the stock desktop, got %s", got.Name)
	}
}

func TestPublicFigure2(t *testing.T) {
	rows := Figure2()
	if len(rows) != 4 || rows[0].PeakGiB <= 0 {
		t.Fatalf("Figure2 rows: %+v", rows)
	}
}

func TestPublicThreadSweeps(t *testing.T) {
	if len(MSAThreadSweep) != 5 || MSAThreadSweep[0] != 1 || MSAThreadSweep[4] != 8 {
		t.Error("MSA sweep wrong")
	}
	if len(InferenceThreadSweep) != 4 || InferenceThreadSweep[3] != 6 {
		t.Error("inference sweep wrong")
	}
}
