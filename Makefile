# Developer workflow for afsysbench. `make check` is the PR gate: format,
# vet, full tests, and the race detector over the packages that shard work
# across the parallel engine.

GO ?= go

.PHONY: all build test check fmt vet race bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Race-check the concurrent hot path: the parallel engine itself plus the
# three packages whose kernels shard over it.
race:
	$(GO) test -race ./internal/parallel ./internal/tensor ./internal/pairformer ./internal/diffusion

check: fmt vet test race

# Kernel microbenchmarks with allocation tracking (serial vs parallel).
bench:
	$(GO) test -run xxx -bench 'MatMul|TriangleAttention|BlockApply|DiffusionDenoise' -benchmem ./internal/tensor ./internal/pairformer ./internal/diffusion
