# Developer workflow for afsysbench. `make check` is the PR gate: format,
# vet, full tests, and the race detector over the packages that shard work
# across the parallel engine.

GO ?= go

.PHONY: all build test check fmt vet race faults chaos chaos-disk chaos-cluster cluster-smoke fairness bench bench-msa bench-msa-smoke swar-smoke serve-bench serve-smoke cluster-bench bench-batch batch-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Race-check the concurrent hot path: the parallel engine itself, the
# packages whose kernels shard over it (including the hmmer scan-workspace
# pool that msa workers draw from concurrently), and the serving subsystem
# (cache singleflight, scheduler pools). The hmmer run names the Fuzz seed
# corpora explicitly so the SWAR soundness fuzz targets (lane-op models,
# MSV/band reject-only proofs, plus testdata regression entries) replay
# under the race detector on every gate.
race:
	$(GO) test -race ./internal/parallel ./internal/tensor ./internal/pairformer ./internal/diffusion ./internal/cache ./internal/batch ./internal/serve ./internal/msa ./internal/cluster
	$(GO) test -race -run 'Test|Fuzz' ./internal/hmmer ./internal/cachedisk ./internal/qos

# Fault-injection and degradation suite under the race detector: the
# resilience package, the cancellation paths through the scan engine, and
# the orchestrator's ladder/retry/exit-code tests.
faults:
	$(GO) test -race ./internal/resilience
	$(GO) test -race -run 'Ctx|Cancel|Fault|Resilience|Transient|Permanent|StageBudget|MemSpike|Stall|Stream|ExitCode|GoldenRun' ./internal/parallel ./internal/simio ./internal/hmmer ./internal/msa ./internal/core ./cmd/afsysbench

# Chaos storm under the race detector: a seeded 120-request fault storm
# (worker panics at every guard point, once-per-chain faults forcing
# checkpointed retries, a dark database tripping its breaker, aggressive
# hedging) against a live scheduler, asserting the serving fault-model
# invariants — every job terminal, pools at full strength, no goroutine
# leak. The seed is in the output; a failure reproduces with the printed
# flag line.
chaos:
	$(GO) run -race ./cmd/afload -chaos -seed 7 -n 120 -concurrency 8 -mix 2PV7:4,1YY9:1 -threads 2 -msa-workers 4 -gpu-workers 2

# Disk-fault chaos gate under the race detector: the persistent chain-cache
# tier lives through a seeded disk-fault storm (torn writes, failed fsyncs,
# mid-commit crashes, silent bit flips, read errors), direct vandalism of
# its directory, a restart, and a fully dark disk — asserting that every
# served MSA is bitwise-identical to fresh compute, corrupt entries are
# counted and dropped, and sustained failure degrades to memory-only with
# zero failed requests. A failure reproduces with the printed flag line.
chaos-disk:
	$(GO) run -race ./cmd/afload -chaos-disk -seed 11 -ppi 4 -concurrency 4 -threads 2 -msa-workers 4 -gpu-workers 2

# Cluster kill-storm gate under the race detector: a seeded trace through
# the sharded scatter-gather tier behind the replica router while two whole
# shard nodes and one serving replica are killed mid-storm — asserting zero
# wrong results (every digest matches the single-node reference), zero lost
# requests, counted shard and router failovers, survivors at full strength,
# and no goroutine leak. A failure reproduces with the printed flag line.
chaos-cluster:
	$(GO) run -race ./cmd/afcluster -chaos -seed 13 -shards 8 -replicas 3 -n 40 -mix 2PV7:3,1YY9:2 -threads 2 -msa-workers 2 -gpu-workers 1

# Cluster smoke for the check gate: the tiny end-to-end scaling sweep —
# reference pass, live scatter-gather cluster, digest verification, the
# modeled shard-efficiency curve with its 0.8 gate at 16 shards.
cluster-smoke:
	$(GO) test -run 'TestScalingRunSmoke' -count 1 ./cmd/afcluster

# Multi-tenant fairness gate under the race detector: an adversarial
# screening storm (bursty MMPP arrivals, poly-Q-heavy PPI mix, 10x the
# victim's offered load) against the tenant-aware scheduler — asserting
# the protected victim keeps its solo-baseline modeled p95 (<=1.5x) and
# sheds <5%, the FIFO comparator demonstrably violates both, and the
# admission/dispatch decision digests reproduce bit-for-bit across a
# rerun, a different pool size, and batching on/off. A failure
# reproduces with the printed flag line.
fairness:
	$(GO) run -race ./cmd/afload -fairness -seed 7 -threads 2 -msa-workers 4 -gpu-workers 2

check: fmt vet test race faults chaos chaos-disk chaos-cluster cluster-smoke fairness swar-smoke bench-msa-smoke serve-smoke batch-smoke

# Cluster scaling benchmark: the full shards × replicas sweep merged into
# BENCH_serve.json as the cluster_scaling section (run serve-bench first so
# the single-node sections are fresh in the same file).
cluster-bench:
	$(GO) run ./cmd/afcluster -shards 8 -replicas 3 -n 24 -mix 2PV7:3,1YY9:2,6QNR:1 -json BENCH_serve.json

# Kernel microbenchmarks with allocation tracking (serial vs parallel).
bench:
	$(GO) test -run xxx -bench 'MatMul|TriangleAttention|BlockApply|DiffusionDenoise' -benchmem ./internal/tensor ./internal/pairformer ./internal/diffusion

# MSA scan hot-path benchmarks: three kernel arms on identical inputs —
# reference (pre-optimization float), optimized (float cascade, SWAR off),
# swar (8-bit SWAR pre-passes armed) — plus the 0-alloc steady-state path.
# Emits BENCH_msa.json with a benchstat-compatible extract and a per-family
# speedup block inside. VARIANT=reference|optimized|swar narrows to one arm:
#   make bench-msa VARIANT=swar
VARIANT ?= all
ifeq ($(VARIANT),all)
BENCH_MSA_RE := BenchmarkScan
else
BENCH_MSA_RE := BenchmarkScan(Protein|Nucleotide)/$(VARIANT)$$|BenchmarkScanRecordSteadyState
endif
bench-msa:
	$(GO) test -run '^$$' -bench '$(BENCH_MSA_RE)' -benchmem -benchtime 2s -count 3 ./internal/hmmer | $(GO) run ./cmd/afbenchjson -o BENCH_msa.json

# Smoke variant for the check gate: one iteration per benchmark, no artifact
# left behind, just proof the harness runs end to end.
bench-msa-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkScan' -benchmem -benchtime 1x ./internal/hmmer | $(GO) run ./cmd/afbenchjson -o /tmp/BENCH_msa_smoke.json

# SWAR equivalence smoke for the check gate: scans a small DB with the 8-bit
# pre-passes on, off, and through the stripped reference kernels, asserting
# bitwise-identical hit lists, a nonzero swar-rejected lane counter, and
# per-shard determinism at several worker counts.
swar-smoke:
	$(GO) test -run 'TestSWARScanSmoke|TestSWARKillSwitch' -count 1 ./internal/hmmer

# Serving benchmark: the all-vs-all PPI screening mix through the two-tier
# chain cache — a warm pass precomputes the disk tier, the measured pass
# starts with a cold memory tier, and -compare-cache adds the cache-off and
# request-keyed baselines with the modeled makespan improvement of
# chain-level keys. Emits BENCH_serve.json.
serve-bench:
	rm -rf /tmp/afsysbench-serve-tier
	$(GO) run ./cmd/afload -ppi 6 -concurrency 4 -threads 4 -msa-workers 4 -cache-dir /tmp/afsysbench-serve-tier -warm -compare-cache -json BENCH_serve.json

# Smoke variant of serve-bench for the check gate: small trace, no artifact.
serve-smoke:
	rm -rf /tmp/afsysbench-serve-smoke-tier
	$(GO) run ./cmd/afload -ppi 4 -concurrency 2 -threads 4 -msa-workers 2 -cache-dir /tmp/afsysbench-serve-smoke-tier -warm -compare-cache

# Cross-request batching benchmark: the compile-dominated -> compute-dominated
# crossover sweep (modeled curve, measured offered-load sweep, bucket-count
# sweep) merged into BENCH_serve.json as the batch_crossover section. The
# sweep is its own gate: it fails unless the small-input unbatched overhead
# exceeds the paper's 75% and batching reaches <50% within the memory cap.
bench-batch:
	$(GO) run ./cmd/afload -batch-sweep -n 16 -json BENCH_serve.json

# Smoke variant for the check gate: same sweep and gate, no artifact.
batch-smoke:
	$(GO) run ./cmd/afload -batch-sweep -n 16
