package simgpu

import (
	"testing"

	"afsysbench/internal/platform"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultModel()
	bad.Recycles = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero recycles accepted")
	}
}

func TestMemoryFootprintPaperBoundaries(t *testing.T) {
	m := DefaultModel()
	rtx := platform.Desktop().GPU.MemBytes
	// Paper Section III-B: 1YY9 (881) fits on the RTX 4080, 6QNR (1395)
	// needs unified memory.
	if m.MemoryFootprintBytes(881) > rtx {
		t.Error("1YY9 must fit in 16 GB")
	}
	if m.MemoryFootprintBytes(1395) <= rtx {
		t.Error("6QNR must exceed 16 GB")
	}
	if m.MemoryFootprintBytes(1395) > platform.Server().GPU.MemBytes {
		t.Error("6QNR must fit on the H100")
	}
}

func TestInferenceSpillOnlyOnDesktop(t *testing.T) {
	m := DefaultModel()
	d, err := Inference(platform.Desktop(), m, 1395, InferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Inference(platform.Server(), m, 1395, InferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Spilled {
		t.Error("6QNR on desktop must spill to unified memory")
	}
	if s.Spilled {
		t.Error("6QNR on server must not spill")
	}
}

func TestFigure8ServerOverheadDominatesSmallInputs(t *testing.T) {
	m := DefaultModel()
	pb, err := Inference(platform.Server(), m, 484, InferenceOptions{Threads: 1, CompileSeconds: 35})
	if err != nil {
		t.Fatal(err)
	}
	if f := pb.OverheadFraction(); f < 0.70 {
		t.Errorf("server 2PV7 overhead fraction = %.2f, paper reports >0.75", f)
	}
}

func TestFigure8DesktopComputeDominates(t *testing.T) {
	m := DefaultModel()
	pb, err := Inference(platform.Desktop(), m, 484, InferenceOptions{Threads: 1, CompileSeconds: 12})
	if err != nil {
		t.Fatal(err)
	}
	if pb.ComputeSeconds < pb.InitSeconds+pb.CompileSeconds {
		t.Errorf("desktop compute (%.1f) must dominate overheads (%.1f)",
			pb.ComputeSeconds, pb.InitSeconds+pb.CompileSeconds)
	}
	// Paper: 2PV7 on desktop ≈ 71 s GPU compute, ~100 s total.
	if pb.ComputeSeconds < 40 || pb.ComputeSeconds > 110 {
		t.Errorf("desktop 2PV7 compute = %.1fs, want ~71s", pb.ComputeSeconds)
	}
	// Larger inputs push the compute share toward the paper's 83%.
	big, _ := Inference(platform.Desktop(), m, 857, InferenceOptions{Threads: 1, CompileSeconds: 12})
	if share := big.ComputeSeconds / big.Total(); share < 0.75 {
		t.Errorf("desktop promo compute share = %.2f, want >= 0.75", share)
	}
}

func TestThreadsDoNotHelpInference(t *testing.T) {
	// Figure 6: inference shows no gain (slight degradation) from threads.
	m := DefaultModel()
	t1, _ := Inference(platform.Server(), m, 484, InferenceOptions{Threads: 1})
	t6, _ := Inference(platform.Server(), m, 484, InferenceOptions{Threads: 6})
	if t6.Total() < t1.Total() {
		t.Errorf("6 threads faster than 1: %v vs %v", t6.Total(), t1.Total())
	}
	if t6.Total() > t1.Total()*1.25 {
		t.Errorf("degradation too steep: %v vs %v", t6.Total(), t1.Total())
	}
}

func TestWarmStartSkipsOverheads(t *testing.T) {
	m := DefaultModel()
	cold, _ := Inference(platform.Server(), m, 484, InferenceOptions{})
	warm, _ := Inference(platform.Server(), m, 484, InferenceOptions{WarmStart: true})
	if warm.InitSeconds != 0 || warm.CompileSeconds != 0 {
		t.Error("warm start must skip init and compile")
	}
	if warm.Total() >= cold.Total() {
		t.Error("warm start must be faster")
	}
}

func TestLayerTimesTableVIShape(t *testing.T) {
	m := DefaultModel()
	mach := platform.Server()
	get := func(n int) (pf, df, triAttn, triMult, global float64) {
		mods := ModuleSeconds(m.LayerTimes(mach, n, false))
		pf, df = mods["Pairformer"], mods["Diffusion"]
		for _, l := range m.LayerTimes(mach, n, false) {
			switch l.Layer {
			case "triangle attention":
				triAttn = l.Seconds
			case "triangle mult. update":
				triMult = l.Seconds
			case "global attention":
				global = l.Seconds
			}
		}
		return
	}
	pf484, df484, ta484, tm484, g484 := get(484)
	pf857, df857, ta857, tm857, _ := get(857)

	// Diffusion dominates Pairformer at both lengths, with the ratio
	// shrinking as the cubic Pairformer terms grow (Table VI: 5.06 -> 2.77).
	r484, r857 := df484/pf484, df857/pf857
	if r484 < 2 {
		t.Errorf("diffusion/pairformer at 484 = %.2f, want > 2", r484)
	}
	if r857 >= r484 {
		t.Errorf("ratio must shrink with N: %.2f -> %.2f", r484, r857)
	}
	// Triangle attention ≈ 2x multiplicative update (Table VI).
	if ratio := ta484 / tm484; ratio < 1.5 || ratio > 3.5 {
		t.Errorf("attn/mult at 484 = %.2f, want ~2", ratio)
	}
	if ratio := ta857 / tm857; ratio < 1.5 || ratio > 3.5 {
		t.Errorf("attn/mult at 857 = %.2f, want ~2.6", ratio)
	}
	// Pairformer grows superlinearly: 857/484 runtime ratio > length ratio.
	if growth := pf857 / pf484; growth < 2.5 {
		t.Errorf("pairformer growth = %.2f, want > 2.5 (paper: >3x)", growth)
	}
	// Global attention is the largest diffusion layer.
	if g484 < 0.5*df484 {
		t.Errorf("global attention = %.1fs of %.1fs diffusion, want dominant", g484, df484)
	}
}

func TestSpillMultipliesCompute(t *testing.T) {
	m := DefaultModel()
	mach := platform.Desktop()
	normal := ModuleSeconds(m.LayerTimes(mach, 800, false))
	spilled := ModuleSeconds(m.LayerTimes(mach, 800, true))
	if spilled["Pairformer"] <= normal["Pairformer"]*1.5 {
		t.Error("unified-memory spill must slow compute substantially")
	}
}

func TestInferenceErrors(t *testing.T) {
	if _, err := Inference(platform.Server(), Model{}, 100, InferenceOptions{}); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := Inference(platform.Server(), DefaultModel(), 0, InferenceOptions{}); err == nil {
		t.Error("zero length accepted")
	}
}

func TestBatchedInferenceOfOneMatchesSingle(t *testing.T) {
	m := DefaultModel()
	for _, opts := range []InferenceOptions{
		{},
		{Threads: 6, CompileSeconds: 35},
		{WarmStart: true, Threads: 4},
		{WarmStart: true, Recompile: true, CompileSeconds: 35},
	} {
		for _, mach := range []platform.Machine{platform.Server(), platform.Desktop()} {
			for _, n := range []int{242, 484, 1395} {
				single, err := Inference(mach, m, n, opts)
				if err != nil {
					t.Fatal(err)
				}
				batched, err := BatchedInference(mach, m, n, 1, opts)
				if err != nil {
					t.Fatal(err)
				}
				if single != batched {
					t.Fatalf("%s n=%d opts=%+v: batch-of-1 %+v != single %+v",
						mach.Name, n, opts, batched, single)
				}
			}
		}
	}
}

func TestBatchedOverheadMonotonicallyNonIncreasing(t *testing.T) {
	m := DefaultModel()
	mach := platform.Server()
	for _, n := range []int{242, 484, 881} {
		limit := m.MaxBatch(mach, n)
		if limit > 32 {
			limit = 32
		}
		prev := 2.0
		prevShare := 0.0
		for b := 1; b <= limit; b++ {
			pb, err := BatchedInference(mach, m, n, b, InferenceOptions{Threads: 1, CompileSeconds: 35})
			if err != nil {
				t.Fatal(err)
			}
			if f := pb.OverheadFraction(); f > prev {
				t.Fatalf("n=%d: overhead fraction rose at batch %d: %.4f > %.4f", n, b, f, prev)
			} else {
				prev = f
			}
			// Per-request amortized cost must also never increase.
			share := pb.Total() / float64(b)
			if b > 1 && share > prevShare {
				t.Fatalf("n=%d: per-request share rose at batch %d: %.2f > %.2f", n, b, share, prevShare)
			}
			prevShare = share
			if pb.Spilled {
				t.Fatalf("n=%d batch %d spilled within MaxBatch %d", n, b, limit)
			}
		}
	}
}

func TestMaxBatchCapPreventsSpill(t *testing.T) {
	m := DefaultModel()
	srv := platform.Server()
	limit := m.MaxBatch(srv, 484)
	if limit < 2 {
		t.Fatalf("server MaxBatch(484) = %d, want headroom for batching", limit)
	}
	at, err := BatchedInference(srv, m, 484, limit, InferenceOptions{CompileSeconds: 35})
	if err != nil {
		t.Fatal(err)
	}
	if at.Spilled {
		t.Error("batch at MaxBatch must not spill")
	}
	over, err := BatchedInference(srv, m, 484, limit+1, InferenceOptions{CompileSeconds: 35})
	if err != nil {
		t.Fatal(err)
	}
	if !over.Spilled {
		t.Error("batch beyond MaxBatch must spill")
	}
	// A member that individually spills (6QNR on the stock desktop) caps
	// the batch at 1 — it runs alone.
	if got := m.MaxBatch(platform.Desktop(), 1395); got != 1 {
		t.Errorf("desktop MaxBatch(1395) = %d, want 1", got)
	}
}

func TestWarmRecompileChargesCompileOnly(t *testing.T) {
	m := DefaultModel()
	pb, err := Inference(platform.Server(), m, 484, InferenceOptions{
		Threads: 2, WarmStart: true, Recompile: true, CompileSeconds: 35,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pb.InitSeconds != 0 {
		t.Errorf("warm recompile charged init %.1fs", pb.InitSeconds)
	}
	want := 35 * (1 + hostContention)
	if pb.CompileSeconds != want {
		t.Errorf("warm recompile compile = %v, want %v", pb.CompileSeconds, want)
	}
	// Zero CompileSeconds means a compiled executable is on hand: no charge,
	// cold or warm (the old clock-ratio fallback is gone).
	cold, err := Inference(platform.Server(), m, 484, InferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CompileSeconds != 0 {
		t.Errorf("cold with cached executable charged compile %.1fs", cold.CompileSeconds)
	}
	if cold.InitSeconds == 0 {
		t.Error("cold start must still charge init")
	}
}

func TestBatchedInferenceErrors(t *testing.T) {
	if _, err := BatchedInference(platform.Server(), DefaultModel(), 484, 0, InferenceOptions{}); err == nil {
		t.Error("zero batch accepted")
	}
}

func TestH100FasterThanRTX4080(t *testing.T) {
	m := DefaultModel()
	srv := ModuleSeconds(m.LayerTimes(platform.Server(), 857, false))
	dsk := ModuleSeconds(m.LayerTimes(platform.Desktop(), 857, false))
	if srv["Pairformer"]+srv["Diffusion"] >= dsk["Pairformer"]+dsk["Diffusion"] {
		t.Error("H100 must out-compute the RTX 4080")
	}
}
