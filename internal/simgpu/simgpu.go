// Package simgpu models the GPU side of AlphaFold3 inference on the two
// platforms: a roofline timing model per layer class (compute vs memory
// bound, plus kernel-launch overhead dispatched by a single host thread —
// the reason the paper's Figure 6 shows no benefit from multi-threading),
// the device initialization / XLA compilation / finalization phases of
// Figure 8, and the memory-footprint model that forces 6QNR into unified
// memory on the 16 GB RTX 4080.
package simgpu

import (
	"fmt"

	"afsysbench/internal/diffusion"
	"afsysbench/internal/pairformer"
	"afsysbench/internal/platform"
)

// Model bundles the network configuration of one AF3 inference.
type Model struct {
	PF pairformer.Config
	DF diffusion.Config
	// Recycles is the trunk recycling count: the Pairformer stack re-runs
	// this many times per prediction (AF3 default 10).
	Recycles int
}

// DefaultModel returns AF3-scale configuration.
func DefaultModel() Model {
	return Model{
		PF:       pairformer.DefaultConfig(),
		DF:       diffusion.DefaultConfig(),
		Recycles: 10,
	}
}

// Validate checks the model.
func (m Model) Validate() error {
	if err := m.PF.Validate(); err != nil {
		return err
	}
	if err := m.DF.Validate(); err != nil {
		return err
	}
	if m.Recycles <= 0 {
		return fmt.Errorf("simgpu: Recycles must be positive, got %d", m.Recycles)
	}
	return nil
}

// Memory footprint model: weights plus activation buffers that scale with
// the pair representation. Calibrated against the paper's Section III-B
// observations: 1YY9 (N=881) fits on the 16 GB RTX 4080, 6QNR (N=1395)
// does not and needs unified memory.
const (
	weightBytes        = 2 << 30
	actBytesPerPairElt = 16 * 128 * 4 // ~16 live f32 buffers of width 128
)

// MemoryFootprintBytes returns the device memory needed at n tokens.
func (m Model) MemoryFootprintBytes(n int) int64 {
	return weightBytes + int64(n)*int64(n)*actBytesPerPairElt
}

// BatchedFootprintBytes returns the device memory needed by a batched
// dispatch of batch members padded to n tokens: one weight set plus one
// activation set per member.
func (m Model) BatchedFootprintBytes(n, batch int) int64 {
	return weightBytes + int64(batch)*int64(n)*int64(n)*actBytesPerPairElt
}

// MaxBatch returns the largest batch size whose activation sets fit in
// device memory alongside the weights — the batch-size cap that guarantees
// a batch never spills to unified memory when its members individually
// fit. Always at least 1: a single member that already spills runs alone
// (and pays the spill penalty it would have paid unbatched).
func (m Model) MaxBatch(mach platform.Machine, n int) int {
	act := int64(n) * int64(n) * actBytesPerPairElt
	if act <= 0 {
		return 1
	}
	b := (mach.GPU.MemBytes - weightBytes) / act
	if b < 1 {
		return 1
	}
	return int(b)
}

// Per-layer-class achieved efficiency: fraction of peak tensor throughput
// and of peak memory bandwidth these kernel shapes sustain. AF3's shapes
// are narrow (128-wide), so compute efficiency is low; the triangle and
// global attention classes are additionally memory-bound (materialized
// logits, poor locality — paper Sections II-C, V-C).
type classEff struct{ compute, mem float64 }

func effFor(module, layer string) classEff {
	switch module + "/" + layer {
	case "Pairformer/" + pairformer.TriangleAttention.String():
		return classEff{0.12, 0.40}
	case "Pairformer/" + pairformer.TriangleMult.String():
		return classEff{0.13, 0.40}
	case "Pairformer/" + pairformer.PairTransition.String():
		return classEff{0.12, 0.45}
	case "Pairformer/" + pairformer.SingleUpdate.String():
		return classEff{0.05, 0.35}
	case "Diffusion/" + diffusion.GlobalAttention.String():
		// Tiny token counts leave the tensor cores almost idle, and the
		// paper singles this layer out for poor locality (II-C).
		return classEff{0.016, 0.25}
	case "Diffusion/" + diffusion.LocalAttnEncoder.String(),
		"Diffusion/" + diffusion.LocalAttnDecoder.String():
		// Bound by the uncoalesced window gathers, not arithmetic.
		return classEff{0.09, 0.31}
	default:
		return classEff{0.08, 0.40}
	}
}

// Devices returns the machine's modeled accelerator count, at least 1.
// The serving scheduler's inference pool is sized to it: one in-flight
// prediction per device, matching AF3's one-model-per-GPU execution (no
// intra-request multi-GPU parallelism in the paper's deployments).
func Devices(mach platform.Machine) int {
	if mach.GPU.Devices < 1 {
		return 1
	}
	return mach.GPU.Devices
}

// baseLaunchSeconds is the per-kernel dispatch cost when driven by a 5.6
// GHz host core; slower hosts dispatch proportionally slower (single host
// thread, paper Section V-B3a).
const baseLaunchSeconds = 6e-6

// LayerTime is one row of the Figure 9 / Table VI breakdown.
type LayerTime struct {
	Module  string
	Layer   string
	Seconds float64
	Flops   float64
	Bytes   float64
	Kernels float64
}

// LayerTimes prices every layer class of a full prediction at n tokens on
// the machine. spill applies the unified-memory penalty (6QNR on the 4080).
func (m Model) LayerTimes(mach platform.Machine, n int, spill bool) []LayerTime {
	return m.layerTimes(mach, n, spill, 1)
}

// layerTimes is LayerTimes with a batch factor: a batched dispatch moves
// batch× the flops and bytes through the roofline, but each kernel is
// launched once per dispatch — the single host dispatch thread issues one
// (batched) grid per layer, which is exactly how batching amortizes the
// Figure 8 launch overhead. batch == 1 is bitwise-identical to the
// unbatched path (multiplying by 1.0 is exact in IEEE arithmetic).
func (m Model) layerTimes(mach platform.Machine, n int, spill bool, batch int) []LayerTime {
	gpu := mach.GPU
	launch := baseLaunchSeconds * (5.6 / mach.CPU.MaxClockGHz)
	spillFactor := 1.0
	if spill {
		spillFactor = gpu.UnifiedMemPenalty
	}
	bf := float64(batch)
	var out []LayerTime
	price := func(module, layer string, flops, bytes, kernels float64) {
		flops *= bf
		bytes *= bf
		eff := effFor(module, layer)
		compute := flops / (gpu.TensorTFlops * 1e12 * eff.compute)
		memory := bytes / (gpu.MemBandwidthGBs * 1e9 * eff.mem)
		secs := compute
		if memory > secs {
			secs = memory
		}
		secs = secs*spillFactor + kernels*launch
		out = append(out, LayerTime{
			Module: module, Layer: layer,
			Seconds: secs, Flops: flops, Bytes: bytes, Kernels: kernels,
		})
	}
	rec := float64(m.Recycles)
	for _, k := range pairformer.Kinds() {
		price("Pairformer", k.String(),
			m.PF.LayerFlops(k, n)*rec,
			m.PF.LayerBytes(k, n)*rec,
			float64(m.PF.Kernels(k)*m.PF.Blocks)*rec)
	}
	for _, k := range diffusion.Kinds() {
		price("Diffusion", k.String(),
			m.DF.LayerFlops(k, n),
			m.DF.LayerBytes(k, n),
			float64(m.DF.Kernels(k)*m.DF.Evaluations()))
	}
	return out
}

// ModuleSeconds sums layer times per module name.
func ModuleSeconds(layers []LayerTime) map[string]float64 {
	out := make(map[string]float64)
	for _, l := range layers {
		out[l.Module] += l.Seconds
	}
	return out
}

// PhaseBreakdown is the Figure 8 decomposition of one inference run.
type PhaseBreakdown struct {
	InitSeconds     float64 // GPU/device/runtime initialization
	CompileSeconds  float64 // XLA compilation (host)
	ComputeSeconds  float64 // GPU kernels
	FinalizeSeconds float64 // host-side output assembly, teardown
	Spilled         bool    // unified-memory fallback engaged
	FootprintBytes  int64
}

// Total returns the end-to-end inference seconds.
func (p PhaseBreakdown) Total() float64 {
	return p.InitSeconds + p.CompileSeconds + p.ComputeSeconds + p.FinalizeSeconds
}

// OverheadFraction returns the non-compute share of the run — the quantity
// the paper reports exceeding 75% for small inputs on the server.
func (p PhaseBreakdown) OverheadFraction() float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return (t - p.ComputeSeconds) / t
}

// InferenceOptions tune one run.
type InferenceOptions struct {
	// Threads is the CPU thread setting; inference gains nothing from it
	// (single dispatch thread) and loses slightly to host contention.
	Threads int
	// WarmStart skips device init and XLA compilation (persistent model
	// state, the Section VI optimization).
	WarmStart bool
	// CompileSeconds is the host compile time computed by the CPU model
	// for this platform (see xla.Compile + core.CompileSim). Zero charges
	// no compile time — the caller holds a compiled executable for this
	// shape (e.g. the serving tier's compiled-graph cache hit). Production
	// paths always thread the host-profile value through; there is no
	// clock-ratio fallback.
	CompileSeconds float64
	// Recompile charges CompileSeconds on a warm start: the model is
	// resident (no device init), but this shape bucket has not been
	// compiled before, so the graph build + XLA compile still runs.
	// Ignored on cold starts, which always compile.
	Recompile bool
}

// hostContention is the per-extra-thread slowdown of dispatch-sensitive
// phases (Figure 6's mild degradation under multi-threading).
const hostContention = 0.015

// Inference prices a full run of the model at n tokens on the machine.
// It is exactly BatchedInference with a batch of one.
func Inference(mach platform.Machine, m Model, n int, opts InferenceOptions) (PhaseBreakdown, error) {
	return BatchedInference(mach, m, n, 1, opts)
}

// BatchedInference prices one batched dispatch of batch members, each
// padded to n tokens, on the machine. The fixed Figure 8 costs are paid
// once per dispatch — device init (cold), XLA compile (cold, or warm with
// Recompile), per-kernel launch (single host dispatch thread issues one
// batched grid per layer), and finalize — while roofline compute scales
// with the batch. The footprint is one weight set plus batch activation
// sets; a dispatch kept within Model.MaxBatch never spills when its
// members individually fit. A batch of 1 is bitwise-identical to the
// unbatched model, so batching changes attribution, never results.
func BatchedInference(mach platform.Machine, m Model, n, batch int, opts InferenceOptions) (PhaseBreakdown, error) {
	if err := m.Validate(); err != nil {
		return PhaseBreakdown{}, err
	}
	if n <= 0 {
		return PhaseBreakdown{}, fmt.Errorf("simgpu: sequence length must be positive, got %d", n)
	}
	if batch < 1 {
		return PhaseBreakdown{}, fmt.Errorf("simgpu: batch size must be positive, got %d", batch)
	}
	threads := opts.Threads
	if threads < 1 {
		threads = 1
	}
	var p PhaseBreakdown
	p.FootprintBytes = m.BatchedFootprintBytes(n, batch)
	p.Spilled = p.FootprintBytes > mach.GPU.MemBytes

	contention := 1 + hostContention*float64(threads-1)

	if !opts.WarmStart {
		// Device init: driver/context plus weight upload over PCIe 4.0
		// (~20 GB/s effective) plus allocator pool warm-up.
		p.InitSeconds = mach.GPU.InitSeconds + float64(weightBytes)/20e9
		p.CompileSeconds = opts.CompileSeconds
		p.InitSeconds *= contention
		p.CompileSeconds *= contention
	} else if opts.Recompile {
		p.CompileSeconds = opts.CompileSeconds * contention
	}

	for _, l := range m.layerTimes(mach, n, p.Spilled, batch) {
		p.ComputeSeconds += l.Seconds
	}
	p.ComputeSeconds *= contention

	p.FinalizeSeconds = 0.3*mach.GPU.InitSeconds + 2.0
	return p, nil
}
