package serve

import (
	"os"
	"path/filepath"
	"testing"

	"afsysbench/internal/cache"
	"afsysbench/internal/cachedisk"
	"afsysbench/internal/resilience"
	"afsysbench/internal/rng"
)

func openDiskTier(t *testing.T, dir string, cfg cachedisk.Config) *cachedisk.Store {
	t.Helper()
	cfg.Dir = dir
	st, err := cachedisk.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestChainSharingAcrossComplexes is the point of chain-level keys: two
// different PPI complexes that share a pool protein reuse its MSA from
// the memory tier, which a request-keyed cache can never do.
func TestChainSharingAcrossComplexes(t *testing.T) {
	s := newTestServer(t, Config{Threads: 4, MSAWorkers: 1, Cache: cache.New(0)})
	statuses := runTrace(t, s, []string{"ppi-0x3", "ppi-3x7"})

	if statuses[0].ChainsFresh != 2 || statuses[0].ChainsMem != 0 {
		t.Fatalf("first pair chains = %+v, want 2 fresh", statuses[0])
	}
	// Pool protein 3 is shared; protein 7 is new.
	if statuses[1].ChainsMem != 1 || statuses[1].ChainsFresh != 1 {
		t.Fatalf("second pair chains = %+v, want 1 memory hit + 1 fresh", statuses[1])
	}
	if statuses[1].CacheHit {
		t.Fatal("partially cached request must not report a full hit")
	}
	// The shared chain's work is not charged: the partial request costs
	// strictly less than its fresh total but more than zero.
	res, ok := s.Result(statuses[1].ID)
	if !ok {
		t.Fatal("no result for second pair")
	}
	if statuses[1].MSASeconds <= 0 || statuses[1].MSASeconds >= res.MSASeconds {
		t.Fatalf("partial hit charged %v of fresh %v, want strictly between",
			statuses[1].MSASeconds, res.MSASeconds)
	}

	// The request-keyed baseline mode shares nothing across complexes.
	b := newTestServer(t, Config{Threads: 4, MSAWorkers: 1, Cache: cache.New(0), RequestScopedKeys: true})
	bst := runTrace(t, b, []string{"ppi-0x3", "ppi-3x7"})
	if bst[1].ChainsMem != 0 || bst[1].ChainsFresh != 2 {
		t.Fatalf("request-keyed baseline shared a chain: %+v", bst[1])
	}
}

// TestDiskTierReadThroughAcrossRestart spills the memory tier to disk,
// simulates a process restart (fresh store over the same directory,
// fresh memory cache), and checks that a repeat request is served from
// disk with a bitwise-identical result.
func TestDiskTierReadThroughAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	s1 := newTestServer(t, Config{
		Threads: 4, MSAWorkers: 1,
		Cache:     cache.New(0),
		DiskCache: openDiskTier(t, dir, cachedisk.Config{}),
	})
	st1 := runTrace(t, s1, []string{"1YY9"})
	want := fingerprint(t, s1, st1[0].ID)
	if n := s1.SpillCache(); n != 3 {
		t.Fatalf("SpillCache = %d, want 3 chains", n)
	}
	s1.Stop()
	if err := s1.Config().DiskCache.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: new store over the same directory, empty memory tier.
	s2 := newTestServer(t, Config{
		Threads: 4, MSAWorkers: 1,
		Cache:     cache.New(0),
		DiskCache: openDiskTier(t, dir, cachedisk.Config{}),
	})
	st2 := runTrace(t, s2, []string{"1YY9"})
	if st2[0].State != "done" {
		t.Fatalf("restart job: %+v", st2[0])
	}
	if st2[0].ChainsDisk != 3 || st2[0].ChainsFresh != 0 {
		t.Fatalf("restart chains = %+v, want 3 disk hits", st2[0])
	}
	if !st2[0].CacheHit || st2[0].MSASeconds != 0 {
		t.Fatalf("fully disk-served request must hit and charge 0: %+v", st2[0])
	}
	if got := fingerprint(t, s2, st2[0].ID); got != want {
		t.Fatalf("disk replay diverged:\n  want %s\n  got  %s", want, got)
	}
}

// TestDiskCorruptionIsAMiss corrupts every spilled entry on disk and
// checks that the server silently recomputes: same result, zero disk
// hits, corruption counted.
func TestDiskCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{
		Threads: 4, MSAWorkers: 1,
		Cache:     cache.New(0),
		DiskCache: openDiskTier(t, dir, cachedisk.Config{}),
	})
	st1 := runTrace(t, s1, []string{"1YY9"})
	want := fingerprint(t, s1, st1[0].ID)
	if s1.SpillCache() != 3 {
		t.Fatal("spill failed")
	}
	s1.Stop()
	if err := s1.Config().DiskCache.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in every entry payload.
	ents, err := filepath.Glob(filepath.Join(dir, "objects", "*.ent"))
	if err != nil || len(ents) != 3 {
		t.Fatalf("expected 3 entries, got %d (%v)", len(ents), err)
	}
	for _, p := range ents {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-1] ^= 0xFF
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := newTestServer(t, Config{
		Threads: 4, MSAWorkers: 1,
		Cache:     cache.New(0),
		DiskCache: openDiskTier(t, dir, cachedisk.Config{}),
	})
	st2 := runTrace(t, s2, []string{"1YY9"})
	if st2[0].State != "done" {
		t.Fatalf("job over corrupt tier: %+v", st2[0])
	}
	if st2[0].ChainsDisk != 0 || st2[0].ChainsFresh != 3 {
		t.Fatalf("corrupt entries must read as misses: %+v", st2[0])
	}
	if got := fingerprint(t, s2, st2[0].ID); got != want {
		t.Fatalf("recompute over corrupt tier diverged:\n  want %s\n  got  %s", want, got)
	}
	ds := s2.Config().DiskCache.Stats()
	if ds.CorruptDropped == 0 {
		t.Fatalf("corruption not counted: %+v", ds)
	}
}

// TestSustainedDiskFailureDegradesToMemory runs the server over a disk
// that fails every operation: the store's breaker must open and the
// server must keep answering every request correctly from memory alone.
func TestSustainedDiskFailureDegradesToMemory(t *testing.T) {
	fs, err := resilience.ParseFaults("diskfault:*:100000")
	if err != nil {
		t.Fatal(err)
	}
	store := openDiskTier(t, t.TempDir(), cachedisk.Config{
		Injector:         resilience.NewInjector(fs, rng.New(7)),
		BreakerThreshold: 2,
	})
	s := newTestServer(t, Config{
		Threads: 4, MSAWorkers: 1,
		Cache:     cache.New(0),
		DiskCache: store,
	})
	statuses := runTrace(t, s, []string{"1YY9", "promo", "1YY9"})
	for _, st := range statuses {
		if st.State != "done" {
			t.Fatalf("request failed under dark disk: %+v", st)
		}
	}
	if !statuses[2].CacheHit {
		t.Fatal("memory tier must still serve repeats")
	}
	s.SpillCache() // must not panic or fail requests either
	if !store.Degraded() {
		t.Fatalf("breaker never opened: %+v", store.Stats())
	}
	if ds := store.Stats(); ds.DegradedOps == 0 {
		t.Fatalf("degraded ops not counted: %+v", ds)
	}
}
