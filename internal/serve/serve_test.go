package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"afsysbench/internal/cache"
	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
	"afsysbench/internal/resilience"
)

// sharedSuite is built once: the synthetic databases are identical across
// tests and rebuilding them per test dominates runtime.
var sharedSuite = func() *core.Suite {
	s, err := core.NewSuite()
	if err != nil {
		panic(err)
	}
	return s
}()

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := NewWithSuite(sharedSuite, cfg)
	t.Cleanup(s.Stop)
	return s
}

// runTrace submits the trace, drains it, and returns per-job statuses in
// submit order.
func runTrace(t *testing.T, s *Server, trace []string) []JobStatus {
	t.Helper()
	s.Start()
	for _, sample := range trace {
		if _, err := s.Submit(Request{Sample: sample}); err != nil {
			t.Fatalf("submit %s: %v", sample, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	return s.Statuses()
}

// fingerprint captures everything about a result that must be bitwise
// stable across pool sizes and cache configurations.
func fingerprint(t *testing.T, s *Server, id string) string {
	t.Helper()
	res, ok := s.Result(id)
	if !ok {
		t.Fatalf("no result for %s", id)
	}
	return fmt.Sprintf("%s|%x|%x|%x|%x|%x|%d|%v",
		res.Sample,
		res.MSASeconds, res.MSACPUSeconds, res.MSADiskSeconds,
		res.Inference.ComputeSeconds, res.Inference.Total(),
		res.MSAData.Features.Bytes(), res.Resilience.Degraded)
}

// TestDeterminismAcrossPoolSizes is the scheduler's core contract: a fixed
// request trace produces bitwise-identical per-request results whatever
// the pool sizes, and whether or not the cache is enabled.
func TestDeterminismAcrossPoolSizes(t *testing.T) {
	trace := []string{"promo", "1YY9", "1YY9", "promo"}
	configs := []Config{
		{Threads: 4, MSAWorkers: 1, GPUWorkers: 1, Cache: cache.New(0)},
		{Threads: 4, MSAWorkers: 4, GPUWorkers: 2, Cache: cache.New(0)},
		{Threads: 4, MSAWorkers: 2, GPUWorkers: 1, Cache: nil}, // cache off
	}
	var want []string
	for ci, cfg := range configs {
		s := newTestServer(t, cfg)
		statuses := runTrace(t, s, trace)
		var got []string
		for _, st := range statuses {
			if st.State != "done" {
				t.Fatalf("config %d job %s: state %s (err %s)", ci, st.ID, st.State, st.Error)
			}
			got = append(got, fingerprint(t, s, st.ID))
		}
		if ci == 0 {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("config %d request %d diverged:\n  want %s\n  got  %s", ci, i, want[i], got[i])
			}
		}
	}
}

// TestCacheHitAccounting checks that repeats of a query are served from
// the cache and charged zero MSA seconds, while distinct queries miss.
// The cache is chain-keyed: 1YY9 and promo each carry three protein
// chains, so the two first sightings pay six chain searches and the two
// repeats are served six cached chains.
func TestCacheHitAccounting(t *testing.T) {
	s := newTestServer(t, Config{Threads: 4, MSAWorkers: 1, Cache: cache.New(0)})
	statuses := runTrace(t, s, []string{"1YY9", "1YY9", "promo", "1YY9"})

	if statuses[0].CacheHit || statuses[2].CacheHit {
		t.Fatal("first sighting of a query must miss")
	}
	if !statuses[1].CacheHit || !statuses[3].CacheHit {
		t.Fatal("repeat of a query must hit")
	}
	if statuses[1].MSASeconds != 0 || statuses[3].MSASeconds != 0 {
		t.Fatalf("cache hits must charge 0 MSA seconds, got %v / %v",
			statuses[1].MSASeconds, statuses[3].MSASeconds)
	}
	if statuses[0].MSASeconds <= 0 {
		t.Fatal("miss charged no MSA seconds")
	}
	if statuses[0].ChainsFresh != 3 || statuses[0].ChainsMem != 0 {
		t.Fatalf("first sighting chains = %+v, want 3 fresh", statuses[0])
	}
	if statuses[1].ChainsMem != 3 || statuses[1].ChainsFresh != 0 {
		t.Fatalf("repeat chains = %+v, want 3 from memory", statuses[1])
	}
	st := s.Config().Cache.Stats()
	if st.Misses != 6 || st.Hits+st.Shared != 6 {
		t.Fatalf("cache stats = %+v, want 6 chain misses and 6 served", st)
	}
}

// TestDeterministicShed: with no workers draining the queue, admission is
// a pure function of the trace and the queue bound — the same trace sheds
// the same requests every time.
func TestDeterministicShed(t *testing.T) {
	trace := []string{"1YY9", "promo", "1YY9", "promo", "1YY9"}
	shedPattern := func() []bool {
		s := NewWithSuite(sharedSuite, Config{Threads: 4, QueueDepth: 2})
		var pattern []bool
		for _, sample := range trace {
			_, err := s.Submit(Request{Sample: sample})
			switch {
			case err == nil:
				pattern = append(pattern, false)
			case resilience.IsOverloaded(err):
				pattern = append(pattern, true)
			default:
				t.Fatalf("submit %s: unexpected error %v", sample, err)
			}
		}
		// Drain what was admitted so the suite's pools stay healthy.
		s.Start()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.WaitIdle(ctx); err != nil {
			t.Fatalf("WaitIdle: %v", err)
		}
		s.Stop()
		return pattern
	}
	first := shedPattern()
	want := []bool{false, false, true, true, true}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("shed pattern = %v, want %v", first, want)
		}
	}
	second := shedPattern()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("shed decisions not deterministic: %v vs %v", first, second)
		}
	}
	// The shed error itself is classed for metrics and the HTTP layer.
	s := NewWithSuite(sharedSuite, Config{QueueDepth: 1})
	defer s.Stop()
	if _, err := s.Submit(Request{Sample: "1YY9"}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := s.Submit(Request{Sample: "1YY9"})
	if !resilience.IsOverloaded(err) {
		t.Fatalf("expected overload, got %v", err)
	}
	if ErrorClass(err) != "overloaded-queue-full" {
		t.Fatalf("ErrorClass = %q", ErrorClass(err))
	}
	if got := s.Metrics().Get("requests_shed"); got != 1 {
		t.Fatalf("requests_shed = %d", got)
	}
}

// TestDeadlineShedsCleanly: an expired per-request deadline fails that
// request with a timeout class and leaves the server healthy for the next.
func TestDeadlineShedsCleanly(t *testing.T) {
	s := newTestServer(t, Config{Threads: 4, MSAWorkers: 1})
	s.Start()
	id, err := s.Submit(Request{Sample: "promo", Timeout: time.Millisecond})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	st, _ := s.Status(id)
	if st.State != "failed" {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.ErrorClass != "timeout" {
		t.Fatalf("error class = %q (%s), want timeout", st.ErrorClass, st.Error)
	}
	var timeout resilience.ErrStageTimeout
	s.mu.Lock()
	jobErr := s.jobs[id].err
	s.mu.Unlock()
	if !errors.As(jobErr, &timeout) {
		t.Fatalf("job error = %v, want ErrStageTimeout", jobErr)
	}
	if got := s.Metrics().Get("requests_failed_timeout"); got != 1 {
		t.Fatalf("requests_failed_timeout = %d", got)
	}

	// The failed request must not wedge the pipeline.
	id2, err := s.Submit(Request{Sample: "1YY9"})
	if err != nil {
		t.Fatalf("follow-up submit: %v", err)
	}
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	if st, _ := s.Status(id2); st.State != "done" {
		t.Fatalf("follow-up state = %s (%s)", st.State, st.Error)
	}
}

// TestNoGoroutineLeak runs a full server lifecycle and checks every
// scheduler goroutine is released by Stop. The shared compute pools of
// internal/parallel live for the process, so they are warmed up before
// the baseline is taken.
func TestNoGoroutineLeak(t *testing.T) {
	warm := newTestServer(t, Config{Threads: 4, MSAWorkers: 2, Cache: cache.New(0)})
	runTrace(t, warm, []string{"1YY9"})
	warm.Stop()

	baseline := runtime.NumGoroutine()
	s := NewWithSuite(sharedSuite, Config{Threads: 4, MSAWorkers: 4, GPUWorkers: 2, Cache: cache.New(0)})
	runTrace(t, s, []string{"1YY9", "1YY9", "1YY9"})
	s.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCacheKeyComposition is the satellite regression test: the chain
// cache key must cover the chain content, the database-set identity, the
// profile scope and the thread count, so a changed database set, profile
// or thread setting can never be served a stale entry — while the
// per-complex chain label and the request identity stay out of it, which
// is what lets different complexes share a chain.
func TestCacheKeyComposition(t *testing.T) {
	in, err := inputs.ByName("1YY9")
	if err != nil {
		t.Fatal(err)
	}
	mach := core.MachineFor(in, platform.Server())
	jobAt := func(threads int) *Job {
		return &Job{in: in, machine: mach, threads: threads}
	}
	s := NewWithSuite(sharedSuite, Config{})
	defer s.Stop()

	chainA, chainB := in.Chains[0], in.Chains[1]
	if s.chainKey(jobAt(4), "full", chainA) != s.chainKey(jobAt(4), "full", chainA) {
		t.Fatal("key not stable")
	}
	if s.chainKey(jobAt(4), "full", chainA) == s.chainKey(jobAt(8), "full", chainA) {
		t.Fatal("key ignores thread count")
	}
	if s.chainKey(jobAt(4), "full", chainA) == s.chainKey(jobAt(4), "full", chainB) {
		t.Fatal("key ignores chain content")
	}
	if s.chainKey(jobAt(4), "full", chainA) == s.chainKey(jobAt(4), "uniref_s", chainA) {
		t.Fatal("key ignores the database profile scope")
	}
	// The same chain content under a different label must share the key —
	// that is the cross-complex reuse the chain tier exists for.
	relabeled := chainA
	relabeled.IDs = []string{"Z"}
	if s.chainKey(jobAt(4), "full", chainA) != s.chainKey(jobAt(4), "full", relabeled) {
		t.Fatal("key depends on the per-complex chain label")
	}
	// Request-scoped keys (the baseline mode) fold the complex in.
	sScoped := NewWithSuite(sharedSuite, Config{RequestScopedKeys: true})
	defer sScoped.Stop()
	if s.chainKey(jobAt(4), "full", chainA) == sScoped.chainKey(jobAt(4), "full", chainA) {
		t.Fatal("RequestScopedKeys did not change the key")
	}

	// A server over a different database set must derive a different key
	// for the same chain.
	suite2, err := core.NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	suite2.DBs.Protein = suite2.DBs.Protein[1:] // drop one database
	s2 := NewWithSuite(suite2, Config{})
	defer s2.Stop()
	if s.chainKey(jobAt(4), "full", chainA) == s2.chainKey(jobAt(4), "full", chainA) {
		t.Fatal("key ignores database-set identity")
	}

	// Behavioral check: two servers sharing one cache but holding
	// different database sets must both miss on every chain — the changed
	// set can never be served the other's entries.
	shared := cache.New(0)
	for _, suite := range []*core.Suite{sharedSuite, suite2} {
		srv := NewWithSuite(suite, Config{Threads: 4, MSAWorkers: 1, Cache: shared})
		runTrace(t, srv, []string{"1YY9"})
		srv.Stop()
	}
	st := shared.Stats()
	if st.Misses != 6 || st.Hits != 0 || st.Shared != 0 {
		t.Fatalf("changed DB set was served from cache: %+v", st)
	}
}

// TestSubmitValidation covers the pre-admission rejections.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Submit(Request{Sample: "no-such-sample"}); err == nil {
		t.Fatal("unknown sample admitted")
	}
	s.Stop()
	if _, err := s.Submit(Request{Sample: "1YY9"}); err == nil {
		t.Fatal("submit after Stop admitted")
	}
}

// TestModeledScheduleInvariants checks the virtual-time replay: stage
// precedence holds, cache hits occupy zero CPU lane time, and the
// phase-split schedule beats the serial (stock) deployment of the same
// trace whenever there is anything to overlap.
func TestModeledScheduleInvariants(t *testing.T) {
	s := newTestServer(t, Config{Threads: 4, MSAWorkers: 2, Cache: cache.New(0)})
	statuses := runTrace(t, s, []string{"promo", "1YY9", "1YY9", "promo", "1YY9"})
	for _, st := range statuses {
		if st.State != "done" {
			t.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
		}
	}
	sched := s.ModeledSchedule(2, 1)
	if len(sched.Items) != 5 {
		t.Fatalf("scheduled %d items, want 5", len(sched.Items))
	}
	for _, it := range sched.Items {
		if it.MSAEnd < it.MSAStart || it.InfEnd < it.InfStart {
			t.Fatalf("negative stage duration: %+v", it)
		}
		if it.InfStart < it.MSAEnd {
			t.Fatalf("inference before its MSA finished: %+v", it)
		}
		if it.CacheHit && it.MSAEnd != it.MSAStart {
			t.Fatalf("cache hit occupies CPU lane time: %+v", it)
		}
	}
	serial := s.SerialMakespan()
	if sched.Makespan <= 0 || serial <= 0 {
		t.Fatalf("degenerate makespans: split=%v serial=%v", sched.Makespan, serial)
	}
	if sched.Makespan >= serial {
		t.Fatalf("phase-split makespan %.1fs not better than serial %.1fs", sched.Makespan, serial)
	}
	// Same trace, same charges, any pool size: busy seconds conserved.
	again := s.ModeledSchedule(8, 4)
	if again.CPUBusy != sched.CPUBusy || again.GPUBusy != sched.GPUBusy {
		t.Fatalf("busy seconds changed with pool size: %+v vs %+v", again, sched)
	}
}
