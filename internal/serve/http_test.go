package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"afsysbench/internal/cache"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Threads: 4, MSAWorkers: 1, Cache: cache.New(0)})
	s.Start()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// Health first.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Unknown sample is rejected before admission.
	resp = postJSON(t, ts.URL+"/v1/submit", SubmitRequest{Sample: "no-such"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown sample: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Submit and poll to completion.
	resp = postJSON(t, ts.URL+"/v1/submit", SubmitRequest{Sample: "1YY9"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decodeBody[SubmitResponse](t, resp)
	if sub.ID == "" {
		t.Fatal("empty job id")
	}
	deadline := time.Now().Add(time.Minute)
	var st JobStatus
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status: %d", resp.StatusCode)
		}
		st = decodeBody[JobStatus](t, resp)
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "done" || st.Sample != "1YY9" {
		t.Fatalf("final status = %+v", st)
	}
	if st.MSASeconds <= 0 || st.InferenceSeconds <= 0 {
		t.Fatalf("missing stage seconds: %+v", st)
	}

	// Unknown job id.
	resp, err = http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Metrics reflect the run.
	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeBody[MetricsSnapshot](t, resp)
	if m.Counters["requests_completed"] != 1 || m.Cache.Misses != 3 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.DiskCache != nil {
		t.Fatalf("disk tier stats present without a disk tier: %+v", m.DiskCache)
	}
	if m.Latency.Count != 1 || m.Latency.P99Ms <= 0 {
		t.Fatalf("latency summary = %+v", m.Latency)
	}
}

func TestHTTPOverloadMapsTo503(t *testing.T) {
	// No workers started: the queue fills and stays full.
	s := NewWithSuite(sharedSuite, Config{QueueDepth: 1})
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/submit", SubmitRequest{Sample: "1YY9"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/submit", SubmitRequest{Sample: "1YY9"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// Drain the admitted job so the shared pools stay healthy.
	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(time.Minute)
	for {
		sts := s.Statuses()
		if len(sts) == 1 && (sts[0].State == "done" || sts[0].State == "failed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admitted job never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	if p := Summarize(nil); p.Count != 0 || p.P99Ms != 0 {
		t.Fatalf("empty summary = %+v", p)
	}
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(i + 1)
	}
	p := Summarize(ms)
	if p.Count != 100 || p.MaxMs != 100 {
		t.Fatalf("summary = %+v", p)
	}
	if p.P50Ms < 50 || p.P50Ms > 51 || p.P99Ms < 99 || p.P99Ms > 100 {
		t.Fatalf("percentiles = %+v", p)
	}
}
