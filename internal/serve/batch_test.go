package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"afsysbench/internal/batch"
	"afsysbench/internal/inputs"
)

// runBatchTrace submits the whole trace before Start — which, with one MSA
// worker, pins the dispatcher's arrival order to the submit order — then
// drains it and returns the statuses.
func runBatchTrace(t *testing.T, s *Server, trace []string) []JobStatus {
	t.Helper()
	for _, sample := range trace {
		if _, err := s.Submit(Request{Sample: sample}); err != nil {
			t.Fatalf("submit %s: %v", sample, err)
		}
	}
	s.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	return s.Statuses()
}

// batchTrace mixes the small samples so consecutive same-bucket runs and
// bucket switches both occur.
func batchTrace() []string {
	return []string{"2PV7", "2PV7", "2PV7", "2PV7", "7RCE", "1YY9", "1YY9", "2PV7"}
}

// TestBatchDeterminismAcrossGPUWorkers is the tentpole contract: with the
// arrival order pinned, batch composition, per-request batch attribution
// (ID, size, bucket, amortized charge) and the per-request results are all
// identical at any GPU worker count — and the composition matches
// batch.Plan, the pure-function spec the dispatcher implements
// incrementally.
func TestBatchDeterminismAcrossGPUWorkers(t *testing.T) {
	trace := batchTrace()
	bcfg := BatchConfig{Enabled: true, Buckets: []int{512, 1024, 2048}, MaxBatch: 3}

	type row struct {
		batchID, fp  string
		size, bucket int
		charged      float64
	}
	var want []row
	var wantBuckets int
	for gi, gpu := range []int{1, 2, 3} {
		s := newTestServer(t, Config{
			Threads: 4, MSAWorkers: 1, GPUWorkers: gpu,
			ColdModel: true, Batch: bcfg,
		})
		statuses := runBatchTrace(t, s, trace)
		var got []row
		for _, st := range statuses {
			if st.State != "done" {
				t.Fatalf("gpu=%d job %s: state %s (err %s)", gpu, st.ID, st.State, st.Error)
			}
			got = append(got, row{
				batchID: st.BatchID, fp: fingerprint(t, s, st.ID),
				size: st.BatchSize, bucket: st.BucketTokens,
				charged: st.ChargedInferenceSeconds,
			})
		}
		rep := s.BatchReport()
		if rep == nil {
			t.Fatal("BatchReport nil with batching enabled")
		}
		distinct := len(rep.PerBucket)
		if gi == 0 {
			want = got
			wantBuckets = distinct

			// Composition must equal the pure plan over the submit order.
			items := make([]batch.Item, len(trace))
			for i, name := range trace {
				in, err := inputs.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				items[i] = batch.Item{Tokens: in.TotalResidues()}
			}
			pol := batch.NewPolicy(bcfg.Buckets)
			groups := pol.Plan(items, func(int) int { return bcfg.MaxBatch })
			if len(groups) != rep.Batches {
				t.Fatalf("dispatched %d batches, plan has %d groups", rep.Batches, len(groups))
			}
			for _, g := range groups {
				for _, idx := range g {
					if got[idx].size != len(g) {
						t.Errorf("request %d: batch size %d, plan group size %d", idx, got[idx].size, len(g))
					}
				}
				for _, idx := range g[1:] {
					if got[idx].batchID != got[g[0]].batchID {
						t.Errorf("requests %d and %d planned together but dispatched apart", g[0], idx)
					}
				}
			}
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("gpu=%d request %d diverged:\n  want %+v\n  got  %+v", gpu, i, want[i], got[i])
			}
		}
		if distinct != wantBuckets {
			t.Errorf("gpu=%d: %d buckets used, want %d", gpu, distinct, wantBuckets)
		}
	}
}

// TestBatchChargedSumsToBatchTotal checks honest attribution: the amortized
// per-request charges sum to the modeled batch totals, and compile is
// charged exactly once per distinct bucket (the compiled-graph cache's
// misses), with every later same-bucket batch a hit.
func TestBatchChargedSumsToBatchTotal(t *testing.T) {
	s := newTestServer(t, Config{
		Threads: 4, MSAWorkers: 1, GPUWorkers: 2,
		ColdModel: true,
		Batch:     BatchConfig{Enabled: true, MaxBatch: 3},
	})
	statuses := runBatchTrace(t, s, batchTrace())
	var sum float64
	for _, st := range statuses {
		if st.State != "done" {
			t.Fatalf("job %s: state %s (err %s)", st.ID, st.State, st.Error)
		}
		if st.ChargedInferenceSeconds <= 0 {
			t.Errorf("job %s charged %v inference seconds", st.ID, st.ChargedInferenceSeconds)
		}
		sum += st.ChargedInferenceSeconds
	}
	rep := s.BatchReport()
	if rep.BatchedJobs != len(statuses) {
		t.Fatalf("batched jobs %d != completed %d", rep.BatchedJobs, len(statuses))
	}
	if diff := sum - rep.TotalSeconds; diff > 1e-9*rep.TotalSeconds || diff < -1e-9*rep.TotalSeconds {
		t.Errorf("charged sum %.9f != batch total %.9f", sum, rep.TotalSeconds)
	}
	distinct := len(rep.PerBucket)
	if int(rep.CompileCache.Misses) != distinct {
		t.Errorf("compile misses %d, want one per distinct bucket (%d)", rep.CompileCache.Misses, distinct)
	}
	if int(rep.CompileCache.Hits) != rep.Batches-distinct {
		t.Errorf("compile hits %d, want %d (batches minus first-of-bucket)", rep.CompileCache.Hits, rep.Batches-distinct)
	}
	var misses int64
	for _, row := range rep.PerBucket {
		misses += row.CompileMisses
		if row.CompileMisses != 1 {
			t.Errorf("bucket %d: %d compile misses, want 1", row.Bucket, row.CompileMisses)
		}
	}
	if misses != int64(distinct) {
		t.Errorf("per-bucket misses sum %d != distinct buckets %d", misses, distinct)
	}
}

// TestBatchPaddingWasteAccounting checks the meter against hand-computed
// token sums: every request is counted once in its bucket, padded tokens
// are bucket × requests, and the waste percentages follow.
func TestBatchPaddingWasteAccounting(t *testing.T) {
	trace := batchTrace()
	buckets := []int{512, 1024, 2048}
	s := newTestServer(t, Config{
		Threads: 4, MSAWorkers: 1, GPUWorkers: 1,
		ColdModel: true,
		Batch:     BatchConfig{Enabled: true, Buckets: buckets},
	})
	statuses := runBatchTrace(t, s, trace)
	for _, st := range statuses {
		if st.State != "done" {
			t.Fatalf("job %s: state %s (err %s)", st.ID, st.State, st.Error)
		}
	}

	pol := batch.NewPolicy(buckets)
	wantReq := make(map[int]int)
	wantActual := make(map[int]int64)
	for _, name := range trace {
		in, err := inputs.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		n := in.TotalResidues()
		b := pol.PadTo(n)
		wantReq[b]++
		wantActual[b] += int64(n)
	}
	rep := s.BatchReport()
	if len(rep.PerBucket) != len(wantReq) {
		t.Fatalf("%d bucket rows, want %d", len(rep.PerBucket), len(wantReq))
	}
	var padded, actual int64
	for _, row := range rep.PerBucket {
		if row.Requests != wantReq[row.Bucket] {
			t.Errorf("bucket %d: %d requests, want %d", row.Bucket, row.Requests, wantReq[row.Bucket])
		}
		if row.ActualTokens != wantActual[row.Bucket] {
			t.Errorf("bucket %d: actual tokens %d, want %d", row.Bucket, row.ActualTokens, wantActual[row.Bucket])
		}
		if want := int64(row.Bucket) * int64(row.Requests); row.PaddedTokens != want {
			t.Errorf("bucket %d: padded tokens %d, want %d", row.Bucket, row.PaddedTokens, want)
		}
		if row.WastePct() < 0 || row.WastePct() >= 100 {
			t.Errorf("bucket %d: waste %.1f%% out of range", row.Bucket, row.WastePct())
		}
		padded += row.PaddedTokens
		actual += row.ActualTokens
	}
	if want := 100 * float64(padded-actual) / float64(padded); rep.PaddingWastePct != want {
		t.Errorf("aggregate waste %.4f%%, want %.4f%%", rep.PaddingWastePct, want)
	}
}

// TestBatchStructuralInvariance checks the canonical-result half of the
// determinism contract: batching (at any bucket configuration) changes the
// charged attribution only — the per-request pipeline results are bitwise
// identical to unbatched serving.
func TestBatchStructuralInvariance(t *testing.T) {
	trace := batchTrace()
	configs := []Config{
		{Threads: 4, MSAWorkers: 1, GPUWorkers: 1},
		{Threads: 4, MSAWorkers: 1, GPUWorkers: 1,
			Batch: BatchConfig{Enabled: true, MaxBatch: 4}},
		{Threads: 4, MSAWorkers: 1, GPUWorkers: 2,
			Batch: BatchConfig{Enabled: true, Buckets: []int{2048}}},
	}
	var want []string
	for ci, cfg := range configs {
		s := newTestServer(t, cfg)
		statuses := runBatchTrace(t, s, trace)
		var got []string
		for _, st := range statuses {
			if st.State != "done" {
				t.Fatalf("config %d job %s: state %s (err %s)", ci, st.ID, st.State, st.Error)
			}
			got = append(got, fingerprint(t, s, st.ID))
		}
		if ci == 0 {
			want = got
			if s.BatchReport() != nil {
				t.Fatal("BatchReport non-nil with batching disabled")
			}
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("config %d request %d result diverged:\n  want %s\n  got  %s", ci, i, want[i], got[i])
			}
		}
	}
}

// TestBatchAmortizationBeatsUnbatched checks the perf claim end to end at
// the serving layer: on a cold-model small-input trace, batching cuts the
// total charged inference seconds against the same trace unbatched,
// because init/compile/finalize are paid per dispatch instead of per
// request.
func TestBatchAmortizationBeatsUnbatched(t *testing.T) {
	trace := []string{"2PV7", "2PV7", "2PV7", "2PV7"}
	charged := func(cfg Config) float64 {
		s := newTestServer(t, cfg)
		statuses := runBatchTrace(t, s, trace)
		var sum float64
		for _, st := range statuses {
			if st.State != "done" {
				t.Fatalf("job %s: state %s (err %s)", st.ID, st.State, st.Error)
			}
			sum += st.ChargedInferenceSeconds
		}
		return sum
	}
	unbatched := charged(Config{Threads: 4, MSAWorkers: 1, GPUWorkers: 1, ColdModel: true})
	batched := charged(Config{Threads: 4, MSAWorkers: 1, GPUWorkers: 1, ColdModel: true,
		Batch: BatchConfig{Enabled: true}})
	if batched >= unbatched {
		t.Fatalf("batched charge %.1fs not below unbatched %.1fs", batched, unbatched)
	}
	// Four identical small requests share one dispatch: the fixed costs
	// are paid once instead of four times, so the saving is substantial,
	// not marginal.
	if batched > 0.6*unbatched {
		t.Errorf("batched charge %.1fs saved too little vs unbatched %.1fs", batched, unbatched)
	}
}

// TestBatchMetricsSurface checks the operational counters: dispatch and
// compile-cache counters land in the registry and the metrics snapshot
// carries the compile-cache stats block.
func TestBatchMetricsSurface(t *testing.T) {
	s := newTestServer(t, Config{
		Threads: 4, MSAWorkers: 1, GPUWorkers: 1,
		ColdModel: true,
		Batch:     BatchConfig{Enabled: true, MaxBatch: 2},
	})
	statuses := runBatchTrace(t, s, batchTrace())
	for _, st := range statuses {
		if st.State != "done" {
			t.Fatalf("job %s: state %s", st.ID, st.State)
		}
	}
	snap := s.MetricsSnapshot()
	if snap.CompileCache == nil {
		t.Fatal("metrics snapshot missing compile_cache block")
	}
	rep := s.BatchReport()
	checks := map[string]int64{
		"batches_dispatched":   int64(rep.Batches),
		"batched_jobs":         int64(rep.BatchedJobs),
		"compile_cache_misses": int64(rep.CompileCache.Misses),
		"compile_cache_hits":   int64(rep.CompileCache.Hits),
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if rep.MeanBatchSize < 1 || rep.MeanBatchSize > 2 {
		t.Errorf("mean batch size %.2f outside [1,2] with MaxBatch 2", rep.MeanBatchSize)
	}
	if rep.OverheadFraction <= 0 || rep.OverheadFraction >= 1 {
		t.Errorf("overhead fraction %.3f out of range", rep.OverheadFraction)
	}
	for _, st := range statuses {
		if st.BatchID == "" || st.BatchSize < 1 || st.BucketTokens < 1 {
			t.Errorf("job %s missing batch attribution: %+v", st.ID, st)
		}
	}
	_ = fmt.Sprintf("%v", rep) // keep fmt for debugging ease
}
