package serve

import (
	"encoding/json"
	"io"

	"afsysbench/internal/cache"
	"afsysbench/internal/cachedisk"
)

// LoadStats is the measured outcome of driving one server configuration
// with a request mix — the per-configuration row of BENCH_serve.json.
type LoadStats struct {
	Label     string `json:"label"`
	Requests  int    `json:"requests"`
	Completed int    `json:"completed"`
	Shed      int    `json:"shed"`
	Failed    int    `json:"failed"`
	// WallSeconds is real elapsed time over the run; Throughput is
	// completed requests per wall second.
	WallSeconds float64     `json:"wall_seconds"`
	Throughput  float64     `json:"throughput_rps"`
	Latency     Percentiles `json:"latency"`
	// ShedRate is shed / submitted; CacheHitRate is the cache's served
	// fraction ((hits+shared)/lookups), 0 for a cache-disabled run.
	ShedRate     float64     `json:"shed_rate"`
	CacheHitRate float64     `json:"cache_hit_rate"`
	Cache        cache.Stats `json:"cache"`
	// Chain-level two-tier breakdown: every MSA chain of the run was
	// served by the memory tier, the disk tier, or a fresh search.
	// MemHitRate and DiskHitRate are each tier's fraction of chain
	// lookups.
	ChainMemHits  int64   `json:"chain_mem_hits,omitempty"`
	ChainDiskHits int64   `json:"chain_disk_hits,omitempty"`
	ChainFresh    int64   `json:"chain_fresh,omitempty"`
	MemHitRate    float64 `json:"mem_hit_rate,omitempty"`
	DiskHitRate   float64 `json:"disk_hit_rate,omitempty"`
	// Disk is the persistent tier's counter snapshot (nil without one).
	Disk *cachedisk.Stats `json:"disk,omitempty"`
	// Modeled virtual-time accounting for the same trace: the phase-split
	// makespan at the run's pool sizes, the serial (stock) makespan, and
	// their ratio.
	ModeledMakespan float64 `json:"modeled_makespan_seconds"`
	ModeledSerial   float64 `json:"modeled_serial_seconds"`
	ModeledSpeedup  float64 `json:"modeled_speedup"`
	// Routing gathers the run's full routing story — sheds, hedges, stage
	// retries, checkpoint restores and (in cluster mode) per-shard dispatch
	// counters — in one block, so no reader has to join scattered counters.
	Routing *RoutingBreakdown `json:"routing,omitempty"`
	// Batch is the cross-request GPU batching summary — dispatches, mean
	// batch size, overhead fraction, padding waste, compile-cache counters
	// (nil when batching is disabled).
	Batch *BatchReport `json:"batch,omitempty"`
	// Fairness is the per-tenant QoS outcome — admission accounting,
	// modeled per-tenant latency, decision/dispatch digests (nil without
	// Config.QoS).
	Fairness *FairnessReport `json:"fairness,omitempty"`
}

// RoutingBreakdown is the one-stop routing section of a load report: every
// way a request was steered somewhere other than the happy path, plus the
// per-shard dispatch table when a cluster scatter layer is attached.
type RoutingBreakdown struct {
	// Shed counts admission rejections; ShedQueueFull/ShedRateLimited/
	// ShedBrownout split them by resilience.ShedReason (rate-limited and
	// brownout only occur in QoS mode). ShedReroutes counts
	// cluster-router attempts that landed on another replica after a shed.
	Shed            int64 `json:"shed"`
	ShedQueueFull   int64 `json:"shed_queue_full,omitempty"`
	ShedRateLimited int64 `json:"shed_rate_limited,omitempty"`
	ShedBrownout    int64 `json:"shed_brownout,omitempty"`
	ShedReroutes    int64 `json:"shed_reroutes,omitempty"`
	// Hedges/HedgeBackupWins count chain-level hedged retries and how often
	// the backup finished first.
	Hedges          int64 `json:"hedges"`
	HedgeBackupWins int64 `json:"hedge_backup_wins"`
	// StageRetries counts MSA stage re-runs after transient faults;
	// ChainsRestored counts chains replayed from checkpoints instead of
	// re-searched; PartialMSA counts results served with breaker-skipped
	// databases.
	StageRetries   int64 `json:"stage_retries"`
	ChainsRestored int64 `json:"chains_restored"`
	PartialMSA     int64 `json:"partial_msa"`
	// ReplicaFailovers counts cluster-router retries on a different replica
	// after one died or failed mid-request; ShardFailovers counts scans
	// re-dispatched to a surviving owner after a shard-node kill.
	ReplicaFailovers int64 `json:"replica_failovers,omitempty"`
	ShardFailovers   int64 `json:"shard_failovers,omitempty"`
	// PerShard is the dispatch table of the scatter layer, one row per
	// shard node in shard order (nil outside cluster mode).
	PerShard []ShardCounters `json:"per_shard,omitempty"`
}

// ShardCounters is one shard node's row in the routing breakdown.
type ShardCounters struct {
	Shard      string `json:"shard"`
	Dispatches int64  `json:"dispatches"`
	Failovers  int64  `json:"failovers"`
	Killed     bool   `json:"killed,omitempty"`
}

// LoadReport is the full BENCH_serve.json document: the run parameters,
// the cache-enabled and cache-disabled passes, and the headline ratio.
type LoadReport struct {
	Mix         string `json:"mix"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`
	Threads     int    `json:"threads"`
	MSAWorkers  int    `json:"msa_workers"`
	GPUWorkers  int    `json:"gpu_workers"`
	QueueDepth  int    `json:"queue_depth"`
	CacheMB     int    `json:"cache_mb"`
	Seed        uint64 `json:"seed"`

	// CacheDir is the persistent tier's directory ("" without one).
	CacheDir string `json:"cache_dir,omitempty"`

	// Warm is the optional precompute pass that filled the disk tier
	// before measurement; WithCache the measured chain-keyed (two-tier
	// when a disk is attached) pass; NoCache the cache-disabled pass; and
	// Baseline the request-keyed memory-only pass that chains are only
	// shared within identical requests.
	Warm      *LoadStats `json:"warm,omitempty"`
	WithCache *LoadStats `json:"with_cache,omitempty"`
	NoCache   *LoadStats `json:"no_cache,omitempty"`
	Baseline  *LoadStats `json:"request_keyed_baseline,omitempty"`
	// QoS is the tenant-aware open-loop pass (afload -qos): its stats
	// carry the per-tenant fairness block.
	QoS *LoadStats `json:"qos,omitempty"`
	// ThroughputSpeedup is with-cache throughput over no-cache throughput
	// (>1 means the cache pays for itself). MakespanImprovement is the
	// request-keyed baseline's modeled makespan over the chain-keyed
	// pass's — the deployment-scale value of sharing chains across
	// complexes on an all-vs-all screening mix.
	ThroughputSpeedup   float64 `json:"throughput_speedup,omitempty"`
	MakespanImprovement float64 `json:"modeled_makespan_improvement,omitempty"`
}

// WriteJSON writes the report as indented JSON.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
