// Package serve is the throughput-oriented serving subsystem: it turns the
// single-run pipeline of internal/core into a multi-request scheduler for
// the ROADMAP's "heavy traffic" north star.
//
// The paper's central observation is that AF3 is two workloads glued
// together — a CPU/IO-bound MSA search and a GPU-bound inference — and
// that stock AF3 serializes them per request inside one container, leaving
// each resource idle half the time. Following ParaFold (PAPERS.md), the
// scheduler here decomposes every request into an MSA stage and an
// inference stage and runs them on separate bounded worker pools: a CPU
// pool sized to cores (internal/parallel) and a "GPU" pool sized to the
// machine's modeled accelerator count (internal/simgpu). Stages pipeline
// naturally — the MSA search for request N+1 overlaps inference for
// request N — and a content-addressed cache (internal/cache) short-circuits
// the MSA stage entirely for repeated queries, the AF_Cache observation
// that screening traffic is massively redundant.
//
// Admission control is a bounded queue with deterministic load shedding
// (resilience.ErrOverloaded): a request is rejected at the door, never
// half-executed. Per-request deadlines thread through the same context
// machinery the resilience layer added to the pipeline, so an expired
// request surfaces as resilience.ErrStageTimeout and sheds cleanly at the
// next stage boundary.
//
// Determinism contract: per-request results are computed with a canonical
// run index (no repeat-run jitter) and the deterministic kernels below, so
// a given request trace produces bitwise-identical per-request results at
// any pool size, with or without the cache. Admission decisions depend
// only on queue occupancy, so a trace submitted synchronously sheds
// identically for a fixed queue bound.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"afsysbench/internal/batch"
	"afsysbench/internal/cache"
	"afsysbench/internal/cachedisk"
	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/metering"
	"afsysbench/internal/msa"
	"afsysbench/internal/parallel"
	"afsysbench/internal/platform"
	"afsysbench/internal/qos"
	"afsysbench/internal/resilience"
	"afsysbench/internal/rng"
	"afsysbench/internal/simgpu"
)

// State is a job's position in the serving pipeline.
type State int

const (
	// StateQueued: admitted, waiting for an MSA worker.
	StateQueued State = iota
	// StateMSA: the MSA stage is running (or being fetched from cache).
	StateMSA
	// StateInference: the inference stage is running or queued on the GPU
	// pool.
	StateInference
	// StateDone: finished successfully; the result is available.
	StateDone
	// StateFailed: terminated by error (deadline, OOM gate, fault).
	StateFailed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateMSA:
		return "msa"
	case StateInference:
		return "inference"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Request is one prediction submission.
type Request struct {
	// Sample is the Table II sample name to predict.
	Sample string
	// Threads overrides the server's per-request worker count (0 = server
	// default).
	Threads int
	// Timeout is the per-request wall-clock deadline covering queue wait
	// and both stages (0 = the server's DefaultTimeout; negative = none
	// even if the server has a default).
	Timeout time.Duration
	// Checkpoint, when non-nil, is a caller-owned chain checkpoint the job
	// records completed MSA chains into (and replays from). The cluster
	// router passes one per logical request so a retry after a replica
	// death resumes on a healthy replica with every chain the dead one
	// finished — cross-replica checkpointed failover. nil keeps the
	// server-internal behavior (a private checkpoint when MSAAttempts > 1).
	Checkpoint *msa.Checkpoint
	// Tenant is the submitting tenant's ID (QoS mode; "" maps to
	// "default"). Ignored without Config.QoS.
	Tenant string
	// Arrival is the request's modeled arrival time in seconds (QoS mode):
	// the virtual clock the token buckets refill on and the brownout
	// backlog drains on. Negative stamps the wall clock (seconds since the
	// server was built) — the live-traffic path. Ignored without
	// Config.QoS.
	Arrival float64
}

// Config tunes a Server. Zero values mean: paper Server platform, AF3's
// 8-thread default per request, an MSA pool sized to cores, a GPU pool
// sized to the machine's modeled accelerator count, a 64-deep admission
// queue, no cache, no deadline, persistent (warm) model state.
type Config struct {
	Machine platform.Machine
	// Threads is the default per-request worker count for the MSA scan and
	// compute kernels.
	Threads int
	// MSAWorkers bounds concurrent MSA stages (the CPU pool).
	MSAWorkers int
	// GPUWorkers bounds concurrent inference stages (the accelerator pool).
	GPUWorkers int
	// QueueDepth bounds the admission queue; a submit that finds it full
	// is shed with resilience.ErrOverloaded.
	QueueDepth int
	// Cache is the content-addressed MSA cache, keyed per chain: two
	// requests sharing a chain sequence share its search, even when the
	// complexes differ. nil disables caching (every request pays its MSA
	// search).
	Cache *cache.Cache
	// DiskCache is the crash-safe persistent tier under Cache: chain
	// entries evicted from memory spill to it, and memory misses read
	// through it before recomputing. A corrupt or unreadable disk entry
	// is a miss, never an error, and a disk that stays dark trips the
	// store's breaker into memory-only mode. nil disables the tier;
	// it needs Cache to be useful (the hook only runs on memory misses).
	DiskCache *cachedisk.Store
	// RequestScopedKeys folds the whole request fingerprint into every
	// chain cache key, disabling cross-request chain sharing — chains are
	// only reused by requests for the identical complex. This is the
	// request-keyed baseline the two-tier benchmark compares against.
	RequestScopedKeys bool
	// DefaultTimeout is the per-request wall deadline when the request
	// does not set one (0 = none).
	DefaultTimeout time.Duration
	// Budget caps modeled per-stage time per request (the resilience
	// degradation ladder applies, exactly as in single-run mode).
	Budget resilience.StageBudget
	// ColdModel disables the §VI persistent-model optimization: every
	// request pays GPU init + XLA compile (stock one-container-per-request
	// deployment). The default keeps the model resident.
	ColdModel bool
	// Metrics receives operational counters; nil creates a private
	// registry (exposed via MetricsSnapshot and the /v1/metrics endpoint).
	Metrics *metering.Registry
	// Faults is the fault specification applied to every request (chaos
	// and robustness testing). Each job gets its own injector, seeded
	// deterministically from (suite seed, job ordinal), that persists
	// across MSA stage retries — so a transient budget consumed by attempt
	// one stays consumed for attempt two.
	Faults resilience.Faults
	// Retry tunes transient-fault backoff inside the pipeline (zero value:
	// the standard capped-exponential policy).
	Retry resilience.RetryPolicy
	// MSAAttempts bounds MSA stage attempts per request (default 1 — no
	// retry). With more than one attempt each job carries a chain
	// checkpoint, so a retry re-runs only the chains that had not finished
	// when the previous attempt faulted.
	MSAAttempts int
	// BreakerThreshold is the consecutive-failure count that opens a
	// database's circuit breaker (default 5); BreakerCooldown is how long
	// an open breaker rejects before allowing a half-open probe (default
	// 10s). An open breaker makes requests skip that database up front —
	// the degradation ladder runs immediately instead of re-proving a dark
	// shard on every request — and the result is annotated partial_msa.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Hedge tunes chain-level hedged retries for straggling MSA chains.
	Hedge HedgeConfig
	// PanicHook, when set, is called at the worker guard points — "msa"
	// (stage start), "handoff" (after MSA success, before the GPU queue
	// send) and "inference" (stage start) — with the job's ordinal. Chaos
	// mode panics inside it to prove worker panic isolation: the job fails
	// with error class "panic" and the worker survives.
	PanicHook func(point string, ordinal int)
	// Scatter is the cluster layer's scatter-gather scan hook (see
	// msa.Options.Scatter): every database scan of every MSA stage is
	// dispatched across simulated shard nodes instead of the in-process
	// thread fan-out. The hook's bitwise-determinism contract keeps the
	// cache keys and the per-request results independent of shard count.
	Scatter msa.ScatterFunc
	// Batch enables cross-request GPU batching with a shape-bucketed
	// compiled-graph cache (see batch.go). Zero value: every inference
	// dispatches alone.
	Batch BatchConfig
	// QoS enables multi-tenant admission and weighted-fair MSA dispatch
	// (see qos.go): requests carry a tenant ID and modeled arrival, the
	// controller decides admit/shed/degrade on its virtual clock, and the
	// FIFO MSA queue becomes a deficit-round-robin WFQ over chain-token
	// costs. The controller is deliberately shareable across replicas (one
	// quota cluster-wide). nil keeps the legacy channel-based admission.
	QoS *qos.Controller
	// BrownoutMSABudget is the modeled MSA budget (seconds) imposed on
	// requests degraded to qos.LevelDropDB, engaging the database-drop
	// degradation ladder for over-quota tenants under brownout (default
	// 300s — under the full-profile cost of the large Table II samples,
	// above the small ones; an explicit Budget.MSASeconds tighter than
	// this wins).
	BrownoutMSABudget float64
}

func (c Config) withDefaults() Config {
	if c.Machine.Name == "" {
		c.Machine = platform.Server()
	}
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.MSAWorkers <= 0 {
		c.MSAWorkers = parallel.DefaultWorkers()
	}
	if c.GPUWorkers <= 0 {
		c.GPUWorkers = simgpu.Devices(c.Machine)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Metrics == nil {
		c.Metrics = metering.NewRegistry()
	}
	if c.MSAAttempts <= 0 {
		c.MSAAttempts = 1
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.BrownoutMSABudget <= 0 {
		c.BrownoutMSABudget = 300
	}
	return c
}

// Job is one admitted request moving through the pipeline. All mutable
// fields are guarded by the owning Server's mutex; read them through
// Status and Result.
type Job struct {
	id        string
	ordinal   int
	in        *inputs.Input
	machine   platform.Machine
	threads   int
	deadline  time.Time
	submitted time.Time

	state    State
	cacheHit bool
	err      error
	errClass string
	msaPhase *core.MSAPhase
	result   *core.PipelineResult
	// partialMSA marks a result computed with one or more databases
	// skipped by an open circuit breaker.
	partialMSA bool
	// inj is the job's fault injector (nil without configured faults). It
	// lives on the job, not the stage attempt, so transient budgets are
	// consumed exactly once across retries.
	inj *resilience.Injector
	// checkpoint preserves completed MSA chain deltas across stage
	// retries (nil when MSAAttempts is 1).
	checkpoint *msa.Checkpoint
	// chargedMSASeconds is the modeled MSA time this request actually
	// paid: the phase time scaled by the fresh-work share of its chains.
	// A fully cached request charges zero, a partial hit pays only its
	// fresh chains. The modeled scheduler and the per-job status use it.
	chargedMSASeconds float64
	wallSeconds       float64
	// chainsMem/chainsDisk/chainsFresh count where this request's MSA
	// chains came from: the memory tier, the disk tier, or a real search.
	chainsMem   int
	chainsDisk  int
	chainsFresh int
	// chargedInfSeconds is the modeled inference time this request is
	// charged. Unbatched it equals the canonical breakdown's total; in a
	// batched dispatch it is the amortized share (batch total / members),
	// so member charges always sum to the batch's modeled time.
	chargedInfSeconds float64
	// leftUpstream marks the job as no longer upstream of the batch
	// dispatcher (received, or terminal before hand-off); guards the
	// once-only preBatch decrement.
	leftUpstream bool
	// batchID/batchSize/bucketTokens describe the batched dispatch that
	// carried this job (batching mode only).
	batchID      string
	batchSize    int
	bucketTokens int
	// tenant/arrival/qosLevel/dispatchSeq are the QoS coordinates (QoS
	// mode only): the owning tenant, the modeled arrival the admission
	// decision ran at, the brownout rung the request runs under, and the
	// WFQ dispatch sequence number assigned at pop time.
	tenant      string
	arrival     float64
	qosLevel    qos.Level
	dispatchSeq int
}

// JobStatus is a point-in-time snapshot of one job, also the HTTP
// status-endpoint payload.
type JobStatus struct {
	ID     string `json:"id"`
	Sample string `json:"sample"`
	State  string `json:"state"`
	// CacheHit marks a fully cached request: every MSA chain came from a
	// cache tier and no database was searched.
	CacheHit bool `json:"cache_hit"`
	// ChainsMem/ChainsDisk/ChainsFresh split the request's MSA chains by
	// origin: memory-tier hit, disk-tier hit, fresh search.
	ChainsMem   int `json:"chains_mem,omitempty"`
	ChainsDisk  int `json:"chains_disk,omitempty"`
	ChainsFresh int `json:"chains_fresh,omitempty"`
	// ChainsRestored counts MSA chains replayed from the job's checkpoint —
	// work a previous attempt (possibly on a dead replica) completed that
	// this one did not repeat.
	ChainsRestored int `json:"chains_restored,omitempty"`
	// MSASeconds is the modeled MSA time charged to this request (the
	// fresh-work share of the phase time; 0 on a full cache hit);
	// InferenceSeconds the modeled inference time.
	MSASeconds       float64 `json:"msa_seconds"`
	InferenceSeconds float64 `json:"inference_seconds"`
	Degraded         bool    `json:"degraded,omitempty"`
	// ChargedInferenceSeconds is the inference time attributed to this
	// request: the canonical breakdown total unbatched, the amortized
	// share of the batch total when the request rode a batched dispatch.
	ChargedInferenceSeconds float64 `json:"charged_inference_seconds,omitempty"`
	// BatchID/BatchSize/BucketTokens identify the batched dispatch that
	// carried this request and the shape bucket it was padded to.
	BatchID      string `json:"batch_id,omitempty"`
	BatchSize    int    `json:"batch_size,omitempty"`
	BucketTokens int    `json:"bucket_tokens,omitempty"`
	// Tenant is the owning tenant (QoS mode); QoSLevel the brownout rung
	// the request ran under ("" when none applied).
	Tenant   string `json:"tenant,omitempty"`
	QoSLevel string `json:"qos_level,omitempty"`
	// PartialMSA marks a result computed with databases skipped by an
	// open circuit breaker (a strict subset of Degraded).
	PartialMSA bool    `json:"partial_msa,omitempty"`
	Error      string  `json:"error,omitempty"`
	ErrorClass string  `json:"error_class,omitempty"`
	WallMs     float64 `json:"wall_ms,omitempty"`
}

// Server is the phase-split scheduler. Build with New (or NewWithSuite),
// Submit requests at any time after construction, call Start to launch the
// worker pools and Stop to drain and release them.
type Server struct {
	suite *core.Suite
	cfg   Config

	mu      sync.Mutex
	idle    sync.Cond // signaled when pending reaches 0
	jobs    map[string]*Job
	order   []*Job // admitted jobs in submit order
	pending int    // admitted but not yet terminal
	started bool
	stopped bool
	killed  bool

	// killCtx is the server's life context: Kill cancels it, which fails
	// every in-flight and queued job at its next context check — the
	// cluster harness's simulation of abrupt replica death.
	killCtx    context.Context
	killCancel context.CancelFunc

	msaQ chan *Job
	infQ chan *Job
	wgA  sync.WaitGroup // MSA workers
	wgB  sync.WaitGroup // GPU workers

	// wfq replaces msaQ as the MSA dispatch queue in QoS mode: per-tenant
	// FIFO sub-queues drained by deficit round-robin over chain-token
	// costs (nil without Config.QoS). epoch anchors wall-clock arrival
	// stamps for live HTTP traffic.
	wfq   *qos.WFQ[*Job]
	epoch time.Time

	// Batching tier (nil/zero unless cfg.Batch.Enabled; see batch.go).
	// policy pads token counts into shape buckets; the dispatcher
	// goroutine (wgDisp) turns infQ into sealed batches on batchQ;
	// batchKick wakes it for quiescence re-checks; compileCache is the
	// compiled-graph cache; meter and batchAgg (guarded by mu) hold the
	// padding/compile and overhead accounting; preBatch (guarded by mu)
	// counts admitted jobs the dispatcher has not yet received.
	policy       batch.Policy
	batchQ       chan *inferenceBatch
	batchKick    chan struct{}
	wgDisp       sync.WaitGroup
	compileCache *cache.Cache
	meter        *batch.Meter
	preBatch     int
	batchAgg     batchAggregate

	// msaLive/gpuLive count live worker goroutines (PoolHealth); guarded
	// by mu.
	msaLive int
	gpuLive int

	// breakers is one circuit breaker per database, built at construction
	// and read-only afterwards (each breaker has its own lock).
	breakers map[string]*resilience.Breaker
	// hedge estimates the chain-hedging delay (nil unless enabled).
	hedge *hedgeEstimator
}

// New builds a server with its own suite instance (synthetic databases,
// AF3-scale model).
func New(cfg Config) (*Server, error) {
	suite, err := core.NewSuite()
	if err != nil {
		return nil, err
	}
	return NewWithSuite(suite, cfg), nil
}

// NewWithSuite builds a server over an existing suite — tests and
// in-process load generators share one suite to avoid rebuilding the
// synthetic databases per server.
func NewWithSuite(suite *core.Suite, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		suite: suite,
		cfg:   cfg,
		jobs:  make(map[string]*Job),
		msaQ:  make(chan *Job, cfg.QueueDepth),
		infQ:  make(chan *Job, cfg.QueueDepth),
	}
	s.killCtx, s.killCancel = context.WithCancel(context.Background())
	s.idle.L = &s.mu
	if cfg.QoS != nil {
		s.wfq = qos.NewWFQ[*Job](0, cfg.QoS.Weight)
		s.epoch = time.Now()
	}
	s.initBreakers()
	s.initBatching()
	if cfg.Cache != nil && cfg.DiskCache != nil {
		// Spill-on-eviction: a chain pushed out of the memory LRU is
		// written through to the persistent tier instead of being lost.
		cfg.Cache.SetOnEvict(s.spillChain)
	}
	if cfg.Hedge.Enabled {
		s.hedge = newHedgeEstimator(cfg.Hedge)
	}
	return s
}

// Config returns the server's effective (default-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// Metrics returns the server's counter registry.
func (s *Server) Metrics() *metering.Registry { return s.cfg.Metrics }

// Start launches the MSA and GPU worker pools. Requests submitted before
// Start wait in the admission queue (which is what makes shed decisions a
// pure function of the trace and the queue bound under test).
func (s *Server) Start() {
	s.mu.Lock()
	if s.started || s.stopped {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	for i := 0; i < s.cfg.MSAWorkers; i++ {
		s.wgA.Add(1)
		go s.msaWorker()
	}
	if s.cfg.Batch.Enabled {
		// The single dispatcher owns batch composition (the determinism
		// argument in batch.go); the GPU pool consumes sealed batches.
		s.wgDisp.Add(1)
		go s.batchDispatcher()
		for i := 0; i < s.cfg.GPUWorkers; i++ {
			s.wgB.Add(1)
			go s.batchGPUWorker()
		}
		return
	}
	for i := 0; i < s.cfg.GPUWorkers; i++ {
		s.wgB.Add(1)
		go s.gpuWorker()
	}
}

// Stop drains the pipeline — queued jobs still execute — and releases
// every worker goroutine. Submits after Stop are rejected. Safe to call
// once; a never-started server just marks itself stopped.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	started := s.started
	s.mu.Unlock()
	if s.wfq != nil {
		// QoS mode: the WFQ is the MSA dispatch queue — closing it drains
		// the backlog and releases the pool.
		s.wfq.Close()
	}
	close(s.msaQ)
	if started {
		s.wgA.Wait()
	}
	close(s.infQ)
	if started {
		if s.cfg.Batch.Enabled {
			// The dispatcher seals its open batch and closes batchQ on
			// infQ close; the GPU pool drains the sealed tail.
			s.wgDisp.Wait()
		}
		s.wgB.Wait()
	}
}

// Submit admits one request or sheds it. The decision is synchronous and
// deterministic: if the admission queue has a free slot the job is queued
// and its ID returned; otherwise resilience.ErrOverloaded comes back and
// the server state is untouched. Unknown samples are rejected before
// admission.
func (s *Server) Submit(req Request) (string, error) {
	in, err := inputs.ByName(req.Sample)
	if err != nil {
		return "", err
	}
	threads := req.Threads
	if threads <= 0 {
		threads = s.cfg.Threads
	}
	now := time.Now()
	var deadline time.Time
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		deadline = now.Add(timeout)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return "", errors.New("serve: server stopped")
	}
	if s.killed {
		return "", errors.New("serve: server killed")
	}
	job := &Job{
		ordinal:   len(s.order),
		in:        in,
		machine:   core.MachineFor(in, s.cfg.Machine),
		threads:   threads,
		deadline:  deadline,
		submitted: now,
		state:     StateQueued,
	}
	job.id = fmt.Sprintf("j%04d-%s", job.ordinal, in.Name)
	if len(s.cfg.Faults) > 0 {
		// One injector per job, seeded by ordinal: fault decisions are a
		// pure function of the trace, and budgets persist across stage
		// retries.
		job.inj = resilience.NewInjector(s.cfg.Faults, rng.New(s.suite.Seed).Split(uint64(job.ordinal)))
	}
	if req.Checkpoint != nil {
		job.checkpoint = req.Checkpoint
	} else if s.cfg.MSAAttempts > 1 {
		job.checkpoint = msa.NewCheckpoint()
	}
	if s.qosEnabled() {
		// Tenant-aware admission: the controller decides on its modeled
		// clock — rate limit, modeled queue bound, brownout ladder — and an
		// admitted job enters the weighted-fair queue at its chain-token
		// cost instead of the FIFO channel.
		tenant := req.Tenant
		if tenant == "" {
			tenant = "default"
		}
		arrival := req.Arrival
		if arrival < 0 {
			arrival = time.Since(s.epoch).Seconds()
		}
		cost := float64(in.TotalResidues())
		d := s.cfg.QoS.Admit(tenant, arrival, cost)
		if !d.Admit {
			s.cfg.Metrics.Add("requests_shed", 1)
			s.cfg.Metrics.Add(qosReasonCounter(d.Reason.String()), 1)
			return "", resilience.ErrOverloaded{
				Queued:   int(d.Backlog),
				Capacity: int(d.Capacity),
				Reason:   d.Reason,
				Tenant:   tenant,
			}
		}
		job.tenant = tenant
		job.arrival = arrival
		job.qosLevel = d.Level
		if d.Level > qos.LevelNone {
			s.cfg.Metrics.Add("requests_brownout", 1)
		}
		key := tenant
		if s.cfg.QoS.Config().FIFO {
			// The unprotected comparator: one shared sub-queue, so pops
			// come out in global submission order — true FIFO, not
			// per-tenant round-robin.
			key = "\x00fifo"
		}
		s.wfq.Push(key, cost, job)
	} else {
		select {
		case s.msaQ <- job:
		default:
			s.cfg.Metrics.Add("requests_shed", 1)
			s.cfg.Metrics.Add(qosReasonCounter(resilience.ShedQueueFull.String()), 1)
			return "", resilience.ErrOverloaded{Queued: len(s.msaQ), Capacity: cap(s.msaQ)}
		}
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job)
	s.pending++
	if s.cfg.Batch.Enabled {
		s.preBatch++
	}
	s.cfg.Metrics.Add("requests_admitted", 1)
	return job.id, nil
}

// Kill simulates abrupt replica death for the cluster chaos harness: the
// server stops admitting (submits fail immediately), every in-flight and
// queued job is failed at its next context check, and Ready reports false.
// Unlike Stop it does not drain — queued jobs die where they stand. The
// worker goroutines survive (they just drain failed jobs), so a killed
// server still Stops cleanly. Idempotent.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	s.mu.Unlock()
	s.killCancel()
	s.cfg.Metrics.Add("server_killed", 1)
}

// Killed reports whether Kill has been called.
func (s *Server) Killed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// WaitIdle blocks until every admitted job has reached a terminal state
// (or ctx is done). The server must be started, or undrained jobs wait
// forever.
func (s *Server) WaitIdle(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.pending > 0 {
			s.idle.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Wake the waiter goroutine so it can observe and exit; pending
		// jobs keep running.
		s.mu.Lock()
		s.idle.Broadcast()
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Status returns a snapshot of one job.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(job), true
}

// Statuses returns snapshots of all admitted jobs in submit order.
func (s *Server) Statuses() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, len(s.order))
	for i, job := range s.order {
		out[i] = s.statusLocked(job)
	}
	return out
}

func (s *Server) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:          job.id,
		Sample:      job.in.Name,
		State:       job.state.String(),
		CacheHit:    job.cacheHit,
		ChainsMem:   job.chainsMem,
		ChainsDisk:  job.chainsDisk,
		ChainsFresh: job.chainsFresh,
	}
	if s.qosEnabled() {
		st.Tenant = job.tenant
		if job.qosLevel > qos.LevelNone {
			st.QoSLevel = job.qosLevel.String()
		}
	}
	if job.err != nil {
		st.Error = job.err.Error()
		st.ErrorClass = job.errClass
	}
	if job.state == StateDone || job.state == StateFailed {
		st.WallMs = job.wallSeconds * 1000
	}
	if job.result != nil {
		st.MSASeconds = job.chargedMSASeconds
		st.InferenceSeconds = job.result.Inference.Total()
		st.ChargedInferenceSeconds = job.chargedInfSeconds
		st.BatchID = job.batchID
		st.BatchSize = job.batchSize
		st.BucketTokens = job.bucketTokens
		st.Degraded = job.result.Resilience.Degraded
		st.PartialMSA = job.partialMSA
	}
	if job.msaPhase != nil && job.msaPhase.Data != nil {
		st.ChainsRestored = job.msaPhase.Data.RestoredChains
	}
	return st
}

// Result returns the completed pipeline result for a job (nil, false until
// StateDone).
func (s *Server) Result(id string) (*core.PipelineResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok || job.result == nil {
		return nil, false
	}
	return job.result, true
}

// pipelineOpts builds the per-request options. RunIndex is pinned to 0 —
// the canonical, jitter-free timing draw — so results are a pure function
// of (sample, threads, machine, database set) and therefore identical
// across pool sizes and safe to share through the cache. FreshMSA keeps
// the suite's experiment memo out of the serving path: internal/cache is
// the only reuse layer.
func (s *Server) pipelineOpts(job *Job) core.PipelineOptions {
	return core.PipelineOptions{
		Threads:   job.threads,
		RunIndex:  0,
		WarmStart: !s.cfg.ColdModel,
		Budget:    s.cfg.Budget,
		Retry:     s.cfg.Retry,
		FreshMSA:  true,
		Injector:  job.inj,
		Scatter:   s.cfg.Scatter,
	}
}

// chainCodecGob identifies the gob-encoded msa.CachedChain payload format
// in the persistent tier's entry headers. Bump when the wire struct
// changes; entries with an unknown codec are dropped at read time.
const chainCodecGob uint16 = 1

// chainKey is the content address of one chain's MSA search: everything
// that determines the chain delta goes in — the chain content
// (msa.ChainFingerprint: type and residues, independent of the per-complex
// label), the database-set identity, the database profile the stage plans
// against (scope covers both breaker skips and the degradation ladder, so
// a delta searched under a reduced profile is never served for the full
// one), the thread count that shards the scan, and the scan-engine
// options. The machine and suite seed are deliberately absent: a chain
// delta is platform-independent (the machine models replay it later) and
// the search itself is deterministic. With RequestScopedKeys the whole
// request fingerprint is folded in, confining reuse to identical requests.
func (s *Server) chainKey(job *Job, scope string, chain inputs.Chain) string {
	parts := []string{
		"msa-chain/v2",
		msa.ChainFingerprint(chain),
		s.suite.DBs.Fingerprint(),
		"scope=" + scope,
		strconv.Itoa(job.threads),
		fmt.Sprintf("search=%+v", s.suite.Search),
	}
	if s.cfg.RequestScopedKeys {
		parts = append(parts, "req="+inputFingerprint(job.in))
	}
	return cache.Key(parts...)
}

// chainFetcher builds the job's msa.ChainFetch hook: memory tier first
// (with singleflight across concurrent identical chains), then the disk
// tier, then the real search. Tier accounting lands on the job and the
// metrics registry.
func (s *Server) chainFetcher(job *Job) msa.ChainFetch {
	return func(scope string, chain inputs.Chain, compute func() (*msa.CachedChain, error)) (*msa.CachedChain, bool, error) {
		key := s.chainKey(job, scope, chain)
		fromDisk := false
		v, hit, err := s.cfg.Cache.GetOrCompute(key, func() (any, int64, error) {
			if cc := s.diskLookup(key); cc != nil {
				fromDisk = true
				return cc, cc.SizeBytes(), nil
			}
			cc, err := compute()
			if err != nil {
				return nil, 0, err
			}
			return cc, cc.SizeBytes(), nil
		})
		if err != nil {
			return nil, false, err
		}
		cc := v.(*msa.CachedChain)
		var counter string
		s.mu.Lock()
		switch {
		case hit:
			job.chainsMem++
			counter = "msa_chain_mem_hits"
		case fromDisk:
			job.chainsDisk++
			counter = "msa_chain_disk_hits"
		default:
			job.chainsFresh++
			counter = "msa_chain_misses"
		}
		s.mu.Unlock()
		s.cfg.Metrics.Add(counter, 1)
		return cc, hit || fromDisk, nil
	}
}

// diskLookup reads one chain entry through the persistent tier. Every
// failure mode — a miss, a tripped breaker, a corrupt file, an
// undecodable payload — returns nil, never an error: the disk tier can
// only ever save work. A payload that passes the store's checksum but
// fails to decode is semantic corruption (e.g. a format drift), so the
// entry is dropped to be rebuilt.
func (s *Server) diskLookup(key string) *msa.CachedChain {
	payload, codec, ok := s.cfg.DiskCache.Get(key)
	if !ok {
		return nil
	}
	if codec != chainCodecGob {
		s.cfg.DiskCache.Drop(key)
		return nil
	}
	cc, err := msa.DecodeCachedChain(payload)
	if err != nil {
		s.cfg.DiskCache.Drop(key)
		s.cfg.Metrics.Add("msa_chain_disk_decode_drops", 1)
		return nil
	}
	return cc
}

// spillChain is the memory cache's eviction hook: a chain pushed out of
// the LRU is written through to the disk tier. Best-effort — a failed or
// degraded spill just means a future miss, never an error.
func (s *Server) spillChain(key string, val any, size int64) {
	cc, ok := val.(*msa.CachedChain)
	if !ok {
		return
	}
	payload, err := cc.Encode()
	if err != nil {
		return
	}
	_ = s.cfg.DiskCache.Put(key, chainCodecGob, payload)
	s.cfg.Metrics.Add("msa_chain_spills", 1)
}

// SpillCache flushes every chain entry currently resident in the memory
// tier to the disk tier and returns how many were written (entries the
// disk already holds count — Put is idempotent). This is the afload -warm
// precompute path: fill the persistent tier from a trace now so a later
// cold-memory run starts against a warm disk.
func (s *Server) SpillCache() int {
	if s.cfg.Cache == nil || s.cfg.DiskCache == nil {
		return 0
	}
	n := 0
	s.cfg.Cache.Range(func(key string, val any, size int64) bool {
		cc, ok := val.(*msa.CachedChain)
		if !ok {
			return true
		}
		payload, err := cc.Encode()
		if err != nil {
			return true
		}
		if s.cfg.DiskCache.Put(key, chainCodecGob, payload) == nil {
			n++
		}
		return true
	})
	return n
}

// inputFingerprint serializes the content of an input that the MSA phase
// depends on: every chain's molecule type, copy count and residues. The
// name is included because the deterministic timing model derives its
// per-sample draw from it.
func inputFingerprint(in *inputs.Input) string {
	var b strings.Builder
	b.WriteString(in.Name)
	for _, c := range in.Chains {
		fmt.Fprintf(&b, ";%d|%d|%s|%s", c.Sequence.Type, len(c.IDs), c.Sequence.ID, c.Sequence.Letters())
	}
	return b.String()
}

func (s *Server) msaWorker() {
	defer s.wgA.Done()
	s.adjustLive(&s.msaLive, 1)
	defer s.adjustLive(&s.msaLive, -1)
	if s.wfq != nil {
		// QoS mode: pop the weighted-fair queue. The sequence number is
		// allocated under the WFQ lock, so the (job, seq) pairing — and
		// therefore the dispatch digest — is identical no matter how many
		// workers race here.
		for {
			job, seq, ok := s.wfq.Pop()
			if !ok {
				return
			}
			s.mu.Lock()
			job.dispatchSeq = seq
			s.mu.Unlock()
			s.cfg.QoS.RecordDispatch(job.tenant, seq)
			s.runMSAGuarded(job)
		}
	}
	for job := range s.msaQ {
		s.runMSAGuarded(job)
	}
}

func (s *Server) gpuWorker() {
	defer s.wgB.Done()
	s.adjustLive(&s.gpuLive, 1)
	defer s.adjustLive(&s.gpuLive, -1)
	for job := range s.infQ {
		s.runInferenceGuarded(job)
	}
}

func (s *Server) adjustLive(counter *int, delta int) {
	s.mu.Lock()
	*counter += delta
	msaLive, gpuLive := s.msaLive, s.gpuLive
	s.mu.Unlock()
	// Pool-health gauges: a shortfall against the configured pool size on a
	// running server means a worker goroutine died.
	s.cfg.Metrics.SetGauge("msa_workers_live", int64(msaLive))
	s.cfg.Metrics.SetGauge("gpu_workers_live", int64(gpuLive))
}

// runMSAGuarded isolates per-job panics: a panic anywhere in the MSA stage
// (or the hand-off hook) fails that one job with error class "panic" while
// the worker goroutine survives, keeping the pool at full strength. The
// stage marker distinguishes a panic during the search ("msa") from one at
// the GPU-queue hand-off ("handoff") — the hand-off case is the historical
// job-drain bug: the job was accepted by the MSA pool but never reached
// the GPU pool, so only the recovery path can make it terminal.
func (s *Server) runMSAGuarded(job *Job) {
	stage := "msa"
	defer func() {
		if r := recover(); r != nil {
			s.cfg.Metrics.Add("worker_panics", 1)
			s.cfg.Metrics.Add("worker_panics_"+stage, 1)
			s.fail(job, resilience.ErrPanic{Stage: stage, Value: fmt.Sprint(r)})
		}
	}()
	s.runMSA(job, &stage)
}

// runInferenceGuarded is runMSAGuarded's GPU-side twin.
func (s *Server) runInferenceGuarded(job *Job) {
	defer func() {
		if r := recover(); r != nil {
			s.cfg.Metrics.Add("worker_panics", 1)
			s.cfg.Metrics.Add("worker_panics_inference", 1)
			s.fail(job, resilience.ErrPanic{Stage: "inference", Value: fmt.Sprint(r)})
		}
	}()
	s.runInference(job)
}

// jobCtx derives the request's wall-clock context from its deadline and the
// server's life context, so a Kill fails every in-flight stage at its next
// context check.
func (s *Server) jobCtx(job *Job) (context.Context, context.CancelFunc) {
	if job.deadline.IsZero() {
		return context.WithCancel(s.killCtx)
	}
	return context.WithDeadline(s.killCtx, job.deadline)
}

// runMSA executes (or fetches) the MSA stage for one job and hands it to
// the GPU pool. The send into the inference queue blocks when the GPU pool
// is saturated — that backpressure is the pipelining: this MSA worker
// pauses instead of racing ahead unboundedly.
//
// The fault-tolerance envelope around the stage: the breaker plan decides
// which databases are skipped up front; the stage retry loop re-runs a
// transiently faulted search up to MSAAttempts times, with the job's
// checkpoint replaying every chain the failed attempt completed; the hedge
// estimator (when enabled) sets the straggling-chain backup delay; and the
// stage outcome settles every involved breaker.
func (s *Server) runMSA(job *Job, stage *string) {
	s.setState(job, StateMSA)
	s.cfg.Metrics.Add("msa_stage_runs", 1)
	if h := s.cfg.PanicHook; h != nil {
		h("msa", job.ordinal)
	}
	ctx, cancel := s.jobCtx(job)
	defer cancel()
	skip, probes := s.breakerPlan(job)
	opts := s.pipelineOpts(job)
	opts.SkipDBs = skip
	opts.MSACheckpoint = job.checkpoint
	if s.hedge != nil && job.qosLevel < qos.LevelHedgeOff {
		// The first brownout rung: an over-quota request under load runs
		// without chain-level hedged retries — no backup searches burning
		// CPU the fair-share tenants need.
		opts.ChainDone = s.hedge.observe
		opts.HedgeAfter = s.hedge.budget()
	}
	if job.qosLevel >= qos.LevelDropDB {
		// The deepest non-shed rung: tighten the modeled MSA budget onto
		// the database-drop degradation ladder (PR 2) — the over-quota
		// request trades MSA depth for shared-pool time.
		if b := s.cfg.Budget.MSASeconds; b <= 0 || b > s.cfg.BrownoutMSABudget {
			opts.Budget.MSASeconds = s.cfg.BrownoutMSABudget
		}
	}
	if s.cfg.Cache != nil {
		opts.ChainCache = s.chainFetcher(job)
	}
	var mp *core.MSAPhase
	var err error
	for attempt := 1; ; attempt++ {
		mp, err = s.suite.RunMSAPhase(ctx, job.in, job.machine, opts)
		if err == nil {
			if attempt > 1 {
				restored := 0
				if mp.Data != nil {
					restored = mp.Data.RestoredChains
				}
				mp.Resilience.Record(resilience.Event{
					Stage: "msa", Kind: resilience.KindChainRetry,
					Detail: fmt.Sprintf("stage attempt %d succeeded; %d chains replayed from checkpoint", attempt, restored),
				})
			}
			break
		}
		if attempt >= s.cfg.MSAAttempts || !resilience.IsTransient(err) || ctx.Err() != nil {
			break
		}
		s.cfg.Metrics.Add("msa_stage_retries", 1)
	}
	// A request is a cache hit when every chain came from a cache tier —
	// no database was searched on its behalf. Charged MSA seconds scale by
	// the fresh-work share: the phase time is cache-independent (the
	// determinism contract), but a request whose chains were largely
	// replayed only occupies a CPU lane for the work it really added.
	hit := false
	var charged float64
	if err == nil {
		charged = mp.Seconds
		if d := mp.Data; d != nil && d.CachedWork > 0 {
			hit = d.FreshWork == 0
			charged = mp.Seconds * float64(d.FreshWork) / float64(d.FreshWork+d.CachedWork)
		}
	}
	s.feedBreakers(job, mp, hit, err, skip, probes)
	if err != nil {
		s.fail(job, err)
		return
	}
	if mp.Data != nil {
		if mp.Data.Hedges > 0 {
			s.cfg.Metrics.Add("msa_hedges", int64(mp.Data.Hedges))
			s.cfg.Metrics.Add("msa_hedge_backup_wins", int64(mp.Data.HedgeBackupWins))
		}
		if mp.Data.RestoredChains > 0 {
			s.cfg.Metrics.Add("msa_chains_restored", int64(mp.Data.RestoredChains))
		}
	}
	if job.qosLevel > qos.LevelNone {
		mp.Resilience.Record(resilience.Event{
			Stage: "msa", Kind: resilience.KindBrownout,
			Detail: fmt.Sprintf("tenant %s degraded at rung %s", job.tenant, job.qosLevel),
		})
	}
	s.mu.Lock()
	job.msaPhase = mp
	job.cacheHit = hit
	job.partialMSA = len(skip) > 0
	job.chargedMSASeconds = charged
	s.mu.Unlock()
	if hit {
		s.cfg.Metrics.Add("msa_cache_hits", 1)
	}
	if len(skip) > 0 {
		s.cfg.Metrics.Add("requests_partial_msa", 1)
	}
	*stage = "handoff"
	if h := s.cfg.PanicHook; h != nil {
		h("handoff", job.ordinal)
	}
	s.infQ <- job
}

// runInference executes the inference stage and completes the job. A job
// that somehow arrives already terminal (failed elsewhere under fault
// load) is left alone — terminal states are final.
func (s *Server) runInference(job *Job) {
	s.runInferenceJob(job, nil, 0)
}

// runInferenceJob is the shared inference completion for the unbatched
// path (b == nil) and batched dispatch members. The per-request result is
// canonical in both modes — computed with the same pipeline options, so it
// is bitwise identical whether or not the job rode a batch. Batching
// affects only attribution: a batch member's charged inference seconds are
// its amortized share of the batched dispatch's modeled time instead of
// the canonical breakdown total.
func (s *Server) runInferenceJob(job *Job, b *inferenceBatch, share float64) {
	s.mu.Lock()
	if job.state == StateDone || job.state == StateFailed {
		s.mu.Unlock()
		return
	}
	job.state = StateInference
	s.mu.Unlock()
	s.cfg.Metrics.Add("inference_stage_runs", 1)
	if h := s.cfg.PanicHook; h != nil {
		h("inference", job.ordinal)
	}
	ctx, cancel := s.jobCtx(job)
	defer cancel()
	opts := s.pipelineOpts(job)
	pb, err := s.suite.RunInferencePhase(ctx, job.in, job.machine, opts)
	if err != nil {
		s.fail(job, err)
		return
	}
	res := core.ComposeResult(job.in, job.machine, job.threads, job.msaPhase, pb)
	s.mu.Lock()
	if job.state == StateDone || job.state == StateFailed {
		s.mu.Unlock()
		return
	}
	job.result = res
	job.chargedInfSeconds = res.Inference.Total()
	if b != nil {
		job.chargedInfSeconds = share
		job.batchID = b.id
		job.batchSize = len(b.jobs)
		job.bucketTokens = b.bucket
	}
	job.state = StateDone
	job.wallSeconds = time.Since(job.submitted).Seconds()
	s.terminalLocked()
	s.mu.Unlock()
	s.cfg.Metrics.Add("requests_completed", 1)
	if res.Resilience.Degraded {
		s.cfg.Metrics.Add("requests_degraded", 1)
	}
}

// ErrorClass buckets a request failure for metrics, exit codes and the
// HTTP API: "panic" (a recovered worker panic), "timeout" (deadline or
// stage budget), "oom" (the §VI memory gate), "overloaded-queue-full" /
// "overloaded-rate-limited" / "overloaded-brownout" (admission shed,
// classed by resilience.ShedReason), "fault" (an injected or storage
// fault that exhausted its retry budget — including a database that
// stayed dark), "error" otherwise.
func ErrorClass(err error) string {
	var st resilience.ErrStageTimeout
	var oom core.ErrProjectedOOM
	var fe *resilience.FaultError
	switch {
	case resilience.IsPanic(err):
		return "panic"
	case errors.As(err, &st),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return "timeout"
	case errors.As(err, &oom):
		return "oom"
	case resilience.IsOverloaded(err):
		return "overloaded-" + resilience.ShedReasonOf(err).String()
	case errors.As(err, &fe):
		return "fault"
	default:
		return "error"
	}
}

// fail moves a job to StateFailed. Idempotent: a job already terminal is
// left untouched, so the panic-recovery path and a concurrent stage
// completion cannot double-fail (or double-decrement the pending count).
func (s *Server) fail(job *Job, err error) {
	// A job failing before the GPU hand-off never reaches the batch
	// dispatcher; release its upstream slot so quiescence sealing is not
	// held hostage by a dead job. No-op when batching is off or the
	// dispatcher already received it.
	s.leaveUpstream(job)
	class := ErrorClass(err)
	s.mu.Lock()
	if job.state == StateDone || job.state == StateFailed {
		s.mu.Unlock()
		return
	}
	job.err = err
	job.errClass = class
	job.state = StateFailed
	job.wallSeconds = time.Since(job.submitted).Seconds()
	s.terminalLocked()
	s.mu.Unlock()
	s.cfg.Metrics.Add("requests_failed", 1)
	s.cfg.Metrics.Add("requests_failed_"+class, 1)
}

func (s *Server) setState(job *Job, st State) {
	s.mu.Lock()
	if job.state != StateDone && job.state != StateFailed {
		job.state = st
	}
	s.mu.Unlock()
}

func (s *Server) terminalLocked() {
	s.pending--
	if s.pending == 0 {
		s.idle.Broadcast()
	}
}
