// Package serve is the throughput-oriented serving subsystem: it turns the
// single-run pipeline of internal/core into a multi-request scheduler for
// the ROADMAP's "heavy traffic" north star.
//
// The paper's central observation is that AF3 is two workloads glued
// together — a CPU/IO-bound MSA search and a GPU-bound inference — and
// that stock AF3 serializes them per request inside one container, leaving
// each resource idle half the time. Following ParaFold (PAPERS.md), the
// scheduler here decomposes every request into an MSA stage and an
// inference stage and runs them on separate bounded worker pools: a CPU
// pool sized to cores (internal/parallel) and a "GPU" pool sized to the
// machine's modeled accelerator count (internal/simgpu). Stages pipeline
// naturally — the MSA search for request N+1 overlaps inference for
// request N — and a content-addressed cache (internal/cache) short-circuits
// the MSA stage entirely for repeated queries, the AF_Cache observation
// that screening traffic is massively redundant.
//
// Admission control is a bounded queue with deterministic load shedding
// (resilience.ErrOverloaded): a request is rejected at the door, never
// half-executed. Per-request deadlines thread through the same context
// machinery the resilience layer added to the pipeline, so an expired
// request surfaces as resilience.ErrStageTimeout and sheds cleanly at the
// next stage boundary.
//
// Determinism contract: per-request results are computed with a canonical
// run index (no repeat-run jitter) and the deterministic kernels below, so
// a given request trace produces bitwise-identical per-request results at
// any pool size, with or without the cache. Admission decisions depend
// only on queue occupancy, so a trace submitted synchronously sheds
// identically for a fixed queue bound.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"afsysbench/internal/cache"
	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/metering"
	"afsysbench/internal/parallel"
	"afsysbench/internal/platform"
	"afsysbench/internal/resilience"
	"afsysbench/internal/simgpu"
)

// State is a job's position in the serving pipeline.
type State int

const (
	// StateQueued: admitted, waiting for an MSA worker.
	StateQueued State = iota
	// StateMSA: the MSA stage is running (or being fetched from cache).
	StateMSA
	// StateInference: the inference stage is running or queued on the GPU
	// pool.
	StateInference
	// StateDone: finished successfully; the result is available.
	StateDone
	// StateFailed: terminated by error (deadline, OOM gate, fault).
	StateFailed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateMSA:
		return "msa"
	case StateInference:
		return "inference"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Request is one prediction submission.
type Request struct {
	// Sample is the Table II sample name to predict.
	Sample string
	// Threads overrides the server's per-request worker count (0 = server
	// default).
	Threads int
	// Timeout is the per-request wall-clock deadline covering queue wait
	// and both stages (0 = the server's DefaultTimeout; negative = none
	// even if the server has a default).
	Timeout time.Duration
}

// Config tunes a Server. Zero values mean: paper Server platform, AF3's
// 8-thread default per request, an MSA pool sized to cores, a GPU pool
// sized to the machine's modeled accelerator count, a 64-deep admission
// queue, no cache, no deadline, persistent (warm) model state.
type Config struct {
	Machine platform.Machine
	// Threads is the default per-request worker count for the MSA scan and
	// compute kernels.
	Threads int
	// MSAWorkers bounds concurrent MSA stages (the CPU pool).
	MSAWorkers int
	// GPUWorkers bounds concurrent inference stages (the accelerator pool).
	GPUWorkers int
	// QueueDepth bounds the admission queue; a submit that finds it full
	// is shed with resilience.ErrOverloaded.
	QueueDepth int
	// Cache is the content-addressed MSA/feature cache; nil disables
	// caching (every request pays its MSA search).
	Cache *cache.Cache
	// DefaultTimeout is the per-request wall deadline when the request
	// does not set one (0 = none).
	DefaultTimeout time.Duration
	// Budget caps modeled per-stage time per request (the resilience
	// degradation ladder applies, exactly as in single-run mode).
	Budget resilience.StageBudget
	// ColdModel disables the §VI persistent-model optimization: every
	// request pays GPU init + XLA compile (stock one-container-per-request
	// deployment). The default keeps the model resident.
	ColdModel bool
	// Metrics receives operational counters; nil creates a private
	// registry (exposed via MetricsSnapshot and the /v1/metrics endpoint).
	Metrics *metering.Registry
}

func (c Config) withDefaults() Config {
	if c.Machine.Name == "" {
		c.Machine = platform.Server()
	}
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.MSAWorkers <= 0 {
		c.MSAWorkers = parallel.DefaultWorkers()
	}
	if c.GPUWorkers <= 0 {
		c.GPUWorkers = simgpu.Devices(c.Machine)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Metrics == nil {
		c.Metrics = metering.NewRegistry()
	}
	return c
}

// Job is one admitted request moving through the pipeline. All mutable
// fields are guarded by the owning Server's mutex; read them through
// Status and Result.
type Job struct {
	id        string
	ordinal   int
	in        *inputs.Input
	machine   platform.Machine
	threads   int
	deadline  time.Time
	submitted time.Time

	state    State
	cacheHit bool
	err      error
	errClass string
	msaPhase *core.MSAPhase
	result   *core.PipelineResult
	// chargedMSASeconds is the modeled MSA time this request actually paid:
	// the phase time on a miss, zero on a cache hit (the fetch is free at
	// model scale). The modeled scheduler and the per-job status use it.
	chargedMSASeconds float64
	wallSeconds       float64
}

// JobStatus is a point-in-time snapshot of one job, also the HTTP
// status-endpoint payload.
type JobStatus struct {
	ID       string `json:"id"`
	Sample   string `json:"sample"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	// MSASeconds is the modeled MSA time charged to this request (0 on a
	// cache hit); InferenceSeconds the modeled inference time.
	MSASeconds       float64 `json:"msa_seconds"`
	InferenceSeconds float64 `json:"inference_seconds"`
	Degraded         bool    `json:"degraded,omitempty"`
	Error            string  `json:"error,omitempty"`
	ErrorClass       string  `json:"error_class,omitempty"`
	WallMs           float64 `json:"wall_ms,omitempty"`
}

// Server is the phase-split scheduler. Build with New (or NewWithSuite),
// Submit requests at any time after construction, call Start to launch the
// worker pools and Stop to drain and release them.
type Server struct {
	suite *core.Suite
	cfg   Config

	mu      sync.Mutex
	idle    sync.Cond // signaled when pending reaches 0
	jobs    map[string]*Job
	order   []*Job // admitted jobs in submit order
	pending int    // admitted but not yet terminal
	started bool
	stopped bool

	msaQ chan *Job
	infQ chan *Job
	wgA  sync.WaitGroup // MSA workers
	wgB  sync.WaitGroup // GPU workers
}

// New builds a server with its own suite instance (synthetic databases,
// AF3-scale model).
func New(cfg Config) (*Server, error) {
	suite, err := core.NewSuite()
	if err != nil {
		return nil, err
	}
	return NewWithSuite(suite, cfg), nil
}

// NewWithSuite builds a server over an existing suite — tests and
// in-process load generators share one suite to avoid rebuilding the
// synthetic databases per server.
func NewWithSuite(suite *core.Suite, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		suite: suite,
		cfg:   cfg,
		jobs:  make(map[string]*Job),
		msaQ:  make(chan *Job, cfg.QueueDepth),
		infQ:  make(chan *Job, cfg.QueueDepth),
	}
	s.idle.L = &s.mu
	return s
}

// Config returns the server's effective (default-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// Metrics returns the server's counter registry.
func (s *Server) Metrics() *metering.Registry { return s.cfg.Metrics }

// Start launches the MSA and GPU worker pools. Requests submitted before
// Start wait in the admission queue (which is what makes shed decisions a
// pure function of the trace and the queue bound under test).
func (s *Server) Start() {
	s.mu.Lock()
	if s.started || s.stopped {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	for i := 0; i < s.cfg.MSAWorkers; i++ {
		s.wgA.Add(1)
		go s.msaWorker()
	}
	for i := 0; i < s.cfg.GPUWorkers; i++ {
		s.wgB.Add(1)
		go s.gpuWorker()
	}
}

// Stop drains the pipeline — queued jobs still execute — and releases
// every worker goroutine. Submits after Stop are rejected. Safe to call
// once; a never-started server just marks itself stopped.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	started := s.started
	s.mu.Unlock()
	close(s.msaQ)
	if started {
		s.wgA.Wait()
	}
	close(s.infQ)
	if started {
		s.wgB.Wait()
	}
}

// Submit admits one request or sheds it. The decision is synchronous and
// deterministic: if the admission queue has a free slot the job is queued
// and its ID returned; otherwise resilience.ErrOverloaded comes back and
// the server state is untouched. Unknown samples are rejected before
// admission.
func (s *Server) Submit(req Request) (string, error) {
	in, err := inputs.ByName(req.Sample)
	if err != nil {
		return "", err
	}
	threads := req.Threads
	if threads <= 0 {
		threads = s.cfg.Threads
	}
	now := time.Now()
	var deadline time.Time
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		deadline = now.Add(timeout)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return "", errors.New("serve: server stopped")
	}
	job := &Job{
		ordinal:   len(s.order),
		in:        in,
		machine:   core.MachineFor(in, s.cfg.Machine),
		threads:   threads,
		deadline:  deadline,
		submitted: now,
		state:     StateQueued,
	}
	job.id = fmt.Sprintf("j%04d-%s", job.ordinal, in.Name)
	select {
	case s.msaQ <- job:
	default:
		s.cfg.Metrics.Add("requests_shed", 1)
		return "", resilience.ErrOverloaded{Queued: len(s.msaQ), Capacity: cap(s.msaQ)}
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job)
	s.pending++
	s.cfg.Metrics.Add("requests_admitted", 1)
	return job.id, nil
}

// WaitIdle blocks until every admitted job has reached a terminal state
// (or ctx is done). The server must be started, or undrained jobs wait
// forever.
func (s *Server) WaitIdle(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.pending > 0 {
			s.idle.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Wake the waiter goroutine so it can observe and exit; pending
		// jobs keep running.
		s.mu.Lock()
		s.idle.Broadcast()
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Status returns a snapshot of one job.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(job), true
}

// Statuses returns snapshots of all admitted jobs in submit order.
func (s *Server) Statuses() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, len(s.order))
	for i, job := range s.order {
		out[i] = s.statusLocked(job)
	}
	return out
}

func (s *Server) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:       job.id,
		Sample:   job.in.Name,
		State:    job.state.String(),
		CacheHit: job.cacheHit,
	}
	if job.err != nil {
		st.Error = job.err.Error()
		st.ErrorClass = job.errClass
	}
	if job.state == StateDone || job.state == StateFailed {
		st.WallMs = job.wallSeconds * 1000
	}
	if job.result != nil {
		st.MSASeconds = job.chargedMSASeconds
		st.InferenceSeconds = job.result.Inference.Total()
		st.Degraded = job.result.Resilience.Degraded
	}
	return st
}

// Result returns the completed pipeline result for a job (nil, false until
// StateDone).
func (s *Server) Result(id string) (*core.PipelineResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok || job.result == nil {
		return nil, false
	}
	return job.result, true
}

// pipelineOpts builds the per-request options. RunIndex is pinned to 0 —
// the canonical, jitter-free timing draw — so results are a pure function
// of (sample, threads, machine, database set) and therefore identical
// across pool sizes and safe to share through the cache. FreshMSA keeps
// the suite's experiment memo out of the serving path: internal/cache is
// the only reuse layer.
func (s *Server) pipelineOpts(job *Job) core.PipelineOptions {
	return core.PipelineOptions{
		Threads:   job.threads,
		RunIndex:  0,
		WarmStart: !s.cfg.ColdModel,
		Budget:    s.cfg.Budget,
		FreshMSA:  true,
	}
}

// msaKey is the content address of a request's MSA phase: everything that
// determines the phase result goes in — the query content, the database
// set identity (msa.DBSet.Fingerprint), the machine the storage/CPU models
// replay on, the thread count that shapes the scan, the suite seed behind
// the timing model, and the stage budget that can trigger degradation.
func (s *Server) msaKey(job *Job) string {
	return cache.Key(
		"msa-phase/v1",
		inputFingerprint(job.in),
		s.suite.DBs.Fingerprint(),
		job.machine.Name,
		strconv.Itoa(job.threads),
		fmt.Sprintf("seed=%x", s.suite.Seed),
		fmt.Sprintf("budget=%g", s.cfg.Budget.MSASeconds),
	)
}

// inputFingerprint serializes the content of an input that the MSA phase
// depends on: every chain's molecule type, copy count and residues. The
// name is included because the deterministic timing model derives its
// per-sample draw from it.
func inputFingerprint(in *inputs.Input) string {
	var b strings.Builder
	b.WriteString(in.Name)
	for _, c := range in.Chains {
		fmt.Fprintf(&b, ";%d|%d|%s|%s", c.Sequence.Type, len(c.IDs), c.Sequence.ID, c.Sequence.Letters())
	}
	return b.String()
}

func (s *Server) msaWorker() {
	defer s.wgA.Done()
	for job := range s.msaQ {
		s.runMSA(job)
	}
}

func (s *Server) gpuWorker() {
	defer s.wgB.Done()
	for job := range s.infQ {
		s.runInference(job)
	}
}

// jobCtx derives the request's wall-clock context from its deadline.
func (s *Server) jobCtx(job *Job) (context.Context, context.CancelFunc) {
	if job.deadline.IsZero() {
		return context.WithCancel(context.Background())
	}
	return context.WithDeadline(context.Background(), job.deadline)
}

// runMSA executes (or fetches) the MSA stage for one job and hands it to
// the GPU pool. The send into the inference queue blocks when the GPU pool
// is saturated — that backpressure is the pipelining: this MSA worker
// pauses instead of racing ahead unboundedly.
func (s *Server) runMSA(job *Job) {
	s.setState(job, StateMSA)
	s.cfg.Metrics.Add("msa_stage_runs", 1)
	ctx, cancel := s.jobCtx(job)
	defer cancel()
	opts := s.pipelineOpts(job)
	v, hit, err := s.cfg.Cache.GetOrCompute(s.msaKey(job), func() (any, int64, error) {
		mp, err := s.suite.RunMSAPhase(ctx, job.in, job.machine, opts)
		if err != nil {
			return nil, 0, err
		}
		return mp, mp.SizeBytes(), nil
	})
	if err != nil {
		s.fail(job, err)
		return
	}
	mp := v.(*core.MSAPhase)
	s.mu.Lock()
	job.msaPhase = mp
	job.cacheHit = hit
	if hit {
		job.chargedMSASeconds = 0
	} else {
		job.chargedMSASeconds = mp.Seconds
	}
	s.mu.Unlock()
	if hit {
		s.cfg.Metrics.Add("msa_cache_hits", 1)
	}
	s.infQ <- job
}

// runInference executes the inference stage and completes the job.
func (s *Server) runInference(job *Job) {
	s.setState(job, StateInference)
	s.cfg.Metrics.Add("inference_stage_runs", 1)
	ctx, cancel := s.jobCtx(job)
	defer cancel()
	opts := s.pipelineOpts(job)
	pb, err := s.suite.RunInferencePhase(ctx, job.in, job.machine, opts)
	if err != nil {
		s.fail(job, err)
		return
	}
	res := core.ComposeResult(job.in, job.machine, job.threads, job.msaPhase, pb)
	s.mu.Lock()
	job.result = res
	job.state = StateDone
	job.wallSeconds = time.Since(job.submitted).Seconds()
	s.terminalLocked()
	s.mu.Unlock()
	s.cfg.Metrics.Add("requests_completed", 1)
	if res.Resilience.Degraded {
		s.cfg.Metrics.Add("requests_degraded", 1)
	}
}

// ErrorClass buckets a request failure for metrics, exit codes and the
// HTTP API: "timeout" (deadline or stage budget), "oom" (the §VI memory
// gate), "overloaded" (admission shed), "error" otherwise.
func ErrorClass(err error) string {
	var st resilience.ErrStageTimeout
	var oom core.ErrProjectedOOM
	switch {
	case errors.As(err, &st),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return "timeout"
	case errors.As(err, &oom):
		return "oom"
	case resilience.IsOverloaded(err):
		return "overloaded"
	default:
		return "error"
	}
}

func (s *Server) fail(job *Job, err error) {
	class := ErrorClass(err)
	s.mu.Lock()
	job.err = err
	job.errClass = class
	job.state = StateFailed
	job.wallSeconds = time.Since(job.submitted).Seconds()
	s.terminalLocked()
	s.mu.Unlock()
	s.cfg.Metrics.Add("requests_failed", 1)
	s.cfg.Metrics.Add("requests_failed_"+class, 1)
}

func (s *Server) setState(job *Job, st State) {
	s.mu.Lock()
	job.state = st
	s.mu.Unlock()
}

func (s *Server) terminalLocked() {
	s.pending--
	if s.pending == 0 {
		s.idle.Broadcast()
	}
}
