package serve

// Multi-tenant QoS (DESIGN §15). With Config.QoS set, admission and MSA
// scheduling become tenant-aware: every request carries a tenant ID and a
// modeled arrival time, the qos.Controller decides admit/shed/degrade on
// its virtual clock, and the single FIFO MSA queue is replaced by a
// deficit-round-robin weighted-fair queue over chain-token costs. The
// brownout ladder threads into the existing degradation machinery: an
// over-quota request first loses chain-level hedging, then batches alone
// (no shared-batch inflation), then runs with a tightened MSA budget that
// engages the PR 2 drop-DB ladder, and finally is shed outright.
//
// Determinism: the controller never reads live pool state, the WFQ
// allocates dispatch sequence numbers under its own lock, and an
// open-loop trace (all submits before Start) pops in an order that is a
// pure function of the push history — so the admit/shed/degrade sequence
// and the dispatch order are bitwise reproducible at any pool size, which
// is exactly what the fairness gate pins.

import (
	"sort"
	"strings"

	"afsysbench/internal/qos"
)

// qosEnabled reports whether the server runs the tenant-aware admission
// and WFQ dispatch path.
func (s *Server) qosEnabled() bool { return s.cfg.QoS != nil }

// qosReasonCounter turns a shed-reason class into its metrics-counter
// suffix ("rate-limited" -> "requests_shed_rate_limited").
func qosReasonCounter(reason string) string {
	return "requests_shed_" + strings.ReplaceAll(reason, "-", "_")
}

// TenantLatency is one tenant's modeled latency row in the fairness
// report: percentiles of (modeled completion - modeled arrival) over the
// tenant's completed requests, on the arrival-aware modeled schedule.
type TenantLatency struct {
	Tenant    string      `json:"tenant"`
	Completed int         `json:"completed"`
	Latency   Percentiles `json:"latency_modeled_ms"`
}

// FairnessReport is the per-tenant QoS outcome of a completed trace: the
// controller's admission accounting, the modeled per-tenant latency
// distribution, and the decision/dispatch digests two runs of the same
// trace must reproduce bit-for-bit.
type FairnessReport struct {
	// FIFO marks the unprotected comparator run (Config.FIFO on the
	// controller): no buckets, no weights, no brownout.
	FIFO bool `json:"fifo,omitempty"`
	// Tenants is the controller's per-tenant accounting, sorted by name.
	Tenants []qos.TenantStats `json:"tenants"`
	// Latencies is the modeled per-tenant latency table (same order).
	Latencies []TenantLatency `json:"latencies"`
	// DecisionDigest hashes the admission sequence (tenant, cost, admit,
	// reason, level); DispatchDigest the WFQ pop sequence. Identical
	// traces and seeds must reproduce both at any pool size.
	DecisionDigest string `json:"decision_digest"`
	DispatchDigest string `json:"dispatch_digest"`
	// ModeledCPULanes/ModeledGPULanes are the virtual lane counts the
	// latency model replayed on (fixed inputs, independent of the real
	// pool sizes).
	ModeledCPULanes int `json:"modeled_cpu_lanes"`
	ModeledGPULanes int `json:"modeled_gpu_lanes"`
}

// TenantRow returns the latency row for one tenant (zero row if absent).
func (r *FairnessReport) TenantRow(tenant string) TenantLatency {
	for _, row := range r.Latencies {
		if row.Tenant == tenant {
			return row
		}
	}
	return TenantLatency{Tenant: tenant}
}

// Stats returns the controller accounting row for one tenant.
func (r *FairnessReport) Stats(tenant string) qos.TenantStats {
	for _, row := range r.Tenants {
		if row.Tenant == tenant {
			return row
		}
	}
	return qos.TenantStats{Tenant: tenant}
}

// FairnessReport builds the per-tenant QoS report over the completed
// trace, replaying it on cpuLanes/gpuLanes modeled lanes (defaults 4/2
// when <= 0). Returns nil when QoS is disabled.
func (s *Server) FairnessReport(cpuLanes, gpuLanes int) *FairnessReport {
	if !s.qosEnabled() {
		return nil
	}
	if cpuLanes <= 0 {
		cpuLanes = 4
	}
	if gpuLanes <= 0 {
		gpuLanes = 2
	}
	rep := &FairnessReport{
		FIFO:            s.cfg.QoS.Config().FIFO,
		Tenants:         s.cfg.QoS.Snapshot(),
		DecisionDigest:  s.cfg.QoS.DecisionDigest(),
		DispatchDigest:  s.cfg.QoS.DispatchDigest(),
		ModeledCPULanes: cpuLanes,
		ModeledGPULanes: gpuLanes,
	}
	byTenant := s.modeledTenantLatencies(cpuLanes, gpuLanes)
	names := make([]string, 0, len(byTenant))
	for name := range byTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ms := byTenant[name]
		rep.Latencies = append(rep.Latencies, TenantLatency{
			Tenant:    name,
			Completed: len(ms),
			Latency:   Summarize(ms),
		})
	}
	return rep
}

// modeledTenantLatencies replays the completed QoS trace on a virtual
// clock: WFQ dispatch order fills cpuLanes MSA lanes (a request's MSA
// cannot start before its modeled arrival), MSA-completion order fills
// gpuLanes inference lanes, and a request's modeled latency is its
// inference end minus its arrival — queueing delay included, wall clock
// excluded. Milliseconds, grouped by tenant.
func (s *Server) modeledTenantLatencies(cpuLanes, gpuLanes int) map[string][]float64 {
	type item struct {
		tenant   string
		seq      int
		arrival  float64
		msa, inf float64
		msaEnd   float64
	}
	s.mu.Lock()
	var done []*item
	for _, job := range s.order {
		if job.state != StateDone || job.result == nil {
			continue
		}
		done = append(done, &item{
			tenant:  job.tenant,
			seq:     job.dispatchSeq,
			arrival: job.arrival,
			msa:     job.chargedMSASeconds,
			inf:     job.chargedInfSeconds,
		})
	}
	s.mu.Unlock()
	// MSA lanes in WFQ dispatch order.
	sort.Slice(done, func(a, b int) bool { return done[a].seq < done[b].seq })
	cpuFree := make([]float64, cpuLanes)
	for _, it := range done {
		w := argminLane(cpuFree)
		start := cpuFree[w]
		if it.arrival > start {
			start = it.arrival
		}
		it.msaEnd = start + it.msa
		cpuFree[w] = it.msaEnd
	}
	// GPU lanes in MSA-completion order (dispatch seq breaks ties).
	order := make([]*item, len(done))
	copy(order, done)
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].msaEnd != order[b].msaEnd {
			return order[a].msaEnd < order[b].msaEnd
		}
		return order[a].seq < order[b].seq
	})
	gpuFree := make([]float64, gpuLanes)
	out := make(map[string][]float64)
	for _, it := range order {
		g := argminLane(gpuFree)
		start := gpuFree[g]
		if it.msaEnd > start {
			start = it.msaEnd
		}
		end := start + it.inf
		gpuFree[g] = end
		out[it.tenant] = append(out[it.tenant], (end-it.arrival)*1000)
	}
	return out
}
