package serve

// Cross-request GPU batching (DESIGN §14). The paper's Figure 8 shows
// host-side device init + XLA compile dominating GPU time for small inputs
// on the server platform (>75% overhead); dispatching one request per
// simulated device prices that fixed cost per request. The batching tier
// here coalesces queued same-shape inference jobs into one batched simgpu
// dispatch, so the fixed costs amortize across members — ParaFold's
// decouple-and-batch observation applied at the serving layer — and a
// compiled-graph cache keyed by (shape bucket, model config, machine)
// charges XLA compile once per bucket per replica.
//
// Determinism: a single dispatcher goroutine drains the inference queue in
// hand-off order and groups maximal runs of consecutive same-bucket jobs,
// sealing a batch on a bucket/lane change, on the batch cap (the
// memory-footprint model's Model.MaxBatch, optionally tightened by
// config), or on upstream quiescence (no admitted job remains that could
// still join). Composition is therefore a pure function of the arrival
// order and the policy — never of GPU worker timing — and with one MSA
// worker the arrival order is the submit order, which is what the
// determinism tests pin. Per-request *results* stay canonical and
// batching-invariant: each member's PipelineResult is computed exactly as
// in unbatched serving; batching changes only the charged-seconds
// attribution (each member is charged its amortized share of the batch
// total, shares summing to the batch total).

import (
	"fmt"
	"strconv"

	"afsysbench/internal/batch"
	"afsysbench/internal/cache"
	"afsysbench/internal/core"
	"afsysbench/internal/platform"
	"afsysbench/internal/qos"
	"afsysbench/internal/resilience"
	"afsysbench/internal/simgpu"
)

// BatchConfig tunes cross-request GPU batching. The zero value disables
// it: every inference dispatches alone (the pre-batching behavior).
type BatchConfig struct {
	// Enabled turns the batching tier on: the GPU pool consumes sealed
	// batches from the dispatcher instead of individual jobs.
	Enabled bool
	// Buckets are the shape-policy pad boundaries (nil = the stock
	// batch.DefaultBuckets set). Tokens beyond the largest bucket run at
	// their exact size.
	Buckets []int
	// MaxBatch caps members per dispatch on top of the memory-footprint
	// cap (0 = memory cap only). The memory cap always applies: a batch
	// never spills when its members individually fit.
	MaxBatch int
	// CompileCacheEntries bounds the compiled-graph cache
	// (0 = bucket count + 4).
	CompileCacheEntries int
}

// inferenceBatch is one sealed batched dispatch: same-bucket jobs on the
// same machine and thread setting, in arrival order.
type inferenceBatch struct {
	id      string
	bucket  int
	machine platform.Machine
	threads int
	jobs    []*Job
	// profile is the bucket-level host compile profile; compileCharged
	// marks the dispatch that paid it (the compiled-graph cache miss).
	profile        core.HostProfile
	compileCharged bool
	// err is a seal-time compile-sim failure; the executor fails every
	// member with it.
	err error
}

// initBatching wires the batching tier's state at construction.
func (s *Server) initBatching() {
	if !s.cfg.Batch.Enabled {
		return
	}
	s.policy = batch.NewPolicy(s.cfg.Batch.Buckets)
	if s.policy.Buckets() == nil {
		s.policy = batch.Default()
	}
	s.batchQ = make(chan *inferenceBatch, s.cfg.QueueDepth)
	s.batchKick = make(chan struct{}, 1)
	entries := s.cfg.Batch.CompileCacheEntries
	if entries <= 0 {
		entries = len(s.policy.Buckets()) + 4
	}
	// Entries are stored with size 1, so the byte capacity is the entry
	// cap; evictions show up in the cache's own counters.
	s.compileCache = cache.New(int64(entries))
	s.meter = batch.NewMeter()
}

// batchCap is the members-per-dispatch bound for a bucket on a machine:
// the memory-footprint cap (never spill a batch whose members
// individually fit), tightened by the configured MaxBatch.
func (s *Server) batchCap(mach platform.Machine, bucket int) int {
	c := s.suite.Model.MaxBatch(mach, bucket)
	if m := s.cfg.Batch.MaxBatch; m > 0 && m < c {
		c = m
	}
	if c < 1 {
		c = 1
	}
	return c
}

// compileKey is the content address of one compiled graph: shape bucket,
// model configuration, machine. Threads are deliberately absent — the
// executable is reusable across thread settings; contention is priced at
// use.
func (s *Server) compileKey(bucket int, mach platform.Machine) string {
	return cache.Key(
		"xla-graph/v1",
		strconv.Itoa(bucket),
		fmt.Sprintf("model=%+v", s.suite.Model),
		mach.Name,
	)
}

// leaveUpstream marks a job as no longer upstream of the dispatcher —
// either received from the inference queue or terminal before reaching it
// — and wakes the dispatcher so its quiescence check can re-run. Exactly
// once per job.
func (s *Server) leaveUpstream(job *Job) {
	if s.batchKick == nil {
		return
	}
	s.mu.Lock()
	if job.leftUpstream {
		s.mu.Unlock()
		return
	}
	job.leftUpstream = true
	s.preBatch--
	s.mu.Unlock()
	select {
	case s.batchKick <- struct{}{}:
	default:
	}
}

// upstreamPending counts admitted jobs the dispatcher has not yet received
// (queued, in MSA, or in the inference queue). While it is nonzero the
// open batch may still grow.
func (s *Server) upstreamPending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.preBatch
}

// batchDispatcher is the single goroutine that turns the hand-off stream
// into sealed batches. See the package comment above for the sealing rules
// and the determinism argument.
func (s *Server) batchDispatcher() {
	defer s.wgDisp.Done()
	var open *inferenceBatch
	seq := 0
	seal := func() {
		if open == nil {
			return
		}
		s.sealCompile(open)
		s.batchQ <- open
		open = nil
	}
	add := func(job *Job) {
		s.leaveUpstream(job)
		// A job already terminal (failed upstream under fault load or a
		// deadline) must not inflate a batch: its members' amortized
		// shares would stop summing to the dispatch total.
		s.mu.Lock()
		terminal := job.state == StateDone || job.state == StateFailed
		s.mu.Unlock()
		if terminal {
			return
		}
		tokens := job.in.TotalResidues()
		bucket := s.policy.PadTo(tokens)
		// The batch-cap brownout rung: an over-quota job under load
		// dispatches as a singleton — it cannot inflate a shared batch's
		// bucket (and padding waste) for fair-share tenants.
		if job.qosLevel >= qos.LevelBatchCap {
			seal()
			open = &inferenceBatch{
				id:      fmt.Sprintf("b%04d", seq),
				bucket:  bucket,
				machine: job.machine,
				threads: job.threads,
				jobs:    []*Job{job},
			}
			seq++
			s.mu.Lock()
			s.meter.ObserveJob(bucket, tokens)
			s.mu.Unlock()
			seal()
			return
		}
		if open != nil && (open.bucket != bucket || open.machine.Name != job.machine.Name || open.threads != job.threads) {
			seal()
		}
		if open == nil {
			open = &inferenceBatch{
				id:      fmt.Sprintf("b%04d", seq),
				bucket:  bucket,
				machine: job.machine,
				threads: job.threads,
			}
			seq++
		}
		open.jobs = append(open.jobs, job)
		s.mu.Lock()
		s.meter.ObserveJob(bucket, tokens)
		s.mu.Unlock()
		if len(open.jobs) >= s.batchCap(job.machine, bucket) {
			seal()
		}
	}
	for {
		select {
		case job, ok := <-s.infQ:
			if !ok {
				seal()
				close(s.batchQ)
				return
			}
			add(job)
		case <-s.batchKick:
		}
		// Drain immediately-available arrivals before the quiescence
		// check, so a burst of back-to-back hand-offs coalesces fully.
		for drained := false; !drained; {
			select {
			case job, ok := <-s.infQ:
				if !ok {
					seal()
					close(s.batchQ)
					return
				}
				add(job)
			default:
				drained = true
			}
		}
		if open != nil && s.upstreamPending() == 0 {
			seal()
		}
	}
}

// sealCompile resolves the batch's compiled graph at seal time, on the
// dispatcher goroutine — which is what makes the charge-or-reuse decision
// deterministic in arrival order, independent of how GPU workers race. The
// first sealed batch of a bucket misses and is charged the bucket-level
// compile (amortized across its members); later batches reuse the
// executable for free. An entry evicted by the cache bound re-misses and
// re-charges — honest accounting for a replica whose bucket working set
// exceeds its cache.
func (s *Server) sealCompile(b *inferenceBatch) {
	key := s.compileKey(b.bucket, b.machine)
	if v, ok := s.compileCache.Get(key); ok {
		b.profile = v.(core.HostProfile)
		s.cfg.Metrics.Add("compile_cache_hits", 1)
		return
	}
	hp, err := s.suite.CompileSim(b.machine, b.bucket)
	if err != nil {
		b.err = err
		return
	}
	s.compileCache.Add(key, hp, 1)
	b.profile = hp
	b.compileCharged = true
	s.cfg.Metrics.Add("compile_cache_misses", 1)
}

// batchGPUWorker consumes sealed batches; the gpuLive gauge covers it like
// the unbatched worker.
func (s *Server) batchGPUWorker() {
	defer s.wgB.Done()
	s.adjustLive(&s.gpuLive, 1)
	defer s.adjustLive(&s.gpuLive, -1)
	for b := range s.batchQ {
		s.runBatchGuarded(b)
	}
}

// runBatchGuarded isolates batch-level panics (the batch pricing itself):
// every non-terminal member fails with error class "panic" and the worker
// survives. Per-member execution has its own guard so one member's panic
// cannot take its batch-mates down.
func (s *Server) runBatchGuarded(b *inferenceBatch) {
	defer func() {
		if r := recover(); r != nil {
			s.cfg.Metrics.Add("worker_panics", 1)
			s.cfg.Metrics.Add("worker_panics_inference", 1)
			err := resilience.ErrPanic{Stage: "inference", Value: fmt.Sprint(r)}
			for _, job := range b.jobs {
				s.fail(job, err)
			}
		}
	}()
	s.runBatch(b)
}

// runBatch prices the batched dispatch once, records the accounting, and
// completes each member with its amortized share.
func (s *Server) runBatch(b *inferenceBatch) {
	if b.err != nil {
		for _, job := range b.jobs {
			s.fail(job, b.err)
		}
		return
	}
	size := len(b.jobs)
	compileSecs := 0.0
	if b.compileCharged {
		compileSecs = b.profile.CompileSeconds
	}
	// ColdModel charges device init per dispatch (one container per
	// batch); the compiled-graph cache models a replica-local persistent
	// XLA cache shared across those containers. A warm server skips init
	// but still pays compile once per new bucket (Recompile) — a resident
	// model does not own executables for shapes it has never seen.
	pb, err := simgpu.BatchedInference(b.machine, s.suite.Model, b.bucket, size, simgpu.InferenceOptions{
		Threads:        b.threads,
		WarmStart:      !s.cfg.ColdModel,
		Recompile:      b.compileCharged,
		CompileSeconds: compileSecs,
	})
	if err != nil {
		for _, job := range b.jobs {
			s.fail(job, err)
		}
		return
	}
	s.recordBatch(b, pb)
	share := pb.Total() / float64(size)
	for _, job := range b.jobs {
		s.runBatchMemberGuarded(job, b, share)
	}
}

func (s *Server) runBatchMemberGuarded(job *Job, b *inferenceBatch, share float64) {
	defer func() {
		if r := recover(); r != nil {
			s.cfg.Metrics.Add("worker_panics", 1)
			s.cfg.Metrics.Add("worker_panics_inference", 1)
			s.fail(job, resilience.ErrPanic{Stage: "inference", Value: fmt.Sprint(r)})
		}
	}()
	s.runInferenceJob(job, b, share)
}

// recordBatch lands the dispatch on the meter, the aggregate overhead
// accounting, and the metrics registry.
func (s *Server) recordBatch(b *inferenceBatch, pb simgpu.PhaseBreakdown) {
	s.mu.Lock()
	s.meter.ObserveBatch(b.bucket, b.compileCharged)
	s.batchAgg.batches++
	s.batchAgg.members += len(b.jobs)
	s.batchAgg.totalSeconds += pb.Total()
	s.batchAgg.computeSeconds += pb.ComputeSeconds
	s.mu.Unlock()
	s.cfg.Metrics.Add("batches_dispatched", 1)
	s.cfg.Metrics.Add("batched_jobs", int64(len(b.jobs)))
}

// batchAggregate is the running modeled-time account over every dispatched
// batch (guarded by the server mutex).
type batchAggregate struct {
	batches        int
	members        int
	totalSeconds   float64
	computeSeconds float64
}

// BatchReport is the serving-side batching summary for load reports,
// benchmarks and the crossover sweep.
type BatchReport struct {
	Enabled bool  `json:"enabled"`
	Buckets []int `json:"buckets"`
	// Batches/BatchedJobs count dispatches and the members they carried;
	// MeanBatchSize is their ratio.
	Batches       int     `json:"batches"`
	BatchedJobs   int     `json:"batched_jobs"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	// TotalSeconds/ComputeSeconds sum the modeled batch dispatch times;
	// OverheadFraction is the aggregate non-compute share — the Figure 8
	// quantity, here over batched dispatches instead of single requests.
	TotalSeconds     float64 `json:"total_seconds"`
	ComputeSeconds   float64 `json:"compute_seconds"`
	OverheadFraction float64 `json:"overhead_fraction"`
	// PaddingWastePct is dispatched-but-unowned tokens over dispatched
	// tokens, meter-wide; PerBucket breaks both padding and compile
	// sharing down per bucket.
	PaddingWastePct float64             `json:"padding_waste_pct"`
	PerBucket       []batch.BucketStats `json:"per_bucket"`
	// CompileCache is the compiled-graph cache's counter snapshot
	// (hits/misses/evictions).
	CompileCache cache.Stats `json:"compile_cache"`
}

// BatchReport snapshots the batching tier's accounting (nil when batching
// is disabled).
func (s *Server) BatchReport() *BatchReport {
	if !s.cfg.Batch.Enabled {
		return nil
	}
	s.mu.Lock()
	agg := s.batchAgg
	rows := s.meter.Snapshot()
	_, actual, padded := s.meter.Totals()
	s.mu.Unlock()
	r := &BatchReport{
		Enabled:        true,
		Buckets:        s.policy.Buckets(),
		Batches:        agg.batches,
		BatchedJobs:    agg.members,
		TotalSeconds:   agg.totalSeconds,
		ComputeSeconds: agg.computeSeconds,
		PerBucket:      rows,
		CompileCache:   s.compileCache.Stats(),
	}
	if agg.batches > 0 {
		r.MeanBatchSize = float64(agg.members) / float64(agg.batches)
	}
	if agg.totalSeconds > 0 {
		r.OverheadFraction = (agg.totalSeconds - agg.computeSeconds) / agg.totalSeconds
	}
	if padded > 0 {
		r.PaddingWastePct = 100 * float64(padded-actual) / float64(padded)
	}
	return r
}
