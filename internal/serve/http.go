package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"afsysbench/internal/cache"
	"afsysbench/internal/cachedisk"
	"afsysbench/internal/qos"
	"afsysbench/internal/resilience"
	"afsysbench/internal/stats"
)

func msToDuration(ms int) time.Duration {
	return time.Duration(ms) * time.Millisecond
}

// SubmitRequest is the POST /v1/submit payload.
type SubmitRequest struct {
	Sample string `json:"sample"`
	// Threads overrides the server default (0 = default).
	Threads int `json:"threads,omitempty"`
	// TimeoutMs is the per-request wall deadline in milliseconds
	// (0 = server default).
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Tenant names the submitting tenant (QoS mode). The X-AF-Tenant
	// header takes precedence; "" maps to "default".
	Tenant string `json:"tenant,omitempty"`
}

// SubmitResponse is the POST /v1/submit success payload.
type SubmitResponse struct {
	ID string `json:"id"`
}

// Percentiles summarizes completed-request wall latency.
type Percentiles struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// MetricsSnapshot is the GET /v1/metrics payload: operational counters,
// state gauges (live pool workers), cache counters, and the latency
// summary over terminal requests.
type MetricsSnapshot struct {
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	Cache    cache.Stats      `json:"cache"`
	// DiskCache is the persistent tier's counter snapshot (nil when the
	// tier is disabled). Degraded inside it marks memory-only mode: the
	// store's breaker is open and disk I/O is being skipped, not failed.
	DiskCache *cachedisk.Stats `json:"disk_cache,omitempty"`
	// CompileCache is the compiled-graph cache's counter snapshot (nil
	// unless cross-request batching is enabled).
	CompileCache *cache.Stats `json:"compile_cache,omitempty"`
	Latency      Percentiles  `json:"latency"`
	// Tenants is the per-tenant QoS accounting — offered, admitted,
	// per-reason sheds, brownout degradations, live token-bucket level
	// (nil without Config.QoS).
	Tenants []qos.TenantStats `json:"tenants,omitempty"`
}

// MetricsSnapshot assembles the current metrics view.
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	s.mu.Lock()
	var walls []float64
	for _, job := range s.order {
		if job.state == StateDone {
			walls = append(walls, job.wallSeconds*1000)
		}
	}
	s.mu.Unlock()
	snap := MetricsSnapshot{
		Counters: s.cfg.Metrics.Snapshot(),
		Gauges:   s.cfg.Metrics.Gauges(),
		Cache:    s.cfg.Cache.Stats(),
		Latency:  Summarize(walls),
	}
	if s.cfg.DiskCache != nil {
		ds := s.cfg.DiskCache.Stats()
		snap.DiskCache = &ds
	}
	if s.compileCache != nil {
		cs := s.compileCache.Stats()
		snap.CompileCache = &cs
	}
	if s.qosEnabled() {
		snap.Tenants = s.cfg.QoS.Snapshot()
	}
	return snap
}

// Summarize reduces a millisecond latency series to its percentiles.
func Summarize(ms []float64) Percentiles {
	p := Percentiles{Count: len(ms)}
	if len(ms) == 0 {
		return p
	}
	p.MeanMs = stats.Mean(ms)
	p.P50Ms = stats.Percentile(ms, 50)
	p.P95Ms = stats.Percentile(ms, 95)
	p.P99Ms = stats.Percentile(ms, 99)
	p.MaxMs = stats.Max(ms)
	return p
}

// NewHandler exposes the server over HTTP:
//
//	POST /v1/submit    {"sample":"1YY9"}        -> 202 {"id":"j0000-1YY9"}
//	GET  /v1/jobs/{id}                          -> JobStatus (404 unknown)
//	GET  /v1/metrics                            -> MetricsSnapshot
//	GET  /v1/healthz                            -> 200 ok
//	GET  /v1/readyz                             -> Readiness (503 not ready)
//
// Submit maps admission shedding to 503 (the load generator counts these
// against its shed rate) and an unknown sample to 400. healthz is
// liveness — the process answers; readyz is readiness — 503 with the
// open breakers and/or the saturated admission queue named in the body,
// so a load balancer can drain a degraded instance before requests fail.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		tenant := req.Tenant
		if h := r.Header.Get("X-AF-Tenant"); h != "" {
			tenant = h
		}
		id, err := s.Submit(Request{
			Sample:  req.Sample,
			Threads: req.Threads,
			Timeout: msToDuration(req.TimeoutMs),
			Tenant:  tenant,
			// Live HTTP traffic stamps arrivals from the wall clock.
			Arrival: -1,
		})
		if err != nil {
			if resilience.IsOverloaded(err) {
				httpError(w, http.StatusServiceUnavailable, err.Error())
			} else {
				httpError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.MetricsSnapshot())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		rd := s.Ready()
		code := http.StatusOK
		if !rd.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, rd)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
