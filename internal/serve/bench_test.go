package serve

import (
	"context"
	"testing"
	"time"

	"afsysbench/internal/cache"
)

// benchTrace drains one trace through a fresh server over the shared suite
// and returns it for inspection.
func benchTrace(b *testing.B, cfg Config, trace []string) *Server {
	b.Helper()
	s := NewWithSuite(sharedSuite, cfg)
	s.Start()
	for _, sample := range trace {
		if _, err := s.Submit(Request{Sample: sample}); err != nil {
			b.Fatalf("submit %s: %v", sample, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		b.Fatalf("WaitIdle: %v", err)
	}
	s.Stop()
	return s
}

// BenchmarkCacheHit measures serving a request whose MSA phase is already
// cached: the hit path plus the inference stage.
func BenchmarkCacheHit(b *testing.B) {
	s := NewWithSuite(sharedSuite, Config{Threads: 4, MSAWorkers: 1, Cache: cache.New(0)})
	s.Start()
	defer s.Stop()
	ctx := context.Background()
	// Warm the cache with the first sighting.
	if _, err := s.Submit(Request{Sample: "1YY9"}); err != nil {
		b.Fatal(err)
	}
	if err := s.WaitIdle(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(Request{Sample: "1YY9"}); err != nil {
			b.Fatal(err)
		}
		if err := s.WaitIdle(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Config().Cache.Stats()
	// Chain-keyed cache: every repeat request serves its three chains.
	if int(st.Hits+st.Shared) != 3*b.N {
		b.Fatalf("expected %d chain hits, got %+v", 3*b.N, st)
	}
}

// BenchmarkCacheMiss measures the same request when every sighting is a
// first sighting: a fresh cache per iteration, so the full MSA search is
// paid each time. The hit/miss ratio of these two benchmarks is the
// per-request value of the cache.
func BenchmarkCacheMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchTrace(b, Config{Threads: 4, MSAWorkers: 1, Cache: cache.New(0)}, []string{"1YY9"})
		if st := s.Config().Cache.Stats(); st.Misses != 3 {
			b.Fatalf("expected 3 chain misses, got %+v", st)
		}
	}
}

// BenchmarkPhaseSplitVsSerial runs a repeat-heavy trace through the
// scheduler and reports the modeled phase-split and serial makespans as
// custom metrics alongside the real wall time per trace.
func BenchmarkPhaseSplitVsSerial(b *testing.B) {
	trace := []string{"promo", "1YY9", "1YY9", "promo", "1YY9", "1YY9"}
	var split, serial float64
	for i := 0; i < b.N; i++ {
		s := benchTrace(b, Config{Threads: 4, MSAWorkers: 2, Cache: cache.New(0)}, trace)
		sched := s.ModeledSchedule(2, 1)
		split = sched.Makespan
		serial = s.SerialMakespan()
		if split >= serial {
			b.Fatalf("phase-split makespan %.1fs not better than serial %.1fs", split, serial)
		}
	}
	b.ReportMetric(split, "modeled-split-s")
	b.ReportMetric(serial, "modeled-serial-s")
	b.ReportMetric(serial/split, "modeled-speedup")
}
