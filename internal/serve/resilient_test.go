package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	"afsysbench/internal/core"
	"afsysbench/internal/resilience"
)

func mustFaults(t *testing.T, spec string) resilience.Faults {
	t.Helper()
	fs, err := resilience.ParseFaults(spec)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestErrorClassTable covers every resilience error type the serving layer
// can surface, including wrapped forms.
func TestErrorClassTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"transient fault", &resilience.FaultError{Class: resilience.Transient, DB: "uniref_s", Attempt: 1}, "fault"},
		{"permanent fault", &resilience.FaultError{Class: resilience.Permanent, DB: "uniref_s"}, "fault"},
		{"chain fault", &resilience.FaultError{Class: resilience.ChainTransient, DB: "chain/B", Attempt: 1}, "fault"},
		{"wrapped chain fault", fmt.Errorf("msa 1YY9 chain B: %w", &resilience.FaultError{Class: resilience.ChainTransient, DB: "chain/B"}), "fault"},
		{"db unavailable", resilience.ErrDBUnavailable{DB: "uniref_s", Attempts: 4, Cause: &resilience.FaultError{Class: resilience.Permanent, DB: "uniref_s"}}, "fault"},
		{"overloaded queue-full", resilience.ErrOverloaded{Queued: 64, Capacity: 64}, "overloaded-queue-full"},
		{"overloaded rate-limited", resilience.ErrOverloaded{Reason: resilience.ShedRateLimited, Tenant: "storm"}, "overloaded-rate-limited"},
		{"overloaded brownout", resilience.ErrOverloaded{Reason: resilience.ShedBrownout, Tenant: "storm"}, "overloaded-brownout"},
		{"wrapped overloaded", fmt.Errorf("submit: %w", resilience.ErrOverloaded{Reason: resilience.ShedRateLimited}), "overloaded-rate-limited"},
		{"budget timeout", resilience.ErrStageTimeout{Stage: "inference", BudgetSeconds: 1, NeedSeconds: 2}, "timeout"},
		{"deadline timeout", resilience.ErrStageTimeout{Stage: "msa", Cause: context.DeadlineExceeded}, "timeout"},
		{"raw deadline", context.DeadlineExceeded, "timeout"},
		{"raw cancel", context.Canceled, "timeout"},
		{"wrapped cancel", fmt.Errorf("stage aborted: %w", context.Canceled), "timeout"},
		{"oom", core.ErrProjectedOOM{}, "oom"},
		{"panic", resilience.ErrPanic{Stage: "msa", Value: "boom"}, "panic"},
		{"handoff panic", resilience.ErrPanic{Stage: "handoff", Value: "boom"}, "panic"},
		{"plain error", errors.New("unclassified"), "error"},
	}
	for _, tc := range cases {
		if got := ErrorClass(tc.err); got != tc.want {
			t.Errorf("%s: ErrorClass = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestPanicIsolation: a worker panic fails only the panicking job (class
// "panic"); sibling jobs complete and both pools stay at full strength.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Config{
		Threads: 4, MSAWorkers: 2, GPUWorkers: 1,
		PanicHook: func(point string, ordinal int) {
			if point == "msa" && ordinal == 1 {
				panic("chaos: injected msa panic")
			}
		},
	})
	statuses := runTrace(t, s, []string{"1YY9", "1YY9", "1YY9"})

	if statuses[1].State != "failed" || statuses[1].ErrorClass != "panic" {
		t.Fatalf("panicked job state=%s class=%s, want failed/panic", statuses[1].State, statuses[1].ErrorClass)
	}
	for _, i := range []int{0, 2} {
		if statuses[i].State != "done" {
			t.Fatalf("sibling job %d state=%s (%s), want done", i, statuses[i].State, statuses[i].Error)
		}
	}
	if got := s.Metrics().Get("worker_panics"); got != 1 {
		t.Errorf("worker_panics = %d, want 1", got)
	}
	ph := s.PoolHealth()
	if !ph.FullStrength() {
		t.Fatalf("pool lost workers after panic: %+v", ph)
	}
	// The server still serves.
	id, err := s.Submit(Request{Sample: "1YY9"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status(id); st.State != "done" {
		t.Fatalf("post-panic submit state=%s (%s)", st.State, st.Error)
	}
}

// TestHandoffFaultReachesTerminalState is the job-drain regression test: a
// fault injected exactly at the MSA→GPU hand-off (after the MSA stage
// succeeded, before the job reaches the inference queue) must still drive
// the job to a terminal state — previously such a job was lost between the
// pools and WaitIdle hung forever.
func TestHandoffFaultReachesTerminalState(t *testing.T) {
	s := newTestServer(t, Config{
		Threads: 4, MSAWorkers: 1, GPUWorkers: 1,
		PanicHook: func(point string, ordinal int) {
			if point == "handoff" && ordinal == 0 {
				panic("chaos: injected handoff fault")
			}
		},
	})
	s.Start()
	id0, err := s.Submit(Request{Sample: "1YY9"})
	if err != nil {
		t.Fatal(err)
	}
	id1, err := s.Submit(Request{Sample: "2PV7"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("pipeline did not drain after hand-off fault: %v", err)
	}
	st0, _ := s.Status(id0)
	if st0.State != "failed" || st0.ErrorClass != "panic" {
		t.Fatalf("hand-off job state=%s class=%s, want failed/panic", st0.State, st0.ErrorClass)
	}
	if st1, _ := s.Status(id1); st1.State != "done" {
		t.Fatalf("follow-up job state=%s (%s)", st1.State, st1.Error)
	}
	if !s.PoolHealth().FullStrength() {
		t.Fatal("pool lost a worker to the hand-off fault")
	}
}

// TestBreakerOpensSkipsAndAnnotates: a database that fails every request
// trips its breaker after BreakerThreshold consecutive failures; later
// requests skip it without probing, succeed degraded, and are annotated
// partial_msa. The readiness probe names the open breaker.
func TestBreakerOpensSkipsAndAnnotates(t *testing.T) {
	s := newTestServer(t, Config{
		Threads: 2, MSAWorkers: 1, GPUWorkers: 1,
		Faults:           mustFaults(t, "permanent:uniref_s"),
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // stays open for the whole test
	})
	statuses := runTrace(t, s, []string{"2PV7", "2PV7", "2PV7", "2PV7"})
	for i, st := range statuses {
		if st.State != "done" {
			t.Fatalf("job %d state=%s (%s)", i, st.State, st.Error)
		}
		if !st.Degraded {
			t.Fatalf("job %d not degraded despite permanent fault", i)
		}
	}
	// Requests 0 and 1 probed the dark shard and fed the breaker; 2 and 3
	// found it open and skipped.
	if statuses[0].PartialMSA || statuses[1].PartialMSA {
		t.Error("pre-trip requests marked partial_msa")
	}
	if !statuses[2].PartialMSA || !statuses[3].PartialMSA {
		t.Errorf("post-trip requests not marked partial_msa: %+v %+v", statuses[2], statuses[3])
	}
	if got := s.Metrics().Get("breaker_to_open"); got != 1 {
		t.Errorf("breaker_to_open = %d, want 1", got)
	}
	if got := s.Metrics().Get("breaker_rejections"); got != 2 {
		t.Errorf("breaker_rejections = %d, want 2", got)
	}
	snap := s.BreakerSnapshots()["uniref_s"]
	if snap.State != "open" || snap.Trips != 1 {
		t.Errorf("uniref_s breaker snapshot = %+v", snap)
	}
	// The skip is visible in the resilience event stream.
	res, ok := s.Result(statuses[2].ID)
	if !ok {
		t.Fatal("no result for post-trip job")
	}
	found := false
	for _, ev := range res.Resilience.Events {
		if ev.Kind == resilience.KindBreakerSkip && ev.DB == "uniref_s" {
			found = true
		}
	}
	if !found {
		t.Error("no breaker-skip event recorded for the skipped database")
	}

	rd := s.Ready()
	if rd.Ready {
		t.Fatal("server with an open breaker reported ready")
	}
	if len(rd.OpenBreakers) != 1 || rd.OpenBreakers[0] != "uniref_s" {
		t.Fatalf("open breakers = %v, want [uniref_s]", rd.OpenBreakers)
	}
}

// TestBreakerHalfOpenRecovery: after the cooldown, one request probes the
// database; a healthy probe closes the breaker and service returns to the
// full profile.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	s := newTestServer(t, Config{
		Threads: 2, MSAWorkers: 1, GPUWorkers: 1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Millisecond,
	})
	b := s.breakers["uniref_s"]
	cause := errors.New("shard dark")
	b.Failure(cause)
	b.Failure(cause)
	if b.State() != resilience.BreakerOpen {
		t.Fatal("breaker did not open")
	}
	time.Sleep(5 * time.Millisecond) // let the cooldown elapse

	statuses := runTrace(t, s, []string{"2PV7"})
	if statuses[0].State != "done" {
		t.Fatalf("probe request state=%s (%s)", statuses[0].State, statuses[0].Error)
	}
	if statuses[0].PartialMSA || statuses[0].Degraded {
		t.Error("healthy probe request degraded")
	}
	if b.State() != resilience.BreakerClosed {
		t.Fatalf("breaker state after healthy probe = %v, want closed", b.State())
	}
	if !s.Ready().Ready {
		t.Error("recovered server not ready")
	}
}

// TestMSARetryRerunsOnlyFailedChains is the serving layer's headline
// resumability test: with chain faults injected, a request's first MSA
// attempt fails, the retry replays the completed chains from the job's
// checkpoint, and the final result is bitwise identical to a fault-free
// server's.
func TestMSARetryRerunsOnlyFailedChains(t *testing.T) {
	clean := newTestServer(t, Config{Threads: 2, MSAWorkers: 1, GPUWorkers: 1})
	cleanStatuses := runTrace(t, clean, []string{"1YY9"})
	cleanRes, _ := clean.Result(cleanStatuses[0].ID)

	s := newTestServer(t, Config{
		Threads: 2, MSAWorkers: 1, GPUWorkers: 1,
		Faults:      mustFaults(t, "chainfault:B:1"),
		MSAAttempts: 2,
	})
	statuses := runTrace(t, s, []string{"1YY9"})
	if statuses[0].State != "done" {
		t.Fatalf("state=%s (%s), want done via retry", statuses[0].State, statuses[0].Error)
	}
	if got := s.Metrics().Get("msa_stage_retries"); got != 1 {
		t.Errorf("msa_stage_retries = %d, want 1", got)
	}
	// Chain A completed before B faulted; the retry replayed it.
	if got := s.Metrics().Get("msa_chains_restored"); got != 1 {
		t.Errorf("msa_chains_restored = %d, want 1", got)
	}
	res, _ := s.Result(statuses[0].ID)
	if !reflect.DeepEqual(res.MSAData.PerChain, cleanRes.MSAData.PerChain) {
		t.Errorf("retried result differs from fault-free run:\n%+v\n%+v", res.MSAData.PerChain, cleanRes.MSAData.PerChain)
	}
	if res.MSASeconds != cleanRes.MSASeconds || res.MSAData.TotalHitResidues != cleanRes.MSAData.TotalHitResidues {
		t.Errorf("retried timings/volume differ: %.4f/%d vs %.4f/%d",
			res.MSASeconds, res.MSAData.TotalHitResidues, cleanRes.MSASeconds, cleanRes.MSAData.TotalHitResidues)
	}
	// The retry is visible in the resilience event stream.
	found := false
	for _, ev := range res.Resilience.Events {
		if ev.Kind == resilience.KindChainRetry {
			found = true
		}
	}
	if !found {
		t.Error("no chain-retry event recorded")
	}
}

// TestHedgedServingKeepsResultsIdentical: with aggressive hedging enabled,
// straggling chains race backup attempts — and every result stays bitwise
// identical to the unhedged server's.
func TestHedgedServingKeepsResultsIdentical(t *testing.T) {
	trace := []string{"1YY9", "1YY9", "1YY9"}
	plain := newTestServer(t, Config{Threads: 2, MSAWorkers: 1, GPUWorkers: 1})
	plainStatuses := runTrace(t, plain, trace)

	hedged := newTestServer(t, Config{
		Threads: 2, MSAWorkers: 1, GPUWorkers: 1,
		Hedge: HedgeConfig{Enabled: true, Percentile: 50, Factor: 0.05, MinSamples: 3},
	})
	hedgedStatuses := runTrace(t, hedged, trace)

	for i := range trace {
		pr, _ := plain.Result(plainStatuses[i].ID)
		hr, _ := hedged.Result(hedgedStatuses[i].ID)
		if hedgedStatuses[i].State != "done" {
			t.Fatalf("hedged job %d: %s (%s)", i, hedgedStatuses[i].State, hedgedStatuses[i].Error)
		}
		if !reflect.DeepEqual(hr.MSAData.PerChain, pr.MSAData.PerChain) || hr.MSASeconds != pr.MSASeconds {
			t.Errorf("request %d: hedged result differs from plain", i)
		}
	}
	// The first request seeds the estimator (3 chains ≥ MinSamples), so
	// later requests hedge with a 5%-of-median budget that every real
	// search overruns.
	if got := hedged.Metrics().Get("msa_hedges"); got == 0 {
		t.Error("aggressive hedge config never hedged")
	}
}

// TestReadyzEndpoint: readyz returns 200 on a healthy started server, 503
// before Start, and 503 naming the breaker once one opens.
func TestReadyzEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Threads: 2, MSAWorkers: 1, GPUWorkers: 1})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	get := func() (int, Readiness) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rd Readiness
		if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rd
	}

	if code, rd := get(); code != 503 || rd.Ready {
		t.Fatalf("unstarted server: code=%d ready=%v, want 503/false", code, rd.Ready)
	}
	s.Start()
	if code, rd := get(); code != 200 || !rd.Ready {
		t.Fatalf("started server: code=%d ready=%v, want 200/true", code, rd.Ready)
	}
	// Trip a breaker by hand; readyz must flip and name it.
	b := s.breakers["rfam_s"]
	for i := 0; i < s.cfg.BreakerThreshold; i++ {
		b.Failure(errors.New("dark"))
	}
	code, rd := get()
	if code != 503 || rd.Ready {
		t.Fatalf("open breaker: code=%d ready=%v, want 503/false", code, rd.Ready)
	}
	if len(rd.OpenBreakers) != 1 || rd.OpenBreakers[0] != "rfam_s" {
		t.Fatalf("open breakers = %v, want [rfam_s]", rd.OpenBreakers)
	}
	if rd.Breakers["rfam_s"].State != "open" {
		t.Fatalf("breaker detail missing: %+v", rd.Breakers)
	}
}

// TestNoGoroutineLeakUnderFaultLoad: a lifecycle full of panics, chain
// faults and retries must still release every goroutine — including hedge
// attempts — by the time WaitIdle and Stop return.
func TestNoGoroutineLeakUnderFaultLoad(t *testing.T) {
	warm := newTestServer(t, Config{Threads: 2, MSAWorkers: 2})
	runTrace(t, warm, []string{"1YY9"})
	warm.Stop()

	baseline := runtime.NumGoroutine()
	s := NewWithSuite(sharedSuite, Config{
		Threads: 2, MSAWorkers: 2, GPUWorkers: 1,
		// Every chain faults exactly once; 1YY9 has three unique chains, so
		// MSAAttempts 4 lets each job grind through to success via its
		// checkpoint while still exercising the retry machinery hard.
		Faults:      mustFaults(t, "chainfault:*:1"),
		MSAAttempts: 4,
		Hedge:       HedgeConfig{Enabled: true, Percentile: 50, Factor: 0.05, MinSamples: 3},
		PanicHook: func(point string, ordinal int) {
			if point == "inference" && ordinal == 1 {
				panic("chaos: injected inference panic")
			}
		},
	})
	statuses := runTrace(t, s, []string{"1YY9", "2PV7", "1YY9", "2PV7"})
	for i, st := range statuses {
		if st.State != "done" && st.State != "failed" {
			t.Fatalf("job %d not terminal: %s", i, st.State)
		}
	}
	if !s.PoolHealth().FullStrength() {
		t.Fatal("pool lost workers under fault load")
	}
	s.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked under fault load: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
