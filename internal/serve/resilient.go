// Serving-side fault tolerance: per-database circuit breakers, the hedge
// budget estimator, pool health accounting and the readiness probe. The
// scheduler in serve.go consults these around every MSA stage; everything
// here is advisory control-plane state — it decides *whether and how* a
// stage runs, while the deterministic pipeline decides *what* it computes.
package serve

import (
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"afsysbench/internal/core"
	"afsysbench/internal/resilience"
)

// HedgeConfig tunes chain-level hedged retries for the MSA stage. When
// enabled, the server tracks the wall-clock latency of every completed
// chain search; once MinSamples are in, a chain still running after
// Factor × the Percentile-th latency gets a concurrent backup attempt, and
// the first finisher wins. Hedging is latency-only: both attempts compute
// the same deterministic result.
type HedgeConfig struct {
	Enabled bool
	// Percentile of observed chain latencies that anchors the budget
	// (default 95).
	Percentile float64
	// Factor multiplies the percentile latency into the hedge delay
	// (default 2).
	Factor float64
	// MinSamples is how many chain latencies must be observed before
	// hedging arms (default 8) — with no history, there is no straggler
	// definition.
	MinSamples int
}

func (h HedgeConfig) withDefaults() HedgeConfig {
	if h.Percentile <= 0 || h.Percentile > 100 {
		h.Percentile = 95
	}
	if h.Factor <= 0 {
		h.Factor = 2
	}
	if h.MinSamples <= 0 {
		h.MinSamples = 8
	}
	return h
}

// hedgeEstimator accumulates chain-search latencies and derives the hedge
// delay. Sample history is bounded so long-lived servers track current
// behavior rather than averaging over their whole lifetime.
type hedgeEstimator struct {
	cfg HedgeConfig

	mu      sync.Mutex
	samples []time.Duration
}

func newHedgeEstimator(cfg HedgeConfig) *hedgeEstimator {
	return &hedgeEstimator{cfg: cfg.withDefaults()}
}

// observe records one completed chain search (the msa.Options.ChainDone
// hook). Checkpoint replays never reach here — they cost no search time.
func (h *hedgeEstimator) observe(chainID string, wall time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, wall)
	if len(h.samples) > 4096 {
		h.samples = append([]time.Duration(nil), h.samples[len(h.samples)-2048:]...)
	}
	h.mu.Unlock()
}

// budget returns the hedge delay for the next stage, or 0 while unarmed.
func (h *hedgeEstimator) budget() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n < h.cfg.MinSamples {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(h.cfg.Percentile/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	d := time.Duration(h.cfg.Factor * float64(sorted[idx]))
	if d <= 0 {
		return 0
	}
	return d
}

// initBreakers builds one circuit breaker per database in the suite's
// catalog. Breakers are created once and the map is read-only afterwards;
// each breaker carries its own lock.
func (s *Server) initBreakers() {
	s.breakers = make(map[string]*resilience.Breaker)
	var names []string
	for _, db := range s.suite.DBs.Protein {
		names = append(names, db.Name)
	}
	for _, db := range s.suite.DBs.RNA {
		names = append(names, db.Name)
	}
	for _, name := range names {
		s.breakers[name] = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: s.cfg.BreakerThreshold,
			Cooldown:  s.cfg.BreakerCooldown,
			OnTransition: func(from, to resilience.BreakerState) {
				s.cfg.Metrics.Add("breaker_to_"+to.String(), 1)
			},
		})
	}
}

// breakerPlan consults each needed database's breaker before the MSA
// stage. Open breakers put the database in the skip set — the pipeline
// sheds it at open time (KindBreakerSkip) instead of probing a shard known
// to be dark. A breaker granting a half-open probe is returned in probes;
// the stage outcome must settle every probe (Success, Failure or
// ProbeAbort) via feedBreakers. Names are walked in sorted order so
// metering is deterministic.
func (s *Server) breakerPlan(job *Job) (skip map[string]bool, probes []string) {
	if len(s.breakers) == 0 {
		return nil, nil
	}
	for _, name := range s.neededDBNames(job) {
		b := s.breakers[name]
		if b == nil {
			continue
		}
		if b.Allow() {
			if b.State() == resilience.BreakerHalfOpen {
				probes = append(probes, name)
				s.cfg.Metrics.Add("breaker_probes", 1)
			}
			continue
		}
		if skip == nil {
			skip = make(map[string]bool)
		}
		skip[name] = true
		s.cfg.Metrics.Add("breaker_rejections", 1)
	}
	return skip, probes
}

// feedBreakers settles the MSA stage outcome with every involved breaker.
// Only a freshly computed phase is evidence: a database the stage dropped
// (KindDropDB) counts as a failure for its breaker, and every needed,
// non-skipped database that survived counts as a success. A failed stage
// or a full cache hit (every chain served from a cache tier) says nothing
// about database health, so outstanding probe tokens are returned for the
// next request to spend. A partially cached stage settles all needed
// databases — chains replayed from the cache vouch for theirs by proxy,
// since the cached delta was computed from them.
func (s *Server) feedBreakers(job *Job, mp *core.MSAPhase, hit bool, err error, skip map[string]bool, probes []string) {
	if len(s.breakers) == 0 {
		return
	}
	if err != nil || hit || mp == nil {
		for _, name := range probes {
			s.breakers[name].ProbeAbort()
		}
		return
	}
	dropCause := make(map[string]string)
	for _, ev := range mp.Resilience.Events {
		if ev.Kind == resilience.KindDropDB && ev.DB != "" {
			dropCause[ev.DB] = ev.Detail
		}
	}
	for _, name := range s.neededDBNames(job) {
		if skip[name] {
			continue // never touched this stage
		}
		b := s.breakers[name]
		if b == nil {
			continue
		}
		if detail, dropped := dropCause[name]; dropped {
			b.Failure(errors.New(detail))
			s.cfg.Metrics.Add("breaker_failures", 1)
		} else {
			b.Success()
		}
	}
}

// neededDBNames returns the sorted names of the databases a job's input
// searches.
func (s *Server) neededDBNames(job *Job) []string {
	needed := s.suite.NeededDBs(job.in)
	names := make([]string, 0, len(needed))
	for name := range needed {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BreakerSnapshots returns each database breaker's state and counters,
// keyed by database name.
func (s *Server) BreakerSnapshots() map[string]resilience.BreakerSnapshot {
	out := make(map[string]resilience.BreakerSnapshot, len(s.breakers))
	for name, b := range s.breakers {
		out[name] = b.Snapshot()
	}
	return out
}

// PoolHealth reports configured versus live worker counts for both pools.
// Because per-job panics are recovered inside the worker loop, Live must
// equal Configured for the whole life of a started server; a shortfall
// means a worker goroutine died, which the chaos harness treats as a
// failed invariant. After Stop both Live counts return to zero.
type PoolHealth struct {
	MSAConfigured int `json:"msa_configured"`
	MSALive       int `json:"msa_live"`
	GPUConfigured int `json:"gpu_configured"`
	GPULive       int `json:"gpu_live"`
}

// FullStrength reports whether every configured worker is live.
func (p PoolHealth) FullStrength() bool {
	return p.MSALive == p.MSAConfigured && p.GPULive == p.GPUConfigured
}

// PoolHealth returns the current pool strength.
func (s *Server) PoolHealth() PoolHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return PoolHealth{
		MSAConfigured: s.cfg.MSAWorkers,
		MSALive:       s.msaLive,
		GPUConfigured: s.cfg.GPUWorkers,
		GPULive:       s.gpuLive,
	}
}

// Readiness is the payload of GET /v1/readyz: whether the server should
// receive traffic, and if not, why — open circuit breakers and/or a
// saturated admission queue.
type Readiness struct {
	Ready bool `json:"ready"`
	// OpenBreakers names databases whose circuit breakers are open, in
	// sorted order.
	OpenBreakers []string `json:"open_breakers,omitempty"`
	// QueueDepth/QueueCapacity describe the admission queue;
	// QueueSaturated is true when a submit right now would shed.
	QueueDepth     int  `json:"queue_depth"`
	QueueCapacity  int  `json:"queue_capacity"`
	QueueSaturated bool `json:"queue_saturated,omitempty"`
	// Breakers holds the snapshot of every breaker not in the closed
	// state.
	Breakers map[string]resilience.BreakerSnapshot `json:"breakers,omitempty"`
}

// Ready computes the readiness verdict: the server is ready when it is
// started, not stopped, no database breaker is open, and the admission
// queue has room.
func (s *Server) Ready() Readiness {
	r := Readiness{
		QueueDepth:    len(s.msaQ),
		QueueCapacity: cap(s.msaQ),
	}
	if s.wfq != nil {
		// QoS mode: the WFQ holds the MSA backlog; saturation is judged by
		// the controller's modeled occupancy, the same signal admission
		// sheds on.
		r.QueueDepth = s.wfq.Len()
		r.QueueSaturated = s.cfg.QoS.Occupancy() >= 1
	} else {
		r.QueueSaturated = r.QueueDepth >= r.QueueCapacity
	}
	for name, b := range s.breakers {
		snap := b.Snapshot()
		if snap.State == resilience.BreakerClosed.String() {
			continue
		}
		if r.Breakers == nil {
			r.Breakers = make(map[string]resilience.BreakerSnapshot)
		}
		r.Breakers[name] = snap
		if snap.State == resilience.BreakerOpen.String() {
			r.OpenBreakers = append(r.OpenBreakers, name)
		}
	}
	sort.Strings(r.OpenBreakers)
	s.mu.Lock()
	running := s.started && !s.stopped && !s.killed
	s.mu.Unlock()
	r.Ready = running && len(r.OpenBreakers) == 0 && !r.QueueSaturated
	return r
}
