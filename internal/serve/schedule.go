package serve

import "sort"

// The modeled schedule replays the completed request trace on a virtual
// clock: W CPU workers execute the charged MSA seconds of each request
// (zero on a cache hit) and G GPU workers execute the modeled inference
// seconds, with every request's inference eligible the moment its MSA
// finishes. It is the serving analogue of the paper's phase accounting —
// the single-run pipeline shows MSA dominating wall time (Figure 7); the
// schedule shows what phase-split pipelining and caching recover of it at
// deployment scale. Being post-hoc and deterministic, it also gives
// benchmarks a wall-clock-independent makespan to compare configurations
// on.

// ScheduleItem is one request's placement in the modeled schedule. Times
// are virtual seconds from the start of the trace.
type ScheduleItem struct {
	ID        string  `json:"id"`
	Sample    string  `json:"sample"`
	CacheHit  bool    `json:"cache_hit"`
	CPUWorker int     `json:"cpu_worker"`
	GPUWorker int     `json:"gpu_worker"`
	MSAStart  float64 `json:"msa_start"`
	MSAEnd    float64 `json:"msa_end"`
	InfStart  float64 `json:"inf_start"`
	InfEnd    float64 `json:"inf_end"`
}

// Schedule is the modeled execution of a completed trace.
type Schedule struct {
	CPUWorkers int            `json:"cpu_workers"`
	GPUWorkers int            `json:"gpu_workers"`
	Items      []ScheduleItem `json:"items"`
	// Makespan is the virtual end of the last inference; CPUBusy and
	// GPUBusy are the summed stage seconds actually charged.
	Makespan float64 `json:"makespan_seconds"`
	CPUBusy  float64 `json:"cpu_busy_seconds"`
	GPUBusy  float64 `json:"gpu_busy_seconds"`
}

// Throughput returns modeled requests per second over the makespan.
func (s Schedule) Throughput() float64 {
	if s.Makespan <= 0 {
		return 0
	}
	return float64(len(s.Items)) / s.Makespan
}

// CPUUtilPct returns the CPU pool's busy fraction of the makespan.
func (s Schedule) CPUUtilPct() float64 {
	if s.Makespan <= 0 || s.CPUWorkers <= 0 {
		return 0
	}
	return 100 * s.CPUBusy / (s.Makespan * float64(s.CPUWorkers))
}

// GPUUtilPct returns the GPU pool's busy fraction of the makespan.
func (s Schedule) GPUUtilPct() float64 {
	if s.Makespan <= 0 || s.GPUWorkers <= 0 {
		return 0
	}
	return 100 * s.GPUBusy / (s.Makespan * float64(s.GPUWorkers))
}

// ModeledSchedule replays the server's completed jobs (submit order) on a
// virtual clock with cpuWorkers MSA lanes and gpuWorkers inference lanes.
// Stage durations are the modeled seconds each request was charged — a
// cache hit charges zero MSA seconds, which is exactly how a hit buys
// throughput. Failed or in-flight jobs are excluded. The replay is
// list scheduling: each MSA goes to the earliest-free CPU lane in submit
// order; each inference goes to the earliest-free GPU lane in order of
// MSA completion (ordinal breaks ties), never before its own MSA ends.
func (s *Server) ModeledSchedule(cpuWorkers, gpuWorkers int) Schedule {
	if cpuWorkers < 1 {
		cpuWorkers = 1
	}
	if gpuWorkers < 1 {
		gpuWorkers = 1
	}
	s.mu.Lock()
	type stage struct {
		id       string
		sample   string
		hit      bool
		ordinal  int
		msa, inf float64
	}
	var done []stage
	for _, job := range s.order {
		if job.state != StateDone || job.result == nil {
			continue
		}
		done = append(done, stage{
			id:      job.id,
			sample:  job.in.Name,
			hit:     job.cacheHit,
			ordinal: job.ordinal,
			// Charged inference seconds: the canonical total unbatched,
			// the amortized batch share when the request rode a batched
			// dispatch — so batching's fixed-cost amortization shows up
			// in the modeled makespan exactly once per batch.
			msa: job.chargedMSASeconds,
			inf: job.chargedInfSeconds,
		})
	}
	s.mu.Unlock()

	sched := Schedule{CPUWorkers: cpuWorkers, GPUWorkers: gpuWorkers}
	if len(done) == 0 {
		return sched
	}
	items := make([]ScheduleItem, len(done))
	cpuFree := make([]float64, cpuWorkers)
	for i, st := range done {
		w := argminLane(cpuFree)
		start := cpuFree[w]
		end := start + st.msa
		cpuFree[w] = end
		items[i] = ScheduleItem{
			ID: st.id, Sample: st.sample, CacheHit: st.hit,
			CPUWorker: w, MSAStart: start, MSAEnd: end,
		}
		sched.CPUBusy += st.msa
	}
	// Inference dispatch order: MSA completion time, ordinal tie-break —
	// the deterministic analogue of "whoever's features are ready first".
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if items[ia].MSAEnd != items[ib].MSAEnd {
			return items[ia].MSAEnd < items[ib].MSAEnd
		}
		return done[ia].ordinal < done[ib].ordinal
	})
	gpuFree := make([]float64, gpuWorkers)
	for _, i := range order {
		g := argminLane(gpuFree)
		start := gpuFree[g]
		if items[i].MSAEnd > start {
			start = items[i].MSAEnd
		}
		end := start + done[i].inf
		gpuFree[g] = end
		items[i].GPUWorker = g
		items[i].InfStart = start
		items[i].InfEnd = end
		sched.GPUBusy += done[i].inf
		if end > sched.Makespan {
			sched.Makespan = end
		}
	}
	sched.Items = items
	return sched
}

// SerialMakespan returns the modeled makespan of the same completed trace
// run the stock way: one request at a time, MSA then inference, no
// overlap — the paper's one-container-per-request deployment. The ratio
// against ModeledSchedule(...).Makespan is the phase-split speedup.
func (s *Server) SerialMakespan() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total float64
	for _, job := range s.order {
		if job.state != StateDone || job.result == nil {
			continue
		}
		total += job.chargedMSASeconds + job.result.Inference.Total()
	}
	return total
}

// argminLane returns the index of the smallest value (lowest index wins
// ties), keeping lane assignment deterministic.
func argminLane(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
