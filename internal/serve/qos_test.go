package serve

import (
	"context"
	"testing"
	"time"

	"afsysbench/internal/inputs"
	"afsysbench/internal/qos"
	"afsysbench/internal/resilience"
)

// qosEvent is one open-loop submission: tenant, sample, modeled arrival.
type qosTestEvent struct {
	tenant  string
	sample  string
	arrival float64
}

// runQoSTrace builds a QoS server around a fresh controller, submits the
// events open-loop (all before Start, so WFQ pop order is a pure function
// of the push history), drains it, and returns the server for inspection.
func runQoSTrace(t *testing.T, qcfg qos.Config, scfg Config, events []qosTestEvent) *Server {
	t.Helper()
	scfg.QoS = qos.NewController(qcfg)
	s := newTestServer(t, scfg)
	for _, ev := range events {
		_, err := s.Submit(Request{Sample: ev.sample, Tenant: ev.tenant, Arrival: ev.arrival})
		if err != nil && !resilience.IsOverloaded(err) {
			t.Fatalf("submit %s for %s: %v", ev.sample, ev.tenant, err)
		}
	}
	s.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	return s
}

// contendedEvents interleaves two tenants with enough pressure (a tight
// bucket on "bulk" plus a low drain rate) that the decision stream
// contains admits, rate-limited sheds and brownout degradations — a digest
// over it is sensitive to any reordering.
func contendedEvents() []qosTestEvent {
	var events []qosTestEvent
	for i := 0; i < 10; i++ {
		events = append(events, qosTestEvent{"inter", "ppi-0x1", float64(i) * 1.5})
		events = append(events, qosTestEvent{"bulk", "ppi-2x3", float64(i) * 0.4})
		events = append(events, qosTestEvent{"bulk", "ppi-4x5", float64(i)*0.4 + 0.2})
	}
	return events
}

func contendedConfig() qos.Config {
	return qos.Config{
		Tenants: map[string]qos.TenantConfig{
			"inter": {Weight: 4},
			"bulk":  {Weight: 1, Rate: 120, Burst: 240},
		},
		DrainTokensPerSec: 150,
		CapacityTokens:    2000,
	}
}

// TestQoSDeterminismAcrossPoolSizes is the QoS analogue of the scheduler's
// core contract: the admit/shed decision sequence and the WFQ dispatch
// order are bitwise identical whatever the pool sizes and whether or not
// cross-request batching is enabled.
func TestQoSDeterminismAcrossPoolSizes(t *testing.T) {
	events := contendedEvents()
	configs := []Config{
		{Threads: 4, MSAWorkers: 1, GPUWorkers: 1},
		{Threads: 4, MSAWorkers: 8, GPUWorkers: 2},
		{Threads: 4, MSAWorkers: 2, GPUWorkers: 1, Batch: BatchConfig{Enabled: true}},
	}
	var want *FairnessReport
	for ci, cfg := range configs {
		s := runQoSTrace(t, contendedConfig(), cfg, events)
		rep := s.FairnessReport(4, 2)
		if rep == nil {
			t.Fatal("QoS server must produce a fairness report")
		}
		if ci == 0 {
			if bulk := rep.Stats("bulk"); bulk.ShedRateLimited == 0 {
				t.Fatalf("scenario too gentle: bulk tenant was never rate-limited: %+v", bulk)
			}
			want = rep
			continue
		}
		if rep.DecisionDigest != want.DecisionDigest {
			t.Errorf("config %d: decision digest %s != %s", ci, rep.DecisionDigest, want.DecisionDigest)
		}
		if rep.DispatchDigest != want.DispatchDigest {
			t.Errorf("config %d: dispatch digest %s != %s", ci, rep.DispatchDigest, want.DispatchDigest)
		}
		for _, tenant := range []string{"inter", "bulk"} {
			got, ref := rep.Stats(tenant), want.Stats(tenant)
			if got.Admitted != ref.Admitted || got.Shed() != ref.Shed() || got.Degraded() != ref.Degraded() {
				t.Errorf("config %d tenant %s: admitted/shed/degraded %d/%d/%d != %d/%d/%d",
					ci, tenant, got.Admitted, got.Shed(), got.Degraded(),
					ref.Admitted, ref.Shed(), ref.Degraded())
			}
		}
	}
}

// TestQoSStarvationRegression pins the WFQ's reason to exist: an aggressor
// offering 100x the victim's request count (and ~40x its chain-tokens)
// must not starve the victim. Every victim request is admitted, completes,
// and its modeled tail latency stays below the aggressor's — the victim's
// weight buys it the front of the queue, while the aggressor's quota eats
// the excess.
func TestQoSStarvationRegression(t *testing.T) {
	var events []qosTestEvent
	for i := 0; i < 4; i++ {
		events = append(events, qosTestEvent{"victim", "2PV7", float64(i)})
	}
	for i := 0; i < 400; i++ {
		events = append(events, qosTestEvent{"aggr", "ppi-0x1", float64(i) * 0.05})
	}
	qcfg := qos.Config{
		Tenants: map[string]qos.TenantConfig{
			"victim": {Weight: 8},
			"aggr":   {Weight: 1, Rate: 150, Burst: 300},
		},
	}
	s := runQoSTrace(t, qcfg, Config{Threads: 4, MSAWorkers: 2, GPUWorkers: 1}, events)
	rep := s.FairnessReport(4, 2)

	vs := rep.Stats("victim")
	if vs.Offered != 4 || vs.Admitted != 4 || vs.Shed() != 0 {
		t.Fatalf("victim must be fully admitted under the storm: %+v", vs)
	}
	for _, st := range s.Statuses() {
		if st.Tenant == "victim" && st.State != "done" {
			t.Fatalf("victim job %s stuck in state %s", st.ID, st.State)
		}
	}
	as := rep.Stats("aggr")
	if as.ShedRateLimited == 0 {
		t.Fatalf("aggressor must be rate-limited by its quota: %+v", as)
	}
	victim, aggr := rep.TenantRow("victim"), rep.TenantRow("aggr")
	if victim.Completed != 4 {
		t.Fatalf("victim completed %d of 4", victim.Completed)
	}
	if victim.Latency.P95Ms >= aggr.Latency.P95Ms {
		t.Errorf("victim p95 %.0fms not below aggressor p95 %.0fms — WFQ is not protecting the victim",
			victim.Latency.P95Ms, aggr.Latency.P95Ms)
	}
}

// TestQoSSharedControllerAcrossReplicas models the cluster deployment: R
// replicas behind a router share ONE controller, so a tenant spraying all
// replicas still gets exactly its single-system quota — not R times it.
func TestQoSSharedControllerAcrossReplicas(t *testing.T) {
	ctrl := qos.NewController(qos.Config{
		Tenants:           map[string]qos.TenantConfig{"bulk": {Weight: 1, Rate: 100, Burst: 500}},
		DrainTokensPerSec: 1000,
	})
	var replicas []*Server
	for i := 0; i < 3; i++ {
		s := newTestServer(t, Config{Threads: 4, MSAWorkers: 1, GPUWorkers: 1, QoS: ctrl})
		s.Start()
		replicas = append(replicas, s)
	}
	// 30 spray submissions, round-robin over replicas, one modeled second
	// apart: the shared bucket admits burst (500 tokens) plus 100
	// tokens/sec of refill regardless of which replica fields the request.
	admitted := 0
	for i := 0; i < 30; i++ {
		_, err := replicas[i%3].Submit(Request{Sample: "ppi-0x1", Tenant: "bulk", Arrival: float64(i)})
		if err == nil {
			admitted++
		} else if !resilience.IsOverloaded(err) {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for _, s := range replicas {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		if err := s.WaitIdle(ctx); err != nil {
			t.Fatalf("WaitIdle: %v", err)
		}
		cancel()
	}
	// ppi-0x1 costs ~205 chain-tokens; 29 modeled seconds of refill at 100
	// t/s plus the 500-token burst funds ~16 admissions. Three independent
	// controllers would have admitted three times that (45 > 30, i.e. all).
	if admitted == 30 {
		t.Fatal("shared controller failed to limit a tenant spraying replicas (all 30 admitted)")
	}
	single := qos.NewController(qos.Config{
		Tenants:           map[string]qos.TenantConfig{"bulk": {Weight: 1, Rate: 100, Burst: 500}},
		DrainTokensPerSec: 1000,
	})
	in, err := inputs.ByName("ppi-0x1")
	if err != nil {
		t.Fatal(err)
	}
	cost := float64(in.TotalResidues())
	singleAdmitted := 0
	for i := 0; i < 30; i++ {
		if single.Admit("bulk", float64(i), cost).Admit {
			singleAdmitted++
		}
	}
	if admitted != singleAdmitted {
		t.Errorf("sprayed admissions %d != single-system admissions %d — replicas leaked quota", admitted, singleAdmitted)
	}
}
