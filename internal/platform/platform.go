// Package platform encodes the two evaluation systems from Table I of the
// paper — the Intel Xeon + H100 "Server" and the AMD Ryzen + RTX 4080
// "Desktop" — plus the variants used in specific experiments (CXL memory
// expansion on the server, the 128 GiB DRAM upgrade the desktop needed for
// the 6QNR sample). These configurations parameterize the CPU, GPU and
// storage models in simhw, simgpu and simio.
package platform

import "fmt"

// Byte-size helpers.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// CPU describes a processor: the architectural facts from Table I plus the
// microarchitectural character parameters the paper's profiling exposes
// (Intel's compute-centric pipeline vs AMD's memory-centric cache hierarchy,
// Section V-B2a).
type CPU struct {
	Name    string
	Vendor  string // "Intel" or "AMD"
	Cores   int
	Threads int

	BaseClockGHz float64
	MaxClockGHz  float64

	// Cache hierarchy. L1D and L2 are per-core; LLC is shared.
	L1DBytes int64
	L2Bytes  int64
	LLCBytes int64

	// BaseIPC is the sustainable retirement rate on branch-heavy integer
	// DP code when no memory stalls occur.
	BaseIPC float64

	// BranchQuality scales workload-intrinsic misprediction rates:
	// < 1 means the predictor learns the pattern better than baseline.
	BranchQuality float64
	// BranchPenaltyCycles is the pipeline refill cost per mispredict.
	BranchPenaltyCycles float64

	// TLBReachBytes is the effective no-miss address reach of the data TLB
	// path that the platform's "dTLB miss" counter measures. The Intel
	// number reflects the STLB with transparent huge pages (the paper sees
	// 0.00–0.01% dTLB misses); the AMD number reflects the small first
	// level dTLB that uProf reports (the paper sees 6–37%).
	TLBReachBytes int64
	// TLBMissPenaltyCycles is the stall per miss at that level.
	TLBMissPenaltyCycles float64

	// Latency of each hierarchy level in cycles (load-to-use).
	L2LatencyCycles  float64
	LLCLatencyCycles float64
	// MemLatencyNs is DRAM load latency in nanoseconds (clock independent).
	MemLatencyNs float64

	// MemBandwidthGBs is the peak DRAM bandwidth in GB/s.
	MemBandwidthGBs float64

	// PrefetchEfficiency is the fraction of sequential-stream miss latency
	// the hardware prefetchers hide.
	PrefetchEfficiency float64

	// L1MissFactor is the strided-access L1D miss fraction character of
	// the core (op-cache, L1 size and L2->L1 prefetch differences give
	// Intel the lower rate in Table III).
	L1MissFactor float64

	// LLCBaseMissFrac is the floor miss fraction for reused data at the
	// LLC — the non-inclusive/victim behavior of a small LLC that keeps
	// Intel's measured miss rate high and flat even at one thread
	// (Table III), while AMD's large unified L3 starts near zero.
	LLCBaseMissFrac float64

	// AllCoreClockFactor is the sustained all-core boost as a fraction of
	// MaxClockGHz (thermal/power limits bite as more cores activate).
	AllCoreClockFactor float64
}

// ClockGHz returns the sustained clock when active cores are busy.
// One active core runs at max boost; the clock decays linearly toward the
// all-core sustained point as more cores light up.
func (c CPU) ClockGHz(activeCores int) float64 {
	if activeCores <= 1 {
		return c.MaxClockGHz
	}
	if activeCores > c.Cores {
		activeCores = c.Cores
	}
	allCore := c.MaxClockGHz * c.AllCoreClockFactor
	frac := float64(activeCores-1) / float64(c.Cores-1)
	clk := c.MaxClockGHz - (c.MaxClockGHz-allCore)*frac
	if clk < c.BaseClockGHz {
		clk = c.BaseClockGHz
	}
	return clk
}

// GPU describes an accelerator card.
type GPU struct {
	Name     string
	MemBytes int64
	// FP32TFlops is peak single-precision throughput.
	FP32TFlops float64
	// TensorTFlops is peak matrix-engine throughput (BF16/TF32 class), the
	// rate attention/matmul kernels approach.
	TensorTFlops float64
	// MemBandwidthGBs is device memory bandwidth.
	MemBandwidthGBs float64
	// UnifiedMemPenalty multiplies kernel time when the footprint spills
	// over device memory via unified memory (the 6QNR case on RTX 4080).
	UnifiedMemPenalty float64
	// InitSeconds is the device init cost (driver, context, memory pools)
	// on a cold start.
	InitSeconds float64
	// CompileFactor scales XLA compile time for this device generation
	// (more autotuning candidates on newer architectures).
	CompileFactor float64
	// Devices is the number of identical accelerator cards installed; zero
	// means one (both paper platforms are single-GPU). The serving
	// scheduler sizes its inference pool to it.
	Devices int
}

// Storage describes the NVMe device.
type Storage struct {
	Name            string
	SeqReadMBs      float64 // sequential read throughput
	RandReadIOPS    float64
	ReadLatencyMs   float64 // idle read latency (the paper's r_await 0.1–0.2 ms)
	MaxQueuedUtilPc float64 // utilization ceiling before latency climbs
}

// Machine is one evaluation platform.
type Machine struct {
	Name      string
	CPU       CPU
	DRAMBytes int64
	// CXLBytes is optional expansion memory (slower tier); zero if absent.
	CXLBytes int64
	// CXLLatencyFactor multiplies DRAM latency for CXL-resident data.
	CXLLatencyFactor float64
	GPU              GPU
	Storage          Storage
}

// TotalMemBytes returns DRAM plus CXL capacity.
func (m Machine) TotalMemBytes() int64 { return m.DRAMBytes + m.CXLBytes }

// Server returns the Intel Xeon Gold 5416S + H100 platform of Table I
// (without the optional CXL expander; see ServerWithCXL).
func Server() Machine {
	return Machine{
		Name: "Server",
		CPU: CPU{
			Name:                 "Intel Xeon Gold 5416S",
			Vendor:               "Intel",
			Cores:                16,
			Threads:              32,
			BaseClockGHz:         2.0,
			MaxClockGHz:          4.0,
			L1DBytes:             48 * KiB, // 80 KB L1 total per core = 48 KB data + 32 KB instr
			L2Bytes:              2 * MiB,
			LLCBytes:             30 * MiB,
			BaseIPC:              3.9,
			BranchQuality:        0.55,
			BranchPenaltyCycles:  17,
			TLBReachBytes:        3 * GiB, // STLB + THP: effectively unbounded
			TLBMissPenaltyCycles: 40,
			L2LatencyCycles:      14,
			LLCLatencyCycles:     48,
			MemLatencyNs:         95,
			MemBandwidthGBs:      140, // 8-channel DDR5-4400 (half populated)
			PrefetchEfficiency:   0.85,
			L1MissFactor:         0.0012,
			LLCBaseMissFrac:      0.45,
			AllCoreClockFactor:   0.70,
		},
		DRAMBytes: 512 * GiB,
		GPU: GPU{
			Name:              "NVIDIA H100 80GB",
			MemBytes:          80 * GiB,
			FP32TFlops:        67,
			TensorTFlops:      400, // sustained, not peak-sparsity marketing
			MemBandwidthGBs:   3350,
			UnifiedMemPenalty: 2.0,
			InitSeconds:       22.0,
			CompileFactor:     2.5,
		},
		Storage: Storage{
			Name:            "PCIe 4.0 NVMe SSD",
			SeqReadMBs:      6800,
			RandReadIOPS:    1_000_000,
			ReadLatencyMs:   0.08,
			MaxQueuedUtilPc: 95,
		},
	}
}

// ServerWithCXL returns the server with the 256 GiB CXL memory expander
// attached (used only in the Section III-C RNA memory experiments).
func ServerWithCXL() Machine {
	m := Server()
	m.Name = "Server+CXL"
	m.CXLBytes = 256 * GiB
	m.CXLLatencyFactor = 2.5
	return m
}

// Desktop returns the AMD Ryzen 7900X + RTX 4080 platform of Table I.
func Desktop() Machine {
	return Machine{
		Name: "Desktop",
		CPU: CPU{
			Name:                 "AMD Ryzen 9 7900X",
			Vendor:               "AMD",
			Cores:                12,
			Threads:              24,
			BaseClockGHz:         4.7,
			MaxClockGHz:          5.6,
			L1DBytes:             32 * KiB, // 64 KB per core = 32 KB data + 32 KB instr
			L2Bytes:              1 * MiB,
			LLCBytes:             64 * MiB,
			BaseIPC:              3.6,
			BranchQuality:        2.2,
			BranchPenaltyCycles:  14,
			TLBReachBytes:        288 * KiB, // 72-entry first-level dTLB (what uProf reports)
			TLBMissPenaltyCycles: 0.3,       // second-level TLB hit, almost fully overlapped
			L2LatencyCycles:      13,
			LLCLatencyCycles:     50,
			MemLatencyNs:         78,
			MemBandwidthGBs:      72, // dual-channel DDR5-6000
			PrefetchEfficiency:   0.88,
			L1MissFactor:         0.012,
			LLCBaseMissFrac:      0.0,
			AllCoreClockFactor:   0.88,
		},
		DRAMBytes: 64 * GiB,
		GPU: GPU{
			Name:              "NVIDIA RTX 4080 16GB",
			MemBytes:          16 * GiB,
			FP32TFlops:        49,
			TensorTFlops:      130,
			MemBandwidthGBs:   717,
			UnifiedMemPenalty: 1.8,
			InitSeconds:       12.0,
			CompileFactor:     1.0,
		},
		Storage: Storage{
			Name:            "PCIe 4.0 NVMe SSD",
			SeqReadMBs:      7000,
			RandReadIOPS:    1_000_000,
			ReadLatencyMs:   0.08,
			MaxQueuedUtilPc: 100,
		},
	}
}

// DesktopUpgraded returns the desktop with the 128 GiB DRAM upgrade the
// paper needed to run 6QNR (Section III-B).
func DesktopUpgraded() Machine {
	m := Desktop()
	m.Name = "Desktop-128G"
	m.DRAMBytes = 128 * GiB
	return m
}

// ByName returns a platform by its Name field.
func ByName(name string) (Machine, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("platform: unknown machine %q", name)
}

// All returns every defined platform.
func All() []Machine {
	return []Machine{Server(), ServerWithCXL(), Desktop(), DesktopUpgraded()}
}
