package platform

import "testing"

func TestTable1Facts(t *testing.T) {
	s, d := Server(), Desktop()
	if s.CPU.Cores != 16 || s.CPU.Threads != 32 {
		t.Error("server core/thread counts wrong")
	}
	if d.CPU.Cores != 12 || d.CPU.Threads != 24 {
		t.Error("desktop core/thread counts wrong")
	}
	if s.CPU.BaseClockGHz != 2.0 || s.CPU.MaxClockGHz != 4.0 {
		t.Error("server clocks wrong")
	}
	if d.CPU.BaseClockGHz != 4.7 || d.CPU.MaxClockGHz != 5.6 {
		t.Error("desktop clocks wrong")
	}
	if s.CPU.LLCBytes != 30*MiB || d.CPU.LLCBytes != 64*MiB {
		t.Error("LLC sizes wrong")
	}
	if s.DRAMBytes != 512*GiB || d.DRAMBytes != 64*GiB {
		t.Error("DRAM sizes wrong")
	}
	if s.GPU.MemBytes != 80*GiB || d.GPU.MemBytes != 16*GiB {
		t.Error("GPU memory sizes wrong")
	}
}

func TestPaperCharacterContrasts(t *testing.T) {
	s, d := Server().CPU, Desktop().CPU
	if s.BaseIPC <= d.BaseIPC {
		t.Error("Intel must have the higher per-cycle efficiency (Sec V-B2a)")
	}
	if s.BranchQuality >= d.BranchQuality {
		t.Error("Intel must have the better branch predictor character")
	}
	if s.TLBReachBytes <= d.TLBReachBytes {
		t.Error("Intel's measured dTLB path must have the larger reach")
	}
	if d.MaxClockGHz <= s.MaxClockGHz {
		t.Error("desktop must have the frequency advantage")
	}
	if d.LLCBytes <= s.LLCBytes {
		t.Error("AMD must have the larger LLC")
	}
}

func TestVariants(t *testing.T) {
	cxl := ServerWithCXL()
	if cxl.CXLBytes != 256*GiB {
		t.Error("CXL expansion size wrong")
	}
	if cxl.TotalMemBytes() != (512+256)*GiB {
		t.Error("total memory with CXL wrong")
	}
	up := DesktopUpgraded()
	if up.DRAMBytes != 128*GiB {
		t.Error("upgraded desktop DRAM wrong")
	}
	if Server().TotalMemBytes() != 512*GiB {
		t.Error("server without CXL must not count expansion")
	}
}

func TestClockScaling(t *testing.T) {
	c := Server().CPU
	if got := c.ClockGHz(1); got != c.MaxClockGHz {
		t.Errorf("single-core clock = %v, want max boost", got)
	}
	allCore := c.ClockGHz(c.Cores)
	if allCore >= c.MaxClockGHz {
		t.Error("all-core clock must be below single-core boost")
	}
	if allCore < c.BaseClockGHz {
		t.Error("clock must not fall below base")
	}
	// Monotonically non-increasing in active cores.
	prev := c.ClockGHz(1)
	for n := 2; n <= c.Cores+2; n++ {
		cur := c.ClockGHz(n)
		if cur > prev {
			t.Fatalf("clock increased at %d cores", n)
		}
		prev = cur
	}
}

func TestByName(t *testing.T) {
	for _, m := range All() {
		got, err := ByName(m.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", m.Name, err)
		}
		if got.Name != m.Name {
			t.Errorf("ByName(%q) returned %q", m.Name, got.Name)
		}
	}
	if _, err := ByName("Mainframe"); err == nil {
		t.Error("unknown platform accepted")
	}
}
