package simio

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"afsysbench/internal/platform"
)

const gib = int64(1) << 30

func TestColdReadThenCached(t *testing.T) {
	s := New(platform.Server(), 8*gib)
	r1 := s.ReadSequential("uniref", 40*gib)
	if r1.FromDisk != 40*gib || r1.FromCache != 0 {
		t.Fatalf("cold read: disk=%d cache=%d", r1.FromDisk, r1.FromCache)
	}
	if r1.DiskSeconds <= 0 {
		t.Error("cold read must cost disk time")
	}
	r2 := s.ReadSequential("uniref", 40*gib)
	if r2.FromDisk != 0 || r2.FromCache != 40*gib {
		t.Errorf("warm read: disk=%d cache=%d", r2.FromDisk, r2.FromCache)
	}
	if r2.DiskSeconds != 0 {
		t.Error("warm read must be free")
	}
}

func TestServerHoldsAllDatabases(t *testing.T) {
	// The paper's server: 512 GiB holds protein + RNA databases together.
	s := New(platform.Server(), 16*gib)
	s.ReadSequential("protein", 60*gib)
	s.ReadSequential("rna", 89*gib)
	r := s.ReadSequential("protein", 60*gib)
	if r.FromDisk != 0 {
		t.Errorf("server re-read protein went to disk for %d bytes", r.FromDisk)
	}
}

func TestDesktopEvictsUnderPressure(t *testing.T) {
	// 64 GiB desktop cannot keep 60+89 GiB resident: re-reads hit disk
	// (the paper's I/O-bound desktop behavior).
	s := New(platform.Desktop(), 8*gib)
	s.ReadSequential("protein", 60*gib)
	s.ReadSequential("rna", 89*gib)
	r := s.ReadSequential("protein", 60*gib)
	if r.FromDisk == 0 {
		t.Error("desktop re-read should hit disk after eviction")
	}
}

func TestSingleDatasetLargerThanCache(t *testing.T) {
	s := New(platform.Desktop(), 8*gib) // 56 GiB cache
	r1 := s.ReadSequential("rna", 89*gib)
	if r1.FromDisk != 89*gib {
		t.Error("first scan must stream everything")
	}
	r2 := s.ReadSequential("rna", 89*gib)
	if r2.FromDisk == 0 {
		t.Error("oversized dataset can never be fully cached")
	}
	if r2.FromCache == 0 {
		t.Error("a resident window should still serve part of the scan")
	}
}

func TestSetReservedEvicts(t *testing.T) {
	s := New(platform.Desktop(), 8*gib)
	s.ReadSequential("db", 40*gib)
	if s.Resident("db") != 40*gib {
		t.Fatalf("resident = %d", s.Resident("db"))
	}
	// nhmmer balloons to 50 GiB: cache shrinks to 14 GiB.
	s.SetReserved(50 * gib)
	if s.Resident("db") > 14*gib {
		t.Errorf("resident after pressure = %d, want <= 14 GiB", s.Resident("db"))
	}
}

func TestLRUVictimOrder(t *testing.T) {
	s := New(platform.Desktop(), 8*gib) // 56 GiB capacity
	s.ReadSequential("old", 30*gib)
	s.ReadSequential("new", 20*gib)
	// Admitting 20 more GiB must evict from "old" first.
	s.ReadSequential("third", 20*gib)
	if s.Resident("new") < s.Resident("old") {
		t.Errorf("LRU order violated: old=%d new=%d", s.Resident("old"), s.Resident("new"))
	}
}

func TestPreloadMakesLaterReadFree(t *testing.T) {
	s := New(platform.Server(), 8*gib)
	pr := s.Preload("rna", 89*gib)
	if pr.FromDisk != 89*gib {
		t.Error("preload must stream from disk")
	}
	r := s.ReadSequential("rna", 89*gib)
	if r.DiskSeconds != 0 {
		t.Error("post-preload read should be free")
	}
}

func TestDrop(t *testing.T) {
	s := New(platform.Server(), 8*gib)
	s.ReadSequential("db", 10*gib)
	s.Drop("db")
	if s.Resident("db") != 0 {
		t.Error("drop did not evict")
	}
	if r := s.ReadSequential("db", 10*gib); r.FromDisk != 10*gib {
		t.Error("read after drop should be cold")
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New(platform.Desktop(), 8*gib)
	s.ReadSequential("a", 10*gib)
	s.ReadSequential("b", 10*gib)
	st := s.Stats()
	if st.ReadBytes != 20*gib {
		t.Errorf("read bytes = %d", st.ReadBytes)
	}
	if st.BusySeconds <= 0 || st.Requests <= 0 {
		t.Error("busy seconds / requests not tracked")
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}
}

func TestUtilization(t *testing.T) {
	if got := UtilizationPct(5, 10); got != 50 {
		t.Errorf("util = %v", got)
	}
	if got := UtilizationPct(20, 10); got != 100 {
		t.Errorf("util must cap at 100, got %v", got)
	}
	if got := UtilizationPct(1, 0); got != 0 {
		t.Errorf("zero wall util = %v", got)
	}
}

func TestPaperScaleUtilContrast(t *testing.T) {
	// Server reading the 89 GiB RNA DB cold during a ~1000 s MSA phase:
	// util must stay low (paper: rarely exceeded 20%).
	srv := New(platform.Server(), 16*gib)
	r := srv.ReadSequential("rna", 89*gib)
	if u := UtilizationPct(r.DiskSeconds, 1000); u > 20 {
		t.Errorf("server util = %.1f%%, want < 20%%", u)
	}
	// Desktop re-streaming 140 GiB of evicted databases inside a ~25 s
	// window pegs the device.
	dsk := New(platform.Desktop(), 8*gib)
	dsk.ReadSequential("protein", 60*gib)
	dsk.ReadSequential("rna", 89*gib)
	rr := dsk.ReadSequential("protein", 60*gib)
	if u := UtilizationPct(rr.DiskSeconds, rr.DiskSeconds); u < 99 {
		t.Errorf("desktop peak util = %.1f%%, want ~100%%", u)
	}
}

func TestCacheCapacityFloor(t *testing.T) {
	s := New(platform.Desktop(), 200*gib) // reservation exceeds DRAM
	if s.CacheCapacity() != 0 {
		t.Error("capacity must floor at zero")
	}
	r := s.ReadSequential("db", gib)
	if r.FromDisk != gib {
		t.Error("with no cache everything reads from disk")
	}
	if s.Resident("db") != 0 {
		t.Error("nothing can be resident with zero capacity")
	}
}

func TestQuickResidencyNeverExceedsCapacity(t *testing.T) {
	f := func(sizesRaw []uint32) bool {
		s := New(platform.Desktop(), 8*gib)
		capacity := s.CacheCapacity()
		for i, raw := range sizesRaw {
			size := int64(raw%200) * gib / 4
			s.ReadSequential(fmt.Sprintf("db%d", i%5), size)
			var total int64
			for j := 0; j < 5; j++ {
				total += s.Resident(fmt.Sprintf("db%d", j))
			}
			if total > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWarmReadNeverSlowerThanCold(t *testing.T) {
	f := func(raw uint32) bool {
		size := int64(raw%100+1) * gib / 10
		s := New(platform.Server(), 8*gib)
		cold := s.ReadSequential("db", size)
		warm := s.ReadSequential("db", size)
		return warm.DiskSeconds <= cold.DiskSeconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTryReadSequentialFaultHook(t *testing.T) {
	s := New(platform.Server(), 8*gib)
	var calls []int
	s.SetFaultFunc(func(name string, attempt int, bytes int64) error {
		calls = append(calls, attempt)
		if attempt <= 2 {
			return fmt.Errorf("injected failure %d on %s", attempt, name)
		}
		return nil
	})
	// Two failed attempts: no bytes stream, nothing becomes resident.
	for a := 1; a <= 2; a++ {
		r, err := s.TryReadSequential("db", gib)
		if err == nil {
			t.Fatalf("attempt %d: want error", a)
		}
		if r.DiskSeconds != 0 || r.Bytes != 0 {
			t.Errorf("attempt %d charged a failed read: %+v", a, r)
		}
	}
	if s.Resident("db") != 0 {
		t.Error("failed reads admitted bytes to the cache")
	}
	if got := s.Stats().FailedReads; got != 2 {
		t.Errorf("FailedReads = %d, want 2", got)
	}
	// Third attempt succeeds and behaves like a plain cold read.
	r, err := s.TryReadSequential("db", gib)
	if err != nil {
		t.Fatal(err)
	}
	if r.FromDisk != gib || r.DiskSeconds <= 0 {
		t.Errorf("successful read: %+v", r)
	}
	if len(calls) != 3 || calls[2] != 3 {
		t.Errorf("attempt numbering: %v", calls)
	}
	// Without a hook, TryReadSequential is ReadSequential.
	s.SetFaultFunc(nil)
	if _, err := s.TryReadSequential("db2", gib); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Stats().String(), "failed=2") {
		t.Errorf("stats string omits failures: %s", s.Stats().String())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := New(platform.Desktop(), 8*gib)
	s.ReadSequential("a", 10*gib)
	s.ReadSequential("b", 4*gib)

	c := s.Clone()
	if c.Stats() != s.Stats() || c.Resident("a") != s.Resident("a") || c.Reserved() != s.Reserved() {
		t.Fatal("clone does not match source")
	}
	// Mutating the clone leaves the source untouched, and vice versa.
	c.ReadSequential("c", 20*gib)
	c.SetReserved(30 * gib)
	if s.Resident("c") != 0 || s.Reserved() != 8*gib {
		t.Error("clone mutation leaked into source")
	}
	before := c.Stats()
	s.ReadSequential("a", 10*gib)
	if c.Stats() != before {
		t.Error("source mutation leaked into clone")
	}
}
