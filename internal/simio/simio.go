// Package simio models the storage path of the two platforms: the NVMe
// device (sequential throughput, request latency) and the OS page cache
// whose capacity decides whether the multi-GiB reference databases stay
// resident in DRAM. This split is the mechanism behind the paper's
// Section V-B2c contrast: the 512 GiB server keeps every database cached
// and is compute-bound, while the 64 GiB desktop re-reads from disk and
// pins its NVMe at 100% utilization — yet streams fast enough not to stall
// the pipeline.
package simio

import (
	"fmt"
	"sort"

	"afsysbench/internal/platform"
)

// System is the storage + page-cache state of one machine across a
// benchmark run. It is not safe for concurrent use; the orchestrator owns
// it.
type System struct {
	machine  platform.Machine
	reserved int64 // application anonymous memory, unavailable to the cache

	resident map[string]int64 // dataset -> resident bytes
	lastUse  map[string]int64
	tick     int64

	// Accumulated iostat-style counters.
	readBytes   int64
	busySeconds float64
	requests    int64
	failedReads int64

	// fault, when set, is consulted before each TryReadSequential attempt
	// (the resilience layer's injection point). attempts counts per-dataset
	// read attempts so the hook can distinguish first touch from retry.
	fault    FaultFunc
	attempts map[string]int
}

// FaultFunc decides the fate of one read attempt on a dataset: nil to let
// the read proceed, or an error to fail it. attempt is 1-based and counts
// every TryReadSequential call for that dataset over the System's life.
type FaultFunc func(name string, attempt int, bytes int64) error

// New builds the storage system for a machine. reservedBytes is anonymous
// application memory (heap, model weights) that competes with the page
// cache for DRAM.
func New(m platform.Machine, reservedBytes int64) *System {
	return &System{
		machine:  m,
		reserved: reservedBytes,
		resident: make(map[string]int64),
		lastUse:  make(map[string]int64),
	}
}

// CacheCapacity returns the bytes available to the page cache (DRAM plus
// CXL expansion minus reserved application memory).
func (s *System) CacheCapacity() int64 {
	c := s.machine.TotalMemBytes() - s.reserved
	if c < 0 {
		c = 0
	}
	return c
}

// SetReserved updates the application's anonymous memory reservation
// (e.g. when the nhmmer stage balloons); shrinking the cache evicts.
func (s *System) SetReserved(bytes int64) {
	s.reserved = bytes
	s.evictTo(s.CacheCapacity())
}

// Reserved returns the current anonymous-memory reservation.
func (s *System) Reserved() int64 { return s.reserved }

// Resident returns the resident bytes of a dataset.
func (s *System) Resident(name string) int64 { return s.resident[name] }

// SetFaultFunc installs (or clears, with nil) the read-fault hook.
func (s *System) SetFaultFunc(f FaultFunc) { s.fault = f }

// Clone returns an independent deep copy of the system: cache contents,
// LRU state, counters and reservation. The degradation ladder uses clones
// to cost candidate MSA plans without disturbing the live cache; the fault
// hook and attempt counters are shared state of the run and are NOT copied.
func (s *System) Clone() *System {
	c := &System{
		machine:     s.machine,
		reserved:    s.reserved,
		resident:    make(map[string]int64, len(s.resident)),
		lastUse:     make(map[string]int64, len(s.lastUse)),
		tick:        s.tick,
		readBytes:   s.readBytes,
		busySeconds: s.busySeconds,
		requests:    s.requests,
		failedReads: s.failedReads,
	}
	for k, v := range s.resident {
		c.resident[k] = v
	}
	for k, v := range s.lastUse {
		c.lastUse[k] = v
	}
	return c
}

// ReadResult describes one dataset scan.
type ReadResult struct {
	Bytes       int64
	FromCache   int64
	FromDisk    int64
	DiskSeconds float64
	// AwaitMs is the modeled per-request latency (the paper's r_await).
	AwaitMs float64
}

// ReadSequential simulates a front-to-back scan of the named dataset of the
// given total size. Bytes resident in the page cache are free (their CPU
// cost is already accounted by the CPU model); the remainder streams from
// the NVMe device at its sequential rate and becomes resident, evicting
// least-recently-used datasets if space is short.
func (s *System) ReadSequential(name string, bytes int64) ReadResult {
	if bytes < 0 {
		bytes = 0
	}
	s.tick++
	s.lastUse[name] = s.tick

	res := ReadResult{Bytes: bytes}
	cached := s.resident[name]
	if cached > bytes {
		cached = bytes
	}
	res.FromCache = cached
	res.FromDisk = bytes - cached

	if res.FromDisk > 0 {
		rate := s.machine.Storage.SeqReadMBs * 1e6
		res.DiskSeconds = float64(res.FromDisk) / rate
		res.AwaitMs = s.machine.Storage.ReadLatencyMs
		s.readBytes += res.FromDisk
		s.busySeconds += res.DiskSeconds
		s.requests += res.FromDisk / (128 << 10) // 128 KiB streaming requests
	}

	// Admit the freshly read bytes (and keep the cached part) under LRU.
	s.admit(name, bytes)
	return res
}

// TryReadSequential is ReadSequential behind the fault hook: the read
// fails (with the hook's error, no bytes streamed, no cache admission) or
// proceeds normally. Failed attempts count in Stats.FailedReads. Without a
// hook installed it is exactly ReadSequential.
func (s *System) TryReadSequential(name string, bytes int64) (ReadResult, error) {
	if s.fault != nil {
		if s.attempts == nil {
			s.attempts = make(map[string]int)
		}
		s.attempts[name]++
		if err := s.fault(name, s.attempts[name], bytes); err != nil {
			s.failedReads++
			return ReadResult{}, err
		}
	}
	return s.ReadSequential(name, bytes), nil
}

// Preload explicitly fetches a dataset into the cache ahead of use — the
// Section VI "preloading databases" optimization. It returns the disk time
// spent.
func (s *System) Preload(name string, bytes int64) ReadResult {
	return s.ReadSequential(name, bytes)
}

// Drop removes a dataset from the cache (e.g. container restart).
func (s *System) Drop(name string) {
	delete(s.resident, name)
	delete(s.lastUse, name)
}

// admit makes the dataset resident up to bytes, evicting other datasets in
// LRU order, then trimming the dataset itself if it alone exceeds capacity.
func (s *System) admit(name string, bytes int64) {
	capacity := s.CacheCapacity()
	if bytes > capacity {
		bytes = capacity // a partial tail window stays resident
	}
	s.resident[name] = bytes
	s.evictTo(capacity)
}

// evictTo shrinks total residency to capacity, preferring LRU victims.
func (s *System) evictTo(capacity int64) {
	var total int64
	for _, b := range s.resident {
		total += b
	}
	if total <= capacity {
		return
	}
	type entry struct {
		name string
		use  int64
	}
	order := make([]entry, 0, len(s.resident))
	for n := range s.resident {
		order = append(order, entry{n, s.lastUse[n]})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].use < order[j].use })
	for _, e := range order {
		if total <= capacity {
			return
		}
		victim := s.resident[e.name]
		need := total - capacity
		if victim <= need {
			total -= victim
			delete(s.resident, e.name)
			delete(s.lastUse, e.name)
		} else {
			s.resident[e.name] = victim - need
			total = capacity
		}
	}
}

// Stats are cumulative iostat-style counters.
type Stats struct {
	ReadBytes   int64
	BusySeconds float64
	Requests    int64
	// FailedReads counts read attempts the fault hook rejected.
	FailedReads int64
}

// Stats returns the accumulated counters.
func (s *System) Stats() Stats {
	return Stats{ReadBytes: s.readBytes, BusySeconds: s.busySeconds, Requests: s.requests, FailedReads: s.failedReads}
}

// UtilizationPct returns device utilization over a wall-clock window: the
// fraction of that window the device was busy, as iostat %util.
func UtilizationPct(busySeconds, wallSeconds float64) float64 {
	if wallSeconds <= 0 {
		return 0
	}
	u := 100 * busySeconds / wallSeconds
	if u > 100 {
		u = 100
	}
	return u
}

// String renders stats for logs.
func (s Stats) String() string {
	out := fmt.Sprintf("read=%.1f GiB busy=%.1fs requests=%d",
		float64(s.ReadBytes)/(1<<30), s.BusySeconds, s.Requests)
	if s.FailedReads > 0 {
		out += fmt.Sprintf(" failed=%d", s.FailedReads)
	}
	return out
}
