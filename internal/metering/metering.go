// Package metering defines the instrumentation contract between the real
// workload code (HMM search kernels, buffers, tensor ops) and the machine
// models in simhw/simio. Workload functions report Events describing the
// work they just performed — instruction estimates, bytes touched, access
// pattern, working-set size — and a machine model turns those events into
// cycles, cache misses and simulated seconds for a specific platform.
//
// This is the layering seam that lets one execution of the workload be
// "replayed" against both the Intel Xeon server and the AMD Ryzen desktop
// models without re-running the algorithms.
package metering

// Pattern classifies the dominant memory access pattern of an event. The
// cache and TLB models treat them differently: sequential traffic prefetches
// almost perfectly, strided traffic costs TLB reach, random traffic pays the
// full hierarchy.
type Pattern int

const (
	Sequential Pattern = iota
	Strided
	Random
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	default:
		return "unknown"
	}
}

// Event is one unit of reported work, attributed to a named function. The
// function names mirror the hot symbols in the paper's Tables IV and V
// (calc_band_9, calc_band_10, addbuf, seebuf, copy_to_iter,
// std::vector::_M_fill_insert, xla::ShapeUtil::ByteSizeOf) so the profiler
// output lines up with the paper's perf reports.
type Event struct {
	// Func is the symbol the work is attributed to.
	Func string
	// Instructions is the retired-instruction estimate for the event.
	Instructions uint64
	// Bytes is the total data volume touched (reads + writes).
	Bytes uint64
	// WorkingSet is the live data footprint in bytes during the event; the
	// cache model compares it against per-level capacities.
	WorkingSet uint64
	// Pattern is the dominant access pattern.
	Pattern Pattern
	// Branches is the conditional-branch estimate.
	Branches uint64
	// BranchMissRate is the workload-intrinsic misprediction probability
	// in [0,1]; the CPU model scales it by its predictor quality.
	BranchMissRate float64
	// PageTouches counts distinct virtual pages touched, driving the dTLB
	// and page-fault models. Zero means "derive from Bytes/pageSize".
	PageTouches uint64
	// Allocated is bytes newly allocated during the event (drives page
	// faults on first touch, Table V's _M_fill_insert behavior).
	Allocated uint64
	// Pruned counts work units (DP cells, filter lanes) that a provably-safe
	// early exit skipped. Pruned work is charged at its actual residual cost
	// inside Instructions/Bytes — a sentinel check, or nothing at all — not
	// at full kernel cost; the count is recorded separately so per-function
	// attribution can distinguish executed volume from skipped volume
	// instead of silently under-reporting the kernel's logical extent.
	Pruned uint64
	// LanesRejected counts full-precision work units (float filter lanes, DP
	// cells) a quantized SWAR pre-pass proved below threshold and disposed of
	// wholesale. Kept separate from Pruned so attribution distinguishes the
	// 8-bit pre-pass rejections (whose residual cost is the packed-lane scan
	// itself) from float-path pruning (whose residual cost is sentinel visits
	// and bound checks inside the exact kernels).
	LanesRejected uint64
}

// Meter receives events. Implementations must be safe for use from the
// single goroutine that owns them; concurrent workers each get their own
// Meter and the owner merges afterwards.
type Meter interface {
	Record(ev Event)
}

// Nop discards all events; it is the default when a caller does not care
// about simulation, keeping the workload code unconditional.
type Nop struct{}

// Record implements Meter.
func (Nop) Record(Event) {}

// Accumulator collects events verbatim, summing per-function totals. It is
// the standard sink for one worker thread's activity.
type Accumulator struct {
	Events []Event
}

// Record implements Meter.
func (a *Accumulator) Record(ev Event) { a.Events = append(a.Events, ev) }

// Totals sums the accumulated events.
func (a *Accumulator) Totals() Event {
	var t Event
	t.Func = "total"
	for _, ev := range a.Events {
		t.Instructions += ev.Instructions
		t.Bytes += ev.Bytes
		t.Branches += ev.Branches
		t.PageTouches += ev.PageTouches
		t.Allocated += ev.Allocated
		t.Pruned += ev.Pruned
		t.LanesRejected += ev.LanesRejected
		if ev.WorkingSet > t.WorkingSet {
			t.WorkingSet = ev.WorkingSet
		}
	}
	return t
}

// ByFunc groups the accumulated events per function symbol, summing counts
// and keeping the maximum working set.
func (a *Accumulator) ByFunc() map[string]Event {
	out := make(map[string]Event)
	for _, ev := range a.Events {
		cur := out[ev.Func]
		cur.Func = ev.Func
		cur.Instructions += ev.Instructions
		cur.Bytes += ev.Bytes
		cur.Branches += ev.Branches
		cur.PageTouches += ev.PageTouches
		cur.Allocated += ev.Allocated
		cur.Pruned += ev.Pruned
		cur.LanesRejected += ev.LanesRejected
		if ev.WorkingSet > cur.WorkingSet {
			cur.WorkingSet = ev.WorkingSet
		}
		if ev.Pattern > cur.Pattern {
			// Keep the "worst" (least cache friendly) pattern seen.
			cur.Pattern = ev.Pattern
		}
		// Weighted blend of branch miss rates by branch count.
		if ev.Branches > 0 {
			tot := float64(cur.Branches)
			cur.BranchMissRate = (cur.BranchMissRate*(tot-float64(ev.Branches)) +
				ev.BranchMissRate*float64(ev.Branches)) / tot
		}
		out[ev.Func] = cur
	}
	return out
}

// Scaled returns a Meter that multiplies instruction/byte counts by factor
// before forwarding to next. The suite uses it to map MiB-scale synthetic
// databases onto the paper's GiB-scale work volumes.
func Scaled(next Meter, factor float64) Meter {
	return &scaledMeter{next: next, factor: factor}
}

type scaledMeter struct {
	next   Meter
	factor float64
}

// Record implements Meter, scaling counts before forwarding.
func (m *scaledMeter) Record(ev Event) {
	ev.Instructions = uint64(float64(ev.Instructions) * m.factor)
	ev.Bytes = uint64(float64(ev.Bytes) * m.factor)
	ev.Branches = uint64(float64(ev.Branches) * m.factor)
	ev.PageTouches = uint64(float64(ev.PageTouches) * m.factor)
	ev.Allocated = uint64(float64(ev.Allocated) * m.factor)
	ev.Pruned = uint64(float64(ev.Pruned) * m.factor)
	ev.LanesRejected = uint64(float64(ev.LanesRejected) * m.factor)
	m.next.Record(ev)
}
