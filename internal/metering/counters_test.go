package metering

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Add("b", 1)
	if got := r.Get("a"); got != 5 {
		t.Fatalf("a = %d, want 5", got)
	}
	if got := r.Get("missing"); got != 0 {
		t.Fatalf("missing = %d, want 0", got)
	}
	snap := r.Snapshot()
	r.Add("a", 1)
	if snap["a"] != 5 {
		t.Fatal("snapshot not isolated from later writes")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Add("x", 1)         // must not panic
	r.SetGauge("live", 3) // must not panic
	if r.Get("x") != 0 || len(r.Snapshot()) != 0 || len(r.Names()) != 0 {
		t.Fatal("nil registry must read as empty")
	}
	if r.Gauge("live") != 0 || len(r.Gauges()) != 0 {
		t.Fatal("nil registry gauges must read as empty")
	}
}

func TestRegistryGauges(t *testing.T) {
	r := NewRegistry()
	r.SetGauge("live", 4)
	r.SetGauge("live", 2) // gauges move both directions
	if got := r.Gauge("live"); got != 2 {
		t.Fatalf("live = %d, want 2", got)
	}
	if got := r.Gauge("absent"); got != 0 {
		t.Fatalf("absent = %d, want 0", got)
	}
	snap := r.Gauges()
	r.SetGauge("live", 9)
	if snap["live"] != 2 {
		t.Fatal("gauge snapshot not isolated from later writes")
	}
	// Gauges and counters are separate namespaces.
	r.Add("live", 1)
	if r.Get("live") != 1 || r.Gauge("live") != 9 {
		t.Fatal("gauge and counter namespaces collided")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Get("n"); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Add("zeta", 1)
	r.Add("alpha", 2)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"alpha": 2`) || !strings.Contains(out, `"zeta": 1`) {
		t.Fatalf("json = %s", out)
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatalf("keys not sorted: %s", out)
	}
}
