package metering

import (
	"testing"
)

func TestNopDiscards(t *testing.T) {
	var m Meter = Nop{}
	m.Record(Event{Func: "x", Instructions: 1}) // must not panic
}

func TestAccumulatorTotals(t *testing.T) {
	var a Accumulator
	a.Record(Event{Func: "f", Instructions: 10, Bytes: 100, WorkingSet: 50, Branches: 5, Allocated: 7})
	a.Record(Event{Func: "g", Instructions: 20, Bytes: 200, WorkingSet: 80, Branches: 15, PageTouches: 3})
	tot := a.Totals()
	if tot.Instructions != 30 || tot.Bytes != 300 || tot.Branches != 20 {
		t.Errorf("totals wrong: %+v", tot)
	}
	if tot.WorkingSet != 80 {
		t.Errorf("WorkingSet should be max, got %d", tot.WorkingSet)
	}
	if tot.Allocated != 7 || tot.PageTouches != 3 {
		t.Errorf("allocated/pages wrong: %+v", tot)
	}
}

func TestByFuncGroups(t *testing.T) {
	var a Accumulator
	a.Record(Event{Func: "f", Instructions: 10, Pattern: Sequential, Branches: 100, BranchMissRate: 0.1})
	a.Record(Event{Func: "f", Instructions: 5, Pattern: Random, Branches: 100, BranchMissRate: 0.3})
	a.Record(Event{Func: "g", Instructions: 7})
	by := a.ByFunc()
	if len(by) != 2 {
		t.Fatalf("groups = %d, want 2", len(by))
	}
	f := by["f"]
	if f.Instructions != 15 {
		t.Errorf("f instructions = %d, want 15", f.Instructions)
	}
	if f.Pattern != Random {
		t.Errorf("worst pattern not kept: %v", f.Pattern)
	}
	if f.BranchMissRate < 0.19 || f.BranchMissRate > 0.21 {
		t.Errorf("blended branch miss rate = %v, want 0.2", f.BranchMissRate)
	}
	if by["g"].Instructions != 7 {
		t.Error("g instructions wrong")
	}
}

func TestScaledMultiplies(t *testing.T) {
	var a Accumulator
	s := Scaled(&a, 10)
	s.Record(Event{Func: "f", Instructions: 3, Bytes: 5, Branches: 7, PageTouches: 2, Allocated: 1, WorkingSet: 99})
	if len(a.Events) != 1 {
		t.Fatal("event not forwarded")
	}
	ev := a.Events[0]
	if ev.Instructions != 30 || ev.Bytes != 50 || ev.Branches != 70 || ev.PageTouches != 20 || ev.Allocated != 10 {
		t.Errorf("scaling wrong: %+v", ev)
	}
	if ev.WorkingSet != 99 {
		t.Errorf("WorkingSet must not be scaled, got %d", ev.WorkingSet)
	}
}

func TestPatternString(t *testing.T) {
	if Sequential.String() != "sequential" || Strided.String() != "strided" || Random.String() != "random" {
		t.Error("pattern names wrong")
	}
	if Pattern(42).String() != "unknown" {
		t.Error("unknown pattern name wrong")
	}
}
