package metering

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Registry is a concurrency-safe set of named monotonic counters for
// long-running processes — the serving subsystem's operational metrics
// (requests admitted/shed/completed, stage entries, cache traffic). Where
// Event/Accumulator instrument one run of the workload for the machine
// models, a Registry aggregates across requests for the /metrics endpoint
// of a server that never exits.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
	}
}

// Add increments the named counter by delta, creating it at zero first.
// A nil registry discards the update, so instrumented code stays
// unconditional (the Nop convention of this package).
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Get returns the named counter's value (0 if absent or nil registry).
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge sets the named gauge to value. Unlike counters, gauges move in
// both directions — they report current state (live pool workers, queue
// depth) rather than accumulated traffic. A nil registry discards the
// update.
func (r *Registry) SetGauge(name string, value int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = value
	r.mu.Unlock()
}

// Gauge returns the named gauge's value (0 if absent or nil registry).
func (r *Registry) Gauge(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Gauges returns a copy of all gauges.
func (r *Registry) Gauges() map[string]int64 {
	out := make(map[string]int64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// Snapshot returns a copy of all counters.
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Names returns the counter names in sorted order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// WriteJSON dumps the counters as a JSON object. encoding/json sorts map
// keys, so the dump is byte-stable for a given counter state.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
