package memest

import (
	"fmt"

	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
)

// GPU-side estimation: the inference phase's device-memory footprint. The
// paper's Section III-B records exactly this failure mode — 6QNR exceeded
// the RTX 4080's 16 GB and had to fall back to CUDA unified memory. The
// estimator predicts it up front, the companion of the CPU-side Check.

// GPUVerdict classifies the projected device footprint.
type GPUVerdict int

const (
	// GPUFits: the prediction runs fully device-resident.
	GPUFits GPUVerdict = iota
	// GPUNeedsUnified: exceeds device memory; unified-memory offload
	// required (runs, but slower — the 6QNR-on-desktop case).
	GPUNeedsUnified
)

// String implements fmt.Stringer.
func (v GPUVerdict) String() string {
	switch v {
	case GPUFits:
		return "FITS"
	case GPUNeedsUnified:
		return "NEEDS-UNIFIED-MEMORY"
	default:
		return fmt.Sprintf("GPUVerdict(%d)", int(v))
	}
}

// GPUEstimate is the device-memory projection for one input on one GPU.
type GPUEstimate struct {
	Input      string
	GPU        string
	Tokens     int
	WeightGiB  float64
	ActGiB     float64
	TotalBytes int64
	Verdict    GPUVerdict
}

// Device footprint model, mirroring simgpu: fixed weights plus activation
// buffers scaling with the squared token count (pair representation).
const (
	gpuWeightBytes     = int64(2) << 30
	gpuActBytesPerPair = 16 * 128 * 4
)

// GPUCheck projects the inference footprint of the input on the machine's
// GPU.
func GPUCheck(in *inputs.Input, mach platform.Machine) GPUEstimate {
	n := int64(in.TotalResidues())
	act := n * n * gpuActBytesPerPair
	est := GPUEstimate{
		Input:      in.Name,
		GPU:        mach.GPU.Name,
		Tokens:     int(n),
		WeightGiB:  float64(gpuWeightBytes) / GiB,
		ActGiB:     float64(act) / GiB,
		TotalBytes: gpuWeightBytes + act,
	}
	if est.TotalBytes > mach.GPU.MemBytes {
		est.Verdict = GPUNeedsUnified
	}
	return est
}

// MaxResidentTokens returns the largest token count whose prediction stays
// device-resident on the machine's GPU.
func MaxResidentTokens(mach platform.Machine) int {
	budget := mach.GPU.MemBytes - gpuWeightBytes
	if budget <= 0 {
		return 0
	}
	lo, hi := 0, 1<<20
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int64(mid)*int64(mid)*gpuActBytesPerPair <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
