package memest

import (
	"math"
	"testing"

	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
)

func gib(b int64) float64 { return float64(b) / GiB }

func TestRNAAnchorsReproduced(t *testing.T) {
	// Figure 2's measured points must come back exactly.
	cases := map[int]float64{621: 79.3, 935: 506, 1135: 644}
	for l, want := range cases {
		if got := gib(RNAPeakBytes(l)); math.Abs(got-want) > 0.01 {
			t.Errorf("RNA %d: %.1f GiB, want %.1f", l, got, want)
		}
	}
}

func TestRNACurveShape(t *testing.T) {
	// Monotonic and non-linear (superlinear between the first anchors).
	prev := int64(-1)
	for l := 0; l <= 2000; l += 50 {
		cur := RNAPeakBytes(l)
		if cur < prev {
			t.Fatalf("RNA curve decreased at %d", l)
		}
		prev = cur
	}
	// 621 -> 935 is a 1.5x length increase but >6x memory (paper text).
	if ratio := gib(RNAPeakBytes(935)) / gib(RNAPeakBytes(621)); ratio < 6 {
		t.Errorf("memory growth 621->935 = %.1fx, want >6x (non-linear)", ratio)
	}
	if RNAPeakBytes(0) != 0 || RNAPeakBytes(-5) != 0 {
		t.Error("non-positive lengths must cost nothing")
	}
}

func TestRNA1335ExceedsServerWithCXL(t *testing.T) {
	// The paper's 1,335-residue attempt died above 768 GiB.
	if gib(RNAPeakBytes(1335)) <= 768 {
		t.Errorf("RNA 1335 = %.0f GiB, must exceed 768", gib(RNAPeakBytes(1335)))
	}
}

func TestProteinModelMatchesPaper(t *testing.T) {
	cases := []struct {
		len, threads int
		wantGiB      float64
		tol          float64
	}{
		{1000, 1, 0.23, 0.03},
		{1000, 8, 0.9, 0.05},
		{2000, 8, 1.7, 0.15},
	}
	for _, c := range cases {
		got := gib(ProteinPeakBytes(c.len, c.threads))
		if math.Abs(got-c.wantGiB) > c.tol {
			t.Errorf("protein %d res %dT: %.3f GiB, want %.2f", c.len, c.threads, got, c.wantGiB)
		}
	}
	if ProteinPeakBytes(0, 4) != 0 {
		t.Error("zero-length protein must cost nothing")
	}
	if ProteinPeakBytes(1000, 0) != ProteinPeakBytes(1000, 1) {
		t.Error("threads < 1 must clamp to 1")
	}
}

func TestVerdictStringAndOrdering(t *testing.T) {
	if OK.String() != "OK" || NeedsExpansion.String() != "NEEDS-EXPANSION" || OOM.String() != "OOM" {
		t.Error("verdict names wrong")
	}
}

func TestCheckFigure2Verdicts(t *testing.T) {
	sweep := inputs.RNASweep() // 621, 935, 1135, 1335
	srv := platform.Server()
	cxl := platform.ServerWithCXL()

	want := []struct {
		plain, withCXL Verdict
	}{
		{OK, OK},             // 79 GiB
		{NeedsExpansion, OK}, // 506 GiB > 512-6 floor... close to DRAM limit
		{NeedsExpansion, OK}, // 644 GiB: CXL required (paper)
		{OOM, OOM},           // >768 GiB: failed even with CXL (paper)
	}
	for i, in := range sweep {
		if got := Check(in, srv, 8).Verdict; got != want[i].plain {
			t.Errorf("%s on server: %v, want %v", in.Name, got, want[i].plain)
		}
		if got := Check(in, cxl, 8).Verdict; got != want[i].withCXL {
			t.Errorf("%s on server+CXL: %v, want %v", in.Name, got, want[i].withCXL)
		}
	}
}

func TestCheckTableIISamplesFitOnServer(t *testing.T) {
	srv := platform.Server()
	for _, in := range inputs.Samples() {
		est := Check(in, srv, 8)
		if est.Verdict != OK {
			t.Errorf("%s on server: %v, all Table II samples ran on the server", in.Name, est.Verdict)
		}
		if est.PeakBytes <= est.BaselineBytes {
			t.Errorf("%s peak not above baseline", in.Name)
		}
	}
}

func TestCheckProteinThreadsMatter(t *testing.T) {
	in, _ := inputs.ByName("1YY9")
	e1 := Check(in, platform.Desktop(), 1)
	e8 := Check(in, platform.Desktop(), 8)
	if e8.ProteinBytes <= e1.ProteinBytes {
		t.Error("protein memory must grow with threads (Section III-C)")
	}
	if e8.RNABytes != e1.RNABytes {
		t.Error("RNA memory must be thread-independent (Section III-C)")
	}
}

func TestMaxSafeRNALength(t *testing.T) {
	plain := MaxSafeRNALength(platform.Server())
	cxl := MaxSafeRNALength(platform.ServerWithCXL())
	desk := MaxSafeRNALength(platform.Desktop())
	if !(desk < plain && plain < cxl) {
		t.Errorf("safe lengths not ordered: desktop=%d server=%d cxl=%d", desk, plain, cxl)
	}
	// Verify the boundary is real: one residue beyond must not fit.
	budget := platform.Server().TotalMemBytes() - int64(8)<<30
	if RNAPeakBytes(plain) > budget {
		t.Error("reported safe length exceeds budget")
	}
	if RNAPeakBytes(plain+1) <= budget {
		t.Error("safe length is not maximal")
	}
	// The paper's CXL platform completed 1,135 but not 1,335.
	if cxl < 1135 || cxl >= 1335 {
		t.Errorf("CXL safe RNA length = %d, want within [1135, 1335)", cxl)
	}
}

func TestAnchorsAccessor(t *testing.T) {
	a := Anchors()
	if len(a) != 4 {
		t.Fatalf("anchors = %d", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i].Len <= a[i-1].Len {
			t.Error("anchors not sorted")
		}
	}
	if a[0].Note == "" {
		t.Error("anchor provenance missing")
	}
}
