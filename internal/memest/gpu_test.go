package memest

import (
	"testing"

	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
)

func TestGPUCheckPaperBoundaries(t *testing.T) {
	desk, srv := platform.Desktop(), platform.Server()
	yy9, _ := inputs.ByName("1YY9")
	qnr, _ := inputs.ByName("6QNR")

	// Paper III-B: 1YY9 fits the RTX 4080, 6QNR needs unified memory.
	if got := GPUCheck(yy9, desk); got.Verdict != GPUFits {
		t.Errorf("1YY9 on RTX 4080 = %v, want FITS", got.Verdict)
	}
	if got := GPUCheck(qnr, desk); got.Verdict != GPUNeedsUnified {
		t.Errorf("6QNR on RTX 4080 = %v, want NEEDS-UNIFIED-MEMORY", got.Verdict)
	}
	if got := GPUCheck(qnr, srv); got.Verdict != GPUFits {
		t.Errorf("6QNR on H100 = %v, want FITS", got.Verdict)
	}
}

func TestGPUCheckFields(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	est := GPUCheck(in, platform.Desktop())
	if est.Tokens != 484 || est.Input != "2PV7" {
		t.Errorf("identity fields wrong: %+v", est)
	}
	if est.TotalBytes <= 0 || est.ActGiB <= 0 || est.WeightGiB <= 0 {
		t.Errorf("sizes not positive: %+v", est)
	}
	if est.Verdict.String() != "FITS" || GPUNeedsUnified.String() != "NEEDS-UNIFIED-MEMORY" {
		t.Error("verdict names wrong")
	}
}

func TestMaxResidentTokensBoundary(t *testing.T) {
	for _, mach := range []platform.Machine{platform.Desktop(), platform.Server()} {
		max := MaxResidentTokens(mach)
		if max <= 0 {
			t.Fatalf("%s: max tokens = %d", mach.Name, max)
		}
		fits := int64(max)*int64(max)*gpuActBytesPerPair + gpuWeightBytes
		if fits > mach.GPU.MemBytes {
			t.Errorf("%s: reported max does not fit", mach.Name)
		}
		over := int64(max+1) * int64(max+1) * gpuActBytesPerPair
		if over+gpuWeightBytes <= mach.GPU.MemBytes {
			t.Errorf("%s: max not maximal", mach.Name)
		}
	}
	// The boundary must separate 1YY9 (881) from 6QNR (1395) on the 4080.
	max := MaxResidentTokens(platform.Desktop())
	if max < 881 || max >= 1395 {
		t.Errorf("RTX 4080 resident boundary = %d, want within [881, 1395)", max)
	}
	if srv := MaxResidentTokens(platform.Server()); srv <= max {
		t.Error("H100 boundary must exceed the 4080's")
	}
}
