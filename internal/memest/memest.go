// Package memest implements the static memory estimator the paper proposes
// in Section VI ("Memory Estimation Based on Input Features") and the
// nhmmer RNA memory model behind Figure 2. AF3 itself performs no memory
// pre-check and dies with an OOM kill when an input's nhmmer stage exceeds
// system memory; this estimator predicts peak usage from input features
// (longest RNA chain, protein length, thread count) and issues a verdict
// before any compute is spent.
package memest

import (
	"fmt"
	"sort"

	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
)

// GiB is one gibibyte in bytes, as float for model arithmetic.
const GiB = float64(1 << 30)

// rnaAnchor is one calibration point of the nhmmer RNA peak-memory curve.
type rnaAnchor struct {
	Len  int
	GiB  float64
	Note string
}

// rnaAnchors are the paper's Section III-C measurements on RNA chains
// derived from the 7K00 ribosomal complex. The 1335 point is the projected
// value behind the reported OOM above 768 GiB.
var rnaAnchors = []rnaAnchor{
	{621, 79.3, "measured"},
	{935, 506, "measured"},
	{1135, 644, "measured, required CXL expansion"},
	{1335, 810, "projected (run OOM-killed above 768 GiB)"},
}

// RNAPeakBytes models nhmmer's peak resident memory for the longest RNA
// chain of an input. The curve interpolates the paper's measured anchors
// piecewise-linearly; below the first anchor it scales quadratically (the
// window-DP regime), and beyond the last it extrapolates the final slope.
// Peak RNA memory is independent of thread count (Section III-C).
func RNAPeakBytes(rnaLen int) int64 {
	if rnaLen <= 0 {
		return 0
	}
	first := rnaAnchors[0]
	if rnaLen <= first.Len {
		frac := float64(rnaLen) / float64(first.Len)
		return int64(first.GiB * frac * frac * GiB)
	}
	for i := 1; i < len(rnaAnchors); i++ {
		a, b := rnaAnchors[i-1], rnaAnchors[i]
		if rnaLen <= b.Len {
			t := float64(rnaLen-a.Len) / float64(b.Len-a.Len)
			return int64((a.GiB + t*(b.GiB-a.GiB)) * GiB)
		}
	}
	// Extrapolate the last segment's slope.
	a := rnaAnchors[len(rnaAnchors)-2]
	b := rnaAnchors[len(rnaAnchors)-1]
	slope := (b.GiB - a.GiB) / float64(b.Len-a.Len)
	return int64((b.GiB + slope*float64(rnaLen-b.Len)) * GiB)
}

// ProteinPeakBytes models jackhmmer's peak resident memory for the longest
// protein chain at the given thread count. The linear fit reproduces the
// paper's Section III-C numbers: a 1,000-residue chain needs ~0.23 GiB at
// 1 thread and ~0.9 GiB at 8; a 2,000-residue chain ~1.7 GiB at 8 threads.
// Memory scales with the longest chain and with thread count; accompanying
// chains are negligible.
func ProteinPeakBytes(protLen, threads int) int64 {
	if protLen <= 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	perThousand := 0.1343 + 0.0957*float64(threads) // GiB per 1000 residues
	return int64(float64(protLen) / 1000 * perThousand * GiB)
}

// Estimate is the static pre-check result for one input on one machine.
type Estimate struct {
	Input    string
	Machine  string
	Threads  int
	RNALen   int
	RNABytes int64
	// ProteinBytes is the jackhmmer peak for the longest protein chain.
	ProteinBytes int64
	// BaselineBytes covers the runtime, feature pipeline and page-cache
	// floor the process needs regardless of search memory.
	BaselineBytes int64
	// PeakBytes is the projected peak resident set.
	PeakBytes int64
	Verdict   Verdict
}

// Verdict classifies the projected peak against the machine's memory.
type Verdict int

const (
	// OK: fits in DRAM.
	OK Verdict = iota
	// NeedsExpansion: exceeds DRAM but fits with the CXL expander.
	NeedsExpansion
	// OOM: exceeds all available memory; the run would be killed.
	OOM
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case OK:
		return "OK"
	case NeedsExpansion:
		return "NEEDS-EXPANSION"
	case OOM:
		return "OOM"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

const baselineBytes = int64(8) << 30 // runtime + feature pipeline floor

// expanderBytes is the standard CXL expander capacity the estimator advises
// attaching when DRAM alone is short (the paper's server used a 256 GiB
// module).
const expanderBytes = int64(256) << 30

// Check projects the peak memory of running input's MSA stage on the
// machine with the given thread count, and classifies it.
func Check(in *inputs.Input, mach platform.Machine, threads int) Estimate {
	est := Estimate{
		Input:         in.Name,
		Machine:       mach.Name,
		Threads:       threads,
		RNALen:        in.MaxRNALength(),
		BaselineBytes: baselineBytes,
	}
	est.RNABytes = RNAPeakBytes(est.RNALen)
	est.ProteinBytes = ProteinPeakBytes(in.MaxProteinLength(), threads)
	// jackhmmer and nhmmer stages run sequentially; the peak is the larger
	// stage plus the process floor.
	stage := est.RNABytes
	if est.ProteinBytes > stage {
		stage = est.ProteinBytes
	}
	est.PeakBytes = baselineBytes + stage

	switch {
	case est.PeakBytes <= mach.TotalMemBytes():
		est.Verdict = OK
	case mach.CXLBytes == 0 && est.PeakBytes <= mach.DRAMBytes+expanderBytes:
		// Would fit if a standard expander were attached.
		est.Verdict = NeedsExpansion
	default:
		est.Verdict = OOM
	}
	return est
}

// MaxSafeRNALength returns the longest RNA chain the machine can process,
// by inverting the RNA model against available memory.
func MaxSafeRNALength(mach platform.Machine) int {
	budget := mach.TotalMemBytes() - baselineBytes
	// The model is monotonic; binary search the boundary.
	lo, hi := 0, 100000
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if RNAPeakBytes(mid) <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Anchors returns the calibration table (length, GiB, provenance) for
// reports; the slice is sorted by length and safe to modify.
func Anchors() []struct {
	Len  int
	GiB  float64
	Note string
} {
	out := make([]struct {
		Len  int
		GiB  float64
		Note string
	}, len(rnaAnchors))
	for i, a := range rnaAnchors {
		out[i] = struct {
			Len  int
			GiB  float64
			Note string
		}{a.Len, a.GiB, a.Note}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Len < out[j].Len })
	return out
}
