package core

import (
	"fmt"
	"sort"

	"afsysbench/internal/inputs"
	"afsysbench/internal/memest"
	"afsysbench/internal/platform"
	"afsysbench/internal/simgpu"
	"afsysbench/internal/stats"
)

// Thread sweeps used by the paper.
var (
	// MSAThreadSweep covers Figures 3–5.
	MSAThreadSweep = []int{1, 2, 4, 6, 8}
	// InferenceThreadSweep covers Figure 6.
	InferenceThreadSweep = []int{1, 2, 4, 6}
)

// MachineFor applies the paper's operational substitution: samples whose
// MSA stage cannot fit the stock desktop's 64 GiB (6QNR) run on the
// DRAM-upgraded desktop instead (Section III-B).
func MachineFor(in *inputs.Input, mach platform.Machine) platform.Machine {
	if mach.Name == "Desktop" && memest.Check(in, mach, 8).Verdict != memest.OK {
		return platform.DesktopUpgraded()
	}
	return mach
}

// TwoPlatforms returns the paper's Server and Desktop machines.
func TwoPlatforms() []platform.Machine {
	return []platform.Machine{platform.Server(), platform.Desktop()}
}

// SampleNames returns the Table II sample names in paper order.
func SampleNames() []string {
	names := make([]string, 0, 5)
	for _, in := range inputs.Samples() {
		names = append(names, in.Name)
	}
	return names
}

// PhaseRow is one bar of Figure 3: mean phase times with CV over repeats.
type PhaseRow struct {
	Sample           string
	Machine          string
	Threads          int
	MSASeconds       float64
	InferenceSeconds float64
	MSACV            float64
	InferenceCV      float64
}

// Total returns the stacked bar height.
func (r PhaseRow) Total() float64 { return r.MSASeconds + r.InferenceSeconds }

// Figure3 produces the stacked MSA+inference execution times across the
// sample × machine × thread matrix, averaged over s.Runs repetitions.
func (s *Suite) Figure3(sampleNames []string, machines []platform.Machine, threads []int) ([]PhaseRow, error) {
	var rows []PhaseRow
	for _, name := range sampleNames {
		in, err := inputs.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, mach := range machines {
			for _, t := range threads {
				var msaTimes, infTimes []float64
				for run := 0; run < s.Runs; run++ {
					pr, err := s.RunPipeline(in, MachineFor(in, mach), PipelineOptions{Threads: t, RunIndex: run})
					if err != nil {
						return nil, fmt.Errorf("core: %s on %s at %dT: %w", name, mach.Name, t, err)
					}
					msaTimes = append(msaTimes, pr.MSASeconds)
					infTimes = append(infTimes, pr.Inference.Total())
				}
				rows = append(rows, PhaseRow{
					Sample:           name,
					Machine:          mach.Name,
					Threads:          t,
					MSASeconds:       stats.Mean(msaTimes),
					InferenceSeconds: stats.Mean(infTimes),
					MSACV:            stats.CV(msaTimes),
					InferenceCV:      stats.CV(infTimes),
				})
			}
		}
	}
	return rows, nil
}

// MemRow is one point of Figure 2: projected nhmmer peak memory per RNA
// length, with the verdict on the CXL-equipped server.
type MemRow struct {
	RNALen    int
	PeakGiB   float64
	VerdictOn map[string]string // machine name -> verdict
	Note      string
}

// Figure2 produces the RNA-length memory sweep. The DRAM and DRAM+CXL
// capacities of the server platform are the figure's horizontal lines.
func Figure2() []MemRow {
	machines := []platform.Machine{platform.Server(), platform.ServerWithCXL()}
	var rows []MemRow
	anchors := memest.Anchors()
	for i, in := range inputs.RNASweep() {
		est := memest.Check(in, machines[0], 8)
		row := MemRow{
			RNALen:    in.MaxRNALength(),
			PeakGiB:   float64(est.RNABytes) / (1 << 30),
			VerdictOn: make(map[string]string),
		}
		if i < len(anchors) {
			row.Note = anchors[i].Note
		}
		for _, m := range machines {
			row.VerdictOn[m.Name] = memest.Check(in, m, 8).Verdict.String()
		}
		rows = append(rows, row)
	}
	return rows
}

// ScalingRow is one point of Figures 4–5: MSA time and speedup vs threads.
type ScalingRow struct {
	Sample  string
	Machine string
	Threads int
	Seconds float64
	Speedup float64
}

// Figure4 produces per-sample MSA scaling curves on both platforms.
func (s *Suite) Figure4(sampleNames []string, machines []platform.Machine) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, name := range sampleNames {
		in, err := inputs.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, mach := range machines {
			base := 0.0
			for _, t := range MSAThreadSweep {
				pr, err := s.RunPipeline(in, MachineFor(in, mach), PipelineOptions{Threads: t})
				if err != nil {
					return nil, err
				}
				if t == 1 {
					base = pr.MSASeconds
				}
				speedup := 0.0
				if pr.MSASeconds > 0 {
					speedup = base / pr.MSASeconds
				}
				rows = append(rows, ScalingRow{
					Sample: name, Machine: mach.Name, Threads: t,
					Seconds: pr.MSASeconds, Speedup: speedup,
				})
			}
		}
	}
	return rows, nil
}

// Figure5 is the 6QNR deep-dive: thread-level MSA time and speedup on the
// server (the paper's most compute-intensive sample).
func (s *Suite) Figure5() ([]ScalingRow, error) {
	return s.Figure4([]string{"6QNR"}, []platform.Machine{platform.Server()})
}

// InferenceRow is one point of Figure 6.
type InferenceRow struct {
	Sample  string
	Machine string
	Threads int
	Seconds float64
}

// Figure6 produces inference time vs CPU threads (flat-to-degrading).
func (s *Suite) Figure6(sampleNames []string, machines []platform.Machine) ([]InferenceRow, error) {
	var rows []InferenceRow
	for _, name := range sampleNames {
		in, err := inputs.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, mach := range machines {
			for _, t := range InferenceThreadSweep {
				pr, err := s.RunPipeline(in, MachineFor(in, mach), PipelineOptions{Threads: t})
				if err != nil {
					return nil, err
				}
				rows = append(rows, InferenceRow{
					Sample: name, Machine: mach.Name, Threads: t,
					Seconds: pr.Inference.Total(),
				})
			}
		}
	}
	return rows, nil
}

// ShareRow is one bar of Figure 7: phase shares at each platform's optimal
// thread setting.
type ShareRow struct {
	Sample         string
	Machine        string
	OptimalThreads int
	MSAPct         float64
	InferencePct   float64
}

// OptimalThreads sweeps the paper's thread counts and returns the setting
// minimizing end-to-end time for the sample on the machine, with the run at
// that setting — the adaptive allocation Observation 3 recommends over
// AF3's fixed default of 8.
func (s *Suite) OptimalThreads(in *inputs.Input, mach platform.Machine) (*PipelineResult, error) {
	var best *PipelineResult
	for _, t := range MSAThreadSweep {
		pr, err := s.RunPipeline(in, MachineFor(in, mach), PipelineOptions{Threads: t})
		if err != nil {
			return nil, err
		}
		if best == nil || pr.TotalSeconds() < best.TotalSeconds() {
			best = pr
		}
	}
	return best, nil
}

// RecommendThreads predicts a good MSA thread setting from input features
// alone — the "adaptive thread allocation based on input complexity and
// hardware configuration" the paper recommends over AF3's fixed default
// (Observation 3). The rules encode the paper's findings: small inputs stop
// benefiting around 4–6 threads; repeat-heavy and RNA-bearing inputs hit
// the memory-contention wall earlier; everything else can use more workers.
func RecommendThreads(in *inputs.Input, mach platform.Machine) int {
	rec := 8
	switch {
	case in.TotalResidues() < 400:
		rec = 6 // small inputs saturate early
	case in.MaxLowComplexity() > 0.15:
		rec = 6 // repeat-driven candidate floods contend on the LLC
	case in.HasRNA():
		rec = 6 // nhmmer stages are reader-bound sooner
	}
	if rec > mach.CPU.Cores {
		rec = mach.CPU.Cores
	}
	return rec
}

// Figure7 finds, per sample and machine, the thread count minimizing total
// time, then reports the phase split there.
func (s *Suite) Figure7(sampleNames []string, machines []platform.Machine) ([]ShareRow, error) {
	var rows []ShareRow
	for _, name := range sampleNames {
		in, err := inputs.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, mach := range machines {
			best, err := s.OptimalThreads(in, mach)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ShareRow{
				Sample:         name,
				Machine:        mach.Name,
				OptimalThreads: best.Threads,
				MSAPct:         100 * best.MSAFraction(),
				InferencePct:   100 * (1 - best.MSAFraction()),
			})
		}
	}
	return rows, nil
}

// BreakdownRow is one stacked bar of Figure 8.
type BreakdownRow struct {
	Sample   string
	Machine  string
	Init     float64
	Compile  float64
	Compute  float64
	Finalize float64
	Spilled  bool
}

// Total returns the bar height.
func (r BreakdownRow) Total() float64 { return r.Init + r.Compile + r.Compute + r.Finalize }

// OverheadPct returns the non-compute share.
func (r BreakdownRow) OverheadPct() float64 {
	t := r.Total()
	if t == 0 {
		return 0
	}
	return 100 * (t - r.Compute) / t
}

// Figure8 produces the Nsight-style inference phase breakdown.
func (s *Suite) Figure8(sampleNames []string, machines []platform.Machine) ([]BreakdownRow, error) {
	var rows []BreakdownRow
	for _, name := range sampleNames {
		in, err := inputs.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, mach := range machines {
			pr, err := s.RunPipeline(in, MachineFor(in, mach), PipelineOptions{Threads: 1})
			if err != nil {
				return nil, err
			}
			rows = append(rows, BreakdownRow{
				Sample:   name,
				Machine:  mach.Name,
				Init:     pr.Inference.InitSeconds,
				Compile:  pr.Inference.CompileSeconds,
				Compute:  pr.Inference.ComputeSeconds,
				Finalize: pr.Inference.FinalizeSeconds,
				Spilled:  pr.Inference.Spilled,
			})
		}
	}
	return rows, nil
}

// LayerRow is one slice of Figure 9 / one row of Table VI.
type LayerRow struct {
	Sample   string
	Module   string
	Layer    string
	Seconds  float64
	SharePct float64 // share of the whole (Pairformer + Diffusion) time
}

// LayerBreakdown produces the per-layer execution split for the given
// samples on the reference platform (the paper profiles with the JAX
// profiler on the server).
func (s *Suite) LayerBreakdown(sampleNames []string, mach platform.Machine) ([]LayerRow, error) {
	var rows []LayerRow
	for _, name := range sampleNames {
		in, err := inputs.ByName(name)
		if err != nil {
			return nil, err
		}
		n := in.TotalResidues()
		spill := s.Model.MemoryFootprintBytes(n) > mach.GPU.MemBytes
		layers := s.Model.LayerTimes(mach, n, spill)
		var total float64
		for _, l := range layers {
			total += l.Seconds
		}
		for _, l := range layers {
			rows = append(rows, LayerRow{
				Sample:   name,
				Module:   l.Module,
				Layer:    l.Layer,
				Seconds:  l.Seconds,
				SharePct: 100 * l.Seconds / total,
			})
		}
	}
	return rows, nil
}

// Figure9 returns the layer pie for 2PV7 and promo.
func (s *Suite) Figure9() ([]LayerRow, error) {
	return s.LayerBreakdown([]string{"2PV7", "promo"}, platform.Server())
}

// Table6 mirrors Figure9 but includes module subtotals, matching the
// paper's Table VI layout.
type Table6Row struct {
	Label          string
	Per2PV7Seconds float64
	PromoSeconds   float64
	IsModuleTotal  bool
}

// Table6 produces the layer-wise execution table for 2PV7 vs promo.
func (s *Suite) Table6() ([]Table6Row, error) {
	layers, err := s.Figure9()
	if err != nil {
		return nil, err
	}
	bySample := map[string]map[string]float64{}
	moduleTotal := map[string]map[string]float64{}
	for _, l := range layers {
		if bySample[l.Sample] == nil {
			bySample[l.Sample] = map[string]float64{}
			moduleTotal[l.Sample] = map[string]float64{}
		}
		bySample[l.Sample][l.Module+"/"+l.Layer] = l.Seconds
		moduleTotal[l.Sample][l.Module] += l.Seconds
	}
	mk := func(label, key string, module bool) Table6Row {
		src := bySample
		if module {
			src = moduleTotal
		}
		return Table6Row{
			Label:          label,
			Per2PV7Seconds: src["2PV7"][key],
			PromoSeconds:   src["promo"][key],
			IsModuleTotal:  module,
		}
	}
	return []Table6Row{
		mk("Pairformer", "Pairformer", true),
		mk("  triangle mult. update", "Pairformer/triangle mult. update", false),
		mk("  triangle attention", "Pairformer/triangle attention", false),
		mk("  pair transition", "Pairformer/pair transition", false),
		mk("  single update", "Pairformer/single update", false),
		mk("Diffusion", "Diffusion", true),
		mk("  local attn. (encoder)", "Diffusion/local attn. (encoder)", false),
		mk("  local attn. (decoder)", "Diffusion/local attn. (decoder)", false),
		mk("  global attention", "Diffusion/global attention", false),
		mk("  coordinate update", "Diffusion/coordinate update", false),
	}, nil
}

// Table3Cell is one (input, machine, threads) cell of Table III.
type Table3Cell struct {
	Sample    string
	Machine   string
	Threads   int
	IPC       float64
	CacheMPKI float64
	L1Pct     float64
	LLCPct    float64
	DTLBPct   float64
	BranchPct float64
}

// Table3 produces the CPU performance metric comparison for the given
// samples across both CPUs at 1, 4 and 6 threads.
func (s *Suite) Table3(sampleNames []string) ([]Table3Cell, error) {
	var cells []Table3Cell
	for _, name := range sampleNames {
		in, err := inputs.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, mach := range TwoPlatforms() {
			for _, t := range []int{1, 4, 6} {
				pr, err := s.RunPipeline(in, MachineFor(in, mach), PipelineOptions{Threads: t})
				if err != nil {
					return nil, err
				}
				a := pr.MSACPU.Aggregate
				cells = append(cells, Table3Cell{
					Sample: name, Machine: mach.Name, Threads: t,
					IPC:       a.IPC(),
					CacheMPKI: a.CacheMissMPKI(),
					L1Pct:     a.L1MissPct(),
					LLCPct:    a.LLCMissPct(),
					DTLBPct:   a.DTLBMissPct(),
					BranchPct: a.BranchMissPct(),
				})
			}
		}
	}
	return cells, nil
}

// Table4Row is one function's profile share (Table IV).
type Table4Row struct {
	Metric   string // "cycles" or "cache-misses"
	Function string
	// SharePct maps "sample/threads" (e.g. "2PV7/1T") to the share.
	SharePct map[string]float64
}

// Table4 produces function-level cycle and cache-miss shares on the server
// for the given samples at 1 and 4 threads.
func (s *Suite) Table4(sampleNames []string) ([]Table4Row, error) {
	type key struct{ metric, fn string }
	shares := map[key]map[string]float64{}
	record := func(metric, fn, col string, v float64) {
		k := key{metric, fn}
		if shares[k] == nil {
			shares[k] = map[string]float64{}
		}
		shares[k][col] = v
	}
	for _, name := range sampleNames {
		in, err := inputs.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, t := range []int{1, 4} {
			pr, err := s.RunPipeline(in, platform.Server(), PipelineOptions{Threads: t})
			if err != nil {
				return nil, err
			}
			col := fmt.Sprintf("%s/%dT", name, t)
			var totCycles, totMiss float64
			for _, c := range pr.MSACPU.PerFunc {
				totCycles += float64(c.Cycles)
				totMiss += float64(c.LLCMisses)
			}
			for fn, c := range pr.MSACPU.PerFunc {
				if totCycles > 0 {
					record("cycles", fn, col, 100*float64(c.Cycles)/totCycles)
				}
				if totMiss > 0 {
					record("cache-misses", fn, col, 100*float64(c.LLCMisses)/totMiss)
				}
			}
		}
	}
	var rows []Table4Row
	for k, cols := range shares {
		rows = append(rows, Table4Row{Metric: k.metric, Function: k.fn, SharePct: cols})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Metric != rows[j].Metric {
			return rows[i].Metric < rows[j].Metric
		}
		var si, sj float64
		for _, v := range rows[i].SharePct {
			si += v
		}
		for _, v := range rows[j].SharePct {
			sj += v
		}
		if si != sj {
			return si > sj
		}
		return rows[i].Function < rows[j].Function
	})
	return rows, nil
}

// Table5Row is one inference host-side bottleneck (Table V).
type Table5Row struct {
	EventType   string
	Symbol      string
	Sample      string
	OverheadPct float64
}

// Table5 profiles the inference initialization/compilation phase on the
// server: the share each hot symbol takes of its event type's total.
func (s *Suite) Table5(sampleNames []string) ([]Table5Row, error) {
	var rows []Table5Row
	for _, name := range sampleNames {
		in, err := inputs.ByName(name)
		if err != nil {
			return nil, err
		}
		host, err := s.CompileSim(platform.Server(), in.TotalResidues())
		if err != nil {
			return nil, err
		}
		var totFaults, totTLBWork, totLLC float64
		type proxy struct{ faults, tlbWork, llc float64 }
		byFn := map[string]proxy{}
		for fn, c := range host.Sim.PerFunc {
			p := proxy{
				faults:  float64(c.PageFaults),
				tlbWork: float64(c.TLBMisses),
				llc:     float64(c.LLCMisses),
			}
			byFn[fn] = p
			totFaults += p.faults
			totTLBWork += p.tlbWork
			totLLC += p.llc
		}
		add := func(event, sym string, val, tot float64) {
			pct := 0.0
			if tot > 0 {
				pct = 100 * val / tot
			}
			rows = append(rows, Table5Row{EventType: event, Symbol: sym, Sample: name, OverheadPct: pct})
		}
		add("Page Faults", "std::vector::_M_fill_insert", byFn["std::vector::_M_fill_insert"].faults, totFaults)
		add("dTLB Load Misses", "xla::ShapeUtil::ByteSizeOf", byFn["xla::ShapeUtil::ByteSizeOf"].tlbWork, totTLBWork)
		add("LLC Load Misses", "copy_to_iter", byFn["copy_to_iter"].llc, totLLC)
	}
	return rows, nil
}

// Inference runtime model helper for examples and the warm-server bench.
func (s *Suite) InferenceOnly(in *inputs.Input, mach platform.Machine, warm bool) (simgpu.PhaseBreakdown, error) {
	host, err := s.CompileSim(mach, in.TotalResidues())
	if err != nil {
		return simgpu.PhaseBreakdown{}, err
	}
	return simgpu.Inference(mach, s.Model, in.TotalResidues(), simgpu.InferenceOptions{
		Threads:        1,
		WarmStart:      warm,
		CompileSeconds: host.CompileSeconds,
	})
}
