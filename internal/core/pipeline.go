package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"afsysbench/internal/inputs"
	"afsysbench/internal/memest"
	"afsysbench/internal/msa"
	"afsysbench/internal/parallel"
	"afsysbench/internal/platform"
	"afsysbench/internal/resilience"
	"afsysbench/internal/rng"
	"afsysbench/internal/seqdb"
	"afsysbench/internal/simgpu"
	"afsysbench/internal/simhw"
	"afsysbench/internal/simio"
)

// PipelineOptions configure one end-to-end run.
type PipelineOptions struct {
	// Threads is the worker count for both parallel stages: the MSA scan
	// shards every database across Threads workers, and the real compute
	// kernels (pairformer.Stack, diffusion sampling) run on the worker
	// pool ComputePool returns for the same setting.
	Threads int
	// RunIndex selects the jitter draw for repeat runs.
	RunIndex int
	// WarmStart skips GPU init/XLA compile (persistent model server,
	// Section VI).
	WarmStart bool
	// RecompileShape charges the XLA compile on a warm start whose graph
	// shape (token count, or shape bucket — see internal/batch) has not
	// been compiled in this process: the model stays resident, but a new
	// shape still pays the compiler. Ignored when WarmStart is false —
	// cold starts always compile.
	RecompileShape bool
	// PreloadDBs explicitly loads the run's databases into the page cache
	// before the MSA phase (Section VI storage optimization).
	PreloadDBs bool
	// Storage carries page-cache state across runs (warm caches); nil
	// builds a fresh cold-cache system.
	Storage *simio.System
	// SkipMemCheck disables the Section VI estimator gate, reproducing
	// stock AF3's behavior of running into the OOM killer.
	SkipMemCheck bool
	// Budget caps modeled per-stage time. MSA exhaustion triggers the
	// degradation ladder; inference exhaustion returns ErrStageTimeout.
	Budget resilience.StageBudget
	// Faults is the injected fault specification for this run (see
	// resilience.ParseFaults). Empty injects nothing.
	Faults resilience.Faults
	// Retry tunes transient-fault handling; the zero value means the
	// standard capped-exponential policy.
	Retry resilience.RetryPolicy
	// FreshMSA forces the MSA search to recompute instead of consulting the
	// suite's per-profile memo. The serving layer sets it so that
	// internal/cache is the only reuse path between requests — a
	// cache-disabled server really pays the search per request, and a
	// cache-enabled one attributes every skipped search to its own
	// hit counters.
	FreshMSA bool
	// Injector overrides the fault injector built from Faults. The serving
	// layer passes one injector per job so that transient budgets persist
	// across MSA stage retries — a fault consumed by attempt 1 stays
	// consumed, which is what lets a checkpointed retry succeed.
	Injector *resilience.Injector
	// SkipDBs names databases to drop at open time without probing — the
	// serving layer's circuit breakers feed it so a shard known to be dark
	// is skipped instead of re-probed on every request. Each skip is
	// recorded as a KindBreakerSkip degradation event.
	SkipDBs map[string]bool
	// MSACheckpoint preserves completed per-chain search deltas across
	// retries of the MSA phase (scoped by database-profile signature); a
	// retried phase re-runs only the chains that had not finished.
	MSACheckpoint *msa.Checkpoint
	// ChainDone observes every really-searched chain's wall time — the
	// serving layer's hedge-budget estimator feeds on it.
	ChainDone func(chainID string, wall time.Duration)
	// HedgeAfter launches a backup attempt for an MSA chain still running
	// after this wall-clock delay (0 disables). Latency-only: results are
	// identical with or without hedging.
	HedgeAfter time.Duration
	// ChainCache is the serving layer's cross-request per-chain MSA cache
	// hook, threaded down to msa.Options.ChainCache. The scope it receives
	// is the database-profile signature of the plan being run, so a chain
	// searched under a degraded profile never serves the full one.
	ChainCache msa.ChainFetch
	// Scatter is the cluster layer's scatter-gather scan hook, threaded
	// down to msa.Options.Scatter: each database scan is dispatched to
	// simulated shard nodes instead of the in-process thread fan-out. The
	// hook's determinism contract (results bitwise-identical to the local
	// scan) keeps everything downstream — features, metering replay,
	// cache keys — independent of the shard count.
	Scatter msa.ScatterFunc
}

// PipelineResult is the end-to-end outcome for one sample on one machine.
type PipelineResult struct {
	Sample  string
	Machine string
	Threads int

	// MSA phase.
	MSASeconds     float64 // wall time (CPU and disk pipelined)
	MSACPUSeconds  float64
	MSADiskSeconds float64
	DiskUtilPct    float64
	DiskStats      simio.Stats
	MSACPU         simhw.Result
	MSAData        *msa.Result

	// Inference phase.
	Inference simgpu.PhaseBreakdown

	// Memory estimate (Section VI pre-check).
	Memory memest.Estimate

	// Resilience is the retry/degradation accounting: every backoff wait,
	// dropped database and ladder rung taken to finish the run.
	Resilience resilience.Report
}

// TotalSeconds returns end-to-end wall time.
func (p *PipelineResult) TotalSeconds() float64 {
	return p.MSASeconds + p.Inference.Total()
}

// MSAFraction returns the MSA share of the end-to-end time (Figure 7).
func (p *PipelineResult) MSAFraction() float64 {
	t := p.TotalSeconds()
	if t == 0 {
		return 0
	}
	return p.MSASeconds / t
}

// ErrProjectedOOM is returned when the memory estimator predicts the run
// cannot fit the machine (the failure the paper hit at RNA length 1335).
type ErrProjectedOOM struct {
	Estimate memest.Estimate
}

// Error implements error.
func (e ErrProjectedOOM) Error() string {
	return fmt.Sprintf("core: %s on %s projected to need %.0f GiB (verdict %s)",
		e.Estimate.Input, e.Estimate.Machine,
		float64(e.Estimate.PeakBytes)/(1<<30), e.Estimate.Verdict)
}

// ComputePool returns the shared worker pool for this run's thread
// setting — the compute-engine side of the Threads knob. Anything that
// executes the real kernels (pairformer.Stack, diffusion sampling) on
// behalf of a pipeline run should use this pool so MSA scanning and
// inference compute are governed by the same option. Pools are cached per
// worker count and shared across runs; results are bitwise identical at
// any worker count.
func (o PipelineOptions) ComputePool() *parallel.Pool {
	if o.Threads <= 0 {
		return parallel.Default()
	}
	return parallel.ForWorkers(o.Threads)
}

// RunPipeline executes the full AF3 pipeline for one sample on one machine
// at one thread count, returning phase times and counters.
func (s *Suite) RunPipeline(in *inputs.Input, mach platform.Machine, opts PipelineOptions) (*PipelineResult, error) {
	return s.RunPipelineCtx(context.Background(), in, mach, opts)
}

// RunPipelineCtx is RunPipeline with cancellation and fault tolerance. The
// context is the wall-clock deadline: it is observed between stages and
// deep inside the MSA scan, and an expiry surfaces as ErrStageTimeout
// wrapping the context error. Injected faults (opts.Faults) are absorbed
// where possible: transient read failures retry under opts.Retry with
// deterministic jittered backoff, and a database that stays dark — or an
// MSA plan that cannot fit opts.Budget — degrades the run down the ladder
// (drop the database, then single-sequence inference) instead of failing
// it. Everything taken is recorded in the result's Resilience report.
//
// The run is the composition of the two phase entry points — RunMSAPhase
// and RunInferencePhase — which the serving subsystem (internal/serve)
// also calls individually to run the phases on separate worker pools.
func (s *Suite) RunPipelineCtx(ctx context.Context, in *inputs.Input, mach platform.Machine, opts PipelineOptions) (*PipelineResult, error) {
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	mp, err := s.RunMSAPhase(ctx, in, mach, opts)
	if err != nil {
		return nil, err
	}
	pb, err := s.RunInferencePhase(ctx, in, mach, opts)
	if err != nil {
		return nil, err
	}
	return ComposeResult(in, mach, opts.Threads, mp, pb), nil
}

// MSAPhase is the outcome of the pipeline's first phase in isolation: the
// search result and features, the modeled phase times, the storage counters
// and the resilience accounting accrued while planning the stage. The
// serving subsystem runs the two phases on separate worker pools and keeps
// this value in its content-addressed cache; RunPipelineCtx composes the
// phases back into the classic single-run result.
type MSAPhase struct {
	// Memory is the Section VI pre-check verdict for the run.
	Memory memest.Estimate
	// Data is the search outcome: alignments, features, streamed bytes.
	Data *msa.Result
	// CPU is the machine-model replay of the scan (Table IV counters).
	CPU simhw.Result
	// CPUSeconds, DiskSeconds and Seconds are the modeled phase times:
	// compute, disk busy, and the pipelined wall time that bounds them.
	CPUSeconds  float64
	DiskSeconds float64
	Seconds     float64
	DiskUtilPct float64
	DiskStats   simio.Stats
	// Resilience is the retry/degradation accounting of the phase.
	Resilience resilience.Report
}

// SizeBytes models the retained footprint of the phase output — the dense
// feature tensor dominates, plus a fixed overhead for alignment metadata.
// The serving cache charges entries at this size.
func (p *MSAPhase) SizeBytes() int64 {
	const overhead = 64 << 10
	if p == nil || p.Data == nil || p.Data.Features == nil {
		return overhead
	}
	return p.Data.Features.Bytes() + overhead
}

// RunMSAPhase executes only the MSA phase for one sample on one machine:
// the Section VI memory gate, database opening under the retry policy, and
// the degradation-ladder planning loop. The returned value is immutable
// once computed and safe to share between requests (the serving cache
// hands one *MSAPhase to every hit).
func (s *Suite) RunMSAPhase(ctx context.Context, in *inputs.Input, mach platform.Machine, opts PipelineOptions) (*MSAPhase, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	mp := &MSAPhase{}

	// Section VI static pre-check.
	mp.Memory = memVerdict(in, mach, opts.Threads)
	if mp.Memory.Verdict == memest.OOM && !opts.SkipMemCheck {
		return nil, ErrProjectedOOM{Estimate: mp.Memory}
	}

	pol := opts.Retry.WithDefaults()
	inj := opts.Injector
	if inj == nil {
		inj = resilience.NewInjector(opts.Faults, s.resilienceSource(in.Name, opts.RunIndex))
	}

	storage := opts.Storage
	if storage == nil {
		storage = newStorage(in, mach, opts.Threads)
	}
	if inj != nil {
		storage.SetFaultFunc(func(name string, attempt int, _ int64) error {
			return inj.ReadFault(name, attempt)
		})
		defer storage.SetFaultFunc(nil)
	}

	// Open the databases under the retry policy, then plan the stage down
	// the degradation ladder until it fits.
	needed := s.neededDBs(in)
	active := s.openDatabases(needed, opts.SkipDBs, inj, pol, &mp.Resilience)
	if err := s.runMSAStage(ctx, in, mach, opts, storage, active, needed, inj, pol, mp); err != nil {
		return nil, err
	}
	return mp, nil
}

// RunInferencePhase executes only the inference phase: XLA compile replay
// on the host model, the roofline-priced GPU run, and the inference budget
// gate. It is independent of the MSA phase output — AF3 inference consumes
// the features, but the timing model depends only on token count — which
// is what lets the serving scheduler start it the moment a cached MSA
// phase is fetched.
func (s *Suite) RunInferencePhase(ctx context.Context, in *inputs.Input, mach platform.Machine, opts PipelineOptions) (simgpu.PhaseBreakdown, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	if err := ctx.Err(); err != nil {
		return simgpu.PhaseBreakdown{}, resilience.ErrStageTimeout{Stage: "inference", Cause: err}
	}
	host, err := s.CompileSim(mach, in.TotalResidues())
	if err != nil {
		return simgpu.PhaseBreakdown{}, err
	}
	pb, err := simgpu.Inference(mach, s.Model, in.TotalResidues(), simgpu.InferenceOptions{
		Threads:        opts.Threads,
		WarmStart:      opts.WarmStart,
		Recompile:      opts.RecompileShape,
		CompileSeconds: host.CompileSeconds,
	})
	if err != nil {
		return simgpu.PhaseBreakdown{}, err
	}
	j := s.jitter(in.Name+"/inf", opts.RunIndex, 0.003)
	pb.ComputeSeconds *= j
	if b := opts.Budget.InferenceSeconds; b > 0 && pb.Total() > b {
		return simgpu.PhaseBreakdown{}, resilience.ErrStageTimeout{
			Stage:         "inference",
			BudgetSeconds: b,
			NeedSeconds:   pb.Total(),
		}
	}
	return pb, nil
}

// ComposeResult assembles the classic end-to-end result from the two phase
// outcomes. threads is the request's worker-count setting (recorded, not
// re-derived, so a cached MSA phase composed with a fresh inference keeps
// the submitting request's setting).
func ComposeResult(in *inputs.Input, mach platform.Machine, threads int, mp *MSAPhase, pb simgpu.PhaseBreakdown) *PipelineResult {
	return &PipelineResult{
		Sample:         in.Name,
		Machine:        mach.Name,
		Threads:        threads,
		MSASeconds:     mp.Seconds,
		MSACPUSeconds:  mp.CPUSeconds,
		MSADiskSeconds: mp.DiskSeconds,
		DiskUtilPct:    mp.DiskUtilPct,
		DiskStats:      mp.DiskStats,
		MSACPU:         mp.CPU,
		MSAData:        mp.Data,
		Inference:      pb,
		Memory:         mp.Memory,
		Resilience:     mp.Resilience,
	}
}

// runMSAStage plans and commits the MSA phase. Each ladder iteration costs
// one candidate database profile — real searches (cached per profile),
// the machine-model replay, and a streaming trial on a page-cache clone —
// and either accepts it or sheds a database and re-plans. Rejected plans
// leave the live storage untouched; the accepted plan is replayed on it.
func (s *Suite) runMSAStage(ctx context.Context, in *inputs.Input, mach platform.Machine, opts PipelineOptions, storage *simio.System, active []*seqdb.DB, needed map[string]bool, inj *resilience.Injector, pol resilience.RetryPolicy, mp *MSAPhase) error {
	rep := &mp.Resilience
	if opts.PreloadDBs {
		s.preload(storage, active)
	}
	for {
		if err := ctx.Err(); err != nil {
			return resilience.ErrStageTimeout{Stage: "msa", Cause: err}
		}
		// Chain faults and checkpoints make the search attempt-dependent:
		// the memo must not absorb (or replay around) either.
		fresh := opts.FreshMSA || opts.MSACheckpoint != nil || inj.HasChainFaults() || opts.ChainCache != nil || opts.Scatter != nil
		msaRes, err := s.msaResultFor(ctx, in, opts.Threads, s.reducedDBSet(active), s.dbSignature(active), fresh, msaExtras{
			checkpoint: opts.MSACheckpoint,
			chainFault: inj.ChainFault,
			chainDone:  opts.ChainDone,
			hedgeAfter: opts.HedgeAfter,
			chainCache: opts.ChainCache,
			scatter:    opts.Scatter,
		})
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return resilience.ErrStageTimeout{Stage: "msa", Cause: ctxErr}
			}
			return err
		}
		cpuSim := simhw.Simulate(msa.BuildRunSpec(mach, msaRes))
		cpu := cpuSim.Seconds * s.jitter(in.Name, opts.RunIndex, 0.02)
		stall := inj.StallSeconds()

		// Cost the candidate on a clone so a rejected plan cannot disturb
		// the live page cache; trial-side events are discarded (the accepted
		// plan's replay records them once, identically).
		scratch := &resilience.Report{}
		disk, ceiling, err := s.streamDatabases(ctx, storage.Clone(), msaRes, active, mach, inj, pol, scratch)
		if err != nil {
			return err
		}
		if ceiling {
			rep.Degraded = true
			rep.Record(resilience.Event{
				Stage: "stream", Kind: resilience.KindMemCeiling,
				Detail: fmt.Sprintf("anonymous-memory spike would breach the machine's %d GiB; abandoning the deep MSA", mach.TotalMemBytes()>>30),
			})
			active = dropNeeded(active, needed, rep)
			continue
		}
		wall := cpu + stall
		if disk > wall {
			wall = disk
		}
		wall += rep.RetrySeconds
		if b := opts.Budget.MSASeconds; b > 0 && wall > b {
			if victim := largestStreamed(active, needed, msaRes); victim != "" {
				active = removeDB(active, victim)
				rep.DroppedDBs = append(rep.DroppedDBs, victim)
				rep.Degraded = true
				rep.Record(resilience.Event{
					Stage: "msa", Kind: resilience.KindBudgetDrop, DB: victim,
					Detail: fmt.Sprintf("plan needs %.0fs against a %.0fs budget; shedding the largest stream", wall, b),
				})
				continue
			}
			rep.Record(resilience.Event{
				Stage: "msa", Kind: resilience.KindBudgetOverrun, Seconds: wall - b,
				Detail: fmt.Sprintf("single-sequence floor still needs %.0fs against a %.0fs budget", wall, b),
			})
		}

		// Accept: commit the plan to the live storage.
		if stall > 0 {
			rep.Record(resilience.Event{
				Stage: "msa", Kind: resilience.KindStall, Seconds: stall,
				Detail: "worker shard stalled; scan critical path extended",
			})
		}
		disk, _, err = s.streamDatabases(ctx, storage, msaRes, active, mach, inj, pol, rep)
		if err != nil {
			return err
		}
		if len(needed) > 0 && countNeeded(active, needed) == 0 {
			rep.SingleSequence = true
			rep.Degraded = true
			rep.Record(resilience.Event{
				Stage: "msa", Kind: resilience.KindSingleSequence,
				Detail: "no databases available; inference proceeds on single-sequence features",
			})
		}
		mp.Data = msaRes
		mp.CPU = cpuSim
		mp.CPUSeconds = cpu
		mp.DiskSeconds = disk
		// The scan pipeline overlaps compute with NVMe streaming; whichever
		// side is slower bounds the phase (Section V-B2c: the desktop's disk
		// runs at 100% utilization without degrading the pipeline). Backoff
		// waits overlap neither and are charged on top.
		mp.Seconds = cpu + stall
		if disk > mp.Seconds {
			mp.Seconds = disk
		}
		mp.Seconds += rep.RetrySeconds
		mp.DiskUtilPct = simio.UtilizationPct(disk, mp.Seconds)
		mp.DiskStats = storage.Stats()
		return nil
	}
}

// NeededDBs returns the names of the databases the input's chains search —
// the serving layer consults it to feed per-database circuit breakers
// (a request that finished without dropping a needed database counts as a
// success for each one it searched).
func (s *Suite) NeededDBs(in *inputs.Input) map[string]bool {
	return s.neededDBs(in)
}

// neededDBs returns the names of the databases the input's chains search.
func (s *Suite) neededDBs(in *inputs.Input) map[string]bool {
	needed := make(map[string]bool)
	for _, c := range in.MSAChains() {
		for _, db := range s.DBs.For(c.Sequence.Type) {
			needed[db.Name] = true
		}
	}
	return needed
}

// openDatabases probes every database the input needs under the retry
// policy, consuming injected faults at open time so each database is either
// fully available to the scan or dropped before it starts. Databases the
// input never searches pass through unprobed; databases in skip (the
// serving layer's open circuit breakers) are dropped without probing.
func (s *Suite) openDatabases(needed, skip map[string]bool, inj *resilience.Injector, pol resilience.RetryPolicy, rep *resilience.Report) []*seqdb.DB {
	if inj == nil && len(skip) == 0 {
		return s.allDBs()
	}
	var active []*seqdb.DB
	for _, db := range s.allDBs() {
		if !needed[db.Name] {
			active = append(active, db)
			continue
		}
		if skip[db.Name] {
			rep.DroppedDBs = append(rep.DroppedDBs, db.Name)
			rep.Degraded = true
			rep.Record(resilience.Event{
				Stage: "msa", Kind: resilience.KindBreakerSkip, DB: db.Name,
				Detail: "circuit breaker open; database skipped without probing",
			})
			continue
		}
		var bo *rng.Source
		var lastErr error
		attempts := 0
		for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
			attempts = attempt
			err := inj.ReadFault(db.Name, attempt)
			if err == nil {
				lastErr = nil
				break
			}
			lastErr = err
			if resilience.IsPermanent(err) || attempt == pol.MaxAttempts {
				break
			}
			if bo == nil {
				bo = inj.BackoffSource(db.Name)
			}
			d := pol.Backoff(attempt, bo)
			rep.Retries++
			rep.RetrySeconds += d
			rep.Record(resilience.Event{
				Stage: "msa", Kind: resilience.KindRetry, DB: db.Name, Seconds: d,
				Detail: fmt.Sprintf("open attempt %d failed; backing off", attempt),
			})
		}
		if lastErr == nil {
			active = append(active, db)
			continue
		}
		rep.DroppedDBs = append(rep.DroppedDBs, db.Name)
		rep.Degraded = true
		cause := resilience.ErrDBUnavailable{DB: db.Name, Attempts: attempts, Cause: lastErr}
		rep.Record(resilience.Event{
			Stage: "msa", Kind: resilience.KindDropDB, DB: db.Name,
			Detail: cause.Error(),
		})
	}
	return active
}

// streamDatabases plays every recorded database pass through the storage
// model, returning total disk busy seconds. The per-database total replays
// as full passes of the modeled size plus one final partial pass for the
// remainder, so cache hits between passes count and no streamed bytes are
// dropped. Mid-stream faults retry under the policy; memory spikes fire
// between databases, and a spike past the machine's capacity reports
// ceiling=true with the stream abandoned.
func (s *Suite) streamDatabases(ctx context.Context, storage *simio.System, msaRes *msa.Result, active []*seqdb.DB, mach platform.Machine, inj *resilience.Injector, pol resilience.RetryPolicy, rep *resilience.Report) (float64, bool, error) {
	var disk float64
	streamed := 0
	for _, db := range active {
		total := msaRes.Streamed[db.Name]
		if total == 0 {
			continue
		}
		per := db.ModeledBytes()
		for off := int64(0); off < total; off += per {
			if err := ctx.Err(); err != nil {
				return disk, false, resilience.ErrStageTimeout{Stage: "msa", Cause: err}
			}
			size := per
			if rem := total - off; rem < per {
				size = rem // the final partial pass
			}
			sec, dead := s.streamPass(storage, db.Name, size, inj, pol, rep)
			disk += sec
			if dead {
				break
			}
		}
		if spike := inj.MemSpike(streamed); spike > 0 {
			storage.SetReserved(storage.Reserved() + spike)
			if storage.Reserved() > mach.TotalMemBytes() {
				return disk, true, nil
			}
			rep.Record(resilience.Event{
				Stage: "stream", Kind: resilience.KindMemSpike,
				Detail: fmt.Sprintf("anonymous memory +%d GiB; later passes squeeze the page cache", spike>>30),
			})
		}
		streamed++
	}
	return disk, false, nil
}

// streamPass is one pass of one database through the storage model under
// the retry policy. Mid-stream faults are rare — open-time probing consumes
// the injected budgets — but a database can still go dark here; the pass
// then records the drop and returns dead=true so the caller stops replaying
// it (its hits are already recruited; only the remaining re-reads vanish).
func (s *Suite) streamPass(storage *simio.System, name string, bytes int64, inj *resilience.Injector, pol resilience.RetryPolicy, rep *resilience.Report) (float64, bool) {
	var sec float64
	var bo *rng.Source
	for attempt := 1; ; attempt++ {
		r, err := storage.TryReadSequential(name, bytes)
		sec += r.DiskSeconds
		if err == nil {
			return sec, false
		}
		if resilience.IsPermanent(err) || attempt >= pol.MaxAttempts {
			rep.DroppedDBs = append(rep.DroppedDBs, name)
			rep.Degraded = true
			cause := resilience.ErrDBUnavailable{DB: name, Attempts: attempt, Cause: err}
			rep.Record(resilience.Event{
				Stage: "stream", Kind: resilience.KindDropDB, DB: name,
				Detail: cause.Error(),
			})
			return sec, true
		}
		if bo == nil {
			bo = inj.BackoffSource(name)
		}
		d := pol.Backoff(attempt, bo)
		rep.Retries++
		rep.RetrySeconds += d
		rep.Record(resilience.Event{
			Stage: "stream", Kind: resilience.KindRetry, DB: name, Seconds: d,
			Detail: fmt.Sprintf("read attempt %d failed; backing off", attempt),
		})
	}
}

// reducedDBSet filters the suite's databases to the active set, preserving
// catalog order.
func (s *Suite) reducedDBSet(active []*seqdb.DB) *msa.DBSet {
	on := make(map[string]bool, len(active))
	for _, db := range active {
		on[db.Name] = true
	}
	set := &msa.DBSet{}
	for _, db := range s.DBs.Protein {
		if on[db.Name] {
			set.Protein = append(set.Protein, db)
		}
	}
	for _, db := range s.DBs.RNA {
		if on[db.Name] {
			set.RNA = append(set.RNA, db)
		}
	}
	return set
}

// dbSignature names a database profile for the MSA result cache.
func (s *Suite) dbSignature(active []*seqdb.DB) string {
	if len(active) == len(s.DBs.Protein)+len(s.DBs.RNA) {
		return "full"
	}
	if len(active) == 0 {
		return "none"
	}
	names := make([]string, len(active))
	for i, db := range active {
		names[i] = db.Name
	}
	return strings.Join(names, "+")
}

// removeDB returns dbs without the named database, order preserved.
func removeDB(dbs []*seqdb.DB, name string) []*seqdb.DB {
	out := make([]*seqdb.DB, 0, len(dbs))
	for _, db := range dbs {
		if db.Name != name {
			out = append(out, db)
		}
	}
	return out
}

// dropNeeded removes every database the input searches — the memory-ceiling
// response: the deep MSA is abandoned wholesale rather than letting the OOM
// killer pick a victim mid-stream.
func dropNeeded(dbs []*seqdb.DB, needed map[string]bool, rep *resilience.Report) []*seqdb.DB {
	out := make([]*seqdb.DB, 0, len(dbs))
	for _, db := range dbs {
		if needed[db.Name] {
			rep.DroppedDBs = append(rep.DroppedDBs, db.Name)
			continue
		}
		out = append(out, db)
	}
	return out
}

// countNeeded counts active databases the input actually searches.
func countNeeded(dbs []*seqdb.DB, needed map[string]bool) int {
	n := 0
	for _, db := range dbs {
		if needed[db.Name] {
			n++
		}
	}
	return n
}

// largestStreamed picks the budget ladder's victim: the active database
// with the most streamed bytes (catalog order breaks ties). Empty string
// when nothing is left to shed.
func largestStreamed(dbs []*seqdb.DB, needed map[string]bool, msaRes *msa.Result) string {
	var name string
	var best int64
	for _, db := range dbs {
		if !needed[db.Name] {
			continue
		}
		if b := msaRes.Streamed[db.Name]; b > best {
			best, name = b, db.Name
		}
	}
	return name
}

// preload fetches the run's databases into the page cache (Section VI).
func (s *Suite) preload(storage *simio.System, dbs []*seqdb.DB) {
	for _, db := range dbs {
		storage.Preload(db.Name, db.ModeledBytes())
	}
}

// allDBs returns protein then RNA databases in catalog order.
func (s *Suite) allDBs() []*seqdb.DB {
	out := make([]*seqdb.DB, 0, len(s.DBs.Protein)+len(s.DBs.RNA))
	out = append(out, s.DBs.Protein...)
	out = append(out, s.DBs.RNA...)
	return out
}
