package core

import (
	"fmt"

	"afsysbench/internal/inputs"
	"afsysbench/internal/memest"
	"afsysbench/internal/msa"
	"afsysbench/internal/parallel"
	"afsysbench/internal/platform"
	"afsysbench/internal/seqdb"
	"afsysbench/internal/simgpu"
	"afsysbench/internal/simhw"
	"afsysbench/internal/simio"
)

// PipelineOptions configure one end-to-end run.
type PipelineOptions struct {
	// Threads is the worker count for both parallel stages: the MSA scan
	// shards every database across Threads workers, and the real compute
	// kernels (pairformer.Stack, diffusion sampling) run on the worker
	// pool ComputePool returns for the same setting.
	Threads int
	// RunIndex selects the jitter draw for repeat runs.
	RunIndex int
	// WarmStart skips GPU init/XLA compile (persistent model server,
	// Section VI).
	WarmStart bool
	// PreloadDBs explicitly loads all databases into the page cache
	// before the MSA phase (Section VI storage optimization).
	PreloadDBs bool
	// Storage carries page-cache state across runs (warm caches); nil
	// builds a fresh cold-cache system.
	Storage *simio.System
	// SkipMemCheck disables the Section VI estimator gate, reproducing
	// stock AF3's behavior of running into the OOM killer.
	SkipMemCheck bool
}

// PipelineResult is the end-to-end outcome for one sample on one machine.
type PipelineResult struct {
	Sample  string
	Machine string
	Threads int

	// MSA phase.
	MSASeconds     float64 // wall time (CPU and disk pipelined)
	MSACPUSeconds  float64
	MSADiskSeconds float64
	DiskUtilPct    float64
	DiskStats      simio.Stats
	MSACPU         simhw.Result
	MSAData        *msa.Result

	// Inference phase.
	Inference simgpu.PhaseBreakdown

	// Memory estimate (Section VI pre-check).
	Memory memest.Estimate
}

// TotalSeconds returns end-to-end wall time.
func (p *PipelineResult) TotalSeconds() float64 {
	return p.MSASeconds + p.Inference.Total()
}

// MSAFraction returns the MSA share of the end-to-end time (Figure 7).
func (p *PipelineResult) MSAFraction() float64 {
	t := p.TotalSeconds()
	if t == 0 {
		return 0
	}
	return p.MSASeconds / t
}

// ErrProjectedOOM is returned when the memory estimator predicts the run
// cannot fit the machine (the failure the paper hit at RNA length 1335).
type ErrProjectedOOM struct {
	Estimate memest.Estimate
}

// Error implements error.
func (e ErrProjectedOOM) Error() string {
	return fmt.Sprintf("core: %s on %s projected to need %.0f GiB (verdict %s)",
		e.Estimate.Input, e.Estimate.Machine,
		float64(e.Estimate.PeakBytes)/(1<<30), e.Estimate.Verdict)
}

// ComputePool returns the shared worker pool for this run's thread
// setting — the compute-engine side of the Threads knob. Anything that
// executes the real kernels (pairformer.Stack, diffusion sampling) on
// behalf of a pipeline run should use this pool so MSA scanning and
// inference compute are governed by the same option. Pools are cached per
// worker count and shared across runs; results are bitwise identical at
// any worker count.
func (o PipelineOptions) ComputePool() *parallel.Pool {
	if o.Threads <= 0 {
		return parallel.Default()
	}
	return parallel.ForWorkers(o.Threads)
}

// RunPipeline executes the full AF3 pipeline for one sample on one machine
// at one thread count, returning phase times and counters.
func (s *Suite) RunPipeline(in *inputs.Input, mach platform.Machine, opts PipelineOptions) (*PipelineResult, error) {
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	res := &PipelineResult{
		Sample:  in.Name,
		Machine: mach.Name,
		Threads: opts.Threads,
	}

	// Section VI static pre-check.
	res.Memory = memVerdict(in, mach, opts.Threads)
	if res.Memory.Verdict == memest.OOM && !opts.SkipMemCheck {
		return nil, ErrProjectedOOM{Estimate: res.Memory}
	}

	// MSA phase: real searches, replayed on the machine model.
	msaRes, err := s.MSAResult(in, opts.Threads)
	if err != nil {
		return nil, err
	}
	res.MSAData = msaRes
	res.MSACPU = simhw.Simulate(msa.BuildRunSpec(mach, msaRes))
	res.MSACPUSeconds = res.MSACPU.Seconds * s.jitter(in.Name, opts.RunIndex, 0.02)

	// Storage: stream every database pass through the page cache.
	storage := opts.Storage
	if storage == nil {
		storage = newStorage(in, mach, opts.Threads)
	}
	if opts.PreloadDBs {
		s.preload(storage)
	}
	res.MSADiskSeconds = s.streamDatabases(storage, msaRes)
	// The scan pipeline overlaps compute with NVMe streaming; whichever
	// side is slower bounds the phase (Section V-B2c: the desktop's disk
	// runs at 100% utilization without degrading the pipeline).
	res.MSASeconds = res.MSACPUSeconds
	if res.MSADiskSeconds > res.MSASeconds {
		res.MSASeconds = res.MSADiskSeconds
	}
	res.DiskUtilPct = simio.UtilizationPct(res.MSADiskSeconds, res.MSASeconds)
	res.DiskStats = storage.Stats()

	// Inference phase.
	host, err := s.CompileSim(mach, in.TotalResidues())
	if err != nil {
		return nil, err
	}
	pb, err := simgpu.Inference(mach, s.Model, in.TotalResidues(), simgpu.InferenceOptions{
		Threads:        opts.Threads,
		WarmStart:      opts.WarmStart,
		CompileSeconds: host.CompileSeconds,
	})
	if err != nil {
		return nil, err
	}
	j := s.jitter(in.Name+"/inf", opts.RunIndex, 0.003)
	pb.ComputeSeconds *= j
	res.Inference = pb
	return res, nil
}

// streamDatabases plays every recorded database pass through the storage
// model, returning total disk busy seconds.
func (s *Suite) streamDatabases(storage *simio.System, msaRes *msa.Result) float64 {
	var disk float64
	// Streamed maps name -> total bytes over all passes; replay passes of
	// the per-pass modeled size so cache hits between passes count.
	for _, db := range s.allDBs() {
		total := msaRes.Streamed[db.Name]
		if total == 0 {
			continue
		}
		passes := int(total / db.ModeledBytes())
		for p := 0; p < passes; p++ {
			disk += storage.ReadSequential(db.Name, db.ModeledBytes()).DiskSeconds
		}
	}
	return disk
}

// preload fetches every database into the page cache (Section VI).
func (s *Suite) preload(storage *simio.System) {
	for _, db := range s.allDBs() {
		storage.Preload(db.Name, db.ModeledBytes())
	}
}

// allDBs returns protein then RNA databases in catalog order.
func (s *Suite) allDBs() []*seqdb.DB {
	out := make([]*seqdb.DB, 0, len(s.DBs.Protein)+len(s.DBs.RNA))
	out = append(out, s.DBs.Protein...)
	out = append(out, s.DBs.RNA...)
	return out
}
