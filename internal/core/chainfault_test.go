package core

import (
	"context"
	"reflect"
	"testing"

	"afsysbench/internal/inputs"
	"afsysbench/internal/msa"
	"afsysbench/internal/platform"
	"afsysbench/internal/resilience"
	"afsysbench/internal/rng"
)

// TestChainFaultCheckpointRetry drives the serving layer's retry contract
// through the pipeline entry point: a chain fault fails the MSA phase as a
// transient error; a retry sharing the same injector (budget spent) and
// checkpoint (completed chains recorded) succeeds, re-searches only the
// faulted chain, and produces the exact fault-free result.
func TestChainFaultCheckpointRetry(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("1YY9") // three distinct chains A, B, C
	mach := platform.Desktop()

	clean, err := s.RunMSAPhase(context.Background(), in, mach, PipelineOptions{Threads: 2, FreshMSA: true})
	if err != nil {
		t.Fatal(err)
	}

	inj := resilience.NewInjector(mustFaults(t, "chainfault:B:1"), rng.New(1))
	opts := PipelineOptions{
		Threads:       2,
		Injector:      inj,
		MSACheckpoint: msa.NewCheckpoint(),
	}
	_, err = s.RunMSAPhase(context.Background(), in, mach, opts)
	if err == nil {
		t.Fatal("chain fault did not fail the MSA phase")
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("chain fault error not transient: %v", err)
	}
	if opts.MSACheckpoint.Len() == 0 {
		t.Fatal("no chains checkpointed by the failed attempt")
	}

	mp, err := s.RunMSAPhase(context.Background(), in, mach, opts)
	if err != nil {
		t.Fatalf("retry with spent budget failed: %v", err)
	}
	if mp.Data.RestoredChains != 1 {
		t.Errorf("RestoredChains = %d, want 1 (chain A replayed)", mp.Data.RestoredChains)
	}
	if !reflect.DeepEqual(mp.Data.PerChain, clean.Data.PerChain) {
		t.Errorf("retried result differs from fault-free run:\n%+v\n%+v", mp.Data.PerChain, clean.Data.PerChain)
	}
	if mp.Data.TotalHitResidues != clean.Data.TotalHitResidues {
		t.Errorf("TotalHitResidues %d != %d", mp.Data.TotalHitResidues, clean.Data.TotalHitResidues)
	}
	if !approxEq(mp.Seconds, clean.Seconds, 1e-9) {
		t.Errorf("phase seconds %.4f != clean %.4f", mp.Seconds, clean.Seconds)
	}
}

// TestSkipDBsDropsWithoutProbing: a database named in SkipDBs (an open
// circuit breaker upstream) is shed before the scan with a breaker-skip
// event, and the run completes degraded on the remaining profile.
func TestSkipDBsDropsWithoutProbing(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	mp, err := s.RunMSAPhase(context.Background(), in, platform.Desktop(), PipelineOptions{
		Threads: 2,
		SkipDBs: map[string]bool{"uniref_s": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := mp.Resilience
	if got := countKind(rep, resilience.KindBreakerSkip); got != 1 {
		t.Errorf("breaker-skip events = %d, want 1", got)
	}
	if len(rep.DroppedDBs) != 1 || rep.DroppedDBs[0] != "uniref_s" {
		t.Errorf("dropped = %v, want [uniref_s]", rep.DroppedDBs)
	}
	if !rep.Degraded {
		t.Error("breaker skip did not mark the run degraded")
	}
	if got := countKind(rep, resilience.KindRetry); got != 0 {
		t.Errorf("skipped database was probed: %d retries", got)
	}
	if mp.Data.Streamed["uniref_s"] != 0 {
		t.Error("skipped database was streamed")
	}
}
