// Package core is the AFSysBench orchestrator: it wires the substrates
// together into the end-to-end AlphaFold3 pipeline (MSA phase → features →
// inference phase), runs the paper's benchmark matrix (samples × platforms
// × thread counts, with repeat runs for CV), and exposes one typed data
// producer per table and figure of the paper for the report renderers and
// benchmarks to consume.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"afsysbench/internal/hmmer"
	"afsysbench/internal/inputs"
	"afsysbench/internal/memest"
	"afsysbench/internal/metering"
	"afsysbench/internal/msa"
	"afsysbench/internal/platform"
	"afsysbench/internal/rng"
	"afsysbench/internal/simgpu"
	"afsysbench/internal/simhw"
	"afsysbench/internal/simio"
	"afsysbench/internal/xla"
)

// Suite is a configured benchmark suite instance.
type Suite struct {
	DBs   *msa.DBSet
	Model simgpu.Model
	// Runs is the repetition count for mean/CV reporting (paper: five).
	Runs int
	// Seed drives the run-to-run jitter model.
	Seed uint64
	// Search carries the scan-engine options for every MSA run the suite
	// performs. NewSuite pins the paper-faithful configuration — SWAR
	// pre-passes off — because the paper's profiles (Table IV shares,
	// Figure 5 saturation) measure stock jackhmmer/nhmmer; arming the
	// quantized cascade reshapes the modeled profile away from what the
	// artifacts reproduce. Clear DisableSWAR to study the optimized engine.
	Search hmmer.SearchOptions

	// XLACacheCap bounds the compiled-artifact memo (xlaCache) to this many
	// distinct token counts, LRU-evicted beyond it. A long-lived server
	// under a diverse trace would otherwise grow the memo without limit —
	// with shape bucketing (internal/batch) in front, the working set is
	// the bucket set, so a small cap loses nothing. NewSuite sets
	// DefaultXLACacheCap; values < 1 fall back to it. Set before first use.
	XLACacheCap int

	mu       sync.Mutex
	msaCache map[string]*msa.Result
	xlaCache map[int]xlaArtifacts
	// xlaLRU orders xlaCache keys least-recently-used first; xlaEvictions
	// counts entries pushed out by the cap.
	xlaLRU       []int
	xlaEvictions int64
}

type xlaArtifacts struct {
	stats  xla.CompileStats
	events []metering.Event
}

// DefaultXLACacheCap is the stock bound on the compiled-artifact memo:
// comfortably above the default bucket set (internal/batch) plus the
// Table II exact sizes, small enough that a diverse long-lived trace
// cannot grow the memo without limit.
const DefaultXLACacheCap = 24

// NewSuite builds the standard suite: synthetic databases covering the
// Table II samples and the AF3-scale inference model.
func NewSuite() (*Suite, error) {
	dbs, err := msa.BuildDBSet(inputs.Samples(), msa.DefaultDBConfig())
	if err != nil {
		return nil, err
	}
	return &Suite{
		DBs:         dbs,
		Model:       simgpu.DefaultModel(),
		Runs:        5,
		Seed:        0xAF5B,
		Search:      hmmer.SearchOptions{DisableSWAR: true},
		XLACacheCap: DefaultXLACacheCap,
		msaCache:    make(map[string]*msa.Result),
		xlaCache:    make(map[int]xlaArtifacts),
	}, nil
}

// MSAResult runs (or returns the cached) MSA phase for a sample at a thread
// count. The result is platform-independent: the machine models replay it.
func (s *Suite) MSAResult(in *inputs.Input, threads int) (*msa.Result, error) {
	return s.msaResultFor(context.Background(), in, threads, s.DBs, "full", false, msaExtras{})
}

// msaExtras carries the resumability and hedging hooks from PipelineOptions
// into the MSA search — checkpoint replay, chain-granular fault injection,
// the chain-latency observer and the hedge budget. The zero value means a
// plain search.
type msaExtras struct {
	checkpoint *msa.Checkpoint
	chainFault func(chainID string, attempt int) error
	chainDone  func(chainID string, wall time.Duration)
	hedgeAfter time.Duration
	chainCache msa.ChainFetch
	scatter    msa.ScatterFunc
}

// msaResultFor runs (or returns the cached) MSA phase against a specific
// database profile. sig names the profile in the cache key: the degradation
// ladder re-plans the stage against reduced sets, and a result computed
// with a dropped database must never be served for the full profile (or
// vice versa). fresh bypasses the memo entirely — no read, no write — for
// callers that manage reuse themselves (PipelineOptions.FreshMSA) and for
// any run carrying attempt-dependent hooks (chain faults, checkpoints).
// sig doubles as the checkpoint scope, so a delta recorded against one
// profile never replays under another.
func (s *Suite) msaResultFor(ctx context.Context, in *inputs.Input, threads int, dbs *msa.DBSet, sig string, fresh bool, ex msaExtras) (*msa.Result, error) {
	key := fmt.Sprintf("%s/%d/%s", in.Name, threads, sig)
	if !fresh {
		s.mu.Lock()
		cached, ok := s.msaCache[key]
		s.mu.Unlock()
		if ok {
			return cached, nil
		}
	}
	res, err := msa.RunCtx(ctx, in, msa.Options{
		Threads:         threads,
		Search:          s.Search,
		DBs:             dbs,
		AllowMissingDB:  true,
		Checkpoint:      ex.checkpoint,
		CheckpointScope: sig,
		ChainFault:      ex.chainFault,
		ChainDone:       ex.chainDone,
		HedgeAfter:      ex.hedgeAfter,
		ChainCache:      ex.chainCache,
		Scatter:         ex.scatter,
	})
	if err != nil {
		return nil, err
	}
	if !fresh {
		s.mu.Lock()
		s.msaCache[key] = res
		s.mu.Unlock()
	}
	return res, nil
}

// XLAArtifacts builds and compiles the inference graph for n tokens,
// caching the stats and host-side metering events. The memo is a bounded
// LRU (XLACacheCap): an evicted token count recompiles on its next use —
// the compile is deterministic, so eviction costs time, never correctness.
func (s *Suite) XLAArtifacts(n int) (xla.CompileStats, []metering.Event, error) {
	s.mu.Lock()
	cached, ok := s.xlaCache[n]
	if ok {
		s.xlaTouchLocked(n)
	}
	s.mu.Unlock()
	if ok {
		return cached.stats, cached.events, nil
	}
	g := xla.BuildInferenceGraph(s.Model.PF, s.Model.DF, n, s.Model.Recycles)
	var acc metering.Accumulator
	st, err := xla.Compile(g, &acc)
	if err != nil {
		return xla.CompileStats{}, nil, err
	}
	s.mu.Lock()
	if _, exists := s.xlaCache[n]; !exists {
		s.xlaCache[n] = xlaArtifacts{stats: st, events: acc.Events}
		s.xlaLRU = append(s.xlaLRU, n)
	}
	s.xlaTouchLocked(n)
	cap := s.XLACacheCap
	if cap < 1 {
		cap = DefaultXLACacheCap
	}
	for len(s.xlaLRU) > cap {
		victim := s.xlaLRU[0]
		s.xlaLRU = s.xlaLRU[1:]
		delete(s.xlaCache, victim)
		s.xlaEvictions++
	}
	s.mu.Unlock()
	return st, acc.Events, nil
}

// xlaTouchLocked moves n to the most-recently-used end of the LRU order.
// Callers hold s.mu.
func (s *Suite) xlaTouchLocked(n int) {
	for i, k := range s.xlaLRU {
		if k == n {
			s.xlaLRU = append(append(s.xlaLRU[:i:i], s.xlaLRU[i+1:]...), n)
			return
		}
	}
}

// XLACacheStats reports the compiled-artifact memo's occupancy and how
// many entries the XLACacheCap bound has evicted.
func (s *Suite) XLACacheStats() (entries int, evictions int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.xlaCache), s.xlaEvictions
}

// HostProfile is the simulated host-side inference startup profile: the
// full counter set (Table V) plus the XLA-compile portion of the time
// (Figure 8's compile bar; init work is priced separately by simgpu).
type HostProfile struct {
	Sim            simhw.Result
	CompileSeconds float64
}

// CompileSim replays the compile and init host events on a machine's CPU
// model, giving the platform-specific XLA compile time and the Table V
// counters.
func (s *Suite) CompileSim(mach platform.Machine, n int) (HostProfile, error) {
	_, events, err := s.XLAArtifacts(n)
	if err != nil {
		return HostProfile{}, err
	}
	tw := simhw.ThreadWork{}
	for _, ev := range events {
		fw := simhw.FuncWork{
			Func:           ev.Func,
			Instructions:   ev.Instructions,
			Bytes:          ev.Bytes,
			Branches:       ev.Branches,
			BranchMissRate: ev.BranchMissRate,
			Pattern:        ev.Pattern,
			HotBytes:       ev.WorkingSet,
			Allocated:      ev.Allocated,
		}
		if ev.Func == "xla::ShapeUtil::ByteSizeOf" {
			// Shape metadata is pointer-chased across the whole runtime
			// heap, which is what defeats even the server's TLB reach
			// (Table V's dTLB row).
			fw.HotBytes = 8 << 30
		}
		tw.Funcs = append(tw.Funcs, fw)
	}
	// Host-side data loading during init: weights and compiled artifacts
	// stream from disk/page cache into pinned buffers (the copy_to_iter
	// row of Table V).
	const weightBytes = 2 << 30
	tw.Funcs = append(tw.Funcs, simhw.FuncWork{
		Func:         "copy_to_iter",
		Instructions: weightBytes / 2,
		Bytes:        2 * weightBytes,
		StreamBytes:  weightBytes,
		Pattern:      metering.Sequential,
	})
	// The remaining JAX/CUDA runtime activity (thread pools, driver,
	// Python). Its footprint constants are calibrated once so the Table V
	// shares of the named symbols land in the paper's ranges; everything
	// sample-dependent (graph size, buffer allocation) varies naturally.
	tw.Funcs = append(tw.Funcs, simhw.FuncWork{
		Func:           "jax_runtime_other",
		Instructions:   4e10,
		Bytes:          2.4e11,
		Branches:       8e9,
		BranchMissRate: 0.01,
		Pattern:        metering.Random,
		HotBytes:       (3 << 30) + (200 << 20), // just past the server's TLB reach
		Allocated:      11 << 29,                // 5.5 GiB of allocator churn
	})
	spec := simhw.RunSpec{Machine: mach, Threads: []simhw.ThreadWork{tw}}
	res := simhw.Simulate(spec)
	// The compile bar of Figure 8 covers only the compiler's own work
	// (passes, shape inference, buffer assignment), scaled by the device
	// generation's autotuning factor; the rest of the host profile is
	// init-phase activity that simgpu prices separately.
	var compileCycles float64
	for _, fn := range []string{"xla_compile_passes", "xla::ShapeUtil::ByteSizeOf", "std::vector::_M_fill_insert"} {
		compileCycles += float64(res.PerFunc[fn].Cycles)
	}
	hz := mach.CPU.MaxClockGHz * 1e9
	return HostProfile{
		Sim:            res,
		CompileSeconds: compileCycles / hz * mach.GPU.CompileFactor,
	}, nil
}

// jitter returns a deterministic multiplicative noise factor for run
// index i with the given relative magnitude (models the paper's run-to-run
// variation: CV ≤ 5% for MSA, ≤ 1% for inference).
func (s *Suite) jitter(sample string, runIdx int, magnitude float64) float64 {
	src := rng.New(s.Seed)
	for _, c := range []byte(sample) {
		src = src.Split(uint64(c))
	}
	src = src.Split(uint64(runIdx))
	return 1 + magnitude*(2*src.Float64()-1)
}

// resilienceSource derives the fault-injection/backoff source for one run.
// It follows jitter's (seed, sample, run index) split path with one extra
// distinct key so backoff draws never correlate with timing noise.
func (s *Suite) resilienceSource(sample string, runIdx int) *rng.Source {
	src := rng.New(s.Seed)
	for _, c := range []byte(sample) {
		src = src.Split(uint64(c))
	}
	return src.Split(uint64(runIdx)).Split(0xFA)
}

// memVerdict pre-checks a run the way the Section VI estimator proposes.
func memVerdict(in *inputs.Input, mach platform.Machine, threads int) memest.Estimate {
	return memest.Check(in, mach, threads)
}

// reservedAppBytes is the anonymous application memory the pipeline holds
// while streaming databases (search arenas, features, runtime).
func reservedAppBytes(in *inputs.Input, threads int) int64 {
	est := memest.ProteinPeakBytes(in.MaxProteinLength(), threads) + memest.RNAPeakBytes(in.MaxRNALength())
	return est + 8<<30
}

// newStorage builds the storage system for one pipeline run.
func newStorage(in *inputs.Input, mach platform.Machine, threads int) *simio.System {
	return simio.New(mach, reservedAppBytes(in, threads))
}
