package core

import (
	"context"
	"testing"

	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
)

// newTestSuite builds a private suite: these tests inspect and depend on
// the memo state, so they cannot share the package-wide instance.
func newTestSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPhaseCompositionMatchesPipeline: running the two phase entry points
// and composing them must reproduce RunPipeline exactly — the serving
// scheduler depends on the split being lossless.
func TestPhaseCompositionMatchesPipeline(t *testing.T) {
	s := newTestSuite(t)
	in, err := inputs.ByName("1YY9")
	if err != nil {
		t.Fatal(err)
	}
	mach := platform.Server()
	opts := PipelineOptions{Threads: 4, FreshMSA: true}

	whole, err := s.RunPipeline(in, mach, opts)
	if err != nil {
		t.Fatal(err)
	}

	mp, err := s.RunMSAPhase(context.Background(), in, mach, opts)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := s.RunInferencePhase(context.Background(), in, mach, opts)
	if err != nil {
		t.Fatal(err)
	}
	composed := ComposeResult(in, mach, opts.Threads, mp, pb)

	if composed.MSASeconds != whole.MSASeconds ||
		composed.MSACPUSeconds != whole.MSACPUSeconds ||
		composed.MSADiskSeconds != whole.MSADiskSeconds ||
		composed.Inference != whole.Inference ||
		composed.Memory != whole.Memory ||
		composed.Sample != whole.Sample ||
		composed.Machine != whole.Machine ||
		composed.Threads != whole.Threads {
		t.Fatalf("composed phases diverge from the whole pipeline:\n  composed %+v\n  whole    %+v", composed, whole)
	}
	if composed.TotalSeconds() != whole.TotalSeconds() {
		t.Fatalf("total seconds: composed %v, whole %v", composed.TotalSeconds(), whole.TotalSeconds())
	}
}

// TestFreshMSABypassesMemo: a FreshMSA run must neither read nor populate
// the suite's experiment memo, so internal/cache stays the only reuse path
// in serving mode.
func TestFreshMSABypassesMemo(t *testing.T) {
	s := newTestSuite(t)
	in, err := inputs.ByName("promo")
	if err != nil {
		t.Fatal(err)
	}
	mach := platform.Desktop()

	if _, err := s.RunMSAPhase(context.Background(), in, mach, PipelineOptions{Threads: 4, FreshMSA: true}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	memoLen := len(s.msaCache)
	s.mu.Unlock()
	if memoLen != 0 {
		t.Fatalf("FreshMSA populated the suite memo (%d entries)", memoLen)
	}

	// And the memoized path still memoizes.
	if _, err := s.RunMSAPhase(context.Background(), in, mach, PipelineOptions{Threads: 4}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	memoLen = len(s.msaCache)
	s.mu.Unlock()
	if memoLen != 1 {
		t.Fatalf("memoized run left %d memo entries, want 1", memoLen)
	}
}

// TestMSAPhaseSizeBytes: the cache charge tracks the feature tensor.
func TestMSAPhaseSizeBytes(t *testing.T) {
	var nilPhase *MSAPhase
	if nilPhase.SizeBytes() <= 0 {
		t.Fatal("nil phase must still charge overhead")
	}
	s := newTestSuite(t)
	in, err := inputs.ByName("1YY9")
	if err != nil {
		t.Fatal(err)
	}
	mp, err := s.RunMSAPhase(context.Background(), in, platform.Server(), PipelineOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if mp.SizeBytes() <= mp.Data.Features.Bytes() {
		t.Fatalf("SizeBytes %d must exceed the raw feature bytes %d", mp.SizeBytes(), mp.Data.Features.Bytes())
	}
}
