package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"afsysbench/internal/inputs"
	"afsysbench/internal/msa"
	"afsysbench/internal/platform"
	"afsysbench/internal/resilience"
	"afsysbench/internal/seqdb"
	"afsysbench/internal/simio"
)

// newStreamedResult fakes an MSA result that streamed total bytes of one
// database, for driving streamDatabases directly.
func newStreamedResult(db string, total int64) *msa.Result {
	return &msa.Result{Streamed: map[string]int64{db: total}}
}

func mustFaults(t *testing.T, spec string) resilience.Faults {
	t.Helper()
	fs, err := resilience.ParseFaults(spec)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func countKind(rep resilience.Report, k resilience.Kind) int {
	n := 0
	for _, e := range rep.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func TestTransientFaultRetriesAndSucceeds(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	clean, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
		Threads: 4,
		Faults:  mustFaults(t, "transient:uniref_s:2"),
	})
	if err != nil {
		t.Fatalf("transient faults must be absorbed, got %v", err)
	}
	rep := pr.Resilience
	if rep.Retries != 2 || rep.RetrySeconds <= 0 {
		t.Fatalf("retries=%d wait=%.2f, want 2 retries with positive wait", rep.Retries, rep.RetrySeconds)
	}
	if got := countKind(rep, resilience.KindRetry); got != 2 {
		t.Errorf("retry events = %d, want 2", got)
	}
	if rep.Degraded || rep.SingleSequence || len(rep.DroppedDBs) != 0 {
		t.Errorf("pure retries must not degrade: %s", rep.String())
	}
	// Backoff waits are charged on top of the clean phase time; the MSA
	// output itself is untouched.
	if want := clean.MSASeconds + rep.RetrySeconds; !approxEq(pr.MSASeconds, want, 1e-9) {
		t.Errorf("MSASeconds = %.4f, want clean %.4f + wait %.4f", pr.MSASeconds, clean.MSASeconds, rep.RetrySeconds)
	}
	if pr.MSAData.Features.Rows != clean.MSAData.Features.Rows {
		t.Error("transient faults changed the MSA result")
	}
}

func TestPermanentFaultsDegradeToSingleSequence(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
		Threads: 4,
		Faults:  mustFaults(t, "permanent:*"),
	})
	if err != nil {
		t.Fatalf("permanent faults must degrade, not fail: %v", err)
	}
	rep := pr.Resilience
	if !rep.SingleSequence || !rep.Degraded {
		t.Fatalf("want single-sequence fallback, got %s", rep.String())
	}
	if pr.MSAData.Features.Rows != 1 {
		t.Errorf("single-sequence depth = %d, want 1", pr.MSAData.Features.Rows)
	}
	if pr.MSADiskSeconds != 0 {
		t.Errorf("nothing should stream, disk = %.2fs", pr.MSADiskSeconds)
	}
	if countKind(rep, resilience.KindSingleSequence) != 1 {
		t.Error("missing single-sequence event")
	}
	// 2PV7 is protein-only: both protein databases drop, nothing else.
	if len(rep.DroppedDBs) != 2 {
		t.Errorf("dropped = %v, want the two protein databases", rep.DroppedDBs)
	}
	// Inference still prices the run.
	if pr.Inference.Total() <= 0 {
		t.Error("inference did not run")
	}
}

func TestPermanentSingleDBDropsAndContinues(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
		Threads: 4,
		Faults:  mustFaults(t, "permanent:uniref_s"),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := pr.Resilience
	if rep.SingleSequence {
		t.Fatal("one dead database must not force single-sequence")
	}
	if len(rep.DroppedDBs) != 1 || rep.DroppedDBs[0] != "uniref_s" {
		t.Fatalf("dropped = %v, want [uniref_s]", rep.DroppedDBs)
	}
	if !rep.Degraded || countKind(rep, resilience.KindDropDB) != 1 {
		t.Errorf("drop not recorded: %s", rep.String())
	}
	if pr.MSAData.Streamed["uniref_s"] != 0 {
		t.Error("dropped database was still scanned")
	}
	if pr.MSAData.Streamed["mgnify_s"] == 0 {
		t.Error("surviving database was not scanned")
	}
	if pr.MSAData.Features.Rows <= 1 {
		t.Error("reduced profile should still recruit an alignment")
	}
}

func TestTransientExhaustionDropsDB(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
		Threads: 4,
		Faults:  mustFaults(t, "transient:mgnify_s:10"), // outlasts MaxAttempts=4
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := pr.Resilience
	if len(rep.DroppedDBs) != 1 || rep.DroppedDBs[0] != "mgnify_s" {
		t.Fatalf("dropped = %v, want [mgnify_s]", rep.DroppedDBs)
	}
	// Attempts 1..3 back off and retry; attempt 4 gives up.
	if rep.Retries != 3 {
		t.Errorf("retries = %d, want 3", rep.Retries)
	}
	var drop resilience.Event
	for _, e := range rep.Events {
		if e.Kind == resilience.KindDropDB {
			drop = e
		}
	}
	if !strings.Contains(drop.Detail, "after 4 attempts") {
		t.Errorf("drop event detail = %q, want attempt accounting", drop.Detail)
	}
}

func TestResilienceDeterministicAcrossThreadsAndRuns(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	faults := "transient:uniref_s:2,permanent:mgnify_s,stall:30"
	var reports []string
	for _, th := range []int{1, 4, 8} {
		pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
			Threads: th,
			Faults:  mustFaults(t, faults),
		})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, fmt.Sprintf("%+v", pr.Resilience))
	}
	if reports[0] != reports[1] || reports[1] != reports[2] {
		t.Errorf("resilience report varies with worker count:\n%s\n%s\n%s", reports[0], reports[1], reports[2])
	}
	// Repeat the same run: the full result must be identical, down to the
	// disk counters and every event byte.
	run := func() string {
		pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
			Threads: 4,
			Faults:  mustFaults(t, faults),
		})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("msa=%.9f cpu=%.9f disk=%.9f stats=%+v inf=%.9f rep=%+v",
			pr.MSASeconds, pr.MSACPUSeconds, pr.MSADiskSeconds, pr.DiskStats, pr.Inference.Total(), pr.Resilience)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("repeat run differs:\n%s\n%s", a, b)
	}
}

func TestStageBudgetDegradesMSA(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	// A budget far below any real plan walks the whole ladder: every
	// database sheds, the run lands on single-sequence features, and the
	// remaining floor is recorded as an overrun rather than an error.
	pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
		Threads: 4,
		Budget:  resilience.StageBudget{MSASeconds: 1e-7},
	})
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not fail: %v", err)
	}
	rep := pr.Resilience
	if !rep.SingleSequence || len(rep.DroppedDBs) != 2 {
		t.Fatalf("want full ladder walk, got %s", rep.String())
	}
	if countKind(rep, resilience.KindBudgetDrop) != 2 {
		t.Errorf("budget drops = %d, want 2", countKind(rep, resilience.KindBudgetDrop))
	}
	if countKind(rep, resilience.KindBudgetOverrun) != 1 {
		t.Error("single-sequence floor above budget must record an overrun")
	}
	if pr.MSAData.Features.Rows != 1 {
		t.Errorf("depth = %d, want 1", pr.MSAData.Features.Rows)
	}
}

func TestStageBudgetShedsLargestStreamFirst(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	clean, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Budget just below the full plan: one drop must suffice, and the
	// victim is the database with the most streamed bytes (uniref_s, 60
	// GiB vs mgnify_s's 25).
	pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
		Threads: 4,
		Budget:  resilience.StageBudget{MSASeconds: clean.MSASeconds * 0.98},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := pr.Resilience
	if len(rep.DroppedDBs) == 0 || rep.DroppedDBs[0] != "uniref_s" {
		t.Fatalf("dropped = %v, want uniref_s shed first", rep.DroppedDBs)
	}
	if rep.SingleSequence {
		t.Error("a near-miss budget should not collapse to single-sequence")
	}
	if pr.MSASeconds > clean.MSASeconds*0.98 {
		t.Errorf("degraded plan %.1fs still over the %.1fs budget", pr.MSASeconds, clean.MSASeconds*0.98)
	}
}

func TestInferenceBudgetTimesOut(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	_, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
		Threads: 4,
		Budget:  resilience.StageBudget{InferenceSeconds: 0.01},
	})
	var timeout resilience.ErrStageTimeout
	if !errors.As(err, &timeout) {
		t.Fatalf("want ErrStageTimeout, got %v", err)
	}
	if timeout.Stage != "inference" || timeout.NeedSeconds <= timeout.BudgetSeconds {
		t.Errorf("timeout = %+v", timeout)
	}
}

func TestMemSpikeCeilingFallsBackToSingleSequence(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
		Threads: 4,
		Faults:  mustFaults(t, "memspike:100000:0"), // far past 64 GiB DRAM
	})
	if err != nil {
		t.Fatalf("memory ceiling must degrade, not fail: %v", err)
	}
	rep := pr.Resilience
	if countKind(rep, resilience.KindMemCeiling) != 1 {
		t.Fatalf("missing mem-ceiling event: %s", rep.String())
	}
	if !rep.SingleSequence || pr.MSAData.Features.Rows != 1 {
		t.Errorf("ceiling must abandon the deep MSA: %s", rep.String())
	}
}

func TestMemSpikeSurvivableSqueezesCache(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	clean, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
		Threads: 4,
		Faults:  mustFaults(t, "memspike:20:0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := pr.Resilience
	if countKind(rep, resilience.KindMemSpike) != 1 || rep.SingleSequence {
		t.Fatalf("want one survivable spike, got %s", rep.String())
	}
	if pr.MSADiskSeconds < clean.MSADiskSeconds {
		t.Errorf("squeezed cache should not stream less: %.2f vs %.2f", pr.MSADiskSeconds, clean.MSADiskSeconds)
	}
	if pr.MSAData.Features.Rows != clean.MSAData.Features.Rows {
		t.Error("a survivable spike must not change the MSA result")
	}
}

func TestStallExtendsCriticalPath(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	clean, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{
		Threads: 4,
		Faults:  mustFaults(t, "stall:1000"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if countKind(pr.Resilience, resilience.KindStall) != 1 {
		t.Fatal("missing stall event")
	}
	if want := clean.MSACPUSeconds + 1000; pr.MSASeconds < want && pr.MSASeconds < clean.MSADiskSeconds {
		t.Errorf("stall not on the critical path: %.1fs", pr.MSASeconds)
	}
	if pr.MSASeconds <= clean.MSASeconds {
		t.Errorf("stalled run %.1fs not slower than clean %.1fs", pr.MSASeconds, clean.MSASeconds)
	}
	if pr.Resilience.Degraded {
		t.Error("a stall is absorbed, not a degradation")
	}
}

func TestPipelineCtxCancellation(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.RunPipelineCtx(ctx, in, platform.Desktop(), PipelineOptions{Threads: 4})
	var timeout resilience.ErrStageTimeout
	if !errors.As(err, &timeout) {
		t.Fatalf("want ErrStageTimeout, got %v", err)
	}
	if timeout.Stage != "msa" {
		t.Errorf("stage = %q, want msa (first stage to observe the context)", timeout.Stage)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("context cause must survive the typed wrapper")
	}
}

func TestStreamDatabasesReplaysPartialPass(t *testing.T) {
	// Regression: the replay used to truncate to whole passes, charging
	// zero disk seconds for any remainder below one modeled database size.
	s := suite(t)
	db := s.DBs.Protein[0]
	pol := resilience.RetryPolicy{}.WithDefaults()
	mach := platform.Desktop()
	stream := func(total int64) float64 {
		// Reserve most of DRAM so re-read passes cannot hide in the cache.
		storage := simio.New(mach, 60<<30)
		msaRes := newStreamedResult(db.Name, total)
		var rep resilience.Report
		disk, ceiling, err := s.streamDatabases(context.Background(), storage, msaRes, []*seqdb.DB{db}, mach, nil, pol, &rep)
		if err != nil || ceiling {
			t.Fatalf("stream: disk=%v ceiling=%v err=%v", disk, ceiling, err)
		}
		return disk
	}
	half := stream(db.ModeledBytes() / 2)
	if half <= 0 {
		t.Fatal("sub-pass remainder charged zero disk time")
	}
	one := stream(db.ModeledBytes())
	oneAndHalf := stream(db.ModeledBytes() + db.ModeledBytes()/2)
	if oneAndHalf <= one {
		t.Errorf("1.5 passes (%.2fs) must cost more than 1.0 (%.2fs)", oneAndHalf, one)
	}
}

func TestStreamPassMidStreamDropIsDefensive(t *testing.T) {
	// Open-time probing normally consumes fault budgets, but a database
	// can still go dark mid-stream (e.g. a caller-owned storage hook);
	// the pass must drop it after the retry budget instead of spinning.
	s := suite(t)
	db := s.DBs.Protein[0]
	mach := platform.Desktop()
	storage := simio.New(mach, 8<<30)
	inj := resilience.NewInjector(mustFaults(t, "transient:"+db.Name+":10"), s.resilienceSource("test", 0))
	storage.SetFaultFunc(func(name string, attempt int, _ int64) error {
		return inj.ReadFault(name, attempt)
	})
	var rep resilience.Report
	msaRes := newStreamedResult(db.Name, db.ModeledBytes())
	pol := resilience.RetryPolicy{}.WithDefaults()
	disk, ceiling, err := s.streamDatabases(context.Background(), storage, msaRes, []*seqdb.DB{db}, mach, inj, pol, &rep)
	if err != nil || ceiling {
		t.Fatal(err)
	}
	if disk != 0 {
		t.Errorf("failed stream charged %.2fs of disk", disk)
	}
	if len(rep.DroppedDBs) != 1 || rep.Retries != pol.MaxAttempts-1 {
		t.Errorf("defensive drop accounting wrong: %s", rep.String())
	}
	if countKind(rep, resilience.KindDropDB) != 1 {
		t.Error("missing drop event")
	}
}

func approxEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
