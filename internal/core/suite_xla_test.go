package core

import (
	"testing"

	"afsysbench/internal/msa"
	"afsysbench/internal/simgpu"
)

// The compiled-artifact memo must stay bounded under a diverse trace
// (long-lived server, many distinct token counts) and recompute evicted
// entries identically — eviction costs time, never correctness. A private
// suite (no databases — XLAArtifacts never touches them) keeps the shared
// test suite's memo and counters untouched.
func TestXLACacheBoundedLRU(t *testing.T) {
	s := &Suite{
		Model:       simgpu.DefaultModel(),
		XLACacheCap: 2,
		msaCache:    make(map[string]*msa.Result),
		xlaCache:    make(map[int]xlaArtifacts),
	}

	first, _, err := s.XLAArtifacts(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{120, 140} {
		if _, _, err := s.XLAArtifacts(n); err != nil {
			t.Fatal(err)
		}
	}
	entries, evictions := s.XLACacheStats()
	if entries != 2 {
		t.Errorf("entries = %d, want cap 2", entries)
	}
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	// 100 was the LRU victim; re-requesting it recomputes the same stats
	// and evicts the next-oldest (120).
	again, _, err := s.XLAArtifacts(100)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Error("recomputed artifacts differ from the evicted originals")
	}
	if _, evictions = s.XLACacheStats(); evictions != 2 {
		t.Errorf("evictions after refetch = %d, want 2", evictions)
	}
	// A hit refreshes recency: touching 140 then inserting 160 must evict
	// 100 (now oldest), keeping 140 resident.
	if _, _, err := s.XLAArtifacts(140); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.XLAArtifacts(160); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.XLAArtifacts(140); err != nil {
		t.Fatal(err)
	}
	entries, evictions = s.XLACacheStats()
	if entries != 2 || evictions != 3 {
		t.Errorf("after touch+insert: entries=%d evictions=%d, want 2,3", entries, evictions)
	}
}
