package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"afsysbench/internal/inputs"
	"afsysbench/internal/memest"
	"afsysbench/internal/platform"
	"afsysbench/internal/seq"
)

var (
	suiteOnce sync.Once
	suiteInst *Suite
	suiteErr  error
)

func suite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suiteInst, suiteErr = NewSuite()
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteInst
}

func TestRunPipelineBasics(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	pr, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pr.MSASeconds <= 0 || pr.Inference.Total() <= 0 {
		t.Fatalf("phase times not positive: %+v", pr)
	}
	if pr.TotalSeconds() != pr.MSASeconds+pr.Inference.Total() {
		t.Error("total wrong")
	}
	if pr.MSAFraction() <= 0 || pr.MSAFraction() >= 1 {
		t.Errorf("MSA fraction = %v", pr.MSAFraction())
	}
	if pr.Memory.Verdict != memest.OK {
		t.Errorf("2PV7 memory verdict = %v", pr.Memory.Verdict)
	}
}

func TestMSADominatesEndToEnd(t *testing.T) {
	// Headline observation: MSA is 70–90%+ of end-to-end time.
	s := suite(t)
	for _, name := range []string{"2PV7", "1YY9", "6QNR"} {
		in, _ := inputs.ByName(name)
		for _, mach := range TwoPlatforms() {
			pr, err := s.RunPipeline(in, mach, PipelineOptions{Threads: 4})
			if err != nil {
				t.Fatal(err)
			}
			if f := pr.MSAFraction(); f < 0.60 {
				t.Errorf("%s on %s: MSA fraction %.2f, want dominant", name, mach.Name, f)
			}
		}
	}
}

func TestDesktopFasterEndToEnd(t *testing.T) {
	// Observation 1: the desktop consistently beats the server end to end.
	s := suite(t)
	for _, name := range []string{"2PV7", "1YY9", "promo"} {
		in, _ := inputs.ByName(name)
		srv, err := s.RunPipeline(in, platform.Server(), PipelineOptions{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		dsk, err := s.RunPipeline(in, platform.Desktop(), PipelineOptions{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		if dsk.MSASeconds >= srv.MSASeconds {
			t.Errorf("%s: desktop MSA %.0fs not below server %.0fs", name, dsk.MSASeconds, srv.MSASeconds)
		}
	}
}

func TestStorageContrast(t *testing.T) {
	// Section V-B2c: server keeps databases cached (low disk util);
	// desktop cannot and re-streams (high util), without stalling the
	// pipeline.
	s := suite(t)
	in, _ := inputs.ByName("6QNR")
	srv, err := s.RunPipeline(in, platform.Server(), PipelineOptions{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	dsk, err := s.RunPipeline(in, platform.DesktopUpgraded(), PipelineOptions{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if srv.DiskUtilPct > 25 {
		t.Errorf("server disk util = %.0f%%, want low (<25%%)", srv.DiskUtilPct)
	}
	if dsk.DiskStats.ReadBytes <= srv.DiskStats.ReadBytes {
		t.Error("desktop must read more from disk than the server")
	}
	if dsk.MSASeconds > dsk.MSACPUSeconds*1.3 {
		t.Error("desktop I/O must not stall the pipeline badly (paper: no observable degradation)")
	}
}

func TestPreloadReducesDiskTimeInPhase(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("1YY9")
	mach := platform.Server()
	cold, err := s.RunPipeline(in, mach, PipelineOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.RunPipeline(in, mach, PipelineOptions{Threads: 4, PreloadDBs: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.MSADiskSeconds >= cold.MSADiskSeconds {
		t.Errorf("preload did not reduce in-phase disk time: %.1f vs %.1f",
			warm.MSADiskSeconds, cold.MSADiskSeconds)
	}
}

func TestWarmStartSkipsInferenceOverheads(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("2PV7")
	cold, err := s.InferenceOnly(in, platform.Server(), false)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.InferenceOnly(in, platform.Server(), true)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Total() >= cold.Total()/2 {
		t.Errorf("warm start %.0fs not well below cold %.0fs (server overheads dominate)", warm.Total(), cold.Total())
	}
}

func TestProjectedOOMGate(t *testing.T) {
	s := suite(t)
	// The 1335-residue RNA input must be rejected up front on every
	// machine (paper: it OOM-killed even with CXL).
	sweep := inputs.RNASweep()
	big := sweep[len(sweep)-1]
	_, err := s.RunPipeline(big, platform.ServerWithCXL(), PipelineOptions{Threads: 8})
	var oom ErrProjectedOOM
	if !errors.As(err, &oom) {
		t.Fatalf("expected ErrProjectedOOM, got %v", err)
	}
	// The message must name the input, the machine, the projected peak and
	// the verdict — it is what the operator sees instead of the OOM killer.
	msg := oom.Error()
	for _, want := range []string{big.Name, platform.ServerWithCXL().Name, "projected to need", "GiB", memest.OOM.String()} {
		if !strings.Contains(msg, want) {
			t.Errorf("gate message %q missing %q", msg, want)
		}
	}
	if oom.Estimate.Verdict != memest.OOM || oom.Estimate.PeakBytes <= platform.ServerWithCXL().TotalMemBytes() {
		t.Errorf("estimate not a real OOM projection: %+v", oom.Estimate)
	}
	// SkipMemCheck reproduces stock AF3 (no gate): the run proceeds and
	// still carries the failing estimate for the caller to inspect.
	skipped, err := s.RunPipeline(big, platform.ServerWithCXL(), PipelineOptions{Threads: 8, SkipMemCheck: true})
	if err != nil {
		t.Fatalf("SkipMemCheck run failed: %v", err)
	}
	if skipped.Memory.Verdict != memest.OOM {
		t.Errorf("gated-off run lost its estimate: %+v", skipped.Memory)
	}
	// A run the estimator clears must carry the OK verdict through the
	// same field (the other branch of the gate).
	small, _ := inputs.ByName("2PV7")
	ok, err := s.RunPipeline(small, platform.Server(), PipelineOptions{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ok.Memory.Verdict == memest.OOM {
		t.Errorf("2PV7 flagged OOM: %+v", ok.Memory)
	}
}

func TestFigure2Rows(t *testing.T) {
	rows := Figure2()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].PeakGiB <= rows[i-1].PeakGiB {
			t.Error("memory curve not increasing")
		}
	}
	last := rows[len(rows)-1]
	if last.VerdictOn["Server+CXL"] != "OOM" {
		t.Errorf("1335 verdict on CXL server = %s, want OOM", last.VerdictOn["Server+CXL"])
	}
	if rows[2].VerdictOn["Server+CXL"] != "OK" || rows[2].VerdictOn["Server"] == "OK" {
		t.Error("1135 must need the CXL expansion (paper III-C)")
	}
}

func TestFigure3ShapesAndCV(t *testing.T) {
	s := suite(t)
	rows, err := s.Figure3([]string{"2PV7", "promo"}, TwoPlatforms(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MSASeconds <= 0 || r.InferenceSeconds <= 0 {
			t.Errorf("%+v has non-positive phases", r)
		}
		// Paper: CV within 5% for MSA, 1% for inference.
		if r.MSACV > 0.05 {
			t.Errorf("MSA CV %.3f exceeds 5%%", r.MSACV)
		}
		if r.InferenceCV > 0.01 {
			t.Errorf("inference CV %.4f exceeds 1%%", r.InferenceCV)
		}
	}
}

func TestFigure4And5Scaling(t *testing.T) {
	s := suite(t)
	rows, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(MSAThreadSweep) {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Speedup != 1 {
		t.Error("1T speedup must be 1")
	}
	// Steep 1->2 speedup, then diminishing returns (Fig. 5).
	if rows[1].Speedup < 1.6 {
		t.Errorf("2T speedup %.2f, want near 2", rows[1].Speedup)
	}
	gain12 := rows[1].Speedup - rows[0].Speedup
	gain48 := rows[4].Speedup - rows[2].Speedup
	if gain48 >= gain12 {
		t.Errorf("no saturation: 1->2 gain %.2f, 4->8 gain %.2f", gain12, gain48)
	}
}

func TestFigure6InferenceFlat(t *testing.T) {
	s := suite(t)
	rows, err := s.Figure6([]string{"2PV7"}, []platform.Machine{platform.Server()})
	if err != nil {
		t.Fatal(err)
	}
	base, last := rows[0].Seconds, rows[len(rows)-1].Seconds
	if last < base {
		t.Errorf("inference improved with threads: %.1f -> %.1f", base, last)
	}
	if last > base*1.2 {
		t.Errorf("inference degradation too steep: %.1f -> %.1f", base, last)
	}
}

func TestFigure7Shares(t *testing.T) {
	s := suite(t)
	rows, err := s.Figure7([]string{"2PV7", "6QNR"}, TwoPlatforms())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MSAPct+r.InferencePct < 99.9 || r.MSAPct+r.InferencePct > 100.1 {
			t.Errorf("shares do not sum to 100: %+v", r)
		}
		if r.MSAPct < 58 {
			t.Errorf("%s/%s MSA share %.0f%%, want dominant", r.Sample, r.Machine, r.MSAPct)
		}
		if r.OptimalThreads <= 1 {
			t.Errorf("optimal threads = %d, expected parallel benefit", r.OptimalThreads)
		}
	}
	// 6QNR on the server is the paper's 94% extreme.
	for _, r := range rows {
		if r.Sample == "6QNR" && r.Machine == "Server" && r.MSAPct < 85 {
			t.Errorf("6QNR server MSA share %.0f%%, want ~94%%", r.MSAPct)
		}
	}
}

func TestFigure8Contrast(t *testing.T) {
	s := suite(t)
	rows, err := s.Figure8([]string{"2PV7"}, TwoPlatforms())
	if err != nil {
		t.Fatal(err)
	}
	byMach := map[string]BreakdownRow{}
	for _, r := range rows {
		byMach[r.Machine] = r
	}
	if byMach["Server"].OverheadPct() < 70 {
		t.Errorf("server 2PV7 overhead %.0f%%, paper reports >75%%", byMach["Server"].OverheadPct())
	}
	if byMach["Desktop"].Compute < byMach["Desktop"].Init+byMach["Desktop"].Compile {
		t.Error("desktop compute must dominate overheads (Figure 8)")
	}
	if byMach["Server"].Compile <= byMach["Desktop"].Compile {
		t.Error("server XLA compile must be slower (slow clock + H100 autotuning)")
	}
}

func TestTable6Shape(t *testing.T) {
	s := suite(t)
	rows, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) Table6Row {
		for _, r := range rows {
			if r.Label == label {
				return r
			}
		}
		t.Fatalf("missing row %q", label)
		return Table6Row{}
	}
	pf, df := get("Pairformer"), get("Diffusion")
	if df.Per2PV7Seconds <= pf.Per2PV7Seconds {
		t.Error("diffusion must exceed pairformer at 2PV7 (Table VI)")
	}
	attn, mult := get("  triangle attention"), get("  triangle mult. update")
	if attn.Per2PV7Seconds <= mult.Per2PV7Seconds {
		t.Error("triangle attention must dominate the multiplicative update")
	}
	if attn.PromoSeconds/attn.Per2PV7Seconds < 3 {
		t.Errorf("triangle attention growth %.1fx, paper reports >3x",
			attn.PromoSeconds/attn.Per2PV7Seconds)
	}
	glob := get("  global attention")
	if glob.Per2PV7Seconds < 0.5*df.Per2PV7Seconds {
		t.Error("global attention must be the dominant diffusion layer")
	}
}

func TestTable3Contrasts(t *testing.T) {
	s := suite(t)
	cells, err := s.Table3([]string{"2PV7"})
	if err != nil {
		t.Fatal(err)
	}
	get := func(mach string, threads int) Table3Cell {
		for _, c := range cells {
			if c.Machine == mach && c.Threads == threads {
				return c
			}
		}
		t.Fatalf("missing cell %s/%d", mach, threads)
		return Table3Cell{}
	}
	srv1, srv6 := get("Server", 1), get("Server", 6)
	dsk1, dsk6 := get("Desktop", 1), get("Desktop", 6)

	if srv1.IPC <= dsk1.IPC {
		t.Error("Intel IPC must exceed AMD's (Table III)")
	}
	if srv1.DTLBPct > 0.1 || dsk1.DTLBPct < 5 {
		t.Errorf("dTLB contrast wrong: Intel %.2f%%, AMD %.2f%%", srv1.DTLBPct, dsk1.DTLBPct)
	}
	if srv1.BranchPct >= dsk1.BranchPct {
		t.Error("Intel branch miss must be below AMD's")
	}
	if srv1.LLCPct < 30 {
		t.Errorf("Intel 1T LLC miss %.1f%%, want high (small LLC overwhelmed)", srv1.LLCPct)
	}
	if ratio := srv6.LLCPct / srv1.LLCPct; ratio < 0.6 || ratio > 1.4 {
		t.Errorf("Intel LLC miss not roughly flat: %.1f%% -> %.1f%%", srv1.LLCPct, srv6.LLCPct)
	}
	if dsk1.LLCPct > 15 {
		t.Errorf("AMD 1T LLC miss %.1f%%, want low (large LLC)", dsk1.LLCPct)
	}
	if dsk6.LLCPct < dsk1.LLCPct+10 {
		t.Errorf("AMD LLC miss must climb with threads: %.1f%% -> %.1f%%", dsk1.LLCPct, dsk6.LLCPct)
	}
}

func TestTable3PromoRegularity(t *testing.T) {
	s := suite(t)
	cells, err := s.Table3([]string{"2PV7", "promo"})
	if err != nil {
		t.Fatal(err)
	}
	dtlb := map[string]float64{}
	for _, c := range cells {
		if c.Machine == "Desktop" && c.Threads == 4 {
			dtlb[c.Sample] = c.DTLBPct
		}
	}
	if dtlb["promo"] >= dtlb["2PV7"] {
		t.Errorf("promo dTLB (%.1f%%) must be below 2PV7 (%.1f%%): repetitive patterns ease translation (V-B2b)",
			dtlb["promo"], dtlb["2PV7"])
	}
}

func TestTable4Shares(t *testing.T) {
	s := suite(t)
	rows, err := s.Table4([]string{"2PV7"})
	if err != nil {
		t.Fatal(err)
	}
	share := func(metric, fn, col string) float64 {
		for _, r := range rows {
			if r.Metric == metric && r.Function == fn {
				return r.SharePct[col]
			}
		}
		return 0
	}
	band := share("cycles", "calc_band_9", "2PV7/1T") + share("cycles", "calc_band_10", "2PV7/1T")
	if band < 35 {
		t.Errorf("band kernels %.0f%% of cycles, want dominant (Table IV ~55%%)", band)
	}
	if share("cycles", "calc_band_9", "2PV7/1T") < share("cycles", "calc_band_10", "2PV7/1T") {
		t.Error("calc_band_9 must lead calc_band_10")
	}
	if share("cycles", "addbuf", "2PV7/1T") <= 0 || share("cycles", "seebuf", "2PV7/1T") <= 0 {
		t.Error("buffer functions missing")
	}
	// copy_to_iter's cache-miss share must fall from 1T to 4T (Table IV:
	// 46.5% -> 24.5%) as the DP kernels' contention share grows.
	c1 := share("cache-misses", "copy_to_iter", "2PV7/1T")
	c4 := share("cache-misses", "copy_to_iter", "2PV7/4T")
	if c4 >= c1 {
		t.Errorf("copy_to_iter cache-miss share must fall with threads: %.1f%% -> %.1f%%", c1, c4)
	}
	b1 := share("cache-misses", "calc_band_9", "2PV7/1T")
	b4 := share("cache-misses", "calc_band_9", "2PV7/4T")
	if b4 <= b1 {
		t.Errorf("calc_band_9 cache-miss share must rise with threads: %.1f%% -> %.1f%%", b1, b4)
	}
}

func TestTable5Symbols(t *testing.T) {
	s := suite(t)
	rows, err := s.Table5([]string{"2PV7", "promo"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Symbol+"/"+r.Sample] = r.OverheadPct
		if r.OverheadPct <= 0 || r.OverheadPct >= 100 {
			t.Errorf("overhead %.1f%% out of range for %s", r.OverheadPct, r.Symbol)
		}
	}
	if byKey["std::vector::_M_fill_insert/promo"] <= byKey["std::vector::_M_fill_insert/2PV7"] {
		t.Error("fill_insert page-fault share must grow with input size (Table V: 12.99 -> 16.83)")
	}
}

func TestSampleNamesAndPlatforms(t *testing.T) {
	names := SampleNames()
	if len(names) != 5 || names[0] != "2PV7" {
		t.Errorf("sample names = %v", names)
	}
	if len(TwoPlatforms()) != 2 {
		t.Error("platforms wrong")
	}
}

func TestLayerBreakdownSpillVariant(t *testing.T) {
	s := suite(t)
	rows, err := s.LayerBreakdown([]string{"6QNR"}, platform.Desktop())
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, r := range rows {
		total += r.SharePct
	}
	if total < 99.9 || total > 100.1 {
		t.Errorf("layer shares sum to %.1f", total)
	}
}

func TestDNAChainTypeNeverSearched(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("7RCE")
	res, err := s.MSAResult(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.PerChain {
		if c.Type == seq.DNA {
			t.Error("DNA chain searched in pipeline")
		}
	}
}

func TestOptimalThreadsAPI(t *testing.T) {
	s := suite(t)
	in, _ := inputs.ByName("6QNR")
	best, err := s.OptimalThreads(in, platform.Server())
	if err != nil {
		t.Fatal(err)
	}
	if best.Threads <= 1 || best.Threads > 8 {
		t.Errorf("optimal threads = %d", best.Threads)
	}
	// It must actually be the minimum of the sweep.
	for _, th := range MSAThreadSweep {
		pr, err := s.RunPipeline(in, MachineFor(in, platform.Server()), PipelineOptions{Threads: th})
		if err != nil {
			t.Fatal(err)
		}
		if pr.TotalSeconds() < best.TotalSeconds()-1e-9 {
			t.Errorf("sweep found %dT (%.0fs) better than reported optimum %dT (%.0fs)",
				th, pr.TotalSeconds(), best.Threads, best.TotalSeconds())
		}
	}
}

func TestRecommendThreadsNearOptimal(t *testing.T) {
	// The feature-based prediction must land within 12% of the sweep's
	// optimum for every sample on both machines — otherwise the adaptive
	// policy would be worse than just sweeping.
	s := suite(t)
	for _, name := range SampleNames() {
		in, _ := inputs.ByName(name)
		for _, mach := range TwoPlatforms() {
			m := MachineFor(in, mach)
			rec := RecommendThreads(in, m)
			if rec < 1 || rec > m.CPU.Cores {
				t.Fatalf("%s on %s: recommended %d threads", name, m.Name, rec)
			}
			recRun, err := s.RunPipeline(in, m, PipelineOptions{Threads: rec})
			if err != nil {
				t.Fatal(err)
			}
			best, err := s.OptimalThreads(in, mach)
			if err != nil {
				t.Fatal(err)
			}
			if recRun.TotalSeconds() > best.TotalSeconds()*1.12 {
				t.Errorf("%s on %s: recommended %dT = %.0fs vs optimal %dT = %.0fs",
					name, m.Name, rec, recRun.TotalSeconds(), best.Threads, best.TotalSeconds())
			}
		}
	}
}
