package core

import (
	"testing"

	"afsysbench/internal/platform"
)

func batchNames() []string {
	return []string{"2PV7", "7RCE", "1YY9", "2PV7", "7RCE", "1YY9"}
}

func TestRunBatchSequentialBaseline(t *testing.T) {
	s := suite(t)
	res, err := s.RunBatch(batchNames(), platform.Server(), BatchOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 6 {
		t.Fatalf("items = %d", len(res.Items))
	}
	// Sequential makespan equals the sum of all phases.
	var sum float64
	for _, it := range res.Items {
		sum += it.MSASeconds + it.InferenceSeconds
		if it.Finish <= it.Start {
			t.Errorf("%s has non-positive span", it.Sample)
		}
	}
	if diff := res.Makespan - sum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("sequential makespan %.1f != phase sum %.1f", res.Makespan, sum)
	}
	if res.Throughput() <= 0 {
		t.Error("throughput not positive")
	}
}

func TestRunBatchPipelinedBeatsSequential(t *testing.T) {
	s := suite(t)
	mach := platform.Server()
	seq, err := s.RunBatch(batchNames(), mach, BatchOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := s.RunBatch(batchNames(), mach, BatchOptions{Threads: 4, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Makespan >= seq.Makespan {
		t.Errorf("pipelined %.0fs not faster than sequential %.0fs", pipe.Makespan, seq.Makespan)
	}
	// The pipeline cannot beat its slower stage.
	floor := pipe.CPUBusy
	if pipe.GPUBusy > floor {
		floor = pipe.GPUBusy
	}
	if pipe.Makespan < floor-1e-6 {
		t.Errorf("pipelined makespan %.0f below stage floor %.0f", pipe.Makespan, floor)
	}
}

func TestRunBatchWarmModelCutsInference(t *testing.T) {
	s := suite(t)
	mach := platform.Server()
	cold, err := s.RunBatch(batchNames(), mach, BatchOptions{Threads: 4, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.RunBatch(batchNames(), mach, BatchOptions{Threads: 4, Pipelined: true, WarmModel: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.GPUBusy >= cold.GPUBusy {
		t.Error("warm model must reduce total GPU-stage time")
	}
	// First request still pays the cold cost.
	if warm.Items[0].InferenceSeconds <= warm.Items[1].InferenceSeconds {
		t.Error("first request should be the cold one")
	}
	if warm.Makespan >= cold.Makespan {
		t.Error("warm pipeline must improve makespan")
	}
}

func TestRunBatchSchedulingInvariants(t *testing.T) {
	s := suite(t)
	res, err := s.RunBatch(batchNames(), platform.Desktop(), BatchOptions{Threads: 4, Pipelined: true, WarmModel: true})
	if err != nil {
		t.Fatal(err)
	}
	// Requests start in order, never overlap on the same stage, and the
	// makespan is the last finish.
	for i := 1; i < len(res.Items); i++ {
		if res.Items[i].Start < res.Items[i-1].Start {
			t.Error("MSA stage order violated")
		}
	}
	last := res.Items[len(res.Items)-1]
	if res.Makespan != last.Finish {
		t.Errorf("makespan %.1f != last finish %.1f", res.Makespan, last.Finish)
	}
}

func TestRunBatchWarmRecompilesOnShapeChange(t *testing.T) {
	s := suite(t)
	mach := platform.Server()
	// 2PV7 and 7RCE have different token counts, so with exact shape keys
	// the warm second request must still pay XLA compile; repeating 2PV7
	// third hits the already-compiled shape and pays neither init nor
	// compile.
	warm, err := s.RunBatch([]string{"2PV7", "7RCE", "2PV7"}, mach, BatchOptions{
		Threads: 4, Pipelined: true, WarmModel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Items[1].InferenceSeconds <= warm.Items[2].InferenceSeconds {
		t.Errorf("warm new-shape request (%.1fs) must pay compile the repeated shape (%.1fs) skips",
			warm.Items[1].InferenceSeconds, warm.Items[2].InferenceSeconds)
	}
	// A bucket wide enough to hold both samples makes the second request
	// share the first one's compiled graph.
	bucketed, err := s.RunBatch([]string{"2PV7", "7RCE", "2PV7"}, mach, BatchOptions{
		Threads: 4, Pipelined: true, WarmModel: true, Buckets: []int{1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bucketed.Items[1].InferenceSeconds >= warm.Items[1].InferenceSeconds {
		t.Errorf("bucketed warm request (%.1fs) must skip the compile the exact-shape one (%.1fs) pays",
			bucketed.Items[1].InferenceSeconds, warm.Items[1].InferenceSeconds)
	}
	// The jitter draw is shared (same run index), so the gap is exactly
	// the compile bar — the bucketed run is otherwise identical.
	if bucketed.Items[0].InferenceSeconds != warm.Items[0].InferenceSeconds {
		t.Error("bucketing must not change the cold first request")
	}
}

func TestRunBatchErrors(t *testing.T) {
	s := suite(t)
	if _, err := s.RunBatch(nil, platform.Server(), BatchOptions{}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := s.RunBatch([]string{"nope"}, platform.Server(), BatchOptions{}); err == nil {
		t.Error("unknown sample accepted")
	}
}

func TestRunBatch6QNRUsesUpgradedDesktop(t *testing.T) {
	s := suite(t)
	// 6QNR on the stock desktop requires the paper's DRAM-upgrade
	// substitution; the batch path must apply it rather than fail.
	res, err := s.RunBatch([]string{"6QNR"}, platform.Desktop(), BatchOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 {
		t.Fatal("6QNR batch item missing")
	}
}
