package core

import (
	"fmt"

	"afsysbench/internal/batch"
	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
)

// Batch scheduling — the orchestration direction the paper's Related Work
// surveys (ParaFold-style CPU/GPU pipelining) combined with its own §VI
// persistent-model recommendation. Stock AF3 processes requests strictly
// sequentially in a fresh container: MSA (CPU), then inference (GPU, cold
// init + XLA compile), then the next request. A pipelined server overlaps
// request i+1's CPU-bound MSA with request i's GPU-bound inference and
// keeps the compiled model resident.

// BatchOptions configure a batch run.
type BatchOptions struct {
	// Threads is the per-request worker count, covering both the MSA scan
	// shards and the compute-engine pool (see PipelineOptions.Threads).
	Threads int
	// Pipelined overlaps MSA(i+1) with inference(i) (ParaFold-style
	// two-stage pipeline). Sequential otherwise.
	Pipelined bool
	// WarmModel keeps the model initialized between requests (§VI): only
	// the first request pays device init, and XLA compile is paid once per
	// distinct graph shape — a warm model still recompiles when the token
	// count (or shape bucket, see Buckets) changes between samples.
	WarmModel bool
	// Buckets optionally coarsens the shape key that decides whether a
	// warm model must recompile: token counts padded into the same bucket
	// (internal/batch semantics — smallest bucket ≥ tokens, overflow keyed
	// exact) share one compiled graph. nil keys per exact token count, so
	// any shape change recompiles.
	Buckets []int
}

// BatchItem is one request's schedule.
type BatchItem struct {
	Sample           string
	MSASeconds       float64
	InferenceSeconds float64
	// Start/Finish are the request's span on the batch timeline.
	Start, Finish float64
}

// Latency returns the request's end-to-end latency.
func (b BatchItem) Latency() float64 { return b.Finish - b.Start }

// BatchResult summarizes a batch run.
type BatchResult struct {
	Machine   string
	Pipelined bool
	WarmModel bool
	Items     []BatchItem
	// Makespan is the wall time to finish all requests.
	Makespan float64
	// CPUBusy/GPUBusy are the stages' total busy times (utilization =
	// busy/makespan).
	CPUBusy, GPUBusy float64
}

// Throughput returns requests per hour.
func (r *BatchResult) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Items)) / r.Makespan * 3600
}

// RunBatch schedules the named samples on one machine. Per-request phase
// times come from the usual pipeline models; the scheduler composes them
// sequentially or as a two-stage pipeline.
func (s *Suite) RunBatch(names []string, mach platform.Machine, opts BatchOptions) (*BatchResult, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	res := &BatchResult{Machine: mach.Name, Pipelined: opts.Pipelined, WarmModel: opts.WarmModel}

	// Phase times per request. A warm model skips device init after the
	// first request, but XLA compile is keyed by graph shape: a sample
	// whose shape bucket has not been compiled yet still pays the compiler
	// (the old behavior skipped compile for every warm request even when
	// the sequence length — and thus the compiled graph — changed).
	pol := batch.NewPolicy(opts.Buckets)
	compiled := make(map[int]bool)
	type phases struct{ msa, inf float64 }
	reqs := make([]phases, 0, len(names))
	for i, name := range names {
		in, err := inputs.ByName(name)
		if err != nil {
			return nil, err
		}
		m := MachineFor(in, mach)
		shape := pol.PadTo(in.TotalResidues())
		warm := opts.WarmModel && i > 0
		pr, err := s.RunPipeline(in, m, PipelineOptions{
			Threads:        opts.Threads,
			RunIndex:       i,
			WarmStart:      warm,
			RecompileShape: warm && !compiled[shape],
		})
		if err != nil {
			return nil, err
		}
		compiled[shape] = true
		reqs = append(reqs, phases{msa: pr.MSASeconds, inf: pr.Inference.Total()})
	}

	// Schedule.
	var cpuFree, gpuFree float64
	for i, r := range reqs {
		msaStart := cpuFree
		msaEnd := msaStart + r.msa
		cpuFree = msaEnd

		infStart := msaEnd
		if opts.Pipelined {
			// GPU picks the request up as soon as both its MSA is done
			// and the device is free.
			if gpuFree > infStart {
				infStart = gpuFree
			}
		} else {
			// Sequential: nothing else runs during inference; the CPU
			// stage of the next request waits too.
			cpuFree = msaEnd + r.inf
			infStart = msaEnd
		}
		infEnd := infStart + r.inf
		gpuFree = infEnd

		res.Items = append(res.Items, BatchItem{
			Sample:           names[i],
			MSASeconds:       r.msa,
			InferenceSeconds: r.inf,
			Start:            msaStart,
			Finish:           infEnd,
		})
		res.CPUBusy += r.msa
		res.GPUBusy += r.inf
		if infEnd > res.Makespan {
			res.Makespan = infEnd
		}
	}
	return res, nil
}
