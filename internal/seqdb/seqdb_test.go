package seqdb

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
)

func testSpec() Spec {
	return Spec{
		Name:    "testdb",
		Type:    seq.Protein,
		NumSeqs: 50,
		MeanLen: 120,
		Seed:    1,
	}
}

func TestGenerateBasic(t *testing.T) {
	db, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSeqs() != 50 {
		t.Fatalf("NumSeqs = %d, want 50", db.NumSeqs())
	}
	for _, s := range db.Seqs {
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
		if s.Len() < 20 {
			t.Fatalf("record %s shorter than MinLen floor: %d", s.ID, s.Len())
		}
	}
	if db.ScaleFactor != 1 {
		t.Errorf("default ScaleFactor = %v, want 1", db.ScaleFactor)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSeqs() != b.NumSeqs() {
		t.Fatal("record counts differ")
	}
	for i := range a.Seqs {
		if !bytes.Equal(a.Seqs[i].Residues, b.Seqs[i].Residues) {
			t.Fatalf("record %d differs between identical specs", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := testSpec()
	bad.NumSeqs = -1
	if _, err := Generate(bad); err == nil {
		t.Error("negative NumSeqs accepted")
	}
	bad = testSpec()
	bad.Type = seq.Ligand
	if _, err := Generate(bad); err == nil {
		t.Error("ligand database accepted")
	}
	bad = testSpec()
	bad.MeanLen = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero MeanLen accepted")
	}
}

func TestHomologPlanting(t *testing.T) {
	g := seq.NewGenerator(rng.New(42))
	query := g.Random("query", seq.Protein, 200)
	spec := testSpec()
	spec.Homologs = []*seq.Sequence{query}
	spec.HomologsPerQuery = 5
	db, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	homs := 0
	frags := 0
	for _, s := range db.Seqs {
		switch {
		case strings.Contains(s.ID, "|hom"):
			homs++
			if s.Len() != query.Len() {
				t.Errorf("homolog %s length %d, want %d", s.ID, s.Len(), query.Len())
			}
			// Closest homolog diverges ~5%; all must share most residues.
			same := 0
			for i := range s.Residues {
				if s.Residues[i] == query.Residues[i] {
					same++
				}
			}
			if float64(same)/float64(s.Len()) < 0.45 {
				t.Errorf("homolog %s shares only %d/%d residues", s.ID, same, s.Len())
			}
		case strings.Contains(s.ID, "|frag"):
			frags++
		}
	}
	if homs != 5 {
		t.Errorf("planted %d homologs, want 5", homs)
	}
	if frags != 1 {
		t.Errorf("planted %d fragments, want 1", frags)
	}
}

func TestHomologTypeMismatchSkipped(t *testing.T) {
	g := seq.NewGenerator(rng.New(1))
	rnaQuery := g.Random("q", seq.RNA, 100)
	spec := testSpec() // protein DB
	spec.Homologs = []*seq.Sequence{rnaQuery}
	spec.HomologsPerQuery = 3
	db, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range db.Seqs {
		if strings.Contains(s.ID, "|hom") {
			t.Fatal("RNA homolog planted in protein database")
		}
	}
}

func TestLowComplexityRecords(t *testing.T) {
	spec := testSpec()
	spec.LowComplexFrac = 1.0
	db, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range db.Seqs {
		c := s.Complexity()
		if c.Entropy > 2.0 {
			t.Errorf("low-complexity record %s has entropy %v", s.ID, c.Entropy)
		}
	}
	// Must include glutamine-rich content for poly-Q collisions.
	foundQ := false
	for _, s := range db.Seqs {
		run := 0
		for _, r := range s.Residues {
			if r == seq.QIndex {
				run++
				if run >= 4 {
					foundQ = true
				}
			} else {
				run = 0
			}
		}
	}
	if !foundQ {
		t.Error("no glutamine runs in low-complexity records")
	}
}

func TestSizeAccounting(t *testing.T) {
	spec := testSpec()
	spec.ScaleFactor = 1000
	db, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(buf.Len()), db.SyntheticBytes(); got != want {
		t.Errorf("encoded size %d != SyntheticBytes %d", got, want)
	}
	if db.ModeledBytes() != db.SyntheticBytes()*1000 {
		t.Errorf("ModeledBytes = %d, want %d", db.ModeledBytes(), db.SyntheticBytes()*1000)
	}
	if db.TotalResidues() <= 0 {
		t.Error("TotalResidues not positive")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	spec := testSpec()
	spec.ScaleFactor = 123.5
	db, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != db.Name || got.Type != db.Type || got.ScaleFactor != db.ScaleFactor {
		t.Errorf("metadata mismatch: %+v vs %+v", got, db)
	}
	if got.NumSeqs() != db.NumSeqs() {
		t.Fatalf("record count %d, want %d", got.NumSeqs(), db.NumSeqs())
	}
	for i := range db.Seqs {
		if got.Seqs[i].ID != db.Seqs[i].ID || !bytes.Equal(got.Seqs[i].Residues, db.Seqs[i].Residues) {
			t.Fatalf("record %d mismatched", i)
		}
	}
}

func TestScannerStreams(t *testing.T) {
	db, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sc, meta, err := OpenScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Name != db.Name {
		t.Errorf("scanner metadata name %q, want %q", meta.Name, db.Name)
	}
	count := 0
	for sc.Scan() {
		if sc.Seq() == nil {
			t.Fatal("nil record from scanner")
		}
		count++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != db.NumSeqs() {
		t.Errorf("scanned %d records, want %d", count, db.NumSeqs())
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE000000000000000000000"))); err == nil {
		t.Error("bad magic accepted")
	}
	db, _ := Generate(testSpec())
	var buf bytes.Buffer
	_ = db.Write(&buf)
	// Truncate mid-record.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated database accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		spec := Spec{Name: "q", Type: seq.RNA, NumSeqs: int(n) % 20, MeanLen: 50, Seed: seed}
		db, err := Generate(spec)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := db.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.NumSeqs() != db.NumSeqs() {
			return false
		}
		for i := range db.Seqs {
			if !bytes.Equal(got.Seqs[i].Residues, db.Seqs[i].Residues) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRobustToGarbage(t *testing.T) {
	// Random byte streams must produce errors, never panics or corrupt
	// databases.
	r := rng.New(88)
	valid, _ := Generate(testSpec())
	var img bytes.Buffer
	_ = valid.Write(&img)
	base := img.Bytes()
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), base...)
		// Flip a handful of random bytes.
		for k := 0; k < 5; k++ {
			pos := r.Intn(len(corrupted))
			corrupted[pos] ^= byte(1 + r.Intn(255))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Read panicked on corrupted image: %v", p)
				}
			}()
			db, err := Read(bytes.NewReader(corrupted))
			if err == nil {
				// A lucky parse must still be structurally sound.
				for _, s := range db.Seqs {
					_ = s.Len()
				}
			}
		}()
	}
}

func TestReadProfileGarbage(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(400)
		junk := make([]byte, n)
		for i := range junk {
			junk[i] = byte(r.Intn(256))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("garbage parse panicked: %v", p)
				}
			}()
			_, _ = Read(bytes.NewReader(junk))
			_, _ = ReadIndex(bytes.NewReader(junk))
		}()
	}
}
