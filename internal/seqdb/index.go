package seqdb

import (
	"encoding/binary"
	"fmt"
	"io"

	"afsysbench/internal/seq"
)

// Random access. The database format is sequential (the MSA scan's access
// pattern), but hit post-processing needs to re-fetch individual records —
// realigning a reported target, rendering an alignment — without holding
// the whole database in memory. An Index maps record ordinals and IDs to
// byte offsets; a RandomReader serves records from any io.ReaderAt.

// Index locates every record of one database file.
type Index struct {
	// Name is the indexed database's name.
	Name string
	// Offsets[i] is the byte offset of record i's header.
	Offsets []int64
	// Lengths[i] is record i's residue count.
	Lengths []int32
	ids     map[string]int
	idList  []string
}

// NumRecords returns the indexed record count.
func (ix *Index) NumRecords() int { return len(ix.Offsets) }

// Lookup returns the ordinal of the record with the given ID.
func (ix *Index) Lookup(id string) (int, bool) {
	n, ok := ix.ids[id]
	return n, ok
}

// ID returns record i's identifier.
func (ix *Index) ID(i int) string { return ix.idList[i] }

// BuildIndex scans an encoded database stream and produces its index.
func BuildIndex(r io.Reader) (*Index, error) {
	db, sc, err := openHeader(r)
	if err != nil {
		return nil, err
	}
	ix := &Index{Name: db.Name, ids: make(map[string]int)}
	offset := int64(headerSize + len(db.Name))
	for sc.Scan() {
		rec := sc.Seq()
		ix.Offsets = append(ix.Offsets, offset)
		ix.Lengths = append(ix.Lengths, int32(rec.Len()))
		ix.ids[rec.ID] = len(ix.idList)
		ix.idList = append(ix.idList, rec.ID)
		offset += recordOverhead + int64(len(rec.ID)) + int64(rec.Len())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ix, nil
}

// RandomReader serves individual records from a database image.
type RandomReader struct {
	ra      io.ReaderAt
	ix      *Index
	molType seq.MoleculeType
}

// NewRandomReader opens the database image held by ra using its index.
// The molecule type comes from the header at offset 0.
func NewRandomReader(ra io.ReaderAt, ix *Index) (*RandomReader, error) {
	head := make([]byte, headerSize)
	if _, err := ra.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("seqdb: reading header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("seqdb: bad magic %q", head[:4])
	}
	return &RandomReader{ra: ra, ix: ix, molType: seq.MoleculeType(head[6])}, nil
}

// Record fetches record i.
func (rr *RandomReader) Record(i int) (*seq.Sequence, error) {
	if i < 0 || i >= rr.ix.NumRecords() {
		return nil, fmt.Errorf("seqdb: record %d out of range [0,%d)", i, rr.ix.NumRecords())
	}
	off := rr.ix.Offsets[i]
	var lenBuf [2]byte
	if _, err := rr.ra.ReadAt(lenBuf[:], off); err != nil {
		return nil, fmt.Errorf("seqdb: record %d id length: %w", i, err)
	}
	idLen := int64(binary.BigEndian.Uint16(lenBuf[:]))
	body := make([]byte, idLen+4+int64(rr.ix.Lengths[i]))
	if _, err := rr.ra.ReadAt(body, off+2); err != nil {
		return nil, fmt.Errorf("seqdb: record %d body: %w", i, err)
	}
	id := string(body[:idLen])
	seqLen := binary.BigEndian.Uint32(body[idLen : idLen+4])
	if int32(seqLen) != rr.ix.Lengths[i] {
		return nil, fmt.Errorf("seqdb: record %d length mismatch: index %d, file %d", i, rr.ix.Lengths[i], seqLen)
	}
	res := make([]byte, seqLen)
	copy(res, body[idLen+4:])
	return &seq.Sequence{ID: id, Type: rr.molType, Residues: res}, nil
}

// RecordByID fetches the record with the given identifier.
func (rr *RandomReader) RecordByID(id string) (*seq.Sequence, error) {
	i, ok := rr.ix.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("seqdb: no record %q in index", id)
	}
	return rr.Record(i)
}

// Index sidecar serialization:
//
//	magic "AFIX" | uint16 version | uint16 nameLen | name | uint32 count |
//	per record: int64 offset | int32 length | uint16 idLen | id
const indexMagic = "AFIX"

// WriteIndex serializes the index as a sidecar file.
func (ix *Index) WriteIndex(w io.Writer) error {
	buf := make([]byte, 0, 64)
	buf = append(buf, indexMagic...)
	buf = binary.BigEndian.AppendUint16(buf, formatVersion)
	if len(ix.Name) > 0xffff {
		return fmt.Errorf("seqdb: index name too long")
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ix.Name)))
	buf = append(buf, ix.Name...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(ix.NumRecords()))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for i := range ix.Offsets {
		rec := make([]byte, 0, 16+len(ix.idList[i]))
		rec = binary.BigEndian.AppendUint64(rec, uint64(ix.Offsets[i]))
		rec = binary.BigEndian.AppendUint32(rec, uint32(ix.Lengths[i]))
		rec = binary.BigEndian.AppendUint16(rec, uint16(len(ix.idList[i])))
		rec = append(rec, ix.idList[i]...)
		if _, err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// ReadIndex deserializes a sidecar index.
func ReadIndex(r io.Reader) (*Index, error) {
	head := make([]byte, 8)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("seqdb: reading index header: %w", err)
	}
	if string(head[:4]) != indexMagic {
		return nil, fmt.Errorf("seqdb: bad index magic %q", head[:4])
	}
	if v := binary.BigEndian.Uint16(head[4:6]); v != formatVersion {
		return nil, fmt.Errorf("seqdb: unsupported index version %d", v)
	}
	nameLen := int(binary.BigEndian.Uint16(head[6:8]))
	nameBuf := make([]byte, nameLen+4)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return nil, fmt.Errorf("seqdb: reading index name: %w", err)
	}
	ix := &Index{Name: string(nameBuf[:nameLen]), ids: make(map[string]int)}
	count := int(binary.BigEndian.Uint32(nameBuf[nameLen:]))
	for i := 0; i < count; i++ {
		fixed := make([]byte, 14)
		if _, err := io.ReadFull(r, fixed); err != nil {
			return nil, fmt.Errorf("seqdb: reading index record %d: %w", i, err)
		}
		idLen := int(binary.BigEndian.Uint16(fixed[12:14]))
		id := make([]byte, idLen)
		if _, err := io.ReadFull(r, id); err != nil {
			return nil, fmt.Errorf("seqdb: reading index id %d: %w", i, err)
		}
		ix.Offsets = append(ix.Offsets, int64(binary.BigEndian.Uint64(fixed[:8])))
		ix.Lengths = append(ix.Lengths, int32(binary.BigEndian.Uint32(fixed[8:12])))
		ix.ids[string(id)] = i
		ix.idList = append(ix.idList, string(id))
	}
	return ix, nil
}
