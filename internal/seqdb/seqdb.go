// Package seqdb synthesizes and stores the reference sequence databases the
// MSA phase searches. The real AlphaFold3 pipeline scans UniRef/MGnify-scale
// protein corpora (tens of GiB) and Rfam/RNACentral-scale nucleotide corpora
// (the paper cites an 89 GiB RNA database); here each corpus is generated
// deterministically at MiB scale and carries a ScaleFactor that maps its
// synthetic size onto the paper-scale footprint for the storage and
// page-cache models.
//
// A generated database is not pure noise: it contains planted homologs of
// the benchmark chains (so profile searches find genuine relatives, as real
// searches do), fragment decoys (partial local matches), and a configurable
// fraction of low-complexity records (compositionally biased sequence that
// makes poly-Q queries explode with ambiguous partial hits — the promo
// sample's failure mode).
package seqdb

import (
	"fmt"

	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
)

// DB is an in-memory reference database plus the metadata the system models
// need (total on-disk bytes at synthetic and paper scale).
type DB struct {
	Name string
	Type seq.MoleculeType
	Seqs []*seq.Sequence

	// ScaleFactor maps synthetic bytes to modeled paper-scale bytes: the
	// storage and page-cache simulators treat the database as occupying
	// SyntheticBytes()*ScaleFactor bytes of DRAM/disk.
	ScaleFactor float64
}

// Spec describes a database to generate.
type Spec struct {
	Name    string
	Type    seq.MoleculeType
	NumSeqs int
	// MeanLen is the mean record length; lengths are drawn from an
	// exponential around it with a floor of MinLen.
	MeanLen int
	MinLen  int
	// LowComplexFrac is the fraction of records generated with strongly
	// biased composition (repeat-rich), the bait for poly-Q queries.
	LowComplexFrac float64
	// Homologs lists query chains to plant relatives of. For each chain,
	// HomologsPerQuery mutated copies are inserted at divergence rates
	// spread over [0.05, 0.5].
	Homologs         []*seq.Sequence
	HomologsPerQuery int
	// ScaleFactor for the generated DB (see DB.ScaleFactor). Zero means 1.
	ScaleFactor float64
	Seed        uint64
}

// Generate builds a database from the spec. Generation is deterministic in
// Spec.Seed and the spec contents.
func Generate(spec Spec) (*DB, error) {
	if spec.NumSeqs < 0 {
		return nil, fmt.Errorf("seqdb: negative NumSeqs %d", spec.NumSeqs)
	}
	if spec.Type.Alphabet() == "" {
		return nil, fmt.Errorf("seqdb: molecule type %v has no alphabet", spec.Type)
	}
	if spec.MeanLen <= 0 {
		return nil, fmt.Errorf("seqdb: MeanLen must be positive, got %d", spec.MeanLen)
	}
	minLen := spec.MinLen
	if minLen <= 0 {
		minLen = 20
	}
	scale := spec.ScaleFactor
	if scale == 0 {
		scale = 1
	}
	src := rng.New(spec.Seed)
	gen := seq.NewGenerator(src.Split(1))
	lenRng := src.Split(2)
	kindRng := src.Split(3)

	db := &DB{Name: spec.Name, Type: spec.Type, ScaleFactor: scale}
	db.Seqs = make([]*seq.Sequence, 0, spec.NumSeqs+len(spec.Homologs)*spec.HomologsPerQuery)

	drawLen := func() int {
		l := int(float64(spec.MeanLen) * lenRng.ExpFloat64())
		if l < minLen {
			l = minLen
		}
		return l
	}

	for i := 0; i < spec.NumSeqs; i++ {
		id := fmt.Sprintf("%s|%06d@sp%02d", spec.Name, i, kindRng.Intn(speciesPool))
		l := drawLen()
		var s *seq.Sequence
		if kindRng.Float64() < spec.LowComplexFrac {
			s = lowComplexity(gen, id, spec.Type, l)
		} else {
			s = gen.Random(id, spec.Type, l)
		}
		db.Seqs = append(db.Seqs, s)
	}

	// Plant homologs at a ladder of divergence rates so iterative searches
	// recruit progressively more distant relatives. Homolog h of every
	// query carries species tag sp<h>: relatives of different chains from
	// the same organism, which is what cross-chain MSA pairing matches.
	for qi, q := range spec.Homologs {
		if q.Type != spec.Type {
			continue
		}
		for h := 0; h < spec.HomologsPerQuery; h++ {
			rate := 0.05 + 0.45*float64(h)/float64(maxInt(spec.HomologsPerQuery-1, 1))
			id := fmt.Sprintf("%s|hom%02d_%02d@sp%02d", spec.Name, qi, h, h)
			db.Seqs = append(db.Seqs, gen.Mutate(q, id, rate))
		}
		// One fragment decoy per query: a local-only match.
		fragLen := q.Len() / 3
		if fragLen >= minLen {
			id := fmt.Sprintf("%s|frag%02d@sp%02d", spec.Name, qi, speciesPool-1)
			db.Seqs = append(db.Seqs, gen.Fragment(q, id, fragLen))
		}
	}
	return db, nil
}

// speciesPool is the number of distinct organism tags synthetic records
// draw from.
const speciesPool = 24

// SpeciesOf extracts the organism tag from a record identifier (the part
// after '@'), or "" when untagged.
func SpeciesOf(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '@' {
			return id[i+1:]
		}
	}
	return ""
}

// lowComplexity emits a record dominated by short repeats over a tiny
// residue subset (2–3 letters), including glutamine for protein so that
// poly-Q queries collide with it.
func lowComplexity(g *seq.Generator, id string, t seq.MoleculeType, length int) *seq.Sequence {
	s := g.Random(id, t, length)
	// Overwrite with runs drawn from a restricted palette.
	palette := []byte{0, 1}
	if t == seq.Protein {
		palette = []byte{seq.QIndex, 0, 4} // Q, A, F
	}
	i := 0
	pi := 0
	for i < length {
		run := 4 + (i*7)%9 // deterministic pseudo-run lengths 4..12
		r := palette[pi%len(palette)]
		pi++
		for j := 0; j < run && i < length; j++ {
			s.Residues[i] = r
			i++
		}
	}
	return s
}

// NumSeqs returns the record count.
func (db *DB) NumSeqs() int { return len(db.Seqs) }

// TotalResidues returns the summed record lengths.
func (db *DB) TotalResidues() int {
	var n int
	for _, s := range db.Seqs {
		n += s.Len()
	}
	return n
}

// SyntheticBytes returns the approximate on-disk size of the database in its
// binary encoding (header + per-record overhead + residues).
func (db *DB) SyntheticBytes() int64 {
	n := int64(headerSize + len(db.Name))
	for _, s := range db.Seqs {
		n += recordOverhead + int64(len(s.ID)) + int64(s.Len())
	}
	return n
}

// ModeledBytes returns the paper-scale footprint used by the storage and
// page-cache models.
func (db *DB) ModeledBytes() int64 {
	return int64(float64(db.SyntheticBytes()) * db.ScaleFactor)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
