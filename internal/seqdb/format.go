package seqdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"afsysbench/internal/seq"
)

// Binary database format:
//
//	header:  magic "AFDB" | uint16 version | uint8 moleculeType |
//	         uint32 numSeqs | float64 scaleFactor | uint16 nameLen | name
//	record:  uint16 idLen | id | uint32 seqLen | residues (1 byte each)
//
// The format is deliberately simple and sequential: the MSA stage streams
// it front to back, which is the access pattern whose page-cache behavior
// the storage model reproduces.
const (
	magic          = "AFDB"
	formatVersion  = 1
	headerSize     = 4 + 2 + 1 + 4 + 8 + 2
	recordOverhead = 2 + 4
	// maxRecordLen bounds a single record's residue count on decode so a
	// corrupted length field cannot trigger a giant allocation.
	maxRecordLen = 64 << 20
)

// Write encodes the database to w.
func (db *DB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if len(db.Name) > 0xffff {
		return fmt.Errorf("seqdb: name too long (%d bytes)", len(db.Name))
	}
	hdr := make([]byte, 0, headerSize)
	hdr = binary.BigEndian.AppendUint16(hdr, formatVersion)
	hdr = append(hdr, byte(db.Type))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(db.Seqs)))
	hdr = binary.BigEndian.AppendUint64(hdr, floatBits(db.ScaleFactor))
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(len(db.Name)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.WriteString(db.Name); err != nil {
		return err
	}
	for _, s := range db.Seqs {
		if len(s.ID) > 0xffff {
			return fmt.Errorf("seqdb: record id too long (%d bytes)", len(s.ID))
		}
		rec := make([]byte, 0, recordOverhead+len(s.ID))
		rec = binary.BigEndian.AppendUint16(rec, uint16(len(s.ID)))
		rec = append(rec, s.ID...)
		rec = binary.BigEndian.AppendUint32(rec, uint32(s.Len()))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
		if _, err := bw.Write(s.Residues); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a database written by Write.
func Read(r io.Reader) (*DB, error) {
	db, sc, err := openHeader(r)
	if err != nil {
		return nil, err
	}
	db.Seqs = make([]*seq.Sequence, 0, sc.remaining)
	for sc.Scan() {
		db.Seqs = append(db.Seqs, sc.Seq())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

// OpenScanner reads the header from r and returns a streaming Scanner over
// the records, for callers that must not hold the whole database in memory.
func OpenScanner(r io.Reader) (*Scanner, *DB, error) {
	db, sc, err := openHeader(r)
	return sc, db, err
}

func openHeader(r io.Reader) (*DB, *Scanner, error) {
	br := bufio.NewReader(r)
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, nil, fmt.Errorf("seqdb: reading header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, nil, fmt.Errorf("seqdb: bad magic %q", head[:4])
	}
	if v := binary.BigEndian.Uint16(head[4:6]); v != formatVersion {
		return nil, nil, fmt.Errorf("seqdb: unsupported format version %d", v)
	}
	db := &DB{Type: seq.MoleculeType(head[6])}
	numSeqs := int(binary.BigEndian.Uint32(head[7:11]))
	db.ScaleFactor = bitsFloat(binary.BigEndian.Uint64(head[11:19]))
	nameLen := int(binary.BigEndian.Uint16(head[19:21]))
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, nil, fmt.Errorf("seqdb: reading name: %w", err)
	}
	db.Name = string(name)
	return db, &Scanner{br: br, remaining: numSeqs, molType: db.Type}, nil
}

// Scanner streams database records one at a time.
type Scanner struct {
	br        *bufio.Reader
	remaining int
	molType   seq.MoleculeType
	cur       *seq.Sequence
	err       error
}

// Scan advances to the next record, returning false at end of input or on
// error (check Err).
func (s *Scanner) Scan() bool {
	if s.err != nil || s.remaining == 0 {
		return false
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(s.br, lenBuf[:2]); err != nil {
		s.err = fmt.Errorf("seqdb: reading record id length: %w", err)
		return false
	}
	idLen := int(binary.BigEndian.Uint16(lenBuf[:2]))
	id := make([]byte, idLen)
	if _, err := io.ReadFull(s.br, id); err != nil {
		s.err = fmt.Errorf("seqdb: reading record id: %w", err)
		return false
	}
	if _, err := io.ReadFull(s.br, lenBuf[:4]); err != nil {
		s.err = fmt.Errorf("seqdb: reading record length: %w", err)
		return false
	}
	seqLen := int(binary.BigEndian.Uint32(lenBuf[:4]))
	if seqLen > maxRecordLen {
		s.err = fmt.Errorf("seqdb: record length %d exceeds limit %d (corrupt stream?)", seqLen, maxRecordLen)
		return false
	}
	res := make([]byte, seqLen)
	if _, err := io.ReadFull(s.br, res); err != nil {
		s.err = fmt.Errorf("seqdb: reading residues: %w", err)
		return false
	}
	s.cur = &seq.Sequence{ID: string(id), Type: s.molType, Residues: res}
	s.remaining--
	return true
}

// Seq returns the current record after a successful Scan.
func (s *Scanner) Seq() *seq.Sequence { return s.cur }

// Err returns the first error encountered while scanning.
func (s *Scanner) Err() error { return s.err }

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
