package seqdb

import (
	"bytes"
	"testing"
)

func encoded(t *testing.T) (*DB, []byte) {
	t.Helper()
	db, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return db, buf.Bytes()
}

func TestBuildIndexCoversAllRecords(t *testing.T) {
	db, img := encoded(t)
	ix, err := BuildIndex(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Name != db.Name {
		t.Errorf("index name %q", ix.Name)
	}
	if ix.NumRecords() != db.NumSeqs() {
		t.Fatalf("index has %d records, want %d", ix.NumRecords(), db.NumSeqs())
	}
	for i, s := range db.Seqs {
		if ix.ID(i) != s.ID {
			t.Fatalf("record %d id %q, want %q", i, ix.ID(i), s.ID)
		}
		if int(ix.Lengths[i]) != s.Len() {
			t.Fatalf("record %d length mismatch", i)
		}
		if n, ok := ix.Lookup(s.ID); !ok || n != i {
			t.Fatalf("lookup %q = (%d,%v)", s.ID, n, ok)
		}
	}
	if _, ok := ix.Lookup("missing"); ok {
		t.Error("lookup of missing id succeeded")
	}
}

func TestRandomReaderFetchesExactRecords(t *testing.T) {
	db, img := encoded(t)
	ix, err := BuildIndex(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRandomReader(bytes.NewReader(img), ix)
	if err != nil {
		t.Fatal(err)
	}
	// Fetch records out of order.
	for _, i := range []int{db.NumSeqs() - 1, 0, db.NumSeqs() / 2, 3} {
		rec, err := rr.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		want := db.Seqs[i]
		if rec.ID != want.ID || !bytes.Equal(rec.Residues, want.Residues) || rec.Type != want.Type {
			t.Fatalf("record %d mismatched", i)
		}
	}
	byID, err := rr.RecordByID(db.Seqs[7].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(byID.Residues, db.Seqs[7].Residues) {
		t.Error("RecordByID mismatched")
	}
}

func TestRandomReaderErrors(t *testing.T) {
	_, img := encoded(t)
	ix, _ := BuildIndex(bytes.NewReader(img))
	rr, _ := NewRandomReader(bytes.NewReader(img), ix)
	if _, err := rr.Record(-1); err == nil {
		t.Error("negative ordinal accepted")
	}
	if _, err := rr.Record(ix.NumRecords()); err == nil {
		t.Error("out-of-range ordinal accepted")
	}
	if _, err := rr.RecordByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := NewRandomReader(bytes.NewReader([]byte("JUNKJUNKJUNKJUNKJUNKJUNK")), ix); err == nil {
		t.Error("bad image accepted")
	}
	// Truncated image: record reads must fail cleanly.
	trunc := img[:ix.Offsets[ix.NumRecords()-1]+1]
	rr2, err := NewRandomReader(bytes.NewReader(trunc), ix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr2.Record(ix.NumRecords() - 1); err == nil {
		t.Error("truncated record read succeeded")
	}
}

func TestIndexSidecarRoundTrip(t *testing.T) {
	_, img := encoded(t)
	ix, err := BuildIndex(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	var side bytes.Buffer
	if err := ix.WriteIndex(&side); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&side)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ix.Name || got.NumRecords() != ix.NumRecords() {
		t.Fatal("sidecar metadata mismatched")
	}
	for i := range ix.Offsets {
		if got.Offsets[i] != ix.Offsets[i] || got.Lengths[i] != ix.Lengths[i] || got.ID(i) != ix.ID(i) {
			t.Fatalf("sidecar record %d mismatched", i)
		}
	}
	// The round-tripped index must still serve random reads.
	rr, err := NewRandomReader(bytes.NewReader(img), got)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Record(0); err != nil {
		t.Fatal(err)
	}
}

func TestReadIndexRejectsCorrupt(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("XXXX0000"))); err == nil {
		t.Error("bad magic accepted")
	}
	_, img := encoded(t)
	ix, _ := BuildIndex(bytes.NewReader(img))
	var side bytes.Buffer
	_ = ix.WriteIndex(&side)
	trunc := side.Bytes()[:side.Len()/2]
	if _, err := ReadIndex(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated sidecar accepted")
	}
}
