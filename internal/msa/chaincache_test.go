package msa

import (
	"errors"
	"reflect"
	"testing"

	"afsysbench/internal/inputs"
)

// mapChainCache is a ChainFetch over a plain map, optionally round-tripping
// every stored snapshot through the gob codec to prove the serialized form
// replays byte-identically.
type mapChainCache struct {
	entries   map[string]*CachedChain
	viaCodec  bool
	hits      int
	misses    int
	lastSizes []int64
}

func (m *mapChainCache) fetch(scope string, chain inputs.Chain, compute func() (*CachedChain, error)) (*CachedChain, bool, error) {
	key := scope + "|" + ChainFingerprint(chain)
	if cc, ok := m.entries[key]; ok {
		m.hits++
		return cc, true, nil
	}
	cc, err := compute()
	if err != nil {
		return nil, false, err
	}
	m.misses++
	m.lastSizes = append(m.lastSizes, cc.SizeBytes())
	if m.viaCodec {
		b, err := cc.Encode()
		if err != nil {
			return nil, false, err
		}
		cc, err = DecodeCachedChain(b)
		if err != nil {
			return nil, false, err
		}
	}
	m.entries[key] = cc
	return cc, false, nil
}

// deterministicView strips the operational counters (cache split, hedges)
// that legitimately differ between a fresh and a cache-served run.
func deterministicView(res *Result) *Result {
	v := *res
	v.RestoredChains, v.Hedges, v.HedgeBackupWins = 0, 0, 0
	v.CachedChains, v.FreshWork, v.CachedWork = 0, 0, 0
	return &v
}

func TestChainCacheReplayIsByteIdentical(t *testing.T) {
	for _, viaCodec := range []bool{false, true} {
		in, _ := inputs.ByName("1YY9")
		opts := Options{Threads: 2, DBs: dbs(t)}
		fresh, err := Run(in, opts)
		if err != nil {
			t.Fatal(err)
		}

		cc := &mapChainCache{entries: make(map[string]*CachedChain), viaCodec: viaCodec}
		opts.ChainCache = cc.fetch
		first, err := Run(in, opts)
		if err != nil {
			t.Fatal(err)
		}
		if cc.misses != len(in.MSAChains()) || cc.hits != 0 {
			t.Fatalf("codec=%v first run: hits=%d misses=%d", viaCodec, cc.hits, cc.misses)
		}
		second, err := Run(in, opts)
		if err != nil {
			t.Fatal(err)
		}
		if cc.hits != len(in.MSAChains()) {
			t.Fatalf("codec=%v second run hits=%d, want %d", viaCodec, cc.hits, len(in.MSAChains()))
		}
		if second.CachedChains != len(in.MSAChains()) || second.FreshWork != 0 || second.CachedWork == 0 {
			t.Fatalf("codec=%v cache accounting: %d cached, fresh=%d cached=%d",
				viaCodec, second.CachedChains, second.FreshWork, second.CachedWork)
		}
		if first.FreshWork+first.CachedWork != second.FreshWork+second.CachedWork {
			t.Fatalf("codec=%v total work not cache-independent: %d vs %d",
				viaCodec, first.FreshWork+first.CachedWork, second.FreshWork+second.CachedWork)
		}
		for _, pair := range [][2]*Result{{fresh, first}, {fresh, second}} {
			a, b := deterministicView(pair[0]), deterministicView(pair[1])
			if !reflect.DeepEqual(a.PerChain, b.PerChain) {
				t.Fatalf("codec=%v PerChain diverged", viaCodec)
			}
			if !reflect.DeepEqual(a.Features, b.Features) {
				t.Fatalf("codec=%v Features diverged", viaCodec)
			}
			if !reflect.DeepEqual(a.Streamed, b.Streamed) {
				t.Fatalf("codec=%v Streamed diverged", viaCodec)
			}
			if a.SerialInstructions != b.SerialInstructions {
				t.Fatalf("codec=%v SerialInstructions diverged", viaCodec)
			}
			if len(a.Workers) != len(b.Workers) {
				t.Fatalf("codec=%v worker counts diverged", viaCodec)
			}
			for w := range a.Workers {
				if !reflect.DeepEqual(a.Workers[w].Events, b.Workers[w].Events) {
					t.Fatalf("codec=%v worker %d events diverged", viaCodec, w)
				}
			}
		}
		for _, sz := range cc.lastSizes {
			if sz <= 0 {
				t.Fatalf("codec=%v non-positive SizeBytes", viaCodec)
			}
		}
	}
}

func TestChainCacheRewritesChainLabel(t *testing.T) {
	// The same sequence content appears as chain "A" in one complex and a
	// differently labeled chain in another; the cached snapshot must serve
	// both with the local label.
	in, _ := inputs.ByName("2PV7")
	chain := in.MSAChains()[0]
	opts := Options{Threads: 1, DBs: dbs(t)}
	cc := &mapChainCache{entries: make(map[string]*CachedChain)}
	opts.ChainCache = cc.fetch
	res, err := Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantID := chain.IDs[0]
	if res.PerChain[0].ChainID != wantID {
		t.Fatalf("fresh label = %q, want %q", res.PerChain[0].ChainID, wantID)
	}
	for _, stored := range cc.entries {
		d := stored.deltaFor("ZZ")
		if d.cr.ChainID != "ZZ" {
			t.Fatalf("deltaFor label = %q, want ZZ", d.cr.ChainID)
		}
		if stored.d.cr.ChainID != wantID {
			t.Fatal("deltaFor mutated the stored snapshot")
		}
	}
}

func TestChainCacheErrorPropagates(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	boom := errors.New("tier exploded")
	opts := Options{Threads: 1, DBs: dbs(t)}
	opts.ChainCache = func(scope string, chain inputs.Chain, compute func() (*CachedChain, error)) (*CachedChain, bool, error) {
		return nil, false, boom
	}
	if _, err := Run(in, opts); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped tier error", err)
	}
}

func TestDecodeCachedChainRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, {0x00}, []byte("not gob at all"), make([]byte, 512)} {
		if _, err := DecodeCachedChain(b); err == nil {
			t.Fatalf("garbage %d bytes decoded", len(b))
		}
	}
}

func TestChainFingerprintContentIdentity(t *testing.T) {
	in, _ := inputs.ByName("1YY9")
	chains := in.MSAChains()
	fps := make(map[string]bool)
	for _, c := range chains {
		fps[ChainFingerprint(c)] = true
	}
	if len(fps) != len(chains) {
		t.Fatalf("distinct chains collided: %d fingerprints for %d chains", len(fps), len(chains))
	}
	if ChainFingerprint(chains[0]) != ChainFingerprint(chains[0]) {
		t.Fatal("fingerprint not stable")
	}
}
