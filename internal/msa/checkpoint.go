package msa

import (
	"context"
	"sync"
	"time"

	"afsysbench/internal/hmmer"
	"afsysbench/internal/inputs"
	"afsysbench/internal/metering"
)

// chainDelta is the complete contribution of one chain's searches to a
// Result: the summary row, the final-round hit list (pairing input), the
// per-worker metering events, the streamed byte totals and the serial
// work. Chains compute their delta privately — against a scratch carrier,
// never the shared Result — which is what makes three things possible
// without disturbing determinism: a checkpoint can replay a completed
// chain verbatim on a stage retry, a hedged backup attempt can race its
// primary without the two writing the same accumulators, and the merge
// into the Result happens in chain order exactly as the serial code did.
type chainDelta struct {
	cr       ChainResult
	hits     []hmmer.Hit
	workers  []*metering.Accumulator
	streamed map[string]int64
	serial   uint64
}

// merge replays a delta into the result. Worker events append in chain
// order, so a Result assembled from deltas is byte-identical to one the
// pre-delta serial code built.
func (res *Result) merge(d *chainDelta) {
	res.PerChain = append(res.PerChain, d.cr)
	res.TotalHitResidues += d.cr.HitResidues
	for w, acc := range d.workers {
		res.Workers[w].Events = append(res.Workers[w].Events, acc.Events...)
	}
	for name, b := range d.streamed {
		res.Streamed[name] += b
	}
	res.SerialInstructions += d.serial
}

// Checkpoint preserves completed per-chain search deltas across retries
// of an MSA phase, so a retried stage re-runs only the chains that had
// not finished when the previous attempt faulted — the rest replay
// verbatim, streamed bytes, metering events and all. Entries are scoped
// by the database profile signature: a degradation-ladder re-plan against
// a reduced set must never reuse a delta computed against the full one.
// Safe for concurrent use; a nil *Checkpoint stores nothing (the
// package's unconditional-call-site convention).
type Checkpoint struct {
	mu     sync.Mutex
	chains map[string]*chainDelta
}

// NewCheckpoint returns an empty checkpoint.
func NewCheckpoint() *Checkpoint {
	return &Checkpoint{chains: make(map[string]*chainDelta)}
}

func (c *Checkpoint) lookup(scope, chainID string) *chainDelta {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.chains[scope+"|"+chainID]
}

func (c *Checkpoint) store(scope, chainID string, d *chainDelta) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.chains[scope+"|"+chainID] = d
	c.mu.Unlock()
}

// Len returns the number of checkpointed chain deltas across all scopes.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.chains)
}

// runChainHedged executes one chain, optionally racing a backup attempt
// against a straggling primary. With HedgeAfter unset this is a plain
// call. Otherwise: the primary launches immediately; if it has not
// finished within HedgeAfter, a backup attempt starts and the first
// finisher wins, the loser's context is cancelled and its goroutine
// drained before returning (no leaks). Both attempts compute the same
// deterministic delta, so hedging changes wall latency and operational
// counters only — never results. A primary that *fails* before the hedge
// timer fires returns immediately: hedging is for stragglers; failures
// belong to the stage-retry path.
func runChainHedged(ctx context.Context, chain inputs.Chain, opts Options) (d *chainDelta, hedged, backupWon bool, err error) {
	if opts.HedgeAfter <= 0 {
		d, err = runChain(ctx, chain, opts, 1)
		return d, false, false, err
	}
	type outcome struct {
		d       *chainDelta
		err     error
		attempt int
	}
	pctx, cancelPrimary := context.WithCancel(ctx)
	defer cancelPrimary()
	done := make(chan outcome, 2)
	go func() {
		d, err := runChain(pctx, chain, opts, 1)
		done <- outcome{d, err, 1}
	}()
	timer := time.NewTimer(opts.HedgeAfter)
	select {
	case first := <-done:
		timer.Stop()
		return first.d, false, false, first.err
	case <-timer.C:
	}
	bctx, cancelBackup := context.WithCancel(ctx)
	defer cancelBackup()
	go func() {
		d, err := runChain(bctx, chain, opts, 2)
		done <- outcome{d, err, 2}
	}()

	first := <-done
	if first.err == nil {
		// Winner: cancel the loser and drain it so no goroutine outlives
		// the call.
		cancelPrimary()
		cancelBackup()
		<-done
		return first.d, true, first.attempt == 2, nil
	}
	// The first finisher failed (injected fault, cancellation): give the
	// other attempt its chance before reporting failure.
	second := <-done
	if second.err == nil {
		return second.d, true, second.attempt == 2, nil
	}
	return nil, true, false, first.err
}
