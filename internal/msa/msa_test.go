package msa

import (
	"testing"

	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
	"afsysbench/internal/seq"
	"afsysbench/internal/simhw"
)

// testDBs builds a shared small database set once; generation is
// deterministic so sharing across tests is safe.
var testDBs *DBSet

func dbs(t *testing.T) *DBSet {
	t.Helper()
	if testDBs == nil {
		var err error
		testDBs, err = BuildDBSet(inputs.Samples(), DefaultDBConfig())
		if err != nil {
			t.Fatal(err)
		}
	}
	return testDBs
}

func TestBuildDBSet(t *testing.T) {
	set := dbs(t)
	if len(set.Protein) != 2 || len(set.RNA) != 3 {
		t.Fatalf("db counts: %d protein, %d RNA", len(set.Protein), len(set.RNA))
	}
	// Paper: the RNA corpora total 89 GiB.
	var rnaBytes int64
	for _, db := range set.RNA {
		rnaBytes += db.ModeledBytes()
	}
	if gib := float64(rnaBytes) / (1 << 30); gib < 88 || gib > 90 {
		t.Errorf("RNA modeled size = %.1f GiB, want 89", gib)
	}
	if set.For(seq.Protein) == nil || set.For(seq.RNA) == nil {
		t.Error("For() lookup broken")
	}
	if set.For(seq.Ligand) != nil {
		t.Error("ligand databases should not exist")
	}
	if set.ModeledBytes() <= 0 {
		t.Error("modeled bytes not positive")
	}
}

func TestBuildDBSetErrors(t *testing.T) {
	if _, err := BuildDBSet(nil, DBConfig{SeqsPerDB: 0}); err == nil {
		t.Error("zero SeqsPerDB accepted")
	}
}

func TestRunBasics(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	res, err := Run(in, Options{Threads: 2, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	// 2PV7 has one unique protein chain (A and B identical): one search.
	if len(res.PerChain) != 1 {
		t.Fatalf("per-chain results = %d, want 1", len(res.PerChain))
	}
	if res.PerChain[0].Scanned == 0 {
		t.Error("no records scanned")
	}
	if len(res.Workers) != 2 {
		t.Fatalf("workers = %d", len(res.Workers))
	}
	for i, w := range res.Workers {
		if len(w.Events) == 0 {
			t.Errorf("worker %d recorded no events", i)
		}
	}
	if res.SerialInstructions == 0 {
		t.Error("no serial work modeled")
	}
	if res.Features == nil || res.Features.Cols != 484 {
		t.Errorf("features missing or wrong width: %+v", res.Features)
	}
}

func TestRunErrors(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	if _, err := Run(in, Options{}); err == nil {
		t.Error("missing databases accepted")
	}
	bad := &inputs.Input{}
	if _, err := Run(bad, Options{DBs: dbs(t)}); err == nil {
		t.Error("invalid input accepted")
	}
}

func TestDNAChainsExcluded(t *testing.T) {
	in, _ := inputs.ByName("promo") // 3 protein + 2 DNA
	res, err := Run(in, Options{Threads: 1, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerChain) != 3 {
		t.Fatalf("promo searched %d chains, want 3 (DNA excluded, Obs. 2)", len(res.PerChain))
	}
	for _, c := range res.PerChain {
		if c.Type == seq.DNA {
			t.Error("DNA chain searched")
		}
	}
}

func TestRNAChainUsesRNADatabases(t *testing.T) {
	in, _ := inputs.ByName("6QNR")
	res, err := Run(in, Options{Threads: 2, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	foundRNA := false
	for _, c := range res.PerChain {
		if c.Type == seq.RNA {
			foundRNA = true
		}
	}
	if !foundRNA {
		t.Fatal("6QNR RNA chain not searched")
	}
	for _, db := range dbs(t).RNA {
		if res.Streamed[db.Name] == 0 {
			t.Errorf("RNA database %s never streamed", db.Name)
		}
	}
}

func TestStreamedBytesAccounting(t *testing.T) {
	in, _ := inputs.ByName("1YY9") // 3 protein chains, 2 rounds
	res, err := Run(in, Options{Threads: 2, Rounds: 2, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range dbs(t).Protein {
		want := db.ModeledBytes() * 3 * 2 // chains × rounds
		if got := res.Streamed[db.Name]; got != want {
			t.Errorf("%s streamed %d, want %d", db.Name, got, want)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	a, err := Run(in, Options{Threads: 3, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, Options{Threads: 3, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	if a.PerChain[0].Hits != b.PerChain[0].Hits ||
		a.PerChain[0].Candidates != b.PerChain[0].Candidates ||
		a.TotalHitResidues != b.TotalHitResidues {
		t.Error("MSA run not deterministic at fixed thread count")
	}
	at, bt := a.Workers[1].Totals(), b.Workers[1].Totals()
	if at.Instructions != bt.Instructions {
		t.Error("worker metering not deterministic")
	}
}

func TestHitsIndependentOfThreadCount(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	r1, err := Run(in, Options{Threads: 1, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(in, Options{Threads: 4, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.PerChain[0].Hits != r4.PerChain[0].Hits {
		t.Errorf("hits differ across thread counts: %d vs %d",
			r1.PerChain[0].Hits, r4.PerChain[0].Hits)
	}
	if r1.PerChain[0].Candidates != r4.PerChain[0].Candidates {
		t.Errorf("candidates differ across thread counts")
	}
}

func TestPromoCandidateExplosion(t *testing.T) {
	// Observation 2: promo's poly-Q chain floods the search with
	// ambiguous candidates relative to 1YY9 despite similar length.
	promoIn, _ := inputs.ByName("promo")
	yy9In, _ := inputs.ByName("1YY9")
	promo, err := Run(promoIn, Options{Threads: 1, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	yy9, err := Run(yy9In, Options{Threads: 1, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	pc, yc := 0, 0
	for _, c := range promo.PerChain {
		pc += c.Candidates
	}
	for _, c := range yy9.PerChain {
		yc += c.Candidates
	}
	if pc < yc*3/2 {
		t.Errorf("promo candidates (%d) not well above 1YY9 (%d)", pc, yc)
	}
	// And the extra filtering work shows up as more instructions.
	var pInstr, yInstr uint64
	for _, w := range promo.Workers {
		pInstr += w.Totals().Instructions
	}
	for _, w := range yy9.Workers {
		yInstr += w.Totals().Instructions
	}
	if pInstr <= yInstr {
		t.Errorf("promo instruction volume (%d) not above 1YY9 (%d)", pInstr, yInstr)
	}
}

func TestBuildRunSpecStructure(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	res, err := Run(in, Options{Threads: 4, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	spec := BuildRunSpec(platform.Server(), res)
	if len(spec.Threads) != 4 {
		t.Fatalf("spec threads = %d", len(spec.Threads))
	}
	if len(spec.Reader) == 0 {
		t.Fatal("reader lane empty — buffering layer not routed")
	}
	readerFuncs := map[string]bool{}
	for _, fw := range spec.Reader {
		readerFuncs[fw.Func] = true
	}
	for _, fn := range []string{"copy_to_iter", "addbuf", "seebuf"} {
		if !readerFuncs[fn] {
			t.Errorf("%s missing from reader lane", fn)
		}
	}
	for ti, tw := range spec.Threads {
		for _, fw := range tw.Funcs {
			if readerFuncs[fw.Func] {
				t.Errorf("thread %d still carries reader function %s", ti, fw.Func)
			}
			if fw.Func == "calc_band_9" && fw.HotBytes == 0 {
				t.Error("DP kernel missing hot footprint")
			}
		}
	}
	if spec.SerialInstructions == 0 {
		t.Error("serial instructions not carried into spec")
	}
}

func TestSimulatedScalingShape(t *testing.T) {
	// Figure 4's shape: near-2x at 2 threads, then saturation.
	in, _ := inputs.ByName("2PV7")
	mach := platform.Desktop()
	seconds := map[int]float64{}
	for _, threads := range []int{1, 2, 4, 8} {
		res, err := Run(in, Options{Threads: threads, DBs: dbs(t)})
		if err != nil {
			t.Fatal(err)
		}
		seconds[threads] = simhw.Simulate(BuildRunSpec(mach, res)).Seconds
	}
	s2 := seconds[1] / seconds[2]
	if s2 < 1.6 || s2 > 2.2 {
		t.Errorf("2-thread speedup = %.2f, want ~2 (Fig. 4)", s2)
	}
	s8 := seconds[1] / seconds[8]
	if s8 > 4.5 {
		t.Errorf("8-thread speedup = %.2f, must saturate well below ideal", s8)
	}
	if seconds[8] >= seconds[2] {
		t.Errorf("8T (%.0fs) not faster than 2T (%.0fs)", seconds[8], seconds[2])
	}
}

func TestSimulatedPromoSlowerThan1YY9(t *testing.T) {
	// Observation 2 end-to-end: promo MSA time well above 1YY9 despite
	// similar residue counts, on both platforms.
	for _, mach := range []platform.Machine{platform.Server(), platform.Desktop()} {
		times := map[string]float64{}
		for _, name := range []string{"promo", "1YY9"} {
			in, _ := inputs.ByName(name)
			res, err := Run(in, Options{Threads: 4, DBs: dbs(t)})
			if err != nil {
				t.Fatal(err)
			}
			times[name] = simhw.Simulate(BuildRunSpec(mach, res)).Seconds
		}
		if times["promo"] < times["1YY9"]*1.5 {
			t.Errorf("%s: promo MSA %.0fs not well above 1YY9 %.0fs",
				mach.Name, times["promo"], times["1YY9"])
		}
	}
}

func TestSimulatedDesktopBeatsServer(t *testing.T) {
	// Observation 1: the desktop's clock advantage wins the CPU-bound
	// MSA phase.
	in, _ := inputs.ByName("1YY9")
	res, err := Run(in, Options{Threads: 4, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	srv := simhw.Simulate(BuildRunSpec(platform.Server(), res)).Seconds
	dsk := simhw.Simulate(BuildRunSpec(platform.Desktop(), res)).Seconds
	if dsk >= srv {
		t.Errorf("desktop MSA %.0fs not faster than server %.0fs", dsk, srv)
	}
}

func TestTableIVFunctionShares(t *testing.T) {
	// Table IV: the banded DP kernels dominate cycles, with calc_band_9 >=
	// calc_band_10, and addbuf/seebuf visible but smaller. With the SWAR
	// cascade armed (the default), the band recurrence runs at two
	// precisions — the 8-bit ssv_band pre-pass on every candidate plus the
	// float calc_band kernels on survivors — so the dominance claim spans
	// both.
	in, _ := inputs.ByName("2PV7")
	res, err := Run(in, Options{Threads: 4, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	sim := simhw.Simulate(BuildRunSpec(platform.Server(), res))
	cyc := func(fn string) float64 { return float64(sim.PerFunc[fn].Cycles) }
	var total float64
	for _, c := range sim.PerFunc {
		total += float64(c.Cycles)
	}
	band := cyc("calc_band_9") + cyc("calc_band_10") + cyc("ssv_band")
	if band/total < 0.35 {
		t.Errorf("band kernels = %.0f%% of cycles, want dominant", 100*band/total)
	}
	if cyc("calc_band_9") < cyc("calc_band_10") {
		t.Error("calc_band_9 must retire at least as much as calc_band_10")
	}
	if cyc("addbuf") == 0 || cyc("seebuf") == 0 {
		t.Error("buffer functions missing from profile")
	}
	if cyc("addbuf") >= band {
		t.Error("addbuf must not dominate the DP kernels")
	}
}

func TestFeaturesShape(t *testing.T) {
	in, _ := inputs.ByName("6QNR")
	res, err := Run(in, Options{Threads: 2, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Features
	if f.Cols != 1395 {
		t.Errorf("feature cols = %d, want 1395", f.Cols)
	}
	if f.Rows < 1 {
		t.Error("feature rows must be at least the query row")
	}
	if f.FeatureDim != 21 {
		t.Errorf("feature dim = %d, want 21", f.FeatureDim)
	}
	if f.Bytes() != int64(f.Rows)*int64(f.Cols)*21 {
		t.Error("feature bytes wrong")
	}
}
