package msa

import (
	"context"
	"fmt"
	"time"

	"afsysbench/internal/hmmer"
	"afsysbench/internal/inputs"
	"afsysbench/internal/metering"
	"afsysbench/internal/parallel"
	"afsysbench/internal/seq"
	"afsysbench/internal/seqdb"
)

// Options configures one MSA phase run.
type Options struct {
	// Threads is the worker count (the paper sweeps 1–8; AF3 defaults
	// to 8).
	Threads int
	// Rounds is the jackhmmer iteration count for protein chains
	// (default 2). RNA chains always scan once (nhmmer).
	Rounds int
	// Search carries engine options shared by all searches.
	Search hmmer.SearchOptions
	// DBs are the reference databases.
	DBs *DBSet
	// WorkCalibration scales the synthetic-to-paper work mapping. It is
	// the one free constant of the MSA volume model, set so the simulated
	// 2PV7 MSA phase lands at the paper's Figure 3 scale. Zero means the
	// calibrated default.
	WorkCalibration float64
	// AllowMissingDB lets a chain whose molecule type has no databases
	// left proceed as a single-sequence alignment (depth 1, no hits)
	// instead of failing the run — the degradation ladder's contract when
	// databases have been dropped from the profile.
	AllowMissingDB bool
	// Checkpoint, when non-nil, makes the run resumable: chains completed
	// by a previous attempt are replayed from their recorded deltas
	// instead of re-searched, and every chain completed in this run is
	// recorded as it finishes — even when a later chain fails. A stage
	// retry therefore re-runs only failed chains.
	Checkpoint *Checkpoint
	// CheckpointScope names the database profile the run searches (the
	// degradation ladder's signature). Checkpoint entries are keyed by it
	// so a re-plan against a reduced profile never replays a delta
	// computed against a different one.
	CheckpointScope string
	// ChainCache, when set, is the serving layer's cross-request chain
	// cache: consulted once per chain after the per-request Checkpoint,
	// with the CheckpointScope and a compute closure running the real
	// search. A hit merges the cached delta (byte-identical to a fresh
	// search, with the chain label rewritten for this complex) and counts
	// into CachedChains/CachedWork instead of FreshWork. ChainDone and the
	// hedge counters observe only real searches, mirroring Checkpoint
	// replay semantics.
	ChainCache ChainFetch
	// ChainFault, when set, is consulted at the start of every chain
	// search attempt with the chain id and the 1-based attempt ordinal
	// (a hedge backup is a further attempt); a non-nil error fails that
	// chain. It is the chain-granular fault-injection hook for the
	// serving layer's chaos and robustness tests.
	ChainFault func(chainID string, attempt int) error
	// ChainDone, when set, observes every chain completed by a real
	// search (not a checkpoint replay) with its wall-clock duration — the
	// serving layer's hedge-budget estimator feeds on it.
	ChainDone func(chainID string, wall time.Duration)
	// HedgeAfter launches a backup attempt for a chain still running
	// after this wall-clock delay; the first finished attempt wins and
	// the loser is cancelled. Zero disables hedging. Both attempts
	// compute the same deterministic result, so hedging affects latency
	// only, never output.
	HedgeAfter time.Duration
	// Scatter, when set, replaces the in-process per-thread sharded scan
	// of each database — the cluster layer's scatter-gather hook. The
	// implementation must honor the determinism contract: the merged
	// result, including per-worker metering attribution, must be
	// bitwise-identical to the default scanParallel at the same Threads
	// setting, so shard count can never change what a request computes.
	Scatter ScatterFunc
}

// ScatterRequest is one database scan handed to a Scatter hook: everything
// scanParallel would have used, plus the metering scale and the per-worker
// accumulators the hook must attribute events to. Workers has exactly
// Threads entries; worker w owns the records of the global thread split
// parallel.Shards would give it, and its events must append in record
// order — that is what keeps a scattered scan bitwise-identical to the
// single-node one.
type ScatterRequest struct {
	Profile *hmmer.Profile
	Query   *seq.Sequence
	DB      *seqdb.DB
	// Search carries the engine options with DBFootprint already set to
	// the database's modeled size.
	Search hmmer.SearchOptions
	// Threads is the global worker count the scan is attributed across.
	Threads int
	// ScaleFactor is the synthetic-to-paper metering scale for this
	// database (DB.ScaleFactor × WorkCalibration); every shard's events
	// must be scaled by it before accumulation.
	ScaleFactor float64
	// Workers are the per-thread accumulators (len == Threads).
	Workers []*metering.Accumulator
}

// ScatterFunc scatter-gathers one database scan across simulated nodes.
type ScatterFunc func(ctx context.Context, req ScatterRequest) (*hmmer.Result, error)

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = 8 // AF3's fixed default, which the paper questions
	}
	if o.Rounds <= 0 {
		o.Rounds = 2
	}
	if o.WorkCalibration <= 0 {
		o.WorkCalibration = 0.4
	}
	return o
}

// ChainResult summarizes one chain's searches.
type ChainResult struct {
	ChainID    string
	Type       seq.MoleculeType
	Hits       int
	Candidates int
	Scanned    int
	// CellsDP counts banded-Viterbi DP cells actually evaluated across all
	// rounds and shards; CellsPruned counts filter lanes and band cells the
	// kernels' pruning cascade provably skipped (see hmmer.Result).
	CellsDP     uint64
	CellsPruned uint64
	// LanesRejected counts the full-precision work units the quantized SWAR
	// pre-passes disposed of (a subset of CellsPruned plus whole MSV scans);
	// zero when SWAR is disabled.
	LanesRejected uint64
	// Rows is the recruited alignment depth (including the query row).
	Rows int
	// HitResidues is the summed length of recruited hits, which feeds the
	// shared hot-set model (bigger recruited stacks = more shared reuse).
	HitResidues int
}

// Result is the outcome of the MSA phase for one input.
type Result struct {
	Input    *inputs.Input
	PerChain []ChainResult
	Features *Features
	// Workers holds per-thread metering accumulators (scaled to paper
	// volume); index = worker id.
	Workers []*metering.Accumulator
	// SerialInstructions is the modeled non-parallel work (profile
	// rebuilds, hit merging, feature assembly) at paper scale.
	SerialInstructions uint64
	// Streamed maps database name to total modeled bytes scanned (passes
	// × modeled size) — the storage model's input.
	Streamed map[string]int64
	// TotalHitResidues sums HitResidues over chains.
	TotalHitResidues int
	// Pairing is the cross-chain species-pairing outcome (empty for
	// single-chain inputs).
	Pairing *PairingResult
	// RestoredChains counts chains replayed from the checkpoint instead
	// of re-searched; Hedges counts backup attempts launched for
	// straggling chains and HedgeBackupWins those where the backup
	// finished first. Operational counters — wall-clock dependent where
	// hedging is concerned — excluded from determinism comparisons.
	RestoredChains  int
	Hedges          int
	HedgeBackupWins int
	// CachedChains counts chains served by the ChainCache hook; FreshWork
	// and CachedWork split the modeled instructions between really-searched
	// and cache-served chains (their sum is cache-independent; the split is
	// operational, excluded from determinism comparisons). The serving
	// layer charges MSA seconds by the fresh share.
	CachedChains int
	FreshWork    uint64
	CachedWork   uint64
}

// Run executes the MSA phase for the input: for every protein/RNA chain,
// search the matching databases with Threads workers sharding each
// database, iterating protein profiles Rounds times.
func Run(in *inputs.Input, opts Options) (*Result, error) {
	return RunCtx(context.Background(), in, opts)
}

// RunCtx is Run with cancellation: the context is observed between chains,
// between iteration rounds, between databases, and every few records
// inside each worker shard, so a cancelled MSA phase stops within one
// shard's stride rather than finishing the fan-out.
func RunCtx(ctx context.Context, in *inputs.Input, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.DBs == nil {
		return nil, fmt.Errorf("msa: no databases configured")
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Input:    in,
		Workers:  make([]*metering.Accumulator, opts.Threads),
		Streamed: make(map[string]int64),
	}
	for i := range res.Workers {
		res.Workers[i] = &metering.Accumulator{}
	}

	var perChainHits [][]hmmer.Hit
	for _, chain := range in.MSAChains() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cid := chain.IDs[0]
		if d := opts.Checkpoint.lookup(opts.CheckpointScope, cid); d != nil {
			res.RestoredChains++
			res.FreshWork += deltaWork(d)
			res.merge(d)
			perChainHits = append(perChainHits, d.hits)
			continue
		}
		if opts.ChainCache != nil {
			cc, hit, err := opts.ChainCache(opts.CheckpointScope, chain, func() (*CachedChain, error) {
				start := time.Now()
				d, hedged, backupWon, err := runChainHedged(ctx, chain, opts)
				if err != nil {
					return nil, err
				}
				if hedged {
					res.Hedges++
					if backupWon {
						res.HedgeBackupWins++
					}
				}
				if opts.ChainDone != nil {
					opts.ChainDone(cid, time.Since(start))
				}
				return newCachedChain(d), nil
			})
			if err != nil {
				return nil, fmt.Errorf("msa %s chain %s: %w", in.Name, cid, err)
			}
			if hit {
				res.CachedChains++
				res.CachedWork += cc.Work()
			} else {
				res.FreshWork += cc.Work()
			}
			d := cc.deltaFor(cid)
			opts.Checkpoint.store(opts.CheckpointScope, cid, d)
			res.merge(d)
			perChainHits = append(perChainHits, d.hits)
			continue
		}
		start := time.Now()
		d, hedged, backupWon, err := runChainHedged(ctx, chain, opts)
		if err != nil {
			return nil, fmt.Errorf("msa %s chain %s: %w", in.Name, cid, err)
		}
		if hedged {
			res.Hedges++
			if backupWon {
				res.HedgeBackupWins++
			}
		}
		if opts.ChainDone != nil {
			opts.ChainDone(cid, time.Since(start))
		}
		opts.Checkpoint.store(opts.CheckpointScope, cid, d)
		res.FreshWork += deltaWork(d)
		res.merge(d)
		perChainHits = append(perChainHits, d.hits)
	}
	// Cross-chain species pairing (serial, between search and features).
	res.Pairing = pairChains(perChainHits)
	totalHits := 0
	for _, hits := range perChainHits {
		totalHits += len(hits)
	}
	res.SerialInstructions += uint64(totalHits) * 3000 // paired-row assembly

	res.Features = buildFeatures(in, res.PerChain)
	res.Features.PairedRows = len(res.Pairing.Rows)
	// Feature assembly is serial: stacking, deduplication, pairing.
	res.SerialInstructions += uint64(res.Features.Rows*res.Features.Cols) * 40
	return res, nil
}

// runChain searches all matching databases for one chain, computing its
// full contribution — summary row, final-round hits, metering events,
// streamed bytes, serial work — into a private delta. Nothing shared is
// touched until the caller merges the delta, so concurrent attempts
// (hedging) and replayed attempts (checkpoints) are safe by construction.
// attempt is the 1-based attempt ordinal handed to the ChainFault hook.
func runChain(ctx context.Context, chain inputs.Chain, opts Options, attempt int) (*chainDelta, error) {
	query := chain.Sequence
	cid := chain.IDs[0]
	if opts.ChainFault != nil {
		if err := opts.ChainFault(cid, attempt); err != nil {
			return nil, err
		}
	}
	// Private scratch carrier: scanParallel and the serial-work bookkeeping
	// below write here, never into the caller's Result.
	scratch := &Result{
		Workers:  make([]*metering.Accumulator, opts.Threads),
		Streamed: make(map[string]int64),
	}
	for i := range scratch.Workers {
		scratch.Workers[i] = &metering.Accumulator{}
	}
	res := scratch
	cr := ChainResult{ChainID: cid, Type: query.Type}
	finish := func(hits []hmmer.Hit) *chainDelta {
		return &chainDelta{
			cr:       cr,
			hits:     hits,
			workers:  scratch.Workers,
			streamed: scratch.Streamed,
			serial:   scratch.SerialInstructions,
		}
	}
	dbs := opts.DBs.For(query.Type)
	if len(dbs) == 0 {
		if opts.AllowMissingDB {
			// Degraded profile: the chain proceeds with only its own
			// sequence (alignment depth 1, nothing scanned or streamed).
			cr.Rows = 1
			return finish(nil), nil
		}
		return nil, fmt.Errorf("no databases for molecule type %v", query.Type)
	}
	rounds := opts.Rounds
	if query.Type != seq.Protein {
		rounds = 1 // nhmmer is single-pass
	}

	profile, err := hmmer.BuildFromQuery(query)
	if err != nil {
		return nil, err
	}
	var lastHits []hmmer.Hit
	for round := 0; round < rounds; round++ {
		var allHits []hmmer.Hit
		for _, db := range dbs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			merged, err := scanParallel(ctx, profile, query, db, opts, res)
			if err != nil {
				return nil, err
			}
			res.Streamed[db.Name] += db.ModeledBytes()
			allHits = append(allHits, merged.Hits...)
			cr.Candidates += merged.Candidates
			cr.Scanned += merged.Scanned
			cr.CellsDP += merged.CellsDP
			cr.CellsPruned += merged.CellsPruned
			cr.LanesRejected += merged.LanesRejected
		}
		lastHits = allHits
		if round == rounds-1 {
			break
		}
		rows := hmmer.BuildHitAlignment(query, allHits, inclusionE(opts))
		// Profile rebuild is serial work between rounds; model it at the
		// paper-scale recruited depth.
		res.SerialInstructions += uint64(len(rows)*query.Len()) * 600
		if len(rows) <= 1 {
			break
		}
		profile, err = hmmer.BuildFromAlignment(query.ID, query.Type, rows)
		if err != nil {
			return nil, err
		}
	}
	cr.Hits = len(lastHits)
	cr.Rows = 1
	for _, h := range lastHits {
		cr.HitResidues += h.Target.Len()
		if h.EValue <= inclusionE(opts) {
			cr.Rows++
		}
	}
	// Merging and E-value sorting of the paper-scale hit list is serial.
	res.SerialInstructions += uint64(cr.HitResidues) * 1200
	return finish(lastHits), nil
}

func inclusionE(opts Options) float64 {
	if opts.Search.InclusionEValue != 0 {
		return opts.Search.InclusionEValue
	}
	return 1e-3
}

// scanParallel shards db across the workers, scanning concurrently — the
// analog of HMMER's worker threads consuming reader blocks. Each worker's
// metering events are scaled by the database's synthetic-to-paper factor
// before accumulation. parallel.Shards is used (not a capped Pool.Run)
// because the shard count is semantic here: shard w's events must land in
// res.Workers[w] for per-thread attribution, even when Threads exceeds the
// machine's core count.
//
// Scratch reuse: each shard's scan draws a scanWorkspace from the hmmer
// package's sync.Pool for the duration of its pass, so the MSV run buffer,
// DP rows, and seed scratch are allocated once per worker per database —
// not once per record — and successive databases reuse the buffers the
// previous pass grew.
func scanParallel(ctx context.Context, profile *hmmer.Profile, query *seq.Sequence, db *seqdb.DB, opts Options, res *Result) (*hmmer.Result, error) {
	t := opts.Threads
	searchOpts := opts.Search
	searchOpts.DBFootprint = uint64(db.ModeledBytes())
	if opts.Scatter != nil {
		return opts.Scatter(ctx, ScatterRequest{
			Profile:     profile,
			Query:       query,
			DB:          db,
			Search:      searchOpts,
			Threads:     t,
			ScaleFactor: db.ScaleFactor * opts.WorkCalibration,
			Workers:     res.Workers,
		})
	}

	parts := make([]*hmmer.Result, t)
	errs := make([]error, t)
	ctxErr := parallel.ShardsCtx(ctx, t, len(db.Seqs), func(w, lo, hi int) {
		meter := metering.Scaled(res.Workers[w], db.ScaleFactor*opts.WorkCalibration)
		src := &hmmer.SliceSource{Seqs: db.Seqs[lo:hi]}
		parts[w], errs[w] = hmmer.ScanRecordsCtx(ctx, profile, query, src, db.TotalResidues(), searchOpts, meter)
	})
	if ctxErr != nil {
		return nil, ctxErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return hmmer.MergeResults(query.ID, parts), nil
}

// Features is the stacked MSA representation of shape (M × N × d): M
// alignment rows over N total residue columns; d is the one-hot feature
// width (alphabet size plus gap).
type Features struct {
	Rows int // M
	Cols int // N: total residues across chains
	// FeatureDim is d: protein alphabet + gap marker.
	FeatureDim int
	// RowsPerChain maps chain id to recruited depth.
	RowsPerChain map[string]int
	// PairedRows is the number of cross-chain species-paired rows.
	PairedRows int
}

// Bytes returns the dense feature tensor size (M×N×d single bytes).
func (f *Features) Bytes() int64 {
	return int64(f.Rows) * int64(f.Cols) * int64(f.FeatureDim)
}

func buildFeatures(in *inputs.Input, chains []ChainResult) *Features {
	f := &Features{
		Cols:         in.TotalResidues(),
		FeatureDim:   len(seq.ProteinAlphabet) + 1,
		RowsPerChain: make(map[string]int),
	}
	// The stacked MSA depth is the deepest chain alignment; shallower
	// chains are padded (AF3 pads per-chain MSAs into one block).
	for _, c := range chains {
		f.RowsPerChain[c.ChainID] = c.Rows
		if c.Rows > f.Rows {
			f.Rows = c.Rows
		}
	}
	if f.Rows == 0 {
		f.Rows = 1
	}
	return f
}
