package msa

import (
	"sort"

	"afsysbench/internal/hmmer"
	"afsysbench/internal/seqdb"
)

// Cross-chain MSA pairing. For multi-chain assemblies AF3 pairs alignment
// rows across chains by source organism, so co-evolutionary signal between
// interacting chains survives into the pair representation. The pairing
// stage runs after all per-chain searches, on the CPU, serially — part of
// the data-preparation work between search and featurization.

// PairedRow is one cross-chain row: for each chain (by result order), the
// hit identifier contributed by one organism, or "" when that chain has no
// hit from it.
type PairedRow struct {
	Species string
	// HitIDs[i] is the hit for chain i (parallel to Result.PerChain).
	HitIDs []string
}

// Complete reports whether every chain contributed a hit.
func (r PairedRow) Complete() bool {
	for _, id := range r.HitIDs {
		if id == "" {
			return false
		}
	}
	return true
}

// PairingResult summarizes the pairing stage.
type PairingResult struct {
	Rows []PairedRow
	// CompleteRows counts rows with a hit in every chain — the rows that
	// carry full inter-chain signal.
	CompleteRows int
}

// pairChains builds species-paired rows from per-chain hit lists. Only the
// best hit per (chain, species) participates, mirroring AF3's
// best-per-species pairing policy.
func pairChains(perChain [][]hmmer.Hit) *PairingResult {
	res := &PairingResult{}
	if len(perChain) < 2 {
		return res // pairing is only defined across chains
	}
	// Best hit per species per chain.
	best := make([]map[string]hmmer.Hit, len(perChain))
	speciesSet := map[string]bool{}
	for ci, hits := range perChain {
		best[ci] = make(map[string]hmmer.Hit)
		for _, h := range hits {
			sp := seqdb.SpeciesOf(h.TargetID)
			if sp == "" {
				continue
			}
			cur, ok := best[ci][sp]
			if !ok || h.EValue < cur.EValue {
				best[ci][sp] = h
			}
			speciesSet[sp] = true
		}
	}
	species := make([]string, 0, len(speciesSet))
	for sp := range speciesSet {
		species = append(species, sp)
	}
	sort.Strings(species)

	for _, sp := range species {
		row := PairedRow{Species: sp, HitIDs: make([]string, len(perChain))}
		present := 0
		for ci := range perChain {
			if h, ok := best[ci][sp]; ok {
				row.HitIDs[ci] = h.TargetID
				present++
			}
		}
		// A row is only useful if at least two chains pair up.
		if present < 2 {
			continue
		}
		res.Rows = append(res.Rows, row)
		if row.Complete() {
			res.CompleteRows++
		}
	}
	return res
}
