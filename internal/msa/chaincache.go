package msa

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"afsysbench/internal/hmmer"
	"afsysbench/internal/inputs"
	"afsysbench/internal/metering"
)

// ChainFetch is the serving layer's cross-request chain-cache hook. It is
// consulted once per chain, after the per-request checkpoint: the hook
// either returns a previously cached chain (hit=true) or runs compute —
// exactly once across concurrent identical requests, if the hook supplies
// singleflight — and returns its product (hit=false). scope is the
// database-profile signature (CheckpointScope): a chain searched under a
// reduced profile must never be served for the full one, so the hook must
// fold scope into its key.
type ChainFetch func(scope string, chain inputs.Chain, compute func() (*CachedChain, error)) (cc *CachedChain, hit bool, err error)

// CachedChain is an opaque, serializable snapshot of one chain's complete
// MSA contribution — the chainDelta: summary row, final-round hits,
// per-worker metering events, streamed bytes, serial work. It is keyed by
// chain *content* (sequence, not the per-complex chain label), so the same
// pool chain reused across complexes hits warm; the label is rewritten at
// replay time. Replaying a CachedChain merges the exact bytes a fresh
// search would have produced, which is what keeps the serving determinism
// contract intact across cache tiers.
type CachedChain struct {
	d    *chainDelta
	work uint64
	size int64
}

// chainDeltaWire is the exported mirror of chainDelta for gob transport.
type chainDeltaWire struct {
	CR       ChainResult
	Hits     []hmmer.Hit
	Workers  []*metering.Accumulator
	Streamed map[string]int64
	Serial   uint64
}

func newCachedChain(d *chainDelta) *CachedChain {
	return &CachedChain{d: d, work: deltaWork(d), size: deltaSize(d)}
}

// Work returns the modeled instruction count the snapshot represents
// (worker events plus serial work, never zero). The serving layer charges
// a request's MSA seconds by the fresh-work share, so a fully cached
// request schedules at zero CPU cost while a partial hit pays only its
// fresh chains.
func (cc *CachedChain) Work() uint64 { return cc.work }

// SizeBytes is the modeled in-memory footprint, the LRU charging size
// (the package convention: caller-declared modeled sizes, not allocator
// truth).
func (cc *CachedChain) SizeBytes() int64 { return cc.size }

// Encode serializes the snapshot for the persistent tier.
func (cc *CachedChain) Encode() ([]byte, error) {
	var buf bytes.Buffer
	w := chainDeltaWire{
		CR:       cc.d.cr,
		Hits:     cc.d.hits,
		Workers:  cc.d.workers,
		Streamed: cc.d.streamed,
		Serial:   cc.d.serial,
	}
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("msa: encode cached chain: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCachedChain reverses Encode. It validates structural invariants
// that the merge path relies on (worker accumulators non-nil), so a decode
// of a syntactically valid but semantically broken payload fails cleanly
// instead of panicking later.
func DecodeCachedChain(b []byte) (*CachedChain, error) {
	var w chainDeltaWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, fmt.Errorf("msa: decode cached chain: %w", err)
	}
	for i, acc := range w.Workers {
		if acc == nil {
			return nil, fmt.Errorf("msa: decode cached chain: nil worker accumulator %d", i)
		}
	}
	for i, h := range w.Hits {
		if h.Target == nil {
			return nil, fmt.Errorf("msa: decode cached chain: hit %d has no target", i)
		}
	}
	d := &chainDelta{
		cr:       w.CR,
		hits:     w.Hits,
		workers:  w.Workers,
		streamed: w.Streamed,
		serial:   w.Serial,
	}
	if d.streamed == nil {
		d.streamed = make(map[string]int64)
	}
	return newCachedChain(d), nil
}

// deltaFor returns the delta rewritten for the chain label cid. The
// snapshot is keyed by sequence content, so the same CachedChain may serve
// chain "A" of one complex and chain "B" of another; everything in the
// delta except the label is content-determined. The summary row is copied
// by value; hits, events and streamed bytes are shared read-only.
func (cc *CachedChain) deltaFor(cid string) *chainDelta {
	d := &chainDelta{
		cr:       cc.d.cr,
		hits:     cc.d.hits,
		workers:  cc.d.workers,
		streamed: cc.d.streamed,
		serial:   cc.d.serial,
	}
	d.cr.ChainID = cid
	return d
}

// deltaWork sums the modeled instructions a delta carries, floored at 1 so
// work-share ratios stay well-defined for trivial chains.
func deltaWork(d *chainDelta) uint64 {
	w := d.serial
	for _, acc := range d.workers {
		for _, ev := range acc.Events {
			w += ev.Instructions
		}
	}
	if w == 0 {
		w = 1
	}
	return w
}

// deltaSize estimates a delta's in-memory footprint for LRU charging.
func deltaSize(d *chainDelta) int64 {
	sz := int64(256) + int64(len(d.cr.ChainID))
	for _, h := range d.hits {
		sz += 96 + int64(len(h.TargetID))
		if h.Target != nil {
			sz += 48 + int64(len(h.Target.ID)) + int64(len(h.Target.Residues))
		}
		if h.Alignment != nil {
			sz += 16 + 24*int64(len(h.Alignment.Pairs))
		}
	}
	for _, acc := range d.workers {
		sz += 24
		for _, ev := range acc.Events {
			sz += 96 + int64(len(ev.Func))
		}
	}
	for name := range d.streamed {
		sz += 16 + int64(len(name))
	}
	return sz
}

// ChainFingerprint is the content identity of a chain for cross-request
// cache keys: molecule type and residues, independent of the per-complex
// chain label and copy count. Two chains with equal fingerprints produce
// byte-identical search deltas under the same scope and options.
func ChainFingerprint(chain inputs.Chain) string {
	s := chain.Sequence
	return fmt.Sprintf("%d|%s|%s", s.Type, s.ID, s.Letters())
}
