package msa

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"afsysbench/internal/inputs"
)

// assertSameResult checks the full determinism contract between two MSA
// results: per-chain summaries, worker metering event streams, streamed
// bytes, serial work and features must be bitwise identical. Operational
// counters (RestoredChains, Hedges) are deliberately excluded.
func assertSameResult(t *testing.T, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.PerChain, b.PerChain) {
		t.Errorf("per-chain results differ:\n%+v\n%+v", a.PerChain, b.PerChain)
	}
	if a.TotalHitResidues != b.TotalHitResidues {
		t.Errorf("TotalHitResidues %d != %d", a.TotalHitResidues, b.TotalHitResidues)
	}
	if a.SerialInstructions != b.SerialInstructions {
		t.Errorf("SerialInstructions %d != %d", a.SerialInstructions, b.SerialInstructions)
	}
	if !reflect.DeepEqual(a.Streamed, b.Streamed) {
		t.Errorf("streamed bytes differ:\n%v\n%v", a.Streamed, b.Streamed)
	}
	if len(a.Workers) != len(b.Workers) {
		t.Fatalf("worker counts differ: %d vs %d", len(a.Workers), len(b.Workers))
	}
	for w := range a.Workers {
		if !reflect.DeepEqual(a.Workers[w].Events, b.Workers[w].Events) {
			t.Errorf("worker %d event stream differs (%d vs %d events)",
				w, len(a.Workers[w].Events), len(b.Workers[w].Events))
		}
	}
	if !reflect.DeepEqual(a.Features, b.Features) {
		t.Errorf("features differ: %+v vs %+v", a.Features, b.Features)
	}
	if len(a.Pairing.Rows) != len(b.Pairing.Rows) {
		t.Errorf("paired rows %d != %d", len(a.Pairing.Rows), len(b.Pairing.Rows))
	}
}

// TestCheckpointResumeOnlyFailedChains is the headline resumability test:
// a run that faults on chain B checkpoints chain A; the retry replays A
// from the checkpoint, re-searches only B and C, and the final result is
// bitwise identical to a fault-free run.
func TestCheckpointResumeOnlyFailedChains(t *testing.T) {
	in, _ := inputs.ByName("1YY9") // three distinct protein chains A, B, C
	base := Options{Threads: 2, DBs: dbs(t), CheckpointScope: "full"}

	clean, err := Run(in, base)
	if err != nil {
		t.Fatal(err)
	}

	cp := NewCheckpoint()
	boom := errors.New("injected chain fault")
	faultB := true
	var mu sync.Mutex
	var searched []string
	opts := base
	opts.Checkpoint = cp
	opts.ChainFault = func(chainID string, attempt int) error {
		mu.Lock()
		defer mu.Unlock()
		searched = append(searched, chainID)
		if chainID == "B" && faultB {
			faultB = false
			return boom
		}
		return nil
	}

	if _, err := Run(in, opts); !errors.Is(err, boom) {
		t.Fatalf("first attempt error = %v, want injected fault", err)
	}
	// Chains run in order: A completed and checkpointed, B faulted, C
	// never started.
	if cp.Len() != 1 {
		t.Fatalf("checkpointed chains after fault = %d, want 1", cp.Len())
	}

	mu.Lock()
	searched = nil
	mu.Unlock()
	res, err := Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := append([]string(nil), searched...)
	mu.Unlock()
	if !reflect.DeepEqual(got, []string{"B", "C"}) {
		t.Fatalf("retry searched chains %v, want only [B C]", got)
	}
	if res.RestoredChains != 1 {
		t.Errorf("RestoredChains = %d, want 1", res.RestoredChains)
	}
	assertSameResult(t, clean, res)
}

// TestCheckpointScopeIsolation: deltas recorded against one database
// profile must not replay under another scope (a degradation-ladder
// re-plan searches different databases).
func TestCheckpointScopeIsolation(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	cp := NewCheckpoint()
	opts := Options{Threads: 1, DBs: dbs(t), Checkpoint: cp, CheckpointScope: "full"}
	if _, err := Run(in, opts); err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 1 {
		t.Fatalf("checkpointed chains = %d, want 1", cp.Len())
	}
	opts.CheckpointScope = "reduced"
	res, err := Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RestoredChains != 0 {
		t.Errorf("scope %q replayed %d chains from scope %q", "reduced", res.RestoredChains, "full")
	}
	// Same scope does replay.
	opts.CheckpointScope = "full"
	res, err = Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RestoredChains != 1 {
		t.Errorf("same-scope retry restored %d chains, want 1", res.RestoredChains)
	}
}

// TestHedgedRunDeterministic: with an aggressive hedge budget every chain
// races a backup attempt, and the result must still be bitwise identical
// to an unhedged run — hedging trades CPU for latency, never output.
func TestHedgedRunDeterministic(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	base := Options{Threads: 2, DBs: dbs(t)}
	clean, err := Run(in, base)
	if err != nil {
		t.Fatal(err)
	}
	hedged := base
	hedged.HedgeAfter = time.Nanosecond // backup launches essentially immediately
	res, err := Run(in, hedged)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hedges != 1 {
		t.Errorf("Hedges = %d, want 1", res.Hedges)
	}
	assertSameResult(t, clean, res)
}

// TestHedgeBackupRescuesFailingPrimary: the primary attempt stalls past
// the hedge budget and then fails; the backup attempt (attempt 2, whose
// fault budget is clear) completes the chain and the run succeeds with an
// unchanged result.
func TestHedgeBackupRescuesFailingPrimary(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	base := Options{Threads: 2, DBs: dbs(t)}
	clean, err := Run(in, base)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("primary died")
	opts := base
	opts.HedgeAfter = time.Millisecond
	opts.ChainFault = func(chainID string, attempt int) error {
		if attempt == 1 {
			// Fail only after the hedge timer has fired, so the backup
			// is already racing when the primary dies.
			time.Sleep(10 * time.Millisecond)
			return boom
		}
		return nil
	}
	res, err := Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hedges != 1 || res.HedgeBackupWins != 1 {
		t.Errorf("Hedges = %d, HedgeBackupWins = %d, want 1/1", res.Hedges, res.HedgeBackupWins)
	}
	assertSameResult(t, clean, res)
}

// TestHedgePrimaryFailureBeforeTimer: a primary that fails before the
// hedge budget elapses reports immediately — no backup is launched; the
// failure belongs to the stage-retry path, not the hedge path.
func TestHedgePrimaryFailureBeforeTimer(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	boom := errors.New("fast failure")
	opts := Options{
		Threads:    1,
		DBs:        dbs(t),
		HedgeAfter: time.Hour,
		ChainFault: func(chainID string, attempt int) error {
			if attempt == 1 {
				return boom
			}
			return nil
		},
	}
	start := time.Now()
	_, err := Run(in, opts)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want fast failure", err)
	}
	if time.Since(start) > 30*time.Second {
		t.Error("fast-failing primary waited on the hedge timer")
	}
}

// TestChainDoneObservesSearchedChainsOnly: the latency observer fires for
// real searches, not checkpoint replays.
func TestChainDoneObservesSearchedChainsOnly(t *testing.T) {
	in, _ := inputs.ByName("2PV7")
	cp := NewCheckpoint()
	var mu sync.Mutex
	done := map[string]int{}
	opts := Options{
		Threads: 1, DBs: dbs(t), Checkpoint: cp, CheckpointScope: "s",
		ChainDone: func(chainID string, wall time.Duration) {
			mu.Lock()
			done[chainID]++
			mu.Unlock()
		},
	}
	if _, err := Run(in, opts); err != nil {
		t.Fatal(err)
	}
	if done["A"] != 1 {
		t.Fatalf("ChainDone counts after first run = %v", done)
	}
	if _, err := Run(in, opts); err != nil {
		t.Fatal(err)
	}
	if done["A"] != 1 {
		t.Errorf("ChainDone fired for a checkpoint replay: %v", done)
	}
}
