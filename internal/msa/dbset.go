// Package msa implements AlphaFold3's MSA phase: per-chain homology search
// fan-out (jackhmmer-style iterative protein search, nhmmer-style RNA
// scan) over the reference databases, shard-parallel across worker threads
// exactly like HMMER's --cpu option, followed by alignment stacking and
// featurization. Every worker reports metering events; footprint.go turns
// one run's measurements into a simhw.RunSpec so the paper's two platforms
// can replay it at any thread count.
package msa

import (
	"fmt"
	"hash/fnv"
	"strings"

	"afsysbench/internal/inputs"
	"afsysbench/internal/seq"
	"afsysbench/internal/seqdb"
)

// DBSet bundles the reference databases the MSA phase searches, mirroring
// the AF3 pipeline's split: protein chains search the protein corpora,
// RNA chains search the nucleotide corpora (paper Section II: nhmmer and
// the 89 GiB RNA database).
type DBSet struct {
	Protein []*seqdb.DB
	RNA     []*seqdb.DB
}

// DBConfig controls synthetic database construction.
type DBConfig struct {
	// Seed namespaces all generated records.
	Seed uint64
	// SeqsPerDB is the synthetic record count per database.
	SeqsPerDB int
	// HomologsPerQuery plants this many relatives of every benchmark chain
	// in each matching database.
	HomologsPerQuery int
}

// DefaultDBConfig returns the standard suite configuration.
func DefaultDBConfig() DBConfig {
	return DBConfig{Seed: 7, SeqsPerDB: 120, HomologsPerQuery: 5}
}

// Modeled (paper-scale) database sizes. The protein corpora follow AF3's
// reduced protein set; the three RNA corpora sum to the paper's 89 GiB RNA
// database.
var dbCatalog = []struct {
	name        string
	t           seq.MoleculeType
	meanLen     int
	lowComplex  float64
	modeledGiB  float64
	description string
}{
	{"uniref_s", seq.Protein, 220, 0.12, 60, "UniRef-like primary protein corpus"},
	{"mgnify_s", seq.Protein, 160, 0.22, 25, "metagenomic protein corpus"},
	{"rnacentral_s", seq.RNA, 300, 0.02, 50, "RNAcentral-like corpus"},
	{"nt_rna_s", seq.RNA, 400, 0.02, 34, "nucleotide RNA corpus"},
	{"rfam_s", seq.RNA, 200, 0.02, 5, "Rfam-like family corpus"},
}

// BuildDBSet generates the synthetic reference databases, planting
// homologs for every MSA-searched chain of the given inputs so searches
// recruit genuine relatives.
func BuildDBSet(samples []*inputs.Input, cfg DBConfig) (*DBSet, error) {
	if cfg.SeqsPerDB <= 0 {
		return nil, fmt.Errorf("msa: SeqsPerDB must be positive, got %d", cfg.SeqsPerDB)
	}
	var protQueries, rnaQueries []*seq.Sequence
	for _, in := range samples {
		for _, c := range in.MSAChains() {
			switch c.Sequence.Type {
			case seq.Protein:
				protQueries = append(protQueries, c.Sequence)
			case seq.RNA:
				rnaQueries = append(rnaQueries, c.Sequence)
			}
		}
	}
	set := &DBSet{}
	for i, entry := range dbCatalog {
		homs := protQueries
		if entry.t == seq.RNA {
			homs = rnaQueries
		}
		db, err := seqdb.Generate(seqdb.Spec{
			Name:             entry.name,
			Type:             entry.t,
			NumSeqs:          cfg.SeqsPerDB,
			MeanLen:          entry.meanLen,
			LowComplexFrac:   entry.lowComplex,
			Homologs:         homs,
			HomologsPerQuery: cfg.HomologsPerQuery,
			Seed:             cfg.Seed + uint64(i)*1000,
		})
		if err != nil {
			return nil, fmt.Errorf("msa: generating %s: %w", entry.name, err)
		}
		// Pin the modeled footprint to the catalog's paper-scale size.
		db.ScaleFactor = entry.modeledGiB * float64(1<<30) / float64(db.SyntheticBytes())
		switch entry.t {
		case seq.Protein:
			set.Protein = append(set.Protein, db)
		case seq.RNA:
			set.RNA = append(set.RNA, db)
		}
	}
	return set, nil
}

// Fingerprint returns a stable identity for the database profile: every
// database's name, molecule type, record count, residue totals, modeled
// footprint and a checksum over the record contents, in catalog order. Two
// profiles that differ in any database — a different corpus build or seed,
// a dropped database, a rescaled footprint — produce different
// fingerprints. The serving layer folds it into its content-addressed
// cache keys so a warm cache can never hand results across incompatible
// database configurations.
func (s *DBSet) Fingerprint() string {
	h := fnv.New64a()
	var b strings.Builder
	for _, db := range append(append([]*seqdb.DB{}, s.Protein...), s.RNA...) {
		h.Reset()
		for _, sq := range db.Seqs {
			h.Write([]byte(sq.ID))
			h.Write([]byte{0})
			h.Write(sq.Residues)
		}
		fmt.Fprintf(&b, "%s|%d|%d|%d|%d|%016x;",
			db.Name, db.Type, len(db.Seqs), db.TotalResidues(), db.ModeledBytes(), h.Sum64())
	}
	return b.String()
}

// For returns the databases a chain of the given type searches.
func (s *DBSet) For(t seq.MoleculeType) []*seqdb.DB {
	switch t {
	case seq.Protein:
		return s.Protein
	case seq.RNA, seq.DNA:
		return s.RNA
	default:
		return nil
	}
}

// ModeledBytes sums the paper-scale footprint of all databases.
func (s *DBSet) ModeledBytes() int64 {
	var total int64
	for _, db := range s.Protein {
		total += db.ModeledBytes()
	}
	for _, db := range s.RNA {
		total += db.ModeledBytes()
	}
	return total
}
