package msa

import (
	"testing"

	"afsysbench/internal/inputs"
)

func TestDBSetFingerprint(t *testing.T) {
	build := func(cfg DBConfig) *DBSet {
		t.Helper()
		set, err := BuildDBSet(inputs.Samples(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	a := build(DefaultDBConfig())
	b := build(DefaultDBConfig())
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical builds must fingerprint identically")
	}

	// A dropped database changes the identity.
	dropped := build(DefaultDBConfig())
	dropped.Protein = dropped.Protein[1:]
	if dropped.Fingerprint() == a.Fingerprint() {
		t.Fatal("dropping a database did not change the fingerprint")
	}

	// Different record content (another seed) changes the identity.
	cfg := DefaultDBConfig()
	cfg.Seed++
	if build(cfg).Fingerprint() == a.Fingerprint() {
		t.Fatal("different corpus content did not change the fingerprint")
	}

	// A rescaled modeled footprint changes the identity even with the same
	// records.
	rescaled := build(DefaultDBConfig())
	rescaled.RNA[0].ScaleFactor *= 2
	if rescaled.Fingerprint() == a.Fingerprint() {
		t.Fatal("rescaled footprint did not change the fingerprint")
	}
}
