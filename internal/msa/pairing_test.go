package msa

import (
	"testing"

	"afsysbench/internal/hmmer"
	"afsysbench/internal/inputs"
	"afsysbench/internal/seqdb"
)

func hit(id string, e float64) hmmer.Hit {
	return hmmer.Hit{TargetID: id, EValue: e}
}

func TestSpeciesOf(t *testing.T) {
	if got := seqdb.SpeciesOf("uniref_s|000012@sp07"); got != "sp07" {
		t.Errorf("SpeciesOf = %q", got)
	}
	if got := seqdb.SpeciesOf("plain-id"); got != "" {
		t.Errorf("untagged id gave %q", got)
	}
}

func TestPairChainsMatchesAcrossChains(t *testing.T) {
	perChain := [][]hmmer.Hit{
		{hit("db|a@sp01", 1e-9), hit("db|b@sp02", 1e-8)},
		{hit("db|c@sp01", 1e-7), hit("db|d@sp03", 1e-6)},
	}
	res := pairChains(perChain)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only sp01 spans both chains)", len(res.Rows))
	}
	row := res.Rows[0]
	if row.Species != "sp01" || row.HitIDs[0] != "db|a@sp01" || row.HitIDs[1] != "db|c@sp01" {
		t.Errorf("row wrong: %+v", row)
	}
	if !row.Complete() || res.CompleteRows != 1 {
		t.Error("complete-row accounting wrong")
	}
}

func TestPairChainsBestPerSpecies(t *testing.T) {
	perChain := [][]hmmer.Hit{
		{hit("db|weak@sp01", 1e-3), hit("db|strong@sp01", 1e-12)},
		{hit("db|x@sp01", 1e-5)},
	}
	res := pairChains(perChain)
	if len(res.Rows) != 1 {
		t.Fatal("pairing missing")
	}
	if res.Rows[0].HitIDs[0] != "db|strong@sp01" {
		t.Errorf("best-per-species not honored: %+v", res.Rows[0])
	}
}

func TestPairChainsPartialRows(t *testing.T) {
	// Three chains, one species present in only two of them.
	perChain := [][]hmmer.Hit{
		{hit("a@sp05", 1e-9)},
		{hit("b@sp05", 1e-9)},
		{hit("c@sp09", 1e-9)},
	}
	res := pairChains(perChain)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Complete() {
		t.Error("two-of-three row reported complete")
	}
	if res.CompleteRows != 0 {
		t.Error("complete count wrong")
	}
}

func TestPairChainsSingleChainEmpty(t *testing.T) {
	res := pairChains([][]hmmer.Hit{{hit("a@sp01", 1e-9)}})
	if len(res.Rows) != 0 {
		t.Error("single-chain input must not pair")
	}
	if res := pairChains(nil); len(res.Rows) != 0 {
		t.Error("empty input must not pair")
	}
}

func TestPairChainsIgnoresUntagged(t *testing.T) {
	perChain := [][]hmmer.Hit{
		{hit("no-species", 1e-9)},
		{hit("also-none", 1e-9)},
	}
	if res := pairChains(perChain); len(res.Rows) != 0 {
		t.Error("untagged hits paired")
	}
}

func TestPipelinePairsComplexSamples(t *testing.T) {
	// 1YY9 has three protein chains whose planted homologs share species
	// tags: the pipeline must produce complete paired rows.
	in, _ := inputs.ByName("1YY9")
	res, err := Run(in, Options{Threads: 2, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairing == nil || len(res.Pairing.Rows) == 0 {
		t.Fatal("no paired rows for a three-chain complex")
	}
	if res.Pairing.CompleteRows == 0 {
		t.Error("no complete rows despite shared homolog species")
	}
	if res.Features.PairedRows != len(res.Pairing.Rows) {
		t.Error("features do not carry the pairing depth")
	}
	// 2PV7 has a single unique chain: nothing to pair.
	mono, _ := inputs.ByName("2PV7")
	mres, err := Run(mono, Options{Threads: 2, DBs: dbs(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(mres.Pairing.Rows) != 0 {
		t.Error("single-chain sample produced paired rows")
	}
}
