package msa

import (
	"sort"
	"strings"

	"afsysbench/internal/platform"
	"afsysbench/internal/simhw"
)

// Footprint model: the CPU simulator needs, per function class, the reused
// hot working set (and its thread-shared portion) at paper scale. These
// are modeled from sample features, not measured from the MiB-scale
// synthetic run, because they are properties of the full-size workload:
//
//   - the shared hot set is HMMER's reader block window plus the recruited
//     alignment stack (grows with query length and with how many hit
//     residues the search accumulates — promo's ambiguous-match explosion
//     directly inflates it, which is what makes its LLC behavior improve
//     with threads on Intel, Section V-B2b);
//   - the private hot set is each worker's DP arenas, growing with query
//     length;
//   - copy_to_iter streams the database itself.
//
// The constants put the 2PV7 hot set between the two platforms' LLC sizes
// (30 MiB < hot < 64 MiB), which is the regime Table III documents.
const (
	sharedHotBase         = 1 << 20  // top-hits headers
	sharedHotPerCand      = 8 << 10  // scored-alignment scratch per DP'd candidate
	sharedHotPerHitRes    = 64       // recruited hit residues in the shared stack
	privateHotBase        = 6 << 20  // per-worker DP arena floor
	privateHotPerResidue  = 12 << 10 // banded DP + forward matrices per query residue
	seedIndexHotPerRes    = 2 << 10
	seedIndexHotBase      = 2 << 20
	bufferHotBytes        = 256 << 10
	regularityPerLowCplx  = 2.0
	regularityCap         = 0.60
	serialStreamFractions = 0.02
)

// BuildRunSpec converts one measured MSA run into a CPU-model spec for the
// given machine. The run's event volumes are already scaled to paper-size
// databases; this attaches the modeled footprints and regularity.
func BuildRunSpec(mach platform.Machine, res *Result) simhw.RunSpec {
	n := res.Input.TotalResidues()
	lcf := res.Input.MaxLowComplexity()
	regularity := regularityPerLowCplx * lcf
	if regularity > regularityCap {
		regularity = regularityCap
	}

	candidates := 0
	for _, c := range res.PerChain {
		candidates += c.Candidates
	}
	sharedHot := uint64(sharedHotBase + candidates*sharedHotPerCand + res.TotalHitResidues*sharedHotPerHitRes)
	privateHot := uint64(privateHotBase + n*privateHotPerResidue)
	seedHot := uint64(seedIndexHotBase + n*seedIndexHotPerRes)

	spec := simhw.RunSpec{
		Machine:            mach,
		SerialInstructions: res.SerialInstructions,
	}
	// The buffering layer (copy_to_iter/addbuf/seebuf) is HMMER's
	// serialized master/reader thread: merge it out of the workers into
	// the reader lane.
	reader := make(map[string]simhw.FuncWork)
	var totalStream uint64
	for _, w := range res.Workers {
		tw := simhw.ThreadWork{}
		byFunc := w.ByFunc()
		names := make([]string, 0, len(byFunc))
		for name := range byFunc {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ev := byFunc[name]
			fw := simhw.FuncWork{
				Func:           ev.Func,
				Instructions:   ev.Instructions,
				Bytes:          ev.Bytes,
				Branches:       ev.Branches,
				BranchMissRate: ev.BranchMissRate,
				Pattern:        ev.Pattern,
				Allocated:      ev.Allocated,
			}
			switch {
			case strings.HasPrefix(ev.Func, "calc_band"),
				ev.Func == "viterbi_full",
				ev.Func == "forward_band",
				ev.Func == "msv_filter",
				ev.Func == "msv_swar",
				ev.Func == "ssv_band":
				fw.HotBytes = sharedHot + privateHot
				fw.SharedHotBytes = sharedHot
				fw.Regularity = regularity
				tw.Funcs = append(tw.Funcs, fw)
			case ev.Func == "seed_filter":
				fw.HotBytes = seedHot
				fw.SharedHotBytes = seedHot
				fw.Regularity = regularity
				tw.Funcs = append(tw.Funcs, fw)
			case ev.Func == "copy_to_iter":
				// Half the reported traffic is the read side streaming
				// straight from the page cache.
				fw.StreamBytes = ev.Bytes / 2
				totalStream += fw.StreamBytes
				addReaderWork(reader, fw)
			case ev.Func == "addbuf" || ev.Func == "seebuf":
				fw.HotBytes = bufferHotBytes
				addReaderWork(reader, fw)
			default:
				fw.HotBytes = bufferHotBytes
				tw.Funcs = append(tw.Funcs, fw)
			}
		}
		spec.Threads = append(spec.Threads, tw)
	}
	names := make([]string, 0, len(reader))
	for name := range reader {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec.Reader = append(spec.Reader, reader[name])
	}
	spec.SerialStreamBytes = uint64(float64(totalStream) * serialStreamFractions)
	return spec
}

// addReaderWork merges a function's work into the reader lane.
func addReaderWork(reader map[string]simhw.FuncWork, fw simhw.FuncWork) {
	cur, ok := reader[fw.Func]
	if !ok {
		reader[fw.Func] = fw
		return
	}
	cur.Instructions += fw.Instructions
	cur.Bytes += fw.Bytes
	cur.Branches += fw.Branches
	cur.StreamBytes += fw.StreamBytes
	cur.Allocated += fw.Allocated
	reader[fw.Func] = cur
}
