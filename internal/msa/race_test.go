package msa

import (
	"sync"
	"testing"

	"afsysbench/internal/inputs"
)

// TestConcurrentRunsShareWorkspacePool exercises the hmmer scan-workspace
// sync.Pool from many directions at once: several Run calls in flight, each
// fanning out worker shards that take and release pooled workspaces. Under
// -race (the Makefile's race target includes this package) this catches any
// scratch buffer escaping its owning shard; without -race it still pins
// result stability across pool reuse.
func TestConcurrentRunsShareWorkspacePool(t *testing.T) {
	in, err := inputs.ByName("2PV7")
	if err != nil {
		t.Fatal(err)
	}
	set := dbs(t)
	baseline, err2 := Run(in, Options{Threads: 4, DBs: set})
	if err2 != nil {
		t.Fatal(err2)
	}

	const runs = 4
	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(in, Options{Threads: 4, DBs: set})
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		for c, cr := range results[i].PerChain {
			want := baseline.PerChain[c]
			if cr.Hits != want.Hits || cr.Candidates != want.Candidates ||
				cr.CellsDP != want.CellsDP || cr.CellsPruned != want.CellsPruned ||
				cr.LanesRejected != want.LanesRejected {
				t.Errorf("run %d chain %s diverged from baseline: %+v vs %+v",
					i, cr.ChainID, cr, want)
			}
		}
	}
}
