package inputs

import (
	"testing"
)

func TestPPIPairSharesPoolSequences(t *testing.T) {
	a, err := PPIPair(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PPIPair(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pool protein 3 appears in both pairs with the same sequence
	// identity and letters — that equality is what lets the chain cache
	// share its MSA across complexes.
	s1, s2 := a.Chains[1].Sequence, b.Chains[0].Sequence
	if s1.ID != s2.ID || s1.Letters() != s2.Letters() {
		t.Fatalf("pool chain 3 differs across pairs: %q vs %q", s1.ID, s2.ID)
	}
	if s1.ID != "ppi03" {
		t.Fatalf("pool chain ID = %q, want ppi03", s1.ID)
	}
}

func TestPPIHomodimer(t *testing.T) {
	in, err := PPIPair(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Chains) != 1 || in.Chains[0].Copies() != 2 {
		t.Fatalf("homodimer chains = %+v, want one entry with two copies", in.Chains)
	}
	if in.Name != "ppi-2x2" {
		t.Fatalf("name = %q", in.Name)
	}
}

func TestPPIPairBounds(t *testing.T) {
	for _, pair := range [][2]int{{-1, 0}, {0, PPIPoolSize}, {PPIPoolSize, 0}} {
		if _, err := PPIPair(pair[0], pair[1]); err == nil {
			t.Errorf("PPIPair(%d,%d) accepted out-of-pool index", pair[0], pair[1])
		}
	}
}

func TestPPIByName(t *testing.T) {
	in, err := ByName("ppi-1x4")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := PPIPair(1, 4)
	if in.Name != want.Name || in.TotalResidues() != want.TotalResidues() {
		t.Fatalf("ByName(ppi-1x4) = %+v, want %+v", in, want)
	}
	for _, bad := range []string{"ppi-", "ppi-1", "ppi-ax2", "ppi-1x99", "ppi-1x-2x3"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) accepted malformed/out-of-range name", bad)
		}
	}
	// Non-ppi names still resolve through the sample table.
	if _, err := ByName("1YY9"); err != nil {
		t.Fatal(err)
	}
}

func TestPPIAllPairs(t *testing.T) {
	pairs, err := PPIAllPairs(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 { // C(4,2) + 4 homodimers
		t.Fatalf("PPIAllPairs(4) = %d pairs, want 10", len(pairs))
	}
	seen := make(map[string]bool)
	for _, in := range pairs {
		if seen[in.Name] {
			t.Fatalf("duplicate pair %s", in.Name)
		}
		seen[in.Name] = true
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
	}
	all, err := PPIAllPairs(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := PPIPoolSize * (PPIPoolSize + 1) / 2; len(all) != want {
		t.Fatalf("PPIAllPairs(0) = %d pairs, want %d", len(all), want)
	}
}
