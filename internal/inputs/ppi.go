package inputs

import (
	"fmt"
	"strconv"
	"strings"

	"afsysbench/internal/seq"
)

// PPI screening pool: a fixed set of deterministic synthetic proteins
// whose pairwise combinations model an all-vs-all protein–protein
// interaction screen — the serving mix where chain-level caching pays,
// because every pool protein reappears in PPIPoolSize different
// complexes. Pool membership, lengths and letters are all derived from
// the sample seed, so `ppi-0x3` names the same assembly in every
// process.

// PPIPoolSize is the number of distinct proteins in the screening pool.
const PPIPoolSize = 10

// ppiPool returns the pool proteins. Chain i carries the sequence ID
// "ppiNN" in every pair it appears in — the identity the chain cache
// fingerprints — and lengths are staggered 100..145 so pairs stay cheap
// enough for tests while still differing in work.
func ppiPool() []*seq.Sequence {
	g := gen(6)
	pool := make([]*seq.Sequence, PPIPoolSize)
	for i := range pool {
		pool[i] = g.Random(fmt.Sprintf("ppi%02d", i), seq.Protein, 100+5*i)
	}
	return pool
}

// PPIPair returns the complex of pool proteins i and j, named
// "ppi-IxJ". i == j is the homodimer: one chain entry with two copies.
func PPIPair(i, j int) (*Input, error) {
	if i < 0 || i >= PPIPoolSize || j < 0 || j >= PPIPoolSize {
		return nil, fmt.Errorf("inputs: ppi pair (%d,%d) outside pool [0,%d)", i, j, PPIPoolSize)
	}
	pool := ppiPool()
	in := &Input{Name: fmt.Sprintf("ppi-%dx%d", i, j)}
	if i == j {
		in.Chains = []Chain{{IDs: []string{"A", "B"}, Sequence: pool[i]}}
	} else {
		in.Chains = []Chain{
			{IDs: []string{"A"}, Sequence: pool[i]},
			{IDs: []string{"B"}, Sequence: pool[j]},
		}
	}
	return in, nil
}

// PPIAllPairs returns every unordered pair i <= j in lexicographic
// order — the full all-vs-all screen over the first n pool proteins
// (n <= PPIPoolSize; n <= 0 means the whole pool).
func PPIAllPairs(n int) ([]*Input, error) {
	if n <= 0 || n > PPIPoolSize {
		n = PPIPoolSize
	}
	var out []*Input
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			in, err := PPIPair(i, j)
			if err != nil {
				return nil, err
			}
			out = append(out, in)
		}
	}
	return out, nil
}

// ppiByName resolves a "ppi-IxJ" name, returning ok=false for anything
// that is not a ppi name at all and an error for a malformed or
// out-of-range one.
func ppiByName(name string) (*Input, bool, error) {
	rest, ok := strings.CutPrefix(name, "ppi-")
	if !ok {
		return nil, false, nil
	}
	si, sj, ok := strings.Cut(rest, "x")
	if !ok {
		return nil, true, fmt.Errorf("inputs: malformed ppi name %q", name)
	}
	i, err1 := strconv.Atoi(si)
	j, err2 := strconv.Atoi(sj)
	if err1 != nil || err2 != nil {
		return nil, true, fmt.Errorf("inputs: malformed ppi name %q", name)
	}
	in, err := PPIPair(i, j)
	if err != nil {
		return nil, true, err
	}
	return in, true, nil
}
