package inputs

import (
	"bytes"
	"strings"
	"testing"

	"afsysbench/internal/seq"
)

func TestTableIIProperties(t *testing.T) {
	cases := []struct {
		name     string
		residues int
		chains   int
		hasRNA   bool
	}{
		{"2PV7", 484, 2, false},
		{"7RCE", 306, 3, false},
		{"1YY9", 881, 3, false},
		{"promo", 857, 5, false},
		{"6QNR", 1395, 10, true},
	}
	samples := Samples()
	if len(samples) != len(cases) {
		t.Fatalf("Samples() returned %d entries", len(samples))
	}
	for i, c := range cases {
		in := samples[i]
		if in.Name != c.name {
			t.Errorf("sample %d name %q, want %q", i, in.Name, c.name)
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.name, err)
		}
		if got := in.TotalResidues(); got != c.residues {
			t.Errorf("%s residues = %d, want %d (Table II)", c.name, got, c.residues)
		}
		if got := in.ChainCount(); got != c.chains {
			t.Errorf("%s chains = %d, want %d", c.name, got, c.chains)
		}
		if in.HasRNA() != c.hasRNA {
			t.Errorf("%s HasRNA = %v", c.name, in.HasRNA())
		}
	}
}

func TestPromoHasPolyQAnd1YY9DoesNot(t *testing.T) {
	promo, _ := ByName("promo")
	yy9, _ := ByName("1YY9")
	if promo.MaxLowComplexity() <= yy9.MaxLowComplexity() {
		t.Errorf("promo low-complexity %.3f not above 1YY9 %.3f",
			promo.MaxLowComplexity(), yy9.MaxLowComplexity())
	}
	run := 0
	for _, c := range promo.Chains {
		if c.Sequence.Type == seq.Protein {
			if r := c.Sequence.LongestRun(); r > run {
				run = r
			}
		}
	}
	if run < 60 {
		t.Errorf("promo longest repeat run = %d, want the planted poly-Q", run)
	}
}

func TestMSAChainsExcludeDNA(t *testing.T) {
	promo, _ := ByName("promo")
	for _, c := range promo.MSAChains() {
		if c.Sequence.Type == seq.DNA {
			t.Error("DNA chain in MSA set (paper Obs. 2: DNA excluded)")
		}
	}
	if len(promo.MSAChains()) != 3 {
		t.Errorf("promo MSA chains = %d, want 3 proteins", len(promo.MSAChains()))
	}
}

func TestSamplesDeterministic(t *testing.T) {
	a := SamplePromo()
	b := SamplePromo()
	if a.Chains[0].Sequence.Letters() != b.Chains[0].Sequence.Letters() {
		t.Error("sample generation not deterministic")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("2PV7"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown sample accepted")
	}
}

func TestMaxHelpers(t *testing.T) {
	q, _ := ByName("6QNR")
	if q.MaxRNALength() != 600 {
		t.Errorf("6QNR RNA length = %d", q.MaxRNALength())
	}
	if q.MaxProteinLength() != 120 {
		t.Errorf("6QNR max protein = %d", q.MaxProteinLength())
	}
	p, _ := ByName("2PV7")
	if p.MaxRNALength() != 0 {
		t.Error("protein-only sample reports RNA length")
	}
}

func TestRNASweepLengths(t *testing.T) {
	sweep := RNASweep()
	want := []int{621, 935, 1135, 1335}
	if len(sweep) != len(want) {
		t.Fatalf("sweep size %d", len(sweep))
	}
	for i, in := range sweep {
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := in.MaxRNALength(); got != want[i] {
			t.Errorf("sweep[%d] RNA length = %d, want %d", i, got, want[i])
		}
		if !in.HasRNA() {
			t.Error("sweep input missing RNA")
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, in := range Samples() {
		var buf bytes.Buffer
		if err := in.Write(&buf); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if got.Name != in.Name || got.TotalResidues() != in.TotalResidues() || got.ChainCount() != in.ChainCount() {
			t.Errorf("%s round trip mismatch", in.Name)
		}
		for i := range in.Chains {
			if got.Chains[i].Sequence.Type != in.Chains[i].Sequence.Type {
				t.Errorf("%s chain %d type changed", in.Name, i)
			}
			if got.Chains[i].Sequence.Letters() != in.Chains[i].Sequence.Letters() {
				t.Errorf("%s chain %d sequence changed", in.Name, i)
			}
		}
	}
}

func TestJSONFormatIsAF3Style(t *testing.T) {
	in, _ := ByName("7RCE")
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"name"`, `"modelSeeds"`, `"sequences"`, `"protein"`, `"dna"`, `"id"`, `"sequence"`} {
		if !strings.Contains(s, want) {
			t.Errorf("AF3 JSON missing %s", want)
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","sequences":[{}]}`,
		`{"name":"","sequences":[{"protein":{"id":["A"],"sequence":"ACD"}}]}`,
		`{"name":"x","sequences":[{"protein":{"id":[],"sequence":"ACD"}}]}`,
		`{"name":"x","sequences":[{"protein":{"id":["A"],"sequence":""}}]}`,
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestValidateDuplicateIDs(t *testing.T) {
	in := Sample2PV7()
	in.Chains = append(in.Chains, Chain{IDs: []string{"A"}, Sequence: in.Chains[0].Sequence})
	if err := in.Validate(); err == nil {
		t.Error("duplicate chain id accepted")
	}
}
