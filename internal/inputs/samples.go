package inputs

import (
	"fmt"

	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
)

// Table II of the paper. Each constructor returns a deterministic synthetic
// assembly with the published chain structure and total residue count.
//
//	2PV7   protein (2 chains, symmetric)      484   low
//	7RCE   protein (1) + DNA (2)              306   low-mid
//	1YY9   protein (3 chains, asymmetric)     881   mid
//	promo  protein (3) + DNA (2), poly-Q      857   mid-high
//	6QNR   protein (9) + RNA (1)            1,395   high

// sampleSeed namespaces the generators so every sample is reproducible.
const sampleSeed = 0xAF3

func gen(tag uint64) *seq.Generator {
	return seq.NewGenerator(rng.New(sampleSeed).Split(tag))
}

// Sample2PV7 is the symmetric two-chain protein benchmark (484 residues).
func Sample2PV7() *Input {
	g := gen(1)
	chain := g.Random("2PV7_A", seq.Protein, 242)
	return &Input{
		Name:   "2PV7",
		Chains: []Chain{{IDs: []string{"A", "B"}, Sequence: chain}},
	}
}

// Sample7RCE is the protein+DNA mixed-type baseline (306 residues).
func Sample7RCE() *Input {
	g := gen(2)
	return &Input{
		Name: "7RCE",
		Chains: []Chain{
			{IDs: []string{"A"}, Sequence: g.Random("7RCE_A", seq.Protein, 230)},
			{IDs: []string{"B"}, Sequence: g.Random("7RCE_B", seq.DNA, 38)},
			{IDs: []string{"C"}, Sequence: g.Random("7RCE_C", seq.DNA, 38)},
		},
	}
}

// Sample1YY9 is the asymmetric three-chain protein complex (881 residues)
// with diverse, high-complexity domains — the control against promo.
func Sample1YY9() *Input {
	g := gen(3)
	return &Input{
		Name: "1YY9",
		Chains: []Chain{
			{IDs: []string{"A"}, Sequence: g.Random("1YY9_A", seq.Protein, 450)},
			{IDs: []string{"B"}, Sequence: g.Random("1YY9_B", seq.Protein, 214)},
			{IDs: []string{"C"}, Sequence: g.Random("1YY9_C", seq.Protein, 217)},
		},
	}
}

// SamplePromo is the promoter complex (857 residues): three protein chains
// and two DNA chains, with a poly-glutamine repeat planted in chain A that
// floods database search with ambiguous partial matches (Observation 2).
func SamplePromo() *Input {
	g := gen(4)
	chainA := g.WithRepeat("promo_A", seq.Protein, 390, 80, seq.QIndex)
	return &Input{
		Name: "promo",
		Chains: []Chain{
			{IDs: []string{"A"}, Sequence: chainA},
			{IDs: []string{"B"}, Sequence: g.Random("promo_B", seq.Protein, 180)},
			{IDs: []string{"C"}, Sequence: g.Random("promo_C", seq.Protein, 187)},
			{IDs: []string{"D"}, Sequence: g.Random("promo_D", seq.DNA, 50)},
			{IDs: []string{"E"}, Sequence: g.Random("promo_E", seq.DNA, 50)},
		},
	}
}

// Sample6QNR is the high-complexity assembly (1,395 residues): nine protein
// chains plus one RNA chain, the sample that forced the desktop DRAM
// upgrade and unified-memory GPU fallback in the paper.
func Sample6QNR() *Input {
	g := gen(5)
	chains := []Chain{
		{IDs: []string{"R"}, Sequence: g.Random("6QNR_R", seq.RNA, 600)},
	}
	// Nine protein chains totaling 795 residues.
	lens := []int{120, 115, 105, 100, 95, 80, 70, 60, 50}
	for i, l := range lens {
		id := string(rune('A' + i))
		chains = append(chains, Chain{
			IDs:      []string{id},
			Sequence: g.Random("6QNR_"+id, seq.Protein, l),
		})
	}
	return &Input{Name: "6QNR", Chains: chains}
}

// Samples returns the five Table II benchmarks in paper order.
func Samples() []*Input {
	return []*Input{Sample2PV7(), Sample7RCE(), Sample1YY9(), SamplePromo(), Sample6QNR()}
}

// ByName returns a Table II sample or a "ppi-IxJ" screening pair by
// name.
func ByName(name string) (*Input, error) {
	if in, isPPI, err := ppiByName(name); isPPI {
		return in, err
	}
	for _, s := range Samples() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("inputs: unknown sample %q", name)
}

// RNASweep returns the Figure 2 inputs: ribosomal-complex-like assemblies
// whose RNA chain length sweeps the paper's measured points (621, 935,
// 1135, 1335), each accompanied by two small protein chains (which the
// paper shows have negligible memory impact).
func RNASweep() []*Input {
	lengths := []int{621, 935, 1135, 1335}
	out := make([]*Input, 0, len(lengths))
	for i, l := range lengths {
		g := gen(uint64(100 + i))
		name := fmt.Sprintf("7K00_rna%d", l)
		out = append(out, &Input{
			Name: name,
			Chains: []Chain{
				{IDs: []string{"R"}, Sequence: g.Random(name+"_R", seq.RNA, l)},
				{IDs: []string{"P"}, Sequence: g.Random(name+"_P", seq.Protein, 120)},
				{IDs: []string{"Q"}, Sequence: g.Random(name+"_Q", seq.Protein, 100)},
			},
		})
	}
	return out
}
