// Package inputs defines the AlphaFold3 JSON input schema and the benchmark
// samples of the paper's Table II. The real PDB entries (2PV7, 7RCE, 1YY9,
// the promoter complex, 6QNR) are proprietary-free, but their sequences are
// irrelevant to the characterization — only chain counts, chain types,
// total residue counts and sequence-complexity statistics matter. The
// samples here are deterministic synthetic assemblies matching those
// properties, including the poly-glutamine repeat in promo's chain A that
// stresses the MSA stage (paper Observation 2).
package inputs

import (
	"encoding/json"
	"fmt"
	"io"

	"afsysbench/internal/seq"
)

// Chain is one molecular chain of an input.
type Chain struct {
	// IDs lists the chain identifiers (AF3 groups identical chains).
	IDs      []string
	Sequence *seq.Sequence
}

// Copies returns how many copies of this chain the assembly contains.
func (c Chain) Copies() int { return len(c.IDs) }

// Input is one biomolecular assembly in AF3 terms.
type Input struct {
	Name   string
	Seeds  []int
	Chains []Chain
}

// TotalResidues returns the summed residue count over all chain copies —
// the "Seq. Length" column of Table II and the N of the inference model.
func (in *Input) TotalResidues() int {
	var n int
	for _, c := range in.Chains {
		n += c.Sequence.Len() * c.Copies()
	}
	return n
}

// ChainCount returns the total number of chain copies.
func (in *Input) ChainCount() int {
	var n int
	for _, c := range in.Chains {
		n += c.Copies()
	}
	return n
}

// MSAChains returns the chains that go through the MSA phase (protein and
// RNA; DNA and ligands are excluded).
func (in *Input) MSAChains() []Chain {
	var out []Chain
	for _, c := range in.Chains {
		if c.Sequence.Type.SearchesMSA() {
			out = append(out, c)
		}
	}
	return out
}

// HasRNA reports whether any chain is RNA (triggers nhmmer and its memory
// behavior).
func (in *Input) HasRNA() bool {
	for _, c := range in.Chains {
		if c.Sequence.Type == seq.RNA {
			return true
		}
	}
	return false
}

// MaxRNALength returns the longest RNA chain length (0 if none) — the
// input feature that drives the Figure 2 memory curve.
func (in *Input) MaxRNALength() int {
	max := 0
	for _, c := range in.Chains {
		if c.Sequence.Type == seq.RNA && c.Sequence.Len() > max {
			max = c.Sequence.Len()
		}
	}
	return max
}

// MaxProteinLength returns the longest protein chain length (0 if none).
func (in *Input) MaxProteinLength() int {
	max := 0
	for _, c := range in.Chains {
		if c.Sequence.Type == seq.Protein && c.Sequence.Len() > max {
			max = c.Sequence.Len()
		}
	}
	return max
}

// MaxLowComplexity returns the highest low-complexity fraction over the
// MSA-searched chains — the feature that separates promo from 1YY9.
func (in *Input) MaxLowComplexity() float64 {
	var worst float64
	for _, c := range in.MSAChains() {
		if f := c.Sequence.Complexity().LowComplexFrac; f > worst {
			worst = f
		}
	}
	return worst
}

// Validate checks structural consistency.
func (in *Input) Validate() error {
	if in.Name == "" {
		return fmt.Errorf("inputs: missing name")
	}
	if len(in.Chains) == 0 {
		return fmt.Errorf("inputs %s: no chains", in.Name)
	}
	seen := make(map[string]bool)
	for i, c := range in.Chains {
		if len(c.IDs) == 0 {
			return fmt.Errorf("inputs %s: chain %d has no IDs", in.Name, i)
		}
		for _, id := range c.IDs {
			if seen[id] {
				return fmt.Errorf("inputs %s: duplicate chain id %q", in.Name, id)
			}
			seen[id] = true
		}
		if c.Sequence == nil || c.Sequence.Len() == 0 {
			return fmt.Errorf("inputs %s: chain %d empty", in.Name, i)
		}
		if err := c.Sequence.Validate(); err != nil {
			return fmt.Errorf("inputs %s: %w", in.Name, err)
		}
	}
	return nil
}

// JSON wire format — the AF3 input schema subset the suite supports.

type jsonInput struct {
	Name       string          `json:"name"`
	ModelSeeds []int           `json:"modelSeeds"`
	Sequences  []jsonChainWrap `json:"sequences"`
}

type jsonChainWrap struct {
	Protein *jsonChain `json:"protein,omitempty"`
	DNA     *jsonChain `json:"dna,omitempty"`
	RNA     *jsonChain `json:"rna,omitempty"`
}

type jsonChain struct {
	ID       []string `json:"id"`
	Sequence string   `json:"sequence"`
}

// MarshalJSON renders the AF3 input format.
func (in *Input) MarshalJSON() ([]byte, error) {
	out := jsonInput{Name: in.Name, ModelSeeds: in.Seeds}
	if out.ModelSeeds == nil {
		out.ModelSeeds = []int{1}
	}
	for _, c := range in.Chains {
		jc := &jsonChain{ID: c.IDs, Sequence: c.Sequence.Letters()}
		var wrap jsonChainWrap
		switch c.Sequence.Type {
		case seq.Protein:
			wrap.Protein = jc
		case seq.DNA:
			wrap.DNA = jc
		case seq.RNA:
			wrap.RNA = jc
		default:
			return nil, fmt.Errorf("inputs: unsupported chain type %v", c.Sequence.Type)
		}
		out.Sequences = append(out.Sequences, wrap)
	}
	return json.Marshal(out)
}

// Read parses an AF3-format JSON input.
func Read(r io.Reader) (*Input, error) {
	var raw jsonInput
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("inputs: decoding: %w", err)
	}
	in := &Input{Name: raw.Name, Seeds: raw.ModelSeeds}
	for i, w := range raw.Sequences {
		var jc *jsonChain
		var t seq.MoleculeType
		switch {
		case w.Protein != nil:
			jc, t = w.Protein, seq.Protein
		case w.DNA != nil:
			jc, t = w.DNA, seq.DNA
		case w.RNA != nil:
			jc, t = w.RNA, seq.RNA
		default:
			return nil, fmt.Errorf("inputs: sequence entry %d has no recognized chain type", i)
		}
		id := "?"
		if len(jc.ID) > 0 {
			id = jc.ID[0]
		}
		s, err := seq.FromLetters(fmt.Sprintf("%s_%s", raw.Name, id), t, jc.Sequence)
		if err != nil {
			return nil, err
		}
		in.Chains = append(in.Chains, Chain{IDs: jc.ID, Sequence: s})
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// Write emits the AF3 JSON format.
func (in *Input) Write(w io.Writer) error {
	b, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
