package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"b", "22222"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name ") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("separator missing")
	}
	// Columns align: "value" column starts at the same offset everywhere.
	off := strings.Index(lines[0], "value")
	if strings.Index(lines[2], "1") != off {
		t.Errorf("column misaligned:\n%s", buf.String())
	}
}

func TestTableRaggedRows(t *testing.T) {
	var buf bytes.Buffer
	if err := Table(&buf, []string{"a", "b"}, [][]string{{"only"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only") {
		t.Error("short row dropped")
	}
}

func TestStackedBars(t *testing.T) {
	var buf bytes.Buffer
	bars := []Bar{
		{Label: "srv", Segments: []Segment{{"msa", 75}, {"inf", 25}}},
		{Label: "dsk", Segments: []Segment{{"msa", 40}, {"inf", 10}}},
	}
	if err := StackedBars(&buf, "title", bars, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "legend:") {
		t.Errorf("missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "=") {
		t.Error("segments not drawn with distinct glyphs")
	}
	// The 100-unit bar must be longer than the 50-unit bar.
	lines := strings.Split(out, "\n")
	srvHashes := strings.Count(lines[1], "#") + strings.Count(lines[1], "=")
	dskHashes := strings.Count(lines[2], "#") + strings.Count(lines[2], "=")
	if srvHashes <= dskHashes {
		t.Errorf("bar lengths not proportional: %d vs %d", srvHashes, dskHashes)
	}
}

func TestStackedBarsEmptyAndZero(t *testing.T) {
	var buf bytes.Buffer
	if err := StackedBars(&buf, "t", []Bar{{Label: "z", Segments: []Segment{{"a", 0}}}}, 10); err != nil {
		t.Fatal(err)
	}
}

func TestLineChart(t *testing.T) {
	var buf bytes.Buffer
	series := []Series{
		{Name: "a", Points: []Point{{1, 10}, {2, 5}}},
		{Name: "b", Points: []Point{{1, 8}, {2, 4}}},
	}
	if err := LineChart(&buf, "chart", "threads", series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chart", "threads", "a", "b", "10", "5"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLineChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := LineChart(&buf, "x", "t", nil); err == nil {
		t.Error("empty series accepted")
	}
	bad := []Series{
		{Name: "a", Points: []Point{{1, 1}, {2, 2}}},
		{Name: "b", Points: []Point{{1, 1}}},
	}
	if err := LineChart(&buf, "x", "t", bad); err == nil {
		t.Error("mismatched series lengths accepted")
	}
}

func TestPieSharesSum(t *testing.T) {
	var buf bytes.Buffer
	if err := Pie(&buf, "pie", []Segment{{"x", 3}, {"y", 1}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "75.0%") || !strings.Contains(out, "25.0%") {
		t.Errorf("shares wrong:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"a", "b"}, [][]string{{`has,comma`, `has"quote`}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"has,comma"`) || !strings.Contains(out, `"has""quote"`) {
		t.Errorf("escaping wrong: %s", out)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		5:    "5.0s",
		90:   "1.5m",
		7200: "2.0h",
	}
	for in, want := range cases {
		if got := formatSeconds(in); got != want {
			t.Errorf("formatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F2(1.234) != "1.23" || F1(1.26) != "1.3" || F0(2.7) != "3" || Pct(12.34) != "12.3%" {
		t.Error("formatters wrong")
	}
	if trimFloat(2.50) != "2.5" || trimFloat(3.00) != "3" {
		t.Error("trimFloat wrong")
	}
}

func TestRenderPlatformsAndSamples(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderPlatforms(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Server", "Desktop", "H100", "RTX 4080"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("platform table missing %q", want)
		}
	}
	buf.Reset()
	if err := RenderSamples(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2PV7", "7RCE", "1YY9", "promo", "6QNR", "1395"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("sample table missing %q", want)
		}
	}
}
