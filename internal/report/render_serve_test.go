package report

import (
	"strings"
	"testing"

	"afsysbench/internal/serve"
)

func TestRenderSchedule(t *testing.T) {
	sched := serve.Schedule{
		CPUWorkers: 2,
		GPUWorkers: 1,
		Items: []serve.ScheduleItem{
			{ID: "j0000", Sample: "promo", CPUWorker: 0, MSAStart: 0, MSAEnd: 100, InfStart: 100, InfEnd: 130},
			{ID: "j0001", Sample: "1YY9", CPUWorker: 1, MSAStart: 0, MSAEnd: 40, InfStart: 40, InfEnd: 90},
			{ID: "j0002", Sample: "1YY9", CacheHit: true, CPUWorker: 1, MSAStart: 40, MSAEnd: 40, InfStart: 90, InfEnd: 140},
		},
		Makespan: 140,
		CPUBusy:  140,
		GPUBusy:  130,
	}
	var b strings.Builder
	if err := RenderSchedule(&b, "serving schedule", sched, 300, 60); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"cpu#0", "cpu#1", "gpu#0", "3 requests (1 cache hits)", "speedup 2.14x"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// An empty schedule renders nothing but must not error out of the
	// summary path.
	var empty strings.Builder
	if err := RenderSchedule(&empty, "empty", serve.Schedule{CPUWorkers: 1, GPUWorkers: 1}, 0, 60); err == nil {
		t.Log("empty schedule rendered:", empty.String())
	}
}
