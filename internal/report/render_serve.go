package report

import (
	"fmt"
	"io"

	"afsysbench/internal/serve"
	"afsysbench/internal/trace"
)

// RenderSchedule prints a modeled serving schedule as a multi-lane gantt
// chart — one lane per CPU worker (MSA stages) and per GPU worker
// (inference stages) — followed by the makespan/utilization summary and
// the serial baseline. serial is the stock one-request-at-a-time makespan
// of the same trace (serve.Server.SerialMakespan); pass 0 to omit the
// comparison line.
func RenderSchedule(w io.Writer, title string, sched serve.Schedule, serial float64, width int) error {
	// Register lanes up front (CPU rows above GPU rows, in index order) so
	// idle workers still show and row order is independent of dispatch.
	lanes := &trace.Lanes{Title: title, Lane: make(map[string][]trace.Span)}
	for i := 0; i < sched.CPUWorkers; i++ {
		name := fmt.Sprintf("cpu#%d", i)
		lanes.Order = append(lanes.Order, name)
		lanes.Lane[name] = nil
	}
	for g := 0; g < sched.GPUWorkers; g++ {
		name := fmt.Sprintf("gpu#%d", g)
		lanes.Order = append(lanes.Order, name)
		lanes.Lane[name] = nil
	}
	for _, it := range sched.Items {
		// A cache hit charges zero MSA seconds: no span to draw.
		if it.MSAEnd > it.MSAStart {
			lanes.AddSpan(fmt.Sprintf("cpu#%d", it.CPUWorker), it.Sample, it.MSAStart, it.MSAEnd)
		}
		if it.InfEnd > it.InfStart {
			lanes.AddSpan(fmt.Sprintf("gpu#%d", it.GPUWorker), it.Sample, it.InfStart, it.InfEnd)
		}
	}
	if err := lanes.Render(w, width); err != nil {
		return err
	}
	hits := 0
	for _, it := range sched.Items {
		if it.CacheHit {
			hits++
		}
	}
	fmt.Fprintf(w, "  %d requests (%d cache hits), makespan %s, %s req/h, cpu util %s%%, gpu util %s%%\n",
		len(sched.Items), hits, F1(sched.Makespan), F1(sched.Throughput()*3600),
		F0(sched.CPUUtilPct()), F0(sched.GPUUtilPct()))
	if serial > 0 && sched.Makespan > 0 {
		fmt.Fprintf(w, "  serial (stock) makespan %s -> phase-split speedup %sx\n",
			F1(serial), F2(serial/sched.Makespan))
	}
	return nil
}
