package report

import (
	"bytes"
	"strings"
	"testing"

	"afsysbench/internal/core"
)

func TestRenderFigure2(t *testing.T) {
	rows := []core.MemRow{
		{RNALen: 621, PeakGiB: 79.3, VerdictOn: map[string]string{"Server": "OK", "Server+CXL": "OK"}, Note: "measured"},
		{RNALen: 1335, PeakGiB: 810, VerdictOn: map[string]string{"Server": "OOM", "Server+CXL": "OOM"}, Note: "projected"},
	}
	var buf bytes.Buffer
	if err := RenderFigure2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"512 GiB", "768 GiB", "621", "810.0", "OOM"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRenderFigure3GroupsBySample(t *testing.T) {
	rows := []core.PhaseRow{
		{Sample: "2PV7", Machine: "Server", Threads: 1, MSASeconds: 500, InferenceSeconds: 90},
		{Sample: "2PV7", Machine: "Desktop", Threads: 1, MSASeconds: 450, InferenceSeconds: 100},
		{Sample: "promo", Machine: "Server", Threads: 1, MSASeconds: 5000, InferenceSeconds: 110},
	}
	var buf bytes.Buffer
	if err := RenderFigure3(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sample 2PV7") || !strings.Contains(out, "sample promo") {
		t.Errorf("sample groups missing:\n%s", out)
	}
	if strings.Index(out, "sample 2PV7") > strings.Index(out, "sample promo") {
		t.Error("sample order not preserved")
	}
}

func TestRenderScalingAndFigure6(t *testing.T) {
	scal := []core.ScalingRow{
		{Sample: "6QNR", Machine: "Server", Threads: 1, Seconds: 5534, Speedup: 1},
		{Sample: "6QNR", Machine: "Server", Threads: 2, Seconds: 3397, Speedup: 1.63},
	}
	var buf bytes.Buffer
	if err := RenderScaling(&buf, "Figure 5", scal); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup by threads") {
		t.Error("speedup section missing")
	}

	inf := []core.InferenceRow{
		{Sample: "2PV7", Machine: "Server", Threads: 1, Seconds: 91},
		{Sample: "2PV7", Machine: "Server", Threads: 2, Seconds: 92},
	}
	buf.Reset()
	if err := RenderFigure6(&buf, inf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2PV7@Server") {
		t.Error("series name missing")
	}
}

func TestRenderFigure7And8(t *testing.T) {
	var buf bytes.Buffer
	shares := []core.ShareRow{{Sample: "promo", Machine: "Server", OptimalThreads: 6, MSAPct: 94.1, InferencePct: 5.9}}
	if err := RenderFigure7(&buf, shares); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "94.1%") {
		t.Error("share missing")
	}
	buf.Reset()
	breakdown := []core.BreakdownRow{
		{Sample: "2PV7", Machine: "Server", Init: 22, Compile: 39, Compute: 21, Finalize: 9},
		{Sample: "6QNR", Machine: "Desktop", Init: 12, Compile: 16, Compute: 700, Finalize: 6, Spilled: true},
	}
	if err := RenderFigure8(&buf, breakdown); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "unified mem") {
		t.Error("spill annotation missing")
	}
	if !strings.Contains(out, "overhead") {
		t.Error("overhead column missing")
	}
}

func TestRenderFigure9AndTables(t *testing.T) {
	var buf bytes.Buffer
	layers := []core.LayerRow{
		{Sample: "2PV7", Module: "Diffusion", Layer: "global attention", Seconds: 13, SharePct: 62.5},
		{Sample: "2PV7", Module: "Pairformer", Layer: "triangle attention", Seconds: 2, SharePct: 9.0},
	}
	if err := RenderFigure9(&buf, layers); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "global attention") {
		t.Error("layer missing")
	}

	buf.Reset()
	cells := []core.Table3Cell{{Sample: "2PV7", Machine: "Server", Threads: 1, IPC: 3.74, LLCPct: 51.8}}
	if err := RenderTable3(&buf, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3.74") {
		t.Error("IPC missing")
	}

	buf.Reset()
	t4 := []core.Table4Row{
		{Metric: "cycles", Function: "calc_band_9", SharePct: map[string]float64{"2PV7/1T": 26.0}},
		{Metric: "cycles", Function: "tiny", SharePct: map[string]float64{"2PV7/1T": 0.5}},
	}
	if err := RenderTable4(&buf, t4, []string{"2PV7/1T"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "calc_band_9") {
		t.Error("hot function missing")
	}
	if strings.Contains(buf.String(), "tiny") {
		t.Error("sub-threshold function not filtered")
	}

	buf.Reset()
	t5 := []core.Table5Row{{EventType: "Page Faults", Symbol: "std::vector::_M_fill_insert", Sample: "2PV7", OverheadPct: 10}}
	if err := RenderTable5(&buf, t5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "_M_fill_insert") {
		t.Error("symbol missing")
	}

	buf.Reset()
	t6 := []core.Table6Row{{Label: "Pairformer", Per2PV7Seconds: 3.63, PromoSeconds: 15.06, IsModuleTotal: true}}
	if err := RenderTable6(&buf, t6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "15.06") {
		t.Error("value missing")
	}
}

func TestCSVMarshalers(t *testing.T) {
	h, rows := CSVFigure2([]core.MemRow{{RNALen: 621, PeakGiB: 79.3, VerdictOn: map[string]string{"Server": "OK"}}})
	if len(h) != 5 || len(rows) != 1 || rows[0][0] != "621" {
		t.Errorf("fig2 csv wrong: %v %v", h, rows)
	}
	h, rows = CSVFigure3([]core.PhaseRow{{Sample: "x", Machine: "m", Threads: 4, MSASeconds: 1, InferenceSeconds: 2}})
	if len(h) != 7 || rows[0][2] != "4" {
		t.Errorf("fig3 csv wrong")
	}
	h, rows = CSVScaling([]core.ScalingRow{{Sample: "x", Machine: "m", Threads: 2, Seconds: 10, Speedup: 2}})
	if len(h) != 5 || rows[0][4] != "2.00" {
		t.Error("scaling csv wrong")
	}
	h, rows = CSVFigure6([]core.InferenceRow{{Sample: "x", Machine: "m", Threads: 1, Seconds: 9}})
	if len(h) != 4 || len(rows) != 1 {
		t.Error("fig6 csv wrong")
	}
	h, rows = CSVFigure7([]core.ShareRow{{Sample: "x", Machine: "m", OptimalThreads: 6, MSAPct: 94.1}})
	if len(h) != 5 || rows[0][3] != "94.1" {
		t.Error("fig7 csv wrong")
	}
	h, rows = CSVFigure8([]core.BreakdownRow{{Sample: "x", Machine: "m", Init: 1, Compile: 2, Compute: 3, Finalize: 4, Spilled: true}})
	if len(h) != 8 || rows[0][7] != "true" {
		t.Error("fig8 csv wrong")
	}
	h, rows = CSVFigure9([]core.LayerRow{{Sample: "x", Module: "Diffusion", Layer: "global attention", Seconds: 1, SharePct: 50}})
	if len(h) != 5 || rows[0][2] != "global attention" {
		t.Error("fig9 csv wrong")
	}
	h, rows = CSVTable3([]core.Table3Cell{{Sample: "x", Machine: "m", Threads: 1, IPC: 3.7}})
	if len(h) != 9 || rows[0][3] != "3.70" {
		t.Error("tab3 csv wrong")
	}
	h, rows = CSVTable4([]core.Table4Row{{Metric: "cycles", Function: "f", SharePct: map[string]float64{"b": 2, "a": 1}}})
	if len(h) != 4 || len(rows) != 2 || rows[0][2] != "a" {
		t.Errorf("tab4 csv not sorted: %v", rows)
	}
	h, rows = CSVTable5([]core.Table5Row{{EventType: "e", Symbol: "s", Sample: "x", OverheadPct: 1}})
	if len(h) != 4 || len(rows) != 1 {
		t.Error("tab5 csv wrong")
	}
	h, rows = CSVTable6([]core.Table6Row{{Label: "l", Per2PV7Seconds: 1, PromoSeconds: 2, IsModuleTotal: true}})
	if len(h) != 4 || rows[0][1] != "true" {
		t.Error("tab6 csv wrong")
	}
}
