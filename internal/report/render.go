package report

import (
	"fmt"
	"io"

	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
)

// Renderers: one per paper artifact, consuming the typed rows produced by
// the core experiment functions.

// RenderFigure2 prints the RNA memory curve with the capacity lines.
func RenderFigure2(w io.Writer, rows []core.MemRow) error {
	fmt.Fprintln(w, "Figure 2: peak memory vs RNA sequence length (nhmmer)")
	srv := platform.Server()
	fmt.Fprintf(w, "  main memory: %d GiB; with CXL expansion: %d GiB\n",
		srv.DRAMBytes>>30, platform.ServerWithCXL().TotalMemBytes()>>30)
	var trows [][]string
	for _, r := range rows {
		trows = append(trows, []string{
			fmt.Sprint(r.RNALen),
			F1(r.PeakGiB),
			r.VerdictOn["Server"],
			r.VerdictOn["Server+CXL"],
			r.Note,
		})
	}
	return Table(w, []string{"RNA length", "peak GiB", "server", "server+CXL", "provenance"}, trows)
}

// RenderFigure3 prints the stacked phase bars grouped by sample.
func RenderFigure3(w io.Writer, rows []core.PhaseRow) error {
	fmt.Fprintln(w, "Figure 3: total execution time (MSA + inference) by sample, platform, threads")
	grouped := map[string][]core.PhaseRow{}
	var order []string
	for _, r := range rows {
		if _, ok := grouped[r.Sample]; !ok {
			order = append(order, r.Sample)
		}
		grouped[r.Sample] = append(grouped[r.Sample], r)
	}
	for _, sample := range order {
		var bars []Bar
		for _, r := range grouped[sample] {
			bars = append(bars, Bar{
				Label: fmt.Sprintf("%s %dT", r.Machine, r.Threads),
				Segments: []Segment{
					{Name: "MSA", Value: r.MSASeconds},
					{Name: "inference", Value: r.InferenceSeconds},
				},
			})
		}
		if err := StackedBars(w, "sample "+sample, bars, 50); err != nil {
			return err
		}
	}
	return nil
}

// RenderScaling prints Figure 4/5 style time+speedup curves.
func RenderScaling(w io.Writer, title string, rows []core.ScalingRow) error {
	fmt.Fprintln(w, title)
	type curveKey struct{ sample, machine string }
	grouped := map[curveKey][]core.ScalingRow{}
	var order []curveKey
	for _, r := range rows {
		k := curveKey{r.Sample, r.Machine}
		if _, ok := grouped[k]; !ok {
			order = append(order, k)
		}
		grouped[k] = append(grouped[k], r)
	}
	var timeSeries, speedupSeries []Series
	for _, k := range order {
		var tp, sp []Point
		for _, r := range grouped[k] {
			tp = append(tp, Point{X: float64(r.Threads), Y: r.Seconds})
			sp = append(sp, Point{X: float64(r.Threads), Y: r.Speedup})
		}
		name := k.sample + "@" + k.machine
		timeSeries = append(timeSeries, Series{Name: name + " (s)", Points: tp})
		speedupSeries = append(speedupSeries, Series{Name: name + " (x)", Points: sp})
	}
	if err := LineChart(w, "MSA time by threads", "threads", timeSeries); err != nil {
		return err
	}
	return LineChart(w, "speedup by threads", "threads", speedupSeries)
}

// RenderFigure6 prints inference time vs threads.
func RenderFigure6(w io.Writer, rows []core.InferenceRow) error {
	fmt.Fprintln(w, "Figure 6: inference time vs CPU threads")
	type curveKey struct{ sample, machine string }
	grouped := map[curveKey][]core.InferenceRow{}
	var order []curveKey
	for _, r := range rows {
		k := curveKey{r.Sample, r.Machine}
		if _, ok := grouped[k]; !ok {
			order = append(order, k)
		}
		grouped[k] = append(grouped[k], r)
	}
	var series []Series
	for _, k := range order {
		var pts []Point
		for _, r := range grouped[k] {
			pts = append(pts, Point{X: float64(r.Threads), Y: r.Seconds})
		}
		series = append(series, Series{Name: k.sample + "@" + k.machine, Points: pts})
	}
	return LineChart(w, "inference seconds", "threads", series)
}

// RenderFigure7 prints the phase-share bars.
func RenderFigure7(w io.Writer, rows []core.ShareRow) error {
	fmt.Fprintln(w, "Figure 7: relative time distribution at optimal threads")
	var trows [][]string
	for _, r := range rows {
		trows = append(trows, []string{
			r.Sample, r.Machine, fmt.Sprint(r.OptimalThreads),
			Pct(r.MSAPct), Pct(r.InferencePct),
		})
	}
	return Table(w, []string{"sample", "machine", "opt threads", "MSA", "inference"}, trows)
}

// RenderFigure8 prints the inference phase breakdown bars.
func RenderFigure8(w io.Writer, rows []core.BreakdownRow) error {
	fmt.Fprintln(w, "Figure 8: GPU inference time breakdown")
	var bars []Bar
	for _, r := range rows {
		label := fmt.Sprintf("%s@%s", r.Sample, r.Machine)
		if r.Spilled {
			label += " (unified mem)"
		}
		bars = append(bars, Bar{
			Label: label,
			Segments: []Segment{
				{Name: "init", Value: r.Init},
				{Name: "xla compile", Value: r.Compile},
				{Name: "gpu compute", Value: r.Compute},
				{Name: "finalize", Value: r.Finalize},
			},
		})
	}
	if err := StackedBars(w, "", bars, 50); err != nil {
		return err
	}
	var trows [][]string
	for _, r := range rows {
		trows = append(trows, []string{
			r.Sample, r.Machine, F1(r.Init), F1(r.Compile), F1(r.Compute), F1(r.Finalize), Pct(r.OverheadPct()),
		})
	}
	return Table(w, []string{"sample", "machine", "init s", "compile s", "compute s", "finalize s", "overhead"}, trows)
}

// RenderFigure9 prints the layer pies per sample.
func RenderFigure9(w io.Writer, rows []core.LayerRow) error {
	fmt.Fprintln(w, "Figure 9: Pairformer and Diffusion layer execution breakdown")
	grouped := map[string][]core.LayerRow{}
	var order []string
	for _, r := range rows {
		if _, ok := grouped[r.Sample]; !ok {
			order = append(order, r.Sample)
		}
		grouped[r.Sample] = append(grouped[r.Sample], r)
	}
	for _, sample := range order {
		var slices []Segment
		for _, r := range grouped[sample] {
			slices = append(slices, Segment{Name: r.Module + ": " + r.Layer, Value: r.Seconds})
		}
		if err := Pie(w, "sample "+sample, slices); err != nil {
			return err
		}
	}
	return nil
}

// RenderTable3 prints the CPU metric comparison.
func RenderTable3(w io.Writer, cells []core.Table3Cell) error {
	fmt.Fprintln(w, "Table III: CPU performance metrics across samples and thread counts")
	var trows [][]string
	for _, c := range cells {
		trows = append(trows, []string{
			c.Sample, c.Machine, fmt.Sprintf("%dT", c.Threads),
			F2(c.IPC), F1(c.CacheMPKI), F2(c.L1Pct), F1(c.LLCPct), F2(c.DTLBPct), F2(c.BranchPct),
		})
	}
	return Table(w, []string{"input", "machine", "threads", "IPC", "miss MPKI", "L1 %", "LLC %", "dTLB %", "branch %"}, trows)
}

// RenderTable4 prints the function-level profile.
func RenderTable4(w io.Writer, rows []core.Table4Row, cols []string) error {
	fmt.Fprintln(w, "Table IV: function-level performance on the Server")
	headers := append([]string{"metric", "function"}, cols...)
	var trows [][]string
	for _, r := range rows {
		// Skip functions that never reach 2% in any column to keep the
		// report at perf-report size.
		max := 0.0
		for _, c := range cols {
			if r.SharePct[c] > max {
				max = r.SharePct[c]
			}
		}
		if max < 2 {
			continue
		}
		row := []string{r.Metric, r.Function}
		for _, c := range cols {
			row = append(row, Pct(r.SharePct[c]))
		}
		trows = append(trows, row)
	}
	return Table(w, headers, trows)
}

// RenderTable5 prints the inference bottleneck profile.
func RenderTable5(w io.Writer, rows []core.Table5Row) error {
	fmt.Fprintln(w, "Table V: inference performance bottlenecks on the Server")
	var trows [][]string
	for _, r := range rows {
		trows = append(trows, []string{r.EventType, r.Symbol, r.Sample, Pct(r.OverheadPct)})
	}
	return Table(w, []string{"event type", "function/symbol", "sample", "overhead"}, trows)
}

// RenderTable6 prints the layer-wise ms table.
func RenderTable6(w io.Writer, rows []core.Table6Row) error {
	fmt.Fprintln(w, "Table VI: layer-wise execution time breakdown (seconds, simulated H100)")
	var trows [][]string
	for _, r := range rows {
		trows = append(trows, []string{r.Label, F2(r.Per2PV7Seconds), F2(r.PromoSeconds)})
	}
	return Table(w, []string{"layer", "2PV7 (s)", "promo (s)"}, trows)
}

// RenderPlatforms prints Table I.
func RenderPlatforms(w io.Writer) error {
	fmt.Fprintln(w, "Table I: system hardware configurations")
	var trows [][]string
	for _, m := range platform.All() {
		trows = append(trows, []string{
			m.Name, m.CPU.Name,
			fmt.Sprintf("%d/%d", m.CPU.Cores, m.CPU.Threads),
			fmt.Sprintf("%.1f/%.1f GHz", m.CPU.BaseClockGHz, m.CPU.MaxClockGHz),
			fmt.Sprintf("%d MiB", m.CPU.LLCBytes>>20),
			fmt.Sprintf("%d GiB", m.TotalMemBytes()>>30),
			m.GPU.Name,
		})
	}
	return Table(w, []string{"machine", "CPU", "cores/threads", "clock", "LLC", "memory", "GPU"}, trows)
}

// RenderSamples prints Table II.
func RenderSamples(w io.Writer) error {
	fmt.Fprintln(w, "Table II: input samples")
	var trows [][]string
	for _, name := range core.SampleNames() {
		in, err := sampleByName(name)
		if err != nil {
			return err
		}
		trows = append(trows, in)
	}
	return Table(w, []string{"sample", "chains", "residues", "RNA", "max low-complexity"}, trows)
}

func sampleByName(name string) ([]string, error) {
	in, err := inputs.ByName(name)
	if err != nil {
		return nil, err
	}
	rna := "-"
	if in.HasRNA() {
		rna = fmt.Sprint(in.MaxRNALength())
	}
	return []string{
		in.Name,
		fmt.Sprint(in.ChainCount()),
		fmt.Sprint(in.TotalResidues()),
		rna,
		fmt.Sprintf("%.2f", in.MaxLowComplexity()),
	}, nil
}

// RenderPipelineRun prints one end-to-end pipeline run — phase times, disk
// counters, the memory verdict and, when anything went wrong on the way,
// the resilience report (retries, dropped databases, degradation events).
func RenderPipelineRun(w io.Writer, pr *core.PipelineResult) error {
	fmt.Fprintf(w, "%s on %s (%d threads)\n", pr.Sample, pr.Machine, pr.Threads)
	rows := [][]string{
		{"MSA", F1(pr.MSASeconds), fmt.Sprintf("cpu %s, disk %s, util %s%%",
			F1(pr.MSACPUSeconds), F1(pr.MSADiskSeconds), F0(pr.DiskUtilPct))},
		{"inference", F1(pr.Inference.Total()), fmt.Sprintf("compute %s", F1(pr.Inference.ComputeSeconds))},
		{"total", F1(pr.TotalSeconds()), fmt.Sprintf("MSA share %s%%", F0(100*pr.MSAFraction()))},
	}
	if err := Table(w, []string{"phase", "seconds", "detail"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "memory: projected %.0f GiB, verdict %s\n",
		float64(pr.Memory.PeakBytes)/(1<<30), pr.Memory.Verdict)
	fmt.Fprintf(w, "disk:   %s\n", pr.DiskStats.String())
	rep := pr.Resilience
	if rep.Retries == 0 && !rep.Degraded && len(rep.Events) == 0 {
		return nil
	}
	fmt.Fprintf(w, "resilience: %s\n", rep.String())
	for _, e := range rep.Events {
		fmt.Fprintf(w, "  %s\n", e.String())
	}
	return nil
}
