// Package report renders the benchmark suite's experiment data as terminal
// tables and ASCII figures — the equivalent of the paper's plots, printable
// from any shell. It also emits CSV for external plotting.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table renders rows under headers with column alignment.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) {
				if n := utf8.RuneCountInString(cell); n > widths[i] {
					widths[i] = n
				}
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(headers))
		for i := range headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Segment is one stacked portion of a bar.
type Segment struct {
	Name  string
	Value float64
}

// Bar is one labeled stacked bar.
type Bar struct {
	Label    string
	Segments []Segment
}

// segmentGlyphs fills stacked bars; the legend maps glyphs to names.
var segmentGlyphs = []byte{'#', '=', '+', '.', '~', '%'}

// StackedBars renders horizontal stacked bars scaled to width characters,
// with a legend and per-bar totals.
func StackedBars(w io.Writer, title string, bars []Bar, width int) error {
	if width <= 0 {
		width = 60
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	var max float64
	labelW := 0
	for _, b := range bars {
		var total float64
		for _, s := range b.Segments {
			total += s.Value
		}
		if total > max {
			max = total
		}
		if n := utf8.RuneCountInString(b.Label); n > labelW {
			labelW = n
		}
	}
	if max == 0 {
		max = 1
	}
	legend := map[string]byte{}
	var legendOrder []string
	glyphFor := func(name string) byte {
		if g, ok := legend[name]; ok {
			return g
		}
		g := segmentGlyphs[len(legend)%len(segmentGlyphs)]
		legend[name] = g
		legendOrder = append(legendOrder, name)
		return g
	}
	for _, b := range bars {
		var sb strings.Builder
		var total float64
		for _, s := range b.Segments {
			total += s.Value
		}
		for _, s := range b.Segments {
			n := int(s.Value / max * float64(width))
			sb.Write(bytesRepeat(glyphFor(s.Name), n))
		}
		if _, err := fmt.Fprintf(w, "%s |%s %s\n", pad(b.Label, labelW), pad(sb.String(), width), formatSeconds(total)); err != nil {
			return err
		}
	}
	var parts []string
	for _, name := range legendOrder {
		parts = append(parts, fmt.Sprintf("%c=%s", legend[name], name))
	}
	_, err := fmt.Fprintf(w, "legend: %s\n", strings.Join(parts, " "))
	return err
}

func bytesRepeat(b byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// Series is one line of a line chart.
type Series struct {
	Name   string
	Points []Point
}

// Point is an (x, y) pair.
type Point struct {
	X float64
	Y float64
}

// LineChart renders series as aligned columns (x, then one column per
// series) — the terminal-friendly form of the paper's line figures.
func LineChart(w io.Writer, title, xLabel string, series []Series) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	headers := []string{xLabel}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	// Collect x values from the first series (all must align).
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	var rows [][]string
	for i, p := range series[0].Points {
		row := []string{trimFloat(p.X)}
		for _, s := range series {
			if i >= len(s.Points) {
				return fmt.Errorf("report: series %q has %d points, want %d", s.Name, len(s.Points), len(series[0].Points))
			}
			row = append(row, trimFloat(s.Points[i].Y))
		}
		rows = append(rows, row)
	}
	return Table(w, headers, rows)
}

// Pie renders a percentage breakdown sorted as given.
func Pie(w io.Writer, title string, slices []Segment) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	var total float64
	labelW := 0
	for _, s := range slices {
		total += s.Value
		if n := utf8.RuneCountInString(s.Name); n > labelW {
			labelW = n
		}
	}
	if total == 0 {
		total = 1
	}
	for _, s := range slices {
		pct := 100 * s.Value / total
		bar := bytesRepeat('#', int(pct/2))
		if _, err := fmt.Fprintf(w, "  %s %6.1f%% %s\n", pad(s.Name, labelW), pct, bar); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes rows as comma-separated values with a header.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	all := append([][]string{headers}, rows...)
	for _, row := range all {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatSeconds(v float64) string {
	switch {
	case v >= 3600:
		return fmt.Sprintf("%.1fh", v/3600)
	case v >= 60:
		return fmt.Sprintf("%.1fm", v/60)
	default:
		return fmt.Sprintf("%.1fs", v)
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// F2 formats with two decimals (helper for experiment renderers).
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F0 formats with no decimals.
func F0(v float64) string { return fmt.Sprintf("%.0f", v) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
