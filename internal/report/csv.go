package report

import (
	"fmt"
	"sort"

	"afsysbench/internal/core"
)

// CSV marshalers: one per experiment, for external plotting of the exact
// rows behind the terminal figures.

// CSVFigure2 flattens the memory sweep.
func CSVFigure2(rows []core.MemRow) ([]string, [][]string) {
	headers := []string{"rna_length", "peak_gib", "verdict_server", "verdict_server_cxl", "provenance"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.RNALen), F1(r.PeakGiB),
			r.VerdictOn["Server"], r.VerdictOn["Server+CXL"], r.Note,
		})
	}
	return headers, out
}

// CSVFigure3 flattens the phase matrix.
func CSVFigure3(rows []core.PhaseRow) ([]string, [][]string) {
	headers := []string{"sample", "machine", "threads", "msa_seconds", "inference_seconds", "msa_cv", "inference_cv"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Sample, r.Machine, fmt.Sprint(r.Threads),
			F2(r.MSASeconds), F2(r.InferenceSeconds),
			fmt.Sprintf("%.4f", r.MSACV), fmt.Sprintf("%.4f", r.InferenceCV),
		})
	}
	return headers, out
}

// CSVScaling flattens Figure 4/5 rows.
func CSVScaling(rows []core.ScalingRow) ([]string, [][]string) {
	headers := []string{"sample", "machine", "threads", "msa_seconds", "speedup"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Sample, r.Machine, fmt.Sprint(r.Threads), F2(r.Seconds), F2(r.Speedup),
		})
	}
	return headers, out
}

// CSVFigure6 flattens inference-vs-threads rows.
func CSVFigure6(rows []core.InferenceRow) ([]string, [][]string) {
	headers := []string{"sample", "machine", "threads", "inference_seconds"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Sample, r.Machine, fmt.Sprint(r.Threads), F2(r.Seconds)})
	}
	return headers, out
}

// CSVFigure7 flattens phase shares.
func CSVFigure7(rows []core.ShareRow) ([]string, [][]string) {
	headers := []string{"sample", "machine", "optimal_threads", "msa_pct", "inference_pct"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Sample, r.Machine, fmt.Sprint(r.OptimalThreads), F1(r.MSAPct), F1(r.InferencePct),
		})
	}
	return headers, out
}

// CSVFigure8 flattens the inference breakdown.
func CSVFigure8(rows []core.BreakdownRow) ([]string, [][]string) {
	headers := []string{"sample", "machine", "init_s", "compile_s", "compute_s", "finalize_s", "overhead_pct", "unified_memory"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Sample, r.Machine, F2(r.Init), F2(r.Compile), F2(r.Compute), F2(r.Finalize),
			F1(r.OverheadPct()), fmt.Sprint(r.Spilled),
		})
	}
	return headers, out
}

// CSVFigure9 flattens the layer shares.
func CSVFigure9(rows []core.LayerRow) ([]string, [][]string) {
	headers := []string{"sample", "module", "layer", "seconds", "share_pct"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Sample, r.Module, r.Layer, F2(r.Seconds), F1(r.SharePct)})
	}
	return headers, out
}

// CSVTable3 flattens the CPU metric cells.
func CSVTable3(cells []core.Table3Cell) ([]string, [][]string) {
	headers := []string{"sample", "machine", "threads", "ipc", "miss_mpki", "l1_pct", "llc_pct", "dtlb_pct", "branch_pct"}
	var out [][]string
	for _, c := range cells {
		out = append(out, []string{
			c.Sample, c.Machine, fmt.Sprint(c.Threads),
			F2(c.IPC), F2(c.CacheMPKI), F2(c.L1Pct), F2(c.LLCPct), F2(c.DTLBPct), F2(c.BranchPct),
		})
	}
	return headers, out
}

// CSVTable4 flattens the function shares (one row per metric/function/column).
func CSVTable4(rows []core.Table4Row) ([]string, [][]string) {
	headers := []string{"metric", "function", "column", "share_pct"}
	var out [][]string
	for _, r := range rows {
		cols := make([]string, 0, len(r.SharePct))
		for col := range r.SharePct {
			cols = append(cols, col)
		}
		sort.Strings(cols)
		for _, col := range cols {
			out = append(out, []string{r.Metric, r.Function, col, F2(r.SharePct[col])})
		}
	}
	return headers, out
}

// CSVTable5 flattens the host bottleneck rows.
func CSVTable5(rows []core.Table5Row) ([]string, [][]string) {
	headers := []string{"event_type", "symbol", "sample", "overhead_pct"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.EventType, r.Symbol, r.Sample, F2(r.OverheadPct)})
	}
	return headers, out
}

// CSVTable6 flattens the layer-time table.
func CSVTable6(rows []core.Table6Row) ([]string, [][]string) {
	headers := []string{"layer", "module_total", "seconds_2pv7", "seconds_promo"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Label, fmt.Sprint(r.IsModuleTotal), F2(r.Per2PV7Seconds), F2(r.PromoSeconds)})
	}
	return headers, out
}
