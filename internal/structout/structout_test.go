package structout

import (
	"bytes"
	"strings"
	"testing"

	"afsysbench/internal/inputs"
	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
	"afsysbench/internal/tensor"
)

func miniInput(t *testing.T) *inputs.Input {
	t.Helper()
	g := seq.NewGenerator(rng.New(1))
	in := &inputs.Input{
		Name: "mini",
		Chains: []inputs.Chain{
			{IDs: []string{"A"}, Sequence: g.Random("p", seq.Protein, 3)},
			{IDs: []string{"R"}, Sequence: g.Random("r", seq.RNA, 2)},
		},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func coordsFor(tokens, apt int) *tensor.Tensor {
	c := tensor.New(tokens*apt, 3)
	for i := range c.Data {
		c.Data[i] = float32(i) * 0.25
	}
	return c
}

func TestFromCoordsMapping(t *testing.T) {
	in := miniInput(t)
	const apt = 2
	conf := []float64{0.9, 0.8, 0.7, 0.6, 0.5}
	atoms, err := FromCoords(coordsFor(5, apt), in, apt, conf)
	if err != nil {
		t.Fatal(err)
	}
	if len(atoms) != 10 {
		t.Fatalf("atoms = %d, want 10", len(atoms))
	}
	// First chain: 3 protein residues, chain A, CA representative atoms.
	if atoms[0].ChainID != 'A' || atoms[0].Name != "CA" || atoms[0].ResSeq != 1 {
		t.Errorf("first atom wrong: %+v", atoms[0])
	}
	if atoms[1].Name != "X1" {
		t.Errorf("second per-token atom name: %q", atoms[1].Name)
	}
	// RNA chain: C1' representative and single-letter residue names.
	rna := atoms[6]
	if rna.ChainID != 'R' || rna.Name != "C1'" || len(rna.ResName) != 1 {
		t.Errorf("RNA atom wrong: %+v", rna)
	}
	// Confidence in the B-factor, per token.
	if atoms[0].BFactor != 90 || atoms[6].BFactor != 60 {
		t.Errorf("confidence mapping wrong: %v %v", atoms[0].BFactor, atoms[6].BFactor)
	}
	// Serials increase monotonically.
	for i := 1; i < len(atoms); i++ {
		if atoms[i].Serial != atoms[i-1].Serial+1 {
			t.Fatal("serials not sequential")
		}
	}
}

func TestFromCoordsErrors(t *testing.T) {
	in := miniInput(t)
	if _, err := FromCoords(tensor.New(4, 2), in, 2, nil); err == nil {
		t.Error("bad coord shape accepted")
	}
	if _, err := FromCoords(coordsFor(4, 2), in, 2, nil); err == nil {
		t.Error("token/atom mismatch accepted")
	}
	if _, err := FromCoords(coordsFor(5, 2), in, 2, []float64{1}); err == nil {
		t.Error("confidence length mismatch accepted")
	}
}

func TestWritePDBFormat(t *testing.T) {
	in := miniInput(t)
	atoms, err := FromCoords(coordsFor(5, 1), in, 1, []float64{0.95, 0.9, 0.85, 0.8, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePDB(&buf, atoms); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 5 ATOM + 1 TER (chain A -> R) + END.
	if len(lines) != 7 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "ATOM  ") {
		t.Errorf("record prefix wrong: %q", lines[0])
	}
	// Fixed-column checks: x coordinate field is columns 31-38.
	if len(lines[0]) < 66 {
		t.Fatalf("ATOM record too short: %q", lines[0])
	}
	if lines[3] != "TER" {
		t.Errorf("TER between chains missing, got %q", lines[3])
	}
	if lines[6] != "END" {
		t.Error("END missing")
	}
	if !strings.Contains(lines[0], "95.00") {
		t.Errorf("B-factor missing from %q", lines[0])
	}
}

func TestMeanConfidence(t *testing.T) {
	atoms := []Atom{
		{Name: "CA", BFactor: 80},
		{Name: "X1", BFactor: 0}, // non-representative atoms excluded
		{Name: "C1'", BFactor: 60},
	}
	if got := MeanConfidence(atoms); got != 70 {
		t.Errorf("mean confidence = %v, want 70", got)
	}
	if MeanConfidence(nil) != 0 {
		t.Error("empty mean should be 0")
	}
}
