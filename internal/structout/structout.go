// Package structout writes predicted structures in PDB format: the
// user-facing artifact of the inference phase. Coordinates come from the
// diffusion module's sampled (atoms × 3) tensor; per-token confidence lands
// in the B-factor column, the convention AF2/AF3 use for pLDDT.
package structout

import (
	"bufio"
	"fmt"
	"io"

	"afsysbench/internal/inputs"
	"afsysbench/internal/seq"
	"afsysbench/internal/tensor"
)

// Atom is one ATOM record.
type Atom struct {
	Serial  int
	Name    string // atom name, e.g. "CA"
	ResName string // residue name, e.g. "ALA"
	ChainID byte
	ResSeq  int
	X, Y, Z float64
	BFactor float64
}

// three-letter residue names for the protein alphabet (index-aligned with
// seq.ProteinAlphabet).
var proteinResNames = map[byte]string{
	'A': "ALA", 'C': "CYS", 'D': "ASP", 'E': "GLU", 'F': "PHE",
	'G': "GLY", 'H': "HIS", 'I': "ILE", 'K': "LYS", 'L': "LEU",
	'M': "MET", 'N': "ASN", 'P': "PRO", 'Q': "GLN", 'R': "ARG",
	'S': "SER", 'T': "THR", 'V': "VAL", 'W': "TRP", 'Y': "TYR",
}

// resName maps a residue to its PDB residue name.
func resName(t seq.MoleculeType, letter byte) string {
	switch t {
	case seq.Protein:
		if n, ok := proteinResNames[letter]; ok {
			return n
		}
		return "UNK"
	case seq.DNA:
		return "D" + string(letter)
	case seq.RNA:
		return string(letter)
	default:
		return "UNK"
	}
}

// atomNames are the per-token pseudo-atom names (first is the
// representative CA/C1' atom).
func atomName(t seq.MoleculeType, k int) string {
	if k == 0 {
		if t == seq.Protein {
			return "CA"
		}
		return "C1'"
	}
	return fmt.Sprintf("X%d", k)
}

// FromCoords converts a sampled coordinate tensor into ATOM records. Tokens
// map to chain residues in input order (each chain copy contributes its
// sequence length of tokens); confidence (per token, optional) fills the
// B-factor column scaled to 0–100.
func FromCoords(coords *tensor.Tensor, in *inputs.Input, atomsPerToken int, confidence []float64) ([]Atom, error) {
	if coords.Dims() != 2 || coords.Shape[1] != 3 {
		return nil, fmt.Errorf("structout: coords must be (atoms x 3), got %v", coords.Shape)
	}
	tokens := in.TotalResidues()
	if coords.Shape[0] != tokens*atomsPerToken {
		return nil, fmt.Errorf("structout: %d atoms for %d tokens x %d apt", coords.Shape[0], tokens, atomsPerToken)
	}
	if confidence != nil && len(confidence) != tokens {
		return nil, fmt.Errorf("structout: confidence length %d != tokens %d", len(confidence), tokens)
	}
	var atoms []Atom
	serial := 1
	token := 0
	for _, chain := range in.Chains {
		letters := chain.Sequence.Letters()
		for _, id := range chain.IDs {
			chainID := id[0]
			for ri := 0; ri < chain.Sequence.Len(); ri++ {
				b := 0.0
				if confidence != nil {
					b = 100 * confidence[token]
				}
				for k := 0; k < atomsPerToken; k++ {
					atomIdx := token*atomsPerToken + k
					atoms = append(atoms, Atom{
						Serial:  serial,
						Name:    atomName(chain.Sequence.Type, k),
						ResName: resName(chain.Sequence.Type, letters[ri]),
						ChainID: chainID,
						ResSeq:  ri + 1,
						X:       float64(coords.At(atomIdx, 0)),
						Y:       float64(coords.At(atomIdx, 1)),
						Z:       float64(coords.At(atomIdx, 2)),
						BFactor: b,
					})
					serial++
				}
				token++
			}
		}
	}
	return atoms, nil
}

// WritePDB writes ATOM records (fixed-column PDB format) with TER records
// between chains and a trailing END.
func WritePDB(w io.Writer, atoms []Atom) error {
	bw := bufio.NewWriter(w)
	var prevChain byte
	for i, a := range atoms {
		if i > 0 && a.ChainID != prevChain {
			if _, err := fmt.Fprintln(bw, "TER"); err != nil {
				return err
			}
		}
		prevChain = a.ChainID
		// Columns per the PDB 3.3 ATOM record specification.
		_, err := fmt.Fprintf(bw, "ATOM  %5d %-4s %3s %c%4d    %8.3f%8.3f%8.3f%6.2f%6.2f\n",
			a.Serial%100000, clamp4(a.Name), a.ResName, a.ChainID, a.ResSeq%10000,
			a.X, a.Y, a.Z, 1.0, a.BFactor)
		if err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "END"); err != nil {
		return err
	}
	return bw.Flush()
}

func clamp4(s string) string {
	if len(s) > 4 {
		return s[:4]
	}
	return s
}

// MeanConfidence returns the average B-factor of the representative atoms
// (the file's overall pLDDT-style score).
func MeanConfidence(atoms []Atom) float64 {
	var sum float64
	n := 0
	for _, a := range atoms {
		if a.Name == "CA" || a.Name == "C1'" {
			sum += a.BFactor
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
