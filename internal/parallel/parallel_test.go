package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	calls := 0
	p.Run(10, func(shard, lo, hi int) {
		calls++
		if shard != 0 || lo != 0 || hi != 10 {
			t.Errorf("nil pool shard=%d [%d,%d), want single full span", shard, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("nil pool made %d calls, want 1", calls)
	}
	p.Close() // must be a no-op
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 5, 16} {
		p := New(workers)
		for _, n := range []int{1, 2, 7, 64, 1000} {
			seen := make([]int32, n)
			p.Run(n, func(shard, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

func TestRunShardsAreContiguousAndOrdered(t *testing.T) {
	p := New(4)
	defer p.Close()
	var mu sync.Mutex
	spans := make(map[int][2]int)
	p.Run(10, func(shard, lo, hi int) {
		mu.Lock()
		spans[shard] = [2]int{lo, hi}
		mu.Unlock()
	})
	if len(spans) != 4 {
		t.Fatalf("got %d shards, want 4", len(spans))
	}
	next := 0
	for s := 0; s < len(spans); s++ {
		sp, ok := spans[s]
		if !ok {
			t.Fatalf("missing shard %d", s)
		}
		if sp[0] != next || sp[1] <= sp[0] {
			t.Fatalf("shard %d span %v not contiguous from %d", s, sp, next)
		}
		next = sp[1]
	}
	if next != 10 {
		t.Fatalf("shards end at %d, want 10", next)
	}
}

func TestRunShardCountNeverExceedsN(t *testing.T) {
	p := New(8)
	defer p.Close()
	var maxShard int32 = -1
	p.Run(3, func(shard, lo, hi int) {
		for {
			cur := atomic.LoadInt32(&maxShard)
			if int32(shard) <= cur || atomic.CompareAndSwapInt32(&maxShard, cur, int32(shard)) {
				return
			}
		}
	})
	if maxShard > 2 {
		t.Fatalf("max shard %d for n=3", maxShard)
	}
}

func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := New(2)
	defer p.Close()
	var total int64
	p.Run(4, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p.Run(8, func(_, lo2, hi2 int) {
				atomic.AddInt64(&total, int64(hi2-lo2))
			})
		}
	})
	if total != 4*8 {
		t.Fatalf("nested total = %d, want 32", total)
	}
}

func TestShardsMatchesFixedDecomposition(t *testing.T) {
	// The MSA scan relies on the exact len*s/shards boundaries and on every
	// shard index being called even when shards > available parallelism.
	const n, shards = 17, 5
	got := make([][2]int, shards)
	var mu sync.Mutex
	Shards(shards, n, func(shard, lo, hi int) {
		mu.Lock()
		got[shard] = [2]int{lo, hi}
		mu.Unlock()
	})
	for s := 0; s < shards; s++ {
		wantLo, wantHi := n*s/shards, n*(s+1)/shards
		if got[s] != [2]int{wantLo, wantHi} {
			t.Errorf("shard %d = %v, want [%d,%d)", s, got[s], wantLo, wantHi)
		}
	}
}

func TestShardsSkipsEmptyAndHandlesZero(t *testing.T) {
	var calls atomic.Int32
	Shards(4, 2, func(shard, lo, hi int) {
		if lo == hi {
			t.Errorf("empty shard %d delivered", shard)
		}
		calls.Add(1)
	})
	if calls.Load() != 2 {
		t.Fatalf("got %d calls for n=2 over 4 shards, want 2", calls.Load())
	}
	Shards(3, 0, func(shard, lo, hi int) { t.Error("n=0 must not call fn") })
	Shards(0, 5, func(shard, lo, hi int) { t.Error("shards=0 must not call fn") })
}

func TestForWorkersCachesAndClamps(t *testing.T) {
	a := ForWorkers(3)
	b := ForWorkers(3)
	if a != b {
		t.Error("ForWorkers(3) not cached")
	}
	if ForWorkers(0).Workers() != 1 || ForWorkers(-2).Workers() != 1 {
		t.Error("non-positive worker counts must clamp to 1")
	}
	if Default().Workers() < 1 {
		t.Error("default pool has no workers")
	}
}

func TestRunDeterministicSumAnyWorkerCount(t *testing.T) {
	// A per-element kernel (out[i] = f(i) reduced within the element) must
	// be bitwise identical at every worker count.
	const n = 513
	ref := make([]float32, n)
	kernel := func(out []float32) func(shard, lo, hi int) {
		return func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				acc := float32(0)
				for k := 0; k < 37; k++ {
					acc += float32(i*k) * 1e-3
				}
				out[i] = acc
			}
		}
	}
	(*Pool)(nil).Run(n, kernel(ref))
	for _, workers := range []int{2, 3, 7} {
		p := New(workers)
		out := make([]float32, n)
		p.Run(n, kernel(out))
		p.Close()
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: element %d differs", workers, i)
			}
		}
	}
}
