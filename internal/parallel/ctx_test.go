package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCtxCompletesLikeRun(t *testing.T) {
	p := New(4)
	defer p.Close()
	out := make([]int, 100)
	err := p.RunCtx(context.Background(), len(out), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestRunCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []*Pool{nil, New(1), New(4)} {
		var ran atomic.Int32
		err := p.RunCtx(ctx, 64, func(_, _, _ int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v", p.Workers(), err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d shards ran after pre-cancel", p.Workers(), ran.Load())
		}
		p.Close()
	}
}

// TestRunCtxCancelMidScanStopsWithinOneShard pins the promptness contract:
// with the pool's only helper parked inside another Run, a RunCtx call
// queues its second shard, executes shard 0 inline — which cancels the
// context — and must then skip the queued shard instead of executing it.
// Total work after cancellation: zero; total shards executed: exactly one.
func TestRunCtxCancelMidScanStopsWithinOneShard(t *testing.T) {
	p := New(2) // caller + 1 helper
	defer p.Close()

	gate := make(chan struct{})
	occupied := make(chan struct{}, 2)
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		// Both shards of this Run block on the gate: the helper goroutine
		// on shard 1, this goroutine on shard 0. The helper is now busy,
		// so the next RunCtx's non-caller shard stays queued.
		p.Run(2, func(_, _, _ int) {
			occupied <- struct{}{}
			<-gate
		})
	}()
	<-occupied
	<-occupied

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int32
	err := p.RunCtx(ctx, 2, func(shard, _, _ int) {
		executed.Add(1)
		if shard == 0 {
			cancel() // cancelled mid-scan, while shard 1 is still queued
		}
	})
	close(gate)
	<-blockerDone

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := executed.Load(); got != 1 {
		t.Fatalf("%d shards executed after mid-scan cancel, want exactly 1", got)
	}
}

func TestShardsCtxCompletes(t *testing.T) {
	out := make([]int, 37)
	if err := ShardsCtx(context.Background(), 5, len(out), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 1
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 1 {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestShardsCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ShardsCtx(ctx, 4, 64, func(_, _, _ int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d shards ran after pre-cancel", ran.Load())
	}
	// Serial path too.
	if err := ShardsCtx(ctx, 1, 10, func(_, _, _ int) { ran.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial err = %v", err)
	}
	if ran.Load() != 0 {
		t.Error("serial shard ran after pre-cancel")
	}
}

func TestShardsCtxMatchesShardsDecomposition(t *testing.T) {
	// Same span arithmetic as Shards: per-shard attribution stays stable.
	for _, shards := range []int{1, 2, 3, 8} {
		// Distinct shard indices write distinct elements: race-free.
		got := make([][2]int, shards)
		want := make([][2]int, shards)
		if err := ShardsCtx(context.Background(), shards, 24, func(s, lo, hi int) {
			got[s] = [2]int{lo, hi}
		}); err != nil {
			t.Fatal(err)
		}
		Shards(shards, 24, func(s, lo, hi int) { want[s] = [2]int{lo, hi} })
		for s := range want {
			if got[s] != want[s] {
				t.Errorf("shards=%d shard %d: %v vs %v", shards, s, got[s], want[s])
			}
		}
	}
}
