// Package parallel is the shared worker-pool compute engine behind the
// repository's hot paths: the Pairformer and diffusion tensor kernels, and
// the MSA database scan. It provides deterministic data-parallel loops:
// work is sharded into contiguous index ranges so that every reduction
// stays inside one shard, which makes kernel results bitwise identical at
// any worker count (and independent of GOMAXPROCS). That invariant is what
// lets the golden tests and the seed-derived numerical results survive the
// move from serial to parallel execution.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size set of persistent worker goroutines. A Pool is safe
// for concurrent use; a nil *Pool is valid and runs everything inline on
// the caller (the serial baseline).
type Pool struct {
	workers int
	jobs    chan job
	closed  sync.Once
}

type job struct {
	fn     func(shard, lo, hi int)
	shard  int
	lo, hi int
	// pending counts the originating Run call's outstanding jobs; the
	// executor decrements it after fn returns (the atomic gives Run's
	// return a happens-after edge over the job's writes).
	pending *atomic.Int32
}

// New builds a pool with the given worker count (clamped to at least 1).
// A 1-worker pool spawns no goroutines. Call Close when a locally created
// pool is no longer needed; pools from ForWorkers/Default are shared and
// must not be closed.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		// workers-1 helpers: the goroutine calling Run always executes
		// shard 0 itself, so it is the pool's remaining worker.
		p.jobs = make(chan job, workers)
		for i := 0; i < workers-1; i++ {
			go p.work()
		}
	}
	return p
}

func (p *Pool) work() {
	for j := range p.jobs {
		j.fn(j.shard, j.lo, j.hi)
		j.pending.Add(-1)
	}
}

// Close releases the pool's helper goroutines. Run must not be called
// after Close.
func (p *Pool) Close() {
	if p == nil || p.jobs == nil {
		return
	}
	p.closed.Do(func() { close(p.jobs) })
}

// Workers returns the pool's worker count (1 for a nil pool). It is also
// the number of shards Run uses and therefore the scratch-buffer count a
// caller needs for per-shard workspace.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Serial reports whether Run would execute entirely inline (nil pool or a
// single worker). Hot kernels branch on it to call their range helper
// directly instead of building a closure for Run, which keeps the serial
// steady state allocation-free (a func literal passed to Run always
// escapes to the heap).
func (p *Pool) Serial() bool { return p == nil || p.workers == 1 }

// Run splits [0,n) into at most Workers() contiguous shards and invokes
// fn(shard, lo, hi) once per shard, blocking until all complete. Shard 0
// always runs on the calling goroutine, a full job channel makes the
// caller run the shard inline, and a waiting caller drains queued jobs
// instead of blocking — so Run never deadlocks, even when every helper is
// itself parked inside a nested Run.
//
// Determinism contract: fn must derive every output element purely from
// its index range — shard boundaries may change with the worker count, so
// a reduction must never be split across shards. Kernels written this way
// produce bitwise-identical results at any worker count. The shard index
// is stable within one Run call and may be used to pick per-shard scratch
// buffers (no two shards of one Run execute concurrently with the same
// index).
func (p *Pool) Run(n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	shards := p.Workers()
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		fn(0, 0, n)
		return
	}
	var pending atomic.Int32
	for s := shards - 1; s >= 1; s-- {
		lo, hi := span(n, s, shards)
		pending.Add(1)
		j := job{fn: fn, shard: s, lo: lo, hi: hi, pending: &pending}
		select {
		case p.jobs <- j:
		default:
			j.fn(j.shard, j.lo, j.hi)
			pending.Add(-1)
		}
	}
	lo, hi := span(n, 0, shards)
	fn(0, lo, hi)
	// Drain while waiting: helper goroutines can all be parked inside
	// nested Run calls, in which case enqueued jobs (this call's or a
	// nested one's) would otherwise starve. Executing them here guarantees
	// global progress; the Gosched branch yields to helpers finishing the
	// last in-flight jobs.
	for pending.Load() > 0 {
		select {
		case j, ok := <-p.jobs:
			if !ok {
				// Close raced with Run (API misuse); wait out any jobs
				// still running on helpers before returning.
				for pending.Load() > 0 {
					runtime.Gosched()
				}
				return
			}
			j.fn(j.shard, j.lo, j.hi)
			j.pending.Add(-1)
		default:
			runtime.Gosched()
		}
	}
}

// RunCtx is Run with cancellation: once ctx is done, no further shard
// starts — undistributed shards are never dispatched, and shards still
// queued behind busy workers are skipped (their goroutine observes the
// cancellation before invoking fn). Shards already executing run to
// completion; a cancelled call therefore returns within one shard's work.
// RunCtx returns ctx.Err() (nil on a full, uncancelled fan-out).
//
// The determinism contract is Run's: when RunCtx completes with a nil
// error, every shard executed exactly once and results are bitwise
// identical at any worker count. A non-nil return means the output is
// partial and must be discarded.
func (p *Pool) RunCtx(ctx context.Context, n int, fn func(shard, lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	shards := p.Workers()
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		fn(0, 0, n)
		return ctx.Err()
	}
	done := ctx.Done()
	guarded := func(shard, lo, hi int) {
		select {
		case <-done:
		default:
			fn(shard, lo, hi)
		}
	}
	var pending atomic.Int32
	for s := shards - 1; s >= 1; s-- {
		if ctx.Err() != nil {
			break // stop dispatching; already-queued shards self-skip
		}
		lo, hi := span(n, s, shards)
		pending.Add(1)
		j := job{fn: guarded, shard: s, lo: lo, hi: hi, pending: &pending}
		select {
		case p.jobs <- j:
		default:
			j.fn(j.shard, j.lo, j.hi)
			pending.Add(-1)
		}
	}
	if ctx.Err() == nil {
		lo, hi := span(n, 0, shards)
		fn(0, lo, hi)
	}
	// Same drain-while-waiting discipline as Run; drained jobs from this
	// call are guarded and skip themselves once ctx is done.
	for pending.Load() > 0 {
		select {
		case j, ok := <-p.jobs:
			if !ok {
				for pending.Load() > 0 {
					runtime.Gosched()
				}
				return ctx.Err()
			}
			j.fn(j.shard, j.lo, j.hi)
			j.pending.Add(-1)
		default:
			runtime.Gosched()
		}
	}
	return ctx.Err()
}

// span returns the s-th of `shards` contiguous ranges of [0,n) — the same
// arithmetic the MSA scan has always used, so shard boundaries are stable
// across the codebase.
func span(n, s, shards int) (lo, hi int) {
	return n * s / shards, n * (s + 1) / shards
}

// Shards runs fn over exactly `shards` contiguous spans of [0,n),
// spawning one goroutine per non-empty shard, and blocks until all are
// done. Unlike Run, the shard count here is semantic, not a concurrency
// hint: callers such as the MSA scan attribute per-shard work to
// per-thread accumulators, so the decomposition must match the requested
// thread count exactly regardless of available parallelism.
func Shards(shards, n int, fn func(shard, lo, hi int)) {
	if n <= 0 || shards <= 0 {
		return
	}
	if shards == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := span(n, s, shards)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}

// ShardsCtx is Shards with cancellation: shards whose goroutine observes a
// done ctx before starting fn are skipped, and no new shard is spawned
// after cancellation, so a cancelled scan stops within the work already in
// flight instead of finishing the fan-out. Returns ctx.Err(); on a non-nil
// return the decomposition is partial and per-shard outputs must be
// discarded.
func ShardsCtx(ctx context.Context, shards, n int, fn func(shard, lo, hi int)) error {
	if n <= 0 || shards <= 0 {
		return ctx.Err()
	}
	if shards == 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		fn(0, 0, n)
		return ctx.Err()
	}
	done := ctx.Done()
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		if ctx.Err() != nil {
			break
		}
		lo, hi := span(n, s, shards)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			select {
			case <-done:
			default:
				fn(s, lo, hi)
			}
		}(s, lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}

var (
	poolsMu sync.Mutex
	pools   = map[int]*Pool{}
)

// ForWorkers returns the shared pool with the given worker count, creating
// it on first use. Shared pools live for the process lifetime (their idle
// helpers cost nothing), which keeps hand-off race-free when concurrent
// pipeline runs ask for different thread counts.
func ForWorkers(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	poolsMu.Lock()
	defer poolsMu.Unlock()
	p, ok := pools[workers]
	if !ok {
		p = New(workers)
		pools[workers] = p
	}
	return p
}

// Default returns the shared pool sized to GOMAXPROCS — the engine used
// when a caller has no explicit thread-count setting.
func Default() *Pool {
	return ForWorkers(runtime.GOMAXPROCS(0))
}

// DefaultWorkers returns the worker count Default sizes its pool to — the
// core count the process sees. Subsystems sizing their own CPU-bound pools
// (the serving scheduler's MSA stage) use it so "one worker per core" is
// defined in exactly one place.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}
