package diffusion

import (
	"testing"

	"afsysbench/internal/parallel"
	"afsysbench/internal/rng"
	"afsysbench/internal/tensor"
)

// benchDenoise measures one full denoiser evaluation (embed, local encode,
// pool, global attend, broadcast, local decode, blend) at 128 tokens.
func benchDenoise(b *testing.B, p *parallel.Pool) {
	cfg := Config{
		Samples: 1, Steps: 1, TokenDim: 32, AtomDim: 16, AtomsPerToken: 4,
		AtomWindow: 12, GlobalLayers: 2, LocalEncLayers: 2, LocalDecLayers: 2, Heads: 2,
	}
	src := rng.New(5)
	d, err := NewDenoiser(cfg, src)
	if err != nil {
		b.Fatal(err)
	}
	const tokens = 128
	coords := tensor.New(tokens*cfg.AtomsPerToken, 3)
	nsrc := src.Split(1)
	for i := range coords.Data {
		coords.Data[i] = float32(nsrc.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.DenoiseStep(coords, 0.5, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiffusionDenoise(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchDenoise(b, nil) })
	b.Run("parallel", func(b *testing.B) {
		p := parallel.Default()
		benchDenoise(b, p)
	})
}
