// Package diffusion implements AlphaFold3's diffusion structure module —
// the generative replacement for AF2's structure module (paper Section
// II-C): an atom-level local-attention encoder, a token-level transformer
// whose global attention is the paper's headline inference bottleneck, an
// atom-level local-attention decoder, and the iterative denoising loop that
// re-runs the whole denoiser Samples×Steps times (AF3 samples multiple
// trajectories). The math runs for real at any size; analytical FLOP/byte
// formulas extrapolate cost to paper-scale inputs.
package diffusion

import (
	"fmt"
	"math"

	"afsysbench/internal/parallel"
	"afsysbench/internal/rng"
	"afsysbench/internal/tensor"
)

// Config sizes the module. Defaults mirror AF3's published architecture.
type Config struct {
	Samples int // independent diffusion trajectories (AF3 default 5)
	Steps   int // denoising steps per trajectory (AF3 default 200)

	TokenDim      int // token-level channel width
	AtomDim       int // atom-level channel width
	AtomsPerToken int // heavy atoms represented per residue token
	AtomWindow    int // local attention window (keys per query)

	GlobalLayers   int // token transformer depth
	LocalEncLayers int
	LocalDecLayers int

	Heads int
}

// DefaultConfig returns AF3-scale dimensions.
func DefaultConfig() Config {
	return Config{
		Samples:        5,
		Steps:          200,
		TokenDim:       768,
		AtomDim:        128,
		AtomsPerToken:  16,
		AtomWindow:     128,
		GlobalLayers:   24,
		LocalEncLayers: 4,
		LocalDecLayers: 3,
		Heads:          8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Samples <= 0 || c.Steps <= 0:
		return fmt.Errorf("diffusion: Samples/Steps must be positive (%d, %d)", c.Samples, c.Steps)
	case c.TokenDim <= 0 || c.AtomDim <= 0:
		return fmt.Errorf("diffusion: dims must be positive (%d, %d)", c.TokenDim, c.AtomDim)
	case c.AtomsPerToken <= 0 || c.AtomWindow <= 0:
		return fmt.Errorf("diffusion: atom geometry must be positive (%d, %d)", c.AtomsPerToken, c.AtomWindow)
	case c.GlobalLayers <= 0 || c.LocalEncLayers <= 0 || c.LocalDecLayers <= 0:
		return fmt.Errorf("diffusion: layer counts must be positive")
	case c.Heads <= 0:
		return fmt.Errorf("diffusion: Heads must be positive")
	}
	return nil
}

// Evaluations returns the total denoiser invocations (Samples × Steps).
func (c Config) Evaluations() int { return c.Samples * c.Steps }

// LayerKind enumerates the profiled diffusion layer classes.
type LayerKind int

const (
	LocalAttnEncoder LayerKind = iota
	GlobalAttention
	LocalAttnDecoder
	CoordUpdate // the remaining "others": pooling, broadcast, coordinate MLPs
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case LocalAttnEncoder:
		return "local attn. (encoder)"
	case GlobalAttention:
		return "global attention"
	case LocalAttnDecoder:
		return "local attn. (decoder)"
	case CoordUpdate:
		return "coordinate update"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// Kinds lists the layer classes in pipeline order.
func Kinds() []LayerKind {
	return []LayerKind{LocalAttnEncoder, GlobalAttention, LocalAttnDecoder, CoordUpdate}
}

// LayerFlops returns FLOPs of one layer class for a full denoising run
// (all samples and steps) at n tokens.
func (c Config) LayerFlops(kind LayerKind, n int) float64 {
	evals := float64(c.Evaluations())
	nf := float64(n)
	atoms := nf * float64(c.AtomsPerToken)
	da := float64(c.AtomDim)
	dt := float64(c.TokenDim)
	w := float64(c.AtomWindow)
	localLayer := atoms * (8*da*da + 4*w*da) // projections + windowed logits/AV
	switch kind {
	case LocalAttnEncoder:
		return evals * float64(c.LocalEncLayers) * localLayer
	case LocalAttnDecoder:
		return evals * float64(c.LocalDecLayers) * localLayer
	case GlobalAttention:
		// Full attention over n tokens: quadratic logits/AV plus linear
		// projections. This is the term that scales worst with sequence
		// length and has the poorest locality (paper Section II-C).
		perLayer := 8*nf*dt*dt + 4*nf*nf*dt
		return evals * float64(c.GlobalLayers) * perLayer
	case CoordUpdate:
		// Atom pooling, token broadcast, coordinate MLP.
		return evals * (4*atoms*da + 2*atoms*da*3 + 2*nf*dt)
	default:
		return 0
	}
}

// LayerBytes returns memory traffic of one layer class for a full run.
// Global attention materializes the n×n attention matrix per layer per
// evaluation — the recurrent memory loads the paper calls out.
func (c Config) LayerBytes(kind LayerKind, n int) float64 {
	evals := float64(c.Evaluations())
	nf := float64(n)
	atoms := nf * float64(c.AtomsPerToken)
	const f32 = 4
	switch kind {
	case LocalAttnEncoder, LocalAttnDecoder:
		layers := float64(c.LocalEncLayers)
		if kind == LocalAttnDecoder {
			layers = float64(c.LocalDecLayers)
		}
		// Feature I/O plus the uncoalesced windowed key gather, which is
		// what actually limits these layers on hardware.
		perLayer := atoms * (float64(c.AtomDim)*6*f32 + float64(c.AtomWindow)*float64(c.AtomDim)*f32)
		return evals * layers * perLayer
	case GlobalAttention:
		return evals * float64(c.GlobalLayers) * (2*nf*nf*float64(c.Heads)*f32 + 6*nf*float64(c.TokenDim)*f32)
	case CoordUpdate:
		return evals * atoms * (3 + float64(c.AtomDim)) * 2 * f32
	default:
		return 0
	}
}

// Kernels returns GPU kernels launched per layer per evaluation.
func (c Config) Kernels(kind LayerKind) int {
	switch kind {
	case LocalAttnEncoder:
		return 10 * c.LocalEncLayers
	case LocalAttnDecoder:
		return 10 * c.LocalDecLayers
	case GlobalAttention:
		return 9 * c.GlobalLayers
	case CoordUpdate:
		return 7
	default:
		return 0
	}
}

// TotalFlops sums all layer classes.
func (c Config) TotalFlops(n int) float64 {
	var total float64
	for _, k := range Kinds() {
		total += c.LayerFlops(k, n)
	}
	return total
}

// NoiseSchedule returns the per-step noise scale: a cosine-decay schedule
// from 1 toward ~0 over Steps steps.
func (c Config) NoiseSchedule() []float64 {
	s := make([]float64, c.Steps)
	for i := range s {
		frac := (float64(i) + 0.5) / float64(c.Steps)
		s[i] = math.Pow(math.Cos(frac*math.Pi/2), 2)
	}
	return s
}

// Denoiser holds the (random) weights of one denoiser network; it is
// reused across steps and samples, exactly like the trained model.
type Denoiser struct {
	cfg Config

	encQ, encK, encV, encOut []*tensor.Tensor // per local encoder layer
	decQ, decK, decV, decOut []*tensor.Tensor
	glbQ, glbK, glbV, glbOut []*tensor.Tensor
	atomToToken              *tensor.Tensor // AtomDim -> TokenDim
	tokenToAtom              *tensor.Tensor // TokenDim -> AtomDim
	coordHead                *tensor.Tensor // AtomDim -> 3
	coordEmbed               *tensor.Tensor // 3 -> AtomDim
}

// NewDenoiser builds a denoiser with deterministic random weights.
func NewDenoiser(cfg Config, src *rng.Source) (*Denoiser, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Denoiser{cfg: cfg}
	mk := func(rows, cols int) *tensor.Tensor {
		w := tensor.New(rows, cols)
		scale := 1 / math.Sqrt(float64(rows))
		for i := range w.Data {
			w.Data[i] = float32(src.NormFloat64() * scale)
		}
		return w
	}
	for i := 0; i < cfg.LocalEncLayers; i++ {
		d.encQ = append(d.encQ, mk(cfg.AtomDim, cfg.AtomDim))
		d.encK = append(d.encK, mk(cfg.AtomDim, cfg.AtomDim))
		d.encV = append(d.encV, mk(cfg.AtomDim, cfg.AtomDim))
		d.encOut = append(d.encOut, mk(cfg.AtomDim, cfg.AtomDim))
	}
	for i := 0; i < cfg.LocalDecLayers; i++ {
		d.decQ = append(d.decQ, mk(cfg.AtomDim, cfg.AtomDim))
		d.decK = append(d.decK, mk(cfg.AtomDim, cfg.AtomDim))
		d.decV = append(d.decV, mk(cfg.AtomDim, cfg.AtomDim))
		d.decOut = append(d.decOut, mk(cfg.AtomDim, cfg.AtomDim))
	}
	for i := 0; i < cfg.GlobalLayers; i++ {
		d.glbQ = append(d.glbQ, mk(cfg.TokenDim, cfg.TokenDim))
		d.glbK = append(d.glbK, mk(cfg.TokenDim, cfg.TokenDim))
		d.glbV = append(d.glbV, mk(cfg.TokenDim, cfg.TokenDim))
		d.glbOut = append(d.glbOut, mk(cfg.TokenDim, cfg.TokenDim))
	}
	d.atomToToken = mk(cfg.AtomDim, cfg.TokenDim)
	d.tokenToAtom = mk(cfg.TokenDim, cfg.AtomDim)
	d.coordHead = mk(cfg.AtomDim, 3)
	d.coordEmbed = mk(3, cfg.AtomDim)
	return d, nil
}

// localAttention applies windowed self-attention over atom features
// (A×AtomDim): each atom attends to the AtomWindow atoms centered on it.
// Atoms shard over the pool; every atom's window softmax stays inside one
// shard, so results match the serial path bitwise.
func (d *Denoiser) localAttention(feat *tensor.Tensor, wq, wk, wv, wout *tensor.Tensor, ws *workspace, p *parallel.Pool) error {
	a := feat.Shape[0]
	da := d.cfg.AtomDim
	if err := tensor.MatMulInto(ws.aq, feat, wq, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.ak, feat, wk, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.av, feat, wv, p); err != nil {
		return err
	}
	q, k, v, upd := ws.aq, ws.ak, ws.av, ws.actx
	half := d.cfg.AtomWindow / 2
	scale := float32(1 / math.Sqrt(float64(da)))
	p.Run(a, func(shard, alo, ahi int) {
		logits := ws.winLogits[shard] // exclusive to this shard
		for i := alo; i < ahi; i++ {
			lo, hi := i-half, i+half
			if lo < 0 {
				lo = 0
			}
			if hi >= a {
				hi = a - 1
			}
			qi := q.Row(i)
			var maxv float32 = -math.MaxFloat32
			for j := lo; j <= hi; j++ {
				kr := k.Row(j)
				var dot float32
				for c := 0; c < da; c++ {
					dot += qi[c] * kr[c]
				}
				dot *= scale
				logits[j-lo] = dot
				if dot > maxv {
					maxv = dot
				}
			}
			var sum float64
			for j := lo; j <= hi; j++ {
				e := math.Exp(float64(logits[j-lo] - maxv))
				logits[j-lo] = float32(e)
				sum += e
			}
			inv := float32(1 / sum)
			dst := upd.Row(i)
			for c := range dst {
				dst[c] = 0
			}
			for j := lo; j <= hi; j++ {
				w := logits[j-lo] * inv
				vr := v.Row(j)
				for c := 0; c < da; c++ {
					dst[c] += w * vr[c]
				}
			}
		}
	})
	// q is consumed; reuse its buffer for the output projection.
	if err := tensor.MatMulInto(ws.aq, upd, wout, p); err != nil {
		return err
	}
	if err := tensor.AddAssign(feat, ws.aq, p); err != nil {
		return err
	}
	return feat.LayerNormRowsWith(p)
}

// globalAttention applies full self-attention over token features.
func (d *Denoiser) globalAttention(tok *tensor.Tensor, wq, wk, wv, wout *tensor.Tensor, ws *workspace, p *parallel.Pool) error {
	if err := tensor.MatMulInto(ws.tq, tok, wq, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.tk, tok, wk, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.tv, tok, wv, p); err != nil {
		return err
	}
	if err := tensor.Transpose2DInto(ws.tkt, ws.tk, p); err != nil {
		return err
	}
	logits := ws.tlogits
	if err := tensor.MatMulInto(logits, ws.tq, ws.tkt, p); err != nil {
		return err
	}
	logits.ScaleWith(float32(1/math.Sqrt(float64(d.cfg.TokenDim))), p)
	if err := logits.SoftmaxRowsWith(p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.tctx, logits, ws.tv, p); err != nil {
		return err
	}
	// tq is consumed; reuse its buffer for the output projection.
	if err := tensor.MatMulInto(ws.tq, ws.tctx, wout, p); err != nil {
		return err
	}
	if err := tensor.AddAssign(tok, ws.tq, p); err != nil {
		return err
	}
	return tok.LayerNormRowsWith(p)
}

// DenoiseStep runs one denoiser evaluation: embed noisy coordinates into
// atom features, local-encode, pool to tokens, global-attend, broadcast
// back, local-decode, and emit a coordinate update. coords is (A×3) and is
// updated in place with the step's denoised estimate blended by sigma.
//
// The pool shards every stage over independent atoms/tokens (nil pool =
// serial, bitwise identical); scratch tensors recycle through a shared
// sync.Pool so the Samples×Steps denoising loop stays allocation-free.
func (d *Denoiser) DenoiseStep(coords *tensor.Tensor, sigma float64, p *parallel.Pool) error {
	a := coords.Shape[0]
	apt := d.cfg.AtomsPerToken
	if a%apt != 0 {
		return fmt.Errorf("diffusion: atom count %d not divisible by AtomsPerToken %d", a, apt)
	}
	n := a / apt

	ws := takeWorkspace(d.cfg, a, p.Workers())
	defer releaseWorkspace(ws)

	feat := ws.feat
	if err := tensor.MatMulInto(feat, coords, d.coordEmbed, p); err != nil {
		return err
	}
	for li := 0; li < d.cfg.LocalEncLayers; li++ {
		if err := d.localAttention(feat, d.encQ[li], d.encK[li], d.encV[li], d.encOut[li], ws, p); err != nil {
			return err
		}
	}

	// Pool atoms to tokens (mean) then project to token width. Each token
	// row is one shard-local reduction over its atoms.
	pooled := ws.pooled
	p.Run(n, func(_, tlo, thi int) {
		for t := tlo; t < thi; t++ {
			dst := pooled.Row(t)
			for c := range dst {
				dst[c] = 0
			}
			for j := 0; j < apt; j++ {
				src := feat.Row(t*apt + j)
				for c := range dst {
					dst[c] += src[c]
				}
			}
			inv := float32(1.0 / float64(apt))
			for c := range dst {
				dst[c] *= inv
			}
		}
	})
	tok := ws.tok
	if err := tensor.MatMulInto(tok, pooled, d.atomToToken, p); err != nil {
		return err
	}
	for li := 0; li < d.cfg.GlobalLayers; li++ {
		if err := d.globalAttention(tok, d.glbQ[li], d.glbK[li], d.glbV[li], d.glbOut[li], ws, p); err != nil {
			return err
		}
	}

	// Broadcast token context back to atoms (each token owns its atom rows).
	back := ws.back
	if err := tensor.MatMulInto(back, tok, d.tokenToAtom, p); err != nil {
		return err
	}
	p.Run(n, func(_, tlo, thi int) {
		for t := tlo; t < thi; t++ {
			src := back.Row(t)
			for j := 0; j < apt; j++ {
				dst := feat.Row(t*apt + j)
				for c := range dst {
					dst[c] += src[c]
				}
			}
		}
	})
	for li := 0; li < d.cfg.LocalDecLayers; li++ {
		if err := d.localAttention(feat, d.decQ[li], d.decK[li], d.decV[li], d.decOut[li], ws, p); err != nil {
			return err
		}
	}

	if err := tensor.MatMulInto(ws.coordUpd, feat, d.coordHead, p); err != nil {
		return err
	}
	// Blend: coordinates move toward the denoised estimate, with the step
	// size shrinking as sigma decays. Per-atom updates are independent.
	blend := float32(0.1 * sigma)
	cd, ud := coords.Data, ws.coordUpd.Data
	p.Run(len(cd), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			cd[i] += blend * float32(math.Tanh(float64(ud[i])))
		}
	})
	return nil
}

// Sample runs the full denoising trajectory from Gaussian-noise initial
// coordinates for n tokens, returning the final (A×3) coordinates.
func (d *Denoiser) Sample(n int, src *rng.Source, p *parallel.Pool) (*tensor.Tensor, error) {
	coords, _, err := d.SampleWithConfidence(n, src, p)
	return coords, err
}

// SampleWithConfidence additionally returns a per-token confidence in
// (0,1]: tokens whose atoms have stopped moving over the trajectory's final
// quarter are confident (the convergence analog of AF3's pLDDT head; with
// random weights only the convergence signal is meaningful).
func (d *Denoiser) SampleWithConfidence(n int, src *rng.Source, p *parallel.Pool) (*tensor.Tensor, []float64, error) {
	apt := d.cfg.AtomsPerToken
	a := n * apt
	coords := tensor.New(a, 3)
	for i := range coords.Data {
		coords.Data[i] = float32(src.NormFloat64())
	}
	schedule := d.cfg.NoiseSchedule()
	tailStart := len(schedule) * 3 / 4
	moveSq := make([]float64, n)
	tailSteps := 0
	prev := make([]float32, len(coords.Data))
	for si, sigma := range schedule {
		copy(prev, coords.Data)
		if err := d.DenoiseStep(coords, sigma, p); err != nil {
			return nil, nil, err
		}
		if si >= tailStart {
			tailSteps++
			for atom := 0; atom < a; atom++ {
				var dsq float64
				for c := 0; c < 3; c++ {
					diff := float64(coords.Data[atom*3+c] - prev[atom*3+c])
					dsq += diff * diff
				}
				moveSq[atom/apt] += dsq
			}
		}
	}
	conf := make([]float64, n)
	for t := range conf {
		rms := 0.0
		if tailSteps > 0 {
			rms = math.Sqrt(moveSq[t] / float64(tailSteps*apt))
		}
		conf[t] = math.Exp(-20 * rms)
	}
	return coords, conf, nil
}
