package diffusion

import (
	"math"
	"runtime"
	"testing"

	"afsysbench/internal/parallel"
	"afsysbench/internal/rng"
)

// denoiseWith runs a fresh deterministic sampling trajectory on a pool of
// the given worker count and returns the final coordinates and confidence.
func denoiseWith(t *testing.T, workers int) ([]float32, []float64) {
	t.Helper()
	cfg := Config{
		Samples: 1, Steps: 6, TokenDim: 16, AtomDim: 8, AtomsPerToken: 4,
		AtomWindow: 6, GlobalLayers: 2, LocalEncLayers: 2, LocalDecLayers: 2, Heads: 2,
	}
	src := rng.New(123)
	d, err := NewDenoiser(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	var p *parallel.Pool
	if workers > 1 {
		p = parallel.New(workers)
		defer p.Close()
	}
	coords, conf, err := d.SampleWithConfidence(9, src.Split(1), p)
	if err != nil {
		t.Fatal(err)
	}
	return coords.Data, conf
}

// TestDenoiseBitwiseDeterministicAcrossWorkerCounts mirrors the pairformer
// invariant for the diffusion path: per-atom and per-token shards never
// split a reduction, so a whole sampling trajectory is bitwise identical
// at any worker count.
func TestDenoiseBitwiseDeterministicAcrossWorkerCounts(t *testing.T) {
	refCoords, refConf := denoiseWith(t, 1)
	for _, w := range []int{2, 3, runtime.NumCPU(), 8} {
		if w < 2 {
			continue
		}
		coords, conf := denoiseWith(t, w)
		for i := range refCoords {
			if math.Float32bits(coords[i]) != math.Float32bits(refCoords[i]) {
				t.Fatalf("workers=%d: coords[%d] = %x, serial %x",
					w, i, math.Float32bits(coords[i]), math.Float32bits(refCoords[i]))
			}
		}
		for i := range refConf {
			if conf[i] != refConf[i] {
				t.Fatalf("workers=%d: conf[%d] = %v, serial %v", w, i, conf[i], refConf[i])
			}
		}
	}
}

// TestDenoiseStepReusesWorkspace asserts the steady-state allocation claim
// for the denoising loop.
func TestDenoiseStepReusesWorkspace(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts only meaningful without -race")
	}
	cfg := Config{
		Samples: 1, Steps: 1, TokenDim: 16, AtomDim: 8, AtomsPerToken: 4,
		AtomWindow: 6, GlobalLayers: 1, LocalEncLayers: 1, LocalDecLayers: 1, Heads: 2,
	}
	src := rng.New(9)
	d, err := NewDenoiser(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	coords, err := d.Sample(8, src.Split(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := d.DenoiseStep(coords, 0.5, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("steady-state DenoiseStep allocates %.0f objects per run, want <= 8", allocs)
	}
}
