package diffusion

import (
	"math"
	"testing"

	"afsysbench/internal/rng"
	"afsysbench/internal/tensor"
)

func tinyConfig() Config {
	return Config{
		Samples:        1,
		Steps:          3,
		TokenDim:       16,
		AtomDim:        8,
		AtomsPerToken:  4,
		AtomWindow:     6,
		GlobalLayers:   2,
		LocalEncLayers: 2,
		LocalDecLayers: 2,
		Heads:          2,
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Evaluations() != cfg.Samples*cfg.Steps {
		t.Error("evaluations wrong")
	}
	if cfg.Evaluations() < 100 {
		t.Error("AF3-scale sampling should run hundreds of denoiser evaluations")
	}
}

func TestValidateRejectsBad(t *testing.T) {
	bad := tinyConfig()
	bad.Steps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero steps accepted")
	}
	bad = tinyConfig()
	bad.AtomWindow = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero window accepted")
	}
	bad = tinyConfig()
	bad.GlobalLayers = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero global layers accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	if GlobalAttention.String() != "global attention" {
		t.Error("global attention name wrong")
	}
}

func TestGlobalAttentionDominatesAndGrows(t *testing.T) {
	cfg := DefaultConfig()
	share := func(n int) float64 {
		return cfg.LayerFlops(GlobalAttention, n) / cfg.TotalFlops(n)
	}
	s484, s857 := share(484), share(857)
	// Table VI: global attention is the largest diffusion component
	// (53.08/80.37 at 2PV7) and its share rises with N (102.64/147.53).
	if s484 < 0.45 {
		t.Errorf("global share at N=484 = %.2f, want dominant", s484)
	}
	if s857 <= s484 {
		t.Errorf("global share must grow with N: %.2f -> %.2f", s484, s857)
	}
}

func TestLocalLayersScaleLinearly(t *testing.T) {
	cfg := DefaultConfig()
	for _, k := range []LayerKind{LocalAttnEncoder, LocalAttnDecoder} {
		r := cfg.LayerFlops(k, 2000) / cfg.LayerFlops(k, 1000)
		if math.Abs(r-2) > 0.01 {
			t.Errorf("%v doubling ratio = %.3f, want 2 (linear)", k, r)
		}
	}
	r := cfg.LayerFlops(GlobalAttention, 4000) / cfg.LayerFlops(GlobalAttention, 2000)
	if r < 2.5 {
		t.Errorf("global attention doubling ratio = %.2f, want superlinear", r)
	}
}

func TestEncoderExceedsDecoderWithMoreLayers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LocalEncLayers = 4
	cfg.LocalDecLayers = 3
	if cfg.LayerFlops(LocalAttnEncoder, 500) <= cfg.LayerFlops(LocalAttnDecoder, 500) {
		t.Error("encoder with more layers must cost more")
	}
}

func TestBytesAndKernelsPositive(t *testing.T) {
	cfg := DefaultConfig()
	for _, k := range Kinds() {
		if cfg.LayerBytes(k, 484) <= 0 {
			t.Errorf("%v bytes not positive", k)
		}
		if cfg.Kernels(k) <= 0 {
			t.Errorf("%v kernels not positive", k)
		}
	}
}

func TestCostScalesWithEvaluations(t *testing.T) {
	a := DefaultConfig()
	b := a
	b.Steps *= 2
	if r := b.TotalFlops(484) / a.TotalFlops(484); math.Abs(r-2) > 1e-9 {
		t.Errorf("doubling steps scaled cost by %v, want 2 (paper: cumulative cost linear in iterations)", r)
	}
}

func TestNoiseScheduleShape(t *testing.T) {
	cfg := tinyConfig()
	cfg.Steps = 10
	s := cfg.NoiseSchedule()
	if len(s) != 10 {
		t.Fatal("schedule length wrong")
	}
	for i, v := range s {
		if v <= 0 || v >= 1 {
			t.Errorf("sigma[%d] = %v out of (0,1)", i, v)
		}
		if i > 0 && s[i] >= s[i-1] {
			t.Errorf("schedule not decreasing at %d", i)
		}
	}
}

func TestDenoiseStepShapesAndFiniteness(t *testing.T) {
	cfg := tinyConfig()
	src := rng.New(1)
	d, err := NewDenoiser(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	coords, err := d.Sample(6, src.Split(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if coords.Shape[0] != 6*cfg.AtomsPerToken || coords.Shape[1] != 3 {
		t.Errorf("coords shape %v", coords.Shape)
	}
	for _, v := range coords.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite coordinate")
		}
	}
}

func TestDenoiseDeterministic(t *testing.T) {
	cfg := tinyConfig()
	run := func() float32 {
		src := rng.New(5)
		d, _ := NewDenoiser(cfg, src)
		coords, err := d.Sample(4, src.Split(2), nil)
		if err != nil {
			t.Fatal(err)
		}
		return coords.Data[7]
	}
	if run() != run() {
		t.Error("denoising not deterministic")
	}
}

func TestDenoiseStepMovesCoords(t *testing.T) {
	cfg := tinyConfig()
	src := rng.New(9)
	d, _ := NewDenoiser(cfg, src)
	coords, _ := d.Sample(4, src.Split(1), nil)
	before := coords.Clone()
	if err := d.DenoiseStep(coords, 1.0, nil); err != nil {
		t.Fatal(err)
	}
	moved := false
	for i := range coords.Data {
		if coords.Data[i] != before.Data[i] {
			moved = true
		}
		// The tanh-bounded blend caps per-step movement at 0.1*sigma.
		if diff := math.Abs(float64(coords.Data[i] - before.Data[i])); diff > 0.1+1e-6 {
			t.Fatalf("step moved coordinate by %v, bound is 0.1", diff)
		}
	}
	if !moved {
		t.Error("denoise step did not move coordinates")
	}
}

func TestDenoiseStepAtomCountMismatch(t *testing.T) {
	cfg := tinyConfig()
	src := rng.New(3)
	d, _ := NewDenoiser(cfg, src)
	coords := tensor.New(7, 3) // not divisible by AtomsPerToken=4
	if err := d.DenoiseStep(coords, 1, nil); err == nil {
		t.Error("indivisible atom count accepted")
	}
}

func TestNewDenoiserRejectsInvalid(t *testing.T) {
	if _, err := NewDenoiser(Config{}, rng.New(1)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSampleWithConfidence(t *testing.T) {
	cfg := tinyConfig()
	cfg.Steps = 12
	src := rng.New(21)
	d, err := NewDenoiser(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	coords, conf, err := d.SampleWithConfidence(5, src.Split(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if coords.Shape[0] != 5*cfg.AtomsPerToken {
		t.Fatal("coords shape wrong")
	}
	if len(conf) != 5 {
		t.Fatalf("confidence length = %d", len(conf))
	}
	for i, c := range conf {
		if c <= 0 || c > 1 {
			t.Errorf("confidence[%d] = %v out of (0,1]", i, c)
		}
	}
}

func TestConfidenceRisesWithMoreSteps(t *testing.T) {
	mean := func(steps int) float64 {
		cfg := tinyConfig()
		cfg.Steps = steps
		src := rng.New(23)
		d, err := NewDenoiser(cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		_, conf, err := d.SampleWithConfidence(6, src.Split(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, c := range conf {
			sum += c
		}
		return sum / float64(len(conf))
	}
	if short, long := mean(2), mean(16); long <= short {
		t.Errorf("confidence must rise with steps: %v (2) vs %v (16)", short, long)
	}
}

func TestSampleMatchesSampleWithConfidence(t *testing.T) {
	cfg := tinyConfig()
	src1, src2 := rng.New(29), rng.New(29)
	d1, _ := NewDenoiser(cfg, src1)
	d2, _ := NewDenoiser(cfg, src2)
	a, err := d1.Sample(4, src1.Split(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := d2.SampleWithConfidence(4, src2.Split(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Sample and SampleWithConfidence diverge")
		}
	}
}
