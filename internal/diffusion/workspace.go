package diffusion

import (
	"sync"

	"afsysbench/internal/tensor"
)

// workspace holds every scratch tensor one DenoiseStep needs. The
// denoising loop re-runs the denoiser Samples×Steps times, so recycling
// these buffers through a sync.Pool removes the dominant allocation
// source of a trajectory. Buffers are sized by (Config, atom count,
// shards); a mismatched workspace is dropped and rebuilt.
type workspace struct {
	cfg    Config
	atoms  int
	shards int

	feat *tensor.Tensor // A×AtomDim atom features
	// Local attention scratch (encoder and decoder share it).
	aq, ak, av, actx *tensor.Tensor // A×AtomDim
	winLogits        [][]float32    // per-shard AtomWindow+1 logit scratch
	// Token-level scratch.
	pooled     *tensor.Tensor // N×AtomDim
	tok        *tensor.Tensor // N×TokenDim
	tq, tk, tv *tensor.Tensor // N×TokenDim
	tkt        *tensor.Tensor // TokenDim×N
	tlogits    *tensor.Tensor // N×N
	tctx       *tensor.Tensor // N×TokenDim
	back       *tensor.Tensor // N×AtomDim token context for atoms
	coordUpd   *tensor.Tensor // A×3 coordinate head output
}

func newWorkspace(cfg Config, atoms, shards int) *workspace {
	n := atoms / cfg.AtomsPerToken
	da, dt := cfg.AtomDim, cfg.TokenDim
	ws := &workspace{
		cfg:      cfg,
		atoms:    atoms,
		shards:   shards,
		feat:     tensor.New(atoms, da),
		aq:       tensor.New(atoms, da),
		ak:       tensor.New(atoms, da),
		av:       tensor.New(atoms, da),
		actx:     tensor.New(atoms, da),
		pooled:   tensor.New(n, da),
		tok:      tensor.New(n, dt),
		tq:       tensor.New(n, dt),
		tk:       tensor.New(n, dt),
		tv:       tensor.New(n, dt),
		tkt:      tensor.New(dt, n),
		tlogits:  tensor.New(n, n),
		tctx:     tensor.New(n, dt),
		back:     tensor.New(n, da),
		coordUpd: tensor.New(atoms, 3),
	}
	ws.winLogits = make([][]float32, shards)
	for i := range ws.winLogits {
		ws.winLogits[i] = make([]float32, cfg.AtomWindow+1)
	}
	return ws
}

func (ws *workspace) fits(cfg Config, atoms, shards int) bool {
	return ws.cfg == cfg && ws.atoms == atoms && ws.shards >= shards
}

var wsPool sync.Pool

// takeWorkspace returns a workspace sized for (cfg, atoms) with per-shard
// scratch for at least `shards` concurrent shards.
func takeWorkspace(cfg Config, atoms, shards int) *workspace {
	if ws, ok := wsPool.Get().(*workspace); ok {
		if ws.fits(cfg, atoms, shards) {
			return ws
		}
	}
	return newWorkspace(cfg, atoms, shards)
}

func releaseWorkspace(ws *workspace) { wsPool.Put(ws) }
