package simhw

import (
	"fmt"
	"math"
	"sort"

	"afsysbench/internal/metering"
	"afsysbench/internal/platform"
)

// FuncWork is one function's contribution to a thread's workload: measured
// instruction/traffic counts plus modeled (paper-scale) footprints.
type FuncWork struct {
	Func string

	// Measured from the real kernels (possibly scaled to paper volume).
	Instructions   uint64
	Bytes          uint64 // total data traffic (reads+writes), including reuse
	Branches       uint64
	BranchMissRate float64
	Pattern        metering.Pattern

	// Modeled footprints. HotBytes is the reused working set these
	// accesses cycle over; SharedHotBytes (≤ HotBytes) is the portion
	// shared read-only between threads (profiles, seed indexes);
	// StreamBytes is touched-once traffic (database streaming).
	HotBytes       uint64
	SharedHotBytes uint64
	StreamBytes    uint64

	// Regularity in [0,1] discounts TLB and cache pressure for highly
	// repetitive access footprints (the promo sample's poly-Q DP columns
	// concentrate on few pages; Section V-B2b).
	Regularity float64

	// Allocated bytes trigger first-touch page faults (Table V's
	// _M_fill_insert behavior).
	Allocated uint64
}

// ThreadWork is one worker thread's function mix.
type ThreadWork struct {
	Funcs []FuncWork
}

// RunSpec describes a parallel region to simulate on a machine.
type RunSpec struct {
	Machine platform.Machine
	Threads []ThreadWork
	// Reader is the serialized input pipeline (HMMER's master thread:
	// copy_to_iter/addbuf/seebuf). It overlaps the workers but cannot be
	// parallelized, so it bounds speedup and — because it suffers the
	// workers' LLC contention — degrades as threads are added.
	Reader []FuncWork
	// SerialInstructions execute before/after the parallel region on one
	// thread (merge phases, profile rebuilds).
	SerialInstructions uint64
	// SerialStreamBytes is touched-once traffic in the serial section.
	SerialStreamBytes uint64
	// ExtraSeconds adds fixed time outside the CPU model (e.g. disk time
	// computed by simio).
	ExtraSeconds float64
}

// Result is the outcome of simulating a RunSpec.
type Result struct {
	Seconds          float64
	ParallelSeconds  float64
	ReaderSeconds    float64
	SerialSeconds    float64
	Aggregate        Counters
	PerFunc          map[string]Counters
	PerThreadSeconds []float64
	// BandwidthUtil is the DRAM bandwidth utilization of the parallel
	// region in [0,1+]; values near 1 mean the run was bandwidth-bound.
	BandwidthUtil float64
	// ClockGHz is the sustained core clock used.
	ClockGHz float64
}

// Model constants. These are the calibration surface of the CPU model; they
// are shared by both platforms — everything platform-specific comes from
// platform.CPU fields.
const (
	cacheLine = 64
	pageSize  = 4096
	// avgAccessBytes converts byte traffic into reference counts.
	avgAccessBytes = 8

	// L1 capacity-miss pattern multipliers, scaled by the CPU's
	// L1MissFactor character (strided = 1x).
	l1SeqFactor    = 0.15
	l1StrideFactor = 1.0
	l1RandFactor   = 8.0

	// L2 capacity-miss coefficients (given an L1 miss).
	l2SeqFactor    = 0.60
	l2StrideFactor = 0.85
	l2RandFactor   = 1.00

	// LLC contention: streaming claims this much residency per thread;
	// the hot miss fraction ramps steeply (square-root of the overflow
	// fraction, the LRU-on-cyclic-reuse regime) up to a temporal-locality
	// cap.
	llcStreamWindowBytes = 2 << 20
	llcHotMissCap        = 0.80
	llcMinCapacityFrac   = 0.20

	// TLB miss coefficients per pattern (fraction of references that step
	// outside the mapped reach).
	tlbSeqFactor    = float64(avgAccessBytes) / pageSize
	tlbStrideFactor = 0.35
	tlbRandFactor   = 0.70

	// Stall overlap: fraction of each level's latency exposed after
	// out-of-order overlap and memory-level parallelism. These are small:
	// Table III itself shows IPC holding near 3.5 on Intel despite ~31
	// cache misses per kilo-instruction, i.e. the hardware overlaps almost
	// all miss latency on this workload.
	l2StallOverlap   = 0.02
	llcStallOverlap  = 0.01
	dramStallOverlap = 0.018
	// stridePrefetchFactor is how much of the sequential prefetcher's
	// benefit strided streams still get.
	stridePrefetchFactor = 0.75

	pageFaultCycles = 1400

	// readerContentionPerThread inflates the serialized reader pipeline's
	// cycle count per active worker (shared-LLC and queue interference).
	readerContentionPerThread = 0.15
)

func patternFactor(p metering.Pattern, seqF, strideF, randF float64) float64 {
	switch p {
	case metering.Sequential:
		return seqF
	case metering.Strided:
		return strideF
	default:
		return randF
	}
}

// capacityMissFrac returns the miss fraction for references cycling over a
// hot set of ws bytes against a cache of cap bytes, clamped to [0, 1].
func capacityMissFrac(ws, capacity uint64, factor float64) float64 {
	if ws == 0 || ws <= capacity {
		return 0
	}
	f := factor * (1 - float64(capacity)/float64(ws))
	if f > 1 {
		return 1
	}
	return f
}

// Simulate runs the analytical CPU model over the spec.
func Simulate(spec RunSpec) Result {
	cpu := spec.Machine.CPU
	t := len(spec.Threads)
	if t == 0 {
		t = 1
	}
	clock := cpu.ClockGHz(t)
	hz := clock * 1e9

	// LLC contention state shared by all threads.
	hotShared, hotPrivate := footprints(spec.Threads)
	ceff := float64(cpu.LLCBytes) - float64(t)*llcStreamWindowBytes
	if min := float64(cpu.LLCBytes) * llcMinCapacityFrac; ceff < min {
		ceff = min
	}
	hotTotal := hotShared + float64(t)*hotPrivate
	hotMissFrac := cpu.LLCBaseMissFrac
	if hotTotal > ceff {
		frac := llcHotMissCap * math.Sqrt((hotTotal-ceff)/hotTotal)
		if frac > hotMissFrac {
			hotMissFrac = frac
		}
	}
	if hotMissFrac > llcHotMissCap && cpu.LLCBaseMissFrac < llcHotMissCap {
		hotMissFrac = llcHotMissCap
	}

	res := Result{
		PerFunc:          make(map[string]Counters),
		PerThreadSeconds: make([]float64, len(spec.Threads)),
		ClockGHz:         clock,
	}

	var totalDRAMBytes float64
	var maxThreadSeconds float64
	for ti, tw := range spec.Threads {
		var threadCycles float64
		for _, fw := range tw.Funcs {
			c := simulateFunc(cpu, fw, t, hotMissFrac)
			res.Aggregate.Add(c)
			pf := res.PerFunc[fw.Func]
			pf.Add(c)
			res.PerFunc[fw.Func] = pf
			threadCycles += float64(c.Cycles)
			totalDRAMBytes += float64(c.DRAMBytes)
		}
		secs := threadCycles / hz
		res.PerThreadSeconds[ti] = secs
		if secs > maxThreadSeconds {
			maxThreadSeconds = secs
		}
	}

	// Reader pipeline: serialized input path overlapping the workers. Its
	// memory behavior suffers the same LLC contention state, so adding
	// workers slows it — once the workers outpace it, total time is
	// reader-bound and grows with thread count (the paper's degradation
	// beyond 4–6 threads, Figures 4–5).
	var readerCycles float64
	for _, fw := range spec.Reader {
		c := simulateFunc(cpu, fw, t, hotMissFrac)
		res.Aggregate.Add(c)
		pf := res.PerFunc[fw.Func]
		pf.Add(c)
		res.PerFunc[fw.Func] = pf
		readerCycles += float64(c.Cycles)
		totalDRAMBytes += float64(c.DRAMBytes)
	}
	// Contending with t workers inflates the reader's effective latency.
	readerCycles *= 1 + readerContentionPerThread*float64(t-1)
	res.ReaderSeconds = readerCycles / hz
	// Pipeline combine: the slower stage bounds throughput and a fraction
	// of the faster stage leaks past the overlap (handoff stalls).
	const overlapLoss = 0.30
	if res.ReaderSeconds > maxThreadSeconds {
		maxThreadSeconds = res.ReaderSeconds + overlapLoss*maxThreadSeconds
	} else {
		maxThreadSeconds += overlapLoss * res.ReaderSeconds
	}

	// DRAM bandwidth: if aggregate traffic exceeds what the memory system
	// can deliver in the compute-bound time, the region becomes
	// bandwidth-bound and stretches; near saturation queueing inflates
	// time smoothly.
	parallel := maxThreadSeconds
	if parallel > 0 && totalDRAMBytes > 0 {
		bwSeconds := totalDRAMBytes / (cpu.MemBandwidthGBs * 1e9)
		util := bwSeconds / parallel
		res.BandwidthUtil = util
		switch {
		case util >= 1:
			parallel = bwSeconds * 1.05 // fully bandwidth-bound
		case util > 0.5:
			// Queueing delay grows as utilization approaches 1.
			parallel *= 1 + 0.30*math.Pow((util-0.5)/0.5, 2)
		}
	}
	res.ParallelSeconds = parallel

	// Serial section: single thread at single-core boost.
	serialCycles := float64(spec.SerialInstructions) / cpu.BaseIPC
	serialCycles += float64(spec.SerialStreamBytes) / cacheLine * dramStallOverlap * cpu.MemLatencyNs * cpu.MaxClockGHz * (1 - cpu.PrefetchEfficiency)
	res.SerialSeconds = serialCycles / (cpu.MaxClockGHz * 1e9)
	res.Aggregate.Instructions += spec.SerialInstructions
	res.Aggregate.Cycles += uint64(serialCycles)

	res.Seconds = res.ParallelSeconds + res.SerialSeconds + spec.ExtraSeconds
	return res
}

// footprints derives the modeled hot footprints: shared structures are
// counted once per distinct function name; a thread's private hot set is
// the maximum over its functions (DP arenas are reused across kernels, not
// stacked), averaged across threads.
func footprints(threads []ThreadWork) (shared, privatePerThread float64) {
	sharedByFunc := make(map[string]float64)
	var private float64
	for _, tw := range threads {
		var threadMax float64
		for _, fw := range tw.Funcs {
			if s := float64(fw.SharedHotBytes); s > sharedByFunc[fw.Func] {
				sharedByFunc[fw.Func] = s
			}
			if p := float64(fw.HotBytes) - float64(fw.SharedHotBytes); p > threadMax {
				threadMax = p
			}
		}
		private += threadMax
	}
	for _, s := range sharedByFunc {
		shared += s
	}
	if n := float64(len(threads)); n > 0 {
		private /= n
	}
	return shared, private
}

// simulateFunc computes the counters for one function's work on one thread.
func simulateFunc(cpu platform.CPU, fw FuncWork, nThreads int, llcHotMissFrac float64) Counters {
	var c Counters
	c.Instructions = fw.Instructions
	c.Branches = fw.Branches

	reg := 1 - fw.Regularity

	// Reference counts.
	hotRefs := float64(fw.Bytes) / avgAccessBytes
	streamLines := float64(fw.StreamBytes) / cacheLine
	c.Loads = uint64(hotRefs + float64(fw.StreamBytes)/avgAccessBytes)
	c.TLBRefs = c.Loads

	// L1: hot capacity misses plus one miss per streaming line.
	l1F := patternFactor(fw.Pattern, l1SeqFactor, l1StrideFactor, l1RandFactor) * reg * cpu.L1MissFactor
	l1HotMiss := hotRefs * capacityMissFrac(fw.HotBytes, uint64(cpu.L1DBytes), l1F)
	l1Miss := l1HotMiss + streamLines
	c.L1Misses = uint64(l1Miss)

	// L2.
	c.L2Refs = c.L1Misses
	l2F := patternFactor(fw.Pattern, l2SeqFactor, l2StrideFactor, l2RandFactor)
	l2HotMiss := l1HotMiss * capacityMissFrac(fw.HotBytes, uint64(cpu.L2Bytes), l2F)
	l2Miss := l2HotMiss + streamLines
	c.L2Misses = uint64(l2Miss)

	// LLC: hot misses from the shared-capacity contention model; shared
	// structures amortize their misses across threads (one fetch serves
	// all). Streaming lines always leave the hierarchy.
	c.LLCRefs = c.L2Misses
	sharedFrac := 0.0
	if fw.HotBytes > 0 {
		sharedFrac = float64(fw.SharedHotBytes) / float64(fw.HotBytes)
	}
	privateMiss := l2HotMiss * (1 - sharedFrac) * llcHotMissFrac
	sharedMiss := l2HotMiss * sharedFrac * llcHotMissFrac / float64(nThreads)
	// Streaming lines are compulsory misses, but the prefetchers convert
	// a portion into LLC hits by running ahead of the demand stream; the
	// prefetched lines still cross the DRAM bus.
	streamMiss := streamLines * (1 - 0.35*cpu.PrefetchEfficiency)
	llcMiss := privateMiss + sharedMiss + streamMiss
	c.LLCMisses = uint64(llcMiss)
	c.DRAMBytes = uint64(privateMiss+sharedMiss+streamLines) * cacheLine

	// TLB: references stepping beyond the platform's mapped reach.
	tlbF := patternFactor(fw.Pattern, tlbSeqFactor, tlbStrideFactor, tlbRandFactor) * reg
	tlbMiss := hotRefs * capacityMissFrac(fw.HotBytes, uint64(cpu.TLBReachBytes), tlbF)
	tlbMiss += float64(fw.StreamBytes) / pageSize // one per streamed page
	c.TLBMisses = uint64(tlbMiss)

	// Branches.
	brMissRate := fw.BranchMissRate * cpu.BranchQuality
	if brMissRate > 0.5 {
		brMissRate = 0.5
	}
	c.BranchMisses = uint64(float64(fw.Branches) * brMissRate)

	// Page faults from fresh allocation.
	c.PageFaults = fw.Allocated / pageSize

	// Cycle accounting.
	memLatCycles := cpu.MemLatencyNs * cpu.MaxClockGHz // latency in core cycles
	prefetchHide := 0.0
	switch fw.Pattern {
	case metering.Sequential:
		prefetchHide = cpu.PrefetchEfficiency
	case metering.Strided:
		prefetchHide = cpu.PrefetchEfficiency * stridePrefetchFactor
	}
	cycles := float64(fw.Instructions) / cpu.BaseIPC
	cycles += float64(c.L2Refs) * cpu.L2LatencyCycles * l2StallOverlap
	cycles += float64(c.LLCRefs) * cpu.LLCLatencyCycles * llcStallOverlap
	cycles += llcMiss * memLatCycles * dramStallOverlap * (1 - prefetchHide)
	cycles += tlbMiss * cpu.TLBMissPenaltyCycles
	cycles += float64(c.BranchMisses) * cpu.BranchPenaltyCycles
	cycles += float64(c.PageFaults) * pageFaultCycles
	c.Cycles = uint64(cycles)
	return c
}

// TopFuncs returns per-function shares of a counter extractor, sorted
// descending — the building block for Table IV style reports.
func TopFuncs(perFunc map[string]Counters, metric func(Counters) float64) []FuncShare {
	var total float64
	for _, c := range perFunc {
		total += metric(c)
	}
	out := make([]FuncShare, 0, len(perFunc))
	for name, c := range perFunc {
		share := 0.0
		if total > 0 {
			share = 100 * metric(c) / total
		}
		out = append(out, FuncShare{Func: name, Value: metric(c), SharePct: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// FuncShare is one row of a function-level profile.
type FuncShare struct {
	Func     string
	Value    float64
	SharePct float64
}

// String renders a share row.
func (f FuncShare) String() string {
	return fmt.Sprintf("%-16s %6.2f%%", f.Func, f.SharePct)
}
