package simhw

import (
	"fmt"

	"afsysbench/internal/metering"
)

// Cross-validation between the two cache models. The analytical model
// prices work in O(1); the trace simulator replays a synthesized address
// stream through real set-associative LRU caches. ValidateFuncWork runs
// both on the same access statistics and reports the per-level miss
// fractions side by side — the accuracy arm of the cache-model ablation and
// a guard against the analytical constants drifting away from concrete
// cache behavior.

// ModelComparison holds both models' per-reference miss probabilities at
// each level (misses at that level divided by total references issued) for
// one workload description. Per-reference probabilities compare cleanly
// across regimes, unlike per-arrival rates, which degenerate to ~1 when a
// level sees only cold traffic.
type ModelComparison struct {
	AnalyticL1, AnalyticL2, AnalyticLLC float64
	TraceL1, TraceL2, TraceLLC          float64
}

// MaxDivergence returns the largest absolute per-level difference.
func (c ModelComparison) MaxDivergence() float64 {
	worst := abs(c.AnalyticL1 - c.TraceL1)
	if d := abs(c.AnalyticL2 - c.TraceL2); d > worst {
		worst = d
	}
	if d := abs(c.AnalyticLLC - c.TraceLLC); d > worst {
		worst = d
	}
	return worst
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ValidateFuncWork compares the analytical hot-set miss chain against a
// trace-driven replay for a single-threaded workload with the given hot
// footprint and pattern, on the given cache geometry. refs is the number of
// hot references replayed (more refs, tighter estimate).
func ValidateFuncWork(hotBytes uint64, pattern metering.Pattern, refs int, l1, l2, llc int, l1Factor float64) (ModelComparison, error) {
	if hotBytes == 0 || refs <= 0 {
		return ModelComparison{}, fmt.Errorf("simhw: validation needs a hot set and references")
	}
	var cmp ModelComparison

	// Analytical chain, mirroring simulateFunc: per-level arrival miss
	// fractions multiplied down to per-reference probabilities.
	l1F := patternFactor(pattern, l1SeqFactor, l1StrideFactor, l1RandFactor) * l1Factor
	m1 := capacityMissFrac(hotBytes, uint64(l1), l1F)
	l2F := patternFactor(pattern, l2SeqFactor, l2StrideFactor, l2RandFactor)
	m2 := capacityMissFrac(hotBytes, uint64(l2), l2F)
	m3 := 0.0
	if hotBytes > uint64(llc) {
		m3 = llcHotMissCap
	}
	cmp.AnalyticL1 = m1
	cmp.AnalyticL2 = m1 * m2
	cmp.AnalyticLLC = m1 * m2 * m3

	// Trace-driven replay through concrete LRU caches: one warmup pass
	// over the hot set (compulsory misses excluded), then the measured
	// steady-state references.
	h := NewHierarchy(l1, l2, llc)
	tr := NewSyntheticTrace(1, hotBytes, pattern)
	warmup := int(hotBytes/cacheLine) * 2
	for i := 0; i < warmup; i++ {
		h.Access(tr.NextHot())
	}
	h.Reset()
	for i := 0; i < refs; i++ {
		h.Access(tr.NextHot())
	}
	n := float64(refs)
	cmp.TraceL1 = float64(h.L1.Miss) / n
	cmp.TraceL2 = float64(h.L2.Miss) / n
	cmp.TraceLLC = float64(h.LLC.Miss) / n
	return cmp, nil
}

// ValidateRegimes sweeps the three capacity regimes (fits in L2, fits in
// LLC, exceeds LLC) for a pattern and returns the worst LLC-level
// divergence — the summary number the ablation reports.
func ValidateRegimes(pattern metering.Pattern, l1, l2, llc int, l1Factor float64) (float64, error) {
	regimes := []uint64{
		uint64(l2) / 2,  // hot set fits in L2
		uint64(llc) / 2, // fits in LLC only
		uint64(llc) * 3, // exceeds everything
	}
	worst := 0.0
	for _, hot := range regimes {
		cmp, err := ValidateFuncWork(hot, pattern, 200_000, l1, l2, llc, l1Factor)
		if err != nil {
			return 0, err
		}
		if d := abs(cmp.AnalyticLLC - cmp.TraceLLC); d > worst {
			worst = d
		}
	}
	return worst, nil
}
