package simhw

import (
	"testing"
	"testing/quick"

	"afsysbench/internal/metering"
	"afsysbench/internal/platform"
)

// dpWork models a calc_band-like function: strided DP over a multi-MB hot
// set with a shared profile table.
func dpWork(instr uint64, hot, shared uint64) FuncWork {
	return FuncWork{
		Func:           "calc_band_9",
		Instructions:   instr,
		Bytes:          instr * 4,
		Branches:       instr / 4,
		BranchMissRate: 0.004,
		Pattern:        metering.Strided,
		HotBytes:       hot,
		SharedHotBytes: shared,
	}
}

func streamWork(bytes uint64) FuncWork {
	return FuncWork{
		Func:         "copy_to_iter",
		Instructions: bytes / 2,
		Bytes:        2 * bytes,
		Pattern:      metering.Sequential,
		StreamBytes:  bytes,
		HotBytes:     0,
	}
}

func spec(m platform.Machine, nThreads int, funcs ...FuncWork) RunSpec {
	threads := make([]ThreadWork, nThreads)
	for i := range threads {
		threads[i] = ThreadWork{Funcs: funcs}
	}
	return RunSpec{Machine: m, Threads: threads}
}

func TestCountersHelpers(t *testing.T) {
	c := Counters{
		Instructions: 1000, Cycles: 500, Loads: 400, L1Misses: 4,
		LLCRefs: 100, LLCMisses: 56, TLBRefs: 400, TLBMisses: 2,
		Branches: 100, BranchMisses: 1,
	}
	if c.IPC() != 2 {
		t.Errorf("IPC = %v", c.IPC())
	}
	if c.L1MissPct() != 1 {
		t.Errorf("L1 miss pct = %v", c.L1MissPct())
	}
	if c.LLCMissPct() != 56 {
		t.Errorf("LLC miss pct = %v", c.LLCMissPct())
	}
	if c.DTLBMissPct() != 0.5 {
		t.Errorf("dTLB miss pct = %v", c.DTLBMissPct())
	}
	if c.BranchMissPct() != 1 {
		t.Errorf("branch miss pct = %v", c.BranchMissPct())
	}
	if c.CacheMissMPKI() != 56 {
		t.Errorf("MPKI = %v", c.CacheMissMPKI())
	}
	var zero Counters
	if zero.IPC() != 0 || zero.LLCMissPct() != 0 || zero.CacheMissMPKI() != 0 {
		t.Error("zero counters must not divide by zero")
	}
	var agg Counters
	agg.Add(c)
	agg.Add(c)
	if agg.Instructions != 2000 || agg.LLCMisses != 112 {
		t.Error("Add wrong")
	}
}

func TestSimulateBasicSanity(t *testing.T) {
	res := Simulate(spec(platform.Server(), 1, dpWork(1e9, 40<<20, 1<<20)))
	if res.Seconds <= 0 {
		t.Fatal("non-positive simulated time")
	}
	ipc := res.Aggregate.IPC()
	if ipc <= 1.2 || ipc > platform.Server().CPU.BaseIPC {
		t.Errorf("IPC = %v out of plausible range", ipc)
	}
	if res.ClockGHz != platform.Server().CPU.MaxClockGHz {
		t.Error("single-thread run must use max boost clock")
	}
}

func TestMoreInstructionsTakeLonger(t *testing.T) {
	a := Simulate(spec(platform.Desktop(), 1, dpWork(1e8, 1<<20, 0)))
	b := Simulate(spec(platform.Desktop(), 1, dpWork(1e9, 1<<20, 0)))
	if b.Seconds <= a.Seconds {
		t.Errorf("10x instructions not slower: %v vs %v", a.Seconds, b.Seconds)
	}
}

func TestIntelVsAMDLLCContrast(t *testing.T) {
	// The 2PV7 contrast of Table III: hot set between the two LLC sizes
	// (30 MiB < hot < 64 MiB). Intel must show a high, roughly flat LLC
	// miss rate; AMD must start near zero and climb steeply with threads.
	work := func() []FuncWork {
		return []FuncWork{dpWork(1e9, 44<<20, 2<<20), streamWork(1 << 26)}
	}
	intel1 := Simulate(spec(platform.Server(), 1, work()...))
	intel6 := Simulate(spec(platform.Server(), 6, work()...))
	amd1 := Simulate(spec(platform.Desktop(), 1, work()...))
	amd6 := Simulate(spec(platform.Desktop(), 6, work()...))

	i1, i6 := intel1.Aggregate.LLCMissPct(), intel6.Aggregate.LLCMissPct()
	a1, a6 := amd1.Aggregate.LLCMissPct(), amd6.Aggregate.LLCMissPct()

	if i1 < 30 {
		t.Errorf("Intel 1T LLC miss = %.1f%%, want high (small LLC overwhelmed)", i1)
	}
	if ratio := i6 / i1; ratio < 0.7 || ratio > 1.5 {
		t.Errorf("Intel LLC miss not flat: %.1f%% -> %.1f%%", i1, i6)
	}
	if a1 > 15 {
		t.Errorf("AMD 1T LLC miss = %.1f%%, want low (large LLC holds hot set)", a1)
	}
	if a6 < 2*a1+10 {
		t.Errorf("AMD LLC miss must climb with threads: %.1f%% -> %.1f%%", a1, a6)
	}
}

func TestTLBContrast(t *testing.T) {
	// Table III: Intel dTLB misses negligible, AMD substantial for strided
	// multi-MB hot sets.
	w := dpWork(1e9, 40<<20, 0)
	intel := Simulate(spec(platform.Server(), 4, w))
	amd := Simulate(spec(platform.Desktop(), 4, w))
	if got := intel.Aggregate.DTLBMissPct(); got > 0.1 {
		t.Errorf("Intel dTLB miss = %v%%, want ~0", got)
	}
	if got := amd.Aggregate.DTLBMissPct(); got < 5 {
		t.Errorf("AMD dTLB miss = %v%%, want substantial", got)
	}
}

func TestRegularityReducesTLBAndCachePressure(t *testing.T) {
	w := dpWork(1e9, 40<<20, 0)
	irregular := Simulate(spec(platform.Desktop(), 4, w))
	w.Regularity = 0.7
	regular := Simulate(spec(platform.Desktop(), 4, w))
	if regular.Aggregate.TLBMisses >= irregular.Aggregate.TLBMisses {
		t.Error("regularity must reduce TLB misses")
	}
	if regular.Aggregate.L1Misses >= irregular.Aggregate.L1Misses {
		t.Error("regularity must reduce cache misses")
	}
}

func TestSharedHotAmortizesAcrossThreads(t *testing.T) {
	private := dpWork(1e9, 40<<20, 0)
	shared := dpWork(1e9, 40<<20, 40<<20)
	rp := Simulate(spec(platform.Server(), 6, private))
	rs := Simulate(spec(platform.Server(), 6, shared))
	if rs.Aggregate.LLCMisses >= rp.Aggregate.LLCMisses {
		t.Errorf("shared hot set must miss less: %d vs %d", rs.Aggregate.LLCMisses, rp.Aggregate.LLCMisses)
	}
}

func TestBranchQualityContrast(t *testing.T) {
	w := dpWork(1e9, 1<<20, 0)
	intel := Simulate(spec(platform.Server(), 1, w))
	amd := Simulate(spec(platform.Desktop(), 1, w))
	if intel.Aggregate.BranchMissPct() >= amd.Aggregate.BranchMissPct() {
		t.Error("Intel branch miss rate must be lower (Table III)")
	}
}

func TestPageFaultsFromAllocation(t *testing.T) {
	w := FuncWork{Func: "fill_insert", Instructions: 1e6, Bytes: 1e6, Allocated: 40 << 20}
	res := Simulate(spec(platform.Server(), 1, w))
	want := uint64(40<<20) / 4096
	if res.Aggregate.PageFaults != want {
		t.Errorf("page faults = %d, want %d", res.Aggregate.PageFaults, want)
	}
}

func TestSerialSectionAdds(t *testing.T) {
	base := spec(platform.Server(), 2, dpWork(1e8, 1<<20, 0))
	withSerial := base
	withSerial.SerialInstructions = 4e9
	a, b := Simulate(base), Simulate(withSerial)
	if b.Seconds <= a.Seconds {
		t.Error("serial instructions must add time")
	}
	if b.SerialSeconds <= 0 {
		t.Error("serial seconds not reported")
	}
}

func TestExtraSecondsAdds(t *testing.T) {
	s := spec(platform.Server(), 1, dpWork(1e8, 1<<20, 0))
	s.ExtraSeconds = 3.5
	res := Simulate(s)
	if res.Seconds < 3.5 {
		t.Error("extra seconds not included")
	}
}

func TestBandwidthSaturationStretchesTime(t *testing.T) {
	// Enormous streaming traffic must make the run bandwidth-bound.
	s := spec(platform.Desktop(), 8, streamWork(1<<33))
	res := Simulate(s)
	if res.BandwidthUtil < 0.5 {
		t.Errorf("bandwidth util = %v, expected high", res.BandwidthUtil)
	}
	floor := float64(8) * float64(uint64(1)<<33) / (platform.Desktop().CPU.MemBandwidthGBs * 1e9)
	if res.ParallelSeconds < floor*0.9 {
		t.Errorf("parallel time %v below bandwidth floor %v", res.ParallelSeconds, floor)
	}
}

func TestPerFuncAttribution(t *testing.T) {
	res := Simulate(spec(platform.Server(), 2, dpWork(1e8, 1<<20, 0), streamWork(1<<24)))
	if len(res.PerFunc) != 2 {
		t.Fatalf("PerFunc has %d entries", len(res.PerFunc))
	}
	if res.PerFunc["calc_band_9"].Instructions == 0 || res.PerFunc["copy_to_iter"].Instructions == 0 {
		t.Error("per-function instruction attribution missing")
	}
	shares := TopFuncs(res.PerFunc, func(c Counters) float64 { return float64(c.Cycles) })
	if len(shares) != 2 {
		t.Fatal("TopFuncs length wrong")
	}
	if shares[0].Value < shares[1].Value {
		t.Error("TopFuncs not sorted descending")
	}
	var tot float64
	for _, s := range shares {
		tot += s.SharePct
	}
	if tot < 99.9 || tot > 100.1 {
		t.Errorf("shares sum to %v", tot)
	}
	if shares[0].String() == "" {
		t.Error("empty share string")
	}
}

func TestQuickMoreInstructionsNeverFaster(t *testing.T) {
	f := func(seed uint64, extraRaw uint32) bool {
		base := uint64(1e7) + uint64(seed%1e6)
		extra := uint64(extraRaw % 1e8)
		a := Simulate(spec(platform.Server(), 2, dpWork(base, 8<<20, 0)))
		b := Simulate(spec(platform.Server(), 2, dpWork(base+extra, 8<<20, 0)))
		return b.Seconds >= a.Seconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountersInternallyConsistent(t *testing.T) {
	f := func(seed uint64, hotRaw uint32) bool {
		hot := uint64(hotRaw%64+1) << 20
		res := Simulate(spec(platform.Desktop(), 3, dpWork(2e8, hot, hot/4), streamWork(1<<24)))
		c := res.Aggregate
		// Miss flows can only shrink down the hierarchy.
		return c.L1Misses <= c.Loads &&
			c.L2Misses <= c.L2Refs &&
			c.LLCMisses <= c.LLCRefs+uint64(1) &&
			c.BranchMisses <= c.Branches &&
			c.Cycles > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAggregateWorkIndependentOfThreads(t *testing.T) {
	// Splitting the same total work across more threads must keep the
	// aggregate instruction count identical.
	total := uint64(8e8)
	ref := Simulate(spec(platform.Server(), 1, dpWork(total, 16<<20, 0))).Aggregate.Instructions
	for _, threads := range []int{2, 4, 8} {
		per := dpWork(total/uint64(threads), 16<<20, 0)
		got := Simulate(spec(platform.Server(), threads, per)).Aggregate.Instructions
		if got != ref {
			t.Fatalf("%d threads: aggregate instructions %d != %d", threads, got, ref)
		}
	}
}
