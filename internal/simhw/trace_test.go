package simhw

import (
	"testing"

	"afsysbench/internal/metering"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(4096, 4, 64) // 16 sets
	if !c.Access(0) == false && c.Miss != 1 {
		t.Error("first access must miss")
	}
	if !c.Access(0) {
		t.Error("repeat access must hit")
	}
	if c.Access(8) != true {
		t.Error("same-line access must hit")
	}
	if c.Access(64) {
		t.Error("next line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 1 way, 2 sets, 64B lines = 128 bytes.
	c := NewCache(128, 1, 64)
	c.Access(0)   // set 0
	c.Access(128) // set 0, evicts line 0
	if c.Access(0) {
		t.Error("evicted line must miss")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	c := NewCache(1<<16, 8, 64) // 64 KiB
	// Cycle twice over a 32 KiB region: second pass must hit.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 32<<10; a += 64 {
			c.Access(a)
		}
	}
	if got := c.MissRate(); got > 0.51 {
		t.Errorf("fitting working set miss rate = %v, want ~0.5 (cold only)", got)
	}
}

func TestCacheCyclicThrash(t *testing.T) {
	c := NewCache(1<<16, 8, 64) // 64 KiB
	// Cyclic sequential sweep over 2x capacity: LRU pathologically misses.
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 128<<10; a += 64 {
			c.Access(a)
		}
	}
	if got := c.MissRate(); got < 0.95 {
		t.Errorf("cyclic over-capacity miss rate = %v, want ~1", got)
	}
}

func TestHierarchyPropagation(t *testing.T) {
	h := NewHierarchy(1<<12, 1<<14, 1<<16)
	if lvl := h.Access(0); lvl != 4 {
		t.Errorf("cold access served by level %d, want memory", lvl)
	}
	if lvl := h.Access(0); lvl != 1 {
		t.Errorf("hot access served by level %d, want L1", lvl)
	}
}

func TestTraceMatchesAnalyticCapacityShape(t *testing.T) {
	// Random accesses over a working set far larger than L1 but fitting in
	// LLC: trace must show high L1 miss, near-zero LLC miss — same shape
	// as the analytical capacityMissFrac chain.
	l1, l2, llc := 32<<10, 1<<20, 32<<20
	l1m, _, llcm := TraceMissRates(1, 8<<20, metering.Random, 300_000, l1, l2, llc)
	if l1m < 0.5 {
		t.Errorf("random over 8 MiB: L1 miss = %v, want high", l1m)
	}
	// After warmup the LLC holds the whole set; allow cold misses.
	if llcm > 0.5 {
		t.Errorf("LLC miss = %v, want low for fitting set", llcm)
	}

	// Same analytical shape.
	if capacityMissFrac(8<<20, uint64(l1), 1) < 0.9 {
		t.Error("analytic L1 capacity miss too low")
	}
	if capacityMissFrac(8<<20, uint64(llc), 1) != 0 {
		t.Error("analytic LLC capacity miss should be zero for fitting set")
	}
}

func TestTraceSequentialBeatsRandomInL1(t *testing.T) {
	l1, l2, llc := 32<<10, 1<<20, 32<<20
	seqL1, _, _ := TraceMissRates(2, 4<<20, metering.Sequential, 200_000, l1, l2, llc)
	rndL1, _, _ := TraceMissRates(2, 4<<20, metering.Random, 200_000, l1, l2, llc)
	if seqL1 >= rndL1 {
		t.Errorf("sequential L1 miss %v not below random %v", seqL1, rndL1)
	}
}

func TestSyntheticTraceStreamsAreDisjoint(t *testing.T) {
	tr := NewSyntheticTrace(3, 1<<20, metering.Random)
	for i := 0; i < 1000; i++ {
		if tr.NextHot() >= 1<<40 {
			t.Fatal("hot address in stream region")
		}
		if tr.NextStream() < 1<<40 {
			t.Fatal("stream address in hot region")
		}
	}
	// Streaming never repeats.
	a, b := tr.NextStream(), tr.NextStream()
	if a == b {
		t.Error("stream addresses repeated")
	}
}
