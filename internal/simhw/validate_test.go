package simhw

import (
	"testing"

	"afsysbench/internal/metering"
)

func TestValidateFuncWorkErrors(t *testing.T) {
	if _, err := ValidateFuncWork(0, metering.Random, 100, 1<<15, 1<<20, 1<<25, 1); err == nil {
		t.Error("zero hot set accepted")
	}
	if _, err := ValidateFuncWork(1<<20, metering.Random, 0, 1<<15, 1<<20, 1<<25, 1); err == nil {
		t.Error("zero refs accepted")
	}
}

func TestValidateCapacityRegimesAgreeAtLLC(t *testing.T) {
	// The claim the analytical model rests on: whether a hot set fits a
	// level decides its miss behavior. The trace simulator must agree on
	// that boundary for both boundary regimes.
	l1, l2, llc := 32<<10, 1<<20, 8<<20

	// Fits in LLC: both models must see (almost) no LLC misses.
	cmp, err := ValidateFuncWork(4<<20, metering.Random, 300_000, l1, l2, llc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.AnalyticLLC != 0 {
		t.Errorf("analytic LLC miss %v for fitting set, want 0", cmp.AnalyticLLC)
	}
	if cmp.TraceLLC > 0.25 {
		t.Errorf("trace per-ref LLC miss %v for fitting set, want ~0 (cold only)", cmp.TraceLLC)
	}

	// Exceeds LLC: both models must see substantial misses.
	cmp, err = ValidateFuncWork(32<<20, metering.Random, 300_000, l1, l2, llc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.AnalyticLLC == 0 {
		t.Error("analytic LLC miss 0 for oversized set")
	}
	if cmp.TraceLLC < 0.2 {
		t.Errorf("trace per-ref LLC miss %v for oversized set, want substantial", cmp.TraceLLC)
	}
	if cmp.MaxDivergence() > 1 {
		t.Error("divergence metric out of range")
	}
}

func TestValidateRegimesSummary(t *testing.T) {
	worst, err := ValidateRegimes(metering.Random, 32<<10, 1<<20, 8<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The analytical capacity model must track the concrete simulator's
	// LLC behavior within a coarse band across regimes.
	if worst > 0.25 {
		t.Errorf("worst LLC divergence = %.2f, models disagree badly", worst)
	}
}

func TestValidateSequentialPattern(t *testing.T) {
	cmp, err := ValidateFuncWork(4<<20, metering.Sequential, 200_000, 32<<10, 1<<20, 8<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential hot sweeps are prefetch-friendly: the analytic L1 miss
	// fraction must be far below the random-pattern one.
	rnd, err := ValidateFuncWork(4<<20, metering.Random, 200_000, 32<<10, 1<<20, 8<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.AnalyticL1 >= rnd.AnalyticL1 {
		t.Error("sequential analytic L1 miss not below random")
	}
	if cmp.TraceL1 >= rnd.TraceL1 {
		t.Error("sequential trace L1 miss not below random")
	}
}
