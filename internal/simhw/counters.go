// Package simhw models the two CPUs of Table I closely enough to replay a
// measured workload (metering events from the real Go kernels) and produce
// the perf-style counters of the paper's Tables III and IV: IPC, per-level
// cache miss rates, dTLB misses, branch misses, and — through the cycle
// model — simulated wall-clock seconds per thread count.
//
// The model is analytical, not trace-driven: each function's accesses are
// characterized by a reused hot working set (partially shared between
// threads), touched-once streaming traffic, and an access pattern. Capacity
// relations between those footprints and the cache hierarchy produce the
// level-by-level miss flows; a contention model for the shared LLC and DRAM
// bandwidth produces the thread-scaling behavior. A small trace-driven
// set-associative simulator (trace.go) validates the analytical capacity
// model in tests and serves as the accuracy arm of the cache-model ablation.
package simhw

// Counters are perf-style aggregate hardware counters.
type Counters struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64 // L1D references
	L1Misses     uint64
	L2Refs       uint64
	L2Misses     uint64
	LLCRefs      uint64
	LLCMisses    uint64
	TLBRefs      uint64
	TLBMisses    uint64
	Branches     uint64
	BranchMisses uint64
	PageFaults   uint64
	DRAMBytes    uint64
}

// Add accumulates other into c.
func (c *Counters) Add(o Counters) {
	c.Instructions += o.Instructions
	c.Cycles += o.Cycles
	c.Loads += o.Loads
	c.L1Misses += o.L1Misses
	c.L2Refs += o.L2Refs
	c.L2Misses += o.L2Misses
	c.LLCRefs += o.LLCRefs
	c.LLCMisses += o.LLCMisses
	c.TLBRefs += o.TLBRefs
	c.TLBMisses += o.TLBMisses
	c.Branches += o.Branches
	c.BranchMisses += o.BranchMisses
	c.PageFaults += o.PageFaults
	c.DRAMBytes += o.DRAMBytes
}

func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// IPC returns instructions per cycle.
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// L1MissPct returns L1D misses per L1D reference, in percent (Table III
// "L1 Miss (%)").
func (c Counters) L1MissPct() float64 { return pct(c.L1Misses, c.Loads) }

// LLCMissPct returns LLC misses per LLC reference, in percent (Table III
// "LLC Miss (%)").
func (c Counters) LLCMissPct() float64 { return pct(c.LLCMisses, c.LLCRefs) }

// DTLBMissPct returns dTLB misses per load, in percent (Table III
// "dTLB Miss (%)"). Note the two vendors' counters measure different TLB
// levels; the machine parameterization (platform.CPU.TLBReachBytes)
// reflects that.
func (c Counters) DTLBMissPct() float64 { return pct(c.TLBMisses, c.TLBRefs) }

// BranchMissPct returns mispredictions per branch, in percent.
func (c Counters) BranchMissPct() float64 { return pct(c.BranchMisses, c.Branches) }

// CacheMissMPKI returns all-level cache misses (LLC misses, i.e. accesses
// leaving the cache hierarchy) per kilo-instruction — the Table III
// "Cache Miss" row.
func (c Counters) CacheMissMPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(c.LLCMisses) / float64(c.Instructions)
}
