package simhw

import (
	"afsysbench/internal/metering"
	"afsysbench/internal/rng"
)

// Trace-driven validation path. The analytical model in model.go trades
// accuracy for speed; this file provides a real set-associative, LRU,
// multi-level cache simulator plus a synthetic address-stream generator so
// tests (and the cache-model ablation bench) can check the analytical
// capacity behavior against a concrete simulation.

// Cache is one set-associative level with LRU replacement.
type Cache struct {
	sets       int
	ways       int
	lineShift  uint
	tags       []uint64 // sets*ways entries; 0 means empty
	stamps     []uint64
	tick       uint64
	Hits, Miss uint64
}

// NewCache builds a cache of the given total size, associativity, and line
// size (which must all be powers-of-two compatible; size must be divisible
// by ways*lineSize).
func NewCache(sizeBytes, ways, lineSize int) *Cache {
	sets := sizeBytes / (ways * lineSize)
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	return &Cache{
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		tags:      make([]uint64, sets*ways),
		stamps:    make([]uint64, sets*ways),
	}
}

// Access touches addr, returning true on hit and updating LRU state.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	line := addr >> c.lineShift
	set := int(line % uint64(c.sets))
	tag := line + 1 // +1 so that tag 0 means "empty"
	base := set * c.ways
	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.stamps[i] = c.tick
			c.Hits++
			return true
		}
		if c.stamps[i] < oldest {
			oldest = c.stamps[i]
			victim = i
		}
	}
	c.tags[victim] = tag
	c.stamps[victim] = c.tick
	c.Miss++
	return false
}

// Reset clears the hit/miss counters while keeping cache contents — used
// to measure steady-state rates after a warmup pass.
func (c *Cache) Reset() {
	c.Hits, c.Miss = 0, 0
}

// MissRate returns misses per access.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Miss
	if total == 0 {
		return 0
	}
	return float64(c.Miss) / float64(total)
}

// Hierarchy chains L1 -> L2 -> LLC: an access that misses one level
// propagates to the next.
type Hierarchy struct {
	L1, L2, LLC *Cache
}

// NewHierarchy builds a three-level hierarchy with typical associativities.
func NewHierarchy(l1, l2, llc int) *Hierarchy {
	return &Hierarchy{
		L1:  NewCache(l1, 8, cacheLine),
		L2:  NewCache(l2, 8, cacheLine),
		LLC: NewCache(llc, 16, cacheLine),
	}
}

// Reset clears all levels' counters (contents persist).
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.LLC.Reset()
}

// Access walks the hierarchy for addr. It returns the level that hit:
// 1, 2, 3, or 4 for memory.
func (h *Hierarchy) Access(addr uint64) int {
	if h.L1.Access(addr) {
		return 1
	}
	if h.L2.Access(addr) {
		return 2
	}
	if h.LLC.Access(addr) {
		return 3
	}
	return 4
}

// SyntheticTrace generates an address stream with the statistical structure
// of a FuncWork: n references cycling over a hot region of hotBytes with
// the given pattern, interleaved with touched-once streaming.
type SyntheticTrace struct {
	rng       *rng.Source
	hotBytes  uint64
	pattern   metering.Pattern
	streamPos uint64
	seqPos    uint64
	stride    uint64
}

// NewSyntheticTrace builds a generator. Streaming addresses live in a
// disjoint region above 1<<40.
func NewSyntheticTrace(seed uint64, hotBytes uint64, pattern metering.Pattern) *SyntheticTrace {
	return &SyntheticTrace{
		rng:      rng.New(seed),
		hotBytes: hotBytes,
		pattern:  pattern,
		stride:   192, // three lines, a typical DP row stride
	}
}

// NextHot returns the next hot-region address.
func (t *SyntheticTrace) NextHot() uint64 {
	if t.hotBytes == 0 {
		return 0
	}
	switch t.pattern {
	case metering.Sequential:
		t.seqPos = (t.seqPos + avgAccessBytes) % t.hotBytes
		return t.seqPos
	case metering.Strided:
		t.seqPos = (t.seqPos + t.stride) % t.hotBytes
		return t.seqPos
	default:
		return uint64(t.rng.Intn(int(t.hotBytes)))
	}
}

// NextStream returns the next touched-once streaming address.
func (t *SyntheticTrace) NextStream() uint64 {
	t.streamPos += cacheLine
	return 1<<40 + t.streamPos
}

// TraceMissRates replays n hot references over a hot set of hotBytes with
// the given pattern through a concrete hierarchy and returns the per-level
// miss fractions (relative to references arriving at each level). It is the
// validation counterpart of the analytical capacityMissFrac chain.
func TraceMissRates(seed uint64, hotBytes uint64, pattern metering.Pattern, n int, l1, l2, llc int) (l1Miss, l2Miss, llcMiss float64) {
	h := NewHierarchy(l1, l2, llc)
	tr := NewSyntheticTrace(seed, hotBytes, pattern)
	for i := 0; i < n; i++ {
		h.Access(tr.NextHot())
	}
	return h.L1.MissRate(), h.L2.MissRate(), h.LLC.MissRate()
}
