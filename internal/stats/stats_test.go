package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestStdDevAndCV(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single-element stddev should be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !approx(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := CV(xs); !approx(got, 2.0/5.0, 1e-12) {
		t.Errorf("CV = %v, want 0.4", got)
	}
	if CV([]float64{0, 0}) != 0 {
		t.Error("CV with zero mean should be 0")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Error("Min/Max wrong")
	}
	if got := Median(xs); got != 3 {
		t.Errorf("Median odd = %v, want 3", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestSpeedup(t *testing.T) {
	sp := Speedup([]float64{100, 50, 25, 30})
	want := []float64{1, 2, 4, 100.0 / 30}
	for i := range want {
		if !approx(sp[i], want[i], 1e-12) {
			t.Errorf("Speedup[%d] = %v, want %v", i, sp[i], want[i])
		}
	}
	if got := Speedup([]float64{0, 1}); got[0] != 0 || got[1] != 0 {
		t.Error("Speedup with zero baseline should be all zero")
	}
}

func TestEfficiency(t *testing.T) {
	eff, err := Efficiency([]int{1, 2, 4}, []float64{100, 50, 40})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 100.0 / 40 / 4}
	for i := range want {
		if !approx(eff[i], want[i], 1e-12) {
			t.Errorf("Efficiency[%d] = %v, want %v", i, eff[i], want[i])
		}
	}
	if _, err := Efficiency([]int{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPowerFitRecoversExponent(t *testing.T) {
	xs := []float64{100, 200, 400, 800}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3.5 * math.Pow(x, 2.7)
	}
	a, b, err := PowerFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a, 3.5, 1e-6) || !approx(b, 2.7, 1e-9) {
		t.Errorf("PowerFit = (%v, %v), want (3.5, 2.7)", a, b)
	}
}

func TestPowerFitErrors(t *testing.T) {
	if _, _, err := PowerFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := PowerFit([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("negative x accepted")
	}
	if _, _, err := PowerFit([]float64{2, 2}, []float64{1, 2}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a, 1, 1e-12) || !approx(b, 2, 1e-12) {
		t.Errorf("LinearFit = (%v, %v), want (1, 2)", a, b)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(g, 4, 1e-12) {
		t.Errorf("GeoMean = %v, want 4", g)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("zero value accepted")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty slice accepted")
	}
}

func TestQuickSpeedupFirstEntryIsOne(t *testing.T) {
	f := func(raw []float64) bool {
		times := make([]float64, 0, len(raw)+1)
		times = append(times, 10) // positive baseline
		for _, r := range raw {
			times = append(times, math.Abs(r)+0.1)
		}
		sp := Speedup(times)
		return approx(sp[0], 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCVNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			// Map into a bounded positive range to avoid float overflow.
			xs[i] = math.Mod(math.Abs(r), 1e6) + 1
		}
		if len(xs) == 0 {
			return true
		}
		return CV(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	xs := []float64{4, 1, 3, 2} // unsorted input; must not be mutated
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); !approx(got, 2.5, 1e-12) {
		t.Errorf("p50 = %v, want 2.5", got)
	}
	if got := Percentile(xs, 75); !approx(got, 3.25, 1e-12) {
		t.Errorf("p75 = %v, want 3.25", got)
	}
	if xs[0] != 4 || xs[3] != 2 {
		t.Error("input slice mutated")
	}
	// Clamping beyond the valid range.
	if Percentile(xs, -5) != 1 || Percentile(xs, 200) != 4 {
		t.Error("p outside [0,100] not clamped")
	}
	// Single element: every percentile is that element.
	if Percentile([]float64{7}, 99) != 7 {
		t.Error("single-element percentile")
	}
	// Percentiles are monotone in p.
	if err := quick.Check(func(raw []float64, p1, p2 float64) bool {
		var clean []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		lo, hi := math.Mod(math.Abs(p1), 100), math.Mod(math.Abs(p2), 100)
		if lo > hi {
			lo, hi = hi, lo
		}
		return Percentile(clean, lo) <= Percentile(clean, hi)
	}, nil); err != nil {
		t.Error(err)
	}
}
