// Package stats provides the small statistical helpers the benchmark suite
// uses when aggregating repeated runs: mean, standard deviation, coefficient
// of variation (the paper reports CV ≤ 5% for MSA and ≤ 1% for inference),
// speedup curves, and least-squares power-law fits (used by the memory
// estimator to model nhmmer's superlinear RNA footprint).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CV returns the coefficient of variation (stddev/mean), or 0 when the mean
// is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of middle two for even length).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Percentile returns the p-th percentile of xs (p in [0,100]) by linear
// interpolation between order statistics on a sorted copy — the serving
// layer's latency summary (p50/p95/p99). Empty input returns 0; p is
// clamped to the valid range.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Speedup converts a time-vs-threads series into speedup relative to the
// first entry: speedup[i] = times[0]/times[i]. A zero or negative time
// yields a 0 entry.
func Speedup(times []float64) []float64 {
	out := make([]float64, len(times))
	if len(times) == 0 || times[0] <= 0 {
		return out
	}
	for i, t := range times {
		if t > 0 {
			out[i] = times[0] / t
		}
	}
	return out
}

// Efficiency returns parallel efficiency speedup[i]/threads[i].
func Efficiency(threads []int, times []float64) ([]float64, error) {
	if len(threads) != len(times) {
		return nil, fmt.Errorf("stats: threads/times length mismatch %d vs %d", len(threads), len(times))
	}
	sp := Speedup(times)
	out := make([]float64, len(sp))
	for i := range sp {
		if threads[i] > 0 {
			out[i] = sp[i] / float64(threads[i])
		}
	}
	return out, nil
}

// PowerFit fits y = a * x^b by least squares in log space and returns
// (a, b). All inputs must be positive; it returns an error otherwise or when
// fewer than two points are supplied.
func PowerFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: PowerFit needs >=2 paired points, got %d/%d", len(xs), len(ys))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, fmt.Errorf("stats: PowerFit requires positive values (point %d)", i)
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: PowerFit degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = math.Exp((sy - b*sx) / n)
	return a, b, nil
}

// LinearFit fits y = a + b*x by ordinary least squares.
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: LinearFit needs >=2 paired points, got %d/%d", len(xs), len(ys))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: LinearFit degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b, nil
}

// GeoMean returns the geometric mean of positive xs; entries <= 0 are
// rejected with an error.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: GeoMean of empty slice")
	}
	var sum float64
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean requires positive values (index %d)", i)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}
