package pairformer

import (
	"math"
	"testing"

	"afsysbench/internal/rng"
)

func tinyConfig() Config {
	return Config{
		Blocks:    2,
		PairDim:   8,
		SingleDim: 16,
		Heads:     2,
		HeadDim:   4,
		TriHidden: 8,
		TransMult: 2,
	}
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Blocks != 48 {
		t.Errorf("AF3 Pairformer depth is 48, got %d", cfg.Blocks)
	}
	if cfg.PairDim != 128 || cfg.SingleDim != 384 {
		t.Error("AF3 representation widths wrong")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		{Blocks: -1, PairDim: 8, SingleDim: 8, Heads: 1, HeadDim: 1, TriHidden: 1, TransMult: 1},
		{Blocks: 1, PairDim: 0, SingleDim: 8, Heads: 1, HeadDim: 1, TriHidden: 1, TransMult: 1},
		{Blocks: 1, PairDim: 8, SingleDim: 8, Heads: 0, HeadDim: 1, TriHidden: 1, TransMult: 1},
		{Blocks: 1, PairDim: 8, SingleDim: 8, Heads: 1, HeadDim: 1, TriHidden: 0, TransMult: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestLayerKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	if TriangleAttention.String() != "triangle attention" {
		t.Error("triangle attention name wrong")
	}
}

func TestFlopsCubicDominance(t *testing.T) {
	cfg := DefaultConfig()
	// Doubling N must scale the triangle layers toward 8x (cubic); the
	// projection terms keep the ratio slightly below 8 at moderate N.
	for _, kind := range []LayerKind{TriangleMult, TriangleAttention} {
		r := cfg.LayerFlops(kind, 8192) / cfg.LayerFlops(kind, 4096)
		if r < 7 || r > 8.5 {
			t.Errorf("%v doubling ratio = %.2f, want ~8 (cubic)", kind, r)
		}
	}
	// Pair transition is quadratic.
	r := cfg.LayerFlops(PairTransition, 2048) / cfg.LayerFlops(PairTransition, 1024)
	if r < 3.9 || r > 4.1 {
		t.Errorf("transition doubling ratio = %.2f, want 4 (quadratic)", r)
	}
}

func TestTriangleAttentionDominatesAtPaperScale(t *testing.T) {
	cfg := DefaultConfig()
	for _, n := range []int{484, 857} {
		attn := cfg.LayerFlops(TriangleAttention, n)
		total := cfg.TotalFlops(n)
		if share := attn / total; share < 0.40 {
			t.Errorf("N=%d: triangle attention share %.2f, paper finds it dominant", n, share)
		}
		mult := cfg.LayerFlops(TriangleMult, n)
		if attn <= mult {
			t.Errorf("N=%d: attention (%.3g) must exceed mult update (%.3g)", n, attn, mult)
		}
		// Table VI ratio attn/mult ≈ 2.0 (8.14/4.03, 31.09/12.03).
		if ratio := attn / mult; ratio < 1.4 || ratio > 3.0 {
			t.Errorf("N=%d: attn/mult ratio %.2f, want ~2", n, ratio)
		}
	}
}

func TestLayerBytesAndKernelsPositive(t *testing.T) {
	cfg := DefaultConfig()
	for _, k := range Kinds() {
		if cfg.LayerBytes(k, 484) <= 0 {
			t.Errorf("%v bytes not positive", k)
		}
		if cfg.Kernels(k) <= 0 {
			t.Errorf("%v kernels not positive", k)
		}
	}
	if cfg.LayerFlops(LayerKind(99), 100) != 0 || cfg.LayerBytes(LayerKind(99), 100) != 0 {
		t.Error("unknown kind should cost nothing")
	}
}

func TestBlockApplyShapesAndFiniteness(t *testing.T) {
	cfg := tinyConfig()
	src := rng.New(1)
	blk, err := NewBlock(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	s := RandomState(cfg, 12, src.Split(9))
	if err := blk.Apply(s, nil); err != nil {
		t.Fatal(err)
	}
	if s.Pair.Shape[0] != 144 || s.Pair.Shape[1] != cfg.PairDim {
		t.Error("pair shape changed")
	}
	if s.Single.Shape[0] != 12 || s.Single.Shape[1] != cfg.SingleDim {
		t.Error("single shape changed")
	}
	for _, v := range s.Pair.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite pair value")
		}
	}
	for _, v := range s.Single.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite single value")
		}
	}
}

func TestBlockApplyChangesState(t *testing.T) {
	cfg := tinyConfig()
	src := rng.New(2)
	blk, _ := NewBlock(cfg, src)
	s := RandomState(cfg, 8, src.Split(9))
	before := s.Pair.Clone()
	if err := blk.Apply(s, nil); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range before.Data {
		if before.Data[i] != s.Pair.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("block with random weights left pair representation unchanged")
	}
}

func TestZeroWeightBlockPreservesPair(t *testing.T) {
	// All residual updates vanish with zero weights, so the pair
	// representation must be exactly preserved.
	cfg := tinyConfig()
	blk, err := NewBlock(cfg, nil) // nil source -> zero weights
	if err != nil {
		t.Fatal(err)
	}
	s := RandomState(cfg, 6, rng.New(3))
	before := s.Pair.Clone()
	if err := blk.Apply(s, nil); err != nil {
		t.Fatal(err)
	}
	for i := range before.Data {
		if before.Data[i] != s.Pair.Data[i] {
			t.Fatalf("pair changed at %d: %v -> %v", i, before.Data[i], s.Pair.Data[i])
		}
	}
}

func TestApplyDeterministic(t *testing.T) {
	cfg := tinyConfig()
	run := func() float32 {
		src := rng.New(7)
		blk, _ := NewBlock(cfg, src)
		s := RandomState(cfg, 10, src.Split(9))
		if err := blk.Apply(s, nil); err != nil {
			t.Fatal(err)
		}
		return s.Pair.Data[17]
	}
	if run() != run() {
		t.Error("block application not deterministic")
	}
}

func TestApplyShapeMismatchErrors(t *testing.T) {
	cfg := tinyConfig()
	blk, _ := NewBlock(cfg, rng.New(1))
	s := RandomState(cfg, 6, rng.New(2))
	s.N = 7 // lie about N
	if err := blk.Apply(s, nil); err == nil {
		t.Error("mismatched N accepted")
	}
}

func TestStackRuns(t *testing.T) {
	cfg := tinyConfig()
	src := rng.New(11)
	s := RandomState(cfg, 8, src.Split(1))
	if err := Stack(cfg, s, src, nil); err != nil {
		t.Fatal(err)
	}
	if v := s.Pair.MaxAbs(); math.IsNaN(float64(v)) || v == 0 {
		t.Errorf("stack output suspicious: maxabs=%v", v)
	}
}

func TestNewBlockRejectsInvalidConfig(t *testing.T) {
	if _, err := NewBlock(Config{}, rng.New(1)); err == nil {
		t.Error("invalid config accepted")
	}
}
