package pairformer

import (
	"math"
	"runtime"
	"testing"

	"afsysbench/internal/parallel"
	"afsysbench/internal/rng"
)

// stackWith runs a fresh deterministic Stack on a pool of the given worker
// count and returns the resulting pair and single tensors' raw data.
func stackWith(t *testing.T, workers int) ([]float32, []float32) {
	t.Helper()
	cfg := Config{
		Blocks: 2, PairDim: 8, SingleDim: 16, Heads: 2, HeadDim: 4,
		TriHidden: 8, TransMult: 2,
	}
	src := rng.New(42)
	s := RandomState(cfg, 17, src.Split(1))
	var p *parallel.Pool
	if workers > 1 {
		p = parallel.New(workers)
		defer p.Close()
	}
	if err := Stack(cfg, s, src.Split(2), p); err != nil {
		t.Fatal(err)
	}
	return s.Pair.Data, s.Single.Data
}

// TestStackBitwiseDeterministicAcrossWorkerCounts is the tentpole
// invariant: sharding only ever splits independent output slices, so the
// float32 results are bitwise identical at any worker count — including
// worker counts far above GOMAXPROCS.
func TestStackBitwiseDeterministicAcrossWorkerCounts(t *testing.T) {
	refPair, refSingle := stackWith(t, 1)
	counts := []int{2, 3, runtime.NumCPU(), 8}
	for _, w := range counts {
		if w < 2 {
			continue
		}
		pair, single := stackWith(t, w)
		for i := range refPair {
			if math.Float32bits(pair[i]) != math.Float32bits(refPair[i]) {
				t.Fatalf("workers=%d: pair[%d] = %x, serial %x",
					w, i, math.Float32bits(pair[i]), math.Float32bits(refPair[i]))
			}
		}
		for i := range refSingle {
			if math.Float32bits(single[i]) != math.Float32bits(refSingle[i]) {
				t.Fatalf("workers=%d: single[%d] = %x, serial %x",
					w, i, math.Float32bits(single[i]), math.Float32bits(refSingle[i]))
			}
		}
	}
}

// TestApplyReusesWorkspace asserts the steady-state allocation claim: after
// the first Apply warms the workspace pool, further Applies allocate near
// zero.
func TestApplyReusesWorkspace(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts only meaningful without -race")
	}
	cfg := Config{
		Blocks: 1, PairDim: 8, SingleDim: 16, Heads: 2, HeadDim: 4,
		TriHidden: 8, TransMult: 2,
	}
	src := rng.New(7)
	blk, err := NewBlock(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	s := RandomState(cfg, 12, src.Split(1))
	if err := blk.Apply(s, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := blk.Apply(s, nil); err != nil {
			t.Fatal(err)
		}
	})
	// A handful of incidental allocations (sync.Pool internals, a stray
	// closure) is fine; per-layer tensor allocation is not (a single
	// scratch tensor here would already blow this bound).
	if allocs > 8 {
		t.Errorf("steady-state Apply allocates %.0f objects per run, want <= 8", allocs)
	}
}
