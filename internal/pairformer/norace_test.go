//go:build !race

package pairformer

const raceEnabled = false
