package pairformer

import (
	"testing"

	"afsysbench/internal/parallel"
	"afsysbench/internal/rng"
)

// benchTriangleAttention measures the dominant O(N³) kernel at N=128 with
// the reduced default head geometry.
func benchTriangleAttention(b *testing.B, p *parallel.Pool) {
	cfg := Config{
		Blocks: 1, PairDim: 16, SingleDim: 32, Heads: 2, HeadDim: 8,
		TriHidden: 16, TransMult: 2,
	}
	src := rng.New(3)
	blk, err := NewBlock(cfg, src)
	if err != nil {
		b.Fatal(err)
	}
	const n = 128
	s := RandomState(cfg, n, src.Split(1))
	ws := takeWorkspace(cfg, n, p.Workers())
	defer releaseWorkspace(ws)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := blk.triangleAttention(s, true, ws, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriangleAttention(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchTriangleAttention(b, nil) })
	b.Run("parallel", func(b *testing.B) {
		p := parallel.Default()
		benchTriangleAttention(b, p)
	})
}

// BenchmarkBlockApply measures a full block (all six layers) at a smaller
// N, tracking the steady-state allocation claim end to end.
func BenchmarkBlockApply(b *testing.B) {
	cfg := Config{
		Blocks: 1, PairDim: 16, SingleDim: 32, Heads: 2, HeadDim: 8,
		TriHidden: 16, TransMult: 2,
	}
	src := rng.New(3)
	blk, err := NewBlock(cfg, src)
	if err != nil {
		b.Fatal(err)
	}
	s := RandomState(cfg, 64, src.Split(1))
	run := func(b *testing.B, p *parallel.Pool) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := blk.Apply(s, p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, nil) })
	b.Run("parallel", func(b *testing.B) { run(b, parallel.Default()) })
}
