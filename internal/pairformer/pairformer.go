// Package pairformer implements AlphaFold3's Pairformer stack — the module
// that replaced AF2's Evoformer (paper Section II-B): triangle
// multiplicative updates (outgoing/incoming), triangle self-attention
// (starting/ending node), pair transitions, and single-representation
// attention with pair bias. The math runs for real on float32 tensors at
// any size; per-layer analytical FLOP/byte formulas extrapolate the cost to
// paper-scale sequence lengths for the GPU timing model.
package pairformer

import (
	"fmt"
	"math"

	"afsysbench/internal/parallel"
	"afsysbench/internal/rng"
	"afsysbench/internal/tensor"
)

// Config sizes the stack. Defaults mirror AF3's published architecture.
type Config struct {
	Blocks    int // depth of the stack (48 in AF3)
	PairDim   int // c_z, pair representation channels
	SingleDim int // c_s, single representation channels
	Heads     int // triangle attention heads
	HeadDim   int // per-head dimension
	TriHidden int // triangle multiplicative update hidden channels
	TransMult int // transition expansion factor
}

// DefaultConfig returns AF3-scale dimensions.
func DefaultConfig() Config {
	return Config{
		Blocks:    48,
		PairDim:   128,
		SingleDim: 384,
		Heads:     4,
		HeadDim:   32,
		TriHidden: 128,
		TransMult: 4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Blocks <= 0:
		return fmt.Errorf("pairformer: Blocks must be positive, got %d", c.Blocks)
	case c.PairDim <= 0 || c.SingleDim <= 0:
		return fmt.Errorf("pairformer: dims must be positive (pair %d, single %d)", c.PairDim, c.SingleDim)
	case c.Heads <= 0 || c.HeadDim <= 0:
		return fmt.Errorf("pairformer: heads/headDim must be positive (%d, %d)", c.Heads, c.HeadDim)
	case c.TriHidden <= 0 || c.TransMult <= 0:
		return fmt.Errorf("pairformer: hidden sizes must be positive (%d, %d)", c.TriHidden, c.TransMult)
	}
	return nil
}

// LayerKind enumerates the profiled layer classes of Figure 9 / Table VI.
type LayerKind int

const (
	TriangleMult LayerKind = iota
	TriangleAttention
	PairTransition
	SingleUpdate // the "Others" block of Figure 1
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case TriangleMult:
		return "triangle mult. update"
	case TriangleAttention:
		return "triangle attention"
	case PairTransition:
		return "pair transition"
	case SingleUpdate:
		return "single update"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// Kinds lists all layer classes in stack order.
func Kinds() []LayerKind {
	return []LayerKind{TriangleMult, TriangleAttention, PairTransition, SingleUpdate}
}

// LayerFlops returns the FLOPs of one layer class across the whole stack
// (all Blocks) at sequence length n. The triangle layers carry the O(N³)
// terms the paper identifies as the dominant hotspots.
func (c Config) LayerFlops(kind LayerKind, n int) float64 {
	nf := float64(n)
	b := float64(c.Blocks)
	d := float64(c.PairDim)
	ds := float64(c.SingleDim)
	hd := float64(c.Heads * c.HeadDim)
	ch := float64(c.TriHidden)
	switch kind {
	case TriangleMult:
		// Both edge directions: projections (4 of them, N²·d·ch) plus the
		// cubic combine Σ_k a_ik ⊙ b_jk and the output projection.
		return b * (4*nf*nf*nf*ch + 2*(4*nf*nf*d*ch+2*nf*nf*ch*d))
	case TriangleAttention:
		// Starting + ending node: QKV/bias/out projections (N² terms) and
		// the cubic logits + attention-weighted sums.
		proj := 2 * (8 * nf * nf * d * hd)
		cubic := 2 * (2*nf*nf*nf*hd + 2*nf*nf*nf*hd + 3*nf*nf*nf*float64(c.Heads))
		return b * (proj + cubic)
	case PairTransition:
		return b * (2 * 2 * nf * nf * d * d * float64(c.TransMult))
	case SingleUpdate:
		// Single attention with pair bias plus single transition.
		attn := 8*nf*ds*ds + 4*nf*nf*ds + nf*nf*float64(c.Heads)
		trans := 4 * nf * ds * ds * float64(c.TransMult)
		return b * (attn + trans)
	default:
		return 0
	}
}

// LayerBytes returns the memory traffic of one layer class across the stack
// at sequence length n. Triangle attention materializes N³ logits (AF3 does
// not use flash-style attention inside the triangle kernels), which is why
// the paper finds it memory-hungry.
func (c Config) LayerBytes(kind LayerKind, n int) float64 {
	nf := float64(n)
	b := float64(c.Blocks)
	d := float64(c.PairDim)
	ds := float64(c.SingleDim)
	const f32 = 4
	switch kind {
	case TriangleMult:
		return b * (6 * nf * nf * d * f32) // read z twice per direction, write once
	case TriangleAttention:
		// The N³ logit tensor streams through HBM once per direction
		// (softmax fused into the dot), plus pair I/O.
		return b * (2*nf*nf*nf*float64(c.Heads)*f32 + 6*nf*nf*d*f32)
	case PairTransition:
		return b * (2 * nf * nf * d * (1 + float64(c.TransMult)) * f32)
	case SingleUpdate:
		return b * (6*nf*ds*f32 + 2*nf*nf*float64(c.Heads)*f32)
	default:
		return 0
	}
}

// Kernels returns how many GPU kernels one layer class launches per block —
// the fixed-overhead term of the GPU time model.
func (c Config) Kernels(kind LayerKind) int {
	switch kind {
	case TriangleMult:
		return 14
	case TriangleAttention:
		return 18
	case PairTransition:
		return 6
	case SingleUpdate:
		return 12
	default:
		return 0
	}
}

// TotalFlops sums all layer classes at length n.
func (c Config) TotalFlops(n int) float64 {
	var total float64
	for _, k := range Kinds() {
		total += c.LayerFlops(k, n)
	}
	return total
}

// Block holds one Pairformer block's weights. Weights are random (we study
// performance, not accuracy), drawn deterministically from a seed.
type Block struct {
	cfg Config

	// Triangle multiplicative update projections (shared across the two
	// directions for compactness; direction changes the contraction axis).
	triA, triB, triOut, triGate *tensor.Tensor

	// Triangle attention projections.
	attnQ, attnK, attnV, attnBias, attnOut *tensor.Tensor

	// Pair transition MLP.
	trans1, trans2 *tensor.Tensor

	// Single update projections.
	singleQ, singleK, singleV, singleOut *tensor.Tensor
}

// NewBlock builds a block with unit-scaled random weights.
func NewBlock(cfg Config, src *rng.Source) (*Block, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &Block{cfg: cfg}
	d, ch := cfg.PairDim, cfg.TriHidden
	hd := cfg.Heads * cfg.HeadDim
	ds := cfg.SingleDim
	b.triA = randWeights(src, d, ch)
	b.triB = randWeights(src, d, ch)
	b.triOut = randWeights(src, ch, d)
	b.triGate = randWeights(src, d, ch)
	b.attnQ = randWeights(src, d, hd)
	b.attnK = randWeights(src, d, hd)
	b.attnV = randWeights(src, d, hd)
	b.attnBias = randWeights(src, d, cfg.Heads)
	b.attnOut = randWeights(src, hd, d)
	b.trans1 = randWeights(src, d, d*cfg.TransMult)
	b.trans2 = randWeights(src, d*cfg.TransMult, d)
	b.singleQ = randWeights(src, ds, ds)
	b.singleK = randWeights(src, ds, ds)
	b.singleV = randWeights(src, ds, ds)
	b.singleOut = randWeights(src, ds, ds)
	return b, nil
}

func randWeights(src *rng.Source, rows, cols int) *tensor.Tensor {
	w := tensor.New(rows, cols)
	scale := 1 / math.Sqrt(float64(rows))
	if src != nil {
		for i := range w.Data {
			w.Data[i] = float32(src.NormFloat64() * scale)
		}
	}
	return w
}

// State carries the two representations through the stack. Pair is (N*N)×d
// row-major over (i,j); Single is N×ds.
type State struct {
	N      int
	Pair   *tensor.Tensor // shape (N*N, PairDim)
	Single *tensor.Tensor // shape (N, SingleDim)
}

// NewState builds zeroed representations for n tokens.
func NewState(cfg Config, n int) *State {
	return &State{
		N:      n,
		Pair:   tensor.New(n*n, cfg.PairDim),
		Single: tensor.New(n, cfg.SingleDim),
	}
}

// RandomState builds representations with unit-normal entries.
func RandomState(cfg Config, n int, src *rng.Source) *State {
	s := NewState(cfg, n)
	for i := range s.Pair.Data {
		s.Pair.Data[i] = float32(src.NormFloat64())
	}
	for i := range s.Single.Data {
		s.Single.Data[i] = float32(src.NormFloat64())
	}
	return s
}

// pairAt returns the channel vector of pair element (i,j).
func (s *State) pairAt(i, j int) []float32 { return s.Pair.Row(i*s.N + j) }

// Apply runs the block over the state in place: triangle multiplicative
// update (outgoing then incoming), triangle attention (starting then
// ending), pair transition, single update. All layers are residual.
//
// The pool shards every kernel over independent output slices, so results
// are bitwise identical at any worker count; a nil pool runs serially.
// Scratch tensors come from a shared sync.Pool, so steady-state Apply
// calls allocate (almost) nothing.
func (b *Block) Apply(s *State, p *parallel.Pool) error {
	if s.Pair.Shape[0] != s.N*s.N || s.Pair.Shape[1] != b.cfg.PairDim {
		return fmt.Errorf("pairformer: pair shape %v does not match N=%d, d=%d", s.Pair.Shape, s.N, b.cfg.PairDim)
	}
	if s.Single.Shape[0] != s.N || s.Single.Shape[1] != b.cfg.SingleDim {
		return fmt.Errorf("pairformer: single shape %v does not match N=%d, ds=%d", s.Single.Shape, s.N, b.cfg.SingleDim)
	}
	ws := takeWorkspace(b.cfg, s.N, p.Workers())
	defer releaseWorkspace(ws)
	if err := b.triangleMult(s, true, ws, p); err != nil {
		return err
	}
	if err := b.triangleMult(s, false, ws, p); err != nil {
		return err
	}
	if err := b.triangleAttention(s, true, ws, p); err != nil {
		return err
	}
	if err := b.triangleAttention(s, false, ws, p); err != nil {
		return err
	}
	if err := b.pairTransition(s, ws, p); err != nil {
		return err
	}
	return b.singleUpdate(s, ws, p)
}

// triangleMult implements z_ij += Out( gate ⊙ Σ_k a_ik ⊙ b_jk ) for the
// outgoing direction (incoming contracts over k on the first index:
// Σ_k a_ki ⊙ b_kj). The cubic combine is sharded over (i,j) pair rows:
// each output row's k-reduction stays within one shard.
func (b *Block) triangleMult(s *State, outgoing bool, ws *workspace, p *parallel.Pool) error {
	n, ch := s.N, b.cfg.TriHidden
	// Project the whole pair tensor once: projA, projB are (N*N)×ch.
	if err := tensor.MatMulInto(ws.projA, s.Pair, b.triA, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.projB, s.Pair, b.triB, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.gate, s.Pair, b.triGate, p); err != nil {
		return err
	}
	ws.gate.SigmoidWith(p)

	a, bp, acc := ws.projA, ws.projB, ws.acc
	p.Run(n*n, func(_, lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			i, j := idx/n, idx%n
			out := acc.Row(idx)
			for c := range out {
				out[c] = 0
			}
			for k := 0; k < n; k++ {
				var ra, rb []float32
				if outgoing {
					ra = a.Row(i*n + k)
					rb = bp.Row(j*n + k)
				} else {
					ra = a.Row(k*n + i)
					rb = bp.Row(k*n + j)
				}
				for cidx := 0; cidx < ch; cidx++ {
					out[cidx] += ra[cidx] * rb[cidx]
				}
			}
		}
	})
	// Normalize by N to keep magnitudes bounded, gate, project, residual.
	acc.ScaleWith(1/float32(n), p)
	if err := tensor.MulAssign(acc, ws.gate, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.pairUpd, acc, b.triOut, p); err != nil {
		return err
	}
	return tensor.AddAssign(s.Pair, ws.pairUpd, p)
}

// triangleAttention runs per-(i) rows (starting node) or per-(j) columns
// (ending node) attention over intermediates k, with the third triangle
// edge contributing the attention bias. Work is sharded over (head, i)
// units; each unit owns its softmax and writes a disjoint (row, channel)
// slice of the context tensor.
func (b *Block) triangleAttention(s *State, starting bool, ws *workspace, p *parallel.Pool) error {
	n := s.N
	h, hd := b.cfg.Heads, b.cfg.HeadDim
	if err := tensor.MatMulInto(ws.q, s.Pair, b.attnQ, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.k, s.Pair, b.attnK, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.v, s.Pair, b.attnV, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.bias, s.Pair, b.attnBias, p); err != nil { // (N*N)×h
		return err
	}
	q, k, v, bias, upd := ws.q, ws.k, ws.v, ws.bias, ws.ctx
	upd.ZeroWith(p)
	scale := float32(1 / math.Sqrt(float64(hd)))

	p.Run(h*n, func(shard, lo, hi int) {
		logits := ws.logits[shard] // N×N scratch, exclusive to this shard
		for u := lo; u < hi; u++ {
			head, i := u/n, u%n
			off := head * hd
			// For starting node: queries are (i,j), keys/values (i,k),
			// bias from edge (j,k). Ending node mirrors with column focus:
			// queries (i,j) attend over (k,j) with bias (k,i).
			for j := 0; j < n; j++ {
				var qRow []float32
				if starting {
					qRow = q.Row(i*n + j)
				} else {
					qRow = q.Row(j*n + i)
				}
				lrow := logits.Row(j)
				for kk := 0; kk < n; kk++ {
					var kRow []float32
					var bv float32
					if starting {
						kRow = k.Row(i*n + kk)
						bv = bias.Row(j*n + kk)[head]
					} else {
						kRow = k.Row(kk*n + i)
						bv = bias.Row(kk*n + j)[head]
					}
					var dot float32
					for c := 0; c < hd; c++ {
						dot += qRow[off+c] * kRow[off+c]
					}
					lrow[kk] = dot*scale + bv
				}
			}
			_ = logits.SoftmaxRows() // always 2-d; cannot fail
			for j := 0; j < n; j++ {
				var dst []float32
				if starting {
					dst = upd.Row(i*n + j)
				} else {
					dst = upd.Row(j*n + i)
				}
				lrow := logits.Row(j)
				for kk := 0; kk < n; kk++ {
					w := lrow[kk]
					if w == 0 {
						continue
					}
					var vRow []float32
					if starting {
						vRow = v.Row(i*n + kk)
					} else {
						vRow = v.Row(kk*n + i)
					}
					for c := 0; c < hd; c++ {
						dst[off+c] += w * vRow[off+c]
					}
				}
			}
		}
	})
	if err := tensor.MatMulInto(ws.pairUpd, upd, b.attnOut, p); err != nil {
		return err
	}
	return tensor.AddAssign(s.Pair, ws.pairUpd, p)
}

// pairTransition applies the residual 2-layer MLP to every pair element.
func (b *Block) pairTransition(s *State, ws *workspace, p *parallel.Pool) error {
	if err := tensor.MatMulInto(ws.hidden, s.Pair, b.trans1, p); err != nil {
		return err
	}
	ws.hidden.ReLUWith(p)
	if err := tensor.MatMulInto(ws.pairUpd, ws.hidden, b.trans2, p); err != nil {
		return err
	}
	return tensor.AddAssign(s.Pair, ws.pairUpd, p)
}

// singleUpdate refreshes the single representation with self-attention
// biased by the pair representation's first head channel, then a residual
// add (the "Others" block in the paper's Figure 1).
func (b *Block) singleUpdate(s *State, ws *workspace, p *parallel.Pool) error {
	n, ds := s.N, b.cfg.SingleDim
	if err := tensor.MatMulInto(ws.sq, s.Single, b.singleQ, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.sk, s.Single, b.singleK, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.sv, s.Single, b.singleV, p); err != nil {
		return err
	}
	if err := tensor.Transpose2DInto(ws.skt, ws.sk, p); err != nil {
		return err
	}
	logits := ws.slogits
	if err := tensor.MatMulInto(logits, ws.sq, ws.skt, p); err != nil {
		return err
	}
	logits.ScaleWith(float32(1/math.Sqrt(float64(ds))), p)
	// Pair bias: channel 0 of z_ij.
	p.Run(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := logits.Row(i)
			for j := 0; j < n; j++ {
				row[j] += s.pairAt(i, j)[0]
			}
		}
	})
	if err := logits.SoftmaxRowsWith(p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.sattn, logits, ws.sv, p); err != nil {
		return err
	}
	if err := tensor.MatMulInto(ws.supd, ws.sattn, b.singleOut, p); err != nil {
		return err
	}
	if err := tensor.AddAssign(s.Single, ws.supd, p); err != nil {
		return err
	}
	return s.Single.LayerNormRowsWith(p)
}

// Stack runs nBlocks blocks (each with independent weights drawn from src)
// over the state, returning an error on shape problems. The pool governs
// the compute parallelism of every block (nil = serial); the workspace
// sync.Pool keeps the whole stack allocation-free past the first block.
func Stack(cfg Config, s *State, src *rng.Source, p *parallel.Pool) error {
	for i := 0; i < cfg.Blocks; i++ {
		blk, err := NewBlock(cfg, src.Split(uint64(i)))
		if err != nil {
			return err
		}
		if err := blk.Apply(s, p); err != nil {
			return err
		}
	}
	return nil
}
