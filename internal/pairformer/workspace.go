package pairformer

import (
	"sync"

	"afsysbench/internal/tensor"
)

// workspace holds every scratch tensor one Block.Apply needs, so the
// steady state of a Stack run (and of the diffusion trunk it feeds)
// performs no per-layer allocations: the same buffers cycle through a
// sync.Pool. Buffers are sized by (Config, N, shards); a mismatched
// workspace is dropped and rebuilt.
type workspace struct {
	cfg    Config
	n      int
	shards int

	// Triangle multiplicative update scratch.
	projA, projB, gate, acc *tensor.Tensor // (N²)×TriHidden
	// Triangle attention scratch.
	q, k, v *tensor.Tensor   // (N²)×(Heads·HeadDim)
	bias    *tensor.Tensor   // (N²)×Heads
	ctx     *tensor.Tensor   // (N²)×(Heads·HeadDim) attention output
	logits  []*tensor.Tensor // per-shard N×N logit scratch
	// Pair transition scratch.
	hidden *tensor.Tensor // (N²)×(PairDim·TransMult)
	// Shared (N²)×PairDim residual-update buffer.
	pairUpd *tensor.Tensor
	// Single update scratch.
	sq, sk, sv, sattn, supd *tensor.Tensor // N×SingleDim
	skt                     *tensor.Tensor // SingleDim×N
	slogits                 *tensor.Tensor // N×N
}

func newWorkspace(cfg Config, n, shards int) *workspace {
	nn := n * n
	hd := cfg.Heads * cfg.HeadDim
	ws := &workspace{
		cfg:    cfg,
		n:      n,
		shards: shards,
		projA:  tensor.New(nn, cfg.TriHidden),
		projB:  tensor.New(nn, cfg.TriHidden),
		gate:   tensor.New(nn, cfg.TriHidden),
		acc:    tensor.New(nn, cfg.TriHidden),
		q:      tensor.New(nn, hd),
		k:      tensor.New(nn, hd),
		v:      tensor.New(nn, hd),
		bias:   tensor.New(nn, cfg.Heads),
		ctx:    tensor.New(nn, hd),
		hidden: tensor.New(nn, cfg.PairDim*cfg.TransMult),

		pairUpd: tensor.New(nn, cfg.PairDim),
		sq:      tensor.New(n, cfg.SingleDim),
		sk:      tensor.New(n, cfg.SingleDim),
		sv:      tensor.New(n, cfg.SingleDim),
		sattn:   tensor.New(n, cfg.SingleDim),
		supd:    tensor.New(n, cfg.SingleDim),
		skt:     tensor.New(cfg.SingleDim, n),
		slogits: tensor.New(n, n),
	}
	ws.logits = make([]*tensor.Tensor, shards)
	for i := range ws.logits {
		ws.logits[i] = tensor.New(n, n)
	}
	return ws
}

func (ws *workspace) fits(cfg Config, n, shards int) bool {
	return ws.cfg == cfg && ws.n == n && ws.shards >= shards
}

var wsPool sync.Pool

// takeWorkspace returns a workspace sized for (cfg, n) with per-shard
// scratch for at least `shards` concurrent shards, reusing a pooled one
// when its shape matches.
func takeWorkspace(cfg Config, n, shards int) *workspace {
	if ws, ok := wsPool.Get().(*workspace); ok {
		if ws.fits(cfg, n, shards) {
			return ws
		}
	}
	return newWorkspace(cfg, n, shards)
}

func releaseWorkspace(ws *workspace) { wsPool.Put(ws) }
