// Pool-aware kernels: every hot-path operation has an Into/With form that
// writes into caller-owned storage and shards its outer loop over a
// parallel.Pool. Sharding is always over independent output rows or
// elements — never across a reduction — so results are bitwise identical
// to the serial kernels at any worker count (the determinism rule the
// Pairformer/diffusion golden tests depend on). A nil pool runs inline,
// which is also the serial baseline the benchmarks compare against.
//
// Each kernel's loop body lives in a named range helper; the serial path
// calls it directly so no closure is allocated (a func literal handed to
// Pool.Run always escapes), keeping steady-state serial execution
// allocation-free.
package tensor

import (
	"fmt"

	"afsysbench/internal/parallel"
)

// Inner-loop blocking for MatMulInto: one kC×jC tile of b stays
// cache-resident while a shard streams its output rows through it.
const (
	matmulKC = 64
	matmulJC = 512
)

// MatMulInto computes a (m×k) · b (k×n) into dst (m×n), sharding output
// rows over p. dst may be a reused scratch tensor; it is overwritten, and
// must not alias a or b.
func MatMulInto(dst, a, b *Tensor, p *parallel.Pool) error {
	if a.Dims() != 2 || b.Dims() != 2 {
		return fmt.Errorf("tensor: MatMul needs 2-d operands, got %v x %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return fmt.Errorf("tensor: MatMul inner dims %d vs %d", k, k2)
	}
	if dst.Dims() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		return fmt.Errorf("tensor: MatMul dst shape %v, want [%d %d]", dst.Shape, m, n)
	}
	if p.Serial() {
		matmulRows(dst, a, b, 0, m)
		return nil
	}
	p.Run(m, func(_, lo, hi int) { matmulRows(dst, a, b, lo, hi) })
	return nil
}

func matmulRows(dst, a, b *Tensor, lo, hi int) {
	k, n := a.Shape[1], b.Shape[1]
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := dst.Data[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
		for kb := 0; kb < k; kb += matmulKC {
			kend := min(kb+matmulKC, k)
			for jb := 0; jb < n; jb += matmulJC {
				jend := min(jb+matmulJC, n)
				ob := orow[jb:jend]
				for kk := kb; kk < kend; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := b.Data[kk*n+jb : kk*n+jend]
					for j, bv := range brow {
						ob[j] += av * bv
					}
				}
			}
		}
	}
}

// AddAssign adds src into dst elementwise (dst += src), sharded over p.
func AddAssign(dst, src *Tensor, p *parallel.Pool) error {
	if !SameShape(dst, src) {
		return fmt.Errorf("tensor: AddAssign shape mismatch %v vs %v", dst.Shape, src.Shape)
	}
	d, s := dst.Data, src.Data
	if p.Serial() {
		addSpan(d, s, 0, len(d))
		return nil
	}
	p.Run(len(d), func(_, lo, hi int) { addSpan(d, s, lo, hi) })
	return nil
}

func addSpan(d, s []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		d[i] += s[i]
	}
}

// MulAssign multiplies dst by src elementwise (dst ⊙= src), sharded over p.
func MulAssign(dst, src *Tensor, p *parallel.Pool) error {
	if !SameShape(dst, src) {
		return fmt.Errorf("tensor: MulAssign shape mismatch %v vs %v", dst.Shape, src.Shape)
	}
	d, s := dst.Data, src.Data
	if p.Serial() {
		mulSpan(d, s, 0, len(d))
		return nil
	}
	p.Run(len(d), func(_, lo, hi int) { mulSpan(d, s, lo, hi) })
	return nil
}

func mulSpan(d, s []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		d[i] *= s[i]
	}
}

// ScaleWith multiplies in place by s, sharded over p, and returns t.
func (t *Tensor) ScaleWith(s float32, p *parallel.Pool) *Tensor {
	d := t.Data
	if p.Serial() {
		scaleSpan(d, s)
		return t
	}
	p.Run(len(d), func(_, lo, hi int) { scaleSpan(d[lo:hi], s) })
	return t
}

func scaleSpan(d []float32, s float32) {
	for i := range d {
		d[i] *= s
	}
}

// SigmoidWith applies the logistic function in place, sharded over p.
func (t *Tensor) SigmoidWith(p *parallel.Pool) *Tensor {
	d := t.Data
	if p.Serial() {
		sigmoidSpan(d)
		return t
	}
	p.Run(len(d), func(_, lo, hi int) { sigmoidSpan(d[lo:hi]) })
	return t
}

// ReLUWith applies max(0,x) in place, sharded over p.
func (t *Tensor) ReLUWith(p *parallel.Pool) *Tensor {
	d := t.Data
	if p.Serial() {
		reluSpan(d)
		return t
	}
	p.Run(len(d), func(_, lo, hi int) { reluSpan(d[lo:hi]) })
	return t
}

func reluSpan(d []float32) {
	for i := range d {
		if d[i] < 0 {
			d[i] = 0
		}
	}
}

// ZeroWith clears every element, sharded over p, and returns t.
func (t *Tensor) ZeroWith(p *parallel.Pool) *Tensor {
	d := t.Data
	if p.Serial() {
		zeroSpan(d)
		return t
	}
	p.Run(len(d), func(_, lo, hi int) { zeroSpan(d[lo:hi]) })
	return t
}

func zeroSpan(d []float32) {
	for i := range d {
		d[i] = 0
	}
}

// SoftmaxRowsWith applies the row softmax of SoftmaxRows with rows sharded
// over p (each row's reduction stays inside one shard).
func (t *Tensor) SoftmaxRowsWith(p *parallel.Pool) error {
	if t.Dims() != 2 {
		return fmt.Errorf("tensor: SoftmaxRows needs 2-d, got %v", t.Shape)
	}
	if p.Serial() {
		softmaxRows(t, 0, t.Shape[0])
		return nil
	}
	p.Run(t.Shape[0], func(_, lo, hi int) { softmaxRows(t, lo, hi) })
	return nil
}

func softmaxRows(t *Tensor, lo, hi int) {
	n := t.Shape[1]
	for i := lo; i < hi; i++ {
		softmaxRow(t.Data[i*n : (i+1)*n])
	}
}

// LayerNormRowsWith applies the row normalization of LayerNormRows with
// rows sharded over p.
func (t *Tensor) LayerNormRowsWith(p *parallel.Pool) error {
	if t.Dims() != 2 {
		return fmt.Errorf("tensor: LayerNormRows needs 2-d, got %v", t.Shape)
	}
	if p.Serial() {
		layerNormRows(t, 0, t.Shape[0])
		return nil
	}
	p.Run(t.Shape[0], func(_, lo, hi int) { layerNormRows(t, lo, hi) })
	return nil
}

func layerNormRows(t *Tensor, lo, hi int) {
	n := t.Shape[1]
	for i := lo; i < hi; i++ {
		layerNormRow(t.Data[i*n : (i+1)*n])
	}
}

// Transpose2DInto writes the transpose of a (m×n) into dst (n×m),
// sharding the output rows over p.
func Transpose2DInto(dst, a *Tensor, p *parallel.Pool) error {
	if a.Dims() != 2 {
		return fmt.Errorf("tensor: Transpose2D needs 2-d, got %v", a.Shape)
	}
	m, n := a.Shape[0], a.Shape[1]
	if dst.Dims() != 2 || dst.Shape[0] != n || dst.Shape[1] != m {
		return fmt.Errorf("tensor: Transpose2D dst shape %v, want [%d %d]", dst.Shape, n, m)
	}
	if p.Serial() {
		transposeRows(dst, a, 0, n)
		return nil
	}
	p.Run(n, func(_, lo, hi int) { transposeRows(dst, a, lo, hi) })
	return nil
}

func transposeRows(dst, a *Tensor, lo, hi int) {
	m, n := a.Shape[0], a.Shape[1]
	for j := lo; j < hi; j++ {
		drow := dst.Data[j*m : (j+1)*m]
		for i := 0; i < m; i++ {
			drow[i] = a.Data[i*n+j]
		}
	}
}
