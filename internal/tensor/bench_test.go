package tensor

import (
	"testing"

	"afsysbench/internal/parallel"
)

// benchMatMul exercises the pairformer-shaped product (N²×d)·(d×d) at
// N=128 — the hot shape of a triangle-layer projection.
func benchMatMul(b *testing.B, p *parallel.Pool) {
	const n, d = 128, 32
	a := New(n*n, d)
	w := New(d, d)
	for i := range a.Data {
		a.Data[i] = float32(i%17) * 0.25
	}
	for i := range w.Data {
		w.Data[i] = float32(i%13) * 0.125
	}
	dst := New(n*n, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulInto(dst, a, w, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchMatMul(b, nil) })
	b.Run("parallel", func(b *testing.B) {
		p := parallel.Default()
		benchMatMul(b, p)
	})
}
