package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"afsysbench/internal/rng"
)

func randTensor(seed uint64, shape ...int) *Tensor {
	r := rng.New(seed)
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64())
	}
	return t
}

func TestNewAndIndexing(t *testing.T) {
	a := New(2, 3)
	if a.Len() != 6 || a.Dims() != 2 {
		t.Fatal("shape accounting wrong")
	}
	a.Set(5, 1, 2)
	if a.At(1, 2) != 5 {
		t.Error("At/Set roundtrip failed")
	}
	if a.At(0, 0) != 0 {
		t.Error("zero init failed")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(2, 0)
}

func TestIndexPanics(t *testing.T) {
	a := New(2, 2)
	for _, fn := range []func(){
		func() { a.At(2, 0) },
		func() { a.At(0) },
		func() { a.At(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad index did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromData(t *testing.T) {
	a, err := FromData([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != 3 {
		t.Error("row-major layout wrong")
	}
	if _, err := FromData([]float32{1}, 2, 2); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMatMulKnown(t *testing.T) {
	a, _ := FromData([]float32{1, 2, 3, 4}, 2, 2)
	b, _ := FromData([]float32{5, 6, 7, 8}, 2, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulErrors(t *testing.T) {
	if _, err := MatMul(New(2, 3), New(2, 3)); err == nil {
		t.Error("inner mismatch accepted")
	}
	if _, err := MatMul(New(2), New(2, 2)); err == nil {
		t.Error("1-d operand accepted")
	}
}

func TestMatMulIdentity(t *testing.T) {
	a := randTensor(1, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	c, err := MatMul(a, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Abs(float64(c.Data[i]-a.Data[i])) > 1e-6 {
			t.Fatalf("A*I != A at %d", i)
		}
	}
}

func TestMatMulFlops(t *testing.T) {
	if MatMulFlops(2, 3, 4) != 48 {
		t.Error("flop formula wrong")
	}
}

func TestAddMul(t *testing.T) {
	a, _ := FromData([]float32{1, 2}, 2)
	b, _ := FromData([]float32{3, 4}, 2)
	s, err := Add(a, b)
	if err != nil || s.Data[0] != 4 || s.Data[1] != 6 {
		t.Errorf("Add wrong: %v %v", s, err)
	}
	p, err := Mul(a, b)
	if err != nil || p.Data[0] != 3 || p.Data[1] != 8 {
		t.Errorf("Mul wrong: %v %v", p, err)
	}
	if a.Data[0] != 1 {
		t.Error("operands mutated")
	}
	if _, err := Add(a, New(3)); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := Mul(a, New(3)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestScaleSigmoidReLU(t *testing.T) {
	a, _ := FromData([]float32{-2, 0, 2}, 3)
	a.Scale(2)
	if a.Data[0] != -4 || a.Data[2] != 4 {
		t.Error("Scale wrong")
	}
	b, _ := FromData([]float32{0}, 1)
	b.Sigmoid()
	if math.Abs(float64(b.Data[0])-0.5) > 1e-6 {
		t.Error("Sigmoid(0) != 0.5")
	}
	c, _ := FromData([]float32{-1, 2}, 2)
	c.ReLU()
	if c.Data[0] != 0 || c.Data[1] != 2 {
		t.Error("ReLU wrong")
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := randTensor(2, 5, 8)
	if err := a.SoftmaxRows(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var sum float64
		for _, v := range a.Row(i) {
			if v < 0 {
				t.Fatal("negative softmax output")
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	if err := New(2).SoftmaxRows(); err == nil {
		t.Error("1-d softmax accepted")
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	a, _ := FromData([]float32{1000, 1001, 1002}, 1, 3)
	if err := a.SoftmaxRows(); err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed on large logits")
		}
	}
}

func TestLayerNormRows(t *testing.T) {
	a := randTensor(3, 4, 16)
	if err := a.LayerNormRows(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		var mean, variance float64
		for _, v := range a.Row(i) {
			mean += float64(v)
		}
		mean /= 16
		for _, v := range a.Row(i) {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= 16
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Errorf("row %d: mean %v var %v", i, mean, variance)
		}
	}
	if err := New(2).LayerNormRows(); err == nil {
		t.Error("1-d layernorm accepted")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromData([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, err := Transpose2D(a)
	if err != nil {
		t.Fatal(err)
	}
	if b.Shape[0] != 3 || b.Shape[1] != 2 {
		t.Fatal("transpose shape wrong")
	}
	if b.At(2, 1) != a.At(1, 2) {
		t.Error("transpose values wrong")
	}
	if _, err := Transpose2D(New(2)); err == nil {
		t.Error("1-d transpose accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := randTensor(4, 3, 3)
	b := a.Clone()
	b.Data[0] = 999
	if a.Data[0] == 999 {
		t.Error("clone shares storage")
	}
}

func TestFillMaxAbs(t *testing.T) {
	a := New(2, 2).Fill(-3)
	if a.MaxAbs() != 3 {
		t.Errorf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestQuickMatMulDistributesOverAdd(t *testing.T) {
	// A*(B+C) == A*B + A*C within float tolerance.
	f := func(seed uint64) bool {
		a := randTensor(seed, 4, 5)
		b := randTensor(seed+1, 5, 3)
		c := randTensor(seed+2, 5, 3)
		bc, _ := Add(b, c)
		left, _ := MatMul(a, bc)
		ab, _ := MatMul(a, b)
		ac, _ := MatMul(a, c)
		right, _ := Add(ab, ac)
		for i := range left.Data {
			if math.Abs(float64(left.Data[i]-right.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%16 + 1
		a := randTensor(seed, 3, n)
		if err := a.SoftmaxRows(); err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			var sum float64
			for _, v := range a.Row(i) {
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
