// Package tensor is a minimal dense float32 tensor library backing the
// Pairformer and Diffusion module implementations: shape algebra, matmul,
// softmax, layer normalization and elementwise kernels. The inference
// modules run this math for real at reduced dimensions, and scale measured
// structure to paper-scale sizes with analytical FLOP formulas.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor of the given shape. Panics on non-positive
// dimensions — shapes are programmer input, not user input.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData wraps data with a shape; the length must match.
func FromData(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v", len(data), shape)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}, nil
}

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Dims returns the number of axes.
func (t *Tensor) Dims() int { return len(t.Shape) }

// At returns the element at the given indices (2D/3D fast paths).
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for axis %d (size %d)", x, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	cp := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(cp.Data, t.Data)
	return cp
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// MatMul computes a (m×k) · b (k×n) into a new (m×n) tensor. It is the
// serial, allocating form of MatMulInto.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("tensor: MatMul needs 2-d operands, got %v x %v", a.Shape, b.Shape)
	}
	if a.Shape[1] != b.Shape[0] {
		return nil, fmt.Errorf("tensor: MatMul inner dims %d vs %d", a.Shape[1], b.Shape[0])
	}
	out := New(a.Shape[0], b.Shape[1])
	if err := MatMulInto(out, a, b, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// MatMulFlops returns the FLOP count of a (m×k)·(k×n) product.
func MatMulFlops(m, k, n int) float64 { return 2 * float64(m) * float64(k) * float64(n) }

// Add returns a+b elementwise.
func Add(a, b *Tensor) (*Tensor, error) {
	if !SameShape(a, b) {
		return nil, fmt.Errorf("tensor: Add shape mismatch %v vs %v", a.Shape, b.Shape)
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out, nil
}

// Mul returns a⊙b elementwise (Hadamard product).
func Mul(a, b *Tensor) (*Tensor, error) {
	if !SameShape(a, b) {
		return nil, fmt.Errorf("tensor: Mul shape mismatch %v vs %v", a.Shape, b.Shape)
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out, nil
}

// Scale multiplies in place by s and returns t.
func (t *Tensor) Scale(s float32) *Tensor { return t.ScaleWith(s, nil) }

// Sigmoid applies the logistic function in place and returns t.
func (t *Tensor) Sigmoid() *Tensor { return t.SigmoidWith(nil) }

// ReLU applies max(0,x) in place and returns t.
func (t *Tensor) ReLU() *Tensor { return t.ReLUWith(nil) }

func sigmoidSpan(d []float32) {
	for i, v := range d {
		d[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// SoftmaxRows applies a numerically stable softmax along the last axis of a
// 2-d tensor, in place.
func (t *Tensor) SoftmaxRows() error { return t.SoftmaxRowsWith(nil) }

func softmaxRow(row []float32) {
	maxv := row[0]
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for j, v := range row {
		e := math.Exp(float64(v - maxv))
		row[j] = float32(e)
		sum += e
	}
	if sum == 0 {
		return
	}
	inv := float32(1 / sum)
	for j := range row {
		row[j] *= inv
	}
}

// LayerNormRows normalizes each row of a 2-d tensor to zero mean and unit
// variance (eps-stabilized), in place.
func (t *Tensor) LayerNormRows() error { return t.LayerNormRowsWith(nil) }

func layerNormRow(row []float32) {
	const eps = 1e-5
	n := len(row)
	var mean float64
	for _, v := range row {
		mean += float64(v)
	}
	mean /= float64(n)
	var variance float64
	for _, v := range row {
		d := float64(v) - mean
		variance += d * d
	}
	variance /= float64(n)
	inv := 1 / math.Sqrt(variance+eps)
	for j, v := range row {
		row[j] = float32((float64(v) - mean) * inv)
	}
}

// Transpose2D returns the transpose of a 2-d tensor.
func Transpose2D(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("tensor: Transpose2D needs 2-d, got %v", a.Shape)
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out, nil
}

// Row returns a view of row i of a 2-d tensor (shared storage).
func (t *Tensor) Row(i int) []float32 {
	n := t.Shape[len(t.Shape)-1]
	return t.Data[i*n : (i+1)*n]
}

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float32) *Tensor {
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// MaxAbs returns the maximum absolute element value (0 for empty).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
