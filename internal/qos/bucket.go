package qos

// TokenBucket is a deterministic virtual-time token-bucket rate limiter.
// Unlike a wall-clock limiter, refill is driven by the modeled arrival
// times the caller advances it to, so an admission decision is a pure
// function of the arrival trace and the bucket parameters — the property
// every fairness gate in this package depends on. Costs are chain-tokens
// (inputs.Input.TotalResidues), the same unit the WFQ charges, so a
// 5000-token complex draws ~16× the quota of a 300-token monomer.
//
// Not safe for concurrent use; the Controller serializes access.
type TokenBucket struct {
	rate   float64 // refill, tokens per modeled second (<= 0: unlimited)
	burst  float64 // capacity; also the initial level (burst credit)
	tokens float64
	vtime  float64 // virtual time of the last refill
}

// NewTokenBucket builds a bucket refilling at rate tokens per modeled
// second with capacity burst. rate <= 0 means unlimited (Take always
// succeeds); burst <= 0 with a positive rate defaults to four seconds of
// refill. The bucket starts full.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate > 0 && burst <= 0 {
		burst = 4 * rate
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Unlimited reports whether the bucket never limits.
func (b *TokenBucket) Unlimited() bool { return b.rate <= 0 }

// AdvanceTo refills the bucket up to virtual time t. Time is clamped
// monotonic: an arrival earlier than one already seen refills nothing, so
// an out-of-order trace cannot mint tokens.
func (b *TokenBucket) AdvanceTo(t float64) {
	if t <= b.vtime {
		return
	}
	if b.rate > 0 {
		b.tokens += (t - b.vtime) * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.vtime = t
}

// Take withdraws cost tokens if the full amount is available and reports
// whether it did. There are no partial withdrawals: a request is either
// admitted whole or sheds whole. A cost larger than the burst capacity can
// never succeed on a limited bucket — an intentionally hard edge, so a
// single adversarial mega-complex cannot be smuggled past a tight quota.
func (b *TokenBucket) Take(cost float64) bool {
	if b.rate <= 0 {
		return true
	}
	if cost > b.tokens {
		return false
	}
	b.tokens -= cost
	return true
}

// Level returns the current token level, or -1 for an unlimited bucket.
func (b *TokenBucket) Level() float64 {
	if b.rate <= 0 {
		return -1
	}
	return b.tokens
}
