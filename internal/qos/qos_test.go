package qos

import (
	"math"
	"testing"

	"afsysbench/internal/resilience"
	"afsysbench/internal/rng"
)

func TestTokenBucketRefillAndBurst(t *testing.T) {
	b := NewTokenBucket(100, 200)
	if !b.Take(200) {
		t.Fatal("full bucket refused its burst capacity")
	}
	if b.Take(1) {
		t.Fatal("empty bucket granted a token")
	}
	b.AdvanceTo(0.5) // +50 tokens
	if b.Take(51) {
		t.Fatal("bucket granted more than refilled")
	}
	if !b.Take(50) {
		t.Fatal("bucket refused its refill")
	}
	// Refill caps at burst.
	b.AdvanceTo(100)
	if got := b.Level(); got != 200 {
		t.Fatalf("level after long idle = %g, want burst 200", got)
	}
	// Monotonic clamp: an earlier arrival mints nothing.
	if !b.Take(200) {
		t.Fatal("full bucket refused burst")
	}
	b.AdvanceTo(50)
	if got := b.Level(); got != 0 {
		t.Fatalf("out-of-order arrival minted %g tokens", got)
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	b := NewTokenBucket(0, 0)
	for i := 0; i < 5; i++ {
		if !b.Take(1e12) {
			t.Fatal("unlimited bucket refused")
		}
	}
	if b.Level() != -1 {
		t.Fatalf("unlimited level = %g, want -1", b.Level())
	}
}

func TestTokenBucketDefaultBurst(t *testing.T) {
	b := NewTokenBucket(25, 0)
	if got := b.Level(); got != 100 {
		t.Fatalf("default burst = %g, want 4s of refill (100)", got)
	}
}

// TestAdmitRateLimit: a tenant past its bucket sheds rate-limited while a
// sibling with quota is untouched.
func TestAdmitRateLimit(t *testing.T) {
	c := NewController(Config{
		Tenants: map[string]TenantConfig{
			"capped": {Rate: 100, Burst: 100},
			"free":   {},
		},
	})
	d := c.Admit("capped", 0, 100)
	if !d.Admit {
		t.Fatalf("first request within burst shed: %+v", d)
	}
	d = c.Admit("capped", 0, 50)
	if d.Admit || d.Reason != resilience.ShedRateLimited {
		t.Fatalf("over-bucket request not rate-limited: %+v", d)
	}
	if d = c.Admit("free", 0, 5000); !d.Admit {
		t.Fatalf("unlimited sibling shed: %+v", d)
	}
	// Refill restores admission.
	if d = c.Admit("capped", 1, 100); !d.Admit {
		t.Fatalf("refilled bucket still shedding: %+v", d)
	}
	snap := c.Snapshot()
	if snap[0].Tenant != "capped" || snap[0].ShedRateLimited != 1 || snap[0].Admitted != 2 {
		t.Fatalf("capped stats = %+v", snap[0])
	}
}

// TestAdmitQueueFull: the modeled backlog bound sheds queue-full once the
// offered tokens outrun the drain, and recovers as virtual time drains it.
func TestAdmitQueueFull(t *testing.T) {
	c := NewController(Config{DrainTokensPerSec: 100, CapacityTokens: 1000})
	shed := 0
	for i := 0; i < 20; i++ {
		d := c.Admit("t", 0, 100) // all at t=0: no drain
		if !d.Admit {
			if d.Reason != resilience.ShedQueueFull {
				t.Fatalf("reason = %v, want queue-full", d.Reason)
			}
			shed++
		}
	}
	if shed != 10 {
		t.Fatalf("shed %d of 20, want the 10 past capacity", shed)
	}
	// 5 modeled seconds drain 500 tokens.
	if d := c.Admit("t", 5, 400); !d.Admit {
		t.Fatalf("drained backlog still shedding: %+v", d)
	}
}

// TestBrownoutDegradesAggressorOnly: at high occupancy the over-quota
// tenant is degraded (and eventually shed) while the light tenant stays
// undegraded.
func TestBrownoutDegradesAggressorOnly(t *testing.T) {
	c := NewController(Config{
		Tenants: map[string]TenantConfig{
			"victim": {Weight: 8},
			"storm":  {Weight: 1},
		},
		DrainTokensPerSec: 100,
		CapacityTokens:    1000,
	})
	// Interleave: storm floods, victim trickles. First storm request at
	// occupancy 0 admits clean; as backlog climbs the rungs engage.
	var stormLevels []Level
	stormShed := 0
	for i := 0; i < 15; i++ {
		if d := c.Admit("victim", 0, 10); !d.Admit {
			t.Fatalf("victim shed at i=%d: %+v", i, d)
		} else if d.Level != LevelNone {
			t.Fatalf("victim degraded at i=%d: %+v", i, d)
		}
		d := c.Admit("storm", 0, 70)
		if d.Admit {
			stormLevels = append(stormLevels, d.Level)
		} else {
			if d.Reason != resilience.ShedBrownout && d.Reason != resilience.ShedQueueFull {
				t.Fatalf("storm shed with reason %v", d.Reason)
			}
			if d.Reason == resilience.ShedBrownout {
				stormShed++
			}
		}
	}
	sawDegraded := false
	for _, l := range stormLevels {
		if l > LevelNone {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatalf("storm never degraded; levels %v", stormLevels)
	}
	if stormShed == 0 {
		t.Fatal("storm never brownout-shed at top occupancy")
	}
}

// TestFIFOModeDisablesQoS: FIFO keeps only the modeled queue bound; no
// rate limiting, no brownout, equal weights.
func TestFIFOModeDisablesQoS(t *testing.T) {
	c := NewController(Config{
		Tenants:           map[string]TenantConfig{"capped": {Rate: 1, Burst: 1, Weight: 9}},
		FIFO:              true,
		DrainTokensPerSec: 100,
		CapacityTokens:    1000,
	})
	if d := c.Admit("capped", 0, 900); !d.Admit || d.Level != LevelNone {
		t.Fatalf("FIFO applied QoS machinery: %+v", d)
	}
	if d := c.Admit("capped", 0, 200); d.Admit || d.Reason != resilience.ShedQueueFull {
		t.Fatalf("FIFO queue bound missing: %+v", d)
	}
	if w := c.Weight("capped"); w != 1 {
		t.Fatalf("FIFO weight = %g, want flattened 1", w)
	}
}

// TestDecisionDigestReproducible: same trace, same config => same digest;
// a different trace diverges.
func TestDecisionDigestReproducible(t *testing.T) {
	run := func(costs []float64) string {
		c := NewController(Config{
			Tenants:           map[string]TenantConfig{"a": {Rate: 500}, "b": {Weight: 2}},
			DrainTokensPerSec: 300,
			CapacityTokens:    2000,
		})
		for i, cost := range costs {
			tenant := "a"
			if i%3 == 0 {
				tenant = "b"
			}
			c.Admit(tenant, float64(i)/7, cost)
			c.RecordDispatch(tenant, i)
		}
		return c.DecisionDigest() + "/" + c.DispatchDigest()
	}
	costs := []float64{300, 120, 900, 40, 40, 700, 250, 80, 600, 310}
	d1, d2 := run(costs), run(costs)
	if d1 != d2 {
		t.Fatalf("digests diverged on identical traces: %s vs %s", d1, d2)
	}
	costs[4] = 41
	if d3 := run(costs); d3 == d1 {
		t.Fatal("digest blind to a changed trace")
	}
}

func TestParseTenantSpec(t *testing.T) {
	got, err := ParseTenantSpec("inter:w=8,r=800;storm:w=1,r=400,b=800; plain")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]TenantConfig{
		"inter": {Weight: 8, Rate: 800},
		"storm": {Weight: 1, Rate: 400, Burst: 800},
		"plain": {},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d tenants, want %d", len(got), len(want))
	}
	for name, w := range want {
		if got[name] != w {
			t.Fatalf("tenant %s = %+v, want %+v", name, got[name], w)
		}
	}
	for _, bad := range []string{
		"", ";;", ":w=1", "a:w", "a:w=x", "a:w=-1", "a:zz=1", "a:w=1;a:w=2", "a:w=NaN",
	} {
		if _, err := ParseTenantSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestArrivalShapes(t *testing.T) {
	for _, shape := range Shapes {
		src := rng.New(42).Split(0xA221)
		ts, err := Arrivals(shape, 500, 4, src)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if len(ts) != 500 {
			t.Fatalf("%s: %d arrivals", shape, len(ts))
		}
		for i, x := range ts {
			if math.IsNaN(x) || x < 0 {
				t.Fatalf("%s: bad arrival %g", shape, x)
			}
			if i > 0 && x < ts[i-1] {
				t.Fatalf("%s: arrivals not monotonic at %d", shape, i)
			}
		}
		// Mean rate within a loose band of the nominal 4/s.
		rate := float64(len(ts)) / ts[len(ts)-1]
		if rate < 1 || rate > 16 {
			t.Fatalf("%s: realized rate %.2f wildly off nominal 4", shape, rate)
		}
		// Determinism.
		ts2, _ := Arrivals(shape, 500, 4, rng.New(42).Split(0xA221))
		for i := range ts {
			if ts[i] != ts2[i] {
				t.Fatalf("%s: arrivals not deterministic at %d", shape, i)
			}
		}
	}
	if _, err := Arrivals("square-wave", 10, 1, rng.New(1)); err == nil {
		t.Fatal("unknown shape accepted")
	}
	if _, err := Arrivals("uniform", 0, 1, rng.New(1)); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Arrivals("uniform", 10, 0, rng.New(1)); err == nil {
		t.Fatal("rate=0 accepted")
	}
}
