package qos

import (
	"fmt"
	"math"

	"afsysbench/internal/rng"
)

// Arrival-shape generators for the adversarial trace suite (MLPerf HPC's
// multi-scenario grounding in PAPERS.md): every generator turns a seeded
// rng.Source into a strictly ordered arrival-time series on the modeled
// clock, so traces are pure functions of (shape, n, rate, seed).

// Shapes lists the supported arrival shapes, in flag-help order.
var Shapes = []string{"uniform", "bursty", "diurnal", "heavytail"}

// Arrivals generates n arrival times (modeled seconds, nondecreasing,
// starting near 0) at a mean rate of `rate` requests per second:
//
//   - uniform: a Poisson process — i.i.d. exponential gaps.
//   - bursty: a two-state MMPP — the process flickers between a hot state
//     (4× rate) and a quiet state (rate/4), switching with probability
//     1/8 per arrival, so load arrives in clumps.
//   - diurnal: a sinusoidally modulated Poisson process spanning two
//     "day" cycles over the trace — peak load ~1.8× the mean, trough
//     ~0.2×.
//   - heavytail: Pareto gaps (α = 1.5, mean 1/rate, capped at 50/rate) —
//     most requests arrive back to back, with rare long silences, the
//     worst case for burst credit.
//
// The source is consumed; callers wanting independent tenant streams
// should Split per tenant.
func Arrivals(shape string, n int, rate float64, src *rng.Source) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("qos: arrivals need n > 0 (got %d)", n)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("qos: arrivals need rate > 0 (got %g)", rate)
	}
	out := make([]float64, n)
	t := 0.0
	switch shape {
	case "", "uniform":
		for i := range out {
			t += src.ExpFloat64() / rate
			out[i] = t
		}
	case "bursty":
		hot := true
		for i := range out {
			r := rate * 4
			if !hot {
				r = rate / 4
			}
			t += src.ExpFloat64() / r
			out[i] = t
			if src.Float64() < 0.125 {
				hot = !hot
			}
		}
	case "diurnal":
		// Two full cycles over the nominal trace span n/rate; the local
		// rate is floored at 10% of the mean so the trough cannot stall
		// the generator.
		period := float64(n) / rate / 2
		for i := range out {
			lam := rate * (1 + 0.8*math.Sin(2*math.Pi*t/period))
			if lam < 0.1*rate {
				lam = 0.1 * rate
			}
			t += src.ExpFloat64() / lam
			out[i] = t
		}
	case "heavytail":
		const alpha = 1.5
		xm := (alpha - 1) / (alpha * rate) // Pareto scale for mean 1/rate
		for i := range out {
			u := 1 - src.Float64() // (0, 1]
			gap := xm * math.Pow(u, -1/alpha)
			if max := 50 / rate; gap > max {
				gap = max
			}
			t += gap
			out[i] = t
		}
	default:
		return nil, fmt.Errorf("qos: unknown arrival shape %q (want one of %v)", shape, Shapes)
	}
	return out, nil
}
