package qos

import (
	"testing"
)

// FuzzTokenBucket drives a bucket with an arbitrary op tape and asserts
// the level invariant: 0 <= tokens <= burst at every step, regardless of
// out-of-order advances, oversized takes, or degenerate parameters.
func FuzzTokenBucket(f *testing.F) {
	f.Add(uint64(100), uint64(400), []byte{0x01, 0x42, 0x81, 0x10, 0x02})
	f.Add(uint64(0), uint64(0), []byte{0xff, 0x00, 0x7f})
	f.Add(uint64(7), uint64(3), []byte{0x80, 0x40, 0xc0, 0x20})
	f.Fuzz(func(t *testing.T, rate, burst uint64, tape []byte) {
		b := NewTokenBucket(float64(rate%10000), float64(burst%100000))
		vt := 0.0
		for _, op := range tape {
			arg := float64(op & 0x3f)
			if op&0x80 != 0 {
				// Advance: alternate between forward and (clamped)
				// backward jumps.
				if op&0x40 != 0 {
					vt += arg / 4
					b.AdvanceTo(vt)
				} else {
					b.AdvanceTo(vt - arg) // must be a no-op
				}
			} else {
				b.Take(arg * 37)
			}
			if !b.Unlimited() {
				lv := b.Level()
				if lv < 0 || lv > b.burst {
					t.Fatalf("level %g outside [0, %g]", lv, b.burst)
				}
			}
		}
	})
}

// FuzzWFQ drives the weighted-fair queue with an arbitrary push/pop tape
// and asserts the DRR invariants after every op: no negative deficit, the
// size bookkeeping consistent, conservation of admitted work (everything
// pushed pops exactly once, per-tenant FIFO order preserved).
func FuzzWFQ(f *testing.F) {
	f.Add([]byte{0x10, 0x51, 0x92, 0xd3, 0x00, 0x00, 0x00})
	f.Add([]byte{0x3f, 0x7f, 0xbf, 0xff, 0x00, 0x01, 0x00, 0x00})
	f.Add([]byte{0x20, 0x00, 0x61, 0x00, 0xa2, 0x00, 0xe3, 0x00})
	f.Fuzz(func(t *testing.T, tape []byte) {
		names := []string{"a", "b", "c", "d"}
		wts := map[string]float64{"a": 1, "b": 2, "c": 5, "d": 0.5}
		w := NewWFQ[int](64, weights(wts))
		pushed := map[string][]int{}
		popped := map[string][]int{}
		next := 0
		pending := 0
		for _, op := range tape {
			if op&0x0f == 0 && pending > 0 {
				// Pop (value encodes tenant: next*4+tenantIdx).
				v, _, ok := w.Pop()
				if !ok {
					t.Fatal("pop failed with items pending")
				}
				tenant := names[v%4]
				popped[tenant] = append(popped[tenant], v)
				pending--
			} else {
				tenant := names[int(op>>6)&3]
				cost := float64(op&0x3f) * 17 // includes 0: min-clamp path
				w.Push(tenant, cost, next*4+int(op>>6)&3)
				pushed[tenant] = append(pushed[tenant], next*4+int(op>>6)&3)
				next++
				pending++
			}
			w.checkInvariants()
		}
		// Drain and check conservation + per-tenant FIFO.
		w.Close()
		for {
			v, _, ok := w.Pop()
			if !ok {
				break
			}
			tenant := names[v%4]
			popped[tenant] = append(popped[tenant], v)
			pending--
		}
		if pending != 0 {
			t.Fatalf("conservation broken: %d items unaccounted", pending)
		}
		for tenant, in := range pushed {
			out := popped[tenant]
			if len(in) != len(out) {
				t.Fatalf("tenant %s: pushed %d, popped %d", tenant, len(in), len(out))
			}
			for i := range in {
				if in[i] != out[i] {
					t.Fatalf("tenant %s: FIFO broken at %d (%d vs %d)", tenant, i, in[i], out[i])
				}
			}
		}
	})
}
