// Package qos is the multi-tenant quality-of-service layer for the
// serving subsystem: per-tenant token-bucket admission, deficit
// round-robin weighted-fair queueing over chain-token costs, and a
// brownout ladder that degrades over-quota tenants before anyone is shed.
//
// The paper's serving analysis (and AF_Cache's screening workloads in
// PAPERS.md) motivate the adversarial case directly: a bulk PPI-screening
// tenant submits thousands of large complexes against interactive
// traffic, and without tenancy the single FIFO admission queue lets it
// monopolize both the MSA scan pool and the GPU. The QoS layer's job is
// to make the victim tenant's latency and shed rate track its solo
// baseline while the aggressor absorbs the degradation.
//
// Everything here runs on modeled virtual time: buckets refill from the
// trace's arrival stamps, the brownout ladder reads a modeled backlog
// drained at a configured rate — never live pool state. That makes every
// admit/shed/degrade decision a pure function of (trace, config), bitwise
// reproducible across runs and across pool sizes, which is what lets
// `make fairness` gate on exact decision digests.
package qos

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"afsysbench/internal/resilience"
)

// Level is a brownout rung applied to an admitted request. Rungs are
// cumulative: a level implies every rung below it.
type Level int

const (
	// LevelNone: no degradation.
	LevelNone Level = iota
	// LevelHedgeOff: chain-level hedged retries disabled for the request —
	// no backup searches burning CPU while the system is hot.
	LevelHedgeOff
	// LevelBatchCap: the request's batch bucket is capped to a singleton
	// dispatch, so an over-quota tenant's large shapes stop inflating
	// shared batches (and their padding waste).
	LevelBatchCap
	// LevelDropDB: the request's MSA budget is tightened onto the PR 2
	// degradation ladder (drop DB → budget drop → single-sequence floor).
	LevelDropDB
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelHedgeOff:
		return "hedge-off"
	case LevelBatchCap:
		return "batch-cap"
	case LevelDropDB:
		return "drop-db"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Ladder maps modeled occupancy to brownout rungs. A rung applies to
// over-quota tenants only; under-quota tenants ride out the storm
// undegraded (WFQ already bounds their queueing delay). At ShedAt an
// over-quota tenant is shed outright (reason brownout); at occupancy 1.0
// the modeled backlog is full and everyone sheds (reason queue-full).
type Ladder struct {
	HedgeOffAt float64 // occupancy enabling LevelHedgeOff (default 0.5)
	BatchCapAt float64 // occupancy enabling LevelBatchCap (default 0.7)
	DropDBAt   float64 // occupancy enabling LevelDropDB (default 0.85)
	ShedAt     float64 // occupancy shedding over-quota tenants (default 0.95)
}

func (l Ladder) withDefaults() Ladder {
	if l.HedgeOffAt <= 0 {
		l.HedgeOffAt = 0.5
	}
	if l.BatchCapAt <= 0 {
		l.BatchCapAt = 0.7
	}
	if l.DropDBAt <= 0 {
		l.DropDBAt = 0.85
	}
	if l.ShedAt <= 0 {
		l.ShedAt = 0.95
	}
	return l
}

// level returns the rung the given occupancy enables.
func (l Ladder) level(occ float64) Level {
	switch {
	case occ >= l.DropDBAt:
		return LevelDropDB
	case occ >= l.BatchCapAt:
		return LevelBatchCap
	case occ >= l.HedgeOffAt:
		return LevelHedgeOff
	default:
		return LevelNone
	}
}

// TenantConfig is one tenant's quota: its WFQ weight and its token-bucket
// rate limit, all in chain-tokens.
type TenantConfig struct {
	// Weight is the tenant's WFQ share (<= 0 defaults to 1).
	Weight float64 `json:"weight"`
	// Rate is the token-bucket refill in chain-tokens per modeled second
	// (<= 0: unlimited).
	Rate float64 `json:"rate"`
	// Burst is the bucket capacity (<= 0 with a positive Rate: 4s of
	// refill).
	Burst float64 `json:"burst"`
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	return c
}

// Config tunes a Controller.
type Config struct {
	// Tenants maps tenant IDs to their quotas; unknown tenants get
	// Default.
	Tenants map[string]TenantConfig
	// Default is the quota for tenants absent from Tenants (zero value:
	// weight 1, unlimited rate).
	Default TenantConfig
	// DrainTokensPerSec is the modeled service rate the brownout backlog
	// drains at (default 2000 chain-tokens/s, ~4 mid-size requests). It is
	// a config constant, not live pool state — that is what keeps
	// decisions identical at any pool size.
	DrainTokensPerSec float64
	// CapacityTokens is the modeled backlog bound; occupancy =
	// backlog / CapacityTokens drives the ladder, and a request that
	// would push the backlog past it sheds queue-full (default 16000,
	// ~32 mid-size requests).
	CapacityTokens float64
	// Ladder holds the brownout occupancy thresholds.
	Ladder Ladder
	// QuotaSlack is the over-quota multiplier: a tenant is over quota when
	// its admitted-token share exceeds its weight share × QuotaSlack
	// (default 1.25).
	QuotaSlack float64
	// FIFO disables the QoS machinery while keeping the modeled admission
	// queue: no buckets, no weights, no brownout — a single arrival-order
	// queue bounded by CapacityTokens. This is the unprotected comparator
	// the fairness gate proves the QoS path against.
	FIFO bool
}

func (c Config) withDefaults() Config {
	if c.DrainTokensPerSec <= 0 {
		c.DrainTokensPerSec = 2000
	}
	if c.CapacityTokens <= 0 {
		c.CapacityTokens = 16000
	}
	c.Ladder = c.Ladder.withDefaults()
	if c.QuotaSlack <= 0 {
		c.QuotaSlack = 1.25
	}
	c.Default = c.Default.withDefaults()
	return c
}

// Decision is the outcome of one admission check.
type Decision struct {
	Tenant string
	// Cost is the request's chain-token cost after the minimum clamp.
	Cost float64
	// Admit: the request enters the WFQ. When false, Reason classes the
	// shed.
	Admit  bool
	Reason resilience.ShedReason
	// Level is the brownout rung the admitted request runs at.
	Level Level
	// Occupancy/Backlog/Capacity snapshot the modeled queue at decision
	// time (pre-admission); BucketLevel the tenant's bucket after it.
	Occupancy   float64
	Backlog     float64
	Capacity    float64
	BucketLevel float64
}

// TenantStats is one tenant's accounting row — the /v1/metrics `tenants`
// entry and the load report's fairness row.
type TenantStats struct {
	Tenant         string  `json:"tenant"`
	Weight         float64 `json:"weight"`
	Offered        int     `json:"offered"`
	Admitted       int     `json:"admitted"`
	AdmittedTokens float64 `json:"admitted_tokens"`
	Dispatched     int     `json:"dispatched"`

	ShedQueueFull   int `json:"shed_queue_full"`
	ShedRateLimited int `json:"shed_rate_limited"`
	ShedBrownout    int `json:"shed_brownout"`

	DegradedHedgeOff int `json:"degraded_hedge_off"`
	DegradedBatchCap int `json:"degraded_batch_cap"`
	DegradedDropDB   int `json:"degraded_drop_db"`

	// BucketLevel is the current token level (-1: unlimited).
	BucketLevel float64 `json:"bucket_level"`
}

// Shed returns the total shed count across reasons.
func (t TenantStats) Shed() int {
	return t.ShedQueueFull + t.ShedRateLimited + t.ShedBrownout
}

// Degraded returns the total brownout-degraded admit count.
func (t TenantStats) Degraded() int {
	return t.DegradedHedgeOff + t.DegradedBatchCap + t.DegradedDropDB
}

type tenantState struct {
	name   string
	cfg    TenantConfig
	bucket *TokenBucket
	stats  TenantStats
}

// Controller is the admission brain: it owns the per-tenant buckets, the
// modeled backlog the brownout ladder reads, the per-tenant accounting,
// and the decision/dispatch digests the reproducibility gates compare. It
// is safe for concurrent use and deliberately shareable: replicas behind
// a cluster router should share one Controller so a tenant cannot collect
// R× its quota by spraying replicas.
type Controller struct {
	mu  sync.Mutex
	cfg Config

	vnow        float64 // latest arrival seen (virtual now)
	backlog     float64 // modeled queued chain-tokens
	totalTokens float64 // admitted chain-tokens, all tenants
	sumWeights  float64 // over tenants seen
	tenants     map[string]*tenantState

	decisions  int
	decDigest  uint64
	dispDigest uint64
	// dispNext/dispPending reorder concurrent RecordDispatch calls into
	// sequence order before folding, so the dispatch digest is a pure
	// function of the (seq -> tenant) pairing — not of which pool worker
	// happened to report first.
	dispNext    int
	dispPending map[int]string
}

// NewController builds a controller; the zero Config is usable (every
// tenant unlimited at weight 1 — WFQ fairness without rate limits).
func NewController(cfg Config) *Controller {
	return &Controller{
		cfg:        cfg.withDefaults(),
		tenants:    make(map[string]*tenantState),
		decDigest:  fnvOffset,
		dispDigest: fnvOffset,
	}
}

// Config returns the controller's effective (default-filled) config.
func (c *Controller) Config() Config { return c.cfg }

// Weight returns the WFQ weight for a tenant (1 in FIFO mode, flattening
// the scheduler into a single arrival-order queue).
func (c *Controller) Weight(tenant string) float64 {
	if c.cfg.FIFO {
		return 1
	}
	if tc, ok := c.cfg.Tenants[tenant]; ok {
		return tc.withDefaults().Weight
	}
	return c.cfg.Default.Weight
}

func (c *Controller) state(tenant string) *tenantState {
	st := c.tenants[tenant]
	if st == nil {
		tc, ok := c.cfg.Tenants[tenant]
		if !ok {
			tc = c.cfg.Default
		}
		tc = tc.withDefaults()
		st = &tenantState{name: tenant, cfg: tc, bucket: NewTokenBucket(tc.Rate, tc.Burst)}
		st.stats.Tenant = tenant
		st.stats.Weight = tc.Weight
		c.tenants[tenant] = st
		c.sumWeights += tc.Weight
	}
	return st
}

// Admit decides one request: tenant identity, modeled arrival time in
// seconds, cost in chain-tokens. The decision sequence is a pure function
// of the call sequence and the config — no wall clock, no pool state.
func (c *Controller) Admit(tenant string, arrival, cost float64) Decision {
	if cost < 1 {
		cost = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Advance virtual time and drain the modeled backlog. Arrivals are
	// clamped monotonic, mirroring the buckets.
	if arrival > c.vnow {
		c.backlog -= (arrival - c.vnow) * c.cfg.DrainTokensPerSec
		if c.backlog < 0 {
			c.backlog = 0
		}
		c.vnow = arrival
	}
	st := c.state(tenant)
	st.stats.Offered++
	st.bucket.AdvanceTo(c.vnow)

	d := Decision{
		Tenant:   tenant,
		Cost:     cost,
		Backlog:  c.backlog,
		Capacity: c.cfg.CapacityTokens,
	}
	d.Occupancy = c.backlog / c.cfg.CapacityTokens

	shed := func(reason resilience.ShedReason) Decision {
		switch reason {
		case resilience.ShedQueueFull:
			st.stats.ShedQueueFull++
		case resilience.ShedRateLimited:
			st.stats.ShedRateLimited++
		case resilience.ShedBrownout:
			st.stats.ShedBrownout++
		}
		d.Admit = false
		d.Reason = reason
		d.BucketLevel = st.bucket.Level()
		c.recordDecision(d)
		return d
	}

	// Rate limit first: a tenant past its own bucket is shed regardless
	// of how idle the system is — quota is quota.
	if !c.cfg.FIFO && !st.bucket.Take(cost) {
		return shed(resilience.ShedRateLimited)
	}
	over := !c.cfg.FIFO && c.overQuota(st, cost)
	// Brownout shed outranks queue-full: past ShedAt an over-quota tenant
	// is turned away while headroom remains, and the headroom between
	// ShedAt and 1.0 is reserved for tenants within quota.
	if over && d.Occupancy >= c.cfg.Ladder.ShedAt {
		return shed(resilience.ShedBrownout)
	}
	// Modeled queue bound: a request that would overflow the backlog
	// sheds queue-full, the pre-QoS semantics on a modeled clock.
	if c.backlog+cost > c.cfg.CapacityTokens {
		return shed(resilience.ShedQueueFull)
	}
	if over {
		d.Level = c.cfg.Ladder.level(d.Occupancy)
	}

	d.Admit = true
	c.backlog += cost
	st.stats.Admitted++
	st.stats.AdmittedTokens += cost
	c.totalTokens += cost
	switch d.Level {
	case LevelHedgeOff:
		st.stats.DegradedHedgeOff++
	case LevelBatchCap:
		st.stats.DegradedBatchCap++
	case LevelDropDB:
		st.stats.DegradedDropDB++
	}
	d.BucketLevel = st.bucket.Level()
	st.stats.BucketLevel = d.BucketLevel
	c.recordDecision(d)
	return d
}

// overQuota reports whether admitting cost more tokens would push the
// tenant's admitted-token share past its weight share × QuotaSlack. The
// share is computed over tenants seen so far, so a tenant alone on the
// system is never "over quota" — there is no one to be unfair to.
func (c *Controller) overQuota(st *tenantState, cost float64) bool {
	total := c.totalTokens + cost
	if total <= 0 || c.sumWeights <= 0 {
		return false
	}
	share := (st.stats.AdmittedTokens + cost) / total
	fair := st.cfg.Weight / c.sumWeights
	return share > fair*c.cfg.QuotaSlack
}

// RecordDispatch folds one WFQ pop into the dispatch digest and the
// tenant's dispatched count. Calls may arrive in any order (racing pool
// workers); folding happens in sequence order via a reorder buffer, so
// the digest only depends on which tenant held each sequence number.
func (c *Controller) RecordDispatch(tenant string, seq int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.tenants[tenant]; st != nil {
		st.stats.Dispatched++
	}
	if c.dispPending == nil {
		c.dispPending = make(map[int]string)
	}
	c.dispPending[seq] = tenant
	for {
		t, ok := c.dispPending[c.dispNext]
		if !ok {
			return
		}
		delete(c.dispPending, c.dispNext)
		c.dispDigest = fnvFold(c.dispDigest, uint64(c.dispNext))
		c.dispDigest = fnvFoldString(c.dispDigest, t)
		c.dispNext++
	}
}

// recordDecision folds one admission decision into the decision digest.
func (c *Controller) recordDecision(d Decision) {
	c.decisions++
	h := c.decDigest
	h = fnvFoldString(h, d.Tenant)
	h = fnvFold(h, math.Float64bits(d.Cost))
	bit := uint64(0)
	if d.Admit {
		bit = 1
	}
	h = fnvFold(h, bit)
	h = fnvFold(h, uint64(d.Reason))
	h = fnvFold(h, uint64(d.Level))
	c.decDigest = h
}

// DecisionDigest returns the running hash over the admission-decision
// sequence (tenant, cost, admit, reason, level). Two runs of the same trace
// against the same config produce the same digest — at any pool size.
func (c *Controller) DecisionDigest() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("%016x", c.decDigest)
}

// DispatchDigest returns the running hash over the WFQ dispatch sequence.
func (c *Controller) DispatchDigest() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("%016x", c.dispDigest)
}

// Decisions returns how many admission decisions the controller has made.
func (c *Controller) Decisions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decisions
}

// Snapshot returns per-tenant accounting rows sorted by tenant name.
func (c *Controller) Snapshot() []TenantStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TenantStats, 0, len(c.tenants))
	for _, st := range c.tenants {
		row := st.stats
		row.BucketLevel = st.bucket.Level()
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Occupancy returns the modeled backlog occupancy at the latest arrival.
func (c *Controller) Occupancy() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backlog / c.cfg.CapacityTokens
}

// FNV-1a 64-bit, unrolled here so digests are stable and dependency-free.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvFold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvFoldString(h uint64, s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	return fnvFold(h, f.Sum64())
}

// ParseTenantSpec parses the quota-only tenant spec shared by afserve and
// afload: semicolon-separated tenants, each "name:attr,attr" with attrs
// w= (weight), r= (rate, chain-tokens per modeled second) and b= (burst
// tokens). Example: "inter:w=8,r=800;storm:w=1,r=400,b=800".
func ParseTenantSpec(spec string) (map[string]TenantConfig, error) {
	out := make(map[string]TenantConfig)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, _ := strings.Cut(part, ":")
		if name == "" {
			return nil, fmt.Errorf("tenant entry %q has no name", part)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate tenant %q in spec", name)
		}
		var tc TenantConfig
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, vs, ok := strings.Cut(kv, "=")
			if !ok || k == "" {
				return nil, fmt.Errorf("tenant %q: bad attribute %q (want k=v)", name, kv)
			}
			v, err := strconv.ParseFloat(vs, 64)
			if err != nil || math.IsNaN(v) || v < 0 {
				return nil, fmt.Errorf("tenant %q: bad value in %q", name, kv)
			}
			switch k {
			case "w", "weight":
				tc.Weight = v
			case "r", "rate":
				tc.Rate = v
			case "b", "burst":
				tc.Burst = v
			default:
				return nil, fmt.Errorf("tenant %q: unknown attribute %q (want w=, r=, b=)", name, k)
			}
		}
		out[name] = tc
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty tenant spec")
	}
	return out, nil
}
