package qos

import "sync"

// WFQ is a weighted-fair queue over per-tenant FIFO sub-queues, scheduled
// by deficit round-robin (DRR): each backlogged tenant is visited in
// first-backlog order, earns quantum × weight deficit credit per visit,
// and dequeues head items while its deficit covers their cost. Over time
// each tenant's dequeued token share converges to its weight share
// regardless of how many (or how large) items the others pile up — the
// property the starvation regression test pins.
//
// Determinism: every state transition happens under the queue mutex, and
// the dispatch sequence number is allocated inside Pop under that same
// lock — so for a fixed push history (e.g. an open-loop trace pushed
// before any Pop), the (item, sequence) pairing is a pure function of the
// pushes, independent of how many consumer goroutines race on Pop.
//
// Invariants (fuzzed in fuzz_test.go): a tenant's deficit never goes
// negative, every pushed item is popped exactly once (conservation of
// admitted work), and per-tenant FIFO order is preserved.
type WFQ[T any] struct {
	mu       sync.Mutex
	cond     *sync.Cond
	quantum  float64
	weightOf func(tenant string) float64

	queues map[string]*wfqQueue[T]
	active []string // backlogged tenants in first-backlog order
	cursor int      // DRR position in active
	size   int
	seq    int
	closed bool
}

type wfqQueue[T any] struct {
	weight  float64
	deficit float64
	// granted marks that the current DRR visit already earned its quantum;
	// it resets when the scheduler moves past the tenant or its queue
	// empties, so credit is earned exactly once per visit.
	granted bool
	backlog bool // tenant present in active
	items   []wfqEntry[T]
}

type wfqEntry[T any] struct {
	cost float64
	v    T
}

// NewWFQ builds a queue with the given base quantum (tokens of credit per
// unit weight per DRR visit; <= 0 defaults to 256, roughly one small
// request) and a weight lookup for tenants (nil or non-positive results
// default to weight 1).
func NewWFQ[T any](quantum float64, weightOf func(tenant string) float64) *WFQ[T] {
	if quantum <= 0 {
		quantum = 256
	}
	w := &WFQ[T]{
		quantum:  quantum,
		weightOf: weightOf,
		queues:   make(map[string]*wfqQueue[T]),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Push enqueues one item for a tenant at the given cost (clamped to a
// minimum of 1 so zero-cost items cannot stall DRR). Pushing after Close
// is a no-op returning false.
func (w *WFQ[T]) Push(tenant string, cost float64, v T) bool {
	if cost < 1 {
		cost = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	q := w.queues[tenant]
	if q == nil {
		weight := 1.0
		if w.weightOf != nil {
			if wt := w.weightOf(tenant); wt > 0 {
				weight = wt
			}
		}
		q = &wfqQueue[T]{weight: weight}
		w.queues[tenant] = q
	}
	if !q.backlog {
		q.backlog = true
		w.active = append(w.active, tenant)
	}
	q.items = append(q.items, wfqEntry[T]{cost: cost, v: v})
	w.size++
	w.cond.Signal()
	return true
}

// Pop blocks until an item is available (or the queue is closed and
// drained) and returns it with its dispatch sequence number. After Close,
// remaining items still drain in DRR order; only then does Pop return
// ok == false.
func (w *WFQ[T]) Pop() (v T, seq int, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.size == 0 {
		if w.closed {
			var zero T
			return zero, 0, false
		}
		w.cond.Wait()
	}
	for {
		if w.cursor >= len(w.active) {
			w.cursor = 0
		}
		q := w.queues[w.active[w.cursor]]
		if !q.granted {
			q.deficit += w.quantum * q.weight
			q.granted = true
		}
		if q.deficit >= q.items[0].cost {
			e := q.items[0]
			q.items = q.items[1:]
			q.deficit -= e.cost
			w.size--
			if len(q.items) == 0 {
				// Standard DRR: an emptied queue forfeits its deficit so
				// idle tenants cannot hoard credit for a later burst.
				q.deficit = 0
				q.granted = false
				q.backlog = false
				w.active = append(w.active[:w.cursor], w.active[w.cursor+1:]...)
			}
			s := w.seq
			w.seq++
			return e.v, s, true
		}
		// Head unaffordable: end this tenant's visit and move on. Each
		// revisit earns another quantum, so every head becomes affordable
		// within ceil(cost/(quantum×weight)) rounds — the loop terminates.
		q.granted = false
		w.cursor++
	}
}

// Close wakes every blocked Pop. Items already queued still drain.
func (w *WFQ[T]) Close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
}

// Len returns the number of queued items across all tenants.
func (w *WFQ[T]) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// checkInvariants panics on a broken internal invariant; test/fuzz hook.
func (w *WFQ[T]) checkInvariants() {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := 0
	for t, q := range w.queues {
		if q.deficit < 0 {
			panic("qos: negative DRR deficit for tenant " + t)
		}
		if q.backlog != (len(q.items) > 0) {
			panic("qos: backlog flag out of sync for tenant " + t)
		}
		total += len(q.items)
	}
	if total != w.size {
		panic("qos: WFQ size out of sync")
	}
}
