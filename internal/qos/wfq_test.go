package qos

import (
	"sync"
	"testing"
)

func weights(m map[string]float64) func(string) float64 {
	return func(t string) float64 { return m[t] }
}

// TestWFQWeightedShare: with both tenants permanently backlogged and equal
// item costs, dequeued counts converge to the weight ratio.
func TestWFQWeightedShare(t *testing.T) {
	w := NewWFQ[string](100, weights(map[string]float64{"heavy": 3, "light": 1}))
	for i := 0; i < 400; i++ {
		w.Push("heavy", 100, "heavy")
		w.Push("light", 100, "light")
	}
	got := map[string]int{}
	// Pop while both tenants stay backlogged.
	for i := 0; i < 400; i++ {
		v, seq, ok := w.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		if seq != i {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
		got[v]++
		w.checkInvariants()
	}
	if got["heavy"] != 300 || got["light"] != 100 {
		t.Fatalf("share = %v, want 3:1 over 400 pops", got)
	}
}

// TestWFQCostCharging: a tenant with 4× larger items gets ~4× fewer items
// through per round — fairness is in tokens, not request counts.
func TestWFQCostCharging(t *testing.T) {
	w := NewWFQ[string](100, nil) // equal weights
	for i := 0; i < 80; i++ {
		w.Push("big", 400, "big")
		w.Push("small", 100, "small")
	}
	counts := map[string]int{}
	for i := 0; i < 50; i++ {
		v, _, ok := w.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		counts[v]++
		w.checkInvariants()
	}
	// In steady state: per 5 pops, 1 big (400 tokens) and 4 small (400
	// tokens). Allow slack for the startup transient.
	if counts["small"] < 3*counts["big"] {
		t.Fatalf("token fairness broken: %v (small should see ~4x the items)", counts)
	}
}

// TestWFQPerTenantFIFO: items of one tenant come out in push order.
func TestWFQPerTenantFIFO(t *testing.T) {
	w := NewWFQ[int](256, nil)
	for i := 0; i < 100; i++ {
		w.Push("a", float64(1+i%7*100), i)
		w.Push("b", 50, 1000+i)
	}
	lastA, lastB := -1, 999
	for {
		if w.Len() == 0 {
			break
		}
		v, _, ok := w.Pop()
		if !ok {
			break
		}
		if v < 1000 {
			if v <= lastA {
				t.Fatalf("tenant a out of order: %d after %d", v, lastA)
			}
			lastA = v
		} else {
			if v <= lastB {
				t.Fatalf("tenant b out of order: %d after %d", v, lastB)
			}
			lastB = v
		}
	}
	if lastA != 99 || lastB != 1099 {
		t.Fatalf("conservation broken: lastA=%d lastB=%d", lastA, lastB)
	}
}

// TestWFQDeterministicOrder: a fixed push history pops in the same order
// regardless of how many consumers race, because sequence numbers are
// allocated under the queue lock.
func TestWFQDeterministicOrder(t *testing.T) {
	build := func() *WFQ[int] {
		w := NewWFQ[int](128, weights(map[string]float64{"x": 2, "y": 1, "z": 1}))
		for i := 0; i < 60; i++ {
			w.Push([]string{"x", "y", "z"}[i%3], float64(50+i%5*77), i)
		}
		return w
	}
	// Serial reference order.
	ref := make([]int, 60)
	w := build()
	for i := 0; i < 60; i++ {
		v, seq, _ := w.Pop()
		ref[seq] = v
	}
	// 8 racing consumers: same (seq -> item) mapping.
	w = build()
	w.Close()
	got := make([]int, 60)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, seq, ok := w.Pop()
				if !ok {
					return
				}
				mu.Lock()
				got[seq] = v
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("dispatch order diverged at seq %d: %d vs %d", i, ref[i], got[i])
		}
	}
}

// TestWFQStarvation: an aggressor with 100x the offered items cannot stop
// the victim's items from flowing at its weight share.
func TestWFQStarvation(t *testing.T) {
	w := NewWFQ[string](256, weights(map[string]float64{"victim": 4, "aggr": 1}))
	for i := 0; i < 2000; i++ {
		w.Push("aggr", 800, "aggr")
	}
	for i := 0; i < 20; i++ {
		w.Push("victim", 200, "victim")
	}
	// The victim's 20 small items must all surface within the first 120
	// pops despite 2000 queued aggressor items.
	victims := 0
	for i := 0; i < 120; i++ {
		v, _, ok := w.Pop()
		if !ok {
			t.Fatal("drained early")
		}
		if v == "victim" {
			victims++
		}
		w.checkInvariants()
	}
	if victims != 20 {
		t.Fatalf("victim got %d of 20 items through in 120 pops (starved)", victims)
	}
}

// TestWFQCloseDrains: Close wakes blocked pops and queued items drain.
func TestWFQCloseDrains(t *testing.T) {
	w := NewWFQ[int](256, nil)
	w.Push("a", 10, 1)
	w.Push("a", 10, 2)
	w.Close()
	if w.Push("a", 10, 3) {
		t.Fatal("push after close accepted")
	}
	seen := 0
	for {
		_, _, ok := w.Pop()
		if !ok {
			break
		}
		seen++
	}
	if seen != 2 {
		t.Fatalf("drained %d items, want 2", seen)
	}
	// A blocked pop on an empty closed queue returns immediately.
	done := make(chan struct{})
	go func() {
		w.Pop()
		close(done)
	}()
	<-done
}
