// Package xla is a miniature tensor-graph compiler standing in for the
// JAX/XLA pipeline that dominates AlphaFold3's inference startup on the
// server platform (paper Figure 8, Table V). It builds a real operator
// graph for the AF3 forward pass, then runs real passes over it — shape
// inference (ByteSizeOf), elementwise fusion, and buffer assignment (the
// std::vector::_M_fill_insert allocation hot spot) — reporting metering
// events so the CPU model can price compilation on each platform.
package xla

import (
	"fmt"

	"afsysbench/internal/diffusion"
	"afsysbench/internal/metering"
	"afsysbench/internal/pairformer"
)

// OpKind classifies graph nodes.
type OpKind int

const (
	OpMatMul OpKind = iota
	OpSoftmax
	OpLayerNorm
	OpElementwise
	OpTranspose
	OpReduce
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpMatMul:
		return "matmul"
	case OpSoftmax:
		return "softmax"
	case OpLayerNorm:
		return "layernorm"
	case OpElementwise:
		return "elementwise"
	case OpTranspose:
		return "transpose"
	case OpReduce:
		return "reduce"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one node of the tensor program.
type Op struct {
	ID     int
	Kind   OpKind
	Shape  []int // output shape
	Inputs []int // producer op IDs
	// FusedInto is the ID of the fusion group leader, or -1.
	FusedInto int
}

// Graph is a tensor program in topological order.
type Graph struct {
	Ops []Op
}

// Add appends an op and returns its ID.
func (g *Graph) Add(kind OpKind, shape []int, inputs ...int) int {
	id := len(g.Ops)
	g.Ops = append(g.Ops, Op{ID: id, Kind: kind, Shape: shape, Inputs: inputs, FusedInto: -1})
	return id
}

// ByteSizeOf returns the byte size of a float32 tensor shape — the analog
// of xla::ShapeUtil::ByteSizeOf, the dTLB-miss hot spot of Table V.
func ByteSizeOf(shape []int) int64 {
	var n int64 = 4
	for _, d := range shape {
		n *= int64(d)
	}
	return n
}

// BuildInferenceGraph constructs the operator graph for one AF3 forward
// pass at n tokens: recycles × Pairformer blocks plus the diffusion
// denoiser unrolled per evaluation batch. The graph is structurally real —
// ops, shapes and dependencies — at a per-block granularity matching the
// module implementations.
func BuildInferenceGraph(pf pairformer.Config, df diffusion.Config, n, recycles int) *Graph {
	g := &Graph{}
	pair := g.Add(OpElementwise, []int{n * n, pf.PairDim})
	single := g.Add(OpElementwise, []int{n, pf.SingleDim})

	for r := 0; r < recycles; r++ {
		for b := 0; b < pf.Blocks; b++ {
			pair, single = addPairformerBlock(g, pf, n, pair, single)
		}
	}

	// Diffusion denoiser: one unrolled evaluation (XLA compiles the step
	// function once; the runtime loops it).
	atoms := n * df.AtomsPerToken
	coords := g.Add(OpElementwise, []int{atoms, 3})
	feat := g.Add(OpMatMul, []int{atoms, df.AtomDim}, coords)
	for l := 0; l < df.LocalEncLayers; l++ {
		feat = addAttention(g, feat, []int{atoms, df.AtomDim}, []int{atoms, df.AtomWindow})
	}
	tok := g.Add(OpReduce, []int{n, df.AtomDim}, feat)
	tok = g.Add(OpMatMul, []int{n, df.TokenDim}, tok)
	for l := 0; l < df.GlobalLayers; l++ {
		tok = addAttention(g, tok, []int{n, df.TokenDim}, []int{n, n})
	}
	back := g.Add(OpMatMul, []int{atoms, df.AtomDim}, tok, feat)
	for l := 0; l < df.LocalDecLayers; l++ {
		back = addAttention(g, back, []int{atoms, df.AtomDim}, []int{atoms, df.AtomWindow})
	}
	g.Add(OpMatMul, []int{atoms, 3}, back)
	return g
}

func addPairformerBlock(g *Graph, pf pairformer.Config, n, pair, single int) (int, int) {
	pairShape := []int{n * n, pf.PairDim}
	hidShape := []int{n * n, pf.TriHidden}
	// Triangle multiplicative update, both directions.
	for dir := 0; dir < 2; dir++ {
		a := g.Add(OpMatMul, hidShape, pair)
		b := g.Add(OpMatMul, hidShape, pair)
		gate := g.Add(OpMatMul, hidShape, pair)
		gate = g.Add(OpElementwise, hidShape, gate) // sigmoid
		comb := g.Add(OpMatMul, hidShape, a, b)     // Σ_k contraction
		gated := g.Add(OpElementwise, hidShape, comb, gate)
		upd := g.Add(OpMatMul, pairShape, gated)
		pair = g.Add(OpElementwise, pairShape, pair, upd) // residual
	}
	// Triangle attention, both orientations.
	hd := pf.Heads * pf.HeadDim
	for dir := 0; dir < 2; dir++ {
		q := g.Add(OpMatMul, []int{n * n, hd}, pair)
		k := g.Add(OpMatMul, []int{n * n, hd}, pair)
		v := g.Add(OpMatMul, []int{n * n, hd}, pair)
		bias := g.Add(OpMatMul, []int{n * n, pf.Heads}, pair)
		logits := g.Add(OpMatMul, []int{n * n, n}, q, k, bias)
		sm := g.Add(OpSoftmax, []int{n * n, n}, logits)
		ctx := g.Add(OpMatMul, []int{n * n, hd}, sm, v)
		upd := g.Add(OpMatMul, pairShape, ctx)
		pair = g.Add(OpElementwise, pairShape, pair, upd)
	}
	// Pair transition.
	h := g.Add(OpMatMul, []int{n * n, pf.PairDim * pf.TransMult}, pair)
	h = g.Add(OpElementwise, []int{n * n, pf.PairDim * pf.TransMult}, h) // relu
	upd := g.Add(OpMatMul, pairShape, h)
	pair = g.Add(OpElementwise, pairShape, pair, upd)
	pair = g.Add(OpLayerNorm, pairShape, pair)
	// Single update.
	single = addAttention(g, single, []int{n, pf.SingleDim}, []int{n, n})
	return pair, single
}

func addAttention(g *Graph, x int, shape, logitShape []int) int {
	q := g.Add(OpMatMul, shape, x)
	k := g.Add(OpMatMul, shape, x)
	v := g.Add(OpMatMul, shape, x)
	kt := g.Add(OpTranspose, shape, k)
	logits := g.Add(OpMatMul, logitShape, q, kt)
	sm := g.Add(OpSoftmax, logitShape, logits)
	ctx := g.Add(OpMatMul, shape, sm, v)
	out := g.Add(OpMatMul, shape, ctx)
	res := g.Add(OpElementwise, shape, x, out)
	return g.Add(OpLayerNorm, shape, res)
}

// CompileStats summarizes a compilation.
type CompileStats struct {
	Ops          int
	FusedOps     int
	FusionGroups int
	Buffers      int
	// PeakBytes is the buffer-assignment high-water mark: the activation
	// memory the executable will allocate at startup.
	PeakBytes int64
	// Instructions is the modeled host instruction count of the compile
	// (autotuning, pattern matching, codegen — scaled per op).
	Instructions uint64
}

// Per-op modeled compile cost: XLA autotunes dot/attention ops heavily.
// Calibrated so AF3-scale graphs cost ~10 s on the desktop CPU, matching
// the paper's Figure 8 measurement.
const (
	compileInstrPerOp     = 2.2e6
	compileInstrPerMatMul = 11e6
	compileBytesPerOp     = 24 << 10
)

// Compile runs shape inference, elementwise fusion and buffer assignment
// over the graph, reporting the host-side work as metering events with the
// paper's Table V symbol names. It returns the stats and the executable
// kernel count.
func Compile(g *Graph, m metering.Meter) (CompileStats, error) {
	if m == nil {
		m = metering.Nop{}
	}
	var st CompileStats
	st.Ops = len(g.Ops)
	if st.Ops == 0 {
		return st, fmt.Errorf("xla: empty graph")
	}

	// Pass 1: shape inference / size computation (ByteSizeOf per op).
	var totalBytes int64
	for i := range g.Ops {
		totalBytes += ByteSizeOf(g.Ops[i].Shape)
	}
	// Shape metadata is re-queried throughout every pass (layout
	// assignment, fusion legality, buffer sizing), so the per-op traffic
	// is far larger than one struct read.
	m.Record(metering.Event{
		Func:         "xla::ShapeUtil::ByteSizeOf",
		Instructions: uint64(st.Ops) * 2200,
		Bytes:        uint64(st.Ops) * 32768,
		WorkingSet:   uint64(st.Ops) * 64, // scattered shape metadata
		Pattern:      metering.Random,
		Branches:     uint64(st.Ops) * 300,
		// Shape-dependent virtual dispatch mispredicts freely.
		BranchMissRate: 0.08,
	})

	// Pass 2: greedy elementwise fusion into the producing op.
	matmuls := 0
	for i := range g.Ops {
		op := &g.Ops[i]
		if op.Kind == OpMatMul {
			matmuls++
		}
		if op.Kind != OpElementwise || len(op.Inputs) == 0 {
			continue
		}
		leader := op.Inputs[0]
		// Follow an existing fusion chain to its leader.
		for g.Ops[leader].FusedInto >= 0 {
			leader = g.Ops[leader].FusedInto
		}
		op.FusedInto = leader
		st.FusedOps++
	}
	groups := make(map[int]bool)
	for i := range g.Ops {
		if g.Ops[i].FusedInto >= 0 {
			groups[g.Ops[i].FusedInto] = true
		}
	}
	st.FusionGroups = len(groups)

	// Pass 3: buffer assignment — one allocation per unfused op output,
	// freed after its last consumer (real live-range analysis). This is
	// the _M_fill_insert behavior: large zero-initialized vectors whose
	// first touch page-faults (Table V: 12–17% overhead). Logit-sized
	// intermediates are tiled by the backend, so any single buffer's
	// contribution is capped at the tile arena size.
	const tileArenaBytes = 256 << 20
	lastUse := make([]int, len(g.Ops))
	for i := range g.Ops {
		for _, in := range g.Ops[i].Inputs {
			lastUse[in] = i
		}
	}
	var live, peak int64
	freeAt := make(map[int][]int64)
	for i := range g.Ops {
		if g.Ops[i].FusedInto < 0 {
			st.Buffers++
			sz := ByteSizeOf(g.Ops[i].Shape)
			if sz > tileArenaBytes {
				sz = tileArenaBytes
			}
			live += sz
			freeAt[lastUse[i]] = append(freeAt[lastUse[i]], sz)
			if live > peak {
				peak = live
			}
		}
		for _, sz := range freeAt[i] {
			live -= sz
		}
		delete(freeAt, i)
	}
	st.PeakBytes = peak
	m.Record(metering.Event{
		Func:         "std::vector::_M_fill_insert",
		Instructions: uint64(st.Buffers) * 400,
		Bytes:        uint64(st.PeakBytes),
		WorkingSet:   uint64(st.PeakBytes),
		Pattern:      metering.Sequential,
		Branches:     uint64(st.Buffers) * 16,
		// fill loops predict perfectly; the cost is the page faults.
		BranchMissRate: 0.002,
		Allocated:      uint64(st.PeakBytes),
	})

	// The bulk compile work (pattern matching, autotuning, codegen).
	st.Instructions = uint64(float64(st.Ops)*compileInstrPerOp + float64(matmuls)*compileInstrPerMatMul)
	m.Record(metering.Event{
		Func:           "xla_compile_passes",
		Instructions:   st.Instructions,
		Bytes:          uint64(st.Ops) * compileBytesPerOp,
		WorkingSet:     uint64(st.Ops) * 4096,
		Pattern:        metering.Random,
		Branches:       st.Instructions / 6,
		BranchMissRate: 0.015,
	})
	return st, nil
}
