package xla

import (
	"testing"

	"afsysbench/internal/diffusion"
	"afsysbench/internal/metering"
	"afsysbench/internal/pairformer"
)

func smallGraph() *Graph {
	g := &Graph{}
	a := g.Add(OpMatMul, []int{4, 4})
	b := g.Add(OpElementwise, []int{4, 4}, a)
	c := g.Add(OpElementwise, []int{4, 4}, b)
	g.Add(OpSoftmax, []int{4, 4}, c)
	return g
}

func TestByteSizeOf(t *testing.T) {
	if ByteSizeOf([]int{2, 3}) != 24 {
		t.Errorf("ByteSizeOf([2,3]) = %d, want 24", ByteSizeOf([]int{2, 3}))
	}
	if ByteSizeOf(nil) != 4 {
		t.Errorf("scalar size = %d, want 4", ByteSizeOf(nil))
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{OpMatMul, OpSoftmax, OpLayerNorm, OpElementwise, OpTranspose, OpReduce}
	for _, k := range kinds {
		if k.String() == "" {
			t.Error("empty op kind name")
		}
	}
}

func TestCompileEmptyGraphErrors(t *testing.T) {
	if _, err := Compile(&Graph{}, nil); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestFusionChains(t *testing.T) {
	g := smallGraph()
	st, err := Compile(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 4 {
		t.Errorf("ops = %d", st.Ops)
	}
	// Two elementwise ops fuse into the matmul.
	if st.FusedOps != 2 {
		t.Errorf("fused = %d, want 2", st.FusedOps)
	}
	if st.FusionGroups != 1 {
		t.Errorf("groups = %d, want 1", st.FusionGroups)
	}
	// Both fused ops must point at the matmul, not at each other.
	if g.Ops[2].FusedInto != 0 {
		t.Errorf("chained fusion leader = %d, want 0", g.Ops[2].FusedInto)
	}
	if st.Buffers != 2 { // matmul + softmax
		t.Errorf("buffers = %d, want 2", st.Buffers)
	}
}

func TestCompileEmitsTableVSymbols(t *testing.T) {
	var acc metering.Accumulator
	if _, err := Compile(smallGraph(), &acc); err != nil {
		t.Fatal(err)
	}
	by := acc.ByFunc()
	for _, fn := range []string{"xla::ShapeUtil::ByteSizeOf", "std::vector::_M_fill_insert", "xla_compile_passes"} {
		if by[fn].Instructions == 0 {
			t.Errorf("missing compile event %s", fn)
		}
	}
	if by["std::vector::_M_fill_insert"].Allocated == 0 {
		t.Error("buffer assignment must report allocation (page-fault source)")
	}
	if by["xla::ShapeUtil::ByteSizeOf"].Pattern != metering.Random {
		t.Error("shape walks must be random-access")
	}
}

func TestInferenceGraphScale(t *testing.T) {
	pf := pairformer.DefaultConfig()
	df := diffusion.DefaultConfig()
	g := BuildInferenceGraph(pf, df, 484, 10)
	if len(g.Ops) < 10000 {
		t.Errorf("AF3-scale graph has only %d ops", len(g.Ops))
	}
	st, err := Compile(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Live-range peak must be far below the naive sum and above zero.
	if st.PeakBytes <= 0 {
		t.Error("peak bytes not positive")
	}
	if st.PeakBytes > 8<<30 {
		t.Errorf("peak bytes %d implausibly large — liveness pass broken?", st.PeakBytes)
	}
	// Compile-cost contrast of Figure 8: desktop-rate ~10 s.
	desktopSeconds := float64(st.Instructions) / (5.6 * 3.2 * 1e9)
	if desktopSeconds < 4 || desktopSeconds > 25 {
		t.Errorf("desktop-rate compile = %.1fs, want ~10s", desktopSeconds)
	}
}

func TestGraphGrowsWithRecycles(t *testing.T) {
	pf := pairformer.DefaultConfig()
	pf.Blocks = 2
	df := diffusion.DefaultConfig()
	df.GlobalLayers, df.LocalEncLayers, df.LocalDecLayers = 2, 1, 1
	g1 := BuildInferenceGraph(pf, df, 32, 1)
	g3 := BuildInferenceGraph(pf, df, 32, 3)
	if len(g3.Ops) <= len(g1.Ops) {
		t.Error("recycles must grow the graph")
	}
}

func TestCompileDeterministic(t *testing.T) {
	pf := pairformer.DefaultConfig()
	pf.Blocks = 3
	df := diffusion.DefaultConfig()
	a, _ := Compile(BuildInferenceGraph(pf, df, 64, 2), nil)
	b, _ := Compile(BuildInferenceGraph(pf, df, 64, 2), nil)
	if a != b {
		t.Errorf("compile stats differ across identical builds:\n%+v\n%+v", a, b)
	}
}
