package resilience

import (
	"errors"
	"testing"
	"time"

	"afsysbench/internal/rng"
)

// fakeClock is a hand-advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock, *[]string) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Threshold: threshold,
		Cooldown:  cooldown,
		Now:       clk.now,
		OnTransition: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	})
	return b, clk, &transitions
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _, transitions := newTestBreaker(3, 10*time.Second)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker must be closed and allowing")
	}
	fault := errors.New("shard dark")
	b.Failure(fault)
	b.Failure(fault)
	if b.State() != BreakerClosed {
		t.Fatalf("tripped below threshold: %v", b.State())
	}
	// A success resets the streak.
	b.Success()
	b.Failure(fault)
	b.Failure(fault)
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the failure streak")
	}
	b.Failure(fault)
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed traffic inside the cooldown")
	}
	if len(*transitions) != 1 || (*transitions)[0] != "closed>open" {
		t.Fatalf("transitions = %v", *transitions)
	}
	snap := b.Snapshot()
	if snap.State != "open" || snap.Trips != 1 || snap.Rejected != 1 || snap.LastError == "" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk, transitions := newTestBreaker(2, 10*time.Second)
	fault := errors.New("shard dark")
	b.Failure(fault)
	b.Failure(fault)

	clk.advance(9 * time.Second)
	if b.Allow() {
		t.Fatal("allowed before the cooldown elapsed")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no probe handed out")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe token: concurrent callers are rejected meanwhile.
	if b.Allow() {
		t.Fatal("second probe handed out while one is in flight")
	}

	// Failed probe re-opens and restarts the cooldown.
	b.Failure(fault)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed traffic immediately")
	}

	// Successful probe closes.
	clk.advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	want := []string{"closed>open", "open>half-open", "half-open>open", "open>half-open", "half-open>closed"}
	if len(*transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", *transitions, want)
	}
	for i := range want {
		if (*transitions)[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, (*transitions)[i], want[i])
		}
	}
}

func TestBreakerProbeAbortReturnsToken(t *testing.T) {
	b, clk, _ := newTestBreaker(1, time.Second)
	b.Failure(errors.New("dark"))
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after cooldown")
	}
	// The probing request died for an unrelated reason: the token goes
	// back and the next caller probes instead.
	b.ProbeAbort()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after abort = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("aborted probe token was not reissued")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestParseChainFaults(t *testing.T) {
	fs, err := ParseFaults("chainfault:B:2,chainfault:*")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0].Class != ChainTransient || fs[0].Chain != "B" || fs[0].Count != 2 {
		t.Fatalf("parsed %+v", fs)
	}
	if fs.String() != "chainfault:B:2,chainfault:*:1" {
		t.Fatalf("round-trip = %q", fs.String())
	}
	if _, err := ParseFaults("chainfault::3"); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := ParseFaults("chainfault:B:0"); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestInjectorChainFault(t *testing.T) {
	fs, err := ParseFaults("chainfault:B:2")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(fs, rng.New(1))
	if !inj.HasChainFaults() {
		t.Fatal("HasChainFaults = false")
	}
	if err := inj.ChainFault("A", 1); err != nil {
		t.Fatalf("untargeted chain faulted: %v", err)
	}
	e1 := inj.ChainFault("B", 1)
	e2 := inj.ChainFault("B", 2)
	if e1 == nil || e2 == nil {
		t.Fatal("budgeted chain attempts did not fault")
	}
	if !IsTransient(e1) {
		t.Fatalf("chain fault not transient: %v", e1)
	}
	if err := inj.ChainFault("B", 3); err != nil {
		t.Fatalf("budget exhausted but still faulting: %v", err)
	}

	// The wildcard instantiates per chain on first touch.
	fs, _ = ParseFaults("chainfault:*:1")
	inj = NewInjector(fs, rng.New(1))
	if inj.ChainFault("A", 1) == nil || inj.ChainFault("B", 1) == nil {
		t.Fatal("wildcard did not fault each chain's first attempt")
	}
	if inj.ChainFault("A", 2) != nil || inj.ChainFault("B", 2) != nil {
		t.Fatal("wildcard budget not consumed per chain")
	}

	// A nil injector injects nothing.
	var none *Injector
	if none.ChainFault("A", 1) != nil || none.HasChainFaults() {
		t.Fatal("nil injector injected a chain fault")
	}
}
