package resilience

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"afsysbench/internal/rng"
)

// Fault is one parsed fault directive.
type Fault struct {
	Class Class
	// DB targets a database by name; "*" targets every database
	// (Transient/Permanent only).
	DB string
	// Chain targets an MSA chain by id; "*" targets every chain
	// (ChainTransient only).
	Chain string
	// Op targets a disk-tier operation — "write", "fsync", "rename",
	// "flip", "read" — or "*" for any (DiskFault only).
	Op string
	// Count is the number of failing attempts per database
	// (Transient) or per chain (ChainTransient).
	Count int
	// Seconds is the stall duration (Stall).
	Seconds float64
	// GiB is the anonymous-memory spike size (MemSpike).
	GiB float64
	// AfterDB is the 0-based ordinal of the streamed database after which
	// the spike fires (MemSpike, default 0: after the first).
	AfterDB int
}

// Faults is a parsed fault specification.
type Faults []Fault

// ParseFaults parses a comma-separated fault spec, the -faults flag
// grammar:
//
//	transient:<db>[:count]   first count read attempts of db fail (default 1)
//	permanent:<db>           every read of db fails
//	stall:<seconds>          one MSA worker shard stalls for seconds
//	memspike:<gib>[:after]   anonymous memory grows by gib GiB after the
//	                         after-th streamed database (default 0)
//	chainfault:<chain>[:count]
//	                         first count search attempts of the MSA chain
//	                         fail (default 1); a checkpointed stage retry
//	                         re-runs only the faulted chain
//	diskfault:<op>[:count]   first count disk-tier operations of kind op
//	                         fail (default 1); op is write (torn write),
//	                         fsync (sync error), rename (crash between
//	                         temp-write and rename), flip (silent
//	                         post-write bit flip), or read (I/O error)
//
// <db> is a database name, <chain> a chain id, and <op> a disk-tier
// operation; all accept "*" for all. An empty spec parses to nil.
func ParseFaults(spec string) (Faults, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out Faults
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		switch fields[0] {
		case "transient":
			if len(fields) < 2 || len(fields) > 3 || fields[1] == "" {
				return nil, fmt.Errorf("resilience: bad fault %q: want transient:<db>[:count]", part)
			}
			f := Fault{Class: Transient, DB: fields[1], Count: 1}
			if len(fields) == 3 {
				n, err := strconv.Atoi(fields[2])
				if err != nil || n < 1 {
					return nil, fmt.Errorf("resilience: bad transient count in %q", part)
				}
				f.Count = n
			}
			out = append(out, f)
		case "permanent":
			if len(fields) != 2 || fields[1] == "" {
				return nil, fmt.Errorf("resilience: bad fault %q: want permanent:<db>", part)
			}
			out = append(out, Fault{Class: Permanent, DB: fields[1]})
		case "stall":
			if len(fields) != 2 {
				return nil, fmt.Errorf("resilience: bad fault %q: want stall:<seconds>", part)
			}
			sec, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || sec <= 0 {
				return nil, fmt.Errorf("resilience: bad stall seconds in %q", part)
			}
			out = append(out, Fault{Class: Stall, Seconds: sec})
		case "chainfault":
			if len(fields) < 2 || len(fields) > 3 || fields[1] == "" {
				return nil, fmt.Errorf("resilience: bad fault %q: want chainfault:<chain>[:count]", part)
			}
			f := Fault{Class: ChainTransient, Chain: fields[1], Count: 1}
			if len(fields) == 3 {
				n, err := strconv.Atoi(fields[2])
				if err != nil || n < 1 {
					return nil, fmt.Errorf("resilience: bad chainfault count in %q", part)
				}
				f.Count = n
			}
			out = append(out, f)
		case "diskfault":
			if len(fields) < 2 || len(fields) > 3 || !validDiskOp(fields[1]) {
				return nil, fmt.Errorf("resilience: bad fault %q: want diskfault:<write|fsync|rename|flip|read|*>[:count]", part)
			}
			f := Fault{Class: DiskFault, Op: fields[1], Count: 1}
			if len(fields) == 3 {
				n, err := strconv.Atoi(fields[2])
				if err != nil || n < 1 {
					return nil, fmt.Errorf("resilience: bad diskfault count in %q", part)
				}
				f.Count = n
			}
			out = append(out, f)
		case "memspike":
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("resilience: bad fault %q: want memspike:<gib>[:after]", part)
			}
			gib, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || gib <= 0 {
				return nil, fmt.Errorf("resilience: bad memspike size in %q", part)
			}
			f := Fault{Class: MemSpike, GiB: gib}
			if len(fields) == 3 {
				n, err := strconv.Atoi(fields[2])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("resilience: bad memspike position in %q", part)
				}
				f.AfterDB = n
			}
			out = append(out, f)
		default:
			return nil, fmt.Errorf("resilience: unknown fault class %q in %q", fields[0], part)
		}
	}
	return out, nil
}

// String renders the spec back in flag grammar.
func (fs Faults) String() string {
	var parts []string
	for _, f := range fs {
		switch f.Class {
		case Transient:
			parts = append(parts, fmt.Sprintf("transient:%s:%d", f.DB, f.Count))
		case Permanent:
			parts = append(parts, "permanent:"+f.DB)
		case Stall:
			parts = append(parts, fmt.Sprintf("stall:%g", f.Seconds))
		case MemSpike:
			parts = append(parts, fmt.Sprintf("memspike:%g:%d", f.GiB, f.AfterDB))
		case ChainTransient:
			parts = append(parts, fmt.Sprintf("chainfault:%s:%d", f.Chain, f.Count))
		case DiskFault:
			parts = append(parts, fmt.Sprintf("diskfault:%s:%d", f.Op, f.Count))
		}
	}
	return strings.Join(parts, ",")
}

// validDiskOp reports whether op names a disk-tier operation the injector
// understands.
func validDiskOp(op string) bool {
	switch op {
	case "write", "fsync", "rename", "flip", "read", "*":
		return true
	}
	return false
}

// Injector turns a fault spec into per-attempt decisions. All state is
// consumed in the orchestrator's single-threaded control path, and every
// stochastic draw comes from the seeded source, so decisions are identical
// at any worker count. An Injector serves one pipeline run; a nil *Injector
// injects nothing.
type Injector struct {
	src *rng.Source
	// remaining transient failures per database; the "*" entry is the
	// template lazily instantiated per database on first touch.
	transient map[string]int
	wildcard  int
	permanent map[string]bool
	allPerm   bool
	stall     float64
	spikeGiB  float64
	spikeAt   int

	// Chain-scoped transient budgets. Unlike the database state above —
	// consumed on the orchestrator's single-threaded control path — chain
	// faults are consulted from chain attempts that may race (a hedged
	// backup runs concurrently with its primary), so they carry a lock.
	chainMu       sync.Mutex
	chainRem      map[string]int
	chainWildcard int

	// Disk-op fault budgets. Disk-tier operations race across serving
	// workers (every MSA worker may spill or read through concurrently),
	// so these carry their own lock.
	diskMu       sync.Mutex
	diskRem      map[string]int
	diskWildcard int
}

// NewInjector builds the injector for one run. src seeds the backoff
// jitter; it must derive from (suite seed, sample, run index) so repeat
// runs draw fresh-but-reproducible jitter.
func NewInjector(fs Faults, src *rng.Source) *Injector {
	if len(fs) == 0 {
		return nil
	}
	inj := &Injector{
		src:       src,
		transient: make(map[string]int),
		permanent: make(map[string]bool),
		chainRem:  make(map[string]int),
		diskRem:   make(map[string]int),
		spikeAt:   -1,
	}
	for _, f := range fs {
		switch f.Class {
		case DiskFault:
			if f.Op == "*" {
				inj.diskWildcard += f.Count
			} else {
				inj.diskRem[f.Op] += f.Count
			}
		case ChainTransient:
			if f.Chain == "*" {
				inj.chainWildcard += f.Count
			} else {
				inj.chainRem[f.Chain] += f.Count
			}
		case Transient:
			if f.DB == "*" {
				inj.wildcard += f.Count
			} else {
				inj.transient[f.DB] += f.Count
			}
		case Permanent:
			if f.DB == "*" {
				inj.allPerm = true
			} else {
				inj.permanent[f.DB] = true
			}
		case Stall:
			inj.stall += f.Seconds
		case MemSpike:
			inj.spikeGiB += f.GiB
			inj.spikeAt = f.AfterDB
		}
	}
	return inj
}

// ReadFault decides the fate of one read attempt (1-based) on a database.
// It returns nil for success, or a *FaultError. Transient budgets are
// consumed per call; permanent faults never clear.
func (i *Injector) ReadFault(db string, attempt int) error {
	if i == nil {
		return nil
	}
	if i.allPerm || i.permanent[db] {
		return &FaultError{Class: Permanent, DB: db, Attempt: attempt}
	}
	rem, seen := i.transient[db]
	if !seen && i.wildcard > 0 {
		rem = i.wildcard
		i.transient[db] = rem
	}
	if rem > 0 {
		i.transient[db] = rem - 1
		return &FaultError{Class: Transient, DB: db, Attempt: attempt}
	}
	return nil
}

// ChainFault decides the fate of one MSA chain search attempt (1-based;
// the hedge backup counts as a further attempt). It returns nil for
// success or a *FaultError with class ChainTransient. Budgets are
// consumed per call and persist for the injector's lifetime, so a
// checkpointed stage retry that re-runs only the faulted chain finds the
// budget spent and succeeds. Safe for concurrent use (hedged attempts
// race).
func (i *Injector) ChainFault(chain string, attempt int) error {
	if i == nil {
		return nil
	}
	i.chainMu.Lock()
	defer i.chainMu.Unlock()
	rem, seen := i.chainRem[chain]
	if !seen && i.chainWildcard > 0 {
		rem = i.chainWildcard
		i.chainRem[chain] = rem
	}
	if rem > 0 {
		i.chainRem[chain] = rem - 1
		return &FaultError{Class: ChainTransient, DB: "chain/" + chain, Attempt: attempt}
	}
	return nil
}

// DiskFault decides the fate of one disk-tier operation of kind op
// ("write", "fsync", "rename", "flip", "read"). It returns nil for success
// or a *FaultError with class DiskFault; the disk store interprets the
// fault per op (a torn write, a skipped rename, a silent bit flip, ...).
// Budgets are consumed per call and persist for the injector's lifetime,
// so retries eventually succeed once the budget is spent. Safe for
// concurrent use (serving workers hit the disk tier in parallel).
func (i *Injector) DiskFault(op string) error {
	if i == nil {
		return nil
	}
	i.diskMu.Lock()
	defer i.diskMu.Unlock()
	rem, seen := i.diskRem[op]
	if !seen && i.diskWildcard > 0 {
		rem = i.diskWildcard
		i.diskRem[op] = rem
	}
	if rem > 0 {
		i.diskRem[op] = rem - 1
		return &FaultError{Class: DiskFault, DB: "disk/" + op}
	}
	return nil
}

// HasDiskFaults reports whether the spec carries any disk-op faults.
func (i *Injector) HasDiskFaults() bool {
	if i == nil {
		return false
	}
	i.diskMu.Lock()
	defer i.diskMu.Unlock()
	return i.diskWildcard > 0 || len(i.diskRem) > 0
}

// HasChainFaults reports whether the spec carries any chain-scoped
// faults (the serving layer uses it to decide if stage retries are worth
// arming).
func (i *Injector) HasChainFaults() bool {
	if i == nil {
		return false
	}
	i.chainMu.Lock()
	defer i.chainMu.Unlock()
	return i.chainWildcard > 0 || len(i.chainRem) > 0
}

// StallSeconds returns the injected worker-shard stall (0 if none). It is
// a pure query: the degradation ladder may re-plan the MSA stage several
// times and the stall applies to each plan identically.
func (i *Injector) StallSeconds() float64 {
	if i == nil {
		return 0
	}
	return i.stall
}

// MemSpike returns the anonymous-memory spike to apply after streaming the
// database with the given 0-based ordinal (0 if none fires there). Pure
// query, like StallSeconds.
func (i *Injector) MemSpike(dbIndex int) int64 {
	if i == nil || i.spikeGiB <= 0 || dbIndex != i.spikeAt {
		return 0
	}
	return int64(i.spikeGiB * float64(1<<30))
}

// BackoffSource returns a child source for one database's retry jitter,
// keyed by the database name so the draw order is independent of which
// other databases faulted first. A nil Injector (reads failed by someone
// else's hook) still yields a deterministic source.
func (i *Injector) BackoffSource(db string) *rng.Source {
	var key uint64
	for _, c := range []byte(db) {
		key = key*131 + uint64(c)
	}
	if i == nil {
		return rng.New(0x5E11).Split(key)
	}
	return i.src.Split(key)
}
