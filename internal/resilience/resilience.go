// Package resilience is the fault model and degradation policy of the
// end-to-end pipeline. The paper's headline failure modes are operational,
// not algorithmic: the MSA phase dominates wall time, the desktop's NVMe
// saturates during database streaming, and stock AF3 simply dies in the OOM
// killer when the nhmmer stage balloons. This package supplies the pieces
// the orchestrator needs to survive those: a deterministic fault-injection
// layer (seeded, no wall clock), a capped-exponential retry policy with
// jittered backoff, per-stage time budgets, and a typed event taxonomy that
// records every retry and every rung of the degradation ladder
// (full profile → reduced database set → single-sequence inference).
//
// Determinism is a hard requirement inherited from the rest of the suite:
// every decision — which read attempt fails, how long a backoff waits —
// derives from the run's seed, the sample name, and the attempt ordinal,
// never from wall-clock time or goroutine scheduling. The same seed and
// fault spec therefore produce byte-identical retry counts and degradation
// events at any worker count.
package resilience

import (
	"errors"
	"fmt"

	"afsysbench/internal/rng"
)

// Class is the failure class of an injected fault.
type Class int

const (
	// Transient faults fail a bounded number of read attempts and then
	// clear (controller reset, momentary link drop). The retry policy is
	// expected to absorb them.
	Transient Class = iota
	// Permanent faults never clear (dead namespace, corrupt database);
	// retrying is futile and the orchestrator must degrade around them.
	Permanent
	// Stall delays one worker shard of the MSA scan without failing it
	// (a straggler thread descheduled behind a noisy neighbor).
	Stall
	// MemSpike inflates the application's anonymous memory mid-stream,
	// squeezing the page cache and — past the machine's capacity — tripping
	// the memory ceiling the paper's RNA-1335 run died on.
	MemSpike
	// ChainTransient fails an MSA chain's search transiently: the first
	// Count attempts of each matching chain error out, exercising the
	// serving layer's checkpointed stage retries (only the faulted chain
	// re-runs; completed chains replay from the checkpoint).
	ChainTransient
	// DiskFault fails operations of the persistent cache tier: torn writes,
	// fsync errors, crashes between temp-write and rename, silent post-write
	// bit flips, and read I/O errors. The disk store retries transient ops,
	// detects silent corruption by checksum, and trips its breaker into
	// memory-only mode when the disk stays broken.
	DiskFault
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Stall:
		return "stall"
	case MemSpike:
		return "memspike"
	case ChainTransient:
		return "chainfault"
	case DiskFault:
		return "diskfault"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// FaultError is the error surfaced by an injected read failure.
type FaultError struct {
	Class   Class
	DB      string
	Attempt int
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("resilience: injected %s fault on %s (attempt %d)", e.Class, e.DB, e.Attempt)
}

// IsTransient reports whether err is an injected transient fault —
// a read fault that clears after a bounded number of attempts, a
// chain-scoped transient, or a disk-op fault (all are worth retrying).
func IsTransient(err error) bool {
	var fe *FaultError
	if !errors.As(err, &fe) {
		return false
	}
	return fe.Class == Transient || fe.Class == ChainTransient || fe.Class == DiskFault
}

// IsPermanent reports whether err is an injected permanent fault.
func IsPermanent(err error) bool {
	fe, ok := err.(*FaultError)
	return ok && fe.Class == Permanent
}

// ErrDBUnavailable is recorded (and wrapped into events) when a database
// stays unreadable after the retry budget: permanently failed, or transient
// faults outlasting RetryPolicy.MaxAttempts.
type ErrDBUnavailable struct {
	DB       string
	Attempts int
	Cause    error
}

// Error implements error.
func (e ErrDBUnavailable) Error() string {
	return fmt.Sprintf("resilience: database %s unavailable after %d attempts: %v", e.DB, e.Attempts, e.Cause)
}

// Unwrap exposes the final attempt's fault.
func (e ErrDBUnavailable) Unwrap() error { return e.Cause }

// ErrPanic is the failure recorded when a serving worker recovers a
// per-job panic: the job is failed with this error (class "panic") while
// the worker goroutine survives, keeping the pool at full strength. Value
// is the rendered panic payload.
type ErrPanic struct {
	// Stage is where the panic was recovered ("msa", "handoff",
	// "inference").
	Stage string
	// Value is the rendered recover() payload.
	Value string
}

// Error implements error.
func (e ErrPanic) Error() string {
	return fmt.Sprintf("resilience: recovered panic in %s stage: %s", e.Stage, e.Value)
}

// IsPanic reports whether err is a recovered worker panic.
func IsPanic(err error) bool {
	var ep ErrPanic
	return errors.As(err, &ep)
}

// ShedReason classifies why admission control rejected a request. The
// single "overloaded" bucket of the pre-QoS serving tier told operators
// nothing actionable; the three classes here separate "the system is full"
// (queue-full — add capacity or wait) from "you are over your quota"
// (rate-limited — the tenant's token bucket was empty) from "the system is
// browning out and you were chosen" (brownout — over-quota tenants are
// shed first when global occupancy crosses the top ladder rung).
type ShedReason int

const (
	// ShedQueueFull: the shared admission queue (or the modeled backlog
	// bound) had no room. The zero value, so pre-QoS shed sites keep their
	// historical meaning.
	ShedQueueFull ShedReason = iota
	// ShedRateLimited: the tenant's admission token bucket could not cover
	// the request's cost — the tenant exceeded its provisioned rate.
	ShedRateLimited
	// ShedBrownout: global occupancy crossed the shed rung of the brownout
	// ladder and the tenant was over its fair share, so it absorbed the
	// rejection while in-quota tenants kept being admitted.
	ShedBrownout
)

// String implements fmt.Stringer.
func (r ShedReason) String() string {
	switch r {
	case ShedQueueFull:
		return "queue-full"
	case ShedRateLimited:
		return "rate-limited"
	case ShedBrownout:
		return "brownout"
	default:
		return fmt.Sprintf("ShedReason(%d)", int(r))
	}
}

// ErrOverloaded is the admission-control shed error: the request was
// rejected deterministically at the door instead of growing an unbounded
// backlog — a full serving queue, an empty tenant token bucket, or a
// brownout decision. Callers (HTTP 503, load generators) treat it as a
// distinct outcome class from failures — the request was never started.
type ErrOverloaded struct {
	// Queued is the queue occupancy observed at rejection time.
	Queued int
	// Capacity is the configured queue bound.
	Capacity int
	// Reason is the shed class; the zero value (queue-full) preserves the
	// pre-QoS meaning of the error.
	Reason ShedReason
	// Tenant is the shed tenant ("" for untenanted requests).
	Tenant string
}

// Error implements error.
func (e ErrOverloaded) Error() string {
	msg := fmt.Sprintf("resilience: overloaded (%s)", e.Reason)
	if e.Tenant != "" {
		msg += " tenant " + e.Tenant
	}
	return msg + fmt.Sprintf(": admission queue %d/%d", e.Queued, e.Capacity)
}

// IsOverloaded reports whether err is an admission-control rejection.
func IsOverloaded(err error) bool {
	var eo ErrOverloaded
	return errors.As(err, &eo)
}

// ShedReasonOf extracts the shed class from an admission rejection
// (queue-full for non-overload errors, matching the zero value).
func ShedReasonOf(err error) ShedReason {
	var eo ErrOverloaded
	if errors.As(err, &eo) {
		return eo.Reason
	}
	return ShedQueueFull
}

// ErrStageTimeout is returned when a pipeline stage cannot complete inside
// its deadline: the wall-clock context expired, or a modeled stage budget
// was exceeded by a stage that has no degradation path (inference).
// MSA-budget exhaustion never raises this — the orchestrator degrades the
// MSA profile instead.
type ErrStageTimeout struct {
	Stage string
	// BudgetSeconds is the modeled budget that was exceeded (0 when the
	// cause is a wall-clock context deadline/cancellation).
	BudgetSeconds float64
	// NeedSeconds is the modeled time the stage wanted (0 for ctx causes).
	NeedSeconds float64
	// Cause is the context error, if the deadline was wall-clock.
	Cause error
}

// Error implements error.
func (e ErrStageTimeout) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("resilience: stage %s aborted: %v", e.Stage, e.Cause)
	}
	return fmt.Sprintf("resilience: stage %s needs %.1fs, budget %.1fs", e.Stage, e.NeedSeconds, e.BudgetSeconds)
}

// Unwrap exposes the context error so errors.Is(err, context.Canceled) and
// friends keep working through the typed wrapper.
func (e ErrStageTimeout) Unwrap() error { return e.Cause }

// StageBudget caps modeled per-stage time (simulated seconds, not wall
// clock — so budget decisions are deterministic). Zero means unlimited.
type StageBudget struct {
	// MSASeconds bounds the MSA phase. Exhaustion triggers the degradation
	// ladder: drop the most expensive database, re-plan, and ultimately
	// fall back to single-sequence inference.
	MSASeconds float64
	// InferenceSeconds bounds the inference phase. Inference has no
	// degradation path, so exceeding it returns ErrStageTimeout.
	InferenceSeconds float64
}

// RetryPolicy is capped exponential backoff with deterministic jitter.
type RetryPolicy struct {
	// MaxAttempts bounds read attempts per database (default 4).
	MaxAttempts int
	// BaseSeconds is the first backoff delay (default 0.5).
	BaseSeconds float64
	// MaxSeconds caps one backoff delay (default 8).
	MaxSeconds float64
	// JitterFrac is the ± relative jitter on each delay (default 0.2).
	JitterFrac float64
}

// WithDefaults fills zero fields with the standard policy.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseSeconds <= 0 {
		p.BaseSeconds = 0.5
	}
	if p.MaxSeconds <= 0 {
		p.MaxSeconds = 8
	}
	if p.JitterFrac <= 0 {
		p.JitterFrac = 0.2
	}
	return p
}

// Backoff returns the delay before retry number attempt (1-based): the
// capped exponential base*2^(attempt-1), jittered by the deterministic
// source so concurrent retries decorrelate without wall-clock randomness.
func (p RetryPolicy) Backoff(attempt int, src *rng.Source) float64 {
	p = p.WithDefaults()
	d := p.BaseSeconds
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxSeconds {
			d = p.MaxSeconds
			break
		}
	}
	if d > p.MaxSeconds {
		d = p.MaxSeconds
	}
	return d * (1 + p.JitterFrac*(2*src.Float64()-1))
}

// Kind labels one resilience event.
type Kind int

const (
	// KindRetry: a read attempt failed transiently and was retried.
	KindRetry Kind = iota
	// KindDropDB: a database was dropped from the MSA profile (permanent
	// fault or retry budget exhausted).
	KindDropDB
	// KindBudgetDrop: a database was dropped to fit the MSA stage budget.
	KindBudgetDrop
	// KindBudgetOverrun: the stage still exceeds its budget with nothing
	// left to shed; the run proceeds and records the overrun.
	KindBudgetOverrun
	// KindStall: a worker shard stalled, extending the scan's critical path.
	KindStall
	// KindMemSpike: anonymous memory spiked mid-stream, shrinking the page
	// cache (survivable: later passes re-read from disk).
	KindMemSpike
	// KindMemCeiling: the spike exceeded the machine's memory; the deep MSA
	// was abandoned instead of letting the OOM killer decide.
	KindMemCeiling
	// KindSingleSequence: the terminal rung — inference ran without an MSA.
	KindSingleSequence
	// KindBreakerSkip: a database was excluded before opening because its
	// circuit breaker was open — the request took the degradation ladder
	// immediately instead of burning its deadline on doomed retries.
	KindBreakerSkip
	// KindChainRetry: an MSA stage attempt failed on a chain and was
	// retried from its checkpoint (completed chains replayed, only the
	// failed chain re-run).
	KindChainRetry
	// KindBrownout: the request ran degraded by the multi-tenant brownout
	// ladder — its tenant was over quota while global occupancy was high,
	// so hedging was disabled, its batch bucket capped, or its MSA budget
	// tightened onto the DB-drop ladder. The Detail names the rung.
	KindBrownout
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRetry:
		return "retry"
	case KindDropDB:
		return "drop-db"
	case KindBudgetDrop:
		return "budget-drop"
	case KindBudgetOverrun:
		return "budget-overrun"
	case KindStall:
		return "stall"
	case KindMemSpike:
		return "mem-spike"
	case KindMemCeiling:
		return "mem-ceiling"
	case KindSingleSequence:
		return "single-sequence"
	case KindBreakerSkip:
		return "breaker-skip"
	case KindChainRetry:
		return "chain-retry"
	case KindBrownout:
		return "brownout"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded resilience action. Fields are plain values (the
// cause is pre-rendered to a string) so the event stream compares and
// prints byte-identically across runs.
type Event struct {
	Stage   string // "msa", "stream", "inference"
	Kind    Kind
	DB      string  // database involved ("" when not database-scoped)
	Seconds float64 // backoff/stall seconds where relevant
	Detail  string
}

// String renders the event for logs and the CLI report.
func (e Event) String() string {
	s := fmt.Sprintf("%-7s %-15s", e.Stage, e.Kind)
	if e.DB != "" {
		s += " " + e.DB
	}
	if e.Seconds > 0 {
		s += fmt.Sprintf(" (%.2fs)", e.Seconds)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Report is the retry/latency/degradation accounting of one pipeline run.
type Report struct {
	// Retries counts transient read attempts that were retried.
	Retries int
	// RetrySeconds is the summed backoff wait, charged to the stage's wall
	// time (backoff does not overlap compute or streaming).
	RetrySeconds float64
	// DroppedDBs lists databases removed from the MSA profile, in drop
	// order.
	DroppedDBs []string
	// SingleSequence reports the terminal fallback: inference ran with no
	// MSA (alignment depth 1).
	SingleSequence bool
	// Degraded reports whether any ladder rung was taken (dropped database
	// or single-sequence fallback). Pure retries do not count as
	// degradation.
	Degraded bool
	// Events is the ordered action log.
	Events []Event
}

// Record appends an event.
func (r *Report) Record(e Event) { r.Events = append(r.Events, e) }

// String summarizes the report in one line.
func (r *Report) String() string {
	return fmt.Sprintf("retries=%d retry_wait=%.2fs dropped=%d single_sequence=%v degraded=%v",
		r.Retries, r.RetrySeconds, len(r.DroppedDBs), r.SingleSequence, r.Degraded)
}
