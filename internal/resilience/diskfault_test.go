package resilience

import (
	"testing"

	"afsysbench/internal/rng"
)

func TestParseDiskFaults(t *testing.T) {
	fs, err := ParseFaults("diskfault:write:2,diskfault:flip,diskfault:*:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 || fs[0].Class != DiskFault || fs[0].Op != "write" || fs[0].Count != 2 {
		t.Fatalf("parsed %+v", fs)
	}
	if fs[1].Op != "flip" || fs[1].Count != 1 {
		t.Fatalf("default count: %+v", fs[1])
	}
	if fs.String() != "diskfault:write:2,diskfault:flip:1,diskfault:*:3" {
		t.Fatalf("round-trip = %q", fs.String())
	}
	for _, bad := range []string{"diskfault:", "diskfault:chmod", "diskfault:write:0", "diskfault:write:1:2"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestInjectorDiskFault(t *testing.T) {
	fs, err := ParseFaults("diskfault:fsync:2")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(fs, rng.New(1))
	if !inj.HasDiskFaults() {
		t.Fatal("HasDiskFaults = false")
	}
	if err := inj.DiskFault("write"); err != nil {
		t.Fatalf("untargeted op faulted: %v", err)
	}
	e1 := inj.DiskFault("fsync")
	e2 := inj.DiskFault("fsync")
	if e1 == nil || e2 == nil {
		t.Fatal("budgeted fsync ops did not fault")
	}
	if !IsTransient(e1) {
		t.Fatalf("disk fault not transient: %v", e1)
	}
	if err := inj.DiskFault("fsync"); err != nil {
		t.Fatalf("budget exhausted but still faulting: %v", err)
	}

	// The wildcard instantiates per op on first touch.
	fs, _ = ParseFaults("diskfault:*:1")
	inj = NewInjector(fs, rng.New(1))
	if inj.DiskFault("write") == nil || inj.DiskFault("read") == nil {
		t.Fatal("wildcard did not fault each op's first use")
	}
	if inj.DiskFault("write") != nil || inj.DiskFault("read") != nil {
		t.Fatal("wildcard budget not consumed per op")
	}

	// A nil injector injects nothing.
	var none *Injector
	if none.DiskFault("write") != nil || none.HasDiskFaults() {
		t.Fatal("nil injector injected a disk fault")
	}
}
