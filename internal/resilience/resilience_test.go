package resilience

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"afsysbench/internal/rng"
)

func TestParseFaults(t *testing.T) {
	fs, err := ParseFaults("transient:uniref_s:2, permanent:mgnify_s, stall:30, memspike:16:1")
	if err != nil {
		t.Fatal(err)
	}
	want := Faults{
		{Class: Transient, DB: "uniref_s", Count: 2},
		{Class: Permanent, DB: "mgnify_s"},
		{Class: Stall, Seconds: 30},
		{Class: MemSpike, GiB: 16, AfterDB: 1},
	}
	if !reflect.DeepEqual(fs, want) {
		t.Errorf("parsed %+v, want %+v", fs, want)
	}
	if fs.String() != "transient:uniref_s:2,permanent:mgnify_s,stall:30,memspike:16:1" {
		t.Errorf("round trip = %q", fs.String())
	}
}

func TestParseFaultsDefaultsAndEmpty(t *testing.T) {
	fs, err := ParseFaults("transient:rfam_s")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Count != 1 {
		t.Errorf("default transient count: %+v", fs)
	}
	if fs, err := ParseFaults("  "); err != nil || fs != nil {
		t.Errorf("empty spec: %v %v", fs, err)
	}
}

func TestParseFaultsErrors(t *testing.T) {
	for _, spec := range []string{
		"transient", "transient::3", "transient:db:zero", "transient:db:0",
		"permanent", "permanent:", "stall:abc", "stall:-1", "stall:0",
		"memspike", "memspike:x", "memspike:4:-1", "flood:db",
	} {
		if _, err := ParseFaults(spec); err == nil {
			t.Errorf("spec %q: want error", spec)
		}
	}
}

func TestInjectorTransientBudget(t *testing.T) {
	fs, _ := ParseFaults("transient:uniref_s:2")
	inj := NewInjector(fs, rng.New(1))
	for a := 1; a <= 2; a++ {
		err := inj.ReadFault("uniref_s", a)
		if !IsTransient(err) {
			t.Fatalf("attempt %d: want transient, got %v", a, err)
		}
	}
	if err := inj.ReadFault("uniref_s", 3); err != nil {
		t.Fatalf("attempt 3: want success, got %v", err)
	}
	if err := inj.ReadFault("mgnify_s", 1); err != nil {
		t.Errorf("untargeted db faulted: %v", err)
	}
}

func TestInjectorWildcardAndPermanent(t *testing.T) {
	fs, _ := ParseFaults("transient:*:1,permanent:rfam_s")
	inj := NewInjector(fs, rng.New(1))
	// Each database gets its own copy of the wildcard budget.
	for _, db := range []string{"a", "b"} {
		if !IsTransient(inj.ReadFault(db, 1)) {
			t.Errorf("%s attempt 1: want transient", db)
		}
		if err := inj.ReadFault(db, 2); err != nil {
			t.Errorf("%s attempt 2: want success, got %v", db, err)
		}
	}
	// Permanent never clears, regardless of attempts.
	for a := 1; a <= 5; a++ {
		if !IsPermanent(inj.ReadFault("rfam_s", a)) {
			t.Fatalf("rfam_s attempt %d: want permanent", a)
		}
	}
	// permanent:* overrides everything.
	all := NewInjector(Faults{{Class: Permanent, DB: "*"}}, rng.New(1))
	if !IsPermanent(all.ReadFault("anything", 1)) {
		t.Error("permanent:* did not fault")
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var inj *Injector
	if err := inj.ReadFault("db", 1); err != nil {
		t.Error("nil injector faulted")
	}
	if inj.StallSeconds() != 0 || inj.MemSpike(0) != 0 {
		t.Error("nil injector injected stall/spike")
	}
	if NewInjector(nil, rng.New(1)) != nil {
		t.Error("empty spec should build a nil injector")
	}
}

func TestBackoffCapAndJitterDeterminism(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	// The un-jittered schedule is 0.5, 1, 2, 4, 8, 8, ... — verify the cap
	// holds through the jitter band.
	for attempt := 1; attempt <= 10; attempt++ {
		d := p.Backoff(attempt, rng.New(9))
		if d <= 0 || d > p.MaxSeconds*(1+p.JitterFrac) {
			t.Errorf("attempt %d backoff %.3f out of range", attempt, d)
		}
	}
	// Same source state => identical delay; split keys decorrelate.
	a := RetryPolicy{}.Backoff(3, rng.New(42).Split(7))
	b := RetryPolicy{}.Backoff(3, rng.New(42).Split(7))
	c := RetryPolicy{}.Backoff(3, rng.New(42).Split(8))
	if a != b {
		t.Errorf("same seed gave %v and %v", a, b)
	}
	if a == c {
		t.Error("distinct split keys gave identical jitter")
	}
}

func TestErrorTaxonomy(t *testing.T) {
	fe := &FaultError{Class: Transient, DB: "uniref_s", Attempt: 2}
	if !strings.Contains(fe.Error(), "transient") || !strings.Contains(fe.Error(), "uniref_s") {
		t.Errorf("fault error text: %q", fe.Error())
	}
	unavail := ErrDBUnavailable{DB: "uniref_s", Attempts: 4, Cause: fe}
	if !strings.Contains(unavail.Error(), "after 4 attempts") {
		t.Errorf("unavailable text: %q", unavail.Error())
	}
	if !errors.Is(unavail, error(fe)) {
		t.Error("ErrDBUnavailable does not unwrap its cause")
	}
	to := ErrStageTimeout{Stage: "inference", BudgetSeconds: 10, NeedSeconds: 42.5}
	if !strings.Contains(to.Error(), "inference") || !strings.Contains(to.Error(), "42.5") {
		t.Errorf("timeout text: %q", to.Error())
	}
	ctxTo := ErrStageTimeout{Stage: "msa", Cause: context.DeadlineExceeded}
	if !errors.Is(ctxTo, context.DeadlineExceeded) {
		t.Error("ctx-caused timeout does not unwrap to DeadlineExceeded")
	}
}

func TestEventAndReportRendering(t *testing.T) {
	e := Event{Stage: "stream", Kind: KindRetry, DB: "uniref_s", Seconds: 0.5, Detail: "attempt 1 failed"}
	s := e.String()
	for _, frag := range []string{"stream", "retry", "uniref_s", "0.50s", "attempt 1 failed"} {
		if !strings.Contains(s, frag) {
			t.Errorf("event %q missing %q", s, frag)
		}
	}
	r := &Report{Retries: 2, RetrySeconds: 1.5, DroppedDBs: []string{"x"}, Degraded: true}
	r.Record(e)
	if len(r.Events) != 1 {
		t.Fatal("Record did not append")
	}
	if !strings.Contains(r.String(), "retries=2") || !strings.Contains(r.String(), "degraded=true") {
		t.Errorf("report summary: %q", r.String())
	}
	// Every kind renders a stable, non-placeholder name.
	for k := KindRetry; k <= KindSingleSequence; k++ {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	for c := Transient; c <= MemSpike; c++ {
		if strings.Contains(c.String(), "Class(") {
			t.Errorf("class %d has no name", c)
		}
	}
}

func TestMemSpikePosition(t *testing.T) {
	fs, _ := ParseFaults("memspike:4:2")
	inj := NewInjector(fs, rng.New(1))
	if inj.MemSpike(0) != 0 || inj.MemSpike(1) != 0 {
		t.Error("spike fired early")
	}
	if got := inj.MemSpike(2); got != 4<<30 {
		t.Errorf("spike at 2 = %d, want %d", got, int64(4)<<30)
	}
}
