package resilience

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position. The machine is the
// classic three-state breaker: Closed passes traffic and counts
// consecutive failures; Open rejects everything until the cooldown
// elapses; HalfOpen admits exactly one probe whose outcome decides
// between closing again and re-opening.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe is in flight (or waiting to be taken);
	// its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig tunes one Breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips Closed → Open
	// (default 5).
	Threshold int
	// Cooldown is how long an open breaker rejects before allowing a
	// half-open probe (default 10s).
	Cooldown time.Duration
	// Now supplies the clock; nil means time.Now. Tests inject a
	// deterministic clock so every transition is reproducible.
	Now func() time.Time
	// OnTransition, when set, observes every state change (metering,
	// logging). Called outside the breaker's lock.
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a concurrency-safe circuit breaker. The serving layer keeps
// one per database so a shard that keeps failing is skipped after
// Threshold consecutive failures — the request proceeds down the
// degradation ladder immediately instead of burning its deadline on
// retries that cannot succeed — and is probed again after Cooldown.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while Closed
	openedAt  time.Time // when the breaker last tripped
	probeOut  bool      // HalfOpen: the single probe token is taken
	trips     int       // lifetime Closed/HalfOpen → Open transitions
	rejected  int       // lifetime Allow() == false decisions
	lastError string    // rendered cause of the last failure
}

// NewBreaker builds a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a call may proceed. Open breakers reject until
// the cooldown elapses, then move to HalfOpen and hand out a single probe
// token; HalfOpen rejects everything while the probe is out. A caller
// that receives true MUST report the outcome with Success or Failure (or
// return the token with ProbeAbort if the call never reached the guarded
// resource), or a half-open breaker would wedge.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var transition func()
	allowed := false
	switch b.state {
	case BreakerClosed:
		allowed = true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			transition = b.setStateLocked(BreakerHalfOpen)
			b.probeOut = true
			allowed = true
		}
	case BreakerHalfOpen:
		if !b.probeOut {
			b.probeOut = true
			allowed = true
		}
	}
	if !allowed {
		b.rejected++
	}
	b.mu.Unlock()
	if transition != nil {
		transition()
	}
	return allowed
}

// Success reports a successful call: it resets the failure streak and
// closes a half-open breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	var transition func()
	b.failures = 0
	if b.state == BreakerHalfOpen {
		b.probeOut = false
		transition = b.setStateLocked(BreakerClosed)
	}
	b.mu.Unlock()
	if transition != nil {
		transition()
	}
}

// Failure reports a failed call. Closed breakers trip once the
// consecutive-failure streak reaches the threshold; a failed half-open
// probe re-opens immediately and restarts the cooldown.
func (b *Breaker) Failure(cause error) {
	b.mu.Lock()
	var transition func()
	if cause != nil {
		b.lastError = cause.Error()
	}
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			transition = b.tripLocked()
		}
	case BreakerHalfOpen:
		b.probeOut = false
		transition = b.tripLocked()
	case BreakerOpen:
		// A stale outcome from before the trip; nothing to do.
	}
	b.mu.Unlock()
	if transition != nil {
		transition()
	}
}

// ProbeAbort returns an unused half-open probe token: the caller was
// allowed through but the guarded call never ran (the request failed for
// an unrelated reason), so the probe produced no evidence either way. The
// breaker stays HalfOpen and the next Allow hands the token out again.
func (b *Breaker) ProbeAbort() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probeOut = false
	}
	b.mu.Unlock()
}

// tripLocked moves to Open and stamps the cooldown clock.
func (b *Breaker) tripLocked() func() {
	b.failures = 0
	b.openedAt = b.cfg.Now()
	b.trips++
	return b.setStateLocked(BreakerOpen)
}

// setStateLocked changes state and returns the deferred transition
// callback (run outside the lock).
func (b *Breaker) setStateLocked(to BreakerState) func() {
	from := b.state
	b.state = to
	if b.cfg.OnTransition == nil || from == to {
		return nil
	}
	cb := b.cfg.OnTransition
	return func() { cb(from, to) }
}

// State returns the current state. An Open breaker whose cooldown has
// elapsed still reports Open until the next Allow takes the probe.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSnapshot is a point-in-time view of one breaker for health
// endpoints and chaos reports.
type BreakerSnapshot struct {
	State     string `json:"state"`
	Failures  int    `json:"consecutive_failures,omitempty"`
	Trips     int    `json:"trips,omitempty"`
	Rejected  int    `json:"rejected,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// Snapshot returns the breaker's current counters.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:     b.state.String(),
		Failures:  b.failures,
		Trips:     b.trips,
		Rejected:  b.rejected,
		LastError: b.lastError,
	}
}
