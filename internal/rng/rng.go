// Package rng provides a deterministic, splittable pseudo-random number
// generator used to synthesize every artifact in the benchmark suite
// (sequences, databases, model weights, noise schedules). Determinism is a
// hard requirement: two runs of any experiment must see bit-identical
// synthetic inputs so that simulated-time results are reproducible.
//
// The generator is xoshiro256** (Blackman & Vigna). It is not
// cryptographically secure and must never be used for security purposes.
package rng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New. Source is not safe for concurrent use; use
// Split to derive independent streams for worker goroutines.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed using SplitMix64, which
// guarantees a well-mixed non-zero internal state for any seed value.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent stream labeled by key. Streams derived with
// distinct keys from the same parent are statistically independent, and
// splitting does not advance the parent stream, so adding a new derived
// stream never perturbs existing ones.
func (r *Source) Split(key uint64) *Source {
	// Hash the current state together with the key through SplitMix64 so
	// that (parent, key) fully determines the child.
	mix := func(v uint64) uint64 {
		v += 0x9e3779b97f4a7c15
		v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
		v = (v ^ (v >> 27)) * 0x94d049bb133111eb
		return v ^ (v >> 31)
	}
	h := mix(r.s[0] ^ key)
	h = mix(h ^ r.s[1])
	h = mix(h ^ r.s[2])
	h = mix(h ^ r.s[3])
	return New(h)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + (t >> 32)
	return hi, lo
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choice returns a random index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if weights is empty or sums to a
// non-positive value.
func (r *Source) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: Choice needs positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
