package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with distinct keys produced identical first output")
	}
	// Splitting must not advance the parent.
	p1 := New(7)
	_ = p1.Split(99)
	p2 := New(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(3).Split(10)
	b := New(3).Split(10)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at step %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate %v < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(29)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Choice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice(nil) did not panic")
		}
	}()
	New(1).Choice(nil)
}

func TestMul64AgainstBigProducts(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 1, 0, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplitDisjointFromParent(t *testing.T) {
	f := func(seed, key uint64) bool {
		parent := New(seed)
		child := parent.Split(key)
		// First few outputs should essentially never all coincide.
		matches := 0
		for i := 0; i < 8; i++ {
			if parent.Uint64() == child.Uint64() {
				matches++
			}
		}
		return matches < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
