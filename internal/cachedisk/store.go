// Package cachedisk is the persistent second tier under the serving
// layer's in-memory MSA cache: a crash-safe, content-addressed store of
// per-chain search results. High-throughput screening campaigns (AF_Cache,
// PAPERS.md) re-run identical chain MSAs across complexes and across
// process restarts; the memory LRU only helps within one process, so
// everything evicted — or computed before the last restart — is paid for
// again. This tier makes those results durable without ever risking a
// wrong answer:
//
//   - Entries are single files written crash-safely: temp file → fsync →
//     atomic rename → directory fsync. A reader never observes a partial
//     entry under its final name.
//   - Every entry carries a self-describing length-prefixed header (magic,
//     format version, codec, key, payload length, sha256 of the payload).
//     Reads re-verify the checksum, so a bit-flipped or truncated file is
//     detected — and dropped — rather than decoded.
//   - An append-only, fsync'd index journal lists live entries. Startup
//     replays it with a corruption-safe loader: a malformed record ends
//     the replay (truncated tail), every referenced file is re-verified,
//     and files the journal does not know (a crash between rename and
//     journal append) are deleted as orphans. The surviving set is
//     rewritten as a compacted journal, atomically.
//   - A bad entry is never an error, only a miss. Transient I/O failures
//     retry with capped modeled backoff; persistent failures trip a
//     circuit breaker that drops the store to memory-only mode — Get
//     misses, Put no-ops — instead of failing requests.
//
// Disk faults are injectable through resilience.Injector's disk ops
// (diskfault:<write|fsync|rename|flip|read>), which is how the chaos gate
// proves the properties above hold under torn writes, sync errors,
// simulated mid-write crashes and silent corruption.
package cachedisk

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"afsysbench/internal/resilience"
)

const (
	// magic identifies an entry file; version is the on-disk format.
	magic   = "AFC1"
	version = 1
	// entrySuffix names committed entry files inside objectsDir.
	entrySuffix = ".ent"
	objectsDir  = "objects"
	journalName = "index.log"
	// journalRecMagic starts every journal record.
	journalRecMagic = byte('R')
	// maxKeyLen bounds keys (and therefore filenames).
	maxKeyLen = 128
)

// errCorrupt marks an entry whose bytes are structurally or
// cryptographically wrong — distinct from I/O errors, which may be
// transient and are retried. Corruption is never retried: the entry is
// dropped and the lookup is a miss.
var errCorrupt = errors.New("cachedisk: corrupt entry")

// Config tunes one Store.
type Config struct {
	// Dir is the store's root directory (created if missing).
	Dir string
	// Injector supplies seeded disk-op faults (nil injects nothing).
	Injector *resilience.Injector
	// Retry tunes transient I/O retries; zero value = standard policy.
	Retry resilience.RetryPolicy
	// BreakerThreshold / BreakerCooldown tune the memory-only degradation
	// breaker (defaults 5 failures / 10s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Now supplies the breaker clock (tests); nil means time.Now.
	Now func() time.Time
	// OnDegrade observes breaker transitions (serve stats annotation).
	OnDegrade func(from, to resilience.BreakerState)
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	PutExisting uint64 `json:"put_existing"`
	// CorruptDropped counts entries rejected by header/checksum
	// verification (at reload or read) and dropped; DecodeDropped counts
	// entries the caller reported undecodable via Drop.
	CorruptDropped uint64 `json:"corrupt_dropped"`
	DecodeDropped  uint64 `json:"decode_dropped"`
	// OrphansDropped counts files deleted at open because the journal did
	// not reference them (including stale temp files).
	OrphansDropped uint64 `json:"orphans_dropped"`
	// JournalTailDropped counts journal bytes discarded at the first
	// malformed record (a torn journal append).
	JournalTailDropped uint64 `json:"journal_tail_dropped"`
	// ReloadedEntries is how many entries survived verification at open.
	ReloadedEntries int `json:"reloaded_entries"`
	// WriteErrors / ReadErrors count operations that exhausted their retry
	// budget; JournalErrors count failed journal appends (the entry stays
	// servable in-process and is re-indexed or orphan-collected at next
	// open).
	WriteErrors   uint64 `json:"write_errors"`
	ReadErrors    uint64 `json:"read_errors"`
	JournalErrors uint64 `json:"journal_errors"`
	// Retries counts I/O retry attempts; RetryWaitSeconds is the summed
	// modeled backoff (charged, not slept — determinism).
	Retries          uint64  `json:"retries"`
	RetryWaitSeconds float64 `json:"retry_wait_seconds"`
	// DegradedOps counts operations skipped while the breaker was open;
	// Degraded reports memory-only mode right now.
	DegradedOps uint64                     `json:"degraded_ops"`
	Degraded    bool                       `json:"degraded"`
	Breaker     resilience.BreakerSnapshot `json:"breaker"`
	Entries     int                        `json:"entries"`
	Bytes       int64                      `json:"bytes"`
}

// entryMeta is the in-memory index row for one committed entry.
type entryMeta struct {
	codec uint16
	size  int64
}

// Store is the disk tier. A nil *Store is valid and means "no disk tier":
// Get always misses, Put is a no-op — call sites stay unconditional, the
// package convention. All operations are safe for concurrent use; disk
// I/O is serialized, which also makes fault-budget consumption
// deterministic under concurrency.
type Store struct {
	dir     string
	objects string
	inj     *resilience.Injector
	retry   resilience.RetryPolicy
	breaker *resilience.Breaker

	mu      sync.Mutex
	index   map[string]entryMeta
	bytes   int64
	journal *os.File
	tmpSeq  uint64

	hits, misses, puts, putExisting      uint64
	corruptDropped, decodeDropped        uint64
	orphansDropped, journalTailDropped   uint64
	writeErrors, readErrors, journalErrs uint64
	retries                              uint64
	retryWaitSeconds                     float64
	degradedOps                          uint64
	reloaded                             int
}

// Open builds (or re-opens) the store rooted at cfg.Dir, replaying and
// compacting the index journal. Corrupt or orphaned state on disk is
// repaired and counted, never an error; Open fails only when the
// directory itself cannot be created or the compacted journal cannot be
// written.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cachedisk: empty dir")
	}
	objects := filepath.Join(cfg.Dir, objectsDir)
	if err := os.MkdirAll(objects, 0o755); err != nil {
		return nil, fmt.Errorf("cachedisk: %w", err)
	}
	s := &Store{
		dir:     cfg.Dir,
		objects: objects,
		inj:     cfg.Injector,
		retry:   cfg.Retry.WithDefaults(),
		index:   make(map[string]entryMeta),
	}
	s.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		Threshold:    cfg.BreakerThreshold,
		Cooldown:     cfg.BreakerCooldown,
		Now:          cfg.Now,
		OnTransition: cfg.OnDegrade,
	})
	s.reload()
	if err := s.compactJournal(); err != nil {
		return nil, err
	}
	return s, nil
}

// reload replays the journal, verifies every referenced entry file, and
// removes everything else (corrupt entries, orphans, stale temps).
func (s *Store) reload() {
	keys := s.replayJournal()
	live := make(map[string]bool, len(keys))
	for _, key := range keys {
		path := s.entryPath(key)
		_, codec, size, err := readEntryFile(path, key)
		if err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				s.corruptDropped++
				os.Remove(path)
			}
			continue
		}
		s.index[key] = entryMeta{codec: codec, size: size}
		s.bytes += size
		live[filepath.Base(path)] = true
		s.reloaded++
	}
	// Everything in objects/ the verified index does not claim is garbage:
	// stale temps from torn writes, files orphaned by a crash between
	// rename and journal append, corrupt files under a journaled name that
	// verification already deleted.
	names, err := os.ReadDir(s.objects)
	if err != nil {
		return
	}
	for _, de := range names {
		if de.IsDir() || live[de.Name()] {
			continue
		}
		if os.Remove(filepath.Join(s.objects, de.Name())) == nil {
			s.orphansDropped++
		}
	}
}

// replayJournal parses the journal, last-record-wins, stopping at the
// first malformed record (a torn append: everything after it is
// untrustworthy). Returns the referenced keys in first-seen order.
func (s *Store) replayJournal() []string {
	data, err := os.ReadFile(filepath.Join(s.dir, journalName))
	if err != nil || len(data) == 0 {
		return nil
	}
	var keys []string
	seen := make(map[string]bool)
	off := 0
	for off < len(data) {
		key, n, ok := parseJournalRecord(data[off:])
		if !ok {
			s.journalTailDropped += uint64(len(data) - off)
			break
		}
		off += n
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	return keys
}

// compactJournal rewrites the journal to exactly the live index,
// atomically, and re-opens it for appending.
func (s *Store) compactJournal() error {
	var buf []byte
	for key, meta := range s.index {
		buf = append(buf, journalRecord(key, meta.codec, meta.size)...)
	}
	jpath := filepath.Join(s.dir, journalName)
	tmp := jpath + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("cachedisk: compact journal: %w", err)
	}
	if err := syncFile(tmp); err != nil {
		return fmt.Errorf("cachedisk: compact journal: %w", err)
	}
	if err := os.Rename(tmp, jpath); err != nil {
		return fmt.Errorf("cachedisk: compact journal: %w", err)
	}
	syncDir(s.dir)
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cachedisk: open journal: %w", err)
	}
	s.journal = f
	return nil
}

// Get returns the payload and codec stored for key. Corruption (bad
// header, checksum mismatch) drops the entry and misses; transient read
// errors retry with capped modeled backoff; exhausted retries count a
// read error, feed the breaker, and miss. Get never returns a payload
// whose checksum did not verify.
func (s *Store) Get(key string) (payload []byte, codec uint16, ok bool) {
	if s == nil {
		return nil, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, exists := s.index[key]
	if !exists {
		s.misses++
		return nil, 0, false
	}
	if !s.breaker.Allow() {
		s.degradedOps++
		s.misses++
		return nil, 0, false
	}
	_ = meta
	var lastErr error
	for attempt := 1; attempt <= s.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			s.retries++
			s.retryWaitSeconds += s.retry.Backoff(attempt-1, s.inj.BackoffSource("cachedisk/read"))
		}
		if err := s.inj.DiskFault("read"); err != nil {
			lastErr = err
			continue
		}
		p, c, _, err := readEntryFile(s.entryPath(key), key)
		if err == nil {
			s.breaker.Success()
			s.hits++
			return p, c, true
		}
		if errors.Is(err, errCorrupt) || errors.Is(err, os.ErrNotExist) {
			// The disk answered; the content is wrong (or gone). Not a
			// disk-health signal — drop the entry and miss.
			s.breaker.Success()
			s.dropLocked(key)
			s.corruptDropped++
			s.misses++
			return nil, 0, false
		}
		lastErr = err
	}
	s.readErrors++
	s.breaker.Failure(lastErr)
	s.misses++
	return nil, 0, false
}

// Put stores payload under key, crash-safely and idempotently (an
// existing key is left untouched — entries are content-addressed, so a
// re-put carries identical bytes). Disk failures never propagate: they
// retry, then count a write error and feed the breaker. The only error
// returned is an invalid key.
func (s *Store) Put(key string, codec uint16, payload []byte) error {
	if s == nil {
		return nil
	}
	if !validKey(key) {
		return fmt.Errorf("cachedisk: invalid key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.index[key]; exists {
		s.putExisting++
		return nil
	}
	if !s.breaker.Allow() {
		s.degradedOps++
		return nil
	}
	var lastErr error
	for attempt := 1; attempt <= s.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			s.retries++
			s.retryWaitSeconds += s.retry.Backoff(attempt-1, s.inj.BackoffSource("cachedisk/write"))
		}
		if err := s.writeEntry(key, codec, payload); err != nil {
			lastErr = err
			continue
		}
		s.breaker.Success()
		s.index[key] = entryMeta{codec: codec, size: int64(len(payload))}
		s.bytes += int64(len(payload))
		s.puts++
		if err := s.appendJournal(key, codec, int64(len(payload))); err != nil {
			// The entry is committed and servable; the journal missed it,
			// so the next open treats the file as an orphan. Counted, not
			// fatal: the tier only ever under-remembers, never lies.
			s.journalErrs++
		}
		return nil
	}
	s.writeErrors++
	s.breaker.Failure(lastErr)
	return nil
}

// Contains reports whether key is indexed, without touching disk,
// counters, or the breaker.
func (s *Store) Contains(key string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Drop removes an entry whose payload verified but failed the caller's
// decode — semantic corruption the checksum cannot see (e.g. a payload
// written by a buggy encoder). Counted separately from checksum drops.
func (s *Store) Drop(key string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		s.dropLocked(key)
		s.decodeDropped++
	}
}

// dropLocked removes key from the index and best-effort deletes its file.
func (s *Store) dropLocked(key string) {
	if meta, ok := s.index[key]; ok {
		s.bytes -= meta.size
		delete(s.index, key)
	}
	os.Remove(s.entryPath(key))
}

// Len returns the live entry count.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dir returns the store root ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Degraded reports memory-only mode: the breaker is open and disk
// operations are being skipped.
func (s *Store) Degraded() bool {
	if s == nil {
		return false
	}
	return s.breaker.State() == resilience.BreakerOpen
}

// Stats returns a snapshot of the counters. A nil store reports zeros.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:               s.hits,
		Misses:             s.misses,
		Puts:               s.puts,
		PutExisting:        s.putExisting,
		CorruptDropped:     s.corruptDropped,
		DecodeDropped:      s.decodeDropped,
		OrphansDropped:     s.orphansDropped,
		JournalTailDropped: s.journalTailDropped,
		ReloadedEntries:    s.reloaded,
		WriteErrors:        s.writeErrors,
		ReadErrors:         s.readErrors,
		JournalErrors:      s.journalErrs,
		Retries:            s.retries,
		RetryWaitSeconds:   s.retryWaitSeconds,
		DegradedOps:        s.degradedOps,
		Degraded:           s.breaker.State() == resilience.BreakerOpen,
		Breaker:            s.breaker.Snapshot(),
		Entries:            len(s.index),
		Bytes:              s.bytes,
	}
}

// Close releases the journal handle. The store must not be used after.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// writeEntry commits one entry file crash-safely, consulting the fault
// injector at each guard point: flip (silent post-checksum corruption),
// write (torn write), fsync (sync error), rename (simulated crash between
// temp-write and rename — the temp file stays behind for the reload
// cleanup to prove itself on).
func (s *Store) writeEntry(key string, codec uint16, payload []byte) error {
	data := appendHeader(nil, key, codec, payload)
	hdrLen := len(data)
	data = append(data, payload...)
	if err := s.inj.DiskFault("flip"); err != nil && len(payload) > 0 {
		// Silent corruption: the checksum in the header covers the true
		// payload, the bytes on disk differ by one bit. Every read path
		// must catch this.
		data[hdrLen+len(payload)/2] ^= 0x01
	}
	s.tmpSeq++
	tmp := filepath.Join(s.objects, fmt.Sprintf("%s.%d.tmp", key, s.tmpSeq))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if ferr := s.inj.DiskFault("write"); ferr != nil {
		// Torn write: half the bytes land, then the device errors.
		f.Write(data[:len(data)/2])
		f.Close()
		os.Remove(tmp)
		return ferr
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if ferr := s.inj.DiskFault("fsync"); ferr != nil {
		f.Close()
		os.Remove(tmp)
		return ferr
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if rerr := s.inj.DiskFault("rename"); rerr != nil {
		// Simulated crash between temp-write and rename: the fully
		// written temp file is left on disk, exactly what a real crash
		// leaves. Reload must collect it as garbage.
		return rerr
	}
	if err := os.Rename(tmp, s.entryPath(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(s.objects)
	return nil
}

// appendJournal records a committed entry, fsync'd so the record survives
// a crash that follows it.
func (s *Store) appendJournal(key string, codec uint16, size int64) error {
	if s.journal == nil {
		return fmt.Errorf("cachedisk: journal closed")
	}
	if _, err := s.journal.Write(journalRecord(key, codec, size)); err != nil {
		return err
	}
	return s.journal.Sync()
}

// entryPath maps a key to its committed file.
func (s *Store) entryPath(key string) string {
	return filepath.Join(s.objects, key+entrySuffix)
}

// validKey accepts keys that are safe as filenames: non-empty, bounded,
// and made of word characters, dots and dashes with no leading dot.
// cache.Key's 32-hex-char output always qualifies.
func validKey(key string) bool {
	if key == "" || len(key) > maxKeyLen || key[0] == '.' {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// appendHeader serializes the entry header: magic, version, codec,
// length-prefixed key, payload length, payload sha256.
func appendHeader(b []byte, key string, codec uint16, payload []byte) []byte {
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint16(b, version)
	b = binary.LittleEndian.AppendUint16(b, codec)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(key)))
	b = append(b, key...)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	b = append(b, sum[:]...)
	return b
}

// readEntryFile reads and fully verifies one entry file: magic, version,
// embedded key against wantKey, exact length, payload checksum. Any
// structural or cryptographic mismatch returns errCorrupt; I/O failures
// return the underlying error. On success the verified payload, codec and
// payload size are returned — a payload is never returned unverified.
func readEntryFile(path, wantKey string) (payload []byte, codec uint16, size int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	const fixed = len(magic) + 2 + 2 + 2 // magic, version, codec, keyLen
	if len(data) < fixed || string(data[:len(magic)]) != magic {
		return nil, 0, 0, fmt.Errorf("%w: bad magic in %s", errCorrupt, filepath.Base(path))
	}
	off := len(magic)
	v := binary.LittleEndian.Uint16(data[off:])
	off += 2
	if v != version {
		return nil, 0, 0, fmt.Errorf("%w: version %d in %s", errCorrupt, v, filepath.Base(path))
	}
	codec = binary.LittleEndian.Uint16(data[off:])
	off += 2
	keyLen := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	if keyLen > maxKeyLen || len(data) < off+keyLen+8+sha256.Size {
		return nil, 0, 0, fmt.Errorf("%w: truncated header in %s", errCorrupt, filepath.Base(path))
	}
	key := string(data[off : off+keyLen])
	off += keyLen
	if key != wantKey {
		return nil, 0, 0, fmt.Errorf("%w: key mismatch in %s", errCorrupt, filepath.Base(path))
	}
	payloadLen := binary.LittleEndian.Uint64(data[off:])
	off += 8
	var want [sha256.Size]byte
	copy(want[:], data[off:])
	off += sha256.Size
	if uint64(len(data)-off) != payloadLen {
		return nil, 0, 0, fmt.Errorf("%w: length mismatch in %s", errCorrupt, filepath.Base(path))
	}
	payload = data[off:]
	if sha256.Sum256(payload) != want {
		return nil, 0, 0, fmt.Errorf("%w: checksum mismatch in %s", errCorrupt, filepath.Base(path))
	}
	return payload, codec, int64(len(payload)), nil
}

// journalRecord serializes one index record: magic byte, length-prefixed
// key, codec, payload size, CRC32 of the preceding bytes. The CRC makes a
// torn append detectable, ending replay at the damage.
func journalRecord(key string, codec uint16, size int64) []byte {
	b := []byte{journalRecMagic}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(key)))
	b = append(b, key...)
	b = binary.LittleEndian.AppendUint16(b, codec)
	b = binary.LittleEndian.AppendUint64(b, uint64(size))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

// parseJournalRecord parses one record from the front of data, returning
// the key, consumed length, and whether the record was intact.
func parseJournalRecord(data []byte) (key string, n int, ok bool) {
	if len(data) < 3 || data[0] != journalRecMagic {
		return "", 0, false
	}
	keyLen := int(binary.LittleEndian.Uint16(data[1:]))
	if keyLen == 0 || keyLen > maxKeyLen {
		return "", 0, false
	}
	n = 1 + 2 + keyLen + 2 + 8 + 4
	if len(data) < n {
		return "", 0, false
	}
	body := data[: n-4 : n-4]
	crc := binary.LittleEndian.Uint32(data[n-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return "", 0, false
	}
	return string(data[3 : 3+keyLen]), n, true
}

// syncFile fsyncs one file by path.
func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// syncDir fsyncs a directory so a rename inside it is durable.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
