package cachedisk

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"
)

// fuzzKey is the well-formed key every fuzz target stores under.
const fuzzKey = "deadbeef00112233445566778899aabb"

// validEntryBytes builds a correct on-disk entry for seeding.
func validEntryBytes(key string, codec uint16, payload []byte) []byte {
	return append(appendHeader(nil, key, codec, payload), payload...)
}

// FuzzReloadEntry drops arbitrary bytes where an entry file lives (with a
// journal that references it) and opens the store. The invariants under
// fuzzing: Open never panics and never errors, and Get either misses or
// returns a payload whose sha256 matches the checksum embedded in the
// fuzzed file — a wrong payload is impossible, not just unlikely.
func FuzzReloadEntry(f *testing.F) {
	good := validEntryBytes(fuzzKey, 1, []byte("chain delta payload"))
	f.Add(good)
	f.Add(good[:len(good)/2])                                       // truncated mid-payload
	f.Add([]byte{})                                                 // zero-length file
	f.Add([]byte("AFC1 but not really"))                            // magic prefix, garbage rest
	f.Add(validEntryBytes("otherkey00", 1, []byte("cross-linked"))) // wrong embedded key
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-3] ^= 0x20
	f.Add(flipped) // bit rot in payload

	f.Fuzz(func(t *testing.T, entry []byte) {
		dir := t.TempDir()
		objects := filepath.Join(dir, objectsDir)
		if err := os.MkdirAll(objects, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(objects, fuzzKey+entrySuffix), entry, 0o644); err != nil {
			t.Fatal(err)
		}
		rec := journalRecord(fuzzKey, 1, int64(len(entry)))
		if err := os.WriteFile(filepath.Join(dir, journalName), rec, 0o644); err != nil {
			t.Fatal(err)
		}

		s, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("Open errored on corrupt state: %v", err)
		}
		defer s.Close()
		payload, _, ok := s.Get(fuzzKey)
		if !ok {
			return
		}
		// A served payload must be exactly the one the file's own header
		// committed to.
		const fixed = len(magic) + 2 + 2 + 2
		off := fixed + len(fuzzKey) + 8
		if off+sha256.Size > len(entry) {
			t.Fatalf("served %d bytes from a file too short to hold a checksum", len(payload))
		}
		var want [sha256.Size]byte
		copy(want[:], entry[off:])
		if sha256.Sum256(payload) != want {
			t.Fatal("served payload does not match the entry's own checksum")
		}
		if !bytes.Equal(payload, entry[off+sha256.Size:]) {
			t.Fatal("served payload is not the entry's payload bytes")
		}
	})
}

// FuzzJournalReplay drops arbitrary bytes into the index journal next to
// one good entry. Open must never panic or error, and any entry it does
// serve must verify — replay damage only ever loses entries.
func FuzzJournalReplay(f *testing.F) {
	goodRec := journalRecord(fuzzKey, 1, 19)
	f.Add(goodRec)
	f.Add(goodRec[:len(goodRec)-2]) // torn final record
	f.Add([]byte{})
	f.Add([]byte{journalRecMagic, 0xff, 0xff})                     // absurd key length
	f.Add(append(append([]byte(nil), goodRec...), goodRec[:5]...)) // good + torn tail
	doubled := append(append([]byte(nil), goodRec...), goodRec...)
	f.Add(doubled) // duplicate records

	f.Fuzz(func(t *testing.T, journal []byte) {
		dir := t.TempDir()
		objects := filepath.Join(dir, objectsDir)
		if err := os.MkdirAll(objects, 0o755); err != nil {
			t.Fatal(err)
		}
		payload := []byte("reference payload 42")
		if err := os.WriteFile(filepath.Join(objects, fuzzKey+entrySuffix), validEntryBytes(fuzzKey, 1, payload), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, journalName), journal, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("Open errored on corrupt journal: %v", err)
		}
		defer s.Close()
		if got, _, ok := s.Get(fuzzKey); ok && !bytes.Equal(got, payload) {
			t.Fatalf("journal damage changed a served payload: %q", got)
		}
	})
}
