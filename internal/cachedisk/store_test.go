package cachedisk

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"afsysbench/internal/resilience"
	"afsysbench/internal/rng"
)

func openT(t *testing.T, dir string, faults string) *Store {
	t.Helper()
	var inj *resilience.Injector
	if faults != "" {
		fs, err := resilience.ParseFaults(faults)
		if err != nil {
			t.Fatal(err)
		}
		inj = resilience.NewInjector(fs, rng.New(7))
	}
	s, err := Open(Config{Dir: dir, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t, t.TempDir(), "")
	payload := []byte("the quick brown chain delta")
	if err := s.Put("abc123", 1, payload); err != nil {
		t.Fatal(err)
	}
	got, codec, ok := s.Get("abc123")
	if !ok || codec != 1 || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q codec=%d ok=%v", got, codec, ok)
	}
	if _, _, ok := s.Get("missing"); ok {
		t.Fatal("missing key hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 || st.Bytes != int64(len(payload)) {
		t.Fatalf("stats %+v", st)
	}
}

func TestPutIdempotent(t *testing.T) {
	s := openT(t, t.TempDir(), "")
	if err := s.Put("k1", 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Puts != 1 || st.PutExisting != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := openT(t, t.TempDir(), "")
	for _, key := range []string{"", ".hidden", "a/b", "a\\b", "k ey", strings.Repeat("x", maxKeyLen+1)} {
		if err := s.Put(key, 1, []byte("v")); err == nil {
			t.Fatalf("key %q accepted", key)
		}
	}
}

func TestReloadAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "")
	for _, k := range []string{"aa", "bb", "cc"} {
		if err := s.Put(k, 2, []byte("payload-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2 := openT(t, dir, "")
	st := s2.Stats()
	if st.ReloadedEntries != 3 || st.Entries != 3 || st.CorruptDropped != 0 || st.OrphansDropped != 0 {
		t.Fatalf("reload stats %+v", st)
	}
	for _, k := range []string{"aa", "bb", "cc"} {
		got, codec, ok := s2.Get(k)
		if !ok || codec != 2 || string(got) != "payload-"+k {
			t.Fatalf("reloaded %s = %q codec=%d ok=%v", k, got, codec, ok)
		}
	}
}

// mangle applies a named corruption to a file.
func mangle(t *testing.T, path, how string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	switch how {
	case "truncate-mid":
		data = data[:len(data)/2]
	case "truncate-1":
		data = data[:len(data)-1]
	case "zero-length":
		data = nil
	case "flip-header":
		data[1] ^= 0x40
	case "flip-payload":
		data[len(data)-1] ^= 0x01
	case "garbage":
		data = []byte("this was never an entry file")
	default:
		t.Fatalf("unknown mangle %q", how)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptEntriesDroppedAtReload(t *testing.T) {
	for _, how := range []string{"truncate-mid", "truncate-1", "zero-length", "flip-header", "flip-payload", "garbage"} {
		t.Run(how, func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir, "")
			if err := s.Put("good", 1, []byte("good payload")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("bad", 1, []byte("doomed payload")); err != nil {
				t.Fatal(err)
			}
			s.Close()
			mangle(t, filepath.Join(dir, objectsDir, "bad"+entrySuffix), how)

			s2 := openT(t, dir, "")
			st := s2.Stats()
			if st.CorruptDropped != 1 || st.ReloadedEntries != 1 {
				t.Fatalf("stats %+v", st)
			}
			if _, _, ok := s2.Get("bad"); ok {
				t.Fatal("corrupt entry served")
			}
			got, _, ok := s2.Get("good")
			if !ok || string(got) != "good payload" {
				t.Fatalf("good entry lost: %q ok=%v", got, ok)
			}
			if _, err := os.Stat(filepath.Join(dir, objectsDir, "bad"+entrySuffix)); !os.IsNotExist(err) {
				t.Fatal("corrupt file not deleted")
			}
		})
	}
}

func TestCrossLinkedEntryDropped(t *testing.T) {
	// File "bad" holds the (internally consistent) bytes of entry "good":
	// the checksum passes but the embedded key disagrees with the name —
	// a cross-linked or misplaced file must never be served under the
	// wrong key.
	dir := t.TempDir()
	s := openT(t, dir, "")
	if err := s.Put("good", 1, []byte("good payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bad", 1, []byte("bad payload")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	src, err := os.ReadFile(filepath.Join(dir, objectsDir, "good"+entrySuffix))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, objectsDir, "bad"+entrySuffix), src, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, "")
	if got, _, ok := s2.Get("bad"); ok {
		t.Fatalf("cross-linked entry served: %q", got)
	}
	if s2.Stats().CorruptDropped != 1 {
		t.Fatalf("stats %+v", s2.Stats())
	}
}

func TestCorruptionAfterOpenIsAMissNotAnError(t *testing.T) {
	// Bit rot that happens while the store is open: the index knows the
	// key, the file fails its checksum at read time.
	dir := t.TempDir()
	s := openT(t, dir, "")
	if err := s.Put("rotting", 1, []byte("fresh payload")); err != nil {
		t.Fatal(err)
	}
	mangle(t, filepath.Join(dir, objectsDir, "rotting"+entrySuffix), "flip-payload")
	if got, _, ok := s.Get("rotting"); ok {
		t.Fatalf("rotted entry served: %q", got)
	}
	st := s.Stats()
	if st.CorruptDropped != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v", st)
	}
	// The drop is sticky: the next lookup is a plain miss.
	if _, _, ok := s.Get("rotting"); ok {
		t.Fatal("dropped entry resurrected")
	}
}

func TestJournalTailCorruptionEndsReplay(t *testing.T) {
	for _, how := range []string{"truncate-1", "flip-payload", "garbage"} {
		t.Run(how, func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir, "")
			if err := s.Put("aa", 1, []byte("A")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("bb", 1, []byte("B")); err != nil {
				t.Fatal(err)
			}
			s.Close()
			mangle(t, filepath.Join(dir, journalName), how)

			// Never an error, never a panic; entries referenced after the
			// damage point become orphans and are collected.
			s2 := openT(t, dir, "")
			st := s2.Stats()
			if how != "truncate-1" && st.JournalTailDropped == 0 && st.ReloadedEntries == 2 {
				t.Fatalf("corruption invisible: %+v", st)
			}
			if got, _, ok := s2.Get("aa"); ok && string(got) != "A" {
				t.Fatalf("wrong payload for aa: %q", got)
			}
			if got, _, ok := s2.Get("bb"); ok && string(got) != "B" {
				t.Fatalf("wrong payload for bb: %q", got)
			}
		})
	}
}

func TestZeroedJournalOrphansEverything(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "")
	if err := s.Put("aa", 1, []byte("A")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, journalName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, "")
	st := s2.Stats()
	if st.Entries != 0 || st.OrphansDropped != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMidWriteCrashLeavesNoTrace(t *testing.T) {
	// diskfault:rename simulates dying between temp-write and rename: the
	// fully written temp file stays behind and the entry is never
	// committed. After "restart", reload collects the garbage.
	dir := t.TempDir()
	s := openT(t, dir, "diskfault:rename:4") // every attempt of one Put
	if err := s.Put("crashy", 1, []byte("never committed")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Puts != 0 || st.WriteErrors != 1 || st.Retries != 3 {
		t.Fatalf("stats %+v", st)
	}
	if _, _, ok := s.Get("crashy"); ok {
		t.Fatal("uncommitted entry served")
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, objectsDir, "*.tmp"))
	if len(tmps) == 0 {
		t.Fatal("simulated crash left no temp file to clean")
	}
	s.Close()

	s2 := openT(t, dir, "")
	st = s2.Stats()
	if st.OrphansDropped != uint64(len(tmps)) {
		t.Fatalf("orphans: %+v, want %d temps collected", st, len(tmps))
	}
	if left, _ := filepath.Glob(filepath.Join(dir, objectsDir, "*")); len(left) != 0 {
		t.Fatalf("objects dir not clean after reload: %v", left)
	}
}

func TestTransientWriteFaultsRetryThenSucceed(t *testing.T) {
	for _, spec := range []string{"diskfault:write:2", "diskfault:fsync:2"} {
		t.Run(spec, func(t *testing.T) {
			s := openT(t, t.TempDir(), spec)
			if err := s.Put("k", 1, []byte("payload")); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Puts != 1 || st.Retries != 2 || st.WriteErrors != 0 {
				t.Fatalf("stats %+v", st)
			}
			if st.RetryWaitSeconds <= 0 {
				t.Fatal("no modeled backoff charged")
			}
			got, _, ok := s.Get("k")
			if !ok || string(got) != "payload" {
				t.Fatalf("payload lost after retries: %q ok=%v", got, ok)
			}
		})
	}
}

func TestBitFlipCaughtByChecksum(t *testing.T) {
	s := openT(t, t.TempDir(), "diskfault:flip:1")
	if err := s.Put("flipped", 1, []byte("silently corrupted payload")); err != nil {
		t.Fatal(err)
	}
	// The write "succeeded" — silent corruption is invisible to Put.
	if s.Stats().Puts != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
	if got, _, ok := s.Get("flipped"); ok {
		t.Fatalf("flipped payload served: %q", got)
	}
	st := s.Stats()
	if st.CorruptDropped != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReadFaultsRetryThenSucceed(t *testing.T) {
	s := openT(t, t.TempDir(), "diskfault:read:2")
	if err := s.Put("k", 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, _, ok := s.Get("k")
	if !ok || string(got) != "payload" {
		t.Fatalf("read retries failed: %q ok=%v", got, ok)
	}
	st := s.Stats()
	if st.Retries != 2 || st.ReadErrors != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSustainedFailureTripsBreakerToMemoryOnly(t *testing.T) {
	now := time.Unix(1000, 0)
	fs, _ := resilience.ParseFaults("diskfault:write:1000")
	inj := resilience.NewInjector(fs, rng.New(7))
	s, err := Open(Config{
		Dir:              t.TempDir(),
		Injector:         inj,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
		Now:              func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 2; i++ {
		if err := s.Put("k", 1, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Degraded() {
		t.Fatalf("breaker not open after threshold: %+v", s.Stats())
	}
	// Memory-only mode: operations are skipped, not failed.
	if err := s.Put("k2", 1, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DegradedOps != 1 || !st.Degraded {
		t.Fatalf("stats %+v", st)
	}

	// After the cooldown the half-open probe runs a real operation; the
	// fault budget is exhausted by then in this scenario? No — it is
	// huge, so the probe fails and the breaker re-opens.
	now = now.Add(11 * time.Second)
	if err := s.Put("k3", 1, []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if !s.Degraded() {
		t.Fatal("failed probe should re-open the breaker")
	}
}

func TestBreakerRecoversWhenDiskHeals(t *testing.T) {
	now := time.Unix(1000, 0)
	fs, _ := resilience.ParseFaults("diskfault:write:8") // 2 puts × 4 attempts
	inj := resilience.NewInjector(fs, rng.New(7))
	s, err := Open(Config{
		Dir:              t.TempDir(),
		Injector:         inj,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
		Now:              func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2; i++ {
		s.Put("k", 1, []byte("v"))
	}
	if !s.Degraded() {
		t.Fatal("breaker should be open")
	}
	now = now.Add(11 * time.Second)
	// Fault budget spent: the half-open probe succeeds and closes the
	// breaker; the disk tier is live again.
	if err := s.Put("healed", 1, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatalf("breaker still open after healed probe: %+v", s.Stats())
	}
	if got, _, ok := s.Get("healed"); !ok || string(got) != "back" {
		t.Fatalf("healed entry lost: %q ok=%v", got, ok)
	}
}

func TestDropForUndecodablePayload(t *testing.T) {
	s := openT(t, t.TempDir(), "")
	if err := s.Put("k", 1, []byte("checksum fine, semantics broken")); err != nil {
		t.Fatal(err)
	}
	s.Drop("k")
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("dropped entry served")
	}
	st := s.Stats()
	if st.DecodeDropped != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v", st)
	}
	s.Drop("never-there") // no-op, no count
	if s.Stats().DecodeDropped != 1 {
		t.Fatal("dropping a missing key counted")
	}
}

func TestNilStoreIsDisabledTier(t *testing.T) {
	var s *Store
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put("k", 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Dir() != "" || s.Degraded() || s.Close() != nil {
		t.Fatal("nil store misbehaved")
	}
	if s.Stats() != (Stats{}) {
		t.Fatal("nil store stats not zero")
	}
	s.Drop("k")
}

func TestConcurrentPutGet(t *testing.T) {
	s := openT(t, t.TempDir(), "")
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- true }()
			key := []string{"k0", "k1", "k2", "k3"}[g%4]
			payload := []byte("payload-" + key)
			for i := 0; i < 25; i++ {
				s.Put(key, 1, payload)
				if got, _, ok := s.Get(key); ok && !bytes.Equal(got, payload) {
					t.Errorf("wrong payload for %s: %q", key, got)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.Len() != 4 {
		t.Fatalf("entries = %d, want 4", s.Len())
	}
}
