// Package profile renders perf-report-style function-level profiles from
// the CPU model's per-function counters — the suite's analog of the
// paper's `perf record`/uProf workflow (Tables IV and V).
package profile

import (
	"fmt"
	"io"
	"sort"

	"afsysbench/internal/simhw"
)

// Metric selects what a report ranks by.
type Metric int

const (
	Cycles Metric = iota
	Instructions
	CacheMisses
	TLBMisses
	PageFaults
	BranchMisses
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Cycles:
		return "cycles"
	case Instructions:
		return "instructions"
	case CacheMisses:
		return "cache-misses"
	case TLBMisses:
		return "dTLB-load-misses"
	case PageFaults:
		return "page-faults"
	case BranchMisses:
		return "branch-misses"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// value extracts the metric from counters.
func (m Metric) value(c simhw.Counters) float64 {
	switch m {
	case Cycles:
		return float64(c.Cycles)
	case Instructions:
		return float64(c.Instructions)
	case CacheMisses:
		return float64(c.LLCMisses)
	case TLBMisses:
		return float64(c.TLBMisses)
	case PageFaults:
		return float64(c.PageFaults)
	case BranchMisses:
		return float64(c.BranchMisses)
	default:
		return 0
	}
}

// Row is one line of a report.
type Row struct {
	Function string
	Value    float64
	SharePct float64
}

// Report ranks the per-function counters by the metric, descending,
// keeping functions above minSharePct.
func Report(perFunc map[string]simhw.Counters, metric Metric, minSharePct float64) []Row {
	var total float64
	for _, c := range perFunc {
		total += metric.value(c)
	}
	if total == 0 {
		return nil
	}
	var rows []Row
	for fn, c := range perFunc {
		v := metric.value(c)
		share := 100 * v / total
		if share < minSharePct {
			continue
		}
		rows = append(rows, Row{Function: fn, Value: v, SharePct: share})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			return rows[i].Value > rows[j].Value
		}
		return rows[i].Function < rows[j].Function
	})
	return rows
}

// Write prints a perf-report-style listing for the metric.
func Write(w io.Writer, title string, perFunc map[string]simhw.Counters, metric Metric, minSharePct float64) error {
	if _, err := fmt.Fprintf(w, "# %s — samples by %s\n", title, metric); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# %-9s %-28s %s\n", "overhead", "symbol", "count"); err != nil {
		return err
	}
	for _, r := range Report(perFunc, metric, minSharePct) {
		if _, err := fmt.Fprintf(w, "  %6.2f%%   %-28s %.3g\n", r.SharePct, r.Function, r.Value); err != nil {
			return err
		}
	}
	return nil
}

// Stat prints a perf-stat style summary of aggregate counters: the same
// derived metrics Table III reports, plus raw counts.
func Stat(w io.Writer, title string, c simhw.Counters, seconds float64) error {
	if _, err := fmt.Fprintf(w, "# perf stat — %s\n", title); err != nil {
		return err
	}
	rows := []struct {
		label string
		value string
	}{
		{"instructions", fmt.Sprintf("%d", c.Instructions)},
		{"cycles", fmt.Sprintf("%d", c.Cycles)},
		{"IPC", fmt.Sprintf("%.2f", c.IPC())},
		{"L1-dcache-loads", fmt.Sprintf("%d", c.Loads)},
		{"L1-dcache-misses", fmt.Sprintf("%d (%.2f%%)", c.L1Misses, c.L1MissPct())},
		{"LLC-references", fmt.Sprintf("%d", c.LLCRefs)},
		{"LLC-misses", fmt.Sprintf("%d (%.1f%%)", c.LLCMisses, c.LLCMissPct())},
		{"cache-miss MPKI", fmt.Sprintf("%.1f", c.CacheMissMPKI())},
		{"dTLB-load-misses", fmt.Sprintf("%d (%.2f%%)", c.TLBMisses, c.DTLBMissPct())},
		{"branches", fmt.Sprintf("%d", c.Branches)},
		{"branch-misses", fmt.Sprintf("%d (%.2f%%)", c.BranchMisses, c.BranchMissPct())},
		{"page-faults", fmt.Sprintf("%d", c.PageFaults)},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "  %-20s %s\n", r.label, r.value); err != nil {
			return err
		}
	}
	if seconds > 0 {
		if _, err := fmt.Fprintf(w, "  %-20s %.3f\n", "seconds (simulated)", seconds); err != nil {
			return err
		}
	}
	return nil
}

// Compare renders two profiles side by side (e.g. 1T vs 4T), matching
// Table IV's layout. Functions are ranked by the first profile.
func Compare(w io.Writer, title string, metric Metric, labels [2]string, profiles [2]map[string]simhw.Counters, minSharePct float64) error {
	first := Report(profiles[0], metric, minSharePct)
	second := map[string]float64{}
	for _, r := range Report(profiles[1], metric, 0) {
		second[r.Function] = r.SharePct
	}
	if _, err := fmt.Fprintf(w, "# %s — %s\n", title, metric); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# %-28s %10s %10s\n", "symbol", labels[0], labels[1]); err != nil {
		return err
	}
	for _, r := range first {
		if _, err := fmt.Fprintf(w, "  %-28s %9.2f%% %9.2f%%\n", r.Function, r.SharePct, second[r.Function]); err != nil {
			return err
		}
	}
	return nil
}
