package profile

import (
	"bytes"
	"strings"
	"testing"

	"afsysbench/internal/simhw"
)

func sampleProfile() map[string]simhw.Counters {
	return map[string]simhw.Counters{
		"calc_band_9":  {Cycles: 600, Instructions: 900, LLCMisses: 30, TLBMisses: 5, PageFaults: 0, BranchMisses: 8},
		"calc_band_10": {Cycles: 550, Instructions: 850, LLCMisses: 25, TLBMisses: 4, BranchMisses: 7},
		"copy_to_iter": {Cycles: 100, Instructions: 50, LLCMisses: 120, TLBMisses: 1, BranchMisses: 1},
		"tiny":         {Cycles: 1, Instructions: 1, LLCMisses: 1},
	}
}

func TestMetricStrings(t *testing.T) {
	for _, m := range []Metric{Cycles, Instructions, CacheMisses, TLBMisses, PageFaults, BranchMisses} {
		if m.String() == "" || strings.HasPrefix(m.String(), "Metric(") {
			t.Errorf("metric %d has no name", int(m))
		}
	}
}

func TestReportRankingAndShares(t *testing.T) {
	rows := Report(sampleProfile(), Cycles, 0)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Function != "calc_band_9" || rows[1].Function != "calc_band_10" {
		t.Errorf("ranking wrong: %v", rows)
	}
	var total float64
	for _, r := range rows {
		total += r.SharePct
	}
	if total < 99.9 || total > 100.1 {
		t.Errorf("shares sum to %v", total)
	}
}

func TestReportByCacheMisses(t *testing.T) {
	rows := Report(sampleProfile(), CacheMisses, 0)
	if rows[0].Function != "copy_to_iter" {
		t.Errorf("cache-miss leader = %s, want copy_to_iter", rows[0].Function)
	}
}

func TestReportMinShareFilter(t *testing.T) {
	rows := Report(sampleProfile(), Cycles, 2)
	for _, r := range rows {
		if r.Function == "tiny" {
			t.Error("below-threshold function not filtered")
		}
	}
}

func TestReportEmpty(t *testing.T) {
	if rows := Report(map[string]simhw.Counters{}, Cycles, 0); rows != nil {
		t.Error("empty profile should produce nil")
	}
	if rows := Report(map[string]simhw.Counters{"x": {}}, PageFaults, 0); rows != nil {
		t.Error("all-zero metric should produce nil")
	}
}

func TestWriteFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "msa phase", sampleProfile(), Cycles, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"msa phase", "cycles", "calc_band_9", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestCompareFormat(t *testing.T) {
	p1 := sampleProfile()
	p4 := map[string]simhw.Counters{
		"calc_band_9":  {LLCMisses: 90},
		"copy_to_iter": {LLCMisses: 60},
	}
	var buf bytes.Buffer
	err := Compare(&buf, "2PV7", CacheMisses, [2]string{"1T", "4T"}, [2]map[string]simhw.Counters{p1, p4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1T") || !strings.Contains(out, "4T") {
		t.Error("column labels missing")
	}
	if !strings.Contains(out, "copy_to_iter") {
		t.Error("functions missing")
	}
}

func TestStatFormat(t *testing.T) {
	c := simhw.Counters{
		Instructions: 1000, Cycles: 500, Loads: 400, L1Misses: 4,
		LLCRefs: 100, LLCMisses: 56, TLBRefs: 400, TLBMisses: 2,
		Branches: 100, BranchMisses: 1, PageFaults: 7,
	}
	var buf bytes.Buffer
	if err := Stat(&buf, "2PV7 on Server", c, 123.456); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"perf stat", "2PV7 on Server", "IPC", "2.00", "56.0%", "page-faults", "123.456"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := Stat(&buf, "x", simhw.Counters{}, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "seconds") {
		t.Error("zero seconds should be omitted")
	}
}
