// Package cache is the content-addressed result cache behind the serving
// subsystem: bounded-capacity storage with LRU eviction, singleflight
// deduplication of concurrent identical computations, and hit/miss/
// eviction/byte accounting.
//
// The motivating workload is the MSA phase of high-throughput structure
// prediction: screening campaigns submit the same query sequences against
// the same database sets over and over, and the search — minutes of CPU
// and terabytes of streaming per request at paper scale — is pure function
// of (query, database set, search parameters). AF_Cache (PAPERS.md) shows
// the hit rates such workloads reach; this package supplies the mechanism.
// Keys are derived by the caller from the full content that determines the
// result (see cache.Key), so a stale or cross-configuration hit is
// impossible by construction rather than by invalidation protocol.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// Key derives a stable content-addressed key from the given components.
// Components are length-prefixed before hashing so ("ab","c") and
// ("a","bc") never collide. Callers pass everything that determines the
// cached value: query content, database-set fingerprint, thread count,
// search parameters, machine identity.
func Key(parts ...string) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits served a stored entry; Shared served a computation already in
	// flight (singleflight followers); Misses paid the computation.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Shared uint64 `json:"shared"`
	// Evictions counts entries removed to fit the capacity.
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	// Bytes is the summed size of stored entries (caller-declared sizes,
	// e.g. modeled feature-tensor bytes); CapacityBytes is the bound
	// (0 = unbounded).
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
}

// HitRate is the fraction of lookups served without recomputing (stored
// hits plus singleflight shares), in [0,1].
func (s Stats) HitRate() float64 {
	served := s.Hits + s.Shared
	total := served + s.Misses
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}

// Cache is a bounded LRU cache with singleflight computation. A nil *Cache
// is valid and means "caching disabled": GetOrCompute always computes and
// nothing is recorded, so call sites stay unconditional.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	flights  map[string]*flight
	onEvict  func(key string, val any, size int64)

	hits, misses, shared, evictions uint64
}

type entry struct {
	key  string
	val  any
	size int64
}

// flight is one in-progress computation; followers block on done and read
// val/err afterwards (the channel close is the happens-before edge).
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New builds a cache bounded to capacityBytes of caller-declared entry
// sizes. capacityBytes <= 0 means unbounded.
func New(capacityBytes int64) *Cache {
	return &Cache{
		capacity: capacityBytes,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// SetOnEvict installs a callback invoked for every entry removed by LRU
// pressure (not for replacements of the same key). The callback runs after
// the cache lock is released — it may do I/O or call back into the cache —
// but eviction order is preserved. Used by the serving layer to spill
// evicted MSA chains to the persistent disk tier.
func (c *Cache) SetOnEvict(fn func(key string, val any, size int64)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// Get returns the stored value for key, marking it most recently used.
// It records a hit or miss.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Contains reports whether key is stored, without touching recency or
// counters (test and introspection helper).
func (c *Cache) Contains(key string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// GetOrCompute returns the value for key, computing it at most once across
// concurrent callers. compute returns the value, its charged size in
// bytes, and an error; errors are returned to every waiter and never
// cached, so the next request retries. The hit result is true when the
// value was served without running compute in this call (stored entry or a
// computation another caller already had in flight).
func (c *Cache) GetOrCompute(key string, compute func() (any, int64, error)) (val any, hit bool, err error) {
	if c == nil {
		v, _, err := compute()
		return v, false, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.mu.Lock()
		c.shared++
		c.mu.Unlock()
		return f.val, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()

	v, size, err := compute()
	f.val, f.err = v, err
	c.mu.Lock()
	delete(c.flights, key)
	var evicted []*entry
	if err == nil {
		evicted = c.insertLocked(key, v, size)
	}
	hook := c.onEvict
	c.mu.Unlock()
	close(f.done)
	c.notifyEvicted(hook, evicted)
	if err != nil {
		return nil, false, err
	}
	return v, false, nil
}

// Add stores a value directly (no singleflight), replacing any existing
// entry for key and evicting from the LRU end to fit capacity.
func (c *Cache) Add(key string, val any, size int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	evicted := c.insertLocked(key, val, size)
	hook := c.onEvict
	c.mu.Unlock()
	c.notifyEvicted(hook, evicted)
}

// insertLocked stores (or replaces) an entry at the MRU position and
// evicts from the LRU end until the capacity holds. An entry larger than
// the whole capacity is evicted immediately (uncacheable), keeping the
// bytes bound a hard invariant. Evicted entries are returned so the caller
// can run the OnEvict hook outside the lock.
func (c *Cache) insertLocked(key string, val any, size int64) []*entry {
	if size < 1 {
		size = 1
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.val, e.size = val, size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{key: key, val: val, size: size})
		c.entries[key] = el
		c.bytes += size
	}
	if c.capacity <= 0 {
		return nil
	}
	var evicted []*entry
	for c.bytes > c.capacity && c.ll.Len() > 0 {
		el := c.ll.Back()
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictions++
		evicted = append(evicted, e)
	}
	return evicted
}

// notifyEvicted runs the eviction hook for each removed entry, in eviction
// order, with no cache lock held.
func (c *Cache) notifyEvicted(hook func(string, any, int64), evicted []*entry) {
	if hook == nil {
		return
	}
	for _, e := range evicted {
		hook(e.key, e.val, e.size)
	}
}

// EntrySize returns the caller-declared byte size of the stored entry for
// key, without touching recency or counters.
func (c *Cache) EntrySize(key string) (int64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return 0, false
	}
	return el.Value.(*entry).size, true
}

// Range calls fn for every stored entry, most recently used first, until
// fn returns false. The snapshot is taken under the lock and fn runs
// outside it, so fn may call back into the cache; entries added or evicted
// after the snapshot are not reflected. Recency and counters are untouched.
func (c *Cache) Range(fn func(key string, val any, size int64) bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	snap := make([]entry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		snap = append(snap, *el.Value.(*entry))
	}
	c.mu.Unlock()
	for i := range snap {
		if !fn(snap[i].key, snap[i].val, snap[i].size) {
			return
		}
	}
}

// Len returns the stored entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the summed size of stored entries.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of the counters. A nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Shared:        c.shared,
		Evictions:     c.evictions,
		Entries:       c.ll.Len(),
		Bytes:         c.bytes,
		CapacityBytes: c.capacity,
	}
}
