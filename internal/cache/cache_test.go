package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyStableAndBoundaryProof(t *testing.T) {
	if Key("a", "b") != Key("a", "b") {
		t.Fatal("Key not deterministic")
	}
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("Key collides across component boundaries")
	}
	if Key("a") == Key("a", "") {
		t.Fatal("Key ignores empty trailing component")
	}
}

func TestGetOrComputeBasics(t *testing.T) {
	c := New(0)
	calls := 0
	compute := func() (any, int64, error) { calls++; return 42, 8, nil }

	v, hit, err := c.GetOrCompute("k", compute)
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("first call: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrCompute("k", compute)
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("second call: v=%v hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.GetOrCompute("k", func() (any, int64, error) { calls++; return nil, 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Contains("k") || c.Len() != 0 {
		t.Fatal("error result was cached")
	}
	v, hit, err := c.GetOrCompute("k", func() (any, int64, error) { calls++; return "ok", 2, nil })
	if err != nil || hit || v.(string) != "ok" {
		t.Fatalf("retry: v=%v hit=%v err=%v", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

func TestNilCacheComputesEveryTime(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 3; i++ {
		v, hit, err := c.GetOrCompute("k", func() (any, int64, error) { calls++; return calls, 1, nil })
		if err != nil || hit {
			t.Fatalf("nil cache: hit=%v err=%v", hit, err)
		}
		if v.(int) != i+1 {
			t.Fatalf("nil cache reused a value: %v", v)
		}
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

// TestSingleflightDedup launches many goroutines for the same key while
// the leader's computation is gated open; exactly one compute must run and
// everyone else must be served without computing. Whether a given waiter
// is counted as a flight share or a stored hit depends on whether it
// arrived before or after the leader finished — both are served results —
// so the assertion is on the dedup invariant, not the split.
func TestSingleflightDedup(t *testing.T) {
	c := New(0)
	const waiters = 32
	var computes atomic.Int32
	gate := make(chan struct{})
	entered := make(chan struct{})

	var wg sync.WaitGroup
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = c.GetOrCompute("k", func() (any, int64, error) {
			computes.Add(1)
			close(entered)
			<-gate
			return "value", 4, nil
		})
	}()
	<-entered // the flight is registered once compute is running

	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.GetOrCompute("k", func() (any, int64, error) {
				computes.Add(1)
				return "value", 4, nil
			})
			if err != nil {
				errs <- err
				return
			}
			if !hit || v.(string) != "value" {
				errs <- fmt.Errorf("follower got v=%v hit=%v", v, hit)
			}
		}()
	}
	close(gate)
	wg.Wait()
	<-leaderDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Shared != uint64(waiters) {
		t.Fatalf("stats = %+v, want 1 miss and %d served", st, waiters)
	}
}

// TestSingleflightSharedPath pins the follower path deterministically: a
// flight is registered by hand, a follower blocks on it, and resolving the
// flight must serve the follower without running its compute.
func TestSingleflightSharedPath(t *testing.T) {
	c := New(0)
	f := &flight{done: make(chan struct{})}
	c.mu.Lock()
	c.flights["k"] = f
	c.mu.Unlock()

	type outcome struct {
		v   any
		hit bool
		err error
	}
	res := make(chan outcome, 1)
	go func() {
		v, hit, err := c.GetOrCompute("k", func() (any, int64, error) {
			return nil, 0, errors.New("follower must not compute")
		})
		res <- outcome{v, hit, err}
	}()
	// The flight stays registered until after the follower returns, so the
	// follower either blocks on it or finds it already resolved — it can
	// never become a second leader.
	f.val = "value"
	close(f.done)
	got := <-res
	if got.err != nil || !got.hit || got.v.(string) != "value" {
		t.Fatalf("follower outcome = %+v", got)
	}
	if st := c.Stats(); st.Shared != 1 {
		t.Fatalf("stats = %+v, want 1 shared", st)
	}
	c.mu.Lock()
	delete(c.flights, "k")
	c.mu.Unlock()
}

// TestLRUEvictionOrder checks both the recency ordering (a touched entry
// survives) and the eviction counter.
func TestLRUEvictionOrder(t *testing.T) {
	c := New(20)
	c.Add("a", "a", 10)
	c.Add("b", "b", 10)
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Add("c", "c", 10) // over capacity: b must go, not a
	if c.Contains("b") {
		t.Fatal("b survived eviction despite being LRU")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatal("wrong eviction victim")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 20 {
		t.Fatalf("stats = %+v", st)
	}

	// Insertion order is recency order when nothing is touched.
	c2 := New(20)
	c2.Add("x", 1, 10)
	c2.Add("y", 2, 10)
	c2.Add("z", 3, 10)
	if c2.Contains("x") || !c2.Contains("y") || !c2.Contains("z") {
		t.Fatal("oldest entry was not evicted first")
	}
}

func TestCapacityAccounting(t *testing.T) {
	c := New(100)
	c.Add("a", "a", 30)
	c.Add("b", "b", 30)
	if c.Bytes() != 60 {
		t.Fatalf("bytes = %d, want 60", c.Bytes())
	}
	c.Add("a", "a2", 50) // replace: bytes adjust, no duplicate entry
	if c.Bytes() != 80 || c.Len() != 2 {
		t.Fatalf("after replace: bytes=%d len=%d", c.Bytes(), c.Len())
	}
	// An entry larger than the whole capacity is uncacheable.
	c.Add("huge", "h", 1000)
	if c.Contains("huge") {
		t.Fatal("oversized entry stored")
	}
	if c.Bytes() > 100 {
		t.Fatalf("capacity invariant broken: %d", c.Bytes())
	}
	// Minimum charge is 1 byte so zero-sized entries still count.
	c3 := New(0)
	c3.Add("z", nil, 0)
	if c3.Bytes() != 1 {
		t.Fatalf("zero-size charge = %d, want 1", c3.Bytes())
	}
}

// TestConcurrentHammer drives mixed keys from many goroutines under -race
// and checks the terminal invariants: capacity held, every lookup
// accounted, values never torn.
func TestConcurrentHammer(t *testing.T) {
	c := New(64)
	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (g+i)%8)
				v, _, err := c.GetOrCompute(key, func() (any, int64, error) {
					return key, 16, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v.(string) != key {
					t.Errorf("key %s got value %v", key, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 64 {
		t.Fatalf("capacity exceeded: %+v", st)
	}
	if total := st.Hits + st.Misses + st.Shared; total != goroutines*iters {
		t.Fatalf("lookup accounting: hits+misses+shared=%d, want %d (%+v)", total, goroutines*iters, st)
	}
}

func TestHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate")
	}
	s := Stats{Hits: 8, Shared: 1, Misses: 1}
	if got := s.HitRate(); got != 0.9 {
		t.Fatalf("hit rate = %v, want 0.9", got)
	}
}

func TestOnEvictHook(t *testing.T) {
	c := New(20)
	type ev struct {
		key  string
		size int64
	}
	var got []ev
	c.SetOnEvict(func(key string, val any, size int64) {
		got = append(got, ev{key, size})
		// Reentrancy: the hook runs outside the lock, so calling back into
		// the cache must not deadlock.
		_ = c.Len()
	})
	c.Add("a", "A", 10)
	c.Add("b", "B", 10)
	if len(got) != 0 {
		t.Fatalf("premature evictions: %v", got)
	}
	c.Add("c", "C", 10) // evicts a (LRU)
	c.Add("d", "D", 20) // evicts b then c
	want := []ev{{"a", 10}, {"b", 10}, {"c", 10}}
	if len(got) != len(want) {
		t.Fatalf("evictions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("eviction %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOnEvictNotFiredOnReplace(t *testing.T) {
	c := New(100)
	fired := 0
	c.SetOnEvict(func(string, any, int64) { fired++ })
	c.Add("k", 1, 10)
	c.Add("k", 2, 20)
	if fired != 0 {
		t.Fatalf("replacement fired the eviction hook %d times", fired)
	}
	if v, ok := c.Get("k"); !ok || v.(int) != 2 {
		t.Fatalf("replacement lost: v=%v ok=%v", v, ok)
	}
}

func TestOnEvictFromGetOrCompute(t *testing.T) {
	c := New(10)
	var evicted []string
	c.SetOnEvict(func(key string, val any, size int64) { evicted = append(evicted, key) })
	if _, _, err := c.GetOrCompute("x", func() (any, int64, error) { return "X", 10, nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrCompute("y", func() (any, int64, error) { return "Y", 10, nil }); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "x" {
		t.Fatalf("evicted = %v, want [x]", evicted)
	}
}

func TestEntrySize(t *testing.T) {
	c := New(0)
	c.Add("k", "v", 37)
	if sz, ok := c.EntrySize("k"); !ok || sz != 37 {
		t.Fatalf("EntrySize(k) = %d,%v want 37,true", sz, ok)
	}
	if _, ok := c.EntrySize("missing"); ok {
		t.Fatal("EntrySize reported a missing key")
	}
	st := c.Stats()
	if st.Hits != 0 && st.Misses != 0 {
		t.Fatalf("EntrySize touched counters: %+v", st)
	}
	var nilCache *Cache
	if _, ok := nilCache.EntrySize("k"); ok {
		t.Fatal("nil cache reported an entry")
	}
}

func TestRangeMRUOrderAndEarlyStop(t *testing.T) {
	c := New(0)
	c.Add("a", 1, 1)
	c.Add("b", 2, 2)
	c.Add("c", 3, 3)
	c.Get("a") // a becomes MRU
	var keys []string
	c.Range(func(key string, val any, size int64) bool {
		keys = append(keys, key)
		return true
	})
	if fmt.Sprint(keys) != "[a c b]" {
		t.Fatalf("Range order = %v, want [a c b]", keys)
	}
	n := 0
	c.Range(func(string, any, int64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range ignored early stop: %d calls", n)
	}
	var nilCache *Cache
	nilCache.Range(func(string, any, int64) bool { t.Fatal("nil cache ranged"); return false })
}
