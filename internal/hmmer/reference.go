package hmmer

import (
	"math"

	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

// Reference kernels: the column-major (Match[col*K+residue]) scan path with
// per-call scratch allocation. These are the pre-optimization kernels, kept
// for three jobs:
//
//   - correctness oracle — the layout-equivalence tests assert the
//     transposed kernels reproduce these bitwise;
//   - fallback — a hand-assembled Profile without MatchT (BuildTransposed
//     never called) still searches correctly through this path;
//   - baseline — BenchmarkScan* measures the optimized cascade against
//     these on identical inputs.
//
// They intentionally preserve the original allocation behavior (fresh run
// buffer and DP rows per call) so the benchmark comparison reflects the
// real before/after cost, not just the layout change.

// referenceMSVFilter is the pre-optimization MSV scan: column-major
// emission lookups striding by K, a freshly allocated diagonal buffer per
// target, and no pruning.
func referenceMSVFilter(p *Profile, target *seq.Sequence, m metering.Meter) MSVHit {
	L := target.Len()
	best := MSVHit{Score: 0, Diagonal: 0}
	diags := L + p.M - 1
	run := make([]float32, diags)
	for i := 0; i < L; i++ {
		r := int(target.Residues[i])
		rowScores := p.Match // indexed [col*K + r]
		for j := 0; j < p.M; j++ {
			d := j - i + (L - 1)
			s := run[d] + rowScores[j*p.K+r]
			if s < 0 {
				s = 0
			}
			run[d] = s
			if s > best.Score {
				best.Score = s
				best.Diagonal = j - i
			}
		}
	}
	cells := uint64(L) * uint64(p.M)
	m.Record(metering.Event{
		Func:         "msv_filter",
		Instructions: cells * 4,
		Bytes:        cells * 8, // score read + running-diagonal read/write
		WorkingSet:   uint64(diags)*4 + p.MemoryBytes(),
		Pattern:      metering.Sequential,
		Branches:     cells,
		// Max/reset branches on random sequence are near-coinflips that
		// predictors only partially learn.
		BranchMissRate: 0.005,
	})
	return best
}

// referenceBandedViterbi is the pre-optimization banded kernel: DP rows
// allocated per call, column-major emission lookups, no early exit.
func referenceBandedViterbi(p *Profile, target *seq.Sequence, diagonal, halfWidth int, m metering.Meter) AlignResult {
	L := target.Len()
	w := 2*halfWidth + 1
	prev := newDPRows(w)
	cur := newDPRows(w)
	prev.reset()

	res := AlignResult{Score: 0}
	var cellsEven, cellsOdd uint64

	for i := 0; i < L; i++ {
		r := int(target.Residues[i])
		// Band columns for this row: center = i + diagonal.
		lo := i + diagonal - halfWidth
		cells := referenceCalcBandRow(p, r, i, lo, w, prev, cur, &res)
		if i%2 == 0 {
			cellsEven += cells
		} else {
			cellsOdd += cells
		}
		prev, cur = cur, prev
	}
	res.Cells = cellsEven + cellsOdd

	recordBandEvents(p, L, w, cellsEven, cellsOdd, m)
	return res
}

// referenceCalcBandRow evaluates one target row of the banded recurrence.
// prev holds row i-1 aligned to its own band window (shifted one column
// left relative to cur's window because the band tracks the diagonal).
func referenceCalcBandRow(p *Profile, r, row, lo, w int, prev, cur *dpRows, res *AlignResult) uint64 {
	var cells uint64
	K := p.K
	for b := 0; b < w; b++ {
		j := lo + b
		if j < 0 || j >= p.M {
			cur.m[b] = negInf
			cur.ins[b] = negInf
			cur.del[b] = negInf
			continue
		}
		cells++
		// prev row's band is centered one column left: prev index for
		// column j-1 is b (same slot), for column j is b+1.
		diagM, diagI, diagD := negInf, negInf, negInf
		if b < w { // column j-1 in previous row = slot b
			diagM, diagI, diagD = prev.m[b], prev.ins[b], prev.del[b]
		}
		upM, upI := negInf, negInf
		if b+1 < w { // column j in previous row = slot b+1
			upM, upI = prev.m[b+1], prev.ins[b+1]
		}
		leftM, leftD := negInf, negInf
		if b > 0 {
			leftM, leftD = cur.m[b-1], cur.del[b-1]
		}

		best := diagM
		if diagI > best {
			best = diagI
		}
		if diagD > best {
			best = diagD
		}
		if best < 0 {
			best = 0 // local alignment restart
		}
		mScore := best + p.Match[j*K+r]
		iScore := maxf(upM+p.Open, upI+p.Extend) + p.InsertPenalty
		dScore := maxf(leftM+p.Open, leftD+p.Extend)

		cur.m[b] = mScore
		cur.ins[b] = iScore
		cur.del[b] = dScore
		if mScore > res.Score {
			res.Score = mScore
			res.EndCol = j
			res.EndRow = row
		}
	}
	return cells
}

// referenceForward is the pre-optimization banded Forward pass: rows
// allocated per call, column-major emission lookups.
func referenceForward(p *Profile, target *seq.Sequence, diagonal, halfWidth int, m metering.Meter) float64 {
	L := target.Len()
	w := 2*halfWidth + 1
	prev := make([]float64, w)
	cur := make([]float64, w)
	for i := range prev {
		prev[i] = math.Inf(-1)
	}
	total := math.Inf(-1)
	var cells uint64
	for i := 0; i < L; i++ {
		r := int(target.Residues[i])
		lo := i + diagonal - halfWidth
		for b := 0; b < w; b++ {
			j := lo + b
			if j < 0 || j >= p.M {
				cur[b] = math.Inf(-1)
				continue
			}
			cells++
			diag := math.Inf(-1)
			if b < w {
				diag = prev[b]
			}
			up := math.Inf(-1)
			if b+1 < w {
				up = prev[b+1] + float64(p.Open)
			}
			left := math.Inf(-1)
			if b > 0 {
				left = cur[b-1] + float64(p.Open)
			}
			// Local-alignment start: each cell can begin a fresh path.
			sum := logSumExp4(diag, up, left, 0)
			cur[b] = sum + float64(p.Match[j*p.K+r])
			total = logSumExp2(total, cur[b])
		}
		prev, cur = cur, prev
	}
	recordForwardEvent(p, w, cells, m)
	if math.IsInf(total, -1) {
		return 0
	}
	return total
}
