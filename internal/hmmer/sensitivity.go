package hmmer

import (
	"fmt"

	"afsysbench/internal/metering"
	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
)

// Search-quality evaluation. The paper keeps jackhmmer/nhmmer despite their
// cost because of their sensitivity to distant homologs (Section VII); this
// harness measures the reproduction engine's own sensitivity/specificity so
// that performance work never silently trades away search quality. It is
// used by the test suite and available to users for regression tracking.

// SensitivityPoint is the recovery outcome at one divergence rate.
type SensitivityPoint struct {
	// Divergence is the substitution rate of the planted homologs.
	Divergence float64
	// Planted and Recovered count homologs at this rate and how many the
	// search reported with E below the significance threshold.
	Planted, Recovered int
}

// Recovery returns the recovered fraction.
func (p SensitivityPoint) Recovery() float64 {
	if p.Planted == 0 {
		return 0
	}
	return float64(p.Recovered) / float64(p.Planted)
}

// SensitivityReport is a full evaluation run.
type SensitivityReport struct {
	Points []SensitivityPoint
	// Decoys and FalsePositives measure specificity: random sequences
	// reported as significant.
	Decoys         int
	FalsePositives int
	// LanesRejected counts the full-precision work units the quantized SWAR
	// pre-passes disposed of during the scan — evidence the filter cascade,
	// not luck, is carrying the specificity (zero when SWAR is disabled).
	LanesRejected uint64
}

// FalsePositiveRate returns false positives per decoy.
func (r *SensitivityReport) FalsePositiveRate() float64 {
	if r.Decoys == 0 {
		return 0
	}
	return float64(r.FalsePositives) / float64(r.Decoys)
}

// SensitivityOptions configure an evaluation.
type SensitivityOptions struct {
	// QueryLen is the probe chain length (default 200).
	QueryLen int
	// PerRate is how many homologs to plant at each divergence (default 8).
	PerRate int
	// Decoys is the number of unrelated records (default 200).
	Decoys int
	// SignificanceE is the recovery threshold (default 1e-3).
	SignificanceE float64
	Seed          uint64
}

func (o SensitivityOptions) withDefaults() SensitivityOptions {
	if o.QueryLen <= 0 {
		o.QueryLen = 200
	}
	if o.PerRate <= 0 {
		o.PerRate = 8
	}
	if o.Decoys <= 0 {
		o.Decoys = 200
	}
	if o.SignificanceE == 0 {
		o.SignificanceE = 1e-3
	}
	return o
}

// EvaluateSensitivity plants homologs of a random query at each divergence
// rate among decoys, runs the standard protein search, and reports recovery
// per rate plus the decoy false-positive rate.
func EvaluateSensitivity(rates []float64, opts SensitivityOptions) (*SensitivityReport, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("hmmer: no divergence rates")
	}
	opts = opts.withDefaults()
	src := rng.New(opts.Seed)
	gen := seq.NewGenerator(src.Split(1))
	query := gen.Random("probe", seq.Protein, opts.QueryLen)

	var records []*seq.Sequence
	planted := make(map[string]int) // id -> rate index
	for ri, rate := range rates {
		if rate < 0 || rate >= 1 {
			return nil, fmt.Errorf("hmmer: divergence rate %v out of [0,1)", rate)
		}
		for k := 0; k < opts.PerRate; k++ {
			id := fmt.Sprintf("hom_r%02d_%02d", ri, k)
			records = append(records, gen.Mutate(query, id, rate))
			planted[id] = ri
		}
	}
	for d := 0; d < opts.Decoys; d++ {
		records = append(records, gen.Random(fmt.Sprintf("decoy_%04d", d), seq.Protein, opts.QueryLen))
	}
	// Deterministic shuffle so planted records are not clustered.
	perm := src.Split(2).Perm(len(records))
	shuffled := make([]*seq.Sequence, len(records))
	for i, p := range perm {
		shuffled[i] = records[p]
	}

	dbResidues := 0
	for _, r := range shuffled {
		dbResidues += r.Len()
	}
	res, err := SearchProtein(query, func() RecordSource {
		return &SliceSource{Seqs: shuffled}
	}, dbResidues, SearchOptions{Iterations: 1, MaxEValue: 10}, metering.Nop{})
	if err != nil {
		return nil, err
	}

	report := &SensitivityReport{Decoys: opts.Decoys, LanesRejected: res.LanesRejected}
	report.Points = make([]SensitivityPoint, len(rates))
	for ri, rate := range rates {
		report.Points[ri] = SensitivityPoint{Divergence: rate, Planted: opts.PerRate}
	}
	for _, h := range res.Hits {
		if h.EValue > opts.SignificanceE {
			continue
		}
		if ri, ok := planted[h.TargetID]; ok {
			report.Points[ri].Recovered++
		} else {
			report.FalsePositives++
		}
	}
	return report, nil
}
