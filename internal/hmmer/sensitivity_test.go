package hmmer

import "testing"

func TestSensitivityCurveShape(t *testing.T) {
	rates := []float64{0.05, 0.2, 0.4, 0.7}
	rep, err := EvaluateSensitivity(rates, SensitivityOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	// Close homologs must be found nearly always; far ones rarely.
	if r := rep.Points[0].Recovery(); r < 0.9 {
		t.Errorf("recovery at 5%% divergence = %.2f, want ~1", r)
	}
	if r := rep.Points[3].Recovery(); r > rep.Points[0].Recovery() {
		t.Errorf("recovery at 70%% divergence (%.2f) exceeds close homologs", r)
	}
	// The curve must decline overall (allow one non-monotone step from
	// small-sample noise).
	drops := 0
	for i := 1; i < len(rep.Points); i++ {
		if rep.Points[i].Recovery() <= rep.Points[i-1].Recovery() {
			drops++
		}
	}
	if drops < 2 {
		t.Errorf("recovery curve not declining: %+v", rep.Points)
	}
	// The default scan arms the SWAR pre-passes; a decoy-heavy DB must show
	// quantized rejections, or the specificity above is not coming from the
	// filter cascade this suite models.
	if rep.LanesRejected == 0 {
		t.Error("sensitivity scan recorded no SWAR lane rejections")
	}
}

func TestSensitivitySpecificity(t *testing.T) {
	rep, err := EvaluateSensitivity([]float64{0.1}, SensitivityOptions{Seed: 2, Decoys: 300})
	if err != nil {
		t.Fatal(err)
	}
	if fpr := rep.FalsePositiveRate(); fpr > 0.02 {
		t.Errorf("false positive rate = %.3f, want ~0 at E<=1e-3", fpr)
	}
}

func TestSensitivityDeterministic(t *testing.T) {
	a, err := EvaluateSensitivity([]float64{0.1, 0.3}, SensitivityOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateSensitivity([]float64{0.1, 0.3}, SensitivityOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i].Recovered != b.Points[i].Recovered {
			t.Fatal("sensitivity evaluation not deterministic")
		}
	}
	if a.FalsePositives != b.FalsePositives {
		t.Fatal("false positives not deterministic")
	}
	if a.LanesRejected != b.LanesRejected {
		t.Fatal("SWAR rejection counter not deterministic")
	}
}

func TestSensitivityErrors(t *testing.T) {
	if _, err := EvaluateSensitivity(nil, SensitivityOptions{}); err == nil {
		t.Error("empty rates accepted")
	}
	if _, err := EvaluateSensitivity([]float64{1.5}, SensitivityOptions{}); err == nil {
		t.Error("out-of-range rate accepted")
	}
}

func TestSensitivityHelpers(t *testing.T) {
	p := SensitivityPoint{Planted: 0}
	if p.Recovery() != 0 {
		t.Error("zero-planted recovery should be 0")
	}
	r := &SensitivityReport{}
	if r.FalsePositiveRate() != 0 {
		t.Error("zero-decoy FPR should be 0")
	}
}
