package hmmer

import (
	"afsysbench/internal/seq"
)

// Long-target windowing, nhmmer style. Nucleotide database records
// (chromosomes, rRNA operons) can be orders of magnitude longer than the
// query; nhmmer scans them in overlapping windows so the DP working set
// stays bounded per window — while the *accumulated* per-window candidate
// state is exactly the memory behavior that blows up on long queries
// (paper Section III-C / Figure 2).

// windowPlan describes how a target of length L is split for a query of
// length qLen: windows of length 3·qLen (minimum minWindow), overlapping by
// qLen so no alignment of query length is ever split.
type windowPlan struct {
	winLen  int
	stride  int
	targets int // number of windows
}

const minWindow = 512

func planWindows(qLen, targetLen int) windowPlan {
	winLen := 3 * qLen
	if winLen < minWindow {
		winLen = minWindow
	}
	if winLen >= targetLen {
		return windowPlan{winLen: targetLen, stride: targetLen, targets: 1}
	}
	stride := winLen - qLen
	n := 1 + (targetLen-winLen+stride-1)/stride
	return windowPlan{winLen: winLen, stride: stride, targets: n}
}

// WindowScanResult aggregates a windowed scan of one long target.
type WindowScanResult struct {
	Windows int
	// PeakStateBytes models the per-target candidate state nhmmer holds:
	// every seeded window keeps its DP band and hit context alive until
	// target postprocessing (the Figure 2 memory driver).
	PeakStateBytes int64
	Hits           []Hit
	Candidates     int
	CellsDP        uint64
	CellsPruned    uint64
	LanesRejected  uint64
}

// scanLongTarget runs the windowed nucleotide scan of a single target. Each
// window goes through the usual seed → banded-Viterbi → Forward cascade;
// hit coordinates are mapped back to the whole target. The window header is
// the workspace's reusable Sequence — windows are views into the target's
// residues, so no bytes are copied per window.
func (s *scanState) scanLongTarget(target *seq.Sequence) WindowScanResult {
	plan := planWindows(s.query.Len(), target.Len())
	out := WindowScanResult{Windows: plan.targets}
	bandBytes := int64(2*s.opts.HalfWidth+1) * 3 * 4 // one band row set

	window := &s.ws.window
	window.ID = target.ID
	window.Type = target.Type
	for wi := 0; wi < plan.targets; wi++ {
		start := wi * plan.stride
		end := start + plan.winLen
		if end > target.Len() {
			end = target.Len()
		}
		window.Residues = target.Residues[start:end]
		diags := s.idx.candidates(window, s.opts.MinSeeds, s.opts.MaxDiagonals, 2*s.opts.HalfWidth, s.ws, s.m)
		if len(diags) == 0 {
			continue
		}
		// Seeded windows retain their DP state and window copy until the
		// target finishes — the superlinear accumulation.
		out.PeakStateBytes += int64(end-start) + bandBytes*int64(end-start) + int64(len(diags))*64

		for _, d := range diags {
			out.Candidates++
			if cells, rejected := s.ssvReject(window, d); rejected {
				out.CellsPruned += cells
				out.LanesRejected += cells
				continue
			}
			ali, pruned := bandedViterbi(s.p, window, d, s.opts.HalfWidth, s.ws, s.bandFloor, s.m)
			out.CellsDP += ali.Cells
			out.CellsPruned += pruned
			ev := s.p.EValue(float64(ali.Score), s.dbResidues)
			if ev > s.opts.MaxEValue*10 {
				continue
			}
			fwd := forward(s.p, window, d, s.opts.HalfWidth, s.ws, s.m)
			fev := s.p.EValue(fwd, s.dbResidues)
			if fev > s.opts.MaxEValue {
				continue
			}
			_, traced := bandedViterbiAlign(s.p, window, d, s.opts.HalfWidth, s.ws, s.m)
			// Map window-relative positions back to the whole target.
			if traced != nil {
				for pi := range traced.Pairs {
					if traced.Pairs[pi].Pos >= 0 {
						traced.Pairs[pi].Pos += start
					}
				}
			}
			kept := s.retain(target)
			out.Hits = append(out.Hits, Hit{
				TargetID:     kept.ID,
				Target:       kept,
				Diagonal:     d + start, // whole-target diagonal
				ViterbiScore: float64(ali.Score),
				ForwardScore: fwd,
				Bits:         s.p.BitScore(fwd),
				EValue:       fev,
				Alignment:    traced,
			})
		}
	}
	window.Residues = nil // don't pin the target's bytes in the pool
	return out
}

// longTargetThreshold is the length above which nucleotide targets switch
// to windowed scanning.
func longTargetThreshold(qLen int) int {
	t := 4 * qLen
	if t < 2*minWindow {
		t = 2 * minWindow
	}
	return t
}
