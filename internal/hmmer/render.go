package hmmer

import (
	"fmt"
	"io"
	"strings"

	"afsysbench/internal/seq"
)

// Alignment rendering: BLAST-style three-line blocks (query, match line,
// target) for reported hits — the human-readable face of the traceback.

// RenderAlignment writes the aligned query/target pair in blocks of the
// given width. The match line marks identities with the residue letter and
// substitutions with a space; gaps appear as '-'.
func RenderAlignment(w io.Writer, query, target *seq.Sequence, a *Alignment, width int) error {
	if a == nil || len(a.Pairs) == 0 {
		return fmt.Errorf("hmmer: empty alignment")
	}
	if width <= 0 {
		width = 60
	}
	qAlpha := query.Type.Alphabet()
	tAlpha := target.Type.Alphabet()

	var qLine, mLine, tLine []byte
	qStart, tStart := -1, -1
	var qEnd, tEnd int
	for _, p := range a.Pairs {
		switch p.Op {
		case OpMatch:
			qc := qAlpha[query.Residues[p.Col]]
			tc := tAlpha[target.Residues[p.Pos]]
			qLine = append(qLine, qc)
			tLine = append(tLine, tc)
			if qc == tc {
				mLine = append(mLine, qc)
			} else {
				mLine = append(mLine, ' ')
			}
			if qStart < 0 {
				qStart = p.Col
			}
			if tStart < 0 {
				tStart = p.Pos
			}
			qEnd, tEnd = p.Col, p.Pos
		case OpInsert:
			qLine = append(qLine, '-')
			mLine = append(mLine, ' ')
			tLine = append(tLine, tAlpha[target.Residues[p.Pos]])
			if tStart < 0 {
				tStart = p.Pos
			}
			tEnd = p.Pos
		case OpDelete:
			qLine = append(qLine, qAlpha[query.Residues[p.Col]])
			mLine = append(mLine, ' ')
			tLine = append(tLine, '-')
			if qStart < 0 {
				qStart = p.Col
			}
			qEnd = p.Col
		}
	}

	if _, err := fmt.Fprintf(w, "%s x %s  score %.1f  q:%d-%d t:%d-%d\n",
		query.ID, target.ID, a.Score, qStart+1, qEnd+1, tStart+1, tEnd+1); err != nil {
		return err
	}
	for off := 0; off < len(qLine); off += width {
		end := off + width
		if end > len(qLine) {
			end = len(qLine)
		}
		if _, err := fmt.Fprintf(w, "  query  %s\n         %s\n  target %s\n",
			qLine[off:end], mLine[off:end], tLine[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// Identity returns the fraction of match operations whose residues are
// identical letters.
func Identity(query, target *seq.Sequence, a *Alignment) float64 {
	matches, ident := 0, 0
	for _, p := range a.Pairs {
		if p.Op != OpMatch {
			continue
		}
		matches++
		if query.Residues[p.Col] == target.Residues[p.Pos] {
			ident++
		}
	}
	if matches == 0 {
		return 0
	}
	return float64(ident) / float64(matches)
}

// Summary returns a one-line hit description for reports.
func (h Hit) Summary(query *seq.Sequence) string {
	ident := ""
	if h.Alignment != nil {
		ident = fmt.Sprintf(" ident=%.0f%%", 100*Identity(query, h.Target, h.Alignment))
	}
	return strings.TrimSpace(fmt.Sprintf("%s E=%.2g bits=%.1f%s", h.TargetID, h.EValue, h.Bits, ident))
}
