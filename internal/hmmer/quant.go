package hmmer

import (
	"encoding/binary"
	"math"
)

// 8-bit score quantization for the SWAR filter cascade (see DESIGN.md §11).
//
// The SWAR kernels run the MSV/SSV recurrences in saturating unsigned 8-bit
// lanes, eight per uint64. They are reject-only: a window they pass re-runs
// through the exact float32 kernels, so the quantization only has to preserve
// one direction — the quantized running score must never fall below λ times
// the exact running score. Every rounding choice below is made to keep that
// invariant:
//
//   - emission bytes are ceil(λ·score)+B, so each add over-estimates λ·score;
//   - the bias clamp at 0 (scores below −B/λ) under-charges a penalty;
//   - the lane clamp at 0 matches the local-alignment restart exactly;
//   - saturation at 255 is forced to read as a pass: thresholds are capped at
//     255−B, so a lane that ever saturates stays at ≥ 255−B after the bias
//     subtract and trips the pass check before it can decay.
//
// With the invariant r_q ≥ λ·r_exact in hand, rejecting a window because
// every quantized cell stayed below floor(λ·(threshold − pruneMargin)) proves
// the exact float32 scan also stays below its threshold — bit-for-bit the
// same hit list, just cheaper misses.

// quantLaneWidth is the number of packed lanes per SWAR word.
const quantLaneWidth = 8

// quantProfile is the packed 8-bit companion of a Profile's match table.
type quantProfile struct {
	// scale is λ: one exact score point spans λ quantization levels.
	scale float64
	// bias is B, added into every emission byte and subtracted (saturating at
	// zero) after every lane add, so negative scores survive the unsigned
	// representation.
	bias uint8
	// switchQ and extQ are the band pre-pass's quantized gap charges. A real
	// gap burst that consumes g target rows costs the float kernel at least
	// a + (g-1)·b with a = |Open+InsertPenalty| and b = |Extend+InsertPenalty|
	// (insert-only burst; deletions only add cost), and a row-free
	// deletion-only burst costs at least |Open|. Charging
	// switchQ = floor(λ·min(|Open|, a-b)) per burst plus extQ = floor(λ·b)
	// per consumed row therefore under-charges every possible burst shape,
	// which keeps the pre-pass an upper bound.
	switchQ uint8
	extQ    uint8
	// cols is the profile's match-column count M; stride is M rounded up to
	// a whole number of lanes, with the padding bytes zero (a zero emission
	// decays a lane, it can never grow one).
	cols   int
	stride int
	// emis holds the packed emission bytes, residue-major: row r is
	// emis[r*stride : (r+1)*stride], entry j is clamp(ceil(λ·score)+B, 0, 255).
	emis []byte
	// emisW is the same table viewed as little-endian packed words (stride/8
	// per residue row), so the MSV inner loop loads a whole lane group with
	// one bounds-check-free indexed read.
	emisW []uint64
	// tailMask keeps the lanes of the last word that map to real profile
	// columns; padding lanes are cleared every row so a stale shifted-in value
	// cannot linger past the column range.
	tailMask uint64
}

// buildQuant derives the packed table from a transposed profile, or nil when
// the score range cannot be represented soundly (the scan then simply stays
// on the float32 path). The scale is chosen so the full dynamic range
// [−nr, max(maxMatch, Mu+4)] maps into [0,255] with two levels of headroom
// for the ceil round-ups, which guarantees no emission byte ever top-clips.
func buildQuant(p *Profile) *quantProfile {
	if !p.transposed() || p.M == 0 {
		return nil
	}
	minScore := float64(0)
	for _, s := range p.MatchT {
		if float64(s) < minScore {
			minScore = float64(s)
		}
	}
	hi := p.Mu + 4 // headroom above the MSV threshold
	if float64(p.maxMatch) > hi {
		hi = float64(p.maxMatch)
	}
	nr := -minScore
	if nr > hi {
		nr = hi // deeper penalties clamp to 0 (under-charge, still sound)
	}
	scale := 253 / (nr + hi)
	if scale <= 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		return nil
	}
	bias := int(math.Ceil(scale * nr))
	if bias > 127 {
		// The simplified constant-subtract SWAR form needs bit 7 of the
		// constant clear; out-of-range profiles stay on the float path.
		return nil
	}
	a := float64(-(p.Open + p.InsertPenalty))
	b := float64(-(p.Extend + p.InsertPenalty))
	c := float64(-p.Open)
	sw := math.Floor(scale * math.Min(c, a-b))
	ext := math.Floor(scale * b)
	q := &quantProfile{
		scale:   scale,
		bias:    uint8(bias),
		switchQ: uint8(clampQ(sw)),
		extQ:    uint8(clampQ(ext)),
		cols:    p.M,
		stride:  (p.M + quantLaneWidth - 1) &^ (quantLaneWidth - 1),
	}
	lastLanes := p.M - (q.stride - quantLaneWidth)
	q.tailMask = ^uint64(0) >> (8 * (quantLaneWidth - lastLanes))
	q.emis = make([]byte, p.K*q.stride)
	for r := 0; r < p.K; r++ {
		row := q.emis[r*q.stride : (r+1)*q.stride]
		for col := 0; col < p.M; col++ {
			// The tiny epsilon keeps Ceil from landing one level low when
			// the float64 product rounds down across an integer boundary;
			// over-rounding only raises the upper bound.
			lv := bias + int(math.Ceil(scale*float64(p.MatchT[r*p.M+col])+1e-7))
			if lv < 0 {
				lv = 0
			}
			if lv > 255 {
				// Unreachable by construction (253 + two ceils ≤ 255), but a
				// top-clip would silently break the bound — disarm instead.
				return nil
			}
			row[col] = byte(lv)
		}
	}
	nw := q.stride / quantLaneWidth
	q.emisW = make([]uint64, p.K*nw)
	for w := range q.emisW {
		q.emisW[w] = binary.LittleEndian.Uint64(q.emis[w*8:])
	}
	return q
}

// thresholdByte converts an exact-score rejection floor into a quantized
// lane threshold for a target of length L. ok is false when the floor is too
// low to reject anything (the pre-pass is skipped — never wrong, just idle).
// The pruneMargin subtraction absorbs float32 drift of the exact kernels, and
// the 255−bias cap makes saturation register as a pass (see package comment).
func (q *quantProfile) thresholdByte(scoreFloor float32, L int) (uint8, bool) {
	v := int(math.Floor(q.scale * (float64(scoreFloor) - float64(pruneMargin(L)))))
	if v < 1 {
		return 0, false
	}
	if limit := 255 - int(q.bias); v > limit {
		v = limit
	}
	return uint8(v), true
}

// clampQ clamps a gap-charge level into [0, 127]; the upper cap keeps bit 7
// of the charge clear as satSubConst8 requires, and clamping only lowers a
// charge, which under-charges and stays sound.
func clampQ(v float64) int {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 127 {
		return 127
	}
	return int(v)
}

// words is the number of packed uint64 words per emission row.
func (q *quantProfile) words() int { return q.stride / quantLaneWidth }

// memoryBytes is the packed table's resident size (metering working set).
func (q *quantProfile) memoryBytes() uint64 { return uint64(len(q.emis)) }
