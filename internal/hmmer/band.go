package hmmer

import (
	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

// Banded Viterbi alignment.
//
// After the seed (or MSV) filter identifies a promising diagonal, the full
// affine-gap Viterbi recurrence runs inside a band of half-width
// BandHalfWidth around that diagonal. The row kernels are split into two
// specialized functions, calcBand9 and calcBand10 — mirroring the
// calc_band_9/calc_band_10 symbols that dominate CPU cycles in the paper's
// Table IV — which alternate over target rows (even rows take the
// 9-variant, odd rows the 10-variant, so the 9-variant retires slightly
// more work, as in the paper).

// BandHalfWidth is the default half-width of the Viterbi band. The full
// band width is 2*BandHalfWidth+1 columns per target row.
const BandHalfWidth = 9

const negInf float32 = -1e30

// AlignResult is a banded (or full) Viterbi alignment outcome.
type AlignResult struct {
	Score float32
	// EndCol/EndRow locate the best-scoring cell (profile column, target row).
	EndCol, EndRow int
	// Cells is the number of DP cells evaluated.
	Cells uint64
}

// dpRows holds the three-state DP rows for a band of width w. Reused across
// rows to keep the working set at two rows, and across records via the scan
// workspace.
type dpRows struct {
	m, ins, del []float32
}

func newDPRows(w int) *dpRows {
	return &dpRows{
		m:   make([]float32, w),
		ins: make([]float32, w),
		del: make([]float32, w),
	}
}

// ensure resizes the rows to width w, reusing capacity when possible.
func (d *dpRows) ensure(w int) {
	if cap(d.m) < w {
		d.m = make([]float32, w)
		d.ins = make([]float32, w)
		d.del = make([]float32, w)
		return
	}
	d.m = d.m[:w]
	d.ins = d.ins[:w]
	d.del = d.del[:w]
}

func (d *dpRows) reset() {
	for i := range d.m {
		d.m[i] = negInf
		d.ins[i] = negInf
		d.del[i] = negInf
	}
}

// BandedViterbi aligns target against the profile inside a band of
// half-width halfWidth around diagonal (profile col − target row). It
// reports per-kernel metering events and returns the best local score.
func BandedViterbi(p *Profile, target *seq.Sequence, diagonal, halfWidth int, m metering.Meter) AlignResult {
	if m == nil {
		m = metering.Nop{}
	}
	if !p.transposed() {
		return referenceBandedViterbi(p, target, diagonal, halfWidth, m)
	}
	ws := takeScanWorkspace()
	res, _ := bandedViterbi(p, target, diagonal, halfWidth, ws, negInf, m)
	releaseScanWorkspace(ws)
	return res
}

// bandedViterbi is the workspace-backed banded kernel. With floor = negInf
// it is bitwise identical to referenceBandedViterbi. A real floor arms the
// row-max cutoff: after each row, if neither the best score so far nor any
// state in the current row plus maxMatch-per-remaining-row can reach the
// floor, the remaining rows are provably irrelevant to a caller that only
// acts on scores >= floor, and DP stops. The skipped cell count is returned
// and metered as pruned volume (see recordBandPrune).
func bandedViterbi(p *Profile, target *seq.Sequence, diagonal, halfWidth int, ws *scanWorkspace, floor float32, m metering.Meter) (AlignResult, uint64) {
	if !p.transposed() {
		return referenceBandedViterbi(p, target, diagonal, halfWidth, m), 0
	}
	L := target.Len()
	w := 2*halfWidth + 1
	prev, cur := ws.bandRows(w)
	prev.reset()

	res := AlignResult{Score: 0}
	var cellsEven, cellsOdd, pruned uint64
	prune := floor > negInf/2

	for i := 0; i < L; i++ {
		r := int(target.Residues[i])
		rowT := p.MatchT[r*p.M : (r+1)*p.M]
		// Band columns for this row: center = i + diagonal.
		lo := i + diagonal - halfWidth
		cells, rowMax := calcBandRow(p, rowT, i, lo, w, prev, cur, &res)
		if i%2 == 0 {
			cellsEven += cells
		} else {
			cellsOdd += cells
		}
		prev, cur = cur, prev
		if prune && res.Score < floor {
			// Every path through the remaining rows starts from some state
			// of this row (or a local restart at 0) and gains at most
			// maxMatch per row; penalties only subtract. If that ceiling
			// stays below the floor, the band cannot recover.
			rem := L - 1 - i
			bound := rowMax
			if bound < 0 {
				bound = 0
			}
			if bound+float32(rem)*p.maxMatch+pruneMargin(rem) < floor {
				pruned = countBandCells(i+1, L, diagonal, halfWidth, p.M)
				recordBandPrune(i+1, L, w, pruned, m)
				break
			}
		}
	}
	res.Cells = cellsEven + cellsOdd
	recordBandEvents(p, L, w, cellsEven, cellsOdd, m)
	return res, pruned
}

// calcBandRow evaluates one target row of the banded recurrence against the
// residue-major emission row rowT. prev holds row i-1 aligned to its own
// band window (shifted one column left relative to cur's window because the
// band tracks the diagonal). Returns the in-profile cell count and the
// maximum state value of the row (the input to the pruning bound).
func calcBandRow(p *Profile, rowT []float32, row, lo, w int, prev, cur *dpRows, res *AlignResult) (uint64, float32) {
	var cells uint64
	rowMax := negInf
	M := p.M
	for b := 0; b < w; b++ {
		j := lo + b
		if j < 0 || j >= M {
			cur.m[b] = negInf
			cur.ins[b] = negInf
			cur.del[b] = negInf
			continue
		}
		cells++
		// prev row's band is centered one column left: prev index for
		// column j-1 is b (same slot), for column j is b+1.
		diagM, diagI, diagD := prev.m[b], prev.ins[b], prev.del[b]
		upM, upI := negInf, negInf
		if b+1 < w { // column j in previous row = slot b+1
			upM, upI = prev.m[b+1], prev.ins[b+1]
		}
		leftM, leftD := negInf, negInf
		if b > 0 {
			leftM, leftD = cur.m[b-1], cur.del[b-1]
		}

		best := diagM
		if diagI > best {
			best = diagI
		}
		if diagD > best {
			best = diagD
		}
		if best < 0 {
			best = 0 // local alignment restart
		}
		mScore := best + rowT[j]
		iScore := maxf(upM+p.Open, upI+p.Extend) + p.InsertPenalty
		dScore := maxf(leftM+p.Open, leftD+p.Extend)

		cur.m[b] = mScore
		cur.ins[b] = iScore
		cur.del[b] = dScore
		if mScore > rowMax {
			rowMax = mScore
		}
		if iScore > rowMax {
			rowMax = iScore
		}
		if dScore > rowMax {
			rowMax = dScore
		}
		if mScore > res.Score {
			res.Score = mScore
			res.EndCol = j
			res.EndRow = row
		}
	}
	return cells, rowMax
}

// countBandCells returns the number of in-profile band cells in target rows
// [from, L) — the DP volume an early cutoff skips.
func countBandCells(from, L, diagonal, halfWidth, M int) uint64 {
	var n uint64
	for i := from; i < L; i++ {
		lo := i + diagonal - halfWidth
		hi := lo + 2*halfWidth
		if lo < 0 {
			lo = 0
		}
		if hi > M-1 {
			hi = M - 1
		}
		if hi >= lo {
			n += uint64(hi - lo + 1)
		}
	}
	return n
}

// recordBandEvents emits the two per-kernel-variant metering events. Per-cell
// costs reflect the 3-state affine recurrence: ~14 instructions, ~56 bytes
// touched (three prior states, emission lookup, three writes).
func recordBandEvents(p *Profile, L, w int, cellsEven, cellsOdd uint64, m metering.Meter) {
	ws := uint64(6*w)*4 + p.MemoryBytes() + uint64(L)
	record := func(fn string, cells uint64) {
		if cells == 0 {
			return
		}
		m.Record(metering.Event{
			Func:           fn,
			Instructions:   cells * 14,
			Bytes:          cells * 56,
			WorkingSet:     ws,
			Pattern:        metering.Strided,
			Branches:       cells * 4,
			BranchMissRate: 0.004,
		})
	}
	record("calc_band_9", cellsEven)
	record("calc_band_10", cellsOdd)
}

// recordBandPrune charges the row-max cutoff's real residual work — one
// bound check per executed row and one band-overlap count per skipped row —
// and records the skipped cells as pruned volume. The skipped cells are NOT
// charged at kernel cost: unlike MSV's dead lanes (which still pay a
// sentinel visit per row), a cut-off band never touches them at all.
func recordBandPrune(rowsDone, L, w int, pruned uint64, m metering.Meter) {
	m.Record(metering.Event{
		Func:         "band_prune",
		Instructions: uint64(rowsDone)*4 + uint64(L-rowsDone)*2,
		Bytes:        uint64(rowsDone) * 4,
		WorkingSet:   uint64(6*w) * 4,
		Pattern:      metering.Sequential,
		Branches:     uint64(rowsDone),
		Pruned:       pruned,
	})
}

// FullViterbi runs the unbanded O(M·L) recurrence — the reference
// implementation the banded kernels are validated against, and the
// "band width = ∞" arm of the band-width ablation.
func FullViterbi(p *Profile, target *seq.Sequence, m metering.Meter) AlignResult {
	L := target.Len()
	M := p.M
	K := p.K
	prevM := make([]float32, M+1)
	prevI := make([]float32, M+1)
	prevD := make([]float32, M+1)
	curM := make([]float32, M+1)
	curI := make([]float32, M+1)
	curD := make([]float32, M+1)
	for j := 0; j <= M; j++ {
		prevM[j], prevI[j], prevD[j] = negInf, negInf, negInf
	}
	res := AlignResult{Score: 0}
	for i := 0; i < L; i++ {
		r := int(target.Residues[i])
		curM[0], curI[0], curD[0] = negInf, negInf, negInf
		for j := 1; j <= M; j++ {
			best := prevM[j-1]
			if prevI[j-1] > best {
				best = prevI[j-1]
			}
			if prevD[j-1] > best {
				best = prevD[j-1]
			}
			if best < 0 {
				best = 0
			}
			mScore := best + p.Match[(j-1)*K+r]
			iScore := maxf(prevM[j]+p.Open, prevI[j]+p.Extend) + p.InsertPenalty
			dScore := maxf(curM[j-1]+p.Open, curD[j-1]+p.Extend)
			curM[j] = mScore
			curI[j] = iScore
			curD[j] = dScore
			if mScore > res.Score {
				res.Score = mScore
				res.EndCol = j - 1
				res.EndRow = i
			}
		}
		prevM, curM = curM, prevM
		prevI, curI = curI, prevI
		prevD, curD = curD, prevD
	}
	cells := uint64(L) * uint64(M)
	res.Cells = cells
	m.Record(metering.Event{
		Func:           "viterbi_full",
		Instructions:   cells * 14,
		Bytes:          cells * 56,
		WorkingSet:     uint64(6*(M+1))*4 + p.MemoryBytes() + uint64(L),
		Pattern:        metering.Strided,
		Branches:       cells * 4,
		BranchMissRate: 0.004,
	})
	return res
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
