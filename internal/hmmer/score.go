// Package hmmer implements the profile hidden Markov model search engine
// behind the MSA phase: profile construction, the MSV ungapped prefilter,
// banded Viterbi alignment kernels (calc_band_9 / calc_band_10, named after
// the hot symbols in the paper's function-level profile), Forward scoring
// with Gumbel E-values, a jackhmmer-style iterative protein search, and an
// nhmmer-style windowed nucleotide scan whose quadratic window memory
// reproduces the paper's RNA footprint blowup (Fig. 2).
//
// All kernels perform real dynamic-programming arithmetic on real data and
// simultaneously report metering events so the machine models can replay
// the work on the paper's two platforms.
package hmmer

import (
	"afsysbench/internal/seq"
)

// Substitution scoring. The engine uses additive log-odds scores in
// half-bit-like units stored as float32. The protein matrix is a
// BLOSUM-flavored chemistry-group matrix: identity scores +4..+6 by rarity,
// same-group substitutions +1, cross-group -1..-2. Nucleotides use a
// +3/-2 match/mismatch scheme. The exact values matter less than their
// statistics; E-value calibration absorbs the scale.

// chemistry groups over ProteinAlphabet = "ACDEFGHIKLMNPQRSTVWY"
var proteinGroup = map[byte]int{
	'A': 0, 'G': 0, 'S': 0, 'T': 0, // small
	'C': 1,                         // cysteine
	'D': 2, 'E': 2, 'N': 2, 'Q': 2, // acidic/amide
	'K': 3, 'R': 3, 'H': 3, // basic
	'I': 4, 'L': 4, 'M': 4, 'V': 4, // aliphatic
	'F': 5, 'W': 5, 'Y': 5, // aromatic
	'P': 6, // proline
}

// Matrix is a residue substitution matrix over an alphabet of size N,
// indexed [a*N+b].
type Matrix struct {
	N      int
	Scores []float32
}

// At returns the score for aligning residues a and b.
func (m *Matrix) At(a, b byte) float32 { return m.Scores[int(a)*m.N+int(b)] }

// ProteinMatrix returns the 20x20 protein substitution matrix.
func ProteinMatrix() *Matrix {
	n := len(seq.ProteinAlphabet)
	m := &Matrix{N: n, Scores: make([]float32, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ri, rj := seq.ProteinAlphabet[i], seq.ProteinAlphabet[j]
			var s float32
			switch {
			case i == j:
				s = 4
				if proteinGroup[ri] == 1 || proteinGroup[ri] == 5 || ri == 'W' {
					s = 6 // rare residues score their identity higher
				}
			case proteinGroup[ri] == proteinGroup[rj]:
				s = 1
			default:
				s = -1.5
			}
			m.Scores[i*n+j] = s
		}
	}
	return m
}

// NucleotideMatrix returns the 4x4 matrix shared by DNA and RNA.
func NucleotideMatrix() *Matrix {
	const n = 4
	m := &Matrix{N: n, Scores: make([]float32, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m.Scores[i*n+j] = 3
			} else {
				m.Scores[i*n+j] = -2
			}
		}
	}
	return m
}

// MatrixFor returns the substitution matrix for a molecule type, or nil for
// types without an alphabet.
func MatrixFor(t seq.MoleculeType) *Matrix {
	switch t {
	case seq.Protein:
		return ProteinMatrix()
	case seq.DNA, seq.RNA:
		return NucleotideMatrix()
	default:
		return nil
	}
}

// Gap penalties in score units. Affine: open + extend per residue.
const (
	gapOpen   float32 = -6
	gapExtend float32 = -1
)
