package hmmer

import (
	"math"

	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

// Forward computes the log-sum-exp Forward score of the target under the
// profile within the same band used by the Viterbi pass. Forward is the
// final, most expensive scoring stage (posterior-summed rather than
// best-path) and runs only on Viterbi survivors; its score feeds the
// E-value.
func Forward(p *Profile, target *seq.Sequence, diagonal, halfWidth int, m metering.Meter) float64 {
	L := target.Len()
	w := 2*halfWidth + 1
	prev := make([]float64, w)
	cur := make([]float64, w)
	for i := range prev {
		prev[i] = math.Inf(-1)
	}
	total := math.Inf(-1)
	var cells uint64
	for i := 0; i < L; i++ {
		r := int(target.Residues[i])
		lo := i + diagonal - halfWidth
		for b := 0; b < w; b++ {
			j := lo + b
			if j < 0 || j >= p.M {
				cur[b] = math.Inf(-1)
				continue
			}
			cells++
			diag := math.Inf(-1)
			if b < w {
				diag = prev[b]
			}
			up := math.Inf(-1)
			if b+1 < w {
				up = prev[b+1] + float64(p.Open)
			}
			left := math.Inf(-1)
			if b > 0 {
				left = cur[b-1] + float64(p.Open)
			}
			// Local-alignment start: each cell can begin a fresh path.
			sum := logSumExp4(diag, up, left, 0)
			cur[b] = sum + float64(p.Match[j*p.K+r])
			total = logSumExp2(total, cur[b])
		}
		prev, cur = cur, prev
	}
	m.Record(metering.Event{
		Func:           "forward_band",
		Instructions:   cells * 30, // exp/log dominated
		Bytes:          cells * 40,
		WorkingSet:     uint64(2*w)*8 + p.MemoryBytes(),
		Pattern:        metering.Strided,
		Branches:       cells * 2,
		BranchMissRate: 0.003,
	})
	if math.IsInf(total, -1) {
		return 0
	}
	return total
}

func logSumExp2(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}

func logSumExp4(a, b, c, d float64) float64 {
	return logSumExp2(logSumExp2(a, b), logSumExp2(c, d))
}
