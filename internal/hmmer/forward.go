package hmmer

import (
	"math"

	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

// Forward computes the log-sum-exp Forward score of the target under the
// profile within the same band used by the Viterbi pass. Forward is the
// final, most expensive scoring stage (posterior-summed rather than
// best-path) and runs only on Viterbi survivors; its score feeds the
// E-value.
func Forward(p *Profile, target *seq.Sequence, diagonal, halfWidth int, m metering.Meter) float64 {
	if m == nil {
		m = metering.Nop{}
	}
	if !p.transposed() {
		return referenceForward(p, target, diagonal, halfWidth, m)
	}
	ws := takeScanWorkspace()
	f := forward(p, target, diagonal, halfWidth, ws, m)
	releaseScanWorkspace(ws)
	return f
}

// forward is the workspace-backed Forward kernel: identical recurrence to
// referenceForward, with residue-major emission reads and pooled rows.
func forward(p *Profile, target *seq.Sequence, diagonal, halfWidth int, ws *scanWorkspace, m metering.Meter) float64 {
	if !p.transposed() {
		return referenceForward(p, target, diagonal, halfWidth, m)
	}
	L := target.Len()
	M := p.M
	w := 2*halfWidth + 1
	prev, cur := ws.forwardRows(w)
	for i := range prev {
		prev[i] = math.Inf(-1)
	}
	total := math.Inf(-1)
	var cells uint64
	for i := 0; i < L; i++ {
		r := int(target.Residues[i])
		rowT := p.MatchT[r*M : (r+1)*M]
		lo := i + diagonal - halfWidth
		for b := 0; b < w; b++ {
			j := lo + b
			if j < 0 || j >= M {
				cur[b] = math.Inf(-1)
				continue
			}
			cells++
			diag := prev[b]
			up := math.Inf(-1)
			if b+1 < w {
				up = prev[b+1] + float64(p.Open)
			}
			left := math.Inf(-1)
			if b > 0 {
				left = cur[b-1] + float64(p.Open)
			}
			// Local-alignment start: each cell can begin a fresh path.
			sum := logSumExp4(diag, up, left, 0)
			cur[b] = sum + float64(rowT[j])
			total = logSumExp2(total, cur[b])
		}
		prev, cur = cur, prev
	}
	recordForwardEvent(p, w, cells, m)
	if math.IsInf(total, -1) {
		return 0
	}
	return total
}

func recordForwardEvent(p *Profile, w int, cells uint64, m metering.Meter) {
	m.Record(metering.Event{
		Func:           "forward_band",
		Instructions:   cells * 30, // exp/log dominated
		Bytes:          cells * 40,
		WorkingSet:     uint64(2*w)*8 + p.MemoryBytes(),
		Pattern:        metering.Strided,
		Branches:       cells * 2,
		BranchMissRate: 0.003,
	})
}

func logSumExp2(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}

func logSumExp4(a, b, c, d float64) float64 {
	return logSumExp2(logSumExp2(a, b), logSumExp2(c, d))
}
