package hmmer

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"afsysbench/internal/seq"
)

// Profile serialization — the analog of HMMER's .hmm files. Persisting
// built profiles lets a warm pipeline skip profile construction and reuse
// recruited-alignment profiles across runs.
//
// Format:
//
//	magic "AFHM" | uint16 version | uint8 moleculeType |
//	uint16 nameLen | name | uint32 M | uint16 K |
//	float32 insertPenalty | float32 open | float32 extend |
//	float64 lambda | float64 mu | M*K float32 match scores
const (
	profileMagic   = "AFHM"
	profileVersion = 1
)

// WriteProfile serializes the profile.
func (p *Profile) WriteProfile(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(profileMagic); err != nil {
		return err
	}
	if len(p.Name) > 0xffff {
		return fmt.Errorf("hmmer: profile name too long")
	}
	head := make([]byte, 0, 64)
	head = binary.BigEndian.AppendUint16(head, profileVersion)
	head = append(head, byte(p.Type))
	head = binary.BigEndian.AppendUint16(head, uint16(len(p.Name)))
	head = append(head, p.Name...)
	head = binary.BigEndian.AppendUint32(head, uint32(p.M))
	head = binary.BigEndian.AppendUint16(head, uint16(p.K))
	head = binary.BigEndian.AppendUint32(head, math.Float32bits(p.InsertPenalty))
	head = binary.BigEndian.AppendUint32(head, math.Float32bits(p.Open))
	head = binary.BigEndian.AppendUint32(head, math.Float32bits(p.Extend))
	head = binary.BigEndian.AppendUint64(head, math.Float64bits(p.Lambda))
	head = binary.BigEndian.AppendUint64(head, math.Float64bits(p.Mu))
	if _, err := bw.Write(head); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, v := range p.Match {
		binary.BigEndian.PutUint32(buf, math.Float32bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadProfile deserializes a profile written by WriteProfile.
func ReadProfile(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+2+1+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("hmmer: reading profile header: %w", err)
	}
	if string(head[:4]) != profileMagic {
		return nil, fmt.Errorf("hmmer: bad profile magic %q", head[:4])
	}
	if v := binary.BigEndian.Uint16(head[4:6]); v != profileVersion {
		return nil, fmt.Errorf("hmmer: unsupported profile version %d", v)
	}
	p := &Profile{Type: seq.MoleculeType(head[6])}
	nameLen := int(binary.BigEndian.Uint16(head[7:9]))
	rest := make([]byte, nameLen+4+2+4+4+4+8+8)
	if _, err := io.ReadFull(br, rest); err != nil {
		return nil, fmt.Errorf("hmmer: reading profile metadata: %w", err)
	}
	p.Name = string(rest[:nameLen])
	off := nameLen
	p.M = int(binary.BigEndian.Uint32(rest[off : off+4]))
	off += 4
	p.K = int(binary.BigEndian.Uint16(rest[off : off+2]))
	off += 2
	p.InsertPenalty = math.Float32frombits(binary.BigEndian.Uint32(rest[off : off+4]))
	off += 4
	p.Open = math.Float32frombits(binary.BigEndian.Uint32(rest[off : off+4]))
	off += 4
	p.Extend = math.Float32frombits(binary.BigEndian.Uint32(rest[off : off+4]))
	off += 4
	p.Lambda = math.Float64frombits(binary.BigEndian.Uint64(rest[off : off+8]))
	off += 8
	p.Mu = math.Float64frombits(binary.BigEndian.Uint64(rest[off : off+8]))

	if p.M <= 0 || p.K <= 0 || p.M > 1<<24 || p.K > 64 {
		return nil, fmt.Errorf("hmmer: implausible profile dims %dx%d", p.M, p.K)
	}
	if alpha := p.Type.Alphabet(); alpha == "" || len(alpha) != p.K {
		return nil, fmt.Errorf("hmmer: profile type %v inconsistent with K=%d", p.Type, p.K)
	}
	p.Match = make([]float32, p.M*p.K)
	buf := make([]byte, 4)
	for i := range p.Match {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("hmmer: reading match scores: %w", err)
		}
		p.Match[i] = math.Float32frombits(binary.BigEndian.Uint32(buf))
	}
	// Only Match is serialized; rebuild the derived scan layout so loaded
	// profiles run the same transposed kernels as freshly built ones.
	p.BuildTransposed()
	return p, nil
}
