package hmmer

import (
	"bytes"
	"strings"
	"testing"

	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

func TestRenderAlignmentBlocks(t *testing.T) {
	g := protGen(51)
	q := g.Random("probe", seq.Protein, 50)
	target := g.Mutate(q, "subject", 0.1)
	p, _ := BuildFromQuery(q)
	_, ali := BandedViterbiAlign(p, target, 0, BandHalfWidth, metering.Nop{})

	var buf bytes.Buffer
	if err := RenderAlignment(&buf, q, target, ali, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "probe x subject") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "query") || !strings.Contains(out, "target") {
		t.Error("block labels missing")
	}
	// Blocks of 20: an alignment of ~50 pairs needs >= 3 blocks.
	if strings.Count(out, "query") < 3 {
		t.Errorf("expected multiple blocks:\n%s", out)
	}
}

func TestRenderAlignmentShowsGaps(t *testing.T) {
	g := protGen(52)
	q := g.Random("q", seq.Protein, 40)
	// Insert 2 residues into the target to force '-' in the query line.
	ins := g.Random("i", seq.Protein, 2)
	res := append([]byte(nil), q.Residues[:20]...)
	res = append(res, ins.Residues...)
	res = append(res, q.Residues[20:]...)
	target := &seq.Sequence{ID: "t", Type: seq.Protein, Residues: res}
	p, _ := BuildFromQuery(q)
	_, ali := BandedViterbiAlign(p, target, 0, BandHalfWidth, metering.Nop{})

	var buf bytes.Buffer
	if err := RenderAlignment(&buf, q, target, ali, 80); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Errorf("gap characters missing:\n%s", buf.String())
	}
}

func TestRenderAlignmentEmpty(t *testing.T) {
	g := protGen(53)
	q := g.Random("q", seq.Protein, 10)
	if err := RenderAlignment(&bytes.Buffer{}, q, q, &Alignment{}, 60); err == nil {
		t.Error("empty alignment accepted")
	}
}

func TestIdentity(t *testing.T) {
	g := protGen(54)
	q := g.Random("q", seq.Protein, 60)
	p, _ := BuildFromQuery(q)
	_, self := BandedViterbiAlign(p, q, 0, BandHalfWidth, metering.Nop{})
	if id := Identity(q, q, self); id != 1 {
		t.Errorf("self identity = %v, want 1", id)
	}
	mut := g.Mutate(q, "m", 0.3)
	_, ali := BandedViterbiAlign(p, mut, 0, BandHalfWidth, metering.Nop{})
	if id := Identity(q, mut, ali); id >= 1 || id < 0.4 {
		t.Errorf("mutant identity = %v, want in [0.4, 1)", id)
	}
	if Identity(q, q, &Alignment{}) != 0 {
		t.Error("empty alignment identity should be 0")
	}
}

func TestHitSummary(t *testing.T) {
	g := protGen(55)
	q := g.Random("q", seq.Protein, 40)
	hom := g.Mutate(q, "hom", 0.1)
	p, _ := BuildFromQuery(q)
	_, ali := BandedViterbiAlign(p, hom, 0, BandHalfWidth, metering.Nop{})
	h := Hit{TargetID: "hom", Target: hom, EValue: 1e-8, Bits: 52.3, Alignment: ali}
	s := h.Summary(q)
	for _, want := range []string{"hom", "E=1e-08", "bits=52.3", "ident="} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	// Without an alignment the identity clause is dropped.
	h.Alignment = nil
	if strings.Contains(h.Summary(q), "ident=") {
		t.Error("identity shown without alignment")
	}
}
