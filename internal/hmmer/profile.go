package hmmer

import (
	"fmt"
	"math"

	"afsysbench/internal/seq"
)

// Profile is a position-specific scoring model with M match columns over an
// alphabet of size K. It is the light-weight analog of a Plan7 profile HMM:
// per-column match emission scores, a per-column insert penalty, and affine
// gap transitions. Profiles are built either from a single query sequence
// (first jackhmmer round) or from a stacked alignment of recruited hits
// (subsequent rounds).
type Profile struct {
	Name string
	Type seq.MoleculeType
	M    int // number of match columns
	K    int // alphabet size

	// Match holds emission scores indexed [col*K + residue]. It is the
	// authoritative table: serialization and profile construction write it.
	Match []float32
	// MatchT is the residue-major transpose of Match, indexed
	// [residue*M + col]. The scan kernels iterate profile columns for one
	// fixed target residue at a time, so this layout turns their inner-loop
	// emission lookups from stride-K walks (one cache line per column) into
	// contiguous reads. It is derived from Match by BuildTransposed; kernels
	// fall back to the column-major reference path when it is absent.
	MatchT []float32
	// InsertPenalty is charged per inserted residue at any column.
	InsertPenalty float32
	// Open/Extend are affine gap transition penalties.
	Open, Extend float32

	// Gumbel parameters for E-value computation, set by calibrate().
	Lambda, Mu float64

	// maxMatch is max(0, max emission score), set by BuildTransposed. It
	// bounds the per-row score gain of any alignment path and anchors the
	// filter cascade's provably-safe pruning ceilings.
	maxMatch float32

	// quant is the packed 8-bit emission table the SWAR pre-filters run on,
	// derived by BuildTransposed alongside MatchT (nil when the score range
	// cannot be quantized soundly; the scan then stays on the float path).
	quant *quantProfile
}

// BuildTransposed (re)derives MatchT and the pruning bound from Match. The
// standard constructors call it; callers that assemble a Profile by hand can
// invoke it to opt in to the transposed kernels, or skip it to stay on the
// column-major reference path.
func (p *Profile) BuildTransposed() {
	if len(p.Match) != p.M*p.K {
		return
	}
	if cap(p.MatchT) < len(p.Match) {
		p.MatchT = make([]float32, len(p.Match))
	}
	p.MatchT = p.MatchT[:len(p.Match)]
	p.maxMatch = 0
	for col := 0; col < p.M; col++ {
		for r := 0; r < p.K; r++ {
			s := p.Match[col*p.K+r]
			p.MatchT[r*p.M+col] = s
			if s > p.maxMatch {
				p.maxMatch = s
			}
		}
	}
	p.quant = buildQuant(p)
}

// transposed reports whether the residue-major layout is available.
func (p *Profile) transposed() bool {
	return len(p.MatchT) == len(p.Match) && len(p.Match) == p.M*p.K
}

// BuildFromQuery constructs a profile directly from one query sequence using
// the substitution matrix: column i emits residue r with score matrix(q_i, r).
func BuildFromQuery(q *seq.Sequence) (*Profile, error) {
	mat := MatrixFor(q.Type)
	if mat == nil {
		return nil, fmt.Errorf("hmmer: cannot build profile for molecule type %v", q.Type)
	}
	if q.Len() == 0 {
		return nil, fmt.Errorf("hmmer: empty query %q", q.ID)
	}
	p := &Profile{
		Name:          q.ID,
		Type:          q.Type,
		M:             q.Len(),
		K:             mat.N,
		Match:         make([]float32, q.Len()*mat.N),
		InsertPenalty: -1,
		Open:          gapOpen,
		Extend:        gapExtend,
	}
	for i, r := range q.Residues {
		copy(p.Match[i*mat.N:(i+1)*mat.N], mat.Scores[int(r)*mat.N:(int(r)+1)*mat.N])
	}
	p.calibrate()
	p.BuildTransposed()
	return p, nil
}

// Column weights used when building from an alignment: simple Laplace
// pseudocount smoothing against the background.
const pseudocount = 0.5

// BuildFromAlignment constructs a profile from aligned sequences, all of the
// same length and molecule type. Columns emit log-odds scores of the
// smoothed observed frequencies against a uniform background. Gap symbols
// are represented by the residue value GapResidue.
func BuildFromAlignment(name string, t seq.MoleculeType, rows [][]byte) (*Profile, error) {
	mat := MatrixFor(t)
	if mat == nil {
		return nil, fmt.Errorf("hmmer: cannot build profile for molecule type %v", t)
	}
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("hmmer: empty alignment for %q", name)
	}
	m := len(rows[0])
	for i, row := range rows {
		if len(row) != m {
			return nil, fmt.Errorf("hmmer: alignment row %d length %d != %d", i, len(row), m)
		}
	}
	k := mat.N
	p := &Profile{
		Name:          name,
		Type:          t,
		M:             m,
		K:             k,
		Match:         make([]float32, m*k),
		InsertPenalty: -1,
		Open:          gapOpen,
		Extend:        gapExtend,
	}
	background := 1.0 / float64(k)
	counts := make([]float64, k)
	for col := 0; col < m; col++ {
		for i := range counts {
			counts[i] = pseudocount
		}
		total := pseudocount * float64(k)
		for _, row := range rows {
			r := row[col]
			if r == GapResidue || int(r) >= k {
				continue
			}
			counts[r]++
			total++
		}
		for r := 0; r < k; r++ {
			freq := counts[r] / total
			// Log-odds in the same scale as the substitution matrices
			// (roughly half-bits): 2*log2(freq/background).
			p.Match[col*k+r] = float32(2 * math.Log2(freq/background))
		}
	}
	p.calibrate()
	p.BuildTransposed()
	return p, nil
}

// GapResidue marks alignment gaps in rows passed to BuildFromAlignment.
const GapResidue byte = 0xff

// calibrate sets Gumbel E-value parameters from profile statistics. Real
// HMMER estimates lambda/mu by simulation; we use the standard analytic
// approximations: lambda from the score scale, mu growing with log(M) —
// which preserves the qualitative behavior that longer profiles need higher
// scores for the same significance.
func (p *Profile) calibrate() {
	// Expected per-column score against random sequence.
	var mean, meanSq float64
	for col := 0; col < p.M; col++ {
		for r := 0; r < p.K; r++ {
			s := float64(p.Match[col*p.K+r])
			mean += s
			meanSq += s * s
		}
	}
	n := float64(p.M * p.K)
	mean /= n
	variance := meanSq/n - mean*mean
	if variance < 1e-6 {
		variance = 1e-6
	}
	// Score scale: lambda ~ c / stddev; calibrated so that random-vs-random
	// searches yield E >= 1 for their top hits at typical M.
	p.Lambda = 1.1 / math.Sqrt(variance)
	p.Mu = 4*math.Log(float64(p.M)+1) + 8
}

// EValue converts a raw alignment score into an expectation value for a
// search over dbResidues total target residues, via the Gumbel tail
// P(S > s) ≈ exp(-lambda*(s - mu)) scaled by the effective number of
// alignment starts.
func (p *Profile) EValue(score float64, dbResidues int) float64 {
	starts := float64(dbResidues) / float64(p.M+1)
	if starts < 1 {
		starts = 1
	}
	tail := math.Exp(-p.Lambda * (score - p.Mu))
	return starts * tail
}

// BitScore converts a raw score to bits for reporting.
func (p *Profile) BitScore(score float64) float64 {
	return p.Lambda * score / math.Ln2
}

// MemoryBytes returns the resident size of the profile's score table as the
// DP kernels see it — part of the working set the cache model is charged
// with. Each kernel reads exactly one layout (MatchT when present, Match
// otherwise), so the hot working set is one table regardless of how many
// layouts the profile keeps resident.
func (p *Profile) MemoryBytes() uint64 {
	return uint64(len(p.Match)) * 4
}
