package hmmer

import (
	"encoding/binary"

	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

// SWAR (SIMD-within-a-register) filter kernels: the MSV scan and an
// SSV-style band pre-pass run in saturating unsigned 8-bit lanes, eight per
// uint64 — pure-Go striped vectorization in the spirit of HMMER3's Farrar
// filters. Both kernels are reject-only: they may prove a record (or a band)
// stays below its threshold and dispose of it for the cost of the packed
// scan, but anything they cannot reject re-runs through the exact float32
// kernels unchanged. Quantization and its soundness argument live in
// quant.go and DESIGN.md §11.

const (
	// swarMSB masks bit 7 of every lane; the saturating add/sub/max forms
	// split each byte into its low 7 bits plus this sign row.
	swarMSB uint64 = 0x8080808080808080
	// swarLSB replicates a byte across lanes by multiplication.
	swarLSB uint64 = 0x0101010101010101
)

// broadcast8 fills all eight lanes with b.
func broadcast8(b uint8) uint64 { return uint64(b) * swarLSB }

// satAdd8 adds lanes pairwise, saturating at 255. The low-7-bit sums carry
// freely inside their lanes; the MSB row is recombined by xor and the
// per-lane carry-out (majority of the two MSBs and the incoming carry) is
// smeared into a 0xff saturation mask.
func satAdd8(x, y uint64) uint64 {
	s := (x &^ swarMSB) + (y &^ swarMSB)
	sum := s ^ ((x ^ y) & swarMSB)
	carry := ((x & y) | ((x | y) &^ sum)) & swarMSB
	return sum | ((carry >> 7) * 0xff)
}

// satSub8 subtracts lanes pairwise, saturating at 0. Offsetting x's MSBs
// keeps the machine-level subtraction from borrowing across lanes; the
// per-lane borrow-out selects which lanes clamp.
func satSub8(x, y uint64) uint64 {
	z := (x | swarMSB) - (y &^ swarMSB)
	diff := z ^ (^(x ^ y) & swarMSB)
	borrow := ((^x & y) | (^(x ^ y) & diff)) & swarMSB
	return diff &^ ((borrow >> 7) * 0xff)
}

// satSubConst8 is satSub8 specialized for a subtrahend whose lanes all have
// bit 7 clear (the bias and gap constants, both ≤ 127 by construction in
// buildQuant): three of the general form's mask terms collapse.
func satSubConst8(x, y uint64) uint64 {
	z := (x | swarMSB) - y
	diff := z ^ (^x & swarMSB)
	borrow := ^x & diff & swarMSB
	return diff &^ ((borrow >> 7) * 0xff)
}

// max8 picks the larger lane pairwise, via the satSub8 borrow mask.
func max8(x, y uint64) uint64 {
	z := (x | swarMSB) - (y &^ swarMSB)
	diff := z ^ (^(x ^ y) & swarMSB)
	lt := ((((^x & y) | (^(x ^ y) & diff)) & swarMSB) >> 7) * 0xff
	return (x &^ lt) | (y & lt)
}

// anyGE8 reports whether any lane of x is ≥ t (t ≥ 1).
func anyGE8(x uint64, t uint8) bool {
	return satSub8(x, broadcast8(t-1)) != 0
}

// msvFilterSWAR runs the striped 8-bit MSV scan over the whole
// (target × profile) matrix and returns true when every cell provably stays
// below the quantized threshold tq — in which case the exact float32 MSV
// scan is guaranteed to stay below its own threshold and the record can be
// dropped without running it. A false return proves nothing (saturated or
// near-threshold lanes land here) and the caller falls through to the exact
// path.
//
// Striping: lane k of word w is profile column 8w+k. The running Kadane
// state for row i lives at its column, so the diagonal recurrence
// r[i][j] = max(0, r[i-1][j-1] + e) becomes one byte-shift of the whole
// state vector (carrying the top byte across words) followed by a packed
// saturating add of the emission row and a packed saturating bias subtract.
// That is M bytes of hot state regardless of target length, against the
// float path's (L+M-1) float32 lanes.
func msvFilterSWAR(q *quantProfile, target *seq.Sequence, ws *scanWorkspace, tq uint8, m metering.Meter) bool {
	L := target.Len()
	nw := q.words()
	st := ws.swarRun(nw)
	biasB := broadcast8(q.bias)
	// With tq ≥ 128 a passing lane always has its MSB set, so rows whose
	// lane-OR stays below 128 skip the precise threshold scan entirely.
	fast := tq >= 128
	res := target.Residues
	rejected := true
	rowsDone := L
scan:
	for i := 0; i < L; i++ {
		rowW := q.emisW[int(res[i])*nw:]
		rowW = rowW[:nw:nw] // one bounds check per row, none per word
		stw := st[:nw:nw]
		carry := uint64(0)
		rowOr := uint64(0)
		w := 0
		// Two words per iteration: the carry chain between them is just the
		// loaded top bytes, so the two saturating pipelines overlap.
		for ; w+1 < nw; w += 2 {
			e0, e1 := rowW[w], rowW[w+1]
			v0, v1 := stw[w], stw[w+1]
			nc := v1 >> 56
			v1 = v1<<8 | v0>>56
			v0 = v0<<8 | carry
			carry = nc
			// satAdd8 then satSubConst8, inlined and interleaved.
			s0 := (v0 &^ swarMSB) + (e0 &^ swarMSB)
			s1 := (v1 &^ swarMSB) + (e1 &^ swarMSB)
			sum0 := s0 ^ ((v0 ^ e0) & swarMSB)
			sum1 := s1 ^ ((v1 ^ e1) & swarMSB)
			cy0 := ((v0 & e0) | ((v0 | e0) &^ sum0)) & swarMSB
			cy1 := ((v1 & e1) | ((v1 | e1) &^ sum1)) & swarMSB
			v0 = sum0 | ((cy0 >> 7) * 0xff)
			v1 = sum1 | ((cy1 >> 7) * 0xff)
			z0 := (v0 | swarMSB) - biasB
			z1 := (v1 | swarMSB) - biasB
			diff0 := z0 ^ (^v0 & swarMSB)
			diff1 := z1 ^ (^v1 & swarMSB)
			bw0 := ^v0 & diff0 & swarMSB
			bw1 := ^v1 & diff1 & swarMSB
			v0 = diff0 &^ ((bw0 >> 7) * 0xff)
			v1 = diff1 &^ ((bw1 >> 7) * 0xff)
			stw[w] = v0
			stw[w+1] = v1
			rowOr |= v0 | v1
		}
		if w < nw {
			e := rowW[w]
			v := stw[w]
			v = v<<8 | carry
			s := (v &^ swarMSB) + (e &^ swarMSB)
			sum := s ^ ((v ^ e) & swarMSB)
			cy := ((v & e) | ((v | e) &^ sum)) & swarMSB
			v = sum | ((cy >> 7) * 0xff)
			z := (v | swarMSB) - biasB
			diff := z ^ (^v & swarMSB)
			bw := ^v & diff & swarMSB
			v = diff &^ ((bw >> 7) * 0xff)
			stw[w] = v
			rowOr |= v
		}
		// Padding lanes (columns ≥ M) must not keep a shifted-in value alive.
		st[nw-1] &= q.tailMask
		if fast && rowOr&swarMSB == 0 {
			continue
		}
		for _, v := range st {
			if anyGE8(v, tq) {
				rejected = false
				rowsDone = i + 1
				break scan
			}
		}
	}
	words := uint64(rowsDone) * uint64(nw)
	ev := metering.Event{
		Func: "msv_swar",
		// ~29 ALU ops per packed word (shift+carry, saturating add,
		// saturating bias subtract, accumulate, store); two 8-byte loads and
		// one 8-byte store.
		Instructions: words * 29,
		Bytes:        words * 24,
		WorkingSet:   uint64(nw)*8 + q.memoryBytes(),
		Pattern:      metering.Sequential,
		// One well-predicted gate branch per row plus the rare precise scan.
		Branches:       uint64(rowsDone) * 2,
		BranchMissRate: 0.001,
	}
	if rejected {
		ev.LanesRejected = uint64(L) * uint64(q.cols)
	}
	m.Record(ev)
	return rejected
}

// bandSSVSWAR is the 8-bit pre-pass in front of the banded Viterbi kernel:
// a gap-undercharged upper bound over the band's fixed diagonals that may
// prove no gapped alignment inside the band can reach the quantized floor
// tqBand. Returns (rejected, cells): cells is the float DP volume disposed
// of when rejected (countBandCells over the whole target), 0 otherwise.
//
// Each lane l is the fixed diagonal d-halfWidth+l. Per target row the lane's
// column advances by one, so the emission vector is a sliding 8-byte window
// of the quantized emission row — an unaligned load on the interior, byte
// assembly at the profile edges (out-of-profile columns read as emission 0,
// which decays a lane and never grows it).
//
// Recurrence: lane l carries the chain value V_l of its diagonal (resume
// then emit, saturating, clamped at 0); a parked vector P holds the best
// value each *column* has ever reached, decaying by extQ per consumed row;
// columns that slide out of the band fold into a scalar trailing max T with
// the same decay; G tracks the overall maximum (the reported bound):
//
//	V_l = max(V_l, resume_l) + e_l
//	resume_l = max(T, max{P_c : c < col(l)}) - switchQ
//
// P is column-anchored: because lane l's column advances by one per row, P
// shifts down one lane per row, so an exclusive prefix max over lanes is an
// exclusive prefix max over columns. That column-strictness is the heart of
// the bound: a real alignment consumes each profile column at most once, so
// a resumed run may only ever chain *forward* in columns. (A resume floor
// keyed on a row-global best — ignoring columns — lets the bound re-harvest
// the same hot columns at every row and saturates on any realistic band.)
//
// Soundness: any banded alignment is a sequence of diagonal match runs
// separated by gap bursts. A burst from column c (row r) to column c' > c
// (row r', consuming g = r'-r-1 rows) costs the float kernel at least
// a + (g-1)·b for g ≥ 1 (a = |Open+InsertPenalty|, b = |Extend+InsertPenalty|;
// insertions dominate, deletions only add) and at least |Open| for a
// row-free deletion burst. The resume path charges switchQ + g·extQ with
// switchQ ≤ λ·min(|Open|, a-b) and extQ ≤ λ·b — an under-charge of every
// burst shape — and P's column anchoring guarantees the resumed value really
// came from a strictly lower column at a strictly earlier row. By induction
// every prefix of every banded path has λ·score ≤ V of its lane, so
// λ·(best band score) ≤ final G, and G < tqBand proves the float kernel's
// score stays below the E-value gate's floor.
func bandSSVSWAR(q *quantProfile, target *seq.Sequence, diagonal, halfWidth int, tqBand uint8, m metering.Meter) (bool, uint64) {
	L := target.Len()
	w := 2*halfWidth + 1
	nw := (w + 7) / 8
	if nw > 8 {
		return false, 0 // wider bands than the fixed state covers: no reject
	}
	M := q.cols
	// Only rows whose band intersects the profile columns carry cells.
	i0, i1 := 0, L
	if v := -(diagonal + halfWidth); v > i0 {
		i0 = v
	}
	if v := M + halfWidth - diagonal; v < i1 {
		i1 = v
	}
	if i0 >= i1 {
		return false, 0 // band never overlaps the profile; nothing to prove
	}
	var lanesV, lanesP [8]uint64
	biasB := broadcast8(q.bias)
	extQB := broadcast8(q.extQ)
	swQB := broadcast8(q.switchQ)
	lastLanes := w - 8*(nw-1)
	wMask := ^uint64(0) >> (8 * (8 - uint(lastLanes)))
	res := target.Residues
	g, trail := uint8(0), uint8(0)
	rejected := true
	rowsDone := 0

	for i := i0; i < i1; i++ {
		row := q.emis[int(res[i])*q.stride : int(res[i])*q.stride+q.stride]
		lo := i + diagonal - halfWidth
		rowsDone++
		// Re-anchor the parked columns to this row's lanes: the lowest column
		// slides out of the band and folds into the trailing max, the rest
		// shift down one lane. Decay is applied at refresh time below, so a
		// value parked at row r resumes at row r+1 undecayed — charging
		// extQ here too would overcharge a zero-row deletion burst and break
		// the upper bound.
		if d := uint8(lanesP[0]); d > trail {
			trail = d
		}
		for wd := 0; wd < nw; wd++ {
			v := lanesP[wd] >> 8
			if wd+1 < nw {
				v |= lanesP[wd+1] << 56
			}
			lanesP[wd] = v
		}
		trailB := broadcast8(trail)
		carryFeed := trail // lane 0's lower-column max entering each word
		var hm uint64
		for wd := 0; wd < nw; wd++ {
			off := lo + wd*8
			var e uint64
			switch {
			case off >= 0 && off+8 <= q.stride:
				e = binary.LittleEndian.Uint64(row[off:])
			case off+8 <= 0 || off >= M:
				// fully outside the profile: emission stays 0
			default:
				for k := 0; k < 8; k++ {
					if c := off + k; c >= 0 && c < M {
						e |= uint64(row[c]) << (8 * uint(k))
					}
				}
			}
			// Exclusive prefix max over lower columns: log-step inclusive
			// prefix within the word, then shift one lane up, feeding the
			// carry byte from the words below.
			p := lanesP[wd]
			pm := max8(p, p<<8)
			pm = max8(pm, pm<<16)
			pm = max8(pm, pm<<32)
			// The carry byte is the running max over every lane of the lower
			// words; it must reach all lanes here, not just lane 0 — a resume
			// may jump from any lower column, across word boundaries.
			pmExcl := max8(pm<<8, broadcast8(carryFeed))
			nf := uint8(pm >> 56)
			if carryFeed > nf {
				nf = carryFeed
			}
			carryFeed = nf
			resume := satSubConst8(max8(pmExcl, trailB), swQB)
			v := max8(lanesV[wd], resume)
			v = satAdd8(v, e)
			v = satSubConst8(v, biasB)
			if wd == nw-1 {
				v &= wMask // lanes beyond the band width stay dead
			}
			lanesV[wd] = v
			// Older parked values pay this row's insert rent; the fresh value
			// enters undecayed.
			lanesP[wd] = max8(satSubConst8(p, extQB), v)
			hm = max8(hm, v)
		}
		if trail > q.extQ {
			trail -= q.extQ
		} else {
			trail = 0
		}
		// Horizontal lane max, log-step (shifted-in zeros never win).
		hm = max8(hm, hm>>32)
		hm = max8(hm, hm>>16)
		hm = max8(hm, hm>>8)
		if b := uint8(hm); b > g {
			g = b
			if g >= tqBand {
				// Already unrejectable (includes every saturated lane,
				// which holds ≥ 255-bias ≥ tqBand): stop scanning.
				rejected = false
				break
			}
		}
	}

	words := uint64(rowsDone) * uint64(nw)
	ev := metering.Event{
		Func: "ssv_band",
		// ~95 ALU ops per packed word (parked shift/decay, prefix max,
		// resume, saturating add/sub, refresh) plus ~45 per row of scalar
		// bookkeeping and the horizontal max.
		Instructions: words*95 + uint64(rowsDone)*45,
		Bytes:        words * 8,
		WorkingSet:   uint64(nw)*16 + q.memoryBytes(),
		Pattern:      metering.Strided,
		Branches:     words + uint64(rowsDone),
		// The edge-vs-interior load switch mispredicts only at band ends.
		BranchMissRate: 0.002,
	}
	var cells uint64
	if rejected {
		cells = countBandCells(0, L, diagonal, halfWidth, M)
		ev.LanesRejected = cells
	}
	m.Record(ev)
	return rejected, cells
}
