package hmmer

import (
	"context"
	"errors"
	"strings"
	"testing"

	"afsysbench/internal/metering"
	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
	"afsysbench/internal/seqdb"
)

func makeDB(t *testing.T, spec seqdb.Spec) *seqdb.DB {
	t.Helper()
	db, err := seqdb.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func sliceSrc(db *seqdb.DB) func() RecordSource {
	return func() RecordSource { return &SliceSource{Seqs: db.Seqs} }
}

func TestSliceSource(t *testing.T) {
	g := seq.NewGenerator(rng.New(1))
	s := &SliceSource{Seqs: []*seq.Sequence{g.Random("a", seq.Protein, 10), g.Random("b", seq.Protein, 10)}}
	ids := []string{}
	for {
		rec, ok := s.Next()
		if !ok {
			break
		}
		ids = append(ids, rec.ID)
	}
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("ids = %v", ids)
	}
}

func TestBufferPreservesRecords(t *testing.T) {
	g := seq.NewGenerator(rng.New(2))
	orig := g.Random("r", seq.Protein, 333)
	var m metering.Accumulator
	buf := NewBuffer(&SliceSource{Seqs: []*seq.Sequence{orig}}, 1<<30, &m)
	rec, ok := buf.Next()
	if !ok {
		t.Fatal("record lost")
	}
	if rec.ID != orig.ID || rec.Len() != orig.Len() {
		t.Error("record mutated")
	}
	for i := range rec.Residues {
		if rec.Residues[i] != orig.Residues[i] {
			t.Fatal("residues corrupted in buffering path")
		}
	}
	by := m.ByFunc()
	for _, fn := range []string{"copy_to_iter", "addbuf", "seebuf"} {
		ev, ok := by[fn]
		if !ok {
			t.Fatalf("missing %s event", fn)
		}
		if ev.Instructions == 0 || ev.Bytes == 0 {
			t.Errorf("%s event has zero counts", fn)
		}
	}
	if by["copy_to_iter"].WorkingSet != 1<<30 {
		t.Error("copy_to_iter working set must be the DB footprint")
	}
	if _, ok := buf.Next(); ok {
		t.Error("buffer yielded extra record")
	}
}

func TestSeedIndexFindsIdenticalDiagonal(t *testing.T) {
	g := seq.NewGenerator(rng.New(3))
	q := g.Random("q", seq.Protein, 100)
	idx := buildSeedIndex(q, 3)
	diags := idx.candidates(q, 2, 64, 18, nil, metering.Nop{})
	found := false
	for _, d := range diags {
		if d >= -9 && d <= 9 {
			found = true
		}
	}
	if !found {
		t.Errorf("self-search candidates %v missing diagonal ~0", diags)
	}
}

func TestRollingHashMatchesFullHash(t *testing.T) {
	g := seq.NewGenerator(rng.New(11))
	for _, k := range []int{2, 3, 5, 8} {
		q := g.Random("q", seq.Protein, 200)
		idx := buildSeedIndex(q, k)
		// Every window of an independent target must roll to exactly the
		// value a from-scratch hash computes (wraparound arithmetic is
		// exact, so these are equal, not just collision-free).
		tgt := g.Random("t", seq.Protein, 150)
		h := idx.hash(tgt.Residues[:k])
		top := idx.topWeight()
		for i := 0; i+k <= tgt.Len(); i++ {
			if i > 0 {
				h = idx.roll(h, tgt.Residues[i-1], tgt.Residues[i+k-1], top)
			}
			if want := idx.hash(tgt.Residues[i : i+k]); h != want {
				t.Fatalf("k=%d pos=%d rolled hash %#x != full hash %#x", k, i, h, want)
			}
		}
		// And the rolled index must match one built with from-scratch
		// hashing position by position.
		ref := make(map[uint32][]int32)
		for i := 0; i+k <= q.Len(); i++ {
			fh := idx.hash(q.Residues[i : i+k])
			ref[fh] = append(ref[fh], int32(i))
		}
		if len(ref) != len(idx.pos) {
			t.Fatalf("k=%d index has %d buckets, reference %d", k, len(idx.pos), len(ref))
		}
		for fh, want := range ref {
			got := idx.pos[fh]
			if len(got) != len(want) {
				t.Fatalf("k=%d bucket %#x = %v, want %v", k, fh, got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("k=%d bucket %#x = %v, want %v", k, fh, got, want)
				}
			}
		}
	}
}

func TestSeedIndexShortTarget(t *testing.T) {
	g := seq.NewGenerator(rng.New(4))
	q := g.Random("q", seq.Protein, 50)
	idx := buildSeedIndex(q, 3)
	if got := idx.candidates(g.Random("t", seq.Protein, 2), 2, 64, 18, nil, metering.Nop{}); got != nil {
		t.Errorf("short target candidates = %v, want nil", got)
	}
}

func TestPolyQInflatesCandidates(t *testing.T) {
	g := seq.NewGenerator(rng.New(5))
	diverse := g.Random("div", seq.Protein, 300)
	polyQ := g.WithRepeat("pq", seq.Protein, 300, 90, seq.QIndex)
	spec := seqdb.Spec{Name: "lc", Type: seq.Protein, NumSeqs: 60, MeanLen: 150, LowComplexFrac: 0.3, Seed: 6}
	db := makeDB(t, spec)

	count := func(q *seq.Sequence) int {
		idx := buildSeedIndex(q, 3)
		total := 0
		for _, s := range db.Seqs {
			total += len(idx.candidates(s, 2, 64, 18, nil, metering.Nop{}))
		}
		return total
	}
	cDiv, cPQ := count(diverse), count(polyQ)
	if cPQ <= cDiv*2 {
		t.Errorf("poly-Q candidates (%d) not well above diverse (%d) — promo effect missing", cPQ, cDiv)
	}
}

func TestSearchProteinFindsPlantedHomologs(t *testing.T) {
	g := seq.NewGenerator(rng.New(7))
	query := g.Random("query", seq.Protein, 200)
	spec := seqdb.Spec{
		Name: "udb", Type: seq.Protein, NumSeqs: 80, MeanLen: 180,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 6, Seed: 8,
	}
	db := makeDB(t, spec)
	res, err := SearchProtein(query, sliceSrc(db), db.TotalResidues(), SearchOptions{Iterations: 1}, metering.Nop{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != db.NumSeqs() {
		t.Errorf("scanned %d, want %d", res.Scanned, db.NumSeqs())
	}
	homHits := 0
	for _, h := range res.Hits {
		if strings.Contains(h.TargetID, "|hom") && h.EValue < 1e-3 {
			homHits++
		}
	}
	if homHits < 3 {
		t.Errorf("found %d/6 planted homologs with E<1e-3", homHits)
	}
}

func TestSearchRandomDBNoSignificantHits(t *testing.T) {
	g := seq.NewGenerator(rng.New(9))
	query := g.Random("query", seq.Protein, 200)
	db := makeDB(t, seqdb.Spec{Name: "null", Type: seq.Protein, NumSeqs: 100, MeanLen: 180, Seed: 10})
	res, err := SearchProtein(query, sliceSrc(db), db.TotalResidues(), SearchOptions{Iterations: 1}, metering.Nop{})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hits {
		if h.EValue < 1e-4 {
			t.Errorf("random target %s got E=%g — calibration too permissive", h.TargetID, h.EValue)
		}
	}
}

func TestIterativeSearchRecruitsMore(t *testing.T) {
	g := seq.NewGenerator(rng.New(11))
	query := g.Random("query", seq.Protein, 250)
	spec := seqdb.Spec{
		Name: "it", Type: seq.Protein, NumSeqs: 60, MeanLen: 200,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 10, Seed: 12,
	}
	db := makeDB(t, spec)
	r1, err := SearchProtein(query, sliceSrc(db), db.TotalResidues(), SearchOptions{Iterations: 1}, metering.Nop{})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := SearchProtein(query, sliceSrc(db), db.TotalResidues(), SearchOptions{Iterations: 3}, metering.Nop{})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Rounds < 2 {
		t.Skipf("nothing recruited in round 1 (hits=%d); iteration short-circuited", len(r1.Hits))
	}
	if len(r3.Hits) < len(r1.Hits) {
		t.Errorf("iterative search lost hits: %d -> %d", len(r1.Hits), len(r3.Hits))
	}
}

func TestSearchTypeErrors(t *testing.T) {
	g := seq.NewGenerator(rng.New(13))
	rna := g.Random("r", seq.RNA, 50)
	prot := g.Random("p", seq.Protein, 50)
	db := makeDB(t, seqdb.Spec{Name: "x", Type: seq.Protein, NumSeqs: 5, MeanLen: 60, Seed: 1})
	if _, err := SearchProtein(rna, sliceSrc(db), 100, SearchOptions{}, nil); err == nil {
		t.Error("RNA query accepted by SearchProtein")
	}
	if _, err := SearchNucleotide(prot, sliceSrc(db), 100, SearchOptions{}, nil); err == nil {
		t.Error("protein query accepted by SearchNucleotide")
	}
}

func TestSearchNucleotideFindsHomolog(t *testing.T) {
	g := seq.NewGenerator(rng.New(15))
	query := g.Random("rna", seq.RNA, 150)
	spec := seqdb.Spec{
		Name: "rfam", Type: seq.RNA, NumSeqs: 60, MeanLen: 200,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 4, Seed: 16,
	}
	db := makeDB(t, spec)
	res, err := SearchNucleotide(query, sliceSrc(db), db.TotalResidues(), SearchOptions{}, metering.Nop{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range res.Hits {
		if strings.Contains(h.TargetID, "|hom") && h.EValue < 0.01 {
			found = true
		}
	}
	if !found {
		t.Error("no planted RNA homolog found")
	}
}

func TestDisableSeedFilterStillFindsClosestHomolog(t *testing.T) {
	g := seq.NewGenerator(rng.New(17))
	query := g.Random("query", seq.Protein, 150)
	spec := seqdb.Spec{
		Name: "msv", Type: seq.Protein, NumSeqs: 30, MeanLen: 150,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 3, Seed: 18,
	}
	db := makeDB(t, spec)
	res, err := SearchProtein(query, sliceSrc(db), db.TotalResidues(),
		SearchOptions{Iterations: 1, DisableSeedFilter: true}, metering.Nop{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range res.Hits {
		if strings.Contains(h.TargetID, "|hom") {
			found = true
		}
	}
	if !found {
		t.Error("MSV-path search found no homolog")
	}
}

func TestSearchDeduplicatesTargets(t *testing.T) {
	g := seq.NewGenerator(rng.New(19))
	query := g.Random("query", seq.Protein, 120)
	db := makeDB(t, seqdb.Spec{
		Name: "dup", Type: seq.Protein, NumSeqs: 10, MeanLen: 100,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 2, Seed: 20,
	})
	res, err := SearchProtein(query, sliceSrc(db), db.TotalResidues(), SearchOptions{Iterations: 1}, metering.Nop{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, h := range res.Hits {
		if seen[h.TargetID] {
			t.Fatalf("duplicate hit for %s", h.TargetID)
		}
		seen[h.TargetID] = true
	}
}

func TestSearchMeteringCoversKernels(t *testing.T) {
	g := seq.NewGenerator(rng.New(21))
	query := g.Random("query", seq.Protein, 150)
	db := makeDB(t, seqdb.Spec{
		Name: "met", Type: seq.Protein, NumSeqs: 40, MeanLen: 150,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 4, Seed: 22,
	})
	var m metering.Accumulator
	if _, err := SearchProtein(query, sliceSrc(db), db.TotalResidues(), SearchOptions{Iterations: 1}, &m); err != nil {
		t.Fatal(err)
	}
	by := m.ByFunc()
	for _, fn := range []string{"calc_band_9", "calc_band_10", "addbuf", "seebuf", "copy_to_iter", "seed_filter"} {
		if by[fn].Instructions == 0 {
			t.Errorf("function %s reported no work", fn)
		}
	}
	// Shape check against Table IV: DP kernels must dominate the buffer
	// layer in instruction count.
	dp := by["calc_band_9"].Instructions + by["calc_band_10"].Instructions
	bufWork := by["addbuf"].Instructions + by["seebuf"].Instructions
	if dp <= bufWork {
		t.Errorf("DP kernels (%d) do not dominate buffering (%d)", dp, bufWork)
	}
}

func TestReportAllDomainsFindsBothSegments(t *testing.T) {
	g := seq.NewGenerator(rng.New(23))
	query := g.Random("q", seq.Protein, 100)
	// A target with two homologous segments far apart: two domains.
	target := g.Random("t", seq.Protein, 600)
	copy(target.Residues[50:150], query.Residues)
	copy(target.Residues[420:520], query.Residues)

	src := func() RecordSource { return &SliceSource{Seqs: []*seq.Sequence{target}} }
	dedup, err := SearchProtein(query, src, target.Len(), SearchOptions{Iterations: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dedup.Hits) != 1 {
		t.Fatalf("deduplicated search reported %d hits, want 1", len(dedup.Hits))
	}
	all, err := SearchProtein(query, src, target.Len(), SearchOptions{Iterations: 1, ReportAllDomains: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Hits) < 2 {
		t.Fatalf("per-domain search reported %d hits, want both segments", len(all.Hits))
	}
	// The two domains sit on well-separated diagonals.
	d0, d1 := all.Hits[0].Diagonal, all.Hits[1].Diagonal
	if d0 == d1 {
		t.Error("domains collapsed to one diagonal")
	}
	gap := d0 - d1
	if gap < 0 {
		gap = -gap
	}
	if gap < 200 {
		t.Errorf("domain diagonals %d and %d too close", d0, d1)
	}
}

func TestSearchCtxCancellation(t *testing.T) {
	g := seq.NewGenerator(rng.New(5))
	query := g.Random("q", seq.Protein, 120)
	db := makeDB(t, seqdb.Spec{Name: "ctxdb", Type: seq.Protein, NumSeqs: 200, MeanLen: 150, Seed: 11})

	done, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-cancelled context aborts before any round.
	if _, err := SearchProteinCtx(done, query, sliceSrc(db), db.TotalResidues(), SearchOptions{Iterations: 2}, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchProteinCtx err = %v", err)
	}
	prof, err := BuildFromQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScanRecordsCtx(done, prof, query, &SliceSource{Seqs: db.Seqs}, db.TotalResidues(), SearchOptions{}, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("ScanRecordsCtx err = %v", err)
	}
	rna := g.Random("r", seq.RNA, 80)
	rdb := makeDB(t, seqdb.Spec{Name: "ctxrna", Type: seq.RNA, NumSeqs: 50, MeanLen: 120, Seed: 12})
	if _, err := SearchNucleotideCtx(done, rna, sliceSrc(rdb), rdb.TotalResidues(), SearchOptions{}, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchNucleotideCtx err = %v", err)
	}

	// Mid-scan cancellation: cancel from inside the record stream and
	// verify the scan stops within one ctx-check stride (32 records).
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	streamed := 0
	src := &cancellingSource{inner: &SliceSource{Seqs: db.Seqs}, after: 10, cancel: cancel2, n: &streamed}
	if _, err := ScanRecordsCtx(ctx2, prof, query, src, db.TotalResidues(), SearchOptions{}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-scan err = %v", err)
	}
	if streamed > 10+32 {
		t.Errorf("scan consumed %d records after cancellation at 10", streamed)
	}

	// The background-context wrappers still complete normally.
	res, err := SearchProtein(query, sliceSrc(db), db.TotalResidues(), SearchOptions{Iterations: 1}, nil)
	if err != nil || res == nil {
		t.Fatalf("uncancelled search failed: %v", err)
	}
}

// cancellingSource cancels a context after streaming `after` records.
type cancellingSource struct {
	inner  RecordSource
	after  int
	cancel context.CancelFunc
	n      *int
}

func (c *cancellingSource) Next() (*seq.Sequence, bool) {
	s, ok := c.inner.Next()
	if ok {
		*c.n++
		if *c.n == c.after {
			c.cancel()
		}
	}
	return s, ok
}
