package hmmer

import (
	"math"
	"testing"

	"afsysbench/internal/metering"
	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
)

func protGen(seed uint64) *seq.Generator { return seq.NewGenerator(rng.New(seed)) }

func protGenSrc(seed uint64) *rng.Source { return rng.New(seed) }

func TestMatrices(t *testing.T) {
	pm := ProteinMatrix()
	if pm.N != 20 {
		t.Fatalf("protein matrix N = %d", pm.N)
	}
	for i := 0; i < 20; i++ {
		if pm.At(byte(i), byte(i)) <= 0 {
			t.Errorf("identity score for residue %d not positive", i)
		}
		for j := 0; j < 20; j++ {
			if pm.At(byte(i), byte(j)) != pm.At(byte(j), byte(i)) {
				t.Errorf("matrix asymmetric at (%d,%d)", i, j)
			}
		}
	}
	nm := NucleotideMatrix()
	if nm.At(0, 0) <= 0 || nm.At(0, 1) >= 0 {
		t.Error("nucleotide match/mismatch signs wrong")
	}
	if MatrixFor(seq.Ligand) != nil {
		t.Error("ligand matrix should be nil")
	}
}

func TestBuildFromQuery(t *testing.T) {
	q := protGen(1).Random("q", seq.Protein, 100)
	p, err := BuildFromQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.M != 100 || p.K != 20 {
		t.Fatalf("profile dims %dx%d", p.M, p.K)
	}
	// Column i must score residue q_i highest or tied-highest.
	for i, r := range q.Residues {
		col := p.Match[i*p.K : (i+1)*p.K]
		for _, s := range col {
			if s > col[r] {
				t.Fatalf("column %d: own residue not max-scoring", i)
			}
		}
	}
	if p.Lambda <= 0 || p.Mu <= 0 {
		t.Errorf("calibration invalid: lambda=%v mu=%v", p.Lambda, p.Mu)
	}
}

func TestBuildFromQueryErrors(t *testing.T) {
	if _, err := BuildFromQuery(&seq.Sequence{Type: seq.Ligand}); err == nil {
		t.Error("ligand query accepted")
	}
	if _, err := BuildFromQuery(&seq.Sequence{Type: seq.Protein}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestBuildFromAlignment(t *testing.T) {
	g := protGen(2)
	q := g.Random("q", seq.Protein, 50)
	rows := [][]byte{q.Residues, q.Residues, q.Residues}
	p, err := BuildFromAlignment("a", seq.Protein, rows)
	if err != nil {
		t.Fatal(err)
	}
	// Unanimous columns must strongly favor the consensus residue.
	for i, r := range q.Residues {
		col := p.Match[i*p.K : (i+1)*p.K]
		if col[r] <= 0 {
			t.Errorf("consensus residue score %v at col %d, want > 0", col[r], i)
		}
	}
	// Gap-only rows are tolerated.
	gapRow := make([]byte, 50)
	for i := range gapRow {
		gapRow[i] = GapResidue
	}
	if _, err := BuildFromAlignment("g", seq.Protein, [][]byte{q.Residues, gapRow}); err != nil {
		t.Errorf("gap row rejected: %v", err)
	}
}

func TestBuildFromAlignmentErrors(t *testing.T) {
	if _, err := BuildFromAlignment("x", seq.Protein, nil); err == nil {
		t.Error("empty alignment accepted")
	}
	if _, err := BuildFromAlignment("x", seq.Protein, [][]byte{{1, 2}, {1}}); err == nil {
		t.Error("ragged alignment accepted")
	}
	if _, err := BuildFromAlignment("x", seq.Ligand, [][]byte{{1}}); err == nil {
		t.Error("ligand alignment accepted")
	}
}

func TestEValueMonotonicity(t *testing.T) {
	q := protGen(3).Random("q", seq.Protein, 80)
	p, _ := BuildFromQuery(q)
	if e1, e2 := p.EValue(50, 1e6), p.EValue(60, 1e6); e2 >= e1 {
		t.Errorf("E-value not decreasing in score: %v -> %v", e1, e2)
	}
	if e1, e2 := p.EValue(50, 1e5), p.EValue(50, 1e6); e2 <= e1 {
		t.Errorf("E-value not increasing in db size: %v -> %v", e1, e2)
	}
	if p.BitScore(100) <= p.BitScore(50) {
		t.Error("bit score not monotonic")
	}
}

func TestMSVFindsPlantedSegment(t *testing.T) {
	g := protGen(4)
	q := g.Random("q", seq.Protein, 120)
	target := g.Random("t", seq.Protein, 300)
	// Plant q[20:60] at target position 100: diagonal = 20 - 100 = -80.
	copy(target.Residues[100:140], q.Residues[20:60])
	var m metering.Accumulator
	p, _ := BuildFromQuery(q)
	hit := MSVFilter(p, target, &m)
	if hit.Diagonal != -80 {
		t.Errorf("diagonal = %d, want -80", hit.Diagonal)
	}
	// 40 identities at >= +4 each.
	if hit.Score < 100 {
		t.Errorf("planted segment score = %v, want >= 100", hit.Score)
	}
	if len(m.Events) != 1 || m.Events[0].Func != "msv_filter" {
		t.Error("msv_filter event not recorded")
	}
}

func TestMSVRandomScoresLow(t *testing.T) {
	g := protGen(5)
	q := g.Random("q", seq.Protein, 120)
	p, _ := BuildFromQuery(q)
	thr := MSVThreshold(p)
	passes := 0
	for i := 0; i < 50; i++ {
		target := g.Random("t", seq.Protein, 300)
		if MSVFilter(p, target, metering.Nop{}).Score >= thr {
			passes++
		}
	}
	if passes > 10 {
		t.Errorf("%d/50 random targets passed MSV threshold", passes)
	}
}

func TestBandedMatchesFullWhenBandCoversAll(t *testing.T) {
	g := protGen(6)
	q := g.Random("q", seq.Protein, 30)
	target := g.Mutate(q, "t", 0.1)
	p, _ := BuildFromQuery(q)
	full := FullViterbi(p, target, metering.Nop{})
	banded := BandedViterbi(p, target, 0, p.M+target.Len(), metering.Nop{})
	if math.Abs(float64(full.Score-banded.Score)) > 1e-4 {
		t.Errorf("full = %v, banded(all) = %v", full.Score, banded.Score)
	}
}

func TestBandedNeverExceedsFull(t *testing.T) {
	g := protGen(7)
	for trial := 0; trial < 10; trial++ {
		q := g.Random("q", seq.Protein, 40)
		target := g.Mutate(q, "t", 0.3)
		p, _ := BuildFromQuery(q)
		full := FullViterbi(p, target, metering.Nop{})
		banded := BandedViterbi(p, target, 0, BandHalfWidth, metering.Nop{})
		if banded.Score > full.Score+1e-4 {
			t.Errorf("trial %d: banded %v > full %v", trial, banded.Score, full.Score)
		}
	}
}

func TestBandedHomologOutscoresRandom(t *testing.T) {
	g := protGen(8)
	q := g.Random("q", seq.Protein, 150)
	p, _ := BuildFromQuery(q)
	hom := g.Mutate(q, "hom", 0.2)
	rnd := g.Random("rnd", seq.Protein, 150)
	sHom := BandedViterbi(p, hom, 0, BandHalfWidth, metering.Nop{}).Score
	sRnd := BandedViterbi(p, rnd, 0, BandHalfWidth, metering.Nop{}).Score
	if sHom <= sRnd*2 {
		t.Errorf("homolog score %v not well above random %v", sHom, sRnd)
	}
}

func TestBandKernelEventSplit(t *testing.T) {
	g := protGen(9)
	q := g.Random("q", seq.Protein, 64)
	target := g.Mutate(q, "t", 0.1)
	p, _ := BuildFromQuery(q)
	var m metering.Accumulator
	BandedViterbi(p, target, 0, BandHalfWidth, &m)
	by := m.ByFunc()
	b9, ok9 := by["calc_band_9"]
	b10, ok10 := by["calc_band_10"]
	if !ok9 || !ok10 {
		t.Fatal("both band kernels must report events")
	}
	// Even rows (kernel 9) process >= as many rows as odd rows.
	if b9.Instructions < b10.Instructions {
		t.Errorf("calc_band_9 %d < calc_band_10 %d instructions", b9.Instructions, b10.Instructions)
	}
	ratio := float64(b9.Instructions) / float64(b10.Instructions)
	if ratio > 1.3 {
		t.Errorf("kernel split ratio %v too skewed", ratio)
	}
}

func TestForwardAtLeastViterbi(t *testing.T) {
	g := protGen(10)
	q := g.Random("q", seq.Protein, 60)
	target := g.Mutate(q, "t", 0.15)
	p, _ := BuildFromQuery(q)
	vit := BandedViterbi(p, target, 0, BandHalfWidth, metering.Nop{})
	fwd := Forward(p, target, 0, BandHalfWidth, metering.Nop{})
	if fwd < float64(vit.Score)-1e-3 {
		t.Errorf("forward %v < viterbi %v", fwd, vit.Score)
	}
}

func TestForwardEmptyBand(t *testing.T) {
	g := protGen(11)
	q := g.Random("q", seq.Protein, 20)
	target := g.Random("t", seq.Protein, 20)
	p, _ := BuildFromQuery(q)
	// Diagonal far outside any valid column: score must be 0, not -Inf/NaN.
	got := Forward(p, target, 10_000, 3, metering.Nop{})
	if got != 0 {
		t.Errorf("out-of-range band forward = %v, want 0", got)
	}
}

func TestLogSumExp(t *testing.T) {
	if got := logSumExp2(math.Inf(-1), math.Inf(-1)); !math.IsInf(got, -1) {
		t.Errorf("lse(-inf,-inf) = %v", got)
	}
	if got := logSumExp2(0, 0); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("lse(0,0) = %v, want ln2", got)
	}
	if got := logSumExp2(100, math.Inf(-1)); got != 100 {
		t.Errorf("lse(100,-inf) = %v", got)
	}
}
