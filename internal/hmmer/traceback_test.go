package hmmer

import (
	"math"
	"testing"
	"testing/quick"

	"afsysbench/internal/metering"
	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
)

func TestTracebackScoreMatchesPlainKernel(t *testing.T) {
	g := protGen(31)
	for trial := 0; trial < 10; trial++ {
		q := g.Random("q", seq.Protein, 60)
		target := g.Mutate(q, "t", 0.25)
		p, _ := BuildFromQuery(q)
		plain := BandedViterbi(p, target, 0, BandHalfWidth, metering.Nop{})
		traced, ali := BandedViterbiAlign(p, target, 0, BandHalfWidth, metering.Nop{})
		if math.Abs(float64(plain.Score-traced.Score)) > 1e-3 {
			t.Fatalf("trial %d: traceback kernel score %v != plain %v", trial, traced.Score, plain.Score)
		}
		if math.Abs(float64(ali.Score-traced.Score)) > 1e-6 {
			t.Fatalf("alignment score %v != result score %v", ali.Score, traced.Score)
		}
	}
}

func TestTracebackPathValid(t *testing.T) {
	g := protGen(32)
	q := g.Random("q", seq.Protein, 80)
	target := g.Mutate(q, "t", 0.2)
	p, _ := BuildFromQuery(q)
	res, ali := BandedViterbiAlign(p, target, 0, BandHalfWidth, metering.Nop{})
	if err := ali.Validate(p.M, target.Len()); err != nil {
		t.Fatal(err)
	}
	if len(ali.Pairs) == 0 {
		t.Fatal("empty alignment for a homologous pair")
	}
	// The path must end at the reported best cell.
	last := ali.Pairs[len(ali.Pairs)-1]
	if last.Op != OpMatch || last.Col != res.EndCol || last.Pos != res.EndRow {
		t.Errorf("path ends at (%d,%d,%c), result says (%d,%d)", last.Col, last.Pos, last.Op, res.EndCol, res.EndRow)
	}
}

func TestTracebackIdenticalSequencesAllMatches(t *testing.T) {
	g := protGen(33)
	q := g.Random("q", seq.Protein, 50)
	p, _ := BuildFromQuery(q)
	_, ali := BandedViterbiAlign(p, q, 0, BandHalfWidth, metering.Nop{})
	if err := ali.Validate(p.M, q.Len()); err != nil {
		t.Fatal(err)
	}
	if ali.Matches() != len(ali.Pairs) {
		t.Errorf("self-alignment contains gaps: %d matches of %d pairs", ali.Matches(), len(ali.Pairs))
	}
	if ali.Matches() < 45 {
		t.Errorf("self-alignment covers only %d/50 residues", ali.Matches())
	}
	// Every pair must be on the main diagonal.
	for _, pr := range ali.Pairs {
		if pr.Col != pr.Pos {
			t.Fatalf("self-alignment off diagonal: %+v", pr)
		}
	}
}

func TestTracebackRecoversInsertion(t *testing.T) {
	g := protGen(34)
	q := g.Random("q", seq.Protein, 60)
	// Target = query with 3 residues inserted at position 30.
	ins := g.Random("ins", seq.Protein, 3)
	residues := append([]byte(nil), q.Residues[:30]...)
	residues = append(residues, ins.Residues...)
	residues = append(residues, q.Residues[30:]...)
	target := &seq.Sequence{ID: "t", Type: seq.Protein, Residues: residues}

	p, _ := BuildFromQuery(q)
	_, ali := BandedViterbiAlign(p, target, 0, BandHalfWidth, metering.Nop{})
	if err := ali.Validate(p.M, target.Len()); err != nil {
		t.Fatal(err)
	}
	inserts := 0
	for _, pr := range ali.Pairs {
		if pr.Op == OpInsert {
			inserts++
		}
	}
	if inserts != 3 {
		t.Errorf("recovered %d insertions, want 3", inserts)
	}
	if ali.Matches() < 55 {
		t.Errorf("only %d matches around the insertion", ali.Matches())
	}
}

func TestTracebackRecoversDeletion(t *testing.T) {
	g := protGen(35)
	q := g.Random("q", seq.Protein, 60)
	// Target = query with columns 30..32 deleted.
	residues := append([]byte(nil), q.Residues[:30]...)
	residues = append(residues, q.Residues[33:]...)
	target := &seq.Sequence{ID: "t", Type: seq.Protein, Residues: residues}

	p, _ := BuildFromQuery(q)
	_, ali := BandedViterbiAlign(p, target, 0, BandHalfWidth, metering.Nop{})
	if err := ali.Validate(p.M, target.Len()); err != nil {
		t.Fatal(err)
	}
	dels := 0
	for _, pr := range ali.Pairs {
		if pr.Op == OpDelete {
			dels++
		}
	}
	if dels != 3 {
		t.Errorf("recovered %d deletions, want 3", dels)
	}
}

func TestTracebackEmitsKernelEvents(t *testing.T) {
	g := protGen(36)
	q := g.Random("q", seq.Protein, 40)
	target := g.Mutate(q, "t", 0.1)
	p, _ := BuildFromQuery(q)
	var m metering.Accumulator
	BandedViterbiAlign(p, target, 0, BandHalfWidth, &m)
	by := m.ByFunc()
	if by["calc_band_9"].Instructions == 0 || by["calc_band_10"].Instructions == 0 {
		t.Error("traceback kernel must report calc_band events")
	}
}

func TestAlignmentValidateRejectsMalformed(t *testing.T) {
	bad := []Alignment{
		{Pairs: []AlignedPair{{Op: OpMatch, Col: 5, Pos: 5}, {Op: OpMatch, Col: 5, Pos: 6}}}, // col not advancing
		{Pairs: []AlignedPair{{Op: OpInsert, Col: 3, Pos: 1}}},                               // insert with col
		{Pairs: []AlignedPair{{Op: OpDelete, Col: 2, Pos: 2}}},                               // delete with pos
		{Pairs: []AlignedPair{{Op: OpKind('X'), Col: 1, Pos: 1}}},                            // unknown op
		{Pairs: []AlignedPair{{Op: OpMatch, Col: 99, Pos: 0}}},                               // out of bounds
		{Pairs: []AlignedPair{{Op: OpMatch, Col: 1, Pos: 1}, {Op: OpMatch, Col: 2, Pos: 1}}}, // pos not advancing
	}
	for i, a := range bad {
		if err := a.Validate(10, 10); err == nil {
			t.Errorf("malformed alignment %d accepted", i)
		}
	}
}

func TestQuickTracebackAlwaysValid(t *testing.T) {
	f := func(seed uint64, mutRaw uint8) bool {
		g := seq.NewGenerator(rng.New(seed))
		q := g.Random("q", seq.Protein, 40)
		rate := float64(mutRaw%60) / 100
		target := g.Mutate(q, "t", rate)
		p, err := BuildFromQuery(q)
		if err != nil {
			return false
		}
		_, ali := BandedViterbiAlign(p, target, 0, BandHalfWidth, metering.Nop{})
		return ali.Validate(p.M, target.Len()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildGappedAlignmentUsesTracedPath(t *testing.T) {
	g := protGen(37)
	q := g.Random("q", seq.Protein, 50)
	hom := g.Mutate(q, "hom", 0.1)
	p, _ := BuildFromQuery(q)
	_, ali := BandedViterbiAlign(p, hom, 0, BandHalfWidth, metering.Nop{})
	hits := []Hit{{TargetID: "hom", Target: hom, Diagonal: 0, EValue: 1e-9, Alignment: ali}}
	rows := BuildGappedAlignment(q, hits, 1e-3)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	same := 0
	for col, r := range rows[1] {
		if r != GapResidue && r == q.Residues[col] {
			same++
		}
	}
	if same < 35 {
		t.Errorf("gapped stack aligned only %d/50 columns to the query", same)
	}
	// Above-threshold hits are excluded.
	hits[0].EValue = 1
	if rows := BuildGappedAlignment(q, hits, 1e-3); len(rows) != 1 {
		t.Error("non-significant hit stacked")
	}
}

func TestWindowPlan(t *testing.T) {
	// Short target: single window.
	pl := planWindows(100, 400)
	if pl.targets != 1 || pl.winLen != 400 {
		t.Errorf("short target plan %+v", pl)
	}
	// Long target: overlapping windows covering everything.
	pl = planWindows(200, 5000)
	if pl.targets < 2 {
		t.Fatalf("long target got %d windows", pl.targets)
	}
	if pl.winLen != 600 || pl.stride != 400 {
		t.Errorf("plan %+v, want win 600 stride 400", pl)
	}
	last := (pl.targets - 1) * pl.stride
	if last >= 5000 {
		t.Error("last window starts beyond the target")
	}
	if last+pl.winLen < 5000 {
		t.Error("windows do not cover the target tail")
	}
	// Tiny query: window floor applies.
	pl = planWindows(20, 10000)
	if pl.winLen != minWindow {
		t.Errorf("window floor not applied: %d", pl.winLen)
	}
}

func TestWindowedScanFindsHomologInLongTarget(t *testing.T) {
	g := seq.NewGenerator(rng.New(41))
	query := g.Random("rna", seq.RNA, 150)
	// Embed a homolog deep inside a long random target.
	long := g.Random("chr", seq.RNA, 6000)
	hom := g.Mutate(query, "h", 0.08)
	copy(long.Residues[4200:4350], hom.Residues)

	res, err := SearchNucleotide(query, func() RecordSource {
		return &SliceSource{Seqs: []*seq.Sequence{long}}
	}, long.Len(), SearchOptions{}, metering.Nop{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows < 2 {
		t.Fatalf("long target scanned in %d windows, want several", res.Windows)
	}
	if res.PeakWindowStateBytes <= 0 {
		t.Error("window state accounting missing")
	}
	found := false
	for _, h := range res.Hits {
		if h.EValue < 0.01 {
			found = true
			if h.Alignment == nil {
				t.Fatal("windowed hit missing alignment")
			}
			// Alignment positions must be in whole-target coordinates.
			for _, pr := range h.Alignment.Pairs {
				if pr.Pos >= 0 && (pr.Pos < 4000 || pr.Pos > 4400) {
					t.Fatalf("alignment position %d outside embedded region", pr.Pos)
				}
			}
		}
	}
	if !found {
		t.Error("embedded homolog not found by windowed scan")
	}
}

func TestWindowedStateGrowsWithQueryLength(t *testing.T) {
	g := seq.NewGenerator(rng.New(43))
	long := g.Random("chr", seq.RNA, 8000)
	state := func(qLen int) int64 {
		q := g.Random("q", seq.RNA, qLen)
		// Embed a couple of homologous stretches so windows seed.
		hom := g.Mutate(q, "h", 0.1)
		copy(long.Residues[1000:1000+qLen], hom.Residues)
		copy(long.Residues[5000:5000+qLen], hom.Residues)
		res, err := SearchNucleotide(q, func() RecordSource {
			return &SliceSource{Seqs: []*seq.Sequence{long}}
		}, long.Len(), SearchOptions{}, metering.Nop{})
		if err != nil {
			t.Fatal(err)
		}
		return res.PeakWindowStateBytes
	}
	small, big := state(100), state(400)
	if big <= small {
		t.Errorf("window state must grow with query length: %d -> %d", small, big)
	}
}
