package hmmer

import (
	"testing"

	"afsysbench/internal/metering"
	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
	"afsysbench/internal/seqdb"
)

// MSA search hot-path benchmarks: three arms per scan shape on identical
// inputs. The reference arm runs through a MatchT-stripped profile copy,
// which routes every kernel to the reference implementations with their
// original per-call allocation behavior; the optimized arm uses the float32
// cascade (transposed profile layout, pooled workspaces, pruning floors)
// with the SWAR pre-passes disabled; the swar arm is the full default path
// with the saturating 8-bit reject filters armed. `make bench-msa` runs
// these with -benchmem into BENCH_msa.json (VARIANT=reference|optimized|swar
// narrows to one arm).

func benchDB(b *testing.B, mt seq.MoleculeType, n, meanLen int) (*Profile, *seq.Sequence, *seqdb.DB) {
	b.Helper()
	g := seq.NewGenerator(rng.New(61))
	query := g.Random("query", mt, 150)
	// ~1% of records are true homologs. Filter cascades are designed around
	// scans where >98% of records never survive the first filter (HMMER tunes
	// MSV for a 2% pass rate); a homolog-heavy DB would hide filter gains
	// behind the irreducible Forward cost of the hits themselves.
	db, err := seqdb.Generate(seqdb.Spec{
		Name: "bench", Type: mt, NumSeqs: n, MeanLen: meanLen,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: n / 100, Seed: 62,
	})
	if err != nil {
		b.Fatal(err)
	}
	p, err := BuildFromQuery(query)
	if err != nil {
		b.Fatal(err)
	}
	return p, query, db
}

func runScanBench(b *testing.B, p *Profile, query *seq.Sequence, db *seqdb.DB, opts SearchOptions) {
	b.Helper()
	// DisableSeedFilter routes every record through the MSV → banded-Viterbi
	// → Forward kernel cascade — the code these PRs optimize. (The seeded path
	// spends its time hashing k-mers, which the layout change doesn't touch;
	// it is covered by BenchmarkScanRecordSteadyState.)
	opts.DisableSeedFilter = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := ScanRecords(p, query, &SliceSource{Seqs: db.Seqs}, db.TotalResidues(), opts, metering.Nop{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Scanned != len(db.Seqs) {
			b.Fatalf("scanned %d of %d", res.Scanned, len(db.Seqs))
		}
	}
}

func benchScanVariants(b *testing.B, mt seq.MoleculeType, n, meanLen int) {
	p, query, db := benchDB(b, mt, n, meanLen)
	stripped := *p
	stripped.MatchT = nil
	b.Run("reference", func(b *testing.B) { runScanBench(b, &stripped, query, db, SearchOptions{}) })
	b.Run("optimized", func(b *testing.B) { runScanBench(b, p, query, db, SearchOptions{DisableSWAR: true}) })
	b.Run("swar", func(b *testing.B) { runScanBench(b, p, query, db, SearchOptions{}) })
}

func BenchmarkScanProtein(b *testing.B) {
	benchScanVariants(b, seq.Protein, 400, 180)
}

func BenchmarkScanNucleotide(b *testing.B) {
	// Longer mean length pushes a fraction of records through the windowed
	// nhmmer path, covering both scan shapes.
	benchScanVariants(b, seq.RNA, 120, 400)
}

// BenchmarkScanRecordSteadyState isolates the per-record path a database
// pass spends nearly all its time in: one warm scanState, no-hit records
// streamed through it (a realistic pass reports hits on a tiny fraction of
// records, and hit records legitimately allocate: target clone + traceback).
// This is the path the workspace pooling takes to 0 allocs/op.
func BenchmarkScanRecordSteadyState(b *testing.B) {
	g := seq.NewGenerator(rng.New(63))
	query := g.Random("query", seq.Protein, 150)
	db, err := seqdb.Generate(seqdb.Spec{Name: "steady", Type: seq.Protein, NumSeqs: 64, MeanLen: 180, Seed: 64})
	if err != nil {
		b.Fatal(err)
	}
	p, err := BuildFromQuery(query)
	if err != nil {
		b.Fatal(err)
	}
	opts := SearchOptions{}.withDefaults(query.Type)
	s := newScanState(p, query, db.TotalResidues(), opts, metering.Nop{})
	s.recycling = true
	defer s.release()
	for _, tg := range db.Seqs { // warm the workspace to its high-water marks
		s.scanRecord(tg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.scanRecord(db.Seqs[i%len(db.Seqs)])
	}
}

// TestScanSteadyStateZeroAllocs pins the pooling contract: once the
// workspace has grown to the shard's record sizes, scanning a no-hit record
// allocates nothing at all.
func TestScanSteadyStateZeroAllocs(t *testing.T) {
	g := seq.NewGenerator(rng.New(67))
	query := g.Random("query", seq.Protein, 150)
	// Pure random records: realistic steady state is "no hit" for virtually
	// every record, and hit records legitimately allocate (clone + traceback).
	db, err := seqdb.Generate(seqdb.Spec{Name: "za", Type: seq.Protein, NumSeqs: 32, MeanLen: 200, Seed: 68})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildFromQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	opts := SearchOptions{}.withDefaults(query.Type)
	s := newScanState(p, query, db.TotalResidues(), opts, metering.Nop{})
	s.recycling = true
	defer s.release()
	for _, tg := range db.Seqs {
		s.scanRecord(tg)
	}
	if len(s.res.Hits) != 0 {
		t.Fatalf("random DB produced %d hits; pick another seed", len(s.res.Hits))
	}
	avg := testing.AllocsPerRun(20, func() {
		for _, tg := range db.Seqs {
			s.scanRecord(tg)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state scan allocates %.1f times per %d records, want 0", avg, len(db.Seqs))
	}
}
