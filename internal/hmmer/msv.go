package hmmer

import (
	"math"

	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

// MSVHit is the output of the ungapped prefilter: the best-scoring diagonal
// and its score.
type MSVHit struct {
	Score    float32
	Diagonal int // j - i offset of the best diagonal (profile col - target pos)
}

// msvDead is the sentinel a pruned diagonal's run slot is parked at. It is
// far below any reachable running score (which Kadane clamps at >= 0), so a
// plain equality test identifies dead lanes. Distinct from negInf so a dead
// slot can never be mistaken for a DP initialization value.
const msvDead float32 = -2e30

// pruneMargin is the slack subtracted from a pruning floor to absorb
// float32 accumulation error: rem sequential adds of values bounded by a
// few hundred drift by well under rem*1e-4, and the constant term covers
// the float32 conversion of the threshold itself. Overshooting the margin
// only costs missed pruning, never a wrong result.
func pruneMargin(rem int) float32 {
	return 1 + float32(rem)*1e-4
}

// MSVFilter computes the maximal ungapped diagonal segment score between the
// profile and the target — the analog of HMMER's MSV/SSV long-target filter.
// It runs Kadane's maximum-subarray scan along every diagonal of the
// (target × profile) matrix. It is the cheap O(M·L) pass that every database
// record goes through; only survivors proceed to the banded Viterbi kernels.
func MSVFilter(p *Profile, target *seq.Sequence, m metering.Meter) MSVHit {
	if m == nil {
		m = metering.Nop{}
	}
	if !p.transposed() {
		return referenceMSVFilter(p, target, m)
	}
	ws := takeScanWorkspace()
	hit, _ := msvFilter(p, target, ws, negInf, m)
	releaseScanWorkspace(ws)
	return hit
}

// msvFilter is the workspace-backed scan. With threshold = negInf it is
// bitwise identical to referenceMSVFilter. A real threshold arms the
// pruning cascade: a diagonal whose running score falls so low that gaining
// maxMatch on every remaining row still cannot reach the threshold is
// parked at msvDead and skipped for the rest of the scan. Pruning preserves
// the filter verdict exactly — a pruned lane provably stays below the
// threshold, so whenever the returned score passes the threshold it is the
// same (score, diagonal) the unpruned scan reports.
func msvFilter(p *Profile, target *seq.Sequence, ws *scanWorkspace, threshold float32, m metering.Meter) (MSVHit, uint64) {
	if !p.transposed() {
		return referenceMSVFilter(p, target, m), 0
	}
	L := target.Len()
	M := p.M
	best := MSVHit{Score: 0, Diagonal: 0}
	// Diagonals are indexed by offset d = col - row, d in [-(L-1), M-1].
	// Scanning row-major keeps one running score per diagonal, and because
	// d grows with the column, each row's run slots are one contiguous
	// window of the buffer — the same shape striped SIMD implementations
	// exploit.
	diags := L + M - 1
	if diags < 0 {
		return best, 0
	}
	run := ws.msvRun(diags)
	var pruned uint64
	for i := 0; i < L; i++ {
		r := int(target.Residues[i])
		row := p.MatchT[r*M : r*M+M]
		runRow := run[L-1-i : L-1-i+M]
		runRow = runRow[:len(row)] // equal lengths; lets BCE drop runRow[j] checks
		// Death floor for this row: rem = L-1-i overestimates the cells
		// left on any diagonal, so the bound is conservative.
		rem := L - 1 - i
		floor := threshold - float32(rem)*p.maxMatch - pruneMargin(rem)
		if floor <= 0 {
			// Kadane clamps running scores at >= 0, so a non-positive floor
			// can never kill a lane — and floors only rise as rem shrinks,
			// so no lane is dead yet either. Run the tight two-branch loop
			// (bitwise identical to the reference recurrence).
			bs, bj := best.Score, -1
			for j, sc := range row {
				s := runRow[j] + sc
				// Branchless clamp at zero: the sign of a negative float's
				// bits, smeared across the word, masks it to +0.0. The
				// sign test on random scores is a coinflip branch predictors
				// can't learn, so this trades a frequent mispredict for
				// three ALU ops. Yields the identical float (+0.0) the
				// branching clamp produces.
				b := math.Float32bits(s)
				s = math.Float32frombits(b &^ uint32(int32(b)>>31))
				runRow[j] = s
				if s > bs {
					bs = s
					bj = j
				}
			}
			if bj >= 0 {
				best.Score = bs
				best.Diagonal = bj - i
			}
			continue
		}
		// Pruning rows (the tail of the scan): visit dead lanes with one
		// sentinel compare, park newly hopeless lanes at msvDead.
		for j, sc := range row {
			rv := runRow[j]
			if rv == msvDead {
				pruned++
				continue
			}
			s := rv + sc
			if s < 0 {
				s = 0
			}
			if s > best.Score {
				best.Score = s
				best.Diagonal = j - i
			}
			if s < floor {
				runRow[j] = msvDead
			} else {
				runRow[j] = s
			}
		}
	}
	cells := uint64(L) * uint64(M)
	exec := cells - pruned
	m.Record(metering.Event{
		Func: "msv_filter",
		// Executed cells run the full Kadane step; dead-lane visits cost
		// one sentinel compare and one 4-byte read.
		Instructions: exec*4 + pruned,
		Bytes:        exec*8 + pruned*4,
		WorkingSet:   uint64(diags)*4 + p.MemoryBytes(),
		Pattern:      metering.Sequential,
		Branches:     cells,
		// Max/reset branches on random sequence are near-coinflips that
		// predictors only partially learn.
		BranchMissRate: 0.005,
		Pruned:         pruned,
	})
	return best, pruned
}

// MSVThreshold returns the filter pass threshold for a profile: hits whose
// ungapped score falls below this never reach the DP kernels. The threshold
// tracks the profile's Gumbel location parameter mu, which grows with
// log(M) the same way random maximal-segment scores do, keeping the random
// survivor fraction small and roughly length-independent.
func MSVThreshold(p *Profile) float32 {
	return float32(p.Mu)
}
