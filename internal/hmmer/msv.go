package hmmer

import (
	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

// MSVHit is the output of the ungapped prefilter: the best-scoring diagonal
// and its score.
type MSVHit struct {
	Score    float32
	Diagonal int // j - i offset of the best diagonal (profile col - target pos)
}

// MSVFilter computes the maximal ungapped diagonal segment score between the
// profile and the target — the analog of HMMER's MSV/SSV long-target filter.
// It runs Kadane's maximum-subarray scan along every diagonal of the
// (target × profile) matrix. It is the cheap O(M·L) pass that every database
// record goes through; only survivors proceed to the banded Viterbi kernels.
func MSVFilter(p *Profile, target *seq.Sequence, m metering.Meter) MSVHit {
	L := target.Len()
	best := MSVHit{Score: 0, Diagonal: 0}
	// Diagonals are indexed by offset d = col - row, d in [-(L-1), M-1].
	// For cache friendliness we scan row-major with one running score per
	// diagonal, which is how striped SIMD implementations behave.
	diags := L + p.M - 1
	run := make([]float32, diags)
	for i := 0; i < L; i++ {
		r := int(target.Residues[i])
		rowScores := p.Match // indexed [col*K + r]
		for j := 0; j < p.M; j++ {
			d := j - i + (L - 1)
			s := run[d] + rowScores[j*p.K+r]
			if s < 0 {
				s = 0
			}
			run[d] = s
			if s > best.Score {
				best.Score = s
				best.Diagonal = j - i
			}
		}
	}
	cells := uint64(L) * uint64(p.M)
	m.Record(metering.Event{
		Func:         "msv_filter",
		Instructions: cells * 4,
		Bytes:        cells * 8, // score read + running-diagonal read/write
		WorkingSet:   uint64(diags)*4 + p.MemoryBytes(),
		Pattern:      metering.Sequential,
		Branches:     cells,
		// Max/reset branches on random sequence are near-coinflips that
		// predictors only partially learn.
		BranchMissRate: 0.005,
	})
	return best
}

// MSVThreshold returns the filter pass threshold for a profile: hits whose
// ungapped score falls below this never reach the DP kernels. The threshold
// tracks the profile's Gumbel location parameter mu, which grows with
// log(M) the same way random maximal-segment scores do, keeping the random
// survivor fraction small and roughly length-independent.
func MSVThreshold(p *Profile) float32 {
	return float32(p.Mu)
}
